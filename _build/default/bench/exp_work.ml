(* EXP5: per-iteration solver work vs factorization size (Corollary 1.2).

   The claim: with the Theorem-4.1 primitive, one iteration of
   decisionPSDP costs O~(n + m + q) work. We run a fixed number of
   Faithful-mode iterations (no certificate checks — those are an
   engineering add-on with their own cost profile) on instances whose q
   ramps linearly with the dimension, and fit the measured cost-model
   work per iteration against q. *)

open Psdp_prelude
open Psdp_core
open Psdp_instances

let iterations_budget = 150

exception Enough

let work_of_fixed_iterations ~eps ~backend inst =
  (* Stop the faithful run after exactly [iterations_budget] iterations by
     raising from the per-iteration hook; the cost counters then hold the
     work of precisely those iterations. *)
  let v =
    2.0
    *. Array.fold_left
         (fun acc f -> acc +. (1.0 /. Psdp_sparse.Factored.lambda_max f))
         0.0 (Instance.factors inst)
  in
  let scaled = Instance.scale v inst in
  let count = ref 0 in
  let run () =
    match
      Decision.solve ~mode:Decision.Faithful ~eps ~backend
        ~on_iter:(fun s ->
          count := s.Decision.t;
          if s.Decision.t >= iterations_budget then raise Enough)
        scaled
    with
    | (_ : Decision.result) -> ()
    | exception Enough -> ()
  in
  let (), cost = Cost.measure run in
  (cost, !count)

let run ~quick () =
  Bench_util.section
    (Printf.sprintf
       "EXP5: work of %d faithful iterations vs nnz (sketched backend, eps = \
        0.3)"
       iterations_budget);
  Printf.printf "%8s %10s %8s %16s %14s\n" "dim" "nnz q" "iters" "work"
    "work/(q*iters)";
  let dims = if quick then [ 32; 64; 128 ] else [ 32; 64; 128; 256; 512 ] in
  let eps = 0.3 in
  let backend = Decision.Sketched { seed = 5; sketch_dim = Some 24 } in
  let points =
    List.map
      (fun dim ->
        let rng = Rng.create (13 * dim) in
        let inst = Random_psd.factored ~rng ~dim ~n:8 ~rank:4 ~density:0.15 () in
        let q = Instance.nnz inst in
        let cost, iters = work_of_fixed_iterations ~eps ~backend inst in
        Printf.printf "%8d %10d %8d %16d %14.2f\n" dim q iters cost.Cost.work
          (float_of_int cost.Cost.work /. float_of_int (q * max 1 iters));
        (float_of_int q,
         float_of_int cost.Cost.work /. float_of_int (max 1 iters)))
      dims
  in
  let exponent =
    Bench_util.fit_exponent (List.map fst points) (List.map snd points)
  in
  Printf.printf
    "empirical per-iteration work exponent in q: %.2f (theory: 1 + o(1))\n"
    exponent;
  exponent
