(* EXP3: width-independence — the paper's headline claim (vs [JY11]'s
   motivation; our baseline is the classical width-dependent MMW).

   Both solvers face the same decision problems on a family whose width
   rho = max_i lambda_max(A_i) ramps over three orders of magnitude while
   the optimum stays comparable. Two operating points:

   - threshold below OPT ("feasible": rescaled OPT = 2) — the solver must
     accumulate a dual of mass ~1;
   - threshold above OPT ("infeasible": rescaled OPT = 1/2) — the solver
     must certify that no unit-mass packing exists. This is where the
     baseline's width dependence bites hardest: its per-step gain is
     normalized by rho, so distinguishing infeasibility needs Θ(rho)
     steps.

   Theorem 3.1 predicts flat rows for decisionPSDP on both sides. *)

open Psdp_prelude
open Psdp_core
open Psdp_instances

let run ~quick () =
  Bench_util.section
    "EXP3: width-independence (decisionPSDP vs width-dependent AK baseline)";
  Printf.printf "%8s | %12s %12s | %12s %12s\n" "width" "ours/feas"
    "ours/infeas" "base/feas" "base/infeas";
  let widths =
    if quick then [ 1.0; 8.0; 64.0 ] else [ 1.0; 4.0; 16.0; 64.0; 256.0; 1024.0 ]
  in
  let points =
    List.map
      (fun width ->
        let rng = Rng.create 404 in
        let inst = Random_psd.with_width ~rng ~dim:10 ~n:6 ~width in
        let opt = Bench_util.estimate_opt inst in
        let feasible = Instance.scale (opt /. 2.0) inst in
        let infeasible = Instance.scale (2.0 *. opt) inst in
        let ours_f = (Decision.solve ~eps:0.2 feasible).Decision.iterations in
        let ours_i = (Decision.solve ~eps:0.2 infeasible).Decision.iterations in
        let base_f = (Baseline.decide ~eps:0.2 feasible).Baseline.iterations in
        let base_i = (Baseline.decide ~eps:0.2 infeasible).Baseline.iterations in
        Printf.printf "%8.0f | %12d %12d | %12d %12d\n" width ours_f ours_i
          base_f base_i;
        (width, ours_f + ours_i, base_f + base_i))
      widths
  in
  let xs = List.map (fun (w, _, _) -> w) points in
  let ours_exp =
    Bench_util.fit_exponent xs
      (List.map (fun (_, o, _) -> float_of_int o) points)
  in
  let theirs_exp =
    Bench_util.fit_exponent xs
      (List.map (fun (_, _, t) -> float_of_int t) points)
  in
  Printf.printf
    "exponent in width (feas+infeas total): ours %.2f (theory 0), baseline \
     %.2f (theory ~1)\n"
    ours_exp theirs_exp;
  (ours_exp, theirs_exp)
