(* EXP7: end-to-end approximation quality (Theorem 1.1).

   On families with analytically known optima, approxPSDP must return a
   verified value >= (1-eps)·OPT and a certified upper bound >= OPT, for
   every eps. These rows are the empirical content of the
   (1+eps)-approximation guarantee. *)

open Psdp_prelude
open Psdp_core
open Psdp_instances

(* Each generator draws from a fresh, fixed-seed RNG so every eps row of a
   family sees the identical instance. *)
let families =
  [
    ( "projectors(12,4)",
      fun () ->
        Known_opt.orthogonal_projectors ~rng:(Rng.create 55) ~dim:12 ~n:4 );
    ( "rank-one(10,6)",
      fun () -> Known_opt.rank_one_orthonormal ~rng:(Rng.create 56) ~dim:10 ~n:6 );
    ( "weighted(9;.5,1,4)",
      fun () ->
        Known_opt.weighted_projectors ~rng:(Rng.create 57) ~dim:9
          ~weights:[| 0.5; 1.0; 4.0 |] );
    ("simplex-corner(8)", fun () -> Known_opt.simplex_corner ~dim:8);
    ( "cycle C_12",
      fun () ->
        ( Graph_packing.edge_packing (Graph.cycle 12),
          Graph_packing.edge_packing_opt_cycle 12 ) );
  ]

let run ~quick () =
  Bench_util.section "EXP7: approximation quality vs known optima (Theorem 1.1)";
  Printf.printf "%20s %6s %10s %10s %10s %9s\n" "family" "eps" "OPT" "value"
    "upper" "value/OPT";
  let epss = if quick then [ 0.3; 0.1 ] else [ 0.3; 0.2; 0.1 ] in
  let worst = ref 1.0 in
  List.iter
    (fun (name, gen) ->
      List.iter
        (fun eps ->
          let inst, opt = gen () in
          let r = Solver.solve_packing ~eps inst in
          let ratio = r.Solver.value /. opt in
          worst := Float.min !worst ratio;
          Printf.printf "%20s %6.2f %10.4f %10.4f %10.4f %9.4f\n" name eps opt
            r.Solver.value r.Solver.upper_bound ratio;
          assert (r.Solver.value >= ((1.0 -. eps) *. opt) -. 1e-6);
          assert (r.Solver.upper_bound >= opt -. (0.05 *. opt)))
        epss)
    families;
  Printf.printf "worst value/OPT ratio: %.4f (every row satisfies >= 1-eps)\n"
    !worst;
  !worst
