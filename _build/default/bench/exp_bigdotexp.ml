(* EXP4: the bigDotExp primitive (Theorem 4.1, Lemma 4.2).

   (a) Accuracy and degree: for spectra of growing norm kappa, the
       Lemma-4.2 degree k = max(e^2·kappa/2, ln(2/eps)) must bring the
       polynomial's relative error on every exp(Phi)•A_i below eps
       (isolated from sketching error by using the identity sketch), and
       the Gaussian sketch at the recommended dimension must stay within
       its statistical budget.
   (b) Work: the cost-model work of one bigDotExp call must grow
       near-linearly in the number of non-zeros q of the factorization
       (Corollary 1.2). *)

open Psdp_prelude
open Psdp_linalg
open Psdp_sparse
open Psdp_expm

let phi_with_norm rng dim kappa =
  let basis = Qr.orthonormal_columns (Mat.init dim dim (fun _ _ -> Rng.gaussian rng)) in
  let eigs = Array.init dim (fun i -> if i = 0 then kappa else Rng.uniform rng *. kappa) in
  Mat.mul basis (Mat.mul (Mat.diag eigs) (Mat.transpose basis))

let random_factored rng dim rank density =
  let entries = ref [ (0, 0, 1.0) ] in
  for i = 0 to dim - 1 do
    for j = 0 to rank - 1 do
      if Rng.uniform rng < density then
        entries := (i, j, Rng.gaussian rng) :: !entries
    done
  done;
  Factored.of_csr (Csr.of_coo ~rows:dim ~cols:rank !entries)

let accuracy ~quick () =
  Bench_util.section
    "EXP4a: bigDotExp accuracy vs kappa (eps = 0.05; identity sketch \
     isolates Lemma 4.2)";
  Printf.printf "%8s %8s %18s %20s\n" "kappa" "degree" "poly max rel err"
    "gauss median rel err";
  let kappas = if quick then [ 1.0; 4.0; 16.0 ] else [ 1.0; 2.0; 4.0; 8.0; 16.0; 32.0 ] in
  let eps = 0.05 in
  let dim = 14 in
  List.iter
    (fun kappa ->
      let rng = Rng.create (int_of_float (kappa *. 100.0)) in
      let phi = phi_with_norm rng dim kappa in
      let factors = Array.init 4 (fun _ -> random_factored rng dim 3 0.5) in
      let exact = Big_dot_exp.compute_exact phi factors in
      let poly =
        Big_dot_exp.compute ~matvec:(Mat.gemv phi) ~dim ~kappa ~eps
          ~sketch:(Psdp_sketch.Jl.identity dim) factors
      in
      let max_rel = ref 0.0 in
      Array.iteri
        (fun i d ->
          max_rel :=
            Float.max !max_rel
              (Float.abs (poly.Big_dot_exp.dots.(i) -. d) /. d))
        exact.Big_dot_exp.dots;
      (* Gaussian sketch: median worst-constraint error over trials. *)
      let trials = if quick then 5 else 11 in
      let errs =
        Array.init trials (fun t ->
            let sk =
              Psdp_sketch.Jl.create
                ~rng:(Rng.create (t + 999))
                ~target_dim:(Psdp_sketch.Jl.recommended_dim ~eps:0.25 dim)
                ~source_dim:dim
            in
            let g =
              Big_dot_exp.compute ~matvec:(Mat.gemv phi) ~dim ~kappa ~eps
                ~sketch:sk factors
            in
            let worst = ref 0.0 in
            Array.iteri
              (fun i d ->
                worst :=
                  Float.max !worst
                    (Float.abs (g.Big_dot_exp.dots.(i) -. d) /. d))
              exact.Big_dot_exp.dots;
            !worst)
      in
      Printf.printf "%8.1f %8d %18.5f %20.5f\n" kappa poly.Big_dot_exp.degree
        !max_rel (Stats.median errs);
      assert (!max_rel <= eps))
    kappas

let work ~quick () =
  Bench_util.section
    "EXP4b: bigDotExp cost-model work vs nnz(q) (Corollary 1.2: near-linear)";
  Printf.printf "%10s %14s %14s\n" "nnz q" "work" "work/q";
  let dims = if quick then [ 64; 128; 256 ] else [ 64; 128; 256; 512; 1024 ] in
  let points =
    List.map
      (fun dim ->
        let rng = Rng.create dim in
        let factors = Array.init 8 (fun _ -> random_factored rng dim 4 0.1) in
        let q =
          Array.fold_left (fun acc f -> acc + Factored.nnz f) 0 factors
        in
        let gram = Weighted_gram.create factors in
        Weighted_gram.set_weights gram (Array.make 8 (0.125 /. float_of_int dim));
        let sketch =
          Psdp_sketch.Jl.create ~rng ~target_dim:16 ~source_dim:dim
        in
        let (_ : Big_dot_exp.result), cost =
          Cost.measure (fun () ->
              Big_dot_exp.compute
                ~matvec:(Weighted_gram.apply gram)
                ~dim ~kappa:2.0 ~eps:0.1 ~sketch factors)
        in
        Printf.printf "%10d %14d %14.1f\n" q cost.Cost.work
          (float_of_int cost.Cost.work /. float_of_int q);
        (float_of_int q, float_of_int cost.Cost.work))
      dims
  in
  let exponent =
    Bench_util.fit_exponent (List.map fst points) (List.map snd points)
  in
  Printf.printf "empirical work exponent in q: %.2f (theory: 1 + o(1))\n"
    exponent;
  exponent
