(* EXP1 + EXP2: iteration-count scaling of decisionPSDP (Theorem 3.1).

   The theorem promises O(eps^-3 log^2 n) iterations, independent of the
   input width. We measure the adaptive solver's actual iterations at a
   fixed relative threshold (OPT/2) and report the empirical scaling
   exponents next to the theoretical caps. The adaptive solver exits at a
   verified certificate, so its counts are much smaller than the
   worst-case cap R, but the *growth* in n and 1/eps is the claim under
   test. *)

open Psdp_prelude
open Psdp_instances

let exp1_iters_vs_n ~quick () =
  Bench_util.section "EXP1: iterations vs n (Theorem 3.1; eps = 0.3 fixed)";
  Printf.printf "%6s %12s %14s %12s\n" "n" "iterations" "paper cap R" "iters/log2(n)";
  let ns = if quick then [ 4; 8; 16; 32 ] else [ 4; 8; 16; 32; 64; 128 ] in
  let eps = 0.3 in
  let points =
    List.map
      (fun n ->
        let rng = Rng.create (1000 + n) in
        let inst = Random_psd.factored ~rng ~dim:16 ~n ~rank:4 () in
        let iters, r_cap = Bench_util.decision_iterations ~eps inst in
        let log2n = Util.log2 (float_of_int n) in
        Printf.printf "%6d %12d %14d %12.1f\n" n iters r_cap
          (float_of_int iters /. (log2n *. log2n));
        (float_of_int n, float_of_int iters))
      ns
  in
  let exponent =
    Bench_util.fit_exponent (List.map fst points) (List.map snd points)
  in
  Printf.printf
    "empirical exponent of iterations in n: %.2f  (theory: polylog, i.e. ~0 \
     as a power of n; the paper cap grows as log^2 n)\n"
    exponent;
  exponent

let exp2_iters_vs_eps ~quick () =
  Bench_util.section "EXP2: iterations vs 1/eps (Theorem 3.1; fixed instance)";
  Printf.printf "%8s %12s %14s %16s\n" "eps" "iterations" "paper cap R"
    "iters*eps^2";
  let epss = if quick then [ 0.5; 0.3; 0.2 ] else [ 0.5; 0.4; 0.3; 0.2; 0.15; 0.1 ] in
  let rng = Rng.create 77 in
  let inst = Random_psd.factored ~rng ~dim:14 ~n:10 ~rank:4 () in
  let points =
    List.map
      (fun eps ->
        let iters, r_cap = Bench_util.decision_iterations ~eps inst in
        Printf.printf "%8.2f %12d %14d %16.1f\n" eps iters r_cap
          (float_of_int iters *. eps *. eps);
        (1.0 /. eps, float_of_int iters))
      epss
  in
  let exponent =
    Bench_util.fit_exponent (List.map fst points) (List.map snd points)
  in
  Printf.printf
    "empirical exponent of iterations in 1/eps: %.2f  (paper cap: 3; the \
     certificate-driven exits typically realize ~2)\n"
    exponent;
  exponent
