(* Bechamel micro-benchmarks: one Test.make per experiment, timing the
   kernel that dominates that experiment's inner loop.

   EXP1/EXP2 -> one exact-backend evaluation of the Theorem 1.1 primitive
   EXP3      -> one baseline step (dense expm + best response)
   EXP4      -> one bigDotExp call (Theorem 4.1)
   EXP5      -> one weighted-Gram application (the O(q) matvec)
   EXP6      -> one parallel spmv on the global pool
   EXP7      -> one dual-certificate verification
   EXP8      -> one MMW observe (reference implementation) *)

open Bechamel
open Psdp_prelude
open Psdp_linalg
open Psdp_sparse
open Psdp_core
open Psdp_instances

let dim = 48
let n = 12

let inst =
  lazy
    (let rng = Rng.create 31415 in
     Random_psd.factored ~rng ~dim ~n ~rank:6 ~density:0.3 ())

let weights = lazy (Decision.initial_point (Lazy.force inst))

let gram =
  lazy
    (let g = Weighted_gram.create (Instance.factors (Lazy.force inst)) in
     Weighted_gram.set_weights g (Lazy.force weights);
     g)

let dense_psi =
  lazy
    (let inst = Lazy.force inst in
     let psi = Mat.create dim dim in
     Array.iteri
       (fun i a -> Mat.axpy psi ~alpha:(Lazy.force weights).(i) a)
       (Instance.dense_mats inst);
     psi)

let sketch = lazy (Psdp_sketch.Jl.create ~rng:(Rng.create 7) ~target_dim:16 ~source_dim:dim)
let vector = lazy (Rng.gaussian_array (Rng.create 8) dim)

let exp1_exact_primitive () =
  let inst = Lazy.force inst in
  let w = Matfun.expm (Lazy.force dense_psi) in
  let dots = Array.map (fun a -> Mat.dot a w) (Instance.dense_mats inst) in
  Sys.opaque_identity (dots, Mat.trace w)

let exp3_baseline_step () =
  let inst = Lazy.force inst in
  let w = Matfun.expm (Mat.scale 0.05 (Lazy.force dense_psi)) in
  let p = Mat.scale (1.0 /. Mat.trace w) w in
  let best = ref infinity in
  Array.iter
    (fun a -> best := Float.min !best (Mat.dot a p))
    (Instance.dense_mats inst);
  Sys.opaque_identity !best

let exp4_bigdotexp () =
  let inst = Lazy.force inst in
  Sys.opaque_identity
    (Psdp_expm.Big_dot_exp.compute
       ~matvec:(Weighted_gram.apply (Lazy.force gram))
       ~dim ~kappa:2.0 ~eps:0.1 ~sketch:(Lazy.force sketch)
       (Instance.factors inst))

let exp5_gram_apply () =
  Sys.opaque_identity (Weighted_gram.apply (Lazy.force gram) (Lazy.force vector))

let exp6_parallel_spmv () =
  let pool = Psdp_parallel.Pool.global () in
  Sys.opaque_identity
    (Weighted_gram.apply ~pool (Lazy.force gram) (Lazy.force vector))

let exp7_certificate () =
  Sys.opaque_identity
    (Certificate.check_dual (Lazy.force inst) (Lazy.force weights))

let exp8_mmw_observe () =
  let game = Psdp_mmw.Mmw.create ~dim:16 ~eps0:0.25 in
  let m = Mat.scale (1.0 /. 16.0) (Mat.identity 16) in
  for _ = 1 to 3 do
    Psdp_mmw.Mmw.observe ~check:false game m
  done;
  Sys.opaque_identity (Psdp_mmw.Mmw.dotted_gain game)

let tests =
  Test.make_grouped ~name:"kernels"
    [
      Test.make ~name:"exp1-exact-primitive" (Staged.stage exp1_exact_primitive);
      Test.make ~name:"exp3-baseline-step" (Staged.stage exp3_baseline_step);
      Test.make ~name:"exp4-bigdotexp" (Staged.stage exp4_bigdotexp);
      Test.make ~name:"exp5-gram-apply" (Staged.stage exp5_gram_apply);
      Test.make ~name:"exp6-parallel-spmv" (Staged.stage exp6_parallel_spmv);
      Test.make ~name:"exp7-certificate" (Staged.stage exp7_certificate);
      Test.make ~name:"exp8-mmw-observe" (Staged.stage exp8_mmw_observe);
    ]

let run () =
  Bench_util.section "Bechamel kernel micro-benchmarks (ns per call)";
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) () in
  let raw = Benchmark.all cfg Toolkit.Instance.[ monotonic_clock ] tests in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold (fun name o acc -> (name, o) :: acc) results []
    |> List.sort compare
  in
  Printf.printf "%-30s %16s %8s\n" "kernel" "time/call" "r^2";
  List.iter
    (fun (name, o) ->
      let estimate =
        match Analyze.OLS.estimates o with Some (e :: _) -> e | _ -> nan
      in
      let r2 = Option.value ~default:nan (Analyze.OLS.r_square o) in
      Printf.printf "%-30s %13.0f ns %8.4f\n" name estimate r2)
    rows
