(* EXP6: parallelism of the per-iteration primitive (the NC claim).

   This container exposes a single CPU (Domain.recommended_domain_count =
   1), so wall-clock speedup is not observable here; what we CAN measure
   faithfully is the PRAM-style parallelism the kernels expose, via the
   cost model: work (total flops) / depth (critical path under the
   charged kernel shapes). We report that ratio for the bigDotExp
   primitive and a weighted-Gram matvec, and additionally time the pool
   at 1 and 2 domains to show the scheduling overhead is modest (on a
   multi-core host the same harness reports real speedups). *)

open Psdp_prelude
open Psdp_sparse
open Psdp_expm
open Psdp_parallel

let build ~dim ~n ~rank ~density =
  let rng = Rng.create 2718 in
  let factors =
    Array.init n (fun _ ->
        let entries = ref [ (0, 0, 1.0) ] in
        for i = 0 to dim - 1 do
          for j = 0 to rank - 1 do
            if Rng.uniform rng < density then
              entries := (i, j, Rng.gaussian rng) :: !entries
          done
        done;
        Factored.of_csr (Csr.of_coo ~rows:dim ~cols:rank !entries))
  in
  let gram = Weighted_gram.create factors in
  Weighted_gram.set_weights gram
    (Array.make n (1.0 /. float_of_int (n * rank)));
  (factors, gram)

let run ~quick () =
  Bench_util.section
    "EXP6: parallelism of the per-iteration primitive (cost model)";
  let dim = if quick then 1024 else 4096 in
  let factors, gram = build ~dim ~n:16 ~rank:8 ~density:0.2 in
  let q = Array.fold_left (fun a f -> a + Factored.nnz f) 0 factors in
  Printf.printf "operator: m = %d, n = 16, q = %d\n" dim q;
  let rng = Rng.create 3141 in
  let sketch = Psdp_sketch.Jl.create ~rng ~target_dim:24 ~source_dim:dim in
  let v = Rng.gaussian_array rng dim in
  let big pool () =
    ignore
      (Big_dot_exp.compute ~pool
         ~matvec:(Weighted_gram.apply ~pool gram)
         ~dim ~kappa:8.0 ~eps:0.1 ~sketch factors)
  in
  (* Cost-model parallelism: work/depth under the charged kernel shapes. *)
  let (), cost_big = Cost.measure (big Pool.sequential) in
  let (), cost_spmv =
    Cost.measure (fun () -> ignore (Weighted_gram.apply gram v))
  in
  Printf.printf "%-22s %14s %12s %14s\n" "kernel" "work" "depth"
    "parallelism";
  let report name (c : Cost.snapshot) =
    Printf.printf "%-22s %14d %12d %14.1f\n" name c.Cost.work c.Cost.depth
      (float_of_int c.Cost.work /. float_of_int (max 1 c.Cost.depth))
  in
  report "bigDotExp" cost_big;
  report "weighted-gram matvec" cost_spmv;

  (* Pool overhead sanity: on this single-core host domains time-share,
     so elapsed time should stay roughly flat (overhead < ~2x). *)
  Printf.printf "\n%9s %14s   (host has %d hardware thread(s))\n" "domains"
    "bigDotExp(s)"
    (Domain.recommended_domain_count ());
  let base = ref 0.0 in
  List.iter
    (fun domains ->
      Pool.with_pool ~num_domains:domains (fun pool ->
          let (), t = Timer.time_median ~repeats:3 (big pool) in
          if domains = 1 then base := t;
          Printf.printf "%9d %14.4f   (x%.2f vs 1 domain)\n" domains t
            (t /. !base)))
    [ 1; 2 ];
  (float_of_int cost_big.Cost.work /. float_of_int (max 1 cost_big.Cost.depth),
   float_of_int cost_spmv.Cost.work /. float_of_int (max 1 cost_spmv.Cost.depth))
