bench/exp_scaling.ml: Bench_util List Printf Psdp_instances Psdp_prelude Random_psd Rng Util
