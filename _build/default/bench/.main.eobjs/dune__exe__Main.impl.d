bench/main.ml: Array Exp_ablation Exp_bigdotexp Exp_invariants Exp_parallel Exp_quality Exp_scaling Exp_width Exp_work Kernels List Printf Sys
