bench/exp_width.ml: Baseline Bench_util Decision Instance List Printf Psdp_core Psdp_instances Psdp_prelude Random_psd Rng
