bench/main.mli:
