bench/exp_invariants.ml: Array Bench_util Certificate Decision Eig Float Instance Mat Matfun Params Printf Psdp_core Psdp_instances Psdp_linalg Psdp_mmw Psdp_prelude Random_psd Rng Util
