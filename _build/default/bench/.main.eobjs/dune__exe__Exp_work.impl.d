bench/exp_work.ml: Array Bench_util Cost Decision Instance List Printf Psdp_core Psdp_instances Psdp_prelude Psdp_sparse Random_psd Rng
