bench/exp_quality.ml: Bench_util Float Graph Graph_packing Known_opt List Printf Psdp_core Psdp_instances Psdp_prelude Rng Solver
