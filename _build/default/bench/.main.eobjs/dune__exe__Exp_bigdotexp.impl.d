bench/exp_bigdotexp.ml: Array Bench_util Big_dot_exp Cost Csr Factored Float List Mat Printf Psdp_expm Psdp_linalg Psdp_prelude Psdp_sketch Psdp_sparse Qr Rng Stats Weighted_gram
