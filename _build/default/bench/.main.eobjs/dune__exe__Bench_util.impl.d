bench/bench_util.ml: Array Decision Instance Params Printf Psdp_core Psdp_prelude Solver Stats String
