bench/exp_parallel.ml: Array Bench_util Big_dot_exp Cost Csr Domain Factored List Pool Printf Psdp_expm Psdp_parallel Psdp_prelude Psdp_sketch Psdp_sparse Rng Timer Weighted_gram
