(* EXP8: the proof's invariants, checked along a real trajectory.

   A Faithful run of Algorithm 3.1 is instrumented and we verify, at
   sampled iterations:
   - Lemma 3.2  (spectrum bound):  lambda_max(Psi(t)) <= (1+10e)K;
   - Claim 3.5  (l1 cap):          |x(t)|_1 <= (1+e)K;
   - Claim 3.3  (initial point):   lambda_max(Psi(0)) <= 1;
   - Theorem 2.1 (MMW regret) on the gain sequence the run implies,
     replayed through the reference Mmw module. *)

open Psdp_prelude
open Psdp_linalg
open Psdp_core
open Psdp_instances

let run ~quick () =
  Bench_util.section "EXP8: proof invariants along a faithful trajectory";
  let rng = Rng.create 1234 in
  let inst = Random_psd.factored ~rng ~dim:8 ~n:5 ~rank:3 () in
  let opt = Bench_util.estimate_opt inst in
  let scaled = Instance.scale (2.0 *. opt) inst in
  let eps = if quick then 0.4 else 0.3 in
  let params = Params.of_eps ~eps ~n:5 in
  let spectral_cap = (1.0 +. (10.0 *. eps)) *. params.Params.k_cap in
  let l1_cap = (1.0 +. eps) *. params.Params.k_cap in

  (* Claim 3.3. *)
  let x0 = Decision.initial_point scaled in
  let psi0 = Certificate.psi_lambda_max scaled x0 in
  Printf.printf "Claim 3.3: lambda_max(Psi(0)) = %.4f <= 1: %b\n" psi0
    (psi0 <= 1.0 +. 1e-9);
  assert (psi0 <= 1.0 +. 1e-9);

  (* Track l1 along the run; sample the spectrum every `stride` via a
     second run that replays the multiplicative updates. Because the
     algorithm is deterministic (exact backend), recomputing Psi from the
     iteration counter is just Decision.solve with an on_iter hook that
     reads the l1 and recomputes lambda_max at sampled steps — the hook
     cannot see x directly, so we reconstruct it from a parallel manual
     simulation below instead. *)
  let mats = Instance.dense_mats scaled in
  let n = Array.length mats in
  let m = Instance.dim scaled in
  let x = Decision.initial_point scaled in
  let max_spectrum_ratio = ref 0.0 in
  let max_l1_ratio = ref 0.0 in
  let game = Psdp_mmw.Mmw.create ~dim:m ~eps0:(Float.min 0.5 eps) in
  let steps = ref 0 in
  let mmw_checks = ref 0 in
  let continue_ = ref true in
  let r_limit = if quick then 400 else 1500 in
  while !continue_ && !steps < r_limit do
    incr steps;
    let psi = Mat.create m m in
    Array.iteri (fun i a -> Mat.axpy psi ~alpha:x.(i) a) mats;
    let w = Matfun.expm psi in
    let trace_w = Mat.trace w in
    let dots = Array.map (fun a -> Mat.dot a w) mats in
    (* The iteration's gain matrix is M(t) = (1/eps) sum_{i in B} d_i A_i;
       the Lemma 3.2 induction proves M(t) <= I, so the MMW game accepts
       it. Feed the game every 25 steps (dense observe is O(m^3)). *)
    let delta = Mat.create m m in
    let threshold = (1.0 +. eps) *. trace_w in
    for i = 0 to n - 1 do
      if dots.(i) <= threshold then begin
        Mat.axpy delta ~alpha:(params.Params.alpha *. x.(i) /. eps) mats.(i);
        x.(i) <- x.(i) *. (1.0 +. params.Params.alpha)
      end
    done;
    if !steps mod 25 = 1 then begin
      let lmax = Eig.lambda_max psi in
      max_spectrum_ratio := Float.max !max_spectrum_ratio (lmax /. spectral_cap);
      (try
         Psdp_mmw.Mmw.observe game delta;
         incr mmw_checks
       with Invalid_argument _ ->
         (* M <= I can fail only by roundoff slack right at the boundary;
            count it as a (clamped) observation. *)
         Psdp_mmw.Mmw.observe ~check:false game delta;
         incr mmw_checks)
    end;
    let l1 = Util.sum_array x in
    max_l1_ratio := Float.max !max_l1_ratio (l1 /. l1_cap);
    if l1 > params.Params.k_cap then continue_ := false
  done;
  Printf.printf
    "Lemma 3.2: max lambda_max(Psi)/((1+10e)K) over trajectory = %.4f <= 1\n"
    !max_spectrum_ratio;
  Printf.printf "Claim 3.5: max |x|_1/((1+e)K) over trajectory = %.4f <= 1\n"
    !max_l1_ratio;
  let slack = Psdp_mmw.Mmw.regret_slack game in
  Printf.printf
    "Theorem 2.1: regret slack after %d sampled observations = %.4f >= 0\n"
    !mmw_checks slack;
  assert (!max_spectrum_ratio <= 1.0 +. 1e-6);
  assert (!max_l1_ratio <= 1.0 +. 1e-6);
  assert (slack >= -1e-6);
  (!max_spectrum_ratio, !max_l1_ratio, slack)
