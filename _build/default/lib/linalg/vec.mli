(** Dense vectors as plain [float array]s.

    Functions ending in [_inplace] mutate their first argument; all others
    allocate. Dimension mismatches raise [Invalid_argument]. Kernels charge
    the {!Psdp_prelude.Cost} model. *)

type t = float array

val create : int -> t
(** Zero vector. *)

val init : int -> (int -> float) -> t
val copy : t -> t
val dim : t -> int

val dot : t -> t -> float
(** Inner product. *)

val norm2 : t -> float
(** Euclidean norm. *)

val norm_inf : t -> float
val norm1 : t -> float

val scale : float -> t -> t
val scale_inplace : t -> float -> unit

val add : t -> t -> t
val sub : t -> t -> t

val axpy : t -> alpha:float -> t -> unit
(** [axpy y ~alpha x] performs [y <- y + alpha * x]. *)

val normalize : t -> t
(** Unit-norm copy. Raises [Invalid_argument] on (numerically) zero input. *)

val hadamard : t -> t -> t
(** Element-wise product. *)

val map : (float -> float) -> t -> t
val fill : t -> float -> unit
val equal : ?tol:float -> t -> t -> bool
val pp : Format.formatter -> t -> unit

val basis : int -> int -> t
(** [basis n i] is the [i]-th standard basis vector of dimension [n]. *)
