lib/linalg/mat.ml: Array Cost Float Format Printf Psdp_parallel Psdp_prelude Util
