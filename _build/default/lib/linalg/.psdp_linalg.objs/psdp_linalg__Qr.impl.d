lib/linalg/qr.ml: Array Cost Mat Psdp_prelude Util
