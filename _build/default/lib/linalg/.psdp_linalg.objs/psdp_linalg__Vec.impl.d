lib/linalg/vec.ml: Array Cost Float Printf Psdp_prelude Util
