lib/linalg/cholesky.ml: Array Cost Float Mat Psdp_prelude Util
