lib/linalg/lanczos.ml: Array Eig Float Psdp_prelude Rng Vec
