lib/linalg/eig.mli: Mat
