lib/linalg/matfun.mli: Mat
