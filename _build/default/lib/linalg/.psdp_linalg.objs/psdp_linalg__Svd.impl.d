lib/linalg/svd.ml: Array Eig Float Mat
