lib/linalg/mat.mli: Format Psdp_parallel Vec
