lib/linalg/matfun.ml: Array Eig Float Mat Psdp_prelude
