lib/linalg/eig.ml: Array Cost Float Mat Psdp_prelude Util
