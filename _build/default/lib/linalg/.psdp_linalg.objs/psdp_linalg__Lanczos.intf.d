lib/linalg/lanczos.mli: Psdp_prelude Vec
