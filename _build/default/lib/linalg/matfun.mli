(** Matrix functions of symmetric matrices, [f(A) = Σ f(λᵢ)vᵢvᵢᵀ]
    (paper, Section 2.1). These dense O(m³) routines are the exact oracle;
    the solver's fast path approximates them via {!Psdp_expm}. *)

val apply : (float -> float) -> Mat.t -> Mat.t
(** [apply f a] for symmetric [a]. *)

val expm : Mat.t -> Mat.t
(** Matrix exponential via eigendecomposition. *)

val expm_taylor_squaring : ?terms:int -> Mat.t -> Mat.t
(** Independent matrix exponential: scale by a power of two until the
    Frobenius norm is below 1/4, sum the Taylor series ([terms] default 16),
    then repeatedly square. Used to cross-validate {!expm} in the tests. *)

val sqrtm_psd : Mat.t -> Mat.t
(** PSD square root; negative roundoff-level eigenvalues are clamped to 0. *)

val inv_sqrtm_psd : ?rank_tol:float -> Mat.t -> Mat.t
(** [A^{-1/2}] on the range of [A]: eigenvalues below
    [rank_tol · λmax] (default [1e-12]) are treated as zero and inverted to
    zero (Moore–Penrose style). This is the paper's [C^{-1/2}] when [C] has
    full rank. *)

val inv_psd : ?rank_tol:float -> Mat.t -> Mat.t
(** Pseudo-inverse of a PSD matrix by eigenvalue inversion. *)

val exp_dot : Mat.t -> Mat.t -> float
(** [exp_dot phi a] is [exp(Φ) • A] computed exactly — the primitive of the
    Main Theorem, dense reference implementation. *)

val exp_trace : Mat.t -> float
(** [Tr exp(Φ)] computed exactly. *)
