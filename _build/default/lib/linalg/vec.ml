open Psdp_prelude

type t = float array

let create n = Array.make n 0.0
let init = Array.init
let copy = Array.copy
let dim = Array.length

let check_same_dim name x y =
  if Array.length x <> Array.length y then
    invalid_arg
      (Printf.sprintf "Vec.%s: dimension mismatch (%d vs %d)" name
         (Array.length x) (Array.length y))

let dot x y =
  check_same_dim "dot" x y;
  let n = Array.length x in
  Cost.serial (2 * n);
  let s = ref 0.0 in
  for i = 0 to n - 1 do
    s := !s +. (x.(i) *. y.(i))
  done;
  !s

let norm2 x = sqrt (dot x x)

let norm_inf x = Array.fold_left (fun acc v -> Float.max acc (Float.abs v)) 0.0 x
let norm1 x = Array.fold_left (fun acc v -> acc +. Float.abs v) 0.0 x

let scale alpha x =
  Cost.serial (Array.length x);
  Array.map (fun v -> alpha *. v) x

let scale_inplace x alpha =
  Cost.serial (Array.length x);
  for i = 0 to Array.length x - 1 do
    x.(i) <- alpha *. x.(i)
  done

let add x y =
  check_same_dim "add" x y;
  Cost.serial (Array.length x);
  Array.init (Array.length x) (fun i -> x.(i) +. y.(i))

let sub x y =
  check_same_dim "sub" x y;
  Cost.serial (Array.length x);
  Array.init (Array.length x) (fun i -> x.(i) -. y.(i))

let axpy y ~alpha x =
  check_same_dim "axpy" y x;
  Cost.serial (2 * Array.length x);
  for i = 0 to Array.length y - 1 do
    y.(i) <- y.(i) +. (alpha *. x.(i))
  done

let normalize x =
  let n = norm2 x in
  if n < 1e-300 then invalid_arg "Vec.normalize: zero vector";
  scale (1.0 /. n) x

let hadamard x y =
  check_same_dim "hadamard" x y;
  Cost.serial (Array.length x);
  Array.init (Array.length x) (fun i -> x.(i) *. y.(i))

let map = Array.map
let fill x v = Array.fill x 0 (Array.length x) v

let equal ?(tol = 1e-9) x y =
  Array.length x = Array.length y
  &&
  let ok = ref true in
  for i = 0 to Array.length x - 1 do
    if not (Util.close ~rtol:tol ~atol:tol x.(i) y.(i)) then ok := false
  done;
  !ok

let pp ppf x = Util.pp_float_list ppf (Array.to_list x)

let basis n i =
  if i < 0 || i >= n then invalid_arg "Vec.basis: index out of range";
  let v = create n in
  v.(i) <- 1.0;
  v
