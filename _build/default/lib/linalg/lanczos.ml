open Psdp_prelude

let lambda_max ?iters ?rng ~dim matvec =
  if dim <= 0 then invalid_arg "Lanczos.lambda_max: dim <= 0";
  let iters = match iters with Some k -> max 1 k | None -> min dim 40 in
  let rng = match rng with Some r -> r | None -> Rng.create 0x1ac205 in
  let q0 = Vec.normalize (Rng.gaussian_array rng dim) in
  let basis = Array.make (iters + 1) q0 in
  let alphas = Array.make iters 0.0 in
  let betas = Array.make iters 0.0 in
  let steps = ref 0 in
  (try
     for j = 0 to iters - 1 do
       let w = matvec basis.(j) in
       if Array.length w <> dim then
         invalid_arg "Lanczos.lambda_max: matvec changed dimension";
       alphas.(j) <- Vec.dot basis.(j) w;
       Vec.axpy w ~alpha:(-.alphas.(j)) basis.(j);
       if j > 0 then Vec.axpy w ~alpha:(-.betas.(j - 1)) basis.(j - 1);
       (* Full reorthogonalization (twice) keeps the Ritz values honest for
          the clustered spectra the solver produces. *)
       for _pass = 1 to 2 do
         for k = 0 to j do
           let c = Vec.dot basis.(k) w in
           if Float.abs c > 0.0 then Vec.axpy w ~alpha:(-.c) basis.(k)
         done
       done;
       let beta = Vec.norm2 w in
       steps := j + 1;
       if beta < 1e-13 then raise Exit;
       betas.(j) <- beta;
       basis.(j + 1) <- Vec.scale (1.0 /. beta) w
     done
   with Exit -> ());
  let k = max 1 !steps in
  let d = Array.sub alphas 0 k in
  let e = Array.sub betas 0 (max 0 (k - 1)) in
  let values = Eig.tridiagonal_values d e in
  values.(0)

let lambda_max_upper ?iters ?rng ?(slack = 1.01) ~dim matvec =
  let est = lambda_max ?iters ?rng ~dim matvec in
  if est >= 0.0 then est *. slack else est /. slack
