(** Symmetric eigendecomposition.

    Householder reduction to tridiagonal form followed by the implicit-shift
    QL iteration — the classical dense O(m³) algorithm. This is the exact
    oracle behind [f(A) = Σ f(λᵢ)vᵢvᵢᵀ] (Section 2.1 of the paper) and the
    reference against which the fast polynomial approximation of Theorem 4.1
    is tested. *)

type decomposition = {
  values : float array;  (** Eigenvalues in decreasing order. *)
  vectors : Mat.t;  (** Column [i] is the unit eigenvector of [values.(i)]. *)
}

exception No_convergence
(** QL iteration failed to converge within the iteration budget (does not
    happen for symmetric inputs in practice). *)

val symmetric : Mat.t -> decomposition
(** Eigendecomposition of a symmetric matrix. The input is symmetrized
    first to guard against roundoff-level asymmetry.
    @raise Invalid_argument when the input is not (nearly) symmetric. *)

val tridiagonal_values : float array -> float array -> float array
(** [tridiagonal_values d e] are the eigenvalues (decreasing) of the
    symmetric tridiagonal matrix with diagonal [d] (length [n]) and
    subdiagonal [e] (length [n-1]). Used by the Lanczos estimator. *)

val lambda_max : Mat.t -> float
(** Largest eigenvalue of a symmetric matrix. *)

val lambda_min : Mat.t -> float

val reconstruct : decomposition -> Mat.t
(** [V diag(values) Vᵀ] — testing helper. *)

val apply_fun : (float -> float) -> decomposition -> Mat.t
(** [apply_fun f d] is [Σᵢ f(λᵢ) vᵢvᵢᵀ]. *)
