open Psdp_prelude

type decomposition = { values : float array; vectors : Mat.t }

exception No_convergence

(* Householder reduction of a symmetric matrix to tridiagonal form,
   accumulating the orthogonal transformation. On return [d] holds the
   diagonal, [e] the subdiagonal shifted so that [e.(i)] couples rows
   [i] and [i+1] ([e.(n-1)] is zero), and [z] holds the transformation
   (columns will become eigenvectors after the QL pass). Classical
   "tred2" with 0-based indexing. *)
let tridiagonalize z n d e =
  let zget i j = Mat.get z i j and zset i j v = Mat.set z i j v in
  for i = n - 1 downto 1 do
    let l = i - 1 in
    let h = ref 0.0 in
    if l > 0 then begin
      let scale = ref 0.0 in
      for k = 0 to l do
        scale := !scale +. Float.abs (zget i k)
      done;
      if !scale = 0.0 then e.(i) <- zget i l
      else begin
        for k = 0 to l do
          zset i k (zget i k /. !scale);
          h := !h +. Util.square (zget i k)
        done;
        let f = zget i l in
        let g = if f >= 0.0 then -.sqrt !h else sqrt !h in
        e.(i) <- !scale *. g;
        h := !h -. (f *. g);
        zset i l (f -. g);
        let fsum = ref 0.0 in
        for j = 0 to l do
          zset j i (zget i j /. !h);
          let g = ref 0.0 in
          for k = 0 to j do
            g := !g +. (zget j k *. zget i k)
          done;
          for k = j + 1 to l do
            g := !g +. (zget k j *. zget i k)
          done;
          e.(j) <- !g /. !h;
          fsum := !fsum +. (e.(j) *. zget i j)
        done;
        let hh = !fsum /. (!h +. !h) in
        for j = 0 to l do
          let f = zget i j in
          let gj = e.(j) -. (hh *. f) in
          e.(j) <- gj;
          for k = 0 to j do
            zset j k (zget j k -. ((f *. e.(k)) +. (gj *. zget i k)))
          done
        done
      end
    end
    else e.(i) <- zget i l;
    d.(i) <- !h
  done;
  d.(0) <- 0.0;
  e.(0) <- 0.0;
  for i = 0 to n - 1 do
    let l = i - 1 in
    if d.(i) <> 0.0 then
      for j = 0 to l do
        let g = ref 0.0 in
        for k = 0 to l do
          g := !g +. (zget i k *. zget k j)
        done;
        for k = 0 to l do
          zset k j (zget k j -. (!g *. zget k i))
        done
      done;
    d.(i) <- zget i i;
    zset i i 1.0;
    for j = 0 to l do
      zset j i 0.0;
      zset i j 0.0
    done
  done;
  (* Shift e to the convention e.(i) couples i and i+1. *)
  for i = 1 to n - 1 do
    e.(i - 1) <- e.(i)
  done;
  e.(n - 1) <- 0.0

let hypot_ a b = Float.hypot a b
let sign_of a b = if b >= 0.0 then Float.abs a else -.Float.abs a

(* Implicit-shift QL iteration on a symmetric tridiagonal matrix.
   [d]: diagonal (length n), [e]: subdiagonal with e.(i) coupling i,i+1
   (e.(n-1) = 0). When [z] is given, its columns are rotated along so
   that column i ends up as the eigenvector of d.(i). Classical "tqli". *)
let ql_implicit d e ?z n =
  let rotate =
    match z with
    | None -> fun _ _ _ _ -> ()
    | Some z ->
        fun i s c f_unused ->
          ignore f_unused;
          for k = 0 to n - 1 do
            let f = Mat.get z k (i + 1) in
            Mat.set z k (i + 1) ((s *. Mat.get z k i) +. (c *. f));
            Mat.set z k i ((c *. Mat.get z k i) -. (s *. f))
          done
  in
  for l = 0 to n - 1 do
    let iter = ref 0 in
    let continue_ = ref true in
    while !continue_ do
      (* Look for a negligible subdiagonal element to split the matrix. *)
      let m = ref l in
      let found = ref false in
      while (not !found) && !m < n - 1 do
        let dd = Float.abs d.(!m) +. Float.abs d.(!m + 1) in
        if Float.abs e.(!m) <= 1e-15 *. dd then found := true
        else incr m
      done;
      if !m = l then continue_ := false
      else begin
        incr iter;
        if !iter > 60 then raise No_convergence;
        let g = ref ((d.(l + 1) -. d.(l)) /. (2.0 *. e.(l))) in
        let r = ref (hypot_ !g 1.0) in
        g := d.(!m) -. d.(l) +. (e.(l) /. (!g +. sign_of !r !g));
        let s = ref 1.0 and c = ref 1.0 and p = ref 0.0 in
        let i = ref (!m - 1) in
        let broke = ref false in
        while (not !broke) && !i >= l do
          let f = !s *. e.(!i) in
          let b = !c *. e.(!i) in
          r := hypot_ f !g;
          e.(!i + 1) <- !r;
          if !r = 0.0 then begin
            d.(!i + 1) <- d.(!i + 1) -. !p;
            e.(!m) <- 0.0;
            broke := true
          end
          else begin
            s := f /. !r;
            c := !g /. !r;
            g := d.(!i + 1) -. !p;
            let r2 = ((d.(!i) -. !g) *. !s) +. (2.0 *. !c *. b) in
            p := !s *. r2;
            d.(!i + 1) <- !g +. !p;
            g := (!c *. r2) -. b;
            rotate !i !s !c 0.0;
            decr i
          end
        done;
        if not (!broke && !i >= l) then begin
          d.(l) <- d.(l) -. !p;
          e.(l) <- !g;
          e.(!m) <- 0.0
        end
      end
    done
  done

let sort_descending d z_opt n =
  let order = Array.init n (fun i -> i) in
  Array.sort (fun i j -> Float.compare d.(j) d.(i)) order;
  let sorted_d = Array.init n (fun i -> d.(order.(i))) in
  let sorted_z =
    match z_opt with
    | None -> None
    | Some z -> Some (Mat.init n n (fun i j -> Mat.get z i order.(j)))
  in
  (sorted_d, sorted_z)

let symmetric a =
  if not (Mat.is_square a) then invalid_arg "Eig.symmetric: not square";
  if not (Mat.is_symmetric ~tol:1e-6 a) then
    invalid_arg "Eig.symmetric: matrix is not symmetric";
  let n = Mat.rows a in
  Cost.parallel ~work:(9 * n * n * n) ~span:(n * 60);
  if n = 0 then { values = [||]; vectors = Mat.create 0 0 }
  else begin
    let z = Mat.symmetrize a in
    let d = Array.make n 0.0 and e = Array.make n 0.0 in
    if n = 1 then { values = [| Mat.get z 0 0 |]; vectors = Mat.identity 1 }
    else begin
      tridiagonalize z n d e;
      ql_implicit d e ~z n;
      let values, vectors = sort_descending d (Some z) n in
      match vectors with
      | Some v -> { values; vectors = v }
      | None -> assert false
    end
  end

let tridiagonal_values d e =
  let n = Array.length d in
  if Array.length e <> n - 1 then
    invalid_arg "Eig.tridiagonal_values: need n-1 subdiagonal entries";
  if n = 0 then [||]
  else begin
    let d = Array.copy d in
    let e2 = Array.make n 0.0 in
    Array.blit e 0 e2 0 (n - 1);
    if n > 1 then ql_implicit d e2 n;
    let values, _ = sort_descending d None n in
    values
  end

let lambda_max a =
  let { values; _ } = symmetric a in
  if Array.length values = 0 then invalid_arg "Eig.lambda_max: empty matrix";
  values.(0)

let lambda_min a =
  let { values; _ } = symmetric a in
  let n = Array.length values in
  if n = 0 then invalid_arg "Eig.lambda_min: empty matrix";
  values.(n - 1)

let apply_fun f { values; vectors } =
  let n = Array.length values in
  let scaled =
    Mat.init n n (fun i j -> Mat.get vectors i j *. f values.(j))
  in
  Mat.mul scaled (Mat.transpose vectors)

let reconstruct d = apply_fun (fun x -> x) d
