type t = { u : Mat.t; sigma : float array; v : Mat.t }

(* For m >= n: AᵀA = V Σ² Vᵀ gives V and Σ; then U = A V Σ⁻¹. *)
let thin_tall ?(rank_tol = 1e-10) a =
  let n = Mat.cols a in
  let gram = Mat.mul (Mat.transpose a) a in
  let { Eig.values; vectors } = Eig.symmetric gram in
  let lambda_max = Float.max 0.0 (if n = 0 then 0.0 else values.(0)) in
  (* Rank decisions happen in the Gram (σ²) domain: roundoff in AᵀA
     pollutes zero eigenvalues at the eps·λmax level, i.e. √eps·σmax in
     singular values — cutting on λ <= tol·λmax absorbs it. *)
  let cutoff = rank_tol *. Float.max 1e-300 lambda_max in
  let kept = ref [] in
  for j = n - 1 downto 0 do
    if values.(j) > cutoff then kept := j :: !kept
  done;
  let kept = Array.of_list !kept in
  let r = Array.length kept in
  let sigma = Array.map (fun j -> sqrt (Float.max 0.0 values.(j))) kept in
  let v = Mat.init n r (fun i k -> Mat.get vectors i kept.(k)) in
  let av = Mat.mul a v in
  let u =
    Mat.init (Mat.rows a) r (fun i k -> Mat.get av i k /. sigma.(k))
  in
  { u; sigma; v }

let thin ?rank_tol a =
  if Mat.rows a >= Mat.cols a then thin_tall ?rank_tol a
  else begin
    let { u; sigma; v } = thin_tall ?rank_tol (Mat.transpose a) in
    { u = v; sigma; v = u }
  end

let reconstruct { u; sigma; v } =
  let scaled =
    Mat.init (Mat.rows u) (Array.length sigma) (fun i j ->
        Mat.get u i j *. sigma.(j))
  in
  Mat.mul scaled (Mat.transpose v)

let rank ?rank_tol a = Array.length (thin ?rank_tol a).sigma

let condition_number ?rank_tol a =
  let { sigma; _ } = thin ?rank_tol a in
  match Array.length sigma with
  | 0 -> 1.0
  | r -> sigma.(0) /. sigma.(r - 1)

let spectral_norm a =
  let { sigma; _ } = thin a in
  if Array.length sigma = 0 then 0.0 else sigma.(0)
