(** Householder QR factorization.

    Used for the paper's preprocessing remark (factoring PSD constraint
    matrices) and by the instance generators to produce random orthonormal
    frames. *)

val thin : Mat.t -> Mat.t * Mat.t
(** [thin a] for an [m×n] matrix with [m >= n] returns [(q, r)] with
    [q] of size [m×n] having orthonormal columns, [r] upper-triangular
    [n×n], and [q * r = a]. *)

val orthonormal_columns : Mat.t -> Mat.t
(** [orthonormal_columns a] is just the [Q] factor of {!thin}. *)

val reconstruct : Mat.t * Mat.t -> Mat.t
(** [reconstruct (q, r)] is [q * r] (testing helper). *)
