(** Lanczos estimation of extreme eigenvalues of an implicit symmetric
    operator — used to bound [κ >= ‖Φ‖₂] for the polynomial degree of
    Theorem 4.1 when the analytic bound of Lemma 3.5 is not available,
    and to verify dual feasibility ([λmax(Σ xᵢAᵢ) <= 1]) at scale. *)

val lambda_max :
  ?iters:int ->
  ?rng:Psdp_prelude.Rng.t ->
  dim:int ->
  (Vec.t -> Vec.t) ->
  float
(** [lambda_max ~dim matvec] estimates the largest eigenvalue of the
    symmetric operator given by [matvec] using [iters] (default
    [min dim 40]) Lanczos steps with full reorthogonalization. For PSD
    operators the estimate is a lower bound converging geometrically;
    callers that need an upper bound should inflate it (see
    {!lambda_max_upper}). *)

val lambda_max_upper :
  ?iters:int ->
  ?rng:Psdp_prelude.Rng.t ->
  ?slack:float ->
  dim:int ->
  (Vec.t -> Vec.t) ->
  float
(** {!lambda_max} inflated multiplicatively by [slack] (default 1.01) —
    a pragmatic upper bound for choosing polynomial degrees. *)
