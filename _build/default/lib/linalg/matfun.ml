let apply f a = Eig.apply_fun f (Eig.symmetric a)
let expm a = apply exp a

let expm_taylor_squaring ?(terms = 16) a =
  if not (Mat.is_square a) then invalid_arg "Matfun.expm_taylor_squaring";
  let n = Mat.rows a in
  let norm = Mat.frobenius_norm a in
  (* Choose s with ‖A/2^s‖_F <= 1/4 so the truncated series converges to
     machine precision with few terms. *)
  let s =
    if norm <= 0.25 then 0
    else int_of_float (Float.ceil (Psdp_prelude.Util.log2 (norm /. 0.25)))
  in
  let scaled = Mat.scale (1.0 /. Float.of_int (1 lsl s)) a in
  (* exp(B) ≈ Σ_{k<terms} B^k / k! accumulated by running powers. *)
  let acc = Mat.identity n in
  let term = ref (Mat.identity n) in
  for k = 1 to terms do
    term := Mat.scale (1.0 /. float_of_int k) (Mat.mul !term scaled);
    Mat.add_inplace acc !term
  done;
  let result = ref acc in
  for _ = 1 to s do
    result := Mat.mul !result !result
  done;
  Mat.symmetrize !result

let sqrtm_psd a = apply (fun x -> sqrt (Float.max 0.0 x)) a

let inv_sqrtm_psd ?(rank_tol = 1e-12) a =
  let d = Eig.symmetric a in
  let lmax = Float.max 0.0 (if Array.length d.values = 0 then 0.0 else d.values.(0)) in
  let cutoff = rank_tol *. Float.max 1.0 lmax in
  Eig.apply_fun (fun x -> if x <= cutoff then 0.0 else 1.0 /. sqrt x) d

let inv_psd ?(rank_tol = 1e-12) a =
  let d = Eig.symmetric a in
  let lmax = Float.max 0.0 (if Array.length d.values = 0 then 0.0 else d.values.(0)) in
  let cutoff = rank_tol *. Float.max 1.0 lmax in
  Eig.apply_fun (fun x -> if x <= cutoff then 0.0 else 1.0 /. x) d

let exp_dot phi a = Mat.dot (expm phi) a

let exp_trace phi =
  let { Eig.values; _ } = Eig.symmetric phi in
  Psdp_prelude.Util.sum_array (Array.map exp values)
