open Psdp_prelude

(* Householder QR: reflectors are accumulated in-place below the diagonal
   of the working copy, with the scalar beta = 2/vᵀv kept separately. *)

let thin a =
  let m = Mat.rows a and n = Mat.cols a in
  if m < n then invalid_arg "Qr.thin: requires rows >= cols";
  Cost.parallel ~work:(2 * m * n * n) ~span:(n * 20);
  let work = Mat.copy a in
  let betas = Array.make n 0.0 in
  (* Householder vector for column k is stored in work[k..m-1, k] with the
     implicit convention v.(k) := stored head (not 1-normalized). *)
  let vhead = Array.make n 0.0 in
  for k = 0 to n - 1 do
    (* Compute the norm of the k-th column below row k. *)
    let norm2 = ref 0.0 in
    for i = k to m - 1 do
      norm2 := !norm2 +. Util.square (Mat.get work i k)
    done;
    let norm = sqrt !norm2 in
    let x0 = Mat.get work k k in
    if norm < 1e-300 then begin
      betas.(k) <- 0.0;
      vhead.(k) <- 0.0
    end
    else begin
      let alpha = if x0 >= 0.0 then -.norm else norm in
      let v0 = x0 -. alpha in
      (* vᵀv = ‖x‖² - 2 α x₀ + α² = 2(α² - α x₀) since ‖x‖² = α². *)
      let vtv = (2.0 *. Util.square alpha) -. (2.0 *. alpha *. x0) in
      let beta = if vtv < 1e-300 then 0.0 else 2.0 /. vtv in
      betas.(k) <- beta;
      vhead.(k) <- v0;
      Mat.set work k k alpha;
      (* Apply (I - beta v vᵀ) to the remaining columns. The vector v is
         (v0, work[k+1..m-1, k]). *)
      for j = k + 1 to n - 1 do
        let dotv = ref (v0 *. Mat.get work k j) in
        for i = k + 1 to m - 1 do
          dotv := !dotv +. (Mat.get work i k *. Mat.get work i j)
        done;
        let s = beta *. !dotv in
        Mat.set work k j (Mat.get work k j -. (s *. v0));
        for i = k + 1 to m - 1 do
          Mat.set work i j (Mat.get work i j -. (s *. Mat.get work i k))
        done
      done
    end
  done;
  (* Extract R. *)
  let r = Mat.init n n (fun i j -> if j >= i then Mat.get work i j else 0.0) in
  (* Build Q by applying the reflectors in reverse order to the first n
     columns of the identity. *)
  let q = Mat.init m n (fun i j -> if i = j then 1.0 else 0.0) in
  for k = n - 1 downto 0 do
    let beta = betas.(k) in
    if beta <> 0.0 then begin
      let v0 = vhead.(k) in
      for j = 0 to n - 1 do
        let dotv = ref (v0 *. Mat.get q k j) in
        for i = k + 1 to m - 1 do
          dotv := !dotv +. (Mat.get work i k *. Mat.get q i j)
        done;
        let s = beta *. !dotv in
        Mat.set q k j (Mat.get q k j -. (s *. v0));
        for i = k + 1 to m - 1 do
          Mat.set q i j (Mat.get q i j -. (s *. Mat.get work i k))
        done
      done
    end
  done;
  (q, r)

let orthonormal_columns a = fst (thin a)
let reconstruct (q, r) = Mat.mul q r
