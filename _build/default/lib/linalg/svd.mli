(** Thin singular value decomposition, via the symmetric eigensolver.

    Used for analyzing factor conditioning ({!Psdp_core.Analysis}) and by
    users inspecting instances: for an [m×n] matrix with [m >= n],
    [A = U Σ Vᵀ] with [U] ([m×r]) and [V] ([n×r]) having orthonormal
    columns and [Σ] the positive singular values ([r = rank]). Computed
    from the eigendecomposition of the smaller Gram matrix — accurate to
    [√machine-eps] for the smallest singular values, which is ample for
    rank/conditioning diagnostics (not a substitute for Golub–Kahan in
    ill-posed settings; documented trade-off). *)

type t = {
  u : Mat.t;  (** [m × r], orthonormal columns *)
  sigma : float array;  (** positive singular values, decreasing *)
  v : Mat.t;  (** [n × r], orthonormal columns *)
}

val thin : ?rank_tol:float -> Mat.t -> t
(** [thin a] for any shape (internally transposes when [m < n]).
    Gram-domain eigenvalues below [rank_tol·σmax²] (default [1e-10]) are
    dropped. *)

val reconstruct : t -> Mat.t
(** [U Σ Vᵀ] — testing helper. *)

val rank : ?rank_tol:float -> Mat.t -> int
val condition_number : ?rank_tol:float -> Mat.t -> float
(** [σmax/σmin] over the retained spectrum; [1.] for the zero matrix. *)

val spectral_norm : Mat.t -> float
(** Largest singular value. *)
