open Psdp_linalg

type t = {
  dim : int;
  eps0 : float;
  mutable sum_gain : Mat.t;
  mutable dotted : float;
  mutable steps : int;
}

let create ~dim ~eps0 =
  if dim <= 0 then invalid_arg "Mmw.create: dim must be positive";
  if eps0 <= 0.0 || eps0 > 0.5 then
    invalid_arg "Mmw.create: eps0 must lie in (0, 1/2]";
  { dim; eps0; sum_gain = Mat.create dim dim; dotted = 0.0; steps = 0 }

let dim t = t.dim
let iterations t = t.steps

let probability_matrix t =
  let w = Matfun.expm (Mat.scale t.eps0 t.sum_gain) in
  Mat.scale (1.0 /. Mat.trace w) w

let observe ?(check = true) t m =
  if Mat.rows m <> t.dim || Mat.cols m <> t.dim then
    invalid_arg "Mmw.observe: dimension mismatch";
  if check then begin
    if not (Mat.is_symmetric ~tol:1e-8 m) then
      invalid_arg "Mmw.observe: gain matrix must be symmetric";
    let values = (Eig.symmetric m).Eig.values in
    let n = Array.length values in
    if values.(n - 1) < -1e-8 then
      invalid_arg "Mmw.observe: gain matrix must be PSD";
    if values.(0) > 1.0 +. 1e-8 then
      invalid_arg "Mmw.observe: gain matrix must satisfy M <= I"
  end;
  let p = probability_matrix t in
  t.dotted <- t.dotted +. Mat.dot m p;
  t.sum_gain <- Mat.add t.sum_gain m;
  t.steps <- t.steps + 1

let cumulative_gain t = Mat.copy t.sum_gain
let dotted_gain t = t.dotted

let regret_slack t =
  let lmax = Eig.lambda_max t.sum_gain in
  ((1.0 +. t.eps0) *. t.dotted) +. (log (float_of_int t.dim) /. t.eps0) -. lmax
