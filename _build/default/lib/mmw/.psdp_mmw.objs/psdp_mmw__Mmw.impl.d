lib/mmw/mmw.ml: Array Eig Mat Matfun Psdp_linalg
