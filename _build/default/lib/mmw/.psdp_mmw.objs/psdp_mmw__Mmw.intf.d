lib/mmw/mmw.mli: Mat Psdp_linalg
