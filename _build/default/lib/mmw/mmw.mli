(** Matrix multiplicative weights (Arora–Kale), the engine behind the
    solver's convergence proof (paper, Theorem 2.1).

    The game: start with [W⁽¹⁾ = I]; at step [t] publish the probability
    matrix [P⁽ᵗ⁾ = W⁽ᵗ⁾/Tr W⁽ᵗ⁾], receive a PSD gain matrix [M⁽ᵗ⁾ ≼ I],
    and update [W⁽ᵗ⁺¹⁾ = exp(ε₀ Σ_{t'<=t} M⁽ᵗ'⁾)]. After [T] steps,

    [(1+ε₀) Σ_t M⁽ᵗ⁾•P⁽ᵗ⁾ >= λmax(Σ_t M⁽ᵗ⁾) − ln(m)/ε₀].

    This module is the dense reference implementation used by the tests
    (to validate the regret bound on adversarial gain sequences) and by
    the invariant-checking bench (EXP8); the production solver inlines the
    same update with the fast exponential primitive. *)

open Psdp_linalg

type t

val create : dim:int -> eps0:float -> t
(** [eps0] must lie in (0, 1/2]. *)

val dim : t -> int
val iterations : t -> int

val probability_matrix : t -> Mat.t
(** Current [P⁽ᵗ⁾]; trace 1 by construction. *)

val observe : ?check:bool -> t -> Mat.t -> unit
(** Incur a gain matrix. With [~check:true] (default) the matrix is
    verified to be symmetric, PSD and [≼ I] (within numerical tolerance),
    raising [Invalid_argument] otherwise. *)

val cumulative_gain : t -> Mat.t
(** [Σ_{t'<=t} M⁽ᵗ'⁾]. *)

val dotted_gain : t -> float
(** [Σ_t M⁽ᵗ⁾•P⁽ᵗ⁾], accumulated as the game is played. *)

val regret_slack : t -> float
(** [(1+ε₀)·dotted_gain + ln(m)/ε₀ − λmax(cumulative_gain)] — Theorem 2.1
    asserts this is non-negative. *)
