(** Width-independent positive (packing) {e linear} programming — Young's
    algorithm [You01], the scalar ancestor of Algorithm 3.1.

    The program is [max 1ᵀx] s.t. [M x <= 1] coordinate-wise, [x >= 0],
    with [M >= 0] entry-wise ([m] rows, [n] columns). A positive SDP whose
    constraint matrices are all diagonal is exactly such an LP
    ([Mⱼᵢ = (Aᵢ)ⱼⱼ]), which the test suite exploits: {!Decision.solve}
    and this module must agree on diagonal instances.

    The algorithm is Algorithm 3.1 with the matrix exponential replaced by
    the scalar soft-max weights [wⱼ = exp((Mx)ⱼ)] — each iteration is
    O(nnz M). *)

type t
(** A packing LP. Immutable. *)

val create : rows:int -> cols:float array array -> t
(** [cols.(i)] is column [i] of [M] (length [rows]); entries must be
    non-negative, each column non-zero. *)

val rows : t -> int
val num_vars : t -> int
val column : t -> int -> float array

val of_diagonal_instance : Instance.t -> t
(** Extract the LP from an SDP instance whose constraints are all
    diagonal. Raises [Invalid_argument] when an off-diagonal entry is
    non-zero (beyond 1e-12 relative). *)

type outcome =
  | Dual of { x : float array }  (** [‖x‖₁ >= 1−ε] and [Mx <= 1] *)
  | Primal of { p : float array }
      (** covering certificate: [Σⱼ pⱼ = 1] and [(Mᵀp)ᵢ >= 1−ε] ∀i *)

type result = { outcome : outcome; iterations : int }

val decide :
  ?mode:Decision.mode -> ?on_iter:(int -> unit) -> eps:float -> t -> result
(** ε-decision problem, same contract as {!Decision.solve}. *)

type optimum = {
  x : float array;  (** feasible, verified *)
  value : float;  (** [1ᵀx >= (1−O(ε))·OPT] *)
  upper_bound : float;
  decision_calls : int;
}

val maximize : ?mode:Decision.mode -> eps:float -> t -> optimum
(** Optimization by the same multiplicative bisection as
    {!Solver.solve_packing}. *)

val feasible : ?tol:float -> t -> float array -> bool
(** [Mx <= 1 + tol] with [x >= 0]. *)

val value : float array -> float
(** [1ᵀx]. *)
