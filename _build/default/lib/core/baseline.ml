open Psdp_linalg

type outcome = Feasible of { x : float array } | Infeasible of { y : Mat.t }
type result = { outcome : outcome; iterations : int; width : float }

type optimum = {
  x : float array;
  value : float;
  upper_bound : float;
  decision_calls : int;
  total_iterations : int;
}

let decide ?(mode = Decision.Adaptive { check_every = 10 }) ?on_iter ~eps inst =
  if eps <= 0.0 || eps >= 1.0 then
    invalid_arg "Baseline.decide: eps must lie in (0,1)";
  let n = Instance.num_constraints inst in
  let m = Instance.dim inst in
  let mats = Instance.dense_mats inst in
  let rho = Float.max 1e-12 (Instance.width inst) in
  let eps0 = eps /. 4.0 in
  let budget =
    int_of_float
      (Float.ceil (16.0 *. rho *. log (float_of_int (max 2 m)) /. (eps *. eps)))
    + 1
  in
  (* Accumulated gain Σ_τ A_{i*τ}; W = exp((ε₀/ρ)·gain). *)
  let gain = Mat.create m m in
  let plays = Array.make n 0 in
  let t = ref 0 in
  let finished : outcome option ref = ref None in
  let averaged_dual () =
    let total = float_of_int (max 1 !t) in
    Array.map (fun c -> float_of_int c /. total) plays
  in
  let check_early () =
    if !t > 0 then begin
      let cert = Certificate.rescale_dual inst (averaged_dual ()) in
      if cert.Certificate.feasible && cert.Certificate.value >= 1.0 -. eps then
        finished := Some (Feasible { x = cert.Certificate.x })
    end
  in
  while !finished = None && !t < budget do
    incr t;
    let w = Matfun.expm (Mat.scale (eps0 /. rho) gain) in
    let p = Mat.scale (1.0 /. Mat.trace w) w in
    let best = ref 0 and best_dot = ref infinity in
    for i = 0 to n - 1 do
      let d = Mat.dot mats.(i) p in
      if d < !best_dot then begin
        best := i;
        best_dot := d
      end
    done;
    (match on_iter with Some f -> f !t | None -> ());
    if !best_dot > 1.0 +. eps then
      (* Even the best response is expensive: P certifies that every
         unit-mass x has (Σ xᵢAᵢ)•P > 1+ε, hence λmax > 1+ε. *)
      finished := Some (Infeasible { y = p })
    else begin
      Mat.add_inplace gain mats.(!best);
      plays.(!best) <- plays.(!best) + 1;
      match mode with
      | Decision.Adaptive { check_every } when !t mod check_every = 0 ->
          check_early ()
      | Decision.Adaptive _ | Decision.Faithful -> ()
    end
  done;
  let outcome =
    match !finished with
    | Some o -> o
    | None ->
        (* Budget exhausted: the regret bound makes the averaged play
           near-feasible; rescale to exact feasibility. *)
        let cert = Certificate.rescale_dual inst (averaged_dual ()) in
        Feasible { x = cert.Certificate.x }
  in
  { outcome; iterations = !t; width = rho }

let maximize ?mode ~eps inst =
  if eps <= 0.0 || eps >= 1.0 then
    invalid_arg "Baseline.maximize: eps must lie in (0,1)";
  let n = Instance.num_constraints inst in
  let factors = Instance.factors inst in
  let lmaxes = Array.map Psdp_sparse.Factored.lambda_max factors in
  let best_i = ref 0 in
  Array.iteri (fun i l -> if l < lmaxes.(!best_i) then best_i := i) lmaxes;
  let lo0 = 1.0 /. lmaxes.(!best_i) in
  let hi0 =
    Float.max lo0
      (Psdp_prelude.Util.sum_array (Array.map (fun l -> 1.0 /. l) lmaxes))
  in
  let incumbent = Array.make n 0.0 in
  incumbent.(!best_i) <- lo0;
  let incumbent_value = ref lo0 in
  let lo = ref lo0 and hi = ref hi0 in
  let calls = ref 0 and iters = ref 0 in
  let budget =
    max 4
      (int_of_float
         (Float.ceil
            (Psdp_prelude.Util.log2
               (Float.max 1e-9 (log (hi0 /. lo0)) /. log (1.0 +. (eps /. 2.0)))))
       + 8)
  in
  let eps_dec = eps /. 4.0 in
  while !hi > (1.0 +. eps) *. !lo && !calls < budget do
    incr calls;
    let v = sqrt (!lo *. !hi) in
    let scaled = Instance.scale v inst in
    let r = decide ?mode ~eps:eps_dec scaled in
    iters := !iters + r.iterations;
    match r.outcome with
    | Feasible { x } ->
        (* x feasible for {v·Aᵢ} ⇒ v·x feasible for {Aᵢ}. *)
        let candidate = Array.map (fun e -> v *. e) x in
        let cert = Certificate.rescale_dual inst candidate in
        if cert.Certificate.feasible && cert.Certificate.value > !incumbent_value
        then begin
          incumbent_value := cert.Certificate.value;
          Array.blit cert.Certificate.x 0 incumbent 0 n
        end;
        lo := Float.max !lo !incumbent_value
    | Infeasible { y } ->
        (* (v·Aᵢ)•Y > 1+ε for all i with Tr Y = 1: the scaled Y is a
           covering witness capping the optimum at v/min_dot. *)
        let mats = Instance.dense_mats inst in
        let min_dot = ref infinity in
        Array.iter
          (fun a -> min_dot := Float.min !min_dot (v *. Mat.dot a y))
          mats;
        if !min_dot > 0.0 then hi := Float.max !lo (Float.min !hi (v /. !min_dot))
  done;
  {
    x = incumbent;
    value = !incumbent_value;
    upper_bound = !hi;
    decision_calls = !calls;
    total_iterations = !iters;
  }
