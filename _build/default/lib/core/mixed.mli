(** Mixed packing/covering positive SDPs — the class the paper's
    conclusion (§5) singles out for future work, and the class [JY12]
    addresses: {e matrix} packing constraints together with {e diagonal}
    covering constraints (diagonal matrix covering is equivalent to
    coordinate-wise scalar covering, so the covering side is a
    non-negative linear system).

    Feasibility problem: given PSD matrices [Aᵢ] and a non-negative
    [m_c × n] matrix [C],

    {v  find x >= 0  with  Σᵢ xᵢAᵢ ≼ I   and   C x >= 1  v}

    The solver runs Young-style mixed dynamics [You01] lifted to matrices:
    the packing side is priced by the matrix soft-max
    [priceᵢ = (W•Aᵢ)/Tr W], [W = exp(Ψ(x))]; the covering side by the
    scalar soft-min [yieldᵢ = (Σⱼ vⱼCⱼᵢ)/(Σⱼ vⱼ)], [vⱼ = exp(−θ(Cx)ⱼ)];
    coordinates whose packing price does not exceed [(1+ε)]× their
    covering yield are multiplied by [(1+α)]. Exits:

    - [Feasible x]: the candidate [x/λmax(Ψ(x))] verifies
      [Σ xᵢAᵢ ≼ I] (by construction) and [Cx >= (1−ε)·1] (checked) —
      an ε-relaxed feasible point;
    - [Infeasible]: a priced certificate — a PSD [Y ≽ 0, Tr Y = 1] and a
      covering distribution [p] with
      [Aᵢ•Y > (1+ε)·(Cᵀp)ᵢ] for every [i], which by LP duality rules out
      any exactly-feasible [x] (pairing any feasible x against (Y,p)
      yields [1 >= Σxᵢ Aᵢ•Y > (1+ε)·pᵀCx >= 1+ε]);
    - [Unknown]: iteration budget exhausted (reported, never silently
      converted into an answer). *)

open Psdp_linalg

type instance = {
  packing : Instance.t;  (** the [Aᵢ] (factored) *)
  covering : float array array;
      (** rows of [C] (length [n] each, non-negative) *)
}

val instance : packing:Instance.t -> covering:float array array -> instance
(** Validates shapes, non-negativity and that every covering row and
    every variable's covering column is non-trivial enough to matter
    (each row must have a positive entry). *)

type certificate = {
  y : Mat.t;  (** [Tr Y = 1], PSD *)
  p : float array;  (** covering distribution, [Σ p = 1] *)
  gap : float;  (** [minᵢ (Aᵢ•Y − (1+ε)(Cᵀp)ᵢ)] > 0 *)
}

type outcome =
  | Feasible of { x : float array }
  | Infeasible of certificate
  | Unknown

type result = { outcome : outcome; iterations : int }

val solve :
  ?pool:Psdp_parallel.Pool.t ->
  ?backend:Decision.backend ->
  ?check_every:int ->
  ?max_iterations:int ->
  eps:float ->
  instance ->
  result
(** [max_iterations] defaults to the Params cap [R] for the packing side.
    Every [Feasible] answer is verified against both constraint systems
    before being returned. *)

val verify : ?tol:float -> eps:float -> instance -> float array -> bool
(** [verify ~eps inst x]: [x >= 0], [λmax(Σ xᵢAᵢ) <= 1 + tol] and
    [Cx >= (1−ε)·(1 − tol)]. *)

type coverage_optimum = {
  level : float;  (** largest certified-feasible service level [t] *)
  x : float array;  (** verified witness for [level] *)
  infeasible_above : float;
      (** smallest level at which the search saw an infeasibility
          certificate (or its upper cap) *)
  calls : int;
}

val max_coverage :
  ?pool:Psdp_parallel.Pool.t ->
  ?backend:Decision.backend ->
  ?max_calls:int ->
  eps:float ->
  instance ->
  coverage_optimum
(** Optimization over the covering side: the largest [t] such that
    [Σ xᵢAᵢ ≼ I] and [Cx >= t·1] stays (ε-relaxedly) feasible, by
    multiplicative bisection over rescaled covering systems. The witness
    [x] is verified at the returned [level]. *)
