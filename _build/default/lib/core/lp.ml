open Psdp_prelude
open Psdp_linalg

type t = { rows : int; cols : float array array }

let create ~rows ~cols =
  if rows <= 0 then invalid_arg "Lp.create: rows must be positive";
  if Array.length cols = 0 then invalid_arg "Lp.create: no columns";
  Array.iteri
    (fun i col ->
      if Array.length col <> rows then
        invalid_arg (Printf.sprintf "Lp.create: column %d has wrong length" i);
      let sum = ref 0.0 in
      Array.iter
        (fun v ->
          if v < 0.0 then
            invalid_arg (Printf.sprintf "Lp.create: negative entry in column %d" i);
          sum := !sum +. v)
        col;
      if !sum <= 0.0 then
        invalid_arg (Printf.sprintf "Lp.create: column %d is zero" i))
    cols;
  { rows; cols = Array.map Array.copy cols }

let rows t = t.rows
let num_vars t = Array.length t.cols
let column t i = Array.copy t.cols.(i)

let of_diagonal_instance inst =
  let mats = Instance.dense_mats inst in
  let m = Instance.dim inst in
  let cols =
    Array.mapi
      (fun i a ->
        let scale_ = Float.max 1.0 (Mat.max_abs a) in
        for r = 0 to m - 1 do
          for c = 0 to m - 1 do
            if r <> c && Float.abs (Mat.get a r c) > 1e-12 *. scale_ then
              invalid_arg
                (Printf.sprintf
                   "Lp.of_diagonal_instance: constraint %d is not diagonal" i)
          done
        done;
        Mat.diagonal a)
      mats
  in
  create ~rows:m ~cols

type outcome =
  | Dual of { x : float array }
  | Primal of { p : float array }

type result = { outcome : outcome; iterations : int }

let mx t x =
  let y = Array.make t.rows 0.0 in
  Array.iteri
    (fun i col ->
      let xi = x.(i) in
      if xi <> 0.0 then
        for j = 0 to t.rows - 1 do
          y.(j) <- y.(j) +. (xi *. col.(j))
        done)
    t.cols;
  y

let feasible ?(tol = 1e-9) t x =
  Array.length x = Array.length t.cols
  && Array.for_all (fun v -> v >= 0.0) x
  && Array.for_all (fun v -> v <= 1.0 +. tol) (mx t x)

let value x = Util.sum_array x

let decide ?(mode = Decision.Adaptive { check_every = 10 }) ?on_iter ~eps t =
  let n = Array.length t.cols and m = t.rows in
  let params = Params.of_eps ~eps ~n in
  let { Params.k_cap; alpha; r_cap; _ } = params in
  (* x⁰ᵢ = 1/(n·Tr Aᵢ); the LP analogue of the trace is the column sum. *)
  let col_sums = Array.map Util.sum_array t.cols in
  let x = Array.init n (fun i -> 1.0 /. (float_of_int n *. col_sums.(i))) in
  let l1 = ref (Util.sum_array x) in
  let avg_p = Array.make m 0.0 in
  let iter = ref 0 in
  let early : outcome option ref = ref None in
  let check_early () =
    (* Dual candidate: rescale x to feasibility. *)
    let y = mx t x in
    let peak = Util.max_array y in
    let scale_ = if peak > 1.0 then 1.0 /. peak else 1.0 in
    if scale_ *. !l1 >= 1.0 -. eps then
      early := Some (Dual { x = Array.map (fun v -> v *. scale_) x })
    else if !iter > 0 then begin
      (* Primal candidate: averaged soft-max distribution. *)
      let total = float_of_int !iter in
      let p = Array.map (fun v -> v /. total) avg_p in
      let covered = ref infinity in
      Array.iter
        (fun col ->
          let s = ref 0.0 in
          Array.iteri (fun j pv -> s := !s +. (pv *. col.(j))) p;
          covered := Float.min !covered !s)
        t.cols;
      if !covered >= 1.0 -. eps then early := Some (Primal { p })
    end
  in
  while !early = None && !l1 <= k_cap && !iter < r_cap do
    incr iter;
    let psi = mx t x in
    (* Scalar soft-max weights, computed stably relative to the max. *)
    let w = Array.map exp psi in
    let trace_w = Util.sum_array w in
    let threshold = (1.0 +. eps) *. trace_w in
    Array.iteri
      (fun i col ->
        let dot = ref 0.0 in
        Array.iteri (fun j wv -> dot := !dot +. (wv *. col.(j))) w;
        if !dot <= threshold then x.(i) <- x.(i) *. (1.0 +. alpha))
      t.cols;
    for j = 0 to m - 1 do
      avg_p.(j) <- avg_p.(j) +. (w.(j) /. trace_w)
    done;
    l1 := Util.sum_array x;
    (match on_iter with Some f -> f !iter | None -> ());
    match mode with
    | Decision.Adaptive { check_every } when !iter mod check_every = 0 ->
        check_early ()
    | Decision.Adaptive _ | Decision.Faithful -> ()
  done;
  let outcome =
    match !early with
    | Some o -> o
    | None ->
        if !l1 > k_cap then begin
          let scale_ = 1.0 /. ((1.0 +. (10.0 *. eps)) *. k_cap) in
          Dual { x = Array.map (fun v -> v *. scale_) x }
        end
        else begin
          let total = float_of_int (max 1 !iter) in
          Primal { p = Array.map (fun v -> v /. total) avg_p }
        end
  in
  { outcome; iterations = !iter }

type optimum = {
  x : float array;
  value : float;
  upper_bound : float;
  decision_calls : int;
}

let maximize ?mode ~eps t =
  if eps <= 0.0 || eps >= 1.0 then
    invalid_arg "Lp.maximize: eps must lie in (0,1)";
  let n = Array.length t.cols in
  let col_peaks = Array.map Util.max_array t.cols in
  let lo0 =
    Array.fold_left Float.max 0.0 (Array.map (fun p -> 1.0 /. p) col_peaks)
  in
  let hi0 =
    Float.max lo0
      (Util.sum_array (Array.map (fun p -> 1.0 /. p) col_peaks))
  in
  let best_i = ref 0 in
  Array.iteri (fun i p -> if p < col_peaks.(!best_i) then best_i := i) col_peaks;
  let incumbent = Array.make n 0.0 in
  incumbent.(!best_i) <- 1.0 /. col_peaks.(!best_i);
  let incumbent_value = ref (value incumbent) in
  let lo = ref !incumbent_value and hi = ref hi0 in
  let calls = ref 0 in
  let budget =
    max 4
      (int_of_float
         (Float.ceil
            (Util.log2 (Float.max 1e-9 (log (hi0 /. lo0)) /. log (1.0 +. (eps /. 2.0)))))
       + 8)
  in
  let eps_dec = eps /. 4.0 in
  while !hi > (1.0 +. eps) *. !lo && !calls < budget do
    incr calls;
    let v = sqrt (!lo *. !hi) in
    let scaled = { t with cols = Array.map (Array.map (fun e -> v *. e)) t.cols } in
    let res = decide ?mode ~eps:eps_dec scaled in
    match res.outcome with
    | Dual { x = xd } ->
        let candidate = Array.map (fun e -> v *. e) xd in
        let y = mx t candidate in
        let peak = Util.max_array y in
        let scale_ = if peak > 1.0 then 1.0 /. peak else 1.0 in
        let cand_value = scale_ *. value candidate in
        if cand_value > !incumbent_value then begin
          incumbent_value := cand_value;
          Array.iteri (fun i e -> incumbent.(i) <- scale_ *. e) candidate
        end;
        lo := Float.max !lo !incumbent_value
    | Primal { p } ->
        let covered = ref infinity in
        Array.iter
          (fun col ->
            let s = ref 0.0 in
            Array.iteri (fun j pv -> s := !s +. (v *. pv *. col.(j))) p;
            covered := Float.min !covered !s)
          t.cols;
        if !covered > 0.0 then hi := Float.max !lo (Float.min !hi (v /. !covered))
  done;
  {
    x = incumbent;
    value = !incumbent_value;
    upper_bound = !hi;
    decision_calls = !calls;
  }
