(** Positive SDP instances.

    Two layers, matching the paper:

    - {!general} is the primal form (1.1): [min C•Y] subject to
      [Aᵢ•Y >= bᵢ], [Y ≽ 0], with [C] and all [Aᵢ] PSD and [bᵢ >= 0].
    - {!t} is the normalized instance of Figure 2 / the ε-decision problem:
      constraint matrices only, all thresholds 1, stored in factored form
      [Aᵢ = QᵢQᵢᵀ] (the input format of Corollary 1.2).

    {!Normalize} converts the former into the latter. *)

open Psdp_linalg
open Psdp_sparse

type t
(** A normalized instance. Immutable. *)

val of_factors : Factored.t array -> t
(** Build from factored constraints. All factors must share one dimension,
    and every constraint must be non-zero (positive trace); violations
    raise [Invalid_argument]. *)

val of_dense : Mat.t array -> t
(** Build from dense PSD matrices; each is factored through its
    eigendecomposition. Non-PSD inputs raise [Invalid_argument]. *)

val dim : t -> int
(** Side length [m] of the constraint matrices. *)

val num_constraints : t -> int
(** [n]. *)

val factors : t -> Factored.t array
val factor : t -> int -> Factored.t

val dense_mats : t -> Mat.t array
(** Dense forms of all constraints (computed once and cached). *)

val traces : t -> float array
(** [Tr Aᵢ] for each [i] (cached). *)

val nnz : t -> int
(** Total non-zeros across all factors — the paper's [q]. *)

val width : t -> float
(** [max_i λmax(Aᵢ)] — the width parameter the algorithm's iteration
    count must {e not} depend on. Computed exactly (dense) and cached. *)

val scale : float -> t -> t
(** [scale v t] multiplies every constraint by [v >= 0] (the binary-search
    reduction rescales instances this way). *)

val pp : Format.formatter -> t -> unit
(** Prints the normalized primal/dual pair of Figure 2 with instance
    statistics. *)

(** {1 General form} *)

type general = {
  objective : Mat.t;  (** [C], symmetric PSD, treated as full rank *)
  constraints : (Mat.t * float) array;  (** [(Aᵢ, bᵢ)] *)
}

val general : objective:Mat.t -> constraints:(Mat.t * float) array -> general
(** Validates: matching dimensions, symmetric PSD matrices, [bᵢ >= 0],
    [C] positive definite. Constraints with [bᵢ = 0] are dropped (they are
    implied by [Y ≽ 0], cf. Appendix A). *)

val pp_general : Format.formatter -> general -> unit
