open Psdp_prelude
open Psdp_sparse

type report = {
  dim : int;
  constraints : int;
  nnz : int;
  width : float;
  min_lambda_max : float;
  trace_min : float;
  trace_max : float;
  rank_min : int;
  rank_max : int;
  opt_lower : float;
  opt_upper : float;
  paper_iteration_cap : int;
  taylor_degree_cap : int;
}

let analyze ?(eps = 0.1) inst =
  let factors = Instance.factors inst in
  let n = Array.length factors in
  let lmaxes = Array.map Factored.lambda_max factors in
  let traces = Instance.traces inst in
  let ranks = Array.map Factored.inner_dim factors in
  let width = Util.max_array lmaxes in
  let opt_lower = Util.max_array (Array.map (fun l -> 1.0 /. l) lmaxes) in
  let sum_bound = Util.sum_array (Array.map (fun l -> 1.0 /. l) lmaxes) in
  let trace_bound =
    float_of_int (Instance.dim inst) /. Util.min_array traces
  in
  let params = Params.of_eps ~eps ~n in
  let spectral_cap = (1.0 +. (10.0 *. eps)) *. params.Params.k_cap in
  {
    dim = Instance.dim inst;
    constraints = n;
    nnz = Instance.nnz inst;
    width;
    min_lambda_max = Util.min_array lmaxes;
    trace_min = Util.min_array traces;
    trace_max = Util.max_array traces;
    rank_min = Array.fold_left min max_int ranks;
    rank_max = Array.fold_left max 0 ranks;
    opt_lower;
    opt_upper = Float.max opt_lower (Float.min sum_bound trace_bound);
    paper_iteration_cap = params.Params.r_cap;
    taylor_degree_cap =
      Psdp_expm.Poly.degree ~kappa:(spectral_cap /. 2.0) ~eps:(eps /. 2.0);
  }

let pp ppf r =
  Format.fprintf ppf
    "@[<v>m = %d, n = %d, nnz(q) = %d@,\
     width (max λmax): %.6g   (min λmax: %.6g)@,\
     traces: [%.4g, %.4g]   factor ranks: [%d, %d]@,\
     a-priori OPT bracket: [%.6g, %.6g]@,\
     paper iteration cap R: %d   worst-case Taylor degree: %d@]"
    r.dim r.constraints r.nnz r.width r.min_lambda_max r.trace_min r.trace_max
    r.rank_min r.rank_max r.opt_lower r.opt_upper r.paper_iteration_cap
    r.taylor_degree_cap
