(** Dynamically-bucketed step sizes — the [WMMR15] direction the paper's
    related-work section flags as "also applicable to our analysis".

    Plain Algorithm 3.1 multiplies every coordinate of the update set by
    the same [(1+α)]. Here coordinates are bucketed by how far their
    penalty ratio [rᵢ = (W•Aᵢ)/Tr W] sits below the [(1+ε)] threshold,
    and lower buckets take geometrically larger steps (capped at
    [(1+boost·α)]): coordinates that are spectrally cheap move faster, so
    the ℓ₁ mass accumulates in fewer iterations. Exits are verified
    certificates only (the paper-constant guarantees are proven for the
    uniform step; this is an ablation, kept sound by verification).

    The ablation bench (EXP9) measures the iteration savings against
    {!Decision} at equal ε. *)

type result = {
  outcome : Decision.outcome;
  iterations : int;
  params : Params.t;
}

val solve :
  ?pool:Psdp_parallel.Pool.t ->
  ?backend:Decision.backend ->
  ?boost:float ->
  ?check_every:int ->
  eps:float ->
  Instance.t ->
  result
(** [boost] (default 4.0) caps the step multiplier at [1 + boost·α] for
    the cheapest bucket; [boost = 1] reproduces the uniform step. *)
