(** Solution verification.

    Every solution the solvers return is re-checked against the instance:
    a dual (packing) vector must satisfy [λmax(Σᵢ xᵢAᵢ) <= 1] and is
    valued by [‖x‖₁]; a primal (covering) matrix must satisfy [Tr Y = 1]
    and is judged by [minᵢ Aᵢ•Y]. These checks are what makes the
    Adaptive solver mode sound: early exits only fire on verified
    certificates. *)

open Psdp_linalg

type method_ = Dense | Lanczos | Auto
(** [Dense] computes spectra exactly (O(m³)); [Lanczos] estimates them in
    O(nnz·iters); [Auto] (default) picks [Dense] for [m <= 160]. *)

type dual = {
  x : float array;
  value : float;  (** [‖x‖₁] *)
  lambda_max : float;  (** [λmax(Σᵢ xᵢAᵢ)] (estimate under [Lanczos]) *)
  feasible : bool;  (** [lambda_max <= 1 + tol] *)
}

type primal = {
  dots : float array;  (** [Aᵢ • Y] *)
  trace : float;  (** [Tr Y] *)
  min_dot : float;
  feasible : bool;  (** [min_dot >= 1 - tol] and [trace <= 1 + tol] *)
}

val check_dual :
  ?tol:float -> ?method_:method_ -> Instance.t -> float array -> dual
(** [tol] defaults to [1e-6]. Raises [Invalid_argument] on wrong length or
    negative entries. *)

val rescale_dual :
  ?tol:float -> ?method_:method_ -> Instance.t -> float array -> dual
(** Scales [x] by [1/λmax(Σ xᵢAᵢ)] (when that exceeds 1) so the result is
    feasible by construction, then re-checks it. The cheap way to turn any
    non-negative vector into a valid packing solution. *)

val check_primal : ?tol:float -> Instance.t -> Mat.t -> primal
(** Dense check of a materialized [Y] (symmetry enforced, PSD not
    re-verified — the solvers construct [Y] as an average of PSD matrices). *)

val primal_of_dots : ?tol:float -> trace:float -> float array -> primal
(** Builds the verdict from already-computed constraint values — used by
    the sketched backend, which never materializes [Y]. *)

val psi_lambda_max : ?method_:method_ -> Instance.t -> float array -> float
(** [λmax(Σᵢ xᵢAᵢ)] for non-negative weights [x]. *)
