type t = {
  eps : float;
  n : int;
  k_cap : float;
  alpha : float;
  r_cap : int;
}

let of_eps ~eps ~n =
  if eps <= 0.0 || eps >= 1.0 then
    invalid_arg "Params.of_eps: eps must lie in (0,1)";
  if n < 1 then invalid_arg "Params.of_eps: n must be >= 1";
  let ln_n = log (float_of_int (max 2 n)) in
  let k_cap = (1.0 +. ln_n) /. eps in
  let alpha = eps /. (k_cap *. (1.0 +. (10.0 *. eps))) in
  let r_cap =
    int_of_float (Float.ceil (32.0 /. (eps *. alpha) *. ln_n))
  in
  { eps; n; k_cap; alpha; r_cap }

let pp ppf t =
  Format.fprintf ppf "eps=%g n=%d K=%.4g alpha=%.4g R=%d" t.eps t.n t.k_cap
    t.alpha t.r_cap
