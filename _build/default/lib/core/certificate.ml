open Psdp_linalg
open Psdp_sparse

type method_ = Dense | Lanczos | Auto

type dual = {
  x : float array;
  value : float;
  lambda_max : float;
  feasible : bool;
}

type primal = {
  dots : float array;
  trace : float;
  min_dot : float;
  feasible : bool;
}

let validate_weights inst x =
  if Array.length x <> Instance.num_constraints inst then
    invalid_arg "Certificate: weight vector has wrong length";
  Array.iteri
    (fun i v ->
      if v < 0.0 then
        invalid_arg (Printf.sprintf "Certificate: negative weight x_%d" i))
    x

let resolve_method method_ m =
  match method_ with
  | Dense -> `Dense
  | Lanczos -> `Lanczos
  | Auto -> if m <= 160 then `Dense else `Lanczos

let psi_lambda_max ?(method_ = Auto) inst x =
  validate_weights inst x;
  match resolve_method method_ (Instance.dim inst) with
  | `Dense ->
      let mats = Instance.dense_mats inst in
      let psi = Mat.create (Instance.dim inst) (Instance.dim inst) in
      Array.iteri
        (fun i a -> if x.(i) <> 0.0 then Mat.axpy psi ~alpha:x.(i) a)
        mats;
      Eig.lambda_max psi
  | `Lanczos ->
      let gram = Weighted_gram.create (Instance.factors inst) in
      Weighted_gram.set_weights gram x;
      Lanczos.lambda_max_upper ~dim:(Instance.dim inst)
        (Weighted_gram.apply gram)

let check_dual ?(tol = 1e-6) ?(method_ = Auto) inst x =
  validate_weights inst x;
  let lambda_max = psi_lambda_max ~method_ inst x in
  let value = Psdp_prelude.Util.sum_array x in
  { x = Array.copy x; value; lambda_max; feasible = lambda_max <= 1.0 +. tol }

let rescale_dual ?tol ?(method_ = Auto) inst x =
  validate_weights inst x;
  let lambda_max = psi_lambda_max ~method_ inst x in
  let scaled =
    if lambda_max > 1.0 then Array.map (fun v -> v /. lambda_max) x
    else Array.copy x
  in
  check_dual ?tol ~method_ inst scaled

let primal_of_dots ?(tol = 1e-6) ~trace dots =
  let min_dot = Psdp_prelude.Util.min_array dots in
  {
    dots = Array.copy dots;
    trace;
    min_dot;
    feasible = min_dot >= 1.0 -. tol && trace <= 1.0 +. tol;
  }

let check_primal ?tol inst y =
  if Mat.rows y <> Instance.dim inst || Mat.cols y <> Instance.dim inst then
    invalid_arg "Certificate.check_primal: dimension mismatch";
  let y = Mat.symmetrize y in
  let dots = Array.map (fun f -> Factored.dot_dense f y) (Instance.factors inst) in
  primal_of_dots ?tol ~trace:(Mat.trace y) dots
