open Psdp_prelude

type result = {
  outcome : Decision.outcome;
  iterations : int;
  params : Params.t;
}

(* Step multiplier for penalty ratio r under threshold (1+eps): buckets
   are geometric in (1+eps)/r, i.e. bucket k collects ratios in
   ((1+eps)/2^(k+1), (1+eps)/2^k], and bucket k steps by (1 + 2^k·α)
   capped at (1 + boost·α). *)
let step_multiplier ~eps ~alpha ~boost r =
  let threshold = 1.0 +. eps in
  if r > threshold then 1.0
  else begin
    let ratio = threshold /. Float.max r 1e-300 in
    let bucket = int_of_float (Util.log2 ratio) in
    let factor = Float.min boost (float_of_int (1 lsl max 0 (min 20 bucket))) in
    1.0 +. (factor *. alpha)
  end

let solve ?pool ?(backend = Decision.Exact) ?(boost = 4.0)
    ?(check_every = 10) ~eps inst =
  if boost < 1.0 then invalid_arg "Bucketed.solve: boost must be >= 1";
  let n = Instance.num_constraints inst in
  let params = Params.of_eps ~eps ~n in
  let { Params.k_cap; alpha; r_cap; _ } = params in
  let evaluate = Evaluator.create ?pool ~backend ~params inst in
  let x = Decision.initial_point inst in
  let l1 = ref (Util.sum_array x) in
  let avg_dots = Array.make n 0.0 in
  let t = ref 0 in
  let cert_method =
    match backend with
    | Decision.Exact -> Certificate.Auto
    | Decision.Sketched _ -> Certificate.Lanczos
  in
  let early : Decision.outcome option ref = ref None in
  let finish_primal () =
    let steps = float_of_int (max 1 !t) in
    Decision.Primal
      { dots = Array.map (fun d -> d /. steps) avg_dots; y = None }
  in
  let check_early () =
    let dual_cert = Certificate.rescale_dual ~method_:cert_method inst x in
    if
      dual_cert.Certificate.feasible
      && dual_cert.Certificate.value >= 1.0 -. eps
    then
      early :=
        Some (Decision.Dual { x = dual_cert.Certificate.x; raw = Array.copy x })
    else if !t > 0 then begin
      let steps = float_of_int !t in
      let dots = Array.map (fun d -> d /. steps) avg_dots in
      if Util.min_array dots >= 1.0 -. eps then early := Some (finish_primal ())
    end
  in
  while !early = None && !l1 <= k_cap && !t < r_cap do
    incr t;
    let { Evaluator.dots; trace_w; _ } = evaluate x in
    for i = 0 to n - 1 do
      let r = dots.(i) /. trace_w in
      x.(i) <- x.(i) *. step_multiplier ~eps ~alpha ~boost r;
      avg_dots.(i) <- avg_dots.(i) +. r
    done;
    l1 := Util.sum_array x;
    if !t mod check_every = 0 then check_early ()
  done;
  let outcome =
    match !early with
    | Some o -> o
    | None ->
        if !l1 > k_cap then begin
          (* Boosted steps void the paper-constant scaling: rescale by the
             measured spectrum for a feasible-by-construction dual. *)
          let cert = Certificate.rescale_dual ~method_:cert_method inst x in
          Decision.Dual { x = cert.Certificate.x; raw = Array.copy x }
        end
        else finish_primal ()
  in
  { outcome; iterations = !t; params }
