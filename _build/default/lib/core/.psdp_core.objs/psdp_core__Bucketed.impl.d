lib/core/bucketed.ml: Array Certificate Decision Evaluator Float Instance Params Psdp_prelude Util
