lib/core/evaluator.ml: Array Float Instance Mat Matfun Params Psdp_expm Psdp_linalg Psdp_prelude Psdp_sketch Psdp_sparse Rng Weighted_gram
