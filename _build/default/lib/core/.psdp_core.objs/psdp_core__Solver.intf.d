lib/core/solver.mli: Decision Instance Mat Psdp_linalg Psdp_parallel
