lib/core/certificate.ml: Array Eig Factored Instance Lanczos Mat Printf Psdp_linalg Psdp_prelude Psdp_sparse Weighted_gram
