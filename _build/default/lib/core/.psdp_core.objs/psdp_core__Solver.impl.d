lib/core/solver.ml: Array Certificate Decision Factored Float Instance Logs Mat Normalize Option Printf Psdp_linalg Psdp_prelude Psdp_sparse Util
