lib/core/phased.ml: Array Certificate Decision Evaluator Instance List Params Psdp_prelude Util
