lib/core/analysis.ml: Array Factored Float Format Instance Params Psdp_expm Psdp_prelude Psdp_sparse Util
