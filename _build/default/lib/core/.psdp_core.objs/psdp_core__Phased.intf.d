lib/core/phased.mli: Decision Instance Params Psdp_parallel
