lib/core/baseline.ml: Array Certificate Decision Float Instance Mat Matfun Psdp_linalg Psdp_prelude Psdp_sparse
