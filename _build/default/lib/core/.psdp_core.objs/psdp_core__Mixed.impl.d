lib/core/mixed.ml: Array Certificate Decision Evaluator Float Instance Lazy Mat Params Printf Psdp_linalg Psdp_prelude Psdp_sparse Util
