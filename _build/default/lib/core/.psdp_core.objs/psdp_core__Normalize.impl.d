lib/core/normalize.ml: Array Cholesky Instance Mat Printf Psdp_linalg Psdp_sparse
