lib/core/instance.mli: Factored Format Mat Psdp_linalg Psdp_sparse
