lib/core/certificate.mli: Instance Mat Psdp_linalg
