lib/core/normalize.mli: Instance Mat Psdp_linalg Psdp_sparse
