lib/core/baseline.mli: Decision Instance Mat Psdp_linalg
