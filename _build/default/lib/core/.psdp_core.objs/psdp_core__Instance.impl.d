lib/core/instance.ml: Array Cholesky Eig Factored Float Format List Mat Printf Psdp_linalg Psdp_sparse
