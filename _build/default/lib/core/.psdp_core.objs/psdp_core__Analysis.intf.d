lib/core/analysis.mli: Format Instance
