lib/core/decision.mli: Evaluator Instance Mat Params Psdp_linalg Psdp_parallel
