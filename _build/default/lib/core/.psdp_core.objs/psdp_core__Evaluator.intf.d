lib/core/evaluator.mli: Instance Mat Params Psdp_linalg Psdp_parallel
