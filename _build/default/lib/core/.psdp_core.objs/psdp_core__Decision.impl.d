lib/core/decision.ml: Array Certificate Evaluator Float Instance Logs Mat Option Params Psdp_linalg Psdp_prelude Util
