lib/core/bucketed.mli: Decision Instance Params Psdp_parallel
