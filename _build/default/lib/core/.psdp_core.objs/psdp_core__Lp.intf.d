lib/core/lp.mli: Decision Instance
