lib/core/mixed.mli: Decision Instance Mat Psdp_linalg Psdp_parallel
