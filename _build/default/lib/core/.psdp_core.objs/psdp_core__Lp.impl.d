lib/core/lp.ml: Array Decision Float Instance Mat Params Printf Psdp_linalg Psdp_prelude Util
