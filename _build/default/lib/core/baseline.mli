(** Width-{e dependent} MMW baseline (Arora–Kale style, [AK07]).

    The comparison point for the paper's headline claim: this solver's
    iteration count grows with the width [ρ = maxᵢ λmax(Aᵢ)] while
    Algorithm 3.1's does not (EXP3).

    The decision procedure plays the matrix-MMW game with best-response
    gains: at each step pick [i* = argminᵢ Aᵢ•P]; if even the best
    response has [Aᵢ•P > 1 + ε] the current [P] certifies infeasibility
    (no unit-mass [x] can keep [λmax(Σ xᵢAᵢ)] below 1); otherwise play
    gain [A_{i*}/ρ ≼ I]. The regret bound turns the played distribution
    into a near-feasible dual after [T = O(ρ·ln m/ε²)] iterations. *)

open Psdp_linalg

type outcome =
  | Feasible of {
      x : float array;  (** verified: [λmax(Σ xᵢAᵢ) <= 1], [‖x‖₁ >= 1−ε] *)
    }
  | Infeasible of {
      y : Mat.t;  (** [Tr y = 1] and [Aᵢ•y > 1] for all [i] (scaled) *)
    }

type result = { outcome : outcome; iterations : int; width : float }

val decide :
  ?mode:Decision.mode ->
  ?on_iter:(int -> unit) ->
  eps:float ->
  Instance.t ->
  result
(** Decide the same ε-decision problem as {!Decision.solve}, with an
    iteration budget [⌈16·ρ·ln(m)/ε²⌉ + 1] (then conclude feasible from
    the averaged play, rescaled to feasibility). [mode] mirrors
    {!Decision.mode}: [Adaptive] (default, every 10) checks the averaged
    dual candidate early. *)

type optimum = {
  x : float array;  (** verified feasible dual *)
  value : float;
  upper_bound : float;
  decision_calls : int;
  total_iterations : int;
}

val maximize : ?mode:Decision.mode -> eps:float -> Instance.t -> optimum
(** End-to-end optimization by the same multiplicative bisection as
    {!Solver.solve_packing}, but with this width-dependent decision
    procedure — the apples-to-apples comparator for total-cost
    comparisons against [approxPSDP]. *)
