open Psdp_linalg
open Psdp_sparse

type t = {
  dim : int;
  factors : Factored.t array;
  traces : float array;
  mutable dense_cache : Mat.t array option;
  mutable width_cache : float option;
}

let of_factors factors =
  let n = Array.length factors in
  if n = 0 then invalid_arg "Instance.of_factors: no constraints";
  let dim = Factored.dim factors.(0) in
  if dim = 0 then invalid_arg "Instance.of_factors: zero-dimensional";
  Array.iteri
    (fun i f ->
      if Factored.dim f <> dim then
        invalid_arg
          (Printf.sprintf "Instance.of_factors: constraint %d has dim %d <> %d"
             i (Factored.dim f) dim))
    factors;
  let traces = Array.map Factored.trace factors in
  Array.iteri
    (fun i tr ->
      if tr <= 0.0 then
        invalid_arg
          (Printf.sprintf "Instance.of_factors: constraint %d is zero (Tr=%g)"
             i tr))
    traces;
  { dim; factors; traces; dense_cache = None; width_cache = None }

let of_dense mats =
  let factors =
    Array.mapi
      (fun i a ->
        if not (Mat.is_symmetric ~tol:1e-8 a) then
          invalid_arg
            (Printf.sprintf "Instance.of_dense: constraint %d not symmetric" i);
        match Factored.of_dense_psd a with
        | f -> f
        | exception Invalid_argument _ ->
            invalid_arg
              (Printf.sprintf "Instance.of_dense: constraint %d not PSD" i))
      mats
  in
  let t = of_factors factors in
  t.dense_cache <- Some (Array.map Mat.copy mats);
  t

let dim t = t.dim
let num_constraints t = Array.length t.factors
let factors t = t.factors
let factor t i = t.factors.(i)

let dense_mats t =
  match t.dense_cache with
  | Some mats -> mats
  | None ->
      let mats = Array.map Factored.to_dense t.factors in
      t.dense_cache <- Some mats;
      mats

let traces t = t.traces

let nnz t = Array.fold_left (fun acc f -> acc + Factored.nnz f) 0 t.factors

let width t =
  match t.width_cache with
  | Some w -> w
  | None ->
      let mats = dense_mats t in
      let w =
        Array.fold_left (fun acc a -> Float.max acc (Eig.lambda_max a)) 0.0 mats
      in
      t.width_cache <- Some w;
      w

let scale v t =
  if v < 0.0 then invalid_arg "Instance.scale: negative factor";
  of_factors (Array.map (Factored.scale v) t.factors)

let pp ppf t =
  Format.fprintf ppf
    "@[<v>normalized positive SDP (Figure 2)@,\
     \  primal (covering): min Tr[Y]  s.t.  Ai . Y >= 1 (i = 1..%d), Y >= 0@,\
     \  dual   (packing):  max 1'x    s.t.  sum_i x_i Ai <= I, x >= 0@,\
     \  m = %d, n = %d, nnz(q) = %d@]"
    (num_constraints t) t.dim (num_constraints t) (nnz t)

type general = {
  objective : Mat.t;
  constraints : (Mat.t * float) array;
}

let general ~objective ~constraints =
  let m = Mat.rows objective in
  if not (Mat.is_symmetric ~tol:1e-8 objective) then
    invalid_arg "Instance.general: objective not symmetric";
  if not (Cholesky.is_psd objective) then
    invalid_arg "Instance.general: objective not PSD";
  Array.iteri
    (fun i (a, b) ->
      if Mat.rows a <> m || Mat.cols a <> m then
        invalid_arg
          (Printf.sprintf "Instance.general: constraint %d has wrong shape" i);
      if not (Mat.is_symmetric ~tol:1e-8 a) then
        invalid_arg
          (Printf.sprintf "Instance.general: constraint %d not symmetric" i);
      if not (Cholesky.is_psd a) then
        invalid_arg (Printf.sprintf "Instance.general: constraint %d not PSD" i);
      if b < 0.0 then
        invalid_arg
          (Printf.sprintf "Instance.general: negative threshold b_%d" i))
    constraints;
  (* b_i = 0 constraints are implied by Y ≽ 0 and A_i ≽ 0: drop them. *)
  let kept =
    Array.of_list
      (List.filter (fun (_, b) -> b > 0.0) (Array.to_list constraints))
  in
  if Array.length kept = 0 then
    invalid_arg "Instance.general: no constraints with b_i > 0";
  { objective; constraints = kept }

let pp_general ppf g =
  Format.fprintf ppf
    "@[<v>positive SDP, primal form (1.1)@,\
     \  min C . Y  s.t.  Ai . Y >= b_i (i = 1..%d), Y >= 0@,\
     \  m = %d@]"
    (Array.length g.constraints) (Mat.rows g.objective)
