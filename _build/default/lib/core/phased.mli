(** Phase-based variant of [decisionPSDP], in the spirit of the SPAA'12
    conference pseudocode [PT12] (this arXiv revision "removes these
    phases" from the analysis; the paper notes the phase-based version
    can be analyzed similarly).

    The expensive primitive is the exponential evaluation. Here it is
    computed once per {e phase} and the resulting coordinate set
    [B = {i : W•Aᵢ <= (1+ε)·Tr W}] is reused for every update inside the
    phase; a phase ends when the ℓ₁ mass has grown by a factor [(1+φ)]
    (so [Ψ] has moved by at most [φ·Ψ ≼ φ(1+10ε)K·I] and the stale
    penalties are still within a controlled factor). Exits are the same
    verified certificates as {!Decision}, so staleness can cost extra
    iterations but never correctness.

    The ablation bench (EXP9) compares exponential-evaluation counts and
    iteration counts against the per-iteration {!Decision}. *)

type result = {
  outcome : Decision.outcome;
  iterations : int;  (** coordinate-update steps *)
  phases : int;  (** number of exponential evaluations *)
  params : Params.t;
}

val solve :
  ?pool:Psdp_parallel.Pool.t ->
  ?backend:Decision.backend ->
  ?phase_growth:float ->
  ?check_every:int ->
  eps:float ->
  Instance.t ->
  result
(** [phase_growth] (default [eps/2]) is the ℓ₁-growth factor ending a
    phase; [check_every] (default 10) is the certificate cadence in
    update steps. Certificates are always on (there is no Faithful mode:
    the phased pseudocode's own exits are the certificate checks plus the
    paper's ℓ₁/iteration caps). *)
