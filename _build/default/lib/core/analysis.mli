(** Instance diagnostics: everything a user wants to know about a
    normalized packing instance before solving it — the quantities the
    paper's bounds are phrased in, plus a-priori optimum brackets.

    Backs the CLI's [info] command and the benchmark narratives. *)

type report = {
  dim : int;  (** m *)
  constraints : int;  (** n *)
  nnz : int;  (** q, total factor non-zeros *)
  width : float;  (** [maxᵢ λmax(Aᵢ)] — exact *)
  min_lambda_max : float;  (** [minᵢ λmax(Aᵢ)] *)
  trace_min : float;
  trace_max : float;
  rank_min : int;  (** thinnest factor *)
  rank_max : int;
  opt_lower : float;  (** best single-coordinate value — certified *)
  opt_upper : float;  (** min(Σᵢ1/λmaxᵢ, m/minᵢTrᵢ) — certified *)
  paper_iteration_cap : int;  (** R at the given ε *)
  taylor_degree_cap : int;
      (** Lemma 4.2 degree at the Lemma 3.2 spectral cap — the worst-case
          polynomial length of the sketched backend *)
}

val analyze : ?eps:float -> Instance.t -> report
(** [eps] (default 0.1) parameterizes the cap fields. *)

val pp : Format.formatter -> report -> unit
