open Psdp_prelude

type result = {
  outcome : Decision.outcome;
  iterations : int;
  phases : int;
  params : Params.t;
}

let solve ?pool ?(backend = Decision.Exact) ?phase_growth ?(check_every = 10)
    ~eps inst =
  let n = Instance.num_constraints inst in
  let params = Params.of_eps ~eps ~n in
  let { Params.k_cap; alpha; r_cap; _ } = params in
  let phase_growth =
    match phase_growth with
    | Some g ->
        if g <= 0.0 then invalid_arg "Phased.solve: phase_growth must be > 0";
        g
    | None -> eps /. 2.0
  in
  let evaluate = Evaluator.create ?pool ~backend ~params inst in
  let x = Decision.initial_point inst in
  let l1 = ref (Util.sum_array x) in
  let avg_dots = Array.make n 0.0 in
  let samples = ref 0 in
  let t = ref 0 and phases = ref 0 in
  let cert_method =
    match backend with
    | Decision.Exact -> Certificate.Auto
    | Decision.Sketched _ -> Certificate.Lanczos
  in
  let early : Decision.outcome option ref = ref None in
  let finish_primal () =
    let steps = float_of_int (max 1 !samples) in
    Decision.Primal
      { dots = Array.map (fun d -> d /. steps) avg_dots; y = None }
  in
  let check_early () =
    let dual_cert = Certificate.rescale_dual ~method_:cert_method inst x in
    if
      dual_cert.Certificate.feasible
      && dual_cert.Certificate.value >= 1.0 -. eps
    then
      early :=
        Some (Decision.Dual { x = dual_cert.Certificate.x; raw = Array.copy x })
    else if !samples > 0 then begin
      let steps = float_of_int !samples in
      let dots = Array.map (fun d -> d /. steps) avg_dots in
      if Util.min_array dots >= 1.0 -. eps then early := Some (finish_primal ())
    end
  in
  while !early = None && !l1 <= k_cap && !t < r_cap do
    (* Phase start: one exponential evaluation fixes the update set. *)
    incr phases;
    let { Evaluator.dots; trace_w; _ } = evaluate x in
    let threshold = (1.0 +. eps) *. trace_w in
    let bucket = ref [] in
    for i = n - 1 downto 0 do
      if dots.(i) <= threshold then bucket := i :: !bucket;
      avg_dots.(i) <- avg_dots.(i) +. (dots.(i) /. trace_w)
    done;
    incr samples;
    (match !bucket with
    | [] ->
        (* No coordinate is cheap under the fresh penalties: the averaged
           probability matrix is converging to a covering certificate;
           force a certificate check now (and count the step). *)
        incr t;
        check_early ();
        if !early = None && !samples * check_every >= r_cap then
          early := Some (finish_primal ())
    | bucket_list ->
        (* Inside the phase: reuse the stale set until the mass grows by
           (1+phase_growth), a certificate fires, or a cap is reached. *)
        let phase_cap = !l1 *. (1.0 +. phase_growth) in
        let continue_phase = ref true in
        while
          !continue_phase && !early = None && !l1 <= k_cap && !t < r_cap
        do
          incr t;
          List.iter
            (fun i -> x.(i) <- x.(i) *. (1.0 +. alpha))
            bucket_list;
          l1 := Util.sum_array x;
          if !l1 > phase_cap then continue_phase := false;
          if !t mod check_every = 0 then check_early ()
        done);
    ()
  done;
  let outcome =
    match !early with
    | Some o -> o
    | None ->
        if !l1 > k_cap then begin
          (* Stale in-phase updates void Lemma 3.2's a-priori scaling, so
             the exit dual is rescaled by the *measured* spectrum instead
             of the paper constant — feasible by construction. *)
          let cert = Certificate.rescale_dual ~method_:cert_method inst x in
          Decision.Dual { x = cert.Certificate.x; raw = Array.copy x }
        end
        else finish_primal ()
  in
  { outcome; iterations = !t; phases = !phases; params }
