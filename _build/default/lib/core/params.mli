(** Parameter schedule of Algorithm 3.1.

    For accuracy [ε] and [n] constraints the paper sets
    [K = (1 + ln n)/ε], [α = ε/(K(1+10ε))] and the iteration cap
    [R = ⌈(32/(εα))·ln n⌉ = O(ε⁻³ log² n)]. [K] caps the ℓ₁ mass at which
    the dual exit fires, [α] is the multiplicative step, and [R] the
    primal-exit iteration budget. *)

type t = {
  eps : float;  (** internal accuracy of the decision problem *)
  n : int;  (** number of constraints *)
  k_cap : float;  (** K *)
  alpha : float;  (** α *)
  r_cap : int;  (** R *)
}

val of_eps : eps:float -> n:int -> t
(** Paper constants. Requires [0 < eps < 1] and [n >= 1]. *)

val pp : Format.formatter -> t -> unit
