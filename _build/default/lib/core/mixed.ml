open Psdp_prelude
open Psdp_linalg

type instance = {
  packing : Instance.t;
  covering : float array array;
}

let instance ~packing ~covering =
  let n = Instance.num_constraints packing in
  if Array.length covering = 0 then
    invalid_arg "Mixed.instance: no covering rows";
  Array.iteri
    (fun j row ->
      if Array.length row <> n then
        invalid_arg
          (Printf.sprintf "Mixed.instance: covering row %d has length %d <> %d"
             j (Array.length row) n);
      let positive = ref false in
      Array.iter
        (fun v ->
          if v < 0.0 then
            invalid_arg
              (Printf.sprintf "Mixed.instance: negative entry in covering row %d" j);
          if v > 0.0 then positive := true)
        row;
      if not !positive then
        invalid_arg
          (Printf.sprintf
             "Mixed.instance: covering row %d is all-zero (unsatisfiable)" j))
    covering;
  { packing; covering }

type certificate = { y : Mat.t; p : float array; gap : float }

type outcome =
  | Feasible of { x : float array }
  | Infeasible of certificate
  | Unknown

type result = { outcome : outcome; iterations : int }

let cx covering x =
  Array.map
    (fun row ->
      let s = ref 0.0 in
      Array.iteri (fun i c -> s := !s +. (c *. x.(i))) row;
      !s)
    covering

let verify ?(tol = 1e-6) ~eps inst x =
  Array.length x = Instance.num_constraints inst.packing
  && Array.for_all (fun v -> v >= 0.0) x
  && Certificate.psi_lambda_max inst.packing x <= 1.0 +. tol
  && Array.for_all
       (fun c -> c >= (1.0 -. eps) *. (1.0 -. tol))
       (cx inst.covering x)

(* Soft-min covering weights v_j = exp(-theta*(Cx)_j), computed stably
   relative to the minimum, and the per-variable covering yields
   (C'v)/(1'v). *)
let covering_yields ~theta covering cov =
  let mc = Array.length covering in
  let min_cov = Util.min_array cov in
  let v = Array.init mc (fun j -> exp (-.theta *. (cov.(j) -. min_cov))) in
  let total = Util.sum_array v in
  let n = Array.length covering.(0) in
  let yields = Array.make n 0.0 in
  Array.iteri
    (fun j row ->
      let w = v.(j) /. total in
      Array.iteri (fun i c -> yields.(i) <- yields.(i) +. (w *. c)) row)
    covering;
  (yields, Array.map (fun vj -> vj /. total) v)

let solve ?pool ?(backend = Decision.Exact) ?(check_every = 10)
    ?max_iterations ~eps inst =
  if eps <= 0.0 || eps >= 1.0 then
    invalid_arg "Mixed.solve: eps must lie in (0,1)";
  let packing = inst.packing in
  let covering = inst.covering in
  let n = Instance.num_constraints packing in
  let mc = Array.length covering in
  let params = Params.of_eps ~eps ~n in
  let budget =
    match max_iterations with Some b -> b | None -> params.Params.r_cap
  in
  let evaluate = Evaluator.create ?pool ~backend ~params packing in
  (* Soft-min sharpness: resolves covering gaps of order eps. *)
  let theta = (1.0 +. log (float_of_int (max 2 mc))) /. eps in
  let x = Decision.initial_point packing in
  let t = ref 0 in
  let finished : outcome option ref = ref None in
  let cert_method =
    match backend with
    | Decision.Exact -> Certificate.Auto
    | Decision.Sketched _ -> Certificate.Lanczos
  in
  let check_feasible () =
    (* Packing-normalize the iterate and test the covering side. *)
    let cert = Certificate.rescale_dual ~method_:cert_method packing x in
    let candidate = cert.Certificate.x in
    if
      cert.Certificate.feasible
      && Array.for_all (fun c -> c >= 1.0 -. eps) (cx covering candidate)
    then finished := Some (Feasible { x = candidate })
  in
  (* Exact pricing for the infeasibility certificate: even under the
     sketched backend the certificate itself must be checked against a
     materialized Y. Built lazily — only on a candidate-empty bucket. *)
  let exact_evaluator = lazy (Evaluator.create ~backend:Decision.Exact ~params packing) in
  let certify_infeasible yields =
    let { Evaluator.dots; trace_w; w; _ } = (Lazy.force exact_evaluator) x in
    let y =
      match w with
      | Some w -> Mat.scale (1.0 /. trace_w) w
      | None -> assert false
    in
    let _, p = covering_yields ~theta covering (cx covering x) in
    let gap = ref infinity in
    for i = 0 to n - 1 do
      gap :=
        Float.min !gap
          ((dots.(i) /. trace_w) -. ((1.0 +. eps) *. yields.(i)))
    done;
    if !gap > 0.0 then finished := Some (Infeasible { y; p; gap = !gap })
    (* else: the sketched estimate was noisy — keep iterating. *)
  in
  while !finished = None && !t < budget do
    incr t;
    let { Evaluator.dots; trace_w; _ } = evaluate x in
    let cov = cx covering x in
    let yields, _ = covering_yields ~theta covering cov in
    let updated = ref 0 in
    for i = 0 to n - 1 do
      (* Packing price per unit of covering progress: cheap coordinates
         are those whose spectral cost does not exceed (1+eps) times
         their covering yield. *)
      if dots.(i) /. trace_w <= (1.0 +. eps) *. yields.(i) then begin
        x.(i) <- x.(i) *. (1.0 +. params.Params.alpha);
        incr updated
      end
    done;
    if !updated = 0 then certify_infeasible yields
    else if !t mod check_every = 0 then check_feasible ()
  done;
  let outcome = match !finished with Some o -> o | None -> Unknown in
  { outcome; iterations = !t }

type coverage_optimum = {
  level : float;
  x : float array;
  infeasible_above : float;
  calls : int;
}

let max_coverage ?pool ?backend ?max_calls ~eps inst =
  let n = Instance.num_constraints inst.packing in
  let factors = Instance.factors inst.packing in
  (* Per-coordinate packing caps x_i <= 1/lambda_max(A_i) bound the best
     possible coverage of every row from above; the best coverage of a
     single coordinate pushed to its cap bounds it from below. *)
  let caps =
    Array.map (fun f -> 1.0 /. Psdp_sparse.Factored.lambda_max f) factors
  in
  let row_upper row =
    let s = ref 0.0 in
    Array.iteri (fun i c -> s := !s +. (c *. caps.(i))) row;
    !s
  in
  let hi0 =
    Array.fold_left (fun acc row -> Float.min acc (row_upper row)) infinity
      inst.covering
  in
  (* Lower start: the single best coordinate, worst row. *)
  let lo0 =
    Array.fold_left
      (fun acc row ->
        let best = ref 0.0 in
        Array.iteri
          (fun i c -> best := Float.max !best (c *. caps.(i)))
          row;
        Float.min acc !best)
      infinity inst.covering
  in
  let lo0 = Float.max 1e-12 (lo0 /. float_of_int n) in
  let budget = match max_calls with Some b -> b | None -> 24 in
  let lo = ref lo0 and hi = ref (Float.max hi0 lo0) in
  let witness = ref (Array.make n 0.0) in
  let level = ref 0.0 in
  let calls = ref 0 in
  while !hi > (1.0 +. eps) *. !lo && !calls < budget do
    incr calls;
    let t = sqrt (!lo *. !hi) in
    let scaled_covering =
      Array.map (Array.map (fun c -> c /. t)) inst.covering
    in
    let mi = { inst with covering = scaled_covering } in
    match (solve ?pool ?backend ~eps mi).outcome with
    | Feasible { x } ->
        witness := x;
        level := t;
        lo := t
    | Infeasible _ | Unknown -> hi := t
  done;
  { level = !level; x = !witness; infeasible_above = !hi; calls = !calls }
