(** Appendix-A reduction: general primal form (1.1) → normalized pair
    (Figure 2).

    With [C = LLᵀ] (Cholesky) define [Bᵢ = (1/bᵢ)·L⁻¹AᵢL⁻ᵀ]. Then

    - covering: [Z* = Lᵀ Y* L] maps optimal solutions both ways and
      [Tr Z = C•Y], [Bᵢ•Z = (Aᵢ•Y)/bᵢ];
    - packing: [x̃ᵢ = bᵢ·xᵢ] identifies the duals, [1ᵀx̃ = Σᵢ bᵢxᵢ].

    so the normalized program has the same optimum as the original. *)

open Psdp_linalg

type t = {
  instance : Instance.t;  (** the normalized constraints [Bᵢ] *)
  cholesky_factor : Mat.t;  (** [L] with [C = LLᵀ] *)
  thresholds : float array;  (** original [bᵢ] (all positive) *)
}

val normalize : Instance.general -> t
(** Raises [Invalid_argument] when [C] is not (numerically) positive
    definite — the paper treats [C] as full rank on the support of the
    [Aᵢ] (Appendix A). *)

val normalize_factored :
  objective:Mat.t -> constraints:(Psdp_sparse.Factored.t * float) array -> t
(** The pre-factored path Appendix A highlights: when [Aᵢ = QᵢQᵢᵀ] is
    given, [Bᵢ = (1/bᵢ)(L⁻¹Qᵢ)(L⁻¹Qᵢ)ᵀ] needs only triangular solves
    against the columns of [Qᵢ] — the constraints are never densified,
    preserving thin factorizations through the reduction. Validation as
    in {!Instance.general} ([bᵢ > 0] required here; zero thresholds
    should be dropped by the caller). *)

val denormalize_primal : t -> Mat.t -> Mat.t
(** [denormalize_primal t z] is [Y = L⁻ᵀ Z L⁻¹]: a feasible covering
    solution of the normalized program maps to a feasible solution of the
    original with equal objective. *)

val denormalize_dual : t -> float array -> float array
(** [xᵢ = x̃ᵢ/bᵢ]: a normalized packing solution becomes a dual solution
    of the original with value [Σᵢ bᵢxᵢ = 1ᵀx̃]. *)

val primal_objective : Instance.general -> Mat.t -> float
(** [C • Y]. *)

val dual_objective : Instance.general -> float array -> float
(** [Σᵢ bᵢxᵢ]. *)
