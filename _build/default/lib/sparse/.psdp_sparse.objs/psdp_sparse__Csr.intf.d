lib/sparse/csr.mli: Format Mat Psdp_linalg Psdp_parallel Vec
