lib/sparse/weighted_gram.ml: Array Csr Factored Mat Printf Psdp_linalg
