lib/sparse/factored.ml: Array Cholesky Csr Eig Float Mat Psdp_linalg Vec
