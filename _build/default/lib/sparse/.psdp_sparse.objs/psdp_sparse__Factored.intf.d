lib/sparse/factored.mli: Csr Mat Psdp_linalg Psdp_parallel Vec
