lib/sparse/weighted_gram.mli: Factored Mat Psdp_linalg Psdp_parallel Vec
