lib/sparse/csr.ml: Array Cost Float Format List Mat Printf Psdp_linalg Psdp_parallel Psdp_prelude Util
