(** Truncated-Taylor approximation of the matrix exponential applied to a
    vector (paper, Lemma 4.2, after [AK07] Lemma 6).

    For PSD [B] with [‖B‖₂ <= κ], the degree-[<k] Taylor prefix
    [p̂(B) = Σ_{0<=i<k} Bⁱ/i!] with [k = max(e²κ, ln(2/ε))] satisfies
    [(1-ε)·exp(B) ≼ p̂(B) ≼ exp(B)]. Each extra degree costs one matvec,
    so [p̂(B)v] is [O(k · cost(matvec))] work and the matvec chain is the
    only sequential dependence — exactly the primitive Theorem 4.1 prices. *)

open Psdp_linalg

val degree : kappa:float -> eps:float -> int
(** [degree ~kappa ~eps] is Lemma 4.2's [k = max(e²·max(1,κ), ln(2/ε))],
    rounded up. Raises [Invalid_argument] unless [eps] in [(0,1)] and
    [kappa] finite and non-negative. *)

val apply : matvec:(Vec.t -> Vec.t) -> degree:int -> Vec.t -> Vec.t
(** [apply ~matvec ~degree v] is [Σ_{0<=i<degree} Bⁱv/i!] using [degree-1]
    invocations of [matvec]. *)

val apply_exp : matvec:(Vec.t -> Vec.t) -> kappa:float -> eps:float -> Vec.t -> Vec.t
(** Convenience: {!apply} with the degree from {!degree}. *)

(** {1 Chebyshev alternative}

    Beyond the paper: the Taylor prefix needs degree [Θ(κ)]; the
    Chebyshev expansion of [e^x] on [[0, κ]] reaches absolute accuracy
    [ε·e⁰] (hence [(1±ε)] multiplicative at the spectrum's low end, and
    far better above it) at degree [≈ κ/2 + O(√(κ·ln(1/ε)))] — several
    times shorter for the κ values the solver produces. Unlike the Taylor
    prefix it is {e not} one-sided (no PSD sandwich), so it is offered as
    an ablation/extension, not as the default primitive. *)

val chebyshev_coefficients : kappa:float -> degree:int -> float array
(** Coefficients [c₀ … c_degree] of the Chebyshev-series approximation of
    [e^x] on [[0, κ]] (computed by Chebyshev–Gauss quadrature; [c₀]
    already includes its conventional ½ factor). *)

val chebyshev_degree : kappa:float -> eps:float -> int
(** Smallest degree whose coefficient tail is below [eps] — determined
    numerically from the coefficient decay. *)

val chebyshev_apply :
  matvec:(Vec.t -> Vec.t) -> kappa:float -> degree:int -> Vec.t -> Vec.t
(** Evaluates the Chebyshev approximation of [exp] on a vector using the
    three-term recurrence ([degree] matvecs). *)

