lib/expm/big_dot_exp.mli: Factored Mat Psdp_linalg Psdp_parallel Psdp_sketch Psdp_sparse Vec
