lib/expm/big_dot_exp.ml: Array Csr Factored Float Mat Matfun Poly Psdp_linalg Psdp_parallel Psdp_prelude Psdp_sketch Psdp_sparse Util Vec
