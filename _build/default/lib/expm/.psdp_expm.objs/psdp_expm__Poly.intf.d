lib/expm/poly.mli: Psdp_linalg Vec
