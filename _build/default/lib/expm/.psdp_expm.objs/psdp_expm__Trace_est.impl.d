lib/expm/trace_est.ml: Array Float Poly Psdp_linalg Psdp_prelude Rng Vec
