lib/expm/poly.ml: Array Float Psdp_linalg Psdp_prelude Util Vec
