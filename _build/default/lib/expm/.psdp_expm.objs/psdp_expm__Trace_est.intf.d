lib/expm/trace_est.mli: Psdp_linalg Psdp_prelude Vec
