open Psdp_prelude
open Psdp_linalg

let check_args ~samples ~dim =
  if samples < 1 then invalid_arg "Trace_est: samples must be >= 1";
  if dim < 1 then invalid_arg "Trace_est: dim must be >= 1"

let rademacher rng dim =
  Array.init dim (fun _ -> if Rng.uniform rng < 0.5 then -1.0 else 1.0)

let estimate ~probe ~rng ~samples ~dim matvec =
  check_args ~samples ~dim;
  let total = ref 0.0 in
  for _ = 1 to samples do
    let z = probe rng dim in
    total := !total +. Vec.dot z (matvec z)
  done;
  !total /. float_of_int samples

let hutchinson ~rng ~samples ~dim matvec =
  estimate ~probe:rademacher ~rng ~samples ~dim matvec

let gaussian ~rng ~samples ~dim matvec =
  estimate ~probe:Rng.gaussian_array ~rng ~samples ~dim matvec

let exp_trace ~rng ~samples ~dim ~kappa ~eps matvec =
  check_args ~samples ~dim;
  let half_matvec v = Vec.scale 0.5 (matvec v) in
  let half_kappa = 0.5 *. Float.max 1.0 kappa in
  let total = ref 0.0 in
  for _ = 1 to samples do
    let z = rademacher rng dim in
    let w = Poly.apply_exp ~matvec:half_matvec ~kappa:half_kappa ~eps z in
    total := !total +. Vec.dot w w
  done;
  !total /. float_of_int samples
