open Psdp_prelude
open Psdp_linalg

let degree ~kappa ~eps =
  if not (Util.finite kappa) || kappa < 0.0 then
    invalid_arg "Poly.degree: kappa must be finite and non-negative";
  if eps <= 0.0 || eps >= 1.0 then
    invalid_arg "Poly.degree: eps must lie in (0,1)";
  let kappa = Float.max 1.0 kappa in
  let k =
    Float.max (exp 2.0 *. kappa) (log (2.0 /. eps))
  in
  int_of_float (Float.ceil k)

let apply ~matvec ~degree v =
  if degree < 1 then invalid_arg "Poly.apply: degree must be >= 1";
  let acc = Vec.copy v in
  let term = ref (Vec.copy v) in
  for i = 1 to degree - 1 do
    let next = matvec !term in
    Vec.scale_inplace next (1.0 /. float_of_int i);
    Vec.axpy acc ~alpha:1.0 next;
    term := next
  done;
  acc

let apply_exp ~matvec ~kappa ~eps v =
  apply ~matvec ~degree:(degree ~kappa ~eps) v

(* Chebyshev series of e^x on [0, kappa]: with t = (2x − κ)/κ,
   e^x = e^{κ/2}·e^{(κ/2)t} and the classical expansion
   e^{zt} = I₀(z) + 2 Σ_{k≥1} I_k(z) T_k(t) gives
   c₀ = e^{κ/2}I₀(κ/2), c_k = 2e^{κ/2}I_k(κ/2). The scaled Bessel values
   J_k = I_k(z)/e^z are computed by Miller's downward recurrence
   (normalized through I₀ + 2ΣI_k = e^z), which keeps the tiny tail
   coefficients relatively accurate — a naive quadrature loses them under
   the e^κ dynamic range. *)
let scaled_bessel ~z ~count =
  (* J_k = I_k(z)/e^z for k = 0..count-1. *)
  let start = count + max 20 (int_of_float (2.0 *. sqrt z)) + 20 in
  let i = Array.make (start + 2) 0.0 in
  i.(start + 1) <- 0.0;
  i.(start) <- 1e-280;
  for k = start downto 1 do
    i.(k - 1) <- i.(k + 1) +. (2.0 *. float_of_int k /. z *. i.(k));
    (* Rescale before overflow; relative values are all that matter. *)
    if i.(k - 1) > 1e280 then begin
      let scale_ = 1e-280 in
      for j = k - 1 to start + 1 do
        i.(j) <- i.(j) *. scale_
      done
    end
  done;
  let norm = ref i.(0) in
  for k = 1 to start do
    norm := !norm +. (2.0 *. i.(k))
  done;
  Array.init count (fun k -> i.(k) /. !norm)

let chebyshev_coefficients ~kappa ~degree =
  if degree < 0 then invalid_arg "Poly.chebyshev_coefficients: degree < 0";
  if not (Util.finite kappa) || kappa <= 0.0 then
    invalid_arg "Poly.chebyshev_coefficients: kappa must be positive";
  let z = kappa /. 2.0 in
  let j = scaled_bessel ~z ~count:(degree + 1) in
  (* c_k = 2·e^{κ/2}·I_k(z) = 2·e^{κ/2}·e^z·J_k = 2·e^κ·J_k. *)
  let front = exp kappa in
  Array.init (degree + 1) (fun k ->
      if k = 0 then front *. j.(0) else 2.0 *. front *. j.(k))

let chebyshev_degree ~kappa ~eps =
  if eps <= 0.0 || eps >= 1.0 then
    invalid_arg "Poly.chebyshev_degree: eps must lie in (0,1)";
  let kappa = Float.max 1.0 kappa in
  (* Coefficients decay super-exponentially past ~kappa/2; search for the
     smallest truncation whose tail bound drops below eps (absolute, and
     hence multiplicative at the spectrum's low end where e^x = Θ(1)). *)
  let cap = max 16 (int_of_float (Float.ceil (kappa +. (20.0 *. sqrt kappa)))) in
  let c = chebyshev_coefficients ~kappa ~degree:cap in
  let tail = Array.make (cap + 2) 0.0 in
  for k = cap downto 0 do
    tail.(k) <- tail.(k + 1) +. Float.abs c.(k)
  done;
  let d = ref cap in
  (try
     for k = 0 to cap do
       if tail.(k + 1) <= eps then begin
         d := k;
         raise Exit
       end
     done
   with Exit -> ());
  max 1 !d

let chebyshev_apply ~matvec ~kappa ~degree v =
  let c = chebyshev_coefficients ~kappa ~degree in
  (* S = (2/kappa)·Φ − I maps the spectrum into [−1, 1]. *)
  let s u =
    let w = matvec u in
    Vec.scale_inplace w (2.0 /. kappa);
    Vec.axpy w ~alpha:(-1.0) u;
    w
  in
  let acc = Vec.scale c.(0) v in
  if degree >= 1 then begin
    let t_prev = ref (Vec.copy v) in
    let t_curr = ref (s v) in
    Vec.axpy acc ~alpha:c.(1) !t_curr;
    for k = 2 to degree do
      (* T_{k} = 2·S·T_{k−1} − T_{k−2} *)
      let next = s !t_curr in
      Vec.scale_inplace next 2.0;
      Vec.axpy next ~alpha:(-1.0) !t_prev;
      Vec.axpy acc ~alpha:c.(k) next;
      t_prev := !t_curr;
      t_curr := next
    done
  end;
  acc
