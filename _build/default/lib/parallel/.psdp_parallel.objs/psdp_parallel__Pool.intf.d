lib/parallel/pool.mli:
