lib/parallel/pool.ml: Array Atomic Condition Domain List Mutex Psdp_prelude String Sys
