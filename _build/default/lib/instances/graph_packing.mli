(** Graph-structured positive SDPs.

    The paper's Section 5 is explicit that the full MaxCut SDP needs
    matrix packing constraints {e beyond} the pure packing class solved
    here (Klein–Lu [KL96] characterized it as positive; mixed
    packing/covering is left as future work). What graphs {e do} give us
    inside the class:

    - {!edge_packing}: [max 1ᵀx] s.t. [Σₑ xₑ·Lₑ ≼ I] where
      [Lₑ = (e_u−e_v)(e_u−e_v)ᵀ] is the rank-1 edge Laplacian — "how much
      can every edge be loaded before the graph's spectral image exceeds
      the identity". The constraints are the thinnest possible factored
      matrices ([Qₑ] a single sparse column), making this the natural
      graph workload for the near-linear-work path.
    - {!laplacian_covering}: the general-form (1.1) instance
      [min (L/4 + δI)•Y] s.t. [Yᵢᵢ >= 1] — the covering program whose
      shape matches the MaxCut SDP dual, used to exercise the Appendix-A
      normalization pipeline end-to-end on graph data. *)

val edge_packing : Graph.t -> Psdp_core.Instance.t
(** One rank-1 constraint per edge, scaled by the edge weight:
    [Aₑ = wₑ·(e_u−e_v)(e_u−e_v)ᵀ]. *)

val edge_packing_opt_cycle : int -> float
(** Closed-form optimum of {!edge_packing} on the unweighted cycle [C_n]:
    by symmetry the optimal loading is uniform, [xₑ = 1/λmax(L(C_n))]
    with [λmax = 2 − 2cos(π⌊n/2⌋·2/n)… = 2 + 2cos(π·(n−?)/n)]; computed
    exactly as [n / λmax(L)] from the known cycle spectrum
    [λ_k = 2 − 2cos(2πk/n)]. Used by the EXP7 quality checks. *)

val laplacian_covering : ?delta:float -> Graph.t -> Psdp_core.Instance.general
(** [min (L/4 + δ·I)•Y] s.t. [eᵢeᵢᵀ•Y >= 1] ([δ] defaults to [0.25],
    keeping the objective positive definite as Appendix A requires). *)
