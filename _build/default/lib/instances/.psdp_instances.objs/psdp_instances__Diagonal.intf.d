lib/instances/diagonal.mli: Psdp_core Psdp_prelude
