lib/instances/loader.mli: Psdp_core
