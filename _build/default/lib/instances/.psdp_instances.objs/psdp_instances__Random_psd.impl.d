lib/instances/random_psd.ml: Array Csr Factored Float Psdp_core Psdp_prelude Psdp_sparse Rng
