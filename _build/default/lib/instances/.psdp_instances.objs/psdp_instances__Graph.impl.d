lib/instances/graph.ml: Array Hashtbl List Mat Option Psdp_linalg Psdp_prelude Rng
