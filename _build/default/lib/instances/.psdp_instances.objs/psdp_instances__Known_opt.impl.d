lib/instances/known_opt.ml: Array Csr Factored Fun List Mat Psdp_core Psdp_linalg Psdp_prelude Psdp_sparse Qr Rng Util
