lib/instances/known_opt.mli: Psdp_core Psdp_prelude
