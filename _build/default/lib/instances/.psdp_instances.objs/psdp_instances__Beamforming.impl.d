lib/instances/beamforming.ml: Array Cholesky Csr Factored Mat Printf Psdp_core Psdp_linalg Psdp_prelude Psdp_sparse Rng
