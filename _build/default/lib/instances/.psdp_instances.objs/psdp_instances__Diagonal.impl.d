lib/instances/diagonal.ml: Array Csr Factored Psdp_core Psdp_prelude Psdp_sparse Rng Util
