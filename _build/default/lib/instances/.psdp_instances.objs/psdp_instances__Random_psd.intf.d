lib/instances/random_psd.mli: Psdp_core Psdp_prelude
