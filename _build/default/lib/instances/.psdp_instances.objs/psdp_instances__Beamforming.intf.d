lib/instances/beamforming.mli: Psdp_core Psdp_linalg Psdp_prelude
