lib/instances/graph_packing.ml: Array Csr Factored Float Graph Mat Psdp_core Psdp_linalg Psdp_sparse Vec
