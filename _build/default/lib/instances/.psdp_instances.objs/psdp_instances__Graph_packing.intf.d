lib/instances/graph_packing.mli: Graph Psdp_core
