lib/instances/graph.mli: Psdp_linalg Psdp_prelude
