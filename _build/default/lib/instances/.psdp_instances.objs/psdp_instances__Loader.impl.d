lib/instances/loader.ml: Array Buffer Csr Factored Fun List Printf Psdp_core Psdp_sparse String
