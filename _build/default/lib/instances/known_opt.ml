open Psdp_prelude
open Psdp_linalg
open Psdp_sparse

let random_orthonormal rng dim =
  let g = Mat.init dim dim (fun _ _ -> Rng.gaussian rng) in
  Qr.orthonormal_columns g

(* Split the columns of an orthonormal matrix into n contiguous groups and
   build the factored projector (or scaled projector) for each group. *)
let projector_family rng ~dim ~weights =
  let n = Array.length weights in
  if n > dim then invalid_arg "Known_opt: need n <= dim";
  if n < 1 then invalid_arg "Known_opt: need n >= 1";
  Array.iter
    (fun w -> if w <= 0.0 then invalid_arg "Known_opt: weights must be > 0")
    weights;
  let basis = random_orthonormal rng dim in
  let group_of = Array.init dim (fun j -> j * n / dim) in
  let factors =
    Array.init n (fun i ->
        let cols =
          List.filter (fun j -> group_of.(j) = i) (List.init dim Fun.id)
        in
        let r = List.length cols in
        assert (r > 0);
        (* Q = √wᵢ · [columns of the group]: QQᵀ = wᵢ·Pᵢ. *)
        let entries = ref [] in
        List.iteri
          (fun k j ->
            for row = 0 to dim - 1 do
              let v = sqrt weights.(i) *. Mat.get basis row j in
              if v <> 0.0 then entries := (row, k, v) :: !entries
            done)
          cols;
        Factored.of_csr (Csr.of_coo ~rows:dim ~cols:r !entries))
  in
  Psdp_core.Instance.of_factors factors

let orthogonal_projectors ~rng ~dim ~n =
  let inst = projector_family rng ~dim ~weights:(Array.make n 1.0) in
  (inst, float_of_int n)

let weighted_projectors ~rng ~dim ~weights =
  let inst = projector_family rng ~dim ~weights in
  (* Σ xᵢwᵢPᵢ ≼ I ⟺ xᵢwᵢ <= 1 (ranges are orthogonal), so
     OPT = Σᵢ 1/wᵢ. *)
  (inst, Util.sum_array (Array.map (fun w -> 1.0 /. w) weights))

let rank_one_orthonormal ~rng ~dim ~n =
  if n > dim then invalid_arg "Known_opt.rank_one_orthonormal: n <= dim";
  let basis = random_orthonormal rng dim in
  let factors =
    Array.init n (fun i ->
        let entries = ref [] in
        for row = 0 to dim - 1 do
          let v = Mat.get basis row i in
          if v <> 0.0 then entries := (row, 0, v) :: !entries
        done;
        Factored.of_csr (Csr.of_coo ~rows:dim ~cols:1 !entries))
  in
  (Psdp_core.Instance.of_factors factors, float_of_int n)

let simplex_corner ~dim =
  if dim < 1 then invalid_arg "Known_opt.simplex_corner: dim >= 1";
  (* Aᵢ = eᵢeᵢᵀ + I/dim. Σᵢ xᵢAᵢ = diag(x) + (‖x‖₁/dim)·I, so the optimum
     of max ‖x‖₁ s.t. xᵢ + ‖x‖₁/dim <= 1 ∀i is the uniform x = 1/2,
     value dim/2. *)
  let mats =
    Array.init dim (fun i ->
        Mat.init dim dim (fun r c ->
            let id = if r = c then 1.0 /. float_of_int dim else 0.0 in
            if r = i && c = i then 1.0 +. id else id))
  in
  (Psdp_core.Instance.of_dense mats, float_of_int dim /. 2.0)
