open Psdp_prelude
open Psdp_linalg

type t = { vertices : int; edges : (int * int * float) array }

let create ~vertices ~edges =
  if vertices < 1 then invalid_arg "Graph.create: vertices >= 1";
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (u, v, w) ->
      if u < 0 || u >= vertices || v < 0 || v >= vertices then
        invalid_arg "Graph.create: vertex out of range";
      if u = v then invalid_arg "Graph.create: self-loop";
      if w <= 0.0 then invalid_arg "Graph.create: non-positive weight";
      let key = (min u v, max u v) in
      let prev = Option.value ~default:0.0 (Hashtbl.find_opt tbl key) in
      Hashtbl.replace tbl key (prev +. w))
    edges;
  let merged =
    Hashtbl.fold (fun (u, v) w acc -> (u, v, w) :: acc) tbl []
  in
  let arr = Array.of_list merged in
  Array.sort compare arr;
  { vertices; edges = arr }

let gnp ~rng ~vertices ~p =
  if p < 0.0 || p > 1.0 then invalid_arg "Graph.gnp: p in [0,1]";
  if vertices < 2 then invalid_arg "Graph.gnp: vertices >= 2";
  let edges = ref [] in
  for u = 0 to vertices - 2 do
    for v = u + 1 to vertices - 1 do
      if Rng.uniform rng < p then
        edges := (u, v, 0.5 +. Rng.uniform rng) :: !edges
    done
  done;
  if !edges = [] then begin
    let u = Rng.int rng (vertices - 1) in
    edges := [ (u, u + 1, 1.0) ]
  end;
  create ~vertices ~edges:!edges

let cycle n =
  if n < 3 then invalid_arg "Graph.cycle: n >= 3";
  create ~vertices:n
    ~edges:(List.init n (fun i -> (i, (i + 1) mod n, 1.0)))

let complete n =
  if n < 2 then invalid_arg "Graph.complete: n >= 2";
  let edges = ref [] in
  for u = 0 to n - 2 do
    for v = u + 1 to n - 1 do
      edges := (u, v, 1.0) :: !edges
    done
  done;
  create ~vertices:n ~edges:!edges

let total_weight g =
  Array.fold_left (fun acc (_, _, w) -> acc +. w) 0.0 g.edges

let laplacian g =
  let l = Mat.create g.vertices g.vertices in
  Array.iter
    (fun (u, v, w) ->
      Mat.set l u u (Mat.get l u u +. w);
      Mat.set l v v (Mat.get l v v +. w);
      Mat.set l u v (Mat.get l u v -. w);
      Mat.set l v u (Mat.get l v u -. w))
    g.edges;
  l
