(** Plain-text serialization of normalized instances, so the CLI can move
    workloads between [gen], [solve] and [verify] invocations.

    Format (line-oriented, '#' comments allowed):
    {v
    psdp-instance v1
    dim <m>
    constraints <n>
    factor <index> <rows> <cols> <nnz>
    <row> <col> <value>     (nnz entry lines)
    ...
    v} *)

val to_string : Psdp_core.Instance.t -> string
val of_string : string -> Psdp_core.Instance.t
(** Raises [Failure] with a line-numbered message on malformed input. *)

val save : string -> Psdp_core.Instance.t -> unit
val load : string -> Psdp_core.Instance.t
