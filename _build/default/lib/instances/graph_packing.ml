open Psdp_linalg
open Psdp_sparse

let edge_packing (g : Graph.t) =
  let factors =
    Array.map
      (fun (u, v, w) ->
        (* Aₑ = w·(e_u − e_v)(e_u − e_v)ᵀ = QQᵀ with Q = √w·(e_u − e_v). *)
        let s = sqrt w in
        Factored.of_csr
          (Csr.of_coo ~rows:g.Graph.vertices ~cols:1
             [ (u, 0, s); (v, 0, -.s) ]))
      g.Graph.edges
  in
  Psdp_core.Instance.of_factors factors

let edge_packing_opt_cycle n =
  if n < 3 then invalid_arg "Graph_packing.edge_packing_opt_cycle: n >= 3";
  (* Cycle Laplacian spectrum: λ_k = 2 − 2cos(2πk/n). The packing problem
     is invariant under the cyclic symmetry, so averaging shows a uniform
     loading is optimal: OPT = n/λmax. *)
  let lambda_max = ref 0.0 in
  for k = 0 to n - 1 do
    let l = 2.0 -. (2.0 *. cos (2.0 *. Float.pi *. float_of_int k /. float_of_int n)) in
    if l > !lambda_max then lambda_max := l
  done;
  float_of_int n /. !lambda_max

let laplacian_covering ?(delta = 0.25) g =
  if delta <= 0.0 then
    invalid_arg "Graph_packing.laplacian_covering: delta must be > 0";
  let m = g.Graph.vertices in
  let l = Graph.laplacian g in
  let objective =
    Mat.add (Mat.scale 0.25 l) (Mat.scale delta (Mat.identity m))
  in
  let constraints =
    Array.init m (fun i -> (Mat.outer (Vec.basis m i), 1.0))
  in
  Psdp_core.Instance.general ~objective ~constraints
