(** Diagonal positive SDP instances ≡ positive packing LPs.

    Positive LPs are exactly the positive SDPs whose ellipsoids are
    axis-aligned (paper, Section 1.2); these instances let the test suite
    pit {!Psdp_core.Decision} against the independent scalar solver
    {!Psdp_core.Lp}. *)

val random :
  rng:Psdp_prelude.Rng.t ->
  dim:int ->
  n:int ->
  ?density:float ->
  unit ->
  Psdp_core.Instance.t
(** Each constraint is [diag(d)] with non-negative entries, [density]
    fraction non-zero (default 0.6), at least one non-zero. *)

val scaled_identities : float array -> dim:int -> Psdp_core.Instance.t * float
(** [scaled_identities cs ~dim]: [Aᵢ = cᵢ·I] ([cᵢ > 0]). The packing
    optimum is exactly [1/min cᵢ] (all mass on the cheapest constraint).
    Returns the instance and its optimum. *)
