(** Downlink-beamforming packing SDP — the application Iyengar, Phillips
    and Stein [IPS10, §2.2] formulate, and the one the paper singles out
    as falling {e completely} within the packing framework (Section 5).

    A base station with [m] antennas serves [n] users; user [i]'s channel
    is a vector [hᵢ ∈ R^m]. Allocating transmit power [xᵢ] to user [i]
    contributes [xᵢ·hᵢhᵢᵀ] to the spatial covariance of the emitted
    signal, which regulatory/hardware limits cap by [≼ I] (per-direction
    power budget after whitening). Maximizing total served power is then

    [max 1ᵀx  s.t.  Σᵢ xᵢ·hᵢhᵢᵀ ≼ I,  x >= 0]

    — a normalized positive packing SDP with rank-1 factored constraints.

    Substitution note (DESIGN.md §2): real systems measure [hᵢ] from
    antenna arrays; we synthesize channels from the standard Rayleigh
    fading model (i.i.d. Gaussian entries), optionally with spatial
    correlation across antennas, which exercises exactly the same code
    path. *)

type channel_model =
  | Rayleigh  (** i.i.d. [N(0,1)] entries *)
  | Correlated of float
      (** neighbouring antennas correlated with coefficient [ρ ∈ [0,1)]:
          [h = A·g] where [A] is the Cholesky factor of the Toeplitz
          covariance [Σ_{jk} = ρ^{|j−k|}] *)

val channels :
  rng:Psdp_prelude.Rng.t ->
  antennas:int ->
  users:int ->
  ?model:channel_model ->
  unit ->
  Psdp_linalg.Vec.t array
(** Draw the channel vectors ([model] defaults to [Rayleigh]). *)

val instance_of_channels : Psdp_linalg.Vec.t array -> Psdp_core.Instance.t
(** Build the packing SDP [Σᵢ xᵢhᵢhᵢᵀ ≼ I] from given channels. *)

val instance :
  rng:Psdp_prelude.Rng.t ->
  antennas:int ->
  users:int ->
  ?model:channel_model ->
  unit ->
  Psdp_core.Instance.t
(** {!channels} followed by {!instance_of_channels}. *)
