(** Instance families with analytically known packing optima — the ground
    truth for the approximation-quality experiment (EXP7).

    Each generator returns [(instance, opt)] with
    [opt = max{1ᵀx : Σᵢ xᵢAᵢ ≼ I}] exact. *)

val orthogonal_projectors :
  rng:Psdp_prelude.Rng.t -> dim:int -> n:int -> Psdp_core.Instance.t * float
(** Partition a random orthonormal basis of [R^dim] into [n] groups and
    let [Aᵢ] project onto group [i]. The [Aᵢ] commute and have disjoint
    ranges, so [Σ xᵢAᵢ ≼ I ⟺ xᵢ <= 1] for all [i]: OPT = n exactly.
    Requires [n <= dim]. *)

val rank_one_orthonormal :
  rng:Psdp_prelude.Rng.t -> dim:int -> n:int -> Psdp_core.Instance.t * float
(** [Aᵢ = vᵢvᵢᵀ] for orthonormal [vᵢ]: OPT = n. Requires [n <= dim].
    Rank-1 constraints — the thinnest possible factorization. *)

val weighted_projectors :
  rng:Psdp_prelude.Rng.t ->
  dim:int ->
  weights:float array ->
  Psdp_core.Instance.t * float
(** [Aᵢ = wᵢ·Pᵢ] for orthogonal projectors and [wᵢ > 0]:
    OPT = [Σᵢ 1/wᵢ]. Requires [length weights <= dim]. *)

val simplex_corner : dim:int -> Psdp_core.Instance.t * float
(** A deterministic tiny family: [Aᵢ = (eᵢeᵢᵀ + I/dim)], for which the
    optimum is computable in closed form: by symmetry the optimal [x] is
    uniform, [x = (dim/(dim+… ))]; concretely
    [Σᵢ x·Aᵢ = x·(I + I) = 2x·I] when summed over all [dim] constraints,
    so OPT = [dim/2]. Uses [n = dim]. *)
