open Psdp_prelude
open Psdp_sparse

let diag_factor d =
  (* diag(d) = Q Qᵀ with Q = diag(√dⱼ) restricted to non-zero columns. *)
  let m = Array.length d in
  let entries = ref [] in
  for j = m - 1 downto 0 do
    if d.(j) > 0.0 then entries := (j, j, sqrt d.(j)) :: !entries
  done;
  Factored.of_csr (Csr.of_coo ~rows:m ~cols:m !entries)

let random ~rng ~dim ~n ?(density = 0.6) () =
  if dim < 1 || n < 1 then invalid_arg "Diagonal.random: dim, n >= 1";
  let constraint_ () =
    let d = Array.make dim 0.0 in
    for j = 0 to dim - 1 do
      if Rng.uniform rng < density then d.(j) <- 0.1 +. Rng.uniform rng
    done;
    if Array.for_all (fun v -> v = 0.0) d then
      d.(Rng.int rng dim) <- 0.5 +. Rng.uniform rng;
    diag_factor d
  in
  Psdp_core.Instance.of_factors (Array.init n (fun _ -> constraint_ ()))

let scaled_identities cs ~dim =
  if Array.length cs = 0 then invalid_arg "Diagonal.scaled_identities: empty";
  Array.iter
    (fun c ->
      if c <= 0.0 then
        invalid_arg "Diagonal.scaled_identities: coefficients must be > 0")
    cs;
  let inst =
    Psdp_core.Instance.of_factors
      (Array.map (fun c -> diag_factor (Array.make dim c)) cs)
  in
  (inst, 1.0 /. Util.min_array cs)
