(** Small weighted-graph utilities feeding the MaxCut SDP generator. *)

type t = {
  vertices : int;
  edges : (int * int * float) array;  (** (u, v, weight), u < v, w > 0 *)
}

val create : vertices:int -> edges:(int * int * float) list -> t
(** Validates: indices in range, [u <> v], positive weights; duplicate
    edges are merged by summing weights. *)

val gnp : rng:Psdp_prelude.Rng.t -> vertices:int -> p:float -> t
(** Erdős–Rényi [G(n,p)] with uniform [0.5, 1.5] weights. Guaranteed to
    contain at least one edge (a random edge is added if sampling
    produced none). *)

val cycle : int -> t
(** Unweighted cycle [C_n] ([n >= 3]). *)

val complete : int -> t
(** Unweighted complete graph [K_n] ([n >= 2]). *)

val total_weight : t -> float
val laplacian : t -> Psdp_linalg.Mat.t
(** Weighted graph Laplacian [L = Σ_{(u,v)} w·(e_u−e_v)(e_u−e_v)ᵀ] — PSD. *)
