open Psdp_prelude
open Psdp_linalg
open Psdp_sparse

type channel_model = Rayleigh | Correlated of float

let correlation_factor ~antennas rho =
  (* Cholesky factor of the Toeplitz covariance Σ_{jk} = ρ^{|j−k|}. *)
  let sigma =
    Mat.init antennas antennas (fun j k -> rho ** float_of_int (abs (j - k)))
  in
  Cholesky.factor sigma

let channels ~rng ~antennas ~users ?(model = Rayleigh) () =
  if antennas < 1 || users < 1 then
    invalid_arg "Beamforming.channels: antennas, users >= 1";
  let draw =
    match model with
    | Rayleigh -> fun () -> Rng.gaussian_array rng antennas
    | Correlated rho ->
        if rho < 0.0 || rho >= 1.0 then
          invalid_arg "Beamforming.channels: correlation in [0,1)";
        let a = correlation_factor ~antennas rho in
        fun () -> Mat.gemv a (Rng.gaussian_array rng antennas)
  in
  Array.init users (fun _ -> draw ())

let instance_of_channels hs =
  if Array.length hs = 0 then
    invalid_arg "Beamforming.instance_of_channels: no users";
  let m = Array.length hs.(0) in
  let factors =
    Array.mapi
      (fun i h ->
        if Array.length h <> m then
          invalid_arg
            (Printf.sprintf
               "Beamforming.instance_of_channels: channel %d has wrong length" i);
        let entries = ref [] in
        for j = m - 1 downto 0 do
          if h.(j) <> 0.0 then entries := (j, 0, h.(j)) :: !entries
        done;
        Factored.of_csr (Csr.of_coo ~rows:m ~cols:1 !entries))
      hs
  in
  Psdp_core.Instance.of_factors factors

let instance ~rng ~antennas ~users ?model () =
  instance_of_channels (channels ~rng ~antennas ~users ?model ())
