open Psdp_prelude
open Psdp_linalg

type t = { k : int; m : int; rows : Vec.t array }

let create ~rng ~target_dim ~source_dim =
  if target_dim <= 0 || source_dim <= 0 then
    invalid_arg "Jl.create: dimensions must be positive";
  let scale = 1.0 /. sqrt (float_of_int target_dim) in
  let rows =
    Array.init target_dim (fun _ ->
        Array.init source_dim (fun _ -> scale *. Rng.gaussian rng))
  in
  { k = target_dim; m = source_dim; rows }

let identity dim =
  if dim <= 0 then invalid_arg "Jl.identity: dimension must be positive";
  let rows =
    Array.init dim (fun r ->
        Array.init dim (fun c -> if r = c then 1.0 else 0.0))
  in
  { k = dim; m = dim; rows }

let recommended_dim ~eps m =
  if eps <= 0.0 then invalid_arg "Jl.recommended_dim: eps must be positive";
  let c = 4.0 in
  max 4 (int_of_float (Float.ceil (c *. log (float_of_int (m + 2)) /. (eps *. eps))))

let target_dim t = t.k
let source_dim t = t.m
let row t r = t.rows.(r)

let apply t v =
  if Array.length v <> t.m then invalid_arg "Jl.apply: dimension mismatch";
  Array.init t.k (fun r -> Vec.dot t.rows.(r) v)

let norm_sq_estimate t v =
  let pv = apply t v in
  Vec.dot pv pv
