lib/sketch/jl.mli: Psdp_linalg Psdp_prelude Vec
