lib/sketch/jl.ml: Array Float Psdp_linalg Psdp_prelude Rng Vec
