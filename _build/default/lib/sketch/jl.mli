(** Gaussian Johnson–Lindenstrauss sketching (paper, Section 4).

    A sketch is a [k × m] matrix [Π] with i.i.d. [N(0, 1/k)] entries; for
    any fixed vector [v], [‖Πv‖² ≈ ‖v‖²] with multiplicative error
    [O(1/√k)] w.h.p. Theorem 4.1 uses it to compress the [m]-dimensional
    columns of [exp(Φ/2)Qᵢ] down to [O(ε⁻² log m)] dimensions. *)

open Psdp_linalg

type t

val create : rng:Psdp_prelude.Rng.t -> target_dim:int -> source_dim:int -> t
(** Draws a fresh [target_dim × source_dim] Gaussian sketch. *)

val identity : int -> t
(** The exact "sketch" [Π = I]: norms are preserved exactly. Callers use
    it whenever the recommended target dimension reaches the source
    dimension — compressing past that point only adds variance. *)

val recommended_dim : eps:float -> int -> int
(** [recommended_dim ~eps m]: number of rows sufficient for relative error
    [eps] on poly(m) many vectors, [⌈c·ln(m+2)/eps²⌉] with a pragmatic
    constant ([c = 4]) — the asymptotics of [DG03] with a constant tuned
    for this code base (validated by the EXP4 bench). *)

val target_dim : t -> int
val source_dim : t -> int

val row : t -> int -> Vec.t
(** [row t r] is the [r]-th row of [Π] (not a copy — do not mutate). *)

val apply : t -> Vec.t -> Vec.t
(** [apply t v = Π v]. *)

val norm_sq_estimate : t -> Vec.t -> float
(** [‖Πv‖²] — an unbiased estimator of [‖v‖²]. *)
