type snapshot = { work : int; depth : int }

let enabled = ref false
let work_counter = Atomic.make 0
let depth_counter = Atomic.make 0

let reset () =
  Atomic.set work_counter 0;
  Atomic.set depth_counter 0

let read () =
  { work = Atomic.get work_counter; depth = Atomic.get depth_counter }

let serial w =
  if !enabled then begin
    ignore (Atomic.fetch_and_add work_counter w);
    ignore (Atomic.fetch_and_add depth_counter w)
  end

let parallel ~work ~span =
  if !enabled then begin
    ignore (Atomic.fetch_and_add work_counter work);
    ignore (Atomic.fetch_and_add depth_counter span)
  end

let measure f =
  let saved = read () and was_enabled = !enabled in
  reset ();
  enabled := true;
  let finish () =
    let cost = read () in
    enabled := was_enabled;
    Atomic.set work_counter saved.work;
    Atomic.set depth_counter saved.depth;
    cost
  in
  match f () with
  | result -> (result, finish ())
  | exception e ->
      ignore (finish ());
      raise e

let pp ppf { work; depth } =
  Format.fprintf ppf "work=%d depth=%d" work depth
