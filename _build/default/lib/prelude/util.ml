let close ?(rtol = 1e-9) ?(atol = 1e-12) a b =
  Float.abs (a -. b) <= atol +. (rtol *. Float.max (Float.abs a) (Float.abs b))

let clamp ~lo ~hi x = if x < lo then lo else if x > hi then hi else x
let square x = x *. x
let log2 x = log x /. log 2.0
let ceil_div a b = (a + b - 1) / b

let ceil_pow2 n =
  let rec go p = if p >= n then p else go (p * 2) in
  go 1

let finite x = Float.is_finite x

let sum_array a =
  (* Kahan summation: the solver accumulates many tiny multiplicative-weight
     increments, so naive summation drifts noticeably for large n. *)
  let sum = ref 0.0 and c = ref 0.0 in
  for i = 0 to Array.length a - 1 do
    let y = a.(i) -. !c in
    let t = !sum +. y in
    c := t -. !sum -. y;
    sum := t
  done;
  !sum

let max_array a =
  if Array.length a = 0 then invalid_arg "Util.max_array: empty array";
  Array.fold_left Float.max a.(0) a

let min_array a =
  if Array.length a = 0 then invalid_arg "Util.min_array: empty array";
  Array.fold_left Float.min a.(0) a

let fold_range n ~init ~f =
  let acc = ref init in
  for i = 0 to n - 1 do
    acc := f !acc i
  done;
  !acc

let array_init_matrixwise rows cols f =
  Array.init (rows * cols) (fun k -> f (k / cols) (k mod cols))

let pp_float_list ppf xs =
  Format.fprintf ppf "[@[%a@]]"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ";@ ")
       (fun ppf x -> Format.fprintf ppf "%.6g" x))
    xs
