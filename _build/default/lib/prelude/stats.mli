(** Streaming and batch descriptive statistics used by the benchmark
    harness and the property tests. *)

type t
(** Mutable accumulator (Welford's online algorithm). *)

val create : unit -> t
val add : t -> float -> unit
val count : t -> int
val mean : t -> float
val variance : t -> float
(** Unbiased sample variance; [0.] with fewer than two samples. *)

val stddev : t -> float
val min : t -> float
val max : t -> float

val of_array : float array -> t

val quantile : float array -> float -> float
(** [quantile xs q] for [q] in [[0,1]], linear interpolation between order
    statistics. Does not mutate the input. *)

val median : float array -> float

val linear_fit : float array -> float array -> float * float
(** [linear_fit xs ys] is the least-squares [(slope, intercept)]. Used to
    estimate empirical scaling exponents from log-log series. *)

val scaling_exponent : float array -> float array -> float
(** Slope of the log-log least-squares fit: the empirical exponent [p] in
    [y ≈ c·x^p]. All inputs must be positive. *)
