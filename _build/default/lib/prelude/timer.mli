(** Wall-clock timing helpers for the examples and the benchmark harness. *)

val now : unit -> float
(** Wall-clock seconds ([Unix.gettimeofday]); [Sys.time] would report CPU
    time, which over-counts parallel regions by the number of domains. *)

val time : (unit -> 'a) -> 'a * float
(** [time f] is [(f (), elapsed_wall_seconds)]. *)

val time_median : ?repeats:int -> (unit -> 'a) -> 'a * float
(** Run [f] [repeats] times (default 3) and report the median elapsed
    time together with the last result. *)
