type t = {
  mutable n : int;
  mutable mean : float;
  mutable m2 : float;
  mutable min : float;
  mutable max : float;
}

let create () =
  { n = 0; mean = 0.0; m2 = 0.0; min = infinity; max = neg_infinity }

let add t x =
  t.n <- t.n + 1;
  let delta = x -. t.mean in
  t.mean <- t.mean +. (delta /. float_of_int t.n);
  t.m2 <- t.m2 +. (delta *. (x -. t.mean));
  if x < t.min then t.min <- x;
  if x > t.max then t.max <- x

let count t = t.n
let mean t = t.mean
let variance t = if t.n < 2 then 0.0 else t.m2 /. float_of_int (t.n - 1)
let stddev t = sqrt (variance t)
let min t = t.min
let max t = t.max

let of_array xs =
  let t = create () in
  Array.iter (add t) xs;
  t

let quantile xs q =
  if Array.length xs = 0 then invalid_arg "Stats.quantile: empty array";
  let sorted = Array.copy xs in
  Array.sort Float.compare sorted;
  let n = Array.length sorted in
  let pos = q *. float_of_int (n - 1) in
  let lo = int_of_float (Float.floor pos) in
  let hi = Stdlib.min (lo + 1) (n - 1) in
  let frac = pos -. float_of_int lo in
  ((1.0 -. frac) *. sorted.(lo)) +. (frac *. sorted.(hi))

let median xs = quantile xs 0.5

let linear_fit xs ys =
  let n = Array.length xs in
  if n <> Array.length ys || n < 2 then
    invalid_arg "Stats.linear_fit: need >= 2 matching points";
  let fn = float_of_int n in
  let sx = Util.sum_array xs and sy = Util.sum_array ys in
  let sxx = Util.sum_array (Array.map (fun x -> x *. x) xs) in
  let sxy = Util.sum_array (Array.map2 (fun x y -> x *. y) xs ys) in
  let denom = (fn *. sxx) -. (sx *. sx) in
  if Float.abs denom < 1e-30 then invalid_arg "Stats.linear_fit: degenerate xs";
  let slope = ((fn *. sxy) -. (sx *. sy)) /. denom in
  let intercept = (sy -. (slope *. sx)) /. fn in
  (slope, intercept)

let scaling_exponent xs ys =
  let check name a =
    Array.iter
      (fun v ->
        if v <= 0.0 then
          invalid_arg (Printf.sprintf "Stats.scaling_exponent: %s <= 0" name))
      a
  in
  check "x" xs;
  check "y" ys;
  let slope, _ = linear_fit (Array.map log xs) (Array.map log ys) in
  slope
