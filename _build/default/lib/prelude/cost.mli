(** Work/depth cost model.

    The paper's claims are PRAM work/depth bounds; real hardware gives us
    wall-clock only. The kernels in this repository therefore additionally
    charge an abstract cost counter: [work] counts scalar floating-point
    operations (the PRAM work), and [depth] accumulates the length of the
    critical path assuming perfect parallelism inside each charged kernel
    (a [parallel] charge adds [span], a [serial] charge adds its full
    amount). Counters are atomic so parallel workers can charge them
    concurrently, and they can be scoped to measure a region. *)

type snapshot = { work : int; depth : int }

val enabled : bool ref
(** Global switch; charging is a no-op when false (the default for unit
    tests, enabled by the benchmark harness). *)

val reset : unit -> unit
(** Zero both counters. *)

val read : unit -> snapshot

val serial : int -> unit
(** [serial w] charges [w] units of work and [w] units of depth. *)

val parallel : work:int -> span:int -> unit
(** [parallel ~work ~span] charges [work] units of work but only [span]
    units of depth — a perfectly parallel kernel of that shape. *)

val measure : (unit -> 'a) -> 'a * snapshot
(** [measure f] runs [f] with the counters enabled and zeroed, and returns
    the result together with the cost charged by [f]. Restores the previous
    counter values and enablement afterwards, so measurements nest. *)

val pp : Format.formatter -> snapshot -> unit
