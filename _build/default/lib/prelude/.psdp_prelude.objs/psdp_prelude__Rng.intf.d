lib/prelude/rng.mli:
