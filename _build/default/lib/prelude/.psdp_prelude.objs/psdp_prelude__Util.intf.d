lib/prelude/util.mli: Format
