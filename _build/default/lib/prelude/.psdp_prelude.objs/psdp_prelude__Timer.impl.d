lib/prelude/timer.ml: Array Stats Unix
