lib/prelude/timer.mli:
