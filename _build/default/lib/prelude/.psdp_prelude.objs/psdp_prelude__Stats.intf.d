lib/prelude/stats.mli:
