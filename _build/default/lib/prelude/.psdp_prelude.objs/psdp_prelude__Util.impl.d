lib/prelude/util.ml: Array Float Format
