lib/prelude/cost.mli: Format
