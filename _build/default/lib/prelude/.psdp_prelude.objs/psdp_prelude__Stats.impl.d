lib/prelude/stats.ml: Array Float Printf Stdlib Util
