lib/prelude/cost.ml: Atomic Format
