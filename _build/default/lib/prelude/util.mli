(** Small floating-point and array helpers shared across the code base. *)

val close : ?rtol:float -> ?atol:float -> float -> float -> bool
(** [close a b] holds when [|a - b| <= atol + rtol * max |a| |b|].
    Defaults: [rtol = 1e-9], [atol = 1e-12]. *)

val clamp : lo:float -> hi:float -> float -> float
(** [clamp ~lo ~hi x] is [x] restricted to the interval [[lo, hi]]. *)

val square : float -> float
(** [square x] is [x *. x]. *)

val log2 : float -> float
(** Base-2 logarithm. *)

val ceil_div : int -> int -> int
(** [ceil_div a b] is [⌈a / b⌉] for positive [b]. *)

val ceil_pow2 : int -> int
(** Smallest power of two [>= n] (for [n >= 1]). *)

val finite : float -> bool
(** True when the float is neither NaN nor an infinity. *)

val sum_array : float array -> float
(** Sum with Kahan compensation, deterministic left-to-right order. *)

val max_array : float array -> float
(** Maximum element. Raises [Invalid_argument] on an empty array. *)

val min_array : float array -> float
(** Minimum element. Raises [Invalid_argument] on an empty array. *)

val fold_range : int -> init:'a -> f:('a -> int -> 'a) -> 'a
(** [fold_range n ~init ~f] folds [f] over [0 .. n-1]. *)

val array_init_matrixwise : int -> int -> (int -> int -> float) -> float array
(** [array_init_matrixwise rows cols f] builds the row-major array
    [a.(i*cols + j) = f i j]. *)

val pp_float_list : Format.formatter -> float list -> unit
(** Prints a compact bracketed list of floats using ["%.6g"]. *)
