(* Downlink beamforming power allocation (IPS10 §2.2) — the application
   the paper singles out as falling completely within the packing-SDP
   framework.

   A base station with `antennas` elements serves `users` single-antenna
   receivers; allocating power x_i to user i adds x_i h_i h_i' to the
   emitted spatial covariance, which the power/regulatory budget caps at
   the identity. We maximize total allocated power for i.i.d. Rayleigh
   channels and for spatially-correlated antennas, and show how crowding
   (more users than antennas) caps the total.

   Run with:  dune exec examples/beamforming_power.exe *)

open Psdp_prelude
open Psdp_core
open Psdp_instances

let solve_scenario ~label ~antennas ~users ~model =
  let rng = Rng.create 99 in
  let inst = Beamforming.instance ~rng ~antennas ~users ~model () in
  let eps = 0.1 in
  let r = Solver.solve_packing ~eps inst in
  let cert = Certificate.check_dual inst r.Solver.x in
  Printf.printf "%-28s antennas=%2d users=%2d  total power %.4f  (upper %.4f)\n"
    label antennas users r.Solver.value r.Solver.upper_bound;
  Printf.printf "%-28s per-user: " "";
  Array.iter (fun p -> Printf.printf "%.3f " p) r.Solver.x;
  Printf.printf "\n%-28s spectral load lambda_max = %.4f <= 1\n\n" ""
    cert.Certificate.lambda_max

let () =
  Printf.printf "== beamforming power allocation ==\n\n";
  solve_scenario ~label:"rayleigh, undersubscribed" ~antennas:12 ~users:4
    ~model:Beamforming.Rayleigh;
  solve_scenario ~label:"rayleigh, balanced" ~antennas:8 ~users:8
    ~model:Beamforming.Rayleigh;
  solve_scenario ~label:"rayleigh, oversubscribed" ~antennas:6 ~users:12
    ~model:Beamforming.Rayleigh;
  solve_scenario ~label:"correlated rho=0.8" ~antennas:8 ~users:8
    ~model:(Beamforming.Correlated 0.8);
  Printf.printf
    "The identity cap is a per-spatial-direction budget: a user's solo\n\
     power limit is 1/|h_i|^2 ~ 1/antennas, so total packed power grows\n\
     with the user/antenna ratio until channel overlap saturates it.\n\
     Correlation reshapes which directions bind (and so the total) by\n\
     concentrating channel energy along the array.\n"
