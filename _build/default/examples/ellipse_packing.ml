(* Figure 1 of the paper, reproduced as a runnable example.

   "A useful analogy of the decision problem is that of packing a
   (fractional) amount of ellipses into the unit ball."  A1 and A2 are
   axis-aligned (the positive-LP special case); A3 is rotated, which is
   exactly what makes the problem a semidefinite — not linear — program.

   We solve  max x1+x2+x3  s.t.  x1 A1 + x2 A2 + x3 A3 <= I  and render
   the packed ellipse { M^(1/2) u : |u| <= 1 } inside the unit disc in
   ASCII, where M = sum_i x_i A_i <= I.

   Run with:  dune exec examples/ellipse_packing.exe *)

open Psdp_linalg
open Psdp_core

let rotation theta =
  Mat.of_rows
    [|
      [| cos theta; -.sin theta |];
      [| sin theta; cos theta |];
    |]

let rotated_ellipse theta a b =
  let r = rotation theta in
  Mat.mul r (Mat.mul (Mat.diag [| a; b |]) (Mat.transpose r))

let render_packed m =
  (* Unit disc boundary '.', packed ellipse interior '#'. The ellipse is
     { v : v' M^{-1} v <= 1 } for the PSD M <= I — its semi-axes are the
     sqrt eigenvalues of M... we draw { M^(1/2)u : |u| <= 1 } as the set
     of v with v' M^+ v <= 1 on the range of M. *)
  let pinv = Matfun.inv_psd m in
  let rows = 21 and cols = 41 in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      let y = 1.0 -. (2.0 *. float_of_int r /. float_of_int (rows - 1)) in
      let x = -1.0 +. (2.0 *. float_of_int c /. float_of_int (cols - 1)) in
      let v = [| x; y |] in
      let in_disc = (x *. x) +. (y *. y) <= 1.0 in
      let q = Vec.dot v (Mat.gemv pinv v) in
      let ch =
        if in_disc && q <= 1.0 then '#'
        else if in_disc then '.'
        else ' '
      in
      print_char ch
    done;
    print_newline ()
  done

let () =
  Printf.printf "== Figure 1: packing ellipses into the unit ball ==\n\n";
  (* Two axis-aligned ellipses and one rotated by 30 degrees. *)
  let a1 = Mat.diag [| 1.0; 0.15 |] in
  let a2 = Mat.diag [| 0.2; 0.8 |] in
  let a3 = rotated_ellipse (Float.pi /. 6.0) 0.7 0.1 in
  let inst = Instance.of_dense [| a1; a2; a3 |] in
  let r = Solver.solve_packing ~eps:0.05 inst in
  Printf.printf "optimal fractional packing: x = (%.4f, %.4f, %.4f)\n"
    r.Solver.x.(0) r.Solver.x.(1) r.Solver.x.(2);
  Printf.printf "total amount packed: %.4f (certified <= OPT <= %.4f)\n\n"
    r.Solver.value r.Solver.upper_bound;

  let m = Mat.create 2 2 in
  Array.iteri
    (fun i a -> Mat.axpy m ~alpha:r.Solver.x.(i) a)
    (Instance.dense_mats inst);
  let { Eig.values; _ } = Eig.symmetric m in
  Printf.printf "packed matrix M = sum x_i A_i has eigenvalues (%.4f, %.4f)\n"
    values.(0) values.(1);
  Printf.printf "lambda_max(M) = %.4f <= 1: the packing fits.\n\n" values.(0);
  render_packed m;
  Printf.printf
    "\n\
     ('#' = image of the unit ball under M^(1/2); '.' = slack left in the\n\
     unit disc. A1/A2 alone would make the picture axis-aligned — the\n\
     rotated A3 is what forces the matrix, rather than scalar, penalty.)\n"
