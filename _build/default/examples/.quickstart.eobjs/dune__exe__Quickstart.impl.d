examples/quickstart.ml: Array Certificate Format Instance Known_opt Mat Printf Psdp_core Psdp_instances Psdp_linalg Psdp_prelude Rng Solver
