examples/ellipse_packing.ml: Array Eig Float Instance Mat Matfun Printf Psdp_core Psdp_linalg Solver Vec
