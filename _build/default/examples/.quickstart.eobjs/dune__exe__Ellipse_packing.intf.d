examples/ellipse_packing.mli:
