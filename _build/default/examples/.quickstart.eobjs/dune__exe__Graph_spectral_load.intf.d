examples/graph_spectral_load.mli:
