examples/service_guarantees.ml: Array Beamforming Mixed Printf Psdp_core Psdp_instances Psdp_prelude Rng
