examples/service_guarantees.mli:
