examples/lp_vs_sdp.mli:
