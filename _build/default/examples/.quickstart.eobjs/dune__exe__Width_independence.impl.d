examples/width_independence.ml: Baseline Decision Instance List Printf Psdp_core Psdp_instances Psdp_prelude Random_psd Rng Solver
