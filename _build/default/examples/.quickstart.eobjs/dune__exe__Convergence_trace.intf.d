examples/convergence_trace.mli:
