examples/graph_spectral_load.ml: Array Float Graph Graph_packing List Mat Printf Psdp_core Psdp_instances Psdp_linalg Psdp_prelude Rng Solver
