examples/quickstart.mli:
