examples/beamforming_power.mli:
