examples/width_independence.mli:
