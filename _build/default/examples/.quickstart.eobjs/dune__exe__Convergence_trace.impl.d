examples/convergence_trace.ml: Array Decision Float Instance Known_opt List Params Printf Psdp_core Psdp_instances Psdp_prelude Rng String Util
