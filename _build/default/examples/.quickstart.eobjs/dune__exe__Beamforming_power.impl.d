examples/beamforming_power.ml: Array Beamforming Certificate Printf Psdp_core Psdp_instances Psdp_prelude Rng Solver
