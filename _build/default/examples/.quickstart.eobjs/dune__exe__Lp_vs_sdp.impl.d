examples/lp_vs_sdp.ml: Array Diagonal Float Instance Lp Mat Printf Psdp_core Psdp_instances Psdp_linalg Psdp_prelude Rng Solver
