(* Spectral edge loading on graphs.

   For a graph G, the packing SDP  max 1'x  s.t.  sum_e x_e L_e <= I
   (L_e the rank-1 edge Laplacian) asks how much total load the edges can
   carry before the graph's spectral image exceeds the identity — the
   in-class cousin of the MaxCut SDP (the full MaxCut SDP needs mixed
   packing/covering constraints; see paper §5 and DESIGN.md).

   On cycles the optimum is known in closed form, so the output is
   self-checking; on G(n,p) we print the certified bracket. The second
   half runs the general-form Laplacian covering program through the
   Appendix-A normalization pipeline.

   Run with:  dune exec examples/graph_spectral_load.exe *)

open Psdp_prelude
open Psdp_linalg
open Psdp_core
open Psdp_instances

let solve_graph label graph known_opt =
  let inst = Graph_packing.edge_packing graph in
  let r = Solver.solve_packing ~eps:0.1 inst in
  (match known_opt with
  | Some opt ->
      Printf.printf "%-16s %3d edges: value %.4f  upper %.4f  (exact OPT %.4f)\n"
        label
        (Array.length graph.Graph.edges)
        r.Solver.value r.Solver.upper_bound opt
  | None ->
      Printf.printf "%-16s %3d edges: value %.4f  upper %.4f\n" label
        (Array.length graph.Graph.edges)
        r.Solver.value r.Solver.upper_bound);
  r

let () =
  Printf.printf "== spectral edge loading ==\n\n";
  List.iter
    (fun n ->
      ignore
        (solve_graph
           (Printf.sprintf "cycle C_%d" n)
           (Graph.cycle n)
           (Some (Graph_packing.edge_packing_opt_cycle n))))
    [ 5; 9; 16 ];
  let rng = Rng.create 5 in
  let gnp = Graph.gnp ~rng ~vertices:14 ~p:0.3 in
  let r = solve_graph "G(14, 0.3)" gnp None in
  (* Edges with high load are spectrally "cheap" — print the extremes. *)
  let loads = Array.mapi (fun e x -> (x, e)) r.Solver.x in
  Array.sort (fun (a, _) (b, _) -> Float.compare b a) loads;
  let u, v, _ = gnp.Graph.edges.(snd loads.(0)) in
  Printf.printf "\nmost loaded edge: (%d,%d) with x = %.4f\n" u v (fst loads.(0));

  Printf.printf "\n== Laplacian covering through the general pipeline ==\n\n";
  let g = Graph_packing.laplacian_covering (Graph.cycle 7) in
  let gr = Solver.solve_general ~eps:0.2 g in
  (match (gr.Solver.objective_value, gr.Solver.y) with
  | Some obj, Some y ->
      Printf.printf "min (L/4 + dI).Y s.t. Y_ii >= 1 on C_7: objective %.4f\n" obj;
      Printf.printf "diag(Y) = ";
      for i = 0 to 6 do
        Printf.printf "%.3f " (Mat.get y i i)
      done;
      Printf.printf "\ndual value (weak duality check): %.4f <= %.4f\n"
        gr.Solver.dual_value obj
  | _ -> Printf.printf "no materialized primal\n")
