(* Positive LPs are the axis-aligned special case of positive SDPs
   (paper §1.2): a diagonal-constraint SDP is exactly a packing LP.

   This example builds a random diagonal instance, solves it twice — with
   the matrix solver (Algorithm 3.1) and with the independent scalar
   Young-style LP solver — and shows the certified brackets agree. It
   then perturbs the instance off-diagonal to show where the LP solver
   stops being applicable but the SDP solver keeps working.

   Run with:  dune exec examples/lp_vs_sdp.exe *)

open Psdp_prelude
open Psdp_linalg
open Psdp_core
open Psdp_instances

let () =
  Printf.printf "== positive LP vs positive SDP ==\n\n";
  let rng = Rng.create 31 in
  let inst = Diagonal.random ~rng ~dim:10 ~n:6 () in
  let eps = 0.1 in

  let sdp = Solver.solve_packing ~eps inst in
  Printf.printf "SDP solver (Algorithm 3.1): value %.4f, upper %.4f\n"
    sdp.Solver.value sdp.Solver.upper_bound;

  let lp = Lp.maximize ~eps (Lp.of_diagonal_instance inst) in
  Printf.printf "LP  solver (Young [You01]): value %.4f, upper %.4f\n\n"
    lp.Lp.value lp.Lp.upper_bound;

  let lo = Float.max sdp.Solver.value lp.Lp.value in
  let hi = Float.min sdp.Solver.upper_bound lp.Lp.upper_bound in
  Printf.printf "brackets intersect on [%.4f, %.4f] -> both bound the same OPT\n\n"
    lo hi;
  assert (lo <= hi *. (1.0 +. 1e-9));

  (* Now rotate one constraint: the instance stops being diagonal. *)
  let mats = Array.map Mat.copy (Instance.dense_mats inst) in
  let theta = Float.pi /. 7.0 in
  let rot =
    Mat.init 10 10 (fun i j ->
        if i < 2 && j < 2 then
          if i = j then cos theta else if i < j then -.sin theta else sin theta
        else if i = j then 1.0
        else 0.0)
  in
  mats.(0) <- Mat.mul rot (Mat.mul mats.(0) (Mat.transpose rot));
  let rotated = Instance.of_dense mats in
  (match Lp.of_diagonal_instance rotated with
  | (_ : Lp.t) -> Printf.printf "unexpected: rotated instance still diagonal\n"
  | exception Invalid_argument _ ->
      Printf.printf "rotated instance: LP solver correctly refuses (not diagonal)\n");
  let sdp2 = Solver.solve_packing ~eps rotated in
  Printf.printf "SDP solver still works: value %.4f, upper %.4f\n" sdp2.Solver.value
    sdp2.Solver.upper_bound
