(* Mixed packing/covering: beamforming with service guarantees.

   The paper's conclusion (§5) leaves mixed packing/covering positive
   SDPs as future work and points at the [JY12] class: matrix packing
   constraints plus diagonal (= scalar) covering constraints. The
   Psdp_core.Mixed solver implements that class; this example uses it for
   a natural scenario:

     - packing:  sum_i x_i h_i h_i' <= I      (spectral power budget)
     - covering: every user group g must receive total power >= d_g

   We first ask for modest guarantees (feasible: the solver returns a
   verified allocation), then raise the demands beyond what the spectral
   budget permits (infeasible: the solver returns a priced certificate —
   a direction of the spectrum and a weighting of the groups that no
   allocation can satisfy simultaneously).

   Run with:  dune exec examples/service_guarantees.exe *)

open Psdp_prelude
open Psdp_core
open Psdp_instances

let () =
  Printf.printf "== beamforming with service guarantees ==\n\n";
  let rng = Rng.create 2025 in
  let users = 8 and antennas = 12 in
  let packing = Beamforming.instance ~rng ~antennas ~users () in
  (* Two user groups (even / odd), plus a per-VIP-user row. *)
  let group parity = Array.init users (fun i -> if i mod 2 = parity then 1.0 else 0.0) in
  let vip = Array.init users (fun i -> if i = 0 then 1.0 else 0.0) in

  let try_demands label demands =
    (* Covering rows are normalized to thresholds of 1: row / demand. *)
    let covering =
      Array.map
        (fun (row, d) -> Array.map (fun c -> c /. d) row)
        demands
    in
    let mi = Mixed.instance ~packing ~covering in
    let r = Mixed.solve ~eps:0.15 mi in
    Printf.printf "%s\n" label;
    (match r.Mixed.outcome with
    | Mixed.Feasible { x } ->
        Printf.printf "  FEASIBLE after %d iterations (verified: %b)\n"
          r.Mixed.iterations
          (Mixed.verify ~eps:0.15 mi x);
        Printf.printf "  allocation:";
        Array.iter (fun p -> Printf.printf " %.3f" p) x;
        Printf.printf "\n  group power:";
        Array.iter
          (fun (row, d) ->
            let got =
              Array.fold_left ( +. ) 0.0 (Array.mapi (fun i c -> c *. x.(i)) row)
            in
            Printf.printf " %.3f/%.3f" got d)
          demands;
        print_newline ()
    | Mixed.Infeasible c ->
        Printf.printf
          "  INFEASIBLE after %d iterations: certificate gap %.4f\n"
          r.Mixed.iterations c.Mixed.gap;
        Printf.printf
          "  (a spectral direction Y and group weighting p jointly price\n\
          \   every user's power above its guaranteed service value)\n"
    | Mixed.Unknown ->
        Printf.printf "  UNKNOWN after %d iterations (budget exhausted)\n"
          r.Mixed.iterations);
    print_newline ()
  in

  try_demands "modest guarantees (0.05 per group, 0.01 for the VIP):"
    [| (group 0, 0.05); (group 1, 0.05); (vip, 0.01) |];
  try_demands "aggressive guarantees (5.0 per group):"
    [| (group 0, 5.0); (group 1, 5.0) |]
