(* Quickstart: build a small positive SDP, solve both normalized layers,
   and verify every certificate.

   Run with:  dune exec examples/quickstart.exe *)

open Psdp_prelude
open Psdp_linalg
open Psdp_core
open Psdp_instances

let () =
  Printf.printf "== psdp quickstart ==\n\n";

  (* --- 1. A normalized packing SDP: max 1'x  s.t.  sum_i x_i A_i <= I.
     We use a family with a known optimum so the output is checkable:
     orthogonal projectors have OPT = n exactly. *)
  let rng = Rng.create 2024 in
  let inst, opt = Known_opt.orthogonal_projectors ~rng ~dim:16 ~n:4 in
  Format.printf "%a@\n@\n" Instance.pp inst;
  Printf.printf "known optimum: %.3f\n\n" opt;

  let eps = 0.1 in
  let r = Solver.solve_packing ~eps inst in
  Printf.printf "approxPSDP (eps = %.2f):\n" eps;
  Printf.printf "  certified value      : %.4f  (>= (1-eps)*OPT = %.4f)\n"
    r.Solver.value ((1.0 -. eps) *. opt);
  Printf.printf "  certified upper bound: %.4f\n" r.Solver.upper_bound;
  Printf.printf "  decision calls       : %d\n" r.Solver.decision_calls;
  Printf.printf "  total MMW iterations : %d\n\n" r.Solver.total_iterations;

  (* Every solution is re-verified against the instance — do it again here
     to show the API. *)
  let cert = Certificate.check_dual inst r.Solver.x in
  Printf.printf "re-verified: lambda_max(sum x_i A_i) = %.6f (<= 1), |x|_1 = %.4f\n\n"
    cert.Certificate.lambda_max cert.Certificate.value;

  (* --- 2. A general-form positive SDP (paper eq. 1.1):
     min C.Y s.t. A_i.Y >= b_i, everything PSD. The library normalizes it
     (Appendix A), solves the normalized pair, and maps solutions back. *)
  let m = 6 in
  let g_rng = Rng.create 7 in
  let psd ridge =
    let g = Mat.init m (m + 1) (fun _ _ -> Rng.gaussian g_rng) in
    Mat.add (Mat.mul g (Mat.transpose g)) (Mat.scale ridge (Mat.identity m))
  in
  let general =
    Instance.general ~objective:(psd 1.0)
      ~constraints:(Array.init 4 (fun _ -> (psd 0.0, 1.0 +. Rng.uniform g_rng)))
  in
  Format.printf "%a@\n@\n" Instance.pp_general general;
  let gr = Solver.solve_general ~eps:0.2 general in
  (match (gr.Solver.objective_value, gr.Solver.y) with
  | Some obj, Some y ->
      Printf.printf "general solve: C.Y = %.4f  (dual value %.4f <= C.Y)\n" obj
        gr.Solver.dual_value;
      Array.iteri
        (fun i (a, b) ->
          Printf.printf "  constraint %d: A_i.Y = %.4f >= b_i = %.4f\n" i
            (Mat.dot a y) b)
        general.Instance.constraints
  | _ -> Printf.printf "general solve returned no materialized primal\n");
  Printf.printf "\nDone.\n"
