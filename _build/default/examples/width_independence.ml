(* The headline claim, as a demo: Algorithm 3.1's iteration count does not
   grow with the width rho = max_i lambda_max(A_i), while the classical
   Arora–Kale-style MMW baseline degrades linearly in rho.

   (The full sweep with more points and the cost model is EXP3 in
   bench/main.ml; this example keeps the sizes small enough to finish in
   seconds.)

   Run with:  dune exec examples/width_independence.exe *)

open Psdp_prelude
open Psdp_core
open Psdp_instances

let () =
  Printf.printf "== width independence demo ==\n\n";
  Printf.printf "%10s %22s %22s\n" "width" "decisionPSDP iters" "AK-baseline iters";
  List.iter
    (fun width ->
      let rng = Rng.create 11 in
      let inst = Random_psd.with_width ~rng ~dim:10 ~n:6 ~width in
      (* Normalize the threshold to half the instance's optimum so both
         solvers face the same comfortably-feasible decision problem. *)
      (* Threshold slightly above the optimum: both solvers must certify
         that no unit-mass packing exists — the operating point where the
         baseline's width dependence is sharpest. *)
      let opt_estimate = (Solver.solve_packing ~eps:0.2 inst).Solver.value in
      let scaled = Instance.scale (2.0 *. opt_estimate) inst in
      let ours = Decision.solve ~eps:0.2 scaled in
      let theirs = Baseline.decide ~eps:0.2 scaled in
      Printf.printf "%10.0f %22d %22d\n" width ours.Decision.iterations
        theirs.Baseline.iterations)
    [ 1.0; 4.0; 16.0; 64.0; 256.0 ];
  Printf.printf
    "\nOur iterations stay flat; the baseline pays for the width because\n\
     its gain matrices must be normalized by rho to satisfy M <= I.\n"
