(* Watching Algorithm 3.1 converge.

   The solver exposes an `on_iter` hook with per-iteration statistics;
   this example renders the trajectory of a decision run as ASCII
   sparklines: the l1 mass of x (the dual progress meter), the number of
   updated coordinates |B|, and the soft-max trace. Useful both as an API
   demo and to build intuition for why the adaptive certificate exits so
   far ahead of the worst-case cap R.

   Run with:  dune exec examples/convergence_trace.exe *)

open Psdp_prelude
open Psdp_core
open Psdp_instances

let sparkline values =
  let glyphs = [| '.'; ':'; '-'; '='; '+'; '*'; '#'; '@' |] in
  let lo = Util.min_array values and hi = Util.max_array values in
  let range = Float.max 1e-12 (hi -. lo) in
  String.init (Array.length values) (fun i ->
      let t = (values.(i) -. lo) /. range in
      glyphs.(min 7 (int_of_float (t *. 8.0))))

let resample width xs =
  let n = Array.length xs in
  if n = 0 then [||]
  else Array.init width (fun i -> xs.(i * n / width))

let () =
  Printf.printf "== convergence trace of decisionPSDP ==\n\n";
  let rng = Rng.create 64 in
  let inst, opt = Known_opt.orthogonal_projectors ~rng ~dim:12 ~n:6 in
  let eps = 0.15 in
  let scaled = Instance.scale (opt /. 2.0) inst in
  let l1s = ref [] and updated = ref [] and traces = ref [] in
  let r =
    Decision.solve ~eps
      ~on_iter:(fun s ->
        l1s := s.Decision.l1 :: !l1s;
        updated := float_of_int s.Decision.updated :: !updated;
        traces := log s.Decision.trace_w :: !traces)
      scaled
  in
  let series name xs =
    let arr = Array.of_list (List.rev xs) in
    Printf.printf "%-14s %s  [%.3g .. %.3g]\n" name
      (sparkline (resample 64 arr))
      (Util.min_array arr) (Util.max_array arr)
  in
  Printf.printf "instance: projectors scaled so OPT = 2; eps = %.2f\n" eps;
  Printf.printf "iterations: %d (paper cap R = %d)\n\n" r.Decision.iterations
    r.Decision.params.Params.r_cap;
  series "l1 mass" !l1s;
  series "|B| updated" !updated;
  series "ln Tr W" !traces;
  (match r.Decision.outcome with
  | Decision.Dual { x; _ } ->
      Printf.printf "\nexit: verified dual certificate, value %.4f >= 1-eps\n"
        (Util.sum_array x)
  | Decision.Primal { dots; _ } ->
      Printf.printf "\nexit: primal certificate, min A_i.Y = %.4f\n"
        (Util.min_array dots));
  Printf.printf
    "\nThe l1 mass climbs geometrically ((1+alpha) per update round) while\n\
     the soft-max trace tracks it; the certificate fires as soon as the\n\
     rescaled iterate reaches value 1-eps — long before the worst-case cap.\n"
