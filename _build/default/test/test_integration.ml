(* End-to-end integration tests: full pipelines across modules —
   generate → serialize → load → solve → verify, backend agreement,
   parallel determinism of the sketched path, the factored Appendix-A
   pipeline, and cost-model accounting. *)

open Psdp_prelude
open Psdp_linalg
open Psdp_core
open Psdp_instances

let eps = 0.2

(* ------------------------------------------------------------------ *)

let test_roundtrip_solve_each_family () =
  let rng = Rng.create 71 in
  let families =
    [
      ("random", Random_psd.factored ~rng ~dim:8 ~n:5 ~rank:3 ());
      ("diagonal", Diagonal.random ~rng ~dim:8 ~n:5 ());
      ("beamforming", Beamforming.instance ~rng ~antennas:8 ~users:5 ());
      ("cycle", Graph_packing.edge_packing (Graph.cycle 7));
      ("projectors", fst (Known_opt.orthogonal_projectors ~rng ~dim:8 ~n:4));
    ]
  in
  List.iter
    (fun (name, inst) ->
      (* serialize → parse → solve → verify *)
      let reloaded = Loader.of_string (Loader.to_string inst) in
      let r = Solver.solve_packing ~eps reloaded in
      let cert = Certificate.check_dual ~tol:1e-5 reloaded r.Solver.x in
      if not cert.Certificate.feasible then
        Alcotest.failf "%s: returned infeasible x" name;
      if r.Solver.upper_bound < r.Solver.value -. 1e-9 then
        Alcotest.failf "%s: inverted bracket" name)
    families

let test_backend_agreement_end_to_end () =
  let rng = Rng.create 73 in
  let inst = Beamforming.instance ~rng ~antennas:10 ~users:6 () in
  let exact = Solver.solve_packing ~eps inst in
  let sketched =
    Solver.solve_packing ~eps
      ~backend:(Decision.Sketched { seed = 11; sketch_dim = None })
      inst
  in
  (* Both are verified (1±eps) brackets of the same optimum: they must
     intersect. *)
  let lo = Float.max exact.Solver.value sketched.Solver.value in
  let hi = Float.min exact.Solver.upper_bound sketched.Solver.upper_bound in
  if lo > hi *. (1.0 +. 1e-6) then
    Alcotest.failf "brackets disjoint: exact [%g,%g] sketched [%g,%g]"
      exact.Solver.value exact.Solver.upper_bound sketched.Solver.value
      sketched.Solver.upper_bound

let test_sketched_deterministic_under_pool () =
  (* Same seed ⇒ identical sketches; the pool only reorders independent
     chunks whose results are written to disjoint slots, so the solve is
     bitwise deterministic across pool sizes. *)
  let rng = Rng.create 79 in
  let inst = Random_psd.factored ~rng ~dim:12 ~n:6 ~rank:3 () in
  let scaled = Instance.scale 0.6 inst in
  let backend = Decision.Sketched { seed = 42; sketch_dim = Some 8 } in
  let run pool = Decision.solve ?pool ~backend ~eps scaled in
  let base = run None in
  Psdp_parallel.Pool.with_pool ~num_domains:3 (fun pool ->
      let par = run (Some pool) in
      Alcotest.(check int) "same iterations" base.Decision.iterations
        par.Decision.iterations;
      match (base.Decision.outcome, par.Decision.outcome) with
      | Decision.Dual a, Decision.Dual b ->
          Alcotest.(check bool) "same dual" true
            (Array.for_all2 Float.equal a.Decision.x b.Decision.x)
      | Decision.Primal a, Decision.Primal b ->
          Alcotest.(check bool) "same primal dots" true
            (Array.for_all2 Float.equal a.Decision.dots b.Decision.dots)
      | _ -> Alcotest.fail "outcomes differ across pool sizes")

let test_factored_general_pipeline () =
  (* normalize_factored → solve → denormalize, checked for feasibility
     and weak duality on the original program. *)
  let rng = Rng.create 83 in
  let m = 7 in
  let c =
    let g = Mat.init m (m + 1) (fun _ _ -> Rng.gaussian rng) in
    Mat.add (Mat.mul g (Mat.transpose g)) (Mat.identity m)
  in
  let constraints =
    Array.init 4 (fun _ ->
        let q = Mat.init m 2 (fun _ _ -> Rng.gaussian rng) in
        (Psdp_sparse.Factored.of_dense_factor q, 1.0 +. Rng.uniform rng))
  in
  let norm = Normalize.normalize_factored ~objective:c ~constraints in
  let packing = Solver.solve_packing ~eps norm.Normalize.instance in
  let dual = Normalize.denormalize_dual norm packing.Solver.x in
  (* Dual feasibility in the original program: Σ xᵢAᵢ ≼ C. *)
  let sum = Mat.create m m in
  Array.iteri
    (fun i (f, _) ->
      Mat.axpy sum ~alpha:dual.(i) (Psdp_sparse.Factored.to_dense f))
    constraints;
  let l = Cholesky.factor c in
  let lmax = Eig.lambda_max (Cholesky.congruence ~l sum) in
  Alcotest.(check bool) "dual feasible vs C" true (lmax <= 1.0 +. 1e-6);
  (* Value preserved through denormalization. *)
  let value = ref 0.0 in
  Array.iteri (fun i (_, b) -> value := !value +. (b *. dual.(i))) constraints;
  Alcotest.(check (float 1e-9)) "value preserved"
    (Util.sum_array packing.Solver.x)
    !value

let test_cost_accounting_through_solver () =
  let rng = Rng.create 89 in
  let inst = Random_psd.factored ~rng ~dim:8 ~n:4 ~rank:2 () in
  let (_ : Solver.packing_result), cost =
    Cost.measure (fun () -> Solver.solve_packing ~eps:0.3 inst)
  in
  Alcotest.(check bool) "work positive" true (cost.Cost.work > 0);
  Alcotest.(check bool) "depth positive" true (cost.Cost.depth > 0);
  Alcotest.(check bool) "depth <= work" true (cost.Cost.depth <= cost.Cost.work)

let test_loader_fuzz_never_crashes () =
  let rng = Rng.create 97 in
  (* Mutate a valid serialization in random ways; the parser must either
     succeed or raise Failure — never crash or loop. *)
  let inst = Diagonal.random ~rng ~dim:5 ~n:3 () in
  let base = Loader.to_string inst in
  for _ = 1 to 200 do
    let b = Bytes.of_string base in
    let mutations = 1 + Rng.int rng 5 in
    for _ = 1 to mutations do
      let pos = Rng.int rng (Bytes.length b) in
      let c = Char.chr (32 + Rng.int rng 95) in
      Bytes.set b pos c
    done;
    match Loader.of_string (Bytes.to_string b) with
    | (_ : Instance.t) -> ()
    | exception Failure _ -> ()
    | exception Invalid_argument _ -> ()
  done

let test_decide_solve_consistency () =
  (* decide at v below value must say dual; decide above upper bound must
     say primal (decision answers line up with the optimization
     bracket). *)
  let rng = Rng.create 101 in
  let inst = Beamforming.instance ~rng ~antennas:8 ~users:5 () in
  let r = Solver.solve_packing ~eps:0.1 inst in
  let below = Instance.scale (r.Solver.value /. 2.0) inst in
  (match (Decision.solve ~eps:0.1 below).Decision.outcome with
  | Decision.Dual _ -> ()
  | Decision.Primal _ -> Alcotest.fail "below-value threshold must be dual");
  let above = Instance.scale (2.5 *. r.Solver.upper_bound) inst in
  match (Decision.solve ~eps:0.1 above).Decision.outcome with
  | Decision.Primal _ -> ()
  | Decision.Dual _ -> Alcotest.fail "above-upper threshold must be primal"

let test_mixed_pipeline_from_generated () =
  (* The mixed solver on a pipeline-built instance: beamforming packing
     with coverage rows derived from the instance's own near-optimal
     allocation — feasible by construction with margin. *)
  let rng = Rng.create 103 in
  let packing = Beamforming.instance ~rng ~antennas:8 ~users:5 () in
  let r = Solver.solve_packing ~eps:0.1 packing in
  (* Demand half of what the near-optimal allocation provides per user
     pair. *)
  let covering =
    Array.init 2 (fun j ->
        Array.init 5 (fun i ->
            if i mod 2 = j then 2.0 /. Float.max 1e-9 r.Solver.x.(i) /. 5.0
            else 0.0))
  in
  let mi = Mixed.instance ~packing ~covering in
  match (Mixed.solve ~eps:0.2 mi).Mixed.outcome with
  | Mixed.Feasible { x } ->
      Alcotest.(check bool) "verified" true (Mixed.verify ~eps:0.2 mi x)
  | Mixed.Infeasible _ -> Alcotest.fail "feasible-by-construction reported infeasible"
  | Mixed.Unknown -> Alcotest.fail "budget exhausted"

let () =
  Alcotest.run "integration"
    [
      ( "pipelines",
        [
          Alcotest.test_case "roundtrip+solve all families" `Quick
            test_roundtrip_solve_each_family;
          Alcotest.test_case "backend agreement" `Quick
            test_backend_agreement_end_to_end;
          Alcotest.test_case "pool determinism" `Quick
            test_sketched_deterministic_under_pool;
          Alcotest.test_case "factored general pipeline" `Quick
            test_factored_general_pipeline;
          Alcotest.test_case "cost accounting" `Quick
            test_cost_accounting_through_solver;
          Alcotest.test_case "loader fuzz" `Quick test_loader_fuzz_never_crashes;
          Alcotest.test_case "decide/solve consistency" `Quick
            test_decide_solve_consistency;
          Alcotest.test_case "mixed pipeline" `Quick
            test_mixed_pipeline_from_generated;
        ] );
    ]
