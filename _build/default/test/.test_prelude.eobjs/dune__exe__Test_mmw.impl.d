test/test_mmw.ml: Alcotest Eig Float List Mat Mmw Psdp_linalg Psdp_mmw Psdp_prelude QCheck QCheck_alcotest Rng Vec
