test/test_expm.mli:
