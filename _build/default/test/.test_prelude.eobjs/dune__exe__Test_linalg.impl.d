test/test_linalg.ml: Alcotest Array Cholesky Eig Float Format Lanczos List Mat Matfun Printf Psdp_linalg Psdp_parallel Psdp_prelude QCheck QCheck_alcotest Qr Rng Svd Util Vec
