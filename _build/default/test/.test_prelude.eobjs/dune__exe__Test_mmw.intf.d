test/test_mmw.mli:
