test/test_sparse.ml: Alcotest Array Cholesky Csr Eig Factored Format List Mat Printf Psdp_linalg Psdp_parallel Psdp_prelude Psdp_sparse QCheck QCheck_alcotest Rng Vec Weighted_gram
