test/test_prelude.ml: Alcotest Array Cost Float Fun Gen List Psdp_prelude QCheck QCheck_alcotest Rng Stats Sys Timer Util
