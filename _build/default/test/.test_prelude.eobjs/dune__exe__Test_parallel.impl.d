test/test_parallel.ml: Alcotest Array Float Fun List Pool Psdp_parallel QCheck QCheck_alcotest
