(* Command-line interface: generate, inspect, decide and solve positive
   SDP instances stored in the text format of {!Psdp_instances.Loader}.

     psdp gen --family beamforming --dim 16 --n 8 -o bf.inst
     psdp info bf.inst
     psdp solve bf.inst --eps 0.1 --backend sketched
     psdp decide bf.inst --threshold 0.5 --eps 0.2
*)

open Cmdliner
open Psdp_prelude
open Psdp_core
open Psdp_instances

(* ------------------------------------------------------------------ *)
(* Shared arguments *)

let eps_arg =
  let doc = "Accuracy parameter in (0,1)." in
  Arg.(value & opt float 0.1 & info [ "eps"; "e" ] ~docv:"EPS" ~doc)

let verbose_arg =
  let doc = "Log solver progress to stderr (-v: info, -vv: debug)." in
  Arg.(value & flag_all & info [ "v"; "verbose" ] ~doc)

let setup_logs verbosity =
  let level =
    match List.length verbosity with
    | 0 -> Some Logs.Warning
    | 1 -> Some Logs.Info
    | _ -> Some Logs.Debug
  in
  Logs.set_level level;
  Logs.set_reporter (Logs.format_reporter ())

let seed_arg =
  let doc = "PRNG seed (all generators are deterministic in the seed)." in
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc)

let backend_arg =
  let doc =
    "Exponential primitive: $(b,exact) (dense eigendecomposition) or \
     $(b,sketched) (Theorem 4.1: Taylor polynomial + JL sketch)."
  in
  let c = Arg.enum [ ("exact", `Exact); ("sketched", `Sketched) ] in
  Arg.(value & opt c `Exact & info [ "backend" ] ~docv:"BACKEND" ~doc)

let mode_arg =
  let doc =
    "$(b,adaptive) verifies certificates every few iterations and exits \
     early; $(b,faithful) runs the paper's pseudocode to its own exits."
  in
  let c = Arg.enum [ ("adaptive", `Adaptive); ("faithful", `Faithful) ] in
  Arg.(value & opt c `Adaptive & info [ "mode" ] ~docv:"MODE" ~doc)

let file_arg =
  let doc = "Instance file (format: see lib/instances/loader.mli)." in
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc)

let to_backend = function
  | `Exact -> Decision.Exact
  | `Sketched -> Decision.Sketched { seed = 17; sketch_dim = None }

let to_mode = function
  | `Adaptive -> Decision.Adaptive { check_every = 10 }
  | `Faithful -> Decision.Faithful

(* ------------------------------------------------------------------ *)
(* gen *)

let family_arg =
  let doc =
    "Instance family: $(b,random) (factored PSD), $(b,diagonal) (≡ packing \
     LP), $(b,beamforming) (IPS10 §2.2), $(b,projectors) (known OPT = n), \
     $(b,cycle) (edge packing on C_dim), $(b,gnp) (edge packing on G(dim,p))."
  in
  let c =
    Arg.enum
      [
        ("random", `Random);
        ("diagonal", `Diagonal);
        ("beamforming", `Beamforming);
        ("projectors", `Projectors);
        ("cycle", `Cycle);
        ("gnp", `Gnp);
      ]
  in
  Arg.(value & opt c `Random & info [ "family" ] ~docv:"FAMILY" ~doc)

let dim_arg =
  Arg.(value & opt int 16 & info [ "dim"; "m" ] ~docv:"M" ~doc:"Matrix dimension.")

let n_arg =
  Arg.(value & opt int 8 & info [ "n" ] ~docv:"N" ~doc:"Number of constraints.")

let p_arg =
  Arg.(value & opt float 0.3 & info [ "p" ] ~docv:"P" ~doc:"G(n,p) edge probability.")

let out_arg =
  let doc = "Output file ('-' for stdout)." in
  Arg.(value & opt string "-" & info [ "o"; "output" ] ~docv:"OUT" ~doc)

let gen_cmd =
  let run family dim n p seed out =
    let rng = Rng.create seed in
    let inst =
      match family with
      | `Random -> Random_psd.factored ~rng ~dim ~n ()
      | `Diagonal -> Diagonal.random ~rng ~dim ~n ()
      | `Beamforming -> Beamforming.instance ~rng ~antennas:dim ~users:n ()
      | `Projectors -> fst (Known_opt.orthogonal_projectors ~rng ~dim ~n)
      | `Cycle -> Graph_packing.edge_packing (Graph.cycle dim)
      | `Gnp -> Graph_packing.edge_packing (Graph.gnp ~rng ~vertices:dim ~p)
    in
    let text = Loader.to_string inst in
    if out = "-" then print_string text
    else begin
      Loader.save out inst;
      Printf.printf "wrote %s (m=%d, n=%d, nnz=%d)\n" out (Instance.dim inst)
        (Instance.num_constraints inst) (Instance.nnz inst)
    end
  in
  let term =
    Term.(const run $ family_arg $ dim_arg $ n_arg $ p_arg $ seed_arg $ out_arg)
  in
  Cmd.v
    (Cmd.info "gen" ~doc:"Generate a positive SDP instance.")
    term

(* ------------------------------------------------------------------ *)
(* info *)

let info_cmd =
  let run file eps =
    let inst = Loader.load file in
    Format.printf "%a@.@.%a@." Instance.pp inst Analysis.pp
      (Analysis.analyze ~eps inst)
  in
  Cmd.v
    (Cmd.info "info" ~doc:"Print statistics and diagnostics of an instance file.")
    Term.(const run $ file_arg $ eps_arg)

(* ------------------------------------------------------------------ *)
(* solve *)

let solve_cmd =
  let run file eps backend mode verbosity =
    setup_logs verbosity;
    let inst = Loader.load file in
    let r =
      Solver.solve_packing ~eps ~backend:(to_backend backend)
        ~mode:(to_mode mode) inst
    in
    Printf.printf "value       : %.6f\n" r.Solver.value;
    Printf.printf "upper bound : %.6f\n" r.Solver.upper_bound;
    Printf.printf "gap         : %.4f%%\n"
      (100.0 *. ((r.Solver.upper_bound /. r.Solver.value) -. 1.0));
    Printf.printf "calls/iters : %d / %d\n" r.Solver.decision_calls
      r.Solver.total_iterations;
    let cert = Certificate.check_dual inst r.Solver.x in
    Printf.printf "verified    : lambda_max = %.6f (feasible: %b)\n"
      cert.Certificate.lambda_max cert.Certificate.feasible;
    Printf.printf "x           :";
    Array.iter (fun v -> Printf.printf " %.5g" v) r.Solver.x;
    print_newline ();
    if not cert.Certificate.feasible then exit 1
  in
  Cmd.v
    (Cmd.info "solve"
       ~doc:"Run approxPSDP (Theorem 1.1) on an instance file.")
    Term.(const run $ file_arg $ eps_arg $ backend_arg $ mode_arg $ verbose_arg)

(* ------------------------------------------------------------------ *)
(* cover *)

let cover_cmd =
  let run file eps mode verbosity =
    setup_logs verbosity;
    let inst = Loader.load file in
    let r = Solver.solve_covering ~eps ~mode:(to_mode mode) inst in
    Printf.printf "covering objective (Tr Z): %.6f\n" r.Solver.objective;
    Printf.printf "packing lower bound      : %.6f\n" r.Solver.lower_bound;
    let cert = Certificate.check_primal inst r.Solver.z in
    Printf.printf "verified min A_i.Z       : %.6f (>= 1: %b)\n"
      cert.Certificate.min_dot
      (cert.Certificate.min_dot >= 1.0 -. 1e-6);
    if cert.Certificate.min_dot < 1.0 -. 1e-6 then exit 1
  in
  Cmd.v
    (Cmd.info "cover"
       ~doc:"Solve the covering side (min Tr Y s.t. A_i.Y >= 1).")
    Term.(const run $ file_arg $ eps_arg $ mode_arg $ verbose_arg)

(* ------------------------------------------------------------------ *)
(* decide *)

let threshold_arg =
  let doc = "Threshold $(docv): decide whether OPT exceeds it." in
  Arg.(value & opt float 1.0 & info [ "threshold"; "t" ] ~docv:"V" ~doc)

let decide_cmd =
  let run file eps backend mode v =
    let inst = Loader.load file in
    let scaled = Instance.scale v inst in
    let r =
      Decision.solve ~eps ~backend:(to_backend backend) ~mode:(to_mode mode)
        scaled
    in
    (match r.Decision.outcome with
    | Decision.Dual { x; _ } ->
        let value = Util.sum_array x in
        (* x feasible for {v·Aᵢ} ⇒ v·x feasible for {Aᵢ}. *)
        Printf.printf
          "DUAL: a packing of value %.4f exists at threshold %.4g\n\
           => OPT >= %.6g\n"
          value v (v *. value)
    | Decision.Primal { dots; _ } ->
        let min_dot = Util.min_array dots in
        Printf.printf
          "PRIMAL: covering certificate with min A_i.Y = %.4f\n=> OPT <= %.6g\n"
          min_dot
          (v /. min_dot));
    Printf.printf "iterations: %d (cap R = %d)\n" r.Decision.iterations
      r.Decision.params.Params.r_cap
  in
  Cmd.v
    (Cmd.info "decide"
       ~doc:"Run one epsilon-decision call (Algorithm 3.1) at a threshold.")
    Term.(const run $ file_arg $ eps_arg $ backend_arg $ mode_arg $ threshold_arg)

(* ------------------------------------------------------------------ *)

let main =
  let doc = "width-independent parallel positive SDP solver (SPAA'12)" in
  Cmd.group
    (Cmd.info "psdp" ~version:"1.0.0" ~doc)
    [ gen_cmd; info_cmd; solve_cmd; cover_cmd; decide_cmd ]

let () = exit (Cmd.eval main)
