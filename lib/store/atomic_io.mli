(** Crash-safe file writes: write-to-temp + fsync + rename.

    Every durable artifact in the store (snapshots, persisted instances)
    goes through {!write_atomic}, so a reader never observes a partially
    written file at the final path: at any kill point the path holds
    either the previous complete content or the new complete content.
    Leftover [*.tmp.*] files from a crash are garbage, never truth;
    [Store.open_store] sweeps them.

    Fault injection goes through the {!Psdp_fault.Failpoint} registry —
    the write protocol evaluates named failpoints (argument: the
    destination path) at each stage:

    - ["store.write.before"] — temp file created, nothing written yet
    - ["store.write.data"] — data point over the payload (supports
      [Corrupt])
    - ["store.write.after_write"] — temp written and fsynced, not yet
      renamed
    - ["store.write.after_rename"] — renamed into place, directory not
      yet fsynced

    Arming one with a raising action simulates the process dying at
    exactly that point. Production runs never arm them; an unarmed
    point costs one atomic load. *)

val write_atomic : string -> string -> unit
(** [write_atomic path data] durably replaces the content of [path]:
    writes [data] to [path ^ ".tmp.<pid>"], fsyncs it, renames it over
    [path], then fsyncs the parent directory so the rename itself is
    durable. Raises [Sys_error] / [Unix.Unix_error] on I/O failure. *)

val read_file : string -> (string, string) result
(** Whole-file read; I/O errors come back as [Error msg]. *)
