(** Crash-safe file writes: write-to-temp + fsync + rename.

    Every durable artifact in the store (snapshots, persisted instances)
    goes through {!write_atomic}, so a reader never observes a partially
    written file at the final path: at any kill point the path holds
    either the previous complete content or the new complete content.
    Leftover [*.tmp.*] files from a crash are garbage, never truth;
    [Store.open_store] sweeps them.

    The kill-point hook exists for the fault-injection tests: it is
    invoked at each stage of the write protocol and may raise to simulate
    the process dying at exactly that point. Production code never sets
    it. *)

type kill_point =
  | Kill_before_write  (** temp file created, nothing written yet *)
  | Kill_after_write  (** temp written and fsynced, not yet renamed *)
  | Kill_after_rename  (** renamed into place, directory not yet fsynced *)

val set_kill_hook : (kill_point -> string -> unit) option -> unit
(** [set_kill_hook (Some f)] arranges for [f point final_path] to be
    called at every kill point of every subsequent {!write_atomic}. [f]
    raising simulates a crash mid-write. [set_kill_hook None] (the
    initial state) disables injection. Test-only; global. *)

val write_atomic : string -> string -> unit
(** [write_atomic path data] durably replaces the content of [path]:
    writes [data] to [path ^ ".tmp.<pid>"], fsyncs it, renames it over
    [path], then fsyncs the parent directory so the rename itself is
    durable. Raises [Sys_error] / [Unix.Unix_error] on I/O failure. *)

val read_file : string -> (string, string) result
(** Whole-file read; I/O errors come back as [Error msg]. *)
