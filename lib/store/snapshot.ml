type t = {
  digest : string;
  eps : float;
  backend : string;
  mode : string;
  threshold : float;
  lo : float;
  hi : float;
  value : float;
  calls : int;
  iterations : int;
  dropped : int;
  x : float array;
  rng : int64 array;
}

let magic = "PSDPSNAP"
let version = 1
let header_len = 8 + 4 + 8 (* magic + version + payload length *)

let encode t =
  let buf = Buffer.create (256 + (8 * Array.length t.x)) in
  let str s =
    Buffer.add_int32_le buf (Int32.of_int (String.length s));
    Buffer.add_string buf s
  in
  let f64 v = Buffer.add_int64_le buf (Int64.bits_of_float v) in
  let u32 v = Buffer.add_int32_le buf (Int32.of_int v) in
  str t.digest;
  f64 t.eps;
  str t.backend;
  str t.mode;
  f64 t.threshold;
  f64 t.lo;
  f64 t.hi;
  f64 t.value;
  u32 t.calls;
  u32 t.iterations;
  u32 t.dropped;
  u32 (Array.length t.x);
  Array.iter f64 t.x;
  u32 (Array.length t.rng);
  Array.iter (Buffer.add_int64_le buf) t.rng;
  let payload = Buffer.contents buf in
  let out = Buffer.create (String.length payload + header_len + 8) in
  Buffer.add_string out magic;
  Buffer.add_int32_le out (Int32.of_int version);
  Buffer.add_int64_le out (Int64.of_int (String.length payload));
  Buffer.add_string out payload;
  Buffer.add_int64_le out (Checksum.fnv1a64 payload);
  Buffer.contents out

exception Bad of string

let decode s =
  try
    let len = String.length s in
    if len < header_len + 8 then raise (Bad "truncated header");
    if String.sub s 0 8 <> magic then raise (Bad "bad magic");
    let v = Int32.to_int (String.get_int32_le s 8) in
    if v <> version then raise (Bad (Printf.sprintf "unsupported version %d" v));
    let plen = Int64.to_int (String.get_int64_le s 12) in
    if plen < 0 || header_len + plen + 8 > len then raise (Bad "truncated payload");
    if header_len + plen + 8 <> len then raise (Bad "trailing bytes");
    let payload = String.sub s header_len plen in
    if String.get_int64_le s (header_len + plen) <> Checksum.fnv1a64 payload then
      raise (Bad "checksum mismatch");
    let pos = ref 0 in
    let need n =
      if n < 0 || !pos + n > plen then raise (Bad "field overruns payload")
    in
    let u32 () =
      need 4;
      let v = Int32.to_int (String.get_int32_le payload !pos) in
      pos := !pos + 4;
      if v < 0 then raise (Bad "negative count");
      v
    in
    let i64 () =
      need 8;
      let v = String.get_int64_le payload !pos in
      pos := !pos + 8;
      v
    in
    let f64 () = Int64.float_of_bits (i64 ()) in
    let str () =
      let n = u32 () in
      need n;
      let r = String.sub payload !pos n in
      pos := !pos + n;
      r
    in
    let digest = str () in
    let eps = f64 () in
    let backend = str () in
    let mode = str () in
    let threshold = f64 () in
    let lo = f64 () in
    let hi = f64 () in
    let value = f64 () in
    let calls = u32 () in
    let iterations = u32 () in
    let dropped = u32 () in
    let x =
      let n = u32 () in
      need (8 * n);
      Array.init n (fun _ -> f64 ())
    in
    let rng =
      let n = u32 () in
      need (8 * n);
      Array.init n (fun _ -> i64 ())
    in
    if !pos <> plen then raise (Bad "trailing payload bytes");
    Ok
      {
        digest; eps; backend; mode; threshold; lo; hi; value; calls;
        iterations; dropped; x; rng;
      }
  with Bad msg -> Error ("Snapshot: " ^ msg)

let save path t = Atomic_io.write_atomic path (encode t)

let load path =
  match Atomic_io.read_file path with
  | Error msg -> Error ("Snapshot: " ^ msg)
  | Ok data -> decode data
