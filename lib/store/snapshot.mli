(** Durable solver-state snapshots.

    A snapshot captures everything [Solver.solve_packing] needs to
    continue a run after process death: the identity of the work
    (instance digest, ε, backend/mode keys), the certified bisection
    bracket [lo, hi] with the next threshold, the incumbent MW dual
    [x] and its verified value, progress counters, and a generic RNG
    slot for stochastic backends (the sketched backend derives its
    per-iteration sketches deterministically from the seed recorded in
    the backend key, so the engine stores the empty state there).

    On resume nothing in a snapshot is trusted blindly: the digest must
    match [Loader.digest] of the re-loaded instance, the codec verifies a
    checksum before decoding a single field, and the solver re-verifies
    the incumbent against the instance before adopting it — a corrupt or
    stale snapshot costs work, never soundness.

    {2 Binary format (version 1, little-endian)}

    {v
    offset 0   magic  "PSDPSNAP"                      (8 bytes)
    offset 8   u32    format version                  (currently 1)
    offset 12  u64    payload length L
    offset 20  payload                                (L bytes)
    offset 20+L u64   FNV-1a-64 checksum of payload
    v}

    Payload fields, in order: [digest] (str), [eps] (f64), [backend]
    (str), [mode] (str), [threshold] [lo] [hi] [value] (f64 each),
    [calls] [iterations] [dropped] (u32 each), [x] (u32 count + f64s),
    [rng] (u32 count + i64s). Strings are u32 length + bytes; floats are
    IEEE-754 bit patterns. Any truncation, overrun, bad magic,
    unsupported version, or checksum mismatch decodes to [Error] — never
    an exception, never a partially filled record. *)

type t = {
  digest : string;  (** [Loader.digest] of the instance being solved *)
  eps : float;
  backend : string;  (** [Job.backend_key] *)
  mode : string;  (** [Job.mode_key] *)
  threshold : float;  (** next bisection threshold [sqrt (lo·hi)] *)
  lo : float;  (** certified lower end of the bisection bracket *)
  hi : float;  (** certified upper end of the bisection bracket *)
  value : float;  (** verified value of the incumbent dual [x] *)
  calls : int;  (** decision calls completed *)
  iterations : int;  (** solver iterations summed over those calls *)
  dropped : int;  (** Lemma-2.2 trace-clamp casualties so far *)
  x : float array;  (** incumbent MW dual weights *)
  rng : int64 array;  (** RNG state slot (see above) *)
}

val version : int

val encode : t -> string
val decode : string -> (t, string) result
(** [decode (encode t)] = [Ok t] for every [t]. *)

val save : string -> t -> unit
(** Atomic persistence via {!Atomic_io.write_atomic}. *)

val load : string -> (t, string) result
(** Read + decode; I/O errors and corruption both come back as
    [Error]. *)
