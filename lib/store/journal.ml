open Psdp_prelude

type record =
  | Submitted of { job : string; spec : Json.t }
  | Lineage of { job : string; parent : string }
  | Assigned of { job : string; worker : string }
  | Checkpoint of { job : string; call : int; snapshot : string }
  | Completed of { job : string; status : string; result : Json.t option }
  | Cancelled of { job : string; reason : string }
  | Quarantined of { job : string; reason : string; attempts : int }
  | Epoch of { epoch : int }

let fields = function
  | Submitted { job; spec } ->
      [ ("kind", Json.Str "submitted"); ("job", Json.Str job); ("spec", spec) ]
  | Lineage { job; parent } ->
      [
        ("kind", Json.Str "lineage");
        ("job", Json.Str job);
        ("parent", Json.Str parent);
      ]
  | Assigned { job; worker } ->
      [
        ("kind", Json.Str "assigned");
        ("job", Json.Str job);
        ("worker", Json.Str worker);
      ]
  | Checkpoint { job; call; snapshot } ->
      [
        ("kind", Json.Str "checkpoint");
        ("job", Json.Str job);
        ("call", Json.Num (float_of_int call));
        ("snapshot", Json.Str snapshot);
      ]
  | Completed { job; status; result } ->
      [ ("kind", Json.Str "completed"); ("job", Json.Str job);
        ("status", Json.Str status) ]
      @ (match result with Some r -> [ ("result", r) ] | None -> [])
  | Cancelled { job; reason } ->
      [
        ("kind", Json.Str "cancelled");
        ("job", Json.Str job);
        ("reason", Json.Str reason);
      ]
  | Quarantined { job; reason; attempts } ->
      [
        ("kind", Json.Str "quarantined");
        ("job", Json.Str job);
        ("reason", Json.Str reason);
        ("attempts", Json.Num (float_of_int attempts));
      ]
  | Epoch { epoch } ->
      [ ("kind", Json.Str "epoch"); ("epoch", Json.Num (float_of_int epoch)) ]

let to_line ?epoch r =
  let fs = fields r in
  let fs =
    (* The fencing stamp. [Epoch] records already carry the field as
       their payload; everything else gets it appended, inside the
       crc-covered body, so a replica can prove which reign wrote each
       line. Plain readers ignore unknown fields, so stamped journals
       stay readable by every pre-HA tool. *)
    match (epoch, r) with
    | Some e, (Submitted _ | Lineage _ | Assigned _ | Checkpoint _
              | Completed _ | Cancelled _ | Quarantined _) ->
        fs @ [ ("epoch", Json.Num (float_of_int e)) ]
    | _ -> fs
  in
  let body = Json.to_string (Json.Obj fs) in
  Json.to_string (Json.Obj (fs @ [ ("crc", Json.Str (Checksum.fnv1a64_hex body)) ]))

let decode_fields j =
  let str name =
    match Option.bind (Json.mem name j) Json.str with
    | Some s -> Ok s
    | None -> Error (Printf.sprintf "journal: missing or bad %S" name)
  in
  let int name =
    match Option.bind (Json.mem name j) Json.int with
    | Some n -> Ok n
    | None -> Error (Printf.sprintf "journal: missing or bad %S" name)
  in
  let ( let* ) = Result.bind in
  let* kind = str "kind" in
  match kind with
  | "epoch" ->
      let* epoch = int "epoch" in
      Ok (Epoch { epoch })
  | _ -> (
      let* job = str "job" in
      match kind with
      | "submitted" -> (
          match Json.mem "spec" j with
          | Some spec -> Ok (Submitted { job; spec })
          | None -> Error "journal: submitted record without spec")
      | "lineage" ->
          let* parent = str "parent" in
          Ok (Lineage { job; parent })
      | "assigned" ->
          let* worker = str "worker" in
          Ok (Assigned { job; worker })
      | "checkpoint" ->
          let* snapshot = str "snapshot" in
          let* call = int "call" in
          Ok (Checkpoint { job; call; snapshot })
      | "completed" ->
          let* status = str "status" in
          Ok (Completed { job; status; result = Json.mem "result" j })
      | "cancelled" ->
          let* reason = str "reason" in
          Ok (Cancelled { job; reason })
      | "quarantined" ->
          let* reason = str "reason" in
          let* attempts = int "attempts" in
          Ok (Quarantined { job; reason; attempts })
      | other -> Error (Printf.sprintf "journal: unknown record kind %S" other))

let of_line line =
  match Json.parse line with
  | Error e -> Error ("journal: " ^ e)
  | Ok (Json.Obj fs as j) -> (
      match Json.mem "crc" j with
      | Some (Json.Str crc) ->
          let body =
            Json.to_string
              (Json.Obj (List.filter (fun (k, _) -> k <> "crc") fs))
          in
          if Checksum.fnv1a64_hex body <> crc then
            Error "journal: crc mismatch"
          else decode_fields j
      | Some _ | None -> Error "journal: missing crc")
  | Ok _ -> Error "journal: record is not an object"

let epoch_of_line line =
  match Json.parse line with
  | Ok (Json.Obj _ as j) -> Option.bind (Json.mem "epoch" j) Json.int
  | Ok _ | Error _ -> None

(* Byte-accurate replay: only newline-terminated lines count toward the
   valid prefix, so the returned length is always a safe truncation
   point — appending after it can never merge with a torn half-record. *)
let replay_prefix path =
  if not (Sys.file_exists path) then ([], None, 0)
  else
    let ic = open_in_bin path in
    let text =
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    let n = String.length text in
    let records = ref [] in
    let error = ref None in
    let prefix = ref 0 in
    let lineno = ref 0 in
    let pos = ref 0 in
    while !error = None && !pos < n do
      match String.index_from_opt text !pos '\n' with
      | None ->
          (* Trailing bytes without a newline: torn, whatever they say. *)
          error :=
            Some
              (Printf.sprintf "line %d: journal: unterminated tail (%d bytes)"
                 (!lineno + 1) (n - !pos))
      | Some nl -> (
          incr lineno;
          let line = String.trim (String.sub text !pos (nl - !pos)) in
          if line = "" then begin
            pos := nl + 1;
            prefix := !pos
          end
          else
            match of_line line with
            | Ok r ->
                records := r :: !records;
                pos := nl + 1;
                prefix := !pos
            | Error msg ->
                error := Some (Printf.sprintf "line %d: %s" !lineno msg))
    done;
    (List.rev !records, !error, !prefix)

let replay path =
  let records, error, _ = replay_prefix path in
  (records, error)
