open Psdp_prelude

type record =
  | Submitted of { job : string; spec : Json.t }
  | Lineage of { job : string; parent : string }
  | Assigned of { job : string; worker : string }
  | Checkpoint of { job : string; call : int; snapshot : string }
  | Completed of { job : string; status : string }
  | Cancelled of { job : string; reason : string }
  | Quarantined of { job : string; reason : string; attempts : int }

let fields = function
  | Submitted { job; spec } ->
      [ ("kind", Json.Str "submitted"); ("job", Json.Str job); ("spec", spec) ]
  | Lineage { job; parent } ->
      [
        ("kind", Json.Str "lineage");
        ("job", Json.Str job);
        ("parent", Json.Str parent);
      ]
  | Assigned { job; worker } ->
      [
        ("kind", Json.Str "assigned");
        ("job", Json.Str job);
        ("worker", Json.Str worker);
      ]
  | Checkpoint { job; call; snapshot } ->
      [
        ("kind", Json.Str "checkpoint");
        ("job", Json.Str job);
        ("call", Json.Num (float_of_int call));
        ("snapshot", Json.Str snapshot);
      ]
  | Completed { job; status } ->
      [
        ("kind", Json.Str "completed");
        ("job", Json.Str job);
        ("status", Json.Str status);
      ]
  | Cancelled { job; reason } ->
      [
        ("kind", Json.Str "cancelled");
        ("job", Json.Str job);
        ("reason", Json.Str reason);
      ]
  | Quarantined { job; reason; attempts } ->
      [
        ("kind", Json.Str "quarantined");
        ("job", Json.Str job);
        ("reason", Json.Str reason);
        ("attempts", Json.Num (float_of_int attempts));
      ]

let to_line r =
  let fs = fields r in
  let body = Json.to_string (Json.Obj fs) in
  Json.to_string (Json.Obj (fs @ [ ("crc", Json.Str (Checksum.fnv1a64_hex body)) ]))

let decode_fields j =
  let str name =
    match Option.bind (Json.mem name j) Json.str with
    | Some s -> Ok s
    | None -> Error (Printf.sprintf "journal: missing or bad %S" name)
  in
  let ( let* ) = Result.bind in
  let* kind = str "kind" in
  let* job = str "job" in
  match kind with
  | "submitted" -> (
      match Json.mem "spec" j with
      | Some spec -> Ok (Submitted { job; spec })
      | None -> Error "journal: submitted record without spec")
  | "lineage" ->
      let* parent = str "parent" in
      Ok (Lineage { job; parent })
  | "assigned" ->
      let* worker = str "worker" in
      Ok (Assigned { job; worker })
  | "checkpoint" ->
      let* snapshot = str "snapshot" in
      let* call =
        match Option.bind (Json.mem "call" j) Json.int with
        | Some c -> Ok c
        | None -> Error "journal: missing or bad \"call\""
      in
      Ok (Checkpoint { job; call; snapshot })
  | "completed" ->
      let* status = str "status" in
      Ok (Completed { job; status })
  | "cancelled" ->
      let* reason = str "reason" in
      Ok (Cancelled { job; reason })
  | "quarantined" ->
      let* reason = str "reason" in
      let* attempts =
        match Option.bind (Json.mem "attempts" j) Json.int with
        | Some a -> Ok a
        | None -> Error "journal: missing or bad \"attempts\""
      in
      Ok (Quarantined { job; reason; attempts })
  | other -> Error (Printf.sprintf "journal: unknown record kind %S" other)

let of_line line =
  match Json.parse line with
  | Error e -> Error ("journal: " ^ e)
  | Ok (Json.Obj fs as j) -> (
      match Json.mem "crc" j with
      | Some (Json.Str crc) ->
          let body =
            Json.to_string
              (Json.Obj (List.filter (fun (k, _) -> k <> "crc") fs))
          in
          if Checksum.fnv1a64_hex body <> crc then
            Error "journal: crc mismatch"
          else decode_fields j
      | Some _ | None -> Error "journal: missing crc")
  | Ok _ -> Error "journal: record is not an object"

let replay path =
  if not (Sys.file_exists path) then ([], None)
  else
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let records = ref [] in
        let error = ref None in
        (try
           let lineno = ref 0 in
           while !error = None do
             let line = String.trim (input_line ic) in
             incr lineno;
             if line <> "" then
               match of_line line with
               | Ok r -> records := r :: !records
               | Error msg ->
                   (* Torn tail: keep the valid prefix, stop here. *)
                   error := Some (Printf.sprintf "line %d: %s" !lineno msg)
           done
         with End_of_file -> ());
        (List.rev !records, !error))
