(** A checkpoint store: one directory owning a write-ahead job journal
    plus the snapshot and instance files it refers to.

    {2 Layout}

    {v
    STORE_DIR/
      journal.jsonl        append-only WAL (see {!Journal})
      snapshots/*.snap     solver-state snapshots (see {!Snapshot})
      instances/*.inst     inline instances saved at submission time
    v}

    Snapshot paths inside journal records are relative to [STORE_DIR],
    so a store directory can be moved or copied wholesale. Opening a
    store replays the journal (tolerating a torn tail), sweeps stale
    [*.tmp.*] files left by interrupted atomic writes, and computes the
    set of {!pending} jobs — submitted but never completed — that a
    recovery pass should re-enqueue. *)

open Psdp_prelude

type t

type pending = {
  job : string;
  spec : Json.t;  (** as journaled at submission *)
  snapshot : string option;  (** latest checkpoint, relative path *)
  interrupted : string option;
      (** cancellation/timeout reason, [None] for a hard crash *)
  assigned : string option;
      (** last worker a distributed coordinator handed the job to
          ([Assigned] record), [None] for single-process engines *)
}

type quarantined = { job : string; reason : string; attempts : int }
(** A poison job: it exhausted its retry attempts and was journaled as
    quarantined. Recovery never re-enqueues it; a fresh [Submitted]
    record for the same id (a deliberate resubmission) releases it. *)

val open_store : string -> (t, string) result
(** Create the directory tree if needed, replay the journal, sweep
    stale temp files, and open the journal for appending. A torn tail
    (a half-written final record) is truncated away before the append
    channel opens — replay certified the prefix, and appending after
    torn bytes would merge the next record into them — so a recovered
    journal always replays cleanly on the following open. *)

val dir : t -> string
val pending : t -> pending list
(** Unfinished jobs in submission order, as of {!open_store}. Jobs in
    quarantine are excluded. *)

val quarantined : t -> quarantined list
(** Quarantined jobs in first-quarantine order, as of {!open_store}. *)

val lineage : t -> (string * string) list
(** Warm-start ancestry [(job, parent_digest)] pairs in journal order,
    as of {!open_store} — every [Lineage] record replayed, including
    those of completed jobs. *)

val torn_tail : t -> string option
(** Description of the corrupt journal line replay stopped at, if any
    (the tail has already been truncated away by {!open_store}). *)

val epoch : t -> int
(** Highest fencing epoch journaled ([Journal.Epoch] records), as of
    {!open_store}; [0] for a journal no coordinator reign ever wrote. *)

val completed_results : t -> (string * Json.t) list
(** Results journaled inside [Completed] records, keyed by job id —
    the redelivery table a failed-over coordinator answers idempotent
    resubmissions from. A later re-[Submitted] for the same id drops
    the entry (the job is live again). Unordered. *)

val append : ?epoch:int -> t -> Journal.record -> unit
(** Append one record and fsync, then notify {!subscribe}rs (in order,
    with contiguous offsets). [?epoch] stamps the record with the
    writing coordinator's fencing epoch. Thread-safe. *)

val journal_size : t -> int
(** Current journal length in bytes — the offset the next append will
    write at, and the point up to which {!tail} can read. *)

val tail : t -> from:int -> string
(** Raw journal bytes [\[from, journal_size)]; [""] when [from] is at
    or past the end. What a replication stream ships to a standby so
    the replica journal stays byte-identical. *)

val subscribe : t -> (offset:int -> data:string -> unit) -> unit
(** Register a callback invoked after every fsynced append with the
    exact bytes written (record line plus newline) and their starting
    offset. Callbacks run under the store lock — keep them short and
    never re-enter the store. *)

val snapshot_rel : job:string -> string
(** Deterministic relative snapshot path for a job id (sanitized name
    plus an FNV-1a-64 suffix so distinct ids never collide). *)

val save_snapshot : t -> job:string -> Snapshot.t -> string
(** Atomically persist a snapshot; returns its relative path (suitable
    for a [Checkpoint] journal record). *)

val load_snapshot : t -> string -> (Snapshot.t, string) result
(** Load by relative path. *)

val save_instance : t -> digest:string -> text:string -> string
(** Persist an inline instance's text under [instances/<digest>.inst]
    (atomically; idempotent) and return the path, relative to the
    process — not the store — so it can be slotted into a [File] job
    spec directly. *)

val close : t -> unit
