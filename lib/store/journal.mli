(** Write-ahead job journal.

    One append-only JSONL file records the engine's durable job
    lifecycle: submission (with the full job spec), checkpoints (the
    decision-call index and the snapshot file they produced), completion
    (terminal outcomes, optionally carrying the full result for
    exactly-once redelivery), and cancellation (deliberate interruptions
    — cancel or timeout — which keep their snapshots and stay
    resumable). A job that appears in the journal with neither a
    [Completed] nor a process that finished writing anything else was
    interrupted by a crash; recovery re-enqueues it from its latest
    snapshot.

    {2 Record layout}

    Each record is one JSON object on one line:
    {v
    {"kind":"submitted","job":ID,"spec":{...},"crc":HEX}
    {"kind":"lineage","job":ID,"parent":DIGEST,"crc":HEX}
    {"kind":"assigned","job":ID,"worker":STR,"crc":HEX}
    {"kind":"checkpoint","job":ID,"call":N,"snapshot":PATH,"crc":HEX}
    {"kind":"completed","job":ID,"status":STR[,"result":{...}],"crc":HEX}
    {"kind":"cancelled","job":ID,"reason":STR,"crc":HEX}
    {"kind":"quarantined","job":ID,"reason":STR,"attempts":N,"crc":HEX}
    {"kind":"epoch","epoch":N,"crc":HEX}
    v}
    [crc] is the FNV-1a-64 hex of the record's canonical serialization
    without the [crc] field, and is always the last field. A line that
    fails to parse or whose crc does not match is treated as a torn tail:
    {!replay} keeps every record before it and stops there, so a crash
    mid-append can lose at most the record being written. The [spec]
    object is opaque to this module; the engine encodes and decodes it
    with [Job.spec_to_json] / [Job.spec_of_json].

    A replicated coordinator additionally stamps every record it writes
    with the fencing epoch of the reign that wrote it ([to_line ?epoch]
    inserts an ["epoch"] field inside the crc-covered body). Decoders
    ignore the stamp — it exists so operators and the failover tests can
    attribute each line to a primary, not to change replay semantics. *)

open Psdp_prelude

type record =
  | Submitted of { job : string; spec : Json.t }
  | Lineage of { job : string; parent : string }
      (** the job declared a warm-start parent: [parent] is the
          instance-content digest its incumbent is resolved from. Pure
          provenance — recovery derives nothing from it (the parent also
          rides inside the [Submitted] spec), but it makes warm-start
          ancestry auditable from the WAL alone. *)
  | Assigned of { job : string; worker : string }
      (** the distributed coordinator handed the job to [worker]; a
          later [Assigned] for the same job supersedes (reroute after a
          worker death). Plain engines never write this record and
          recovery treats it as progress metadata, not completion. *)
  | Checkpoint of { job : string; call : int; snapshot : string }
      (** [snapshot] is relative to the store directory *)
  | Completed of { job : string; status : string; result : Json.t option }
      (** [result], when present, is the full wire-codec result JSON —
          it lets a failed-over coordinator answer an idempotent
          resubmission of an already-finished job without re-running it
          (the "never lose a result" half of exactly-once delivery).
          Single-process engines journal [None] and their lines are
          byte-identical to the pre-HA format. *)
  | Cancelled of { job : string; reason : string }
  | Quarantined of { job : string; reason : string; attempts : int }
      (** the job exhausted its retry attempts on a poison failure; it
          is terminal (never re-run automatically) but kept listed so an
          operator can inspect or resubmit it deliberately *)
  | Epoch of { epoch : int }
      (** a coordinator reign began: written once at first-ever startup
          (epoch 1) and on every failover promotion (predecessor's epoch
          + 1). A plain restart of the same primary does {e not} bump
          the epoch — only takeover does, which is what fences a
          resurrected deposed primary out of the cluster. *)

val to_line : ?epoch:int -> record -> string
(** One JSON line (no trailing newline), crc field included. [?epoch]
    stamps the writing reign's fencing epoch into the record body
    (ignored for [Epoch] records, which carry it natively). *)

val of_line : string -> (record, string) result
(** Parse and crc-verify one line. An epoch stamp, like any unknown
    field, is crc-covered but not surfaced in the decoded record. *)

val epoch_of_line : string -> int option
(** The ["epoch"] field of a journal line, if present — the stamp
    [to_line ?epoch] wrote, or an [Epoch] record's payload. Parse-only
    (no crc check); for audits and tests. *)

val replay : string -> record list * string option
(** Read a journal file: the valid record prefix, plus a description of
    the torn/corrupt line that stopped the replay (if any). A missing
    file replays as [([], None)]. *)

val replay_prefix : string -> record list * string option * int
(** Like {!replay}, but also returns the byte length of the valid
    prefix: every counted record is newline-terminated inside the first
    [len] bytes, so truncating the file to [len] removes exactly the
    torn tail and leaves a journal that replays cleanly — the repair a
    store performs before it appends to a journal it just recovered. *)
