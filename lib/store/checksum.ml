let fnv1a64 s =
  let prime = 0x100000001B3L in
  let h = ref 0xCBF29CE484222325L in
  String.iter
    (fun c -> h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) prime)
    s;
  !h

let fnv1a64_hex s = Printf.sprintf "%016Lx" (fnv1a64 s)
