type kill_point = Kill_before_write | Kill_after_write | Kill_after_rename

let kill_hook : (kill_point -> string -> unit) option ref = ref None
let set_kill_hook h = kill_hook := h

let kill point path =
  match !kill_hook with Some f -> f point path | None -> ()

let fsync_path path =
  let fd = Unix.openfile path [ Unix.O_RDONLY ] 0 in
  Fun.protect ~finally:(fun () -> Unix.close fd) (fun () -> Unix.fsync fd)

let write_atomic path data =
  let tmp = Printf.sprintf "%s.tmp.%d" path (Unix.getpid ()) in
  let oc = open_out_bin tmp in
  let written =
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () ->
        kill Kill_before_write path;
        output_string oc data;
        flush oc;
        Unix.fsync (Unix.descr_of_out_channel oc))
  in
  ignore written;
  kill Kill_after_write path;
  Sys.rename tmp path;
  kill Kill_after_rename path;
  (* Make the rename itself durable: fsync the containing directory. *)
  fsync_path (Filename.dirname path)

let read_file path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | data -> Ok data
  | exception Sys_error msg -> Error msg
