module Failpoint = Psdp_fault.Failpoint

let fsync_path path =
  let fd = Unix.openfile path [ Unix.O_RDONLY ] 0 in
  Fun.protect ~finally:(fun () -> Unix.close fd) (fun () -> Unix.fsync fd)

let write_atomic path data =
  let tmp = Printf.sprintf "%s.tmp.%d" path (Unix.getpid ()) in
  let oc = open_out_bin tmp in
  let written =
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () ->
        Failpoint.hit ~arg:path "store.write.before";
        let data = Failpoint.with_data ~arg:path "store.write.data" data in
        output_string oc data;
        flush oc;
        Unix.fsync (Unix.descr_of_out_channel oc))
  in
  ignore written;
  Failpoint.hit ~arg:path "store.write.after_write";
  Sys.rename tmp path;
  Failpoint.hit ~arg:path "store.write.after_rename";
  (* Make the rename itself durable: fsync the containing directory. *)
  fsync_path (Filename.dirname path)

let read_file path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | data -> Ok data
  | exception Sys_error msg -> Error msg
