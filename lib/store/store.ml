open Psdp_prelude

type pending = {
  job : string;
  spec : Json.t;
  snapshot : string option;
  interrupted : string option;
  assigned : string option;
}

type quarantined = { job : string; reason : string; attempts : int }

type t = {
  dir : string;
  oc : out_channel;
  lock : Mutex.t;
  pending : pending list;
  quarantined : quarantined list;
  lineage : (string * string) list;
  torn : string option;
  epoch : int;
  completed : (string * Json.t) list;
  mutable size : int;  (* journal bytes on disk; append offset *)
  mutable subscribers : (offset:int -> data:string -> unit) list;
}

let journal_file = "journal.jsonl"

let ensure_dir path =
  try Unix.mkdir path 0o755
  with Unix.Unix_error (Unix.EEXIST, _, _) -> ()

let contains_sub ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  go 0

(* Remove leftovers of atomic writes that died between create and
   rename; they are garbage by construction. *)
let sweep_tmp dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> ()
  | names ->
      Array.iter
        (fun name ->
          if contains_sub ~sub:".tmp." name then
            try Sys.remove (Filename.concat dir name) with Sys_error _ -> ())
        names

let compute_pending records =
  let tbl : (string, pending) Hashtbl.t = Hashtbl.create 16 in
  let order = ref [] in
  let poison : (string, quarantined) Hashtbl.t = Hashtbl.create 4 in
  let poison_order = ref [] in
  let lineage = ref [] in
  let done_results : (string, Json.t) Hashtbl.t = Hashtbl.create 16 in
  let epoch = ref 0 in
  List.iter
    (fun record ->
      match record with
      | Journal.Submitted { job; spec } -> (
          (* An explicit re-submission releases a job from quarantine
             and reopens a completed one. *)
          Hashtbl.remove poison job;
          Hashtbl.remove done_results job;
          match Hashtbl.find_opt tbl job with
          | None ->
              Hashtbl.replace tbl job
                {
                  job;
                  spec;
                  snapshot = None;
                  interrupted = None;
                  assigned = None;
                };
              order := job :: !order
          | Some p ->
              (* Re-submission of a recovered job: refresh the spec but
                 keep the snapshot it already earned. *)
              Hashtbl.replace tbl job { p with spec; interrupted = None })
      | Journal.Lineage { job; parent } ->
          lineage := (job, parent) :: !lineage
      | Journal.Assigned { job; worker } -> (
          match Hashtbl.find_opt tbl job with
          | Some p -> Hashtbl.replace tbl job { p with assigned = Some worker }
          | None -> ())
      | Journal.Checkpoint { job; snapshot; _ } -> (
          match Hashtbl.find_opt tbl job with
          | Some p -> Hashtbl.replace tbl job { p with snapshot = Some snapshot }
          | None -> ())
      | Journal.Completed { job; result; _ } ->
          Hashtbl.remove tbl job;
          (match result with
          | Some r -> Hashtbl.replace done_results job r
          | None -> ())
      | Journal.Cancelled { job; reason } -> (
          match Hashtbl.find_opt tbl job with
          | Some p -> Hashtbl.replace tbl job { p with interrupted = Some reason }
          | None -> ())
      | Journal.Quarantined { job; reason; attempts } ->
          (* Terminal for recovery purposes: never re-enqueued
             automatically, but kept listed for operators. *)
          Hashtbl.remove tbl job;
          if not (Hashtbl.mem poison job) then poison_order := job :: !poison_order;
          Hashtbl.replace poison job { job; reason; attempts }
      | Journal.Epoch { epoch = e } -> if e > !epoch then epoch := e)
    records;
  let pending =
    List.rev !order |> List.filter_map (fun job -> Hashtbl.find_opt tbl job)
  in
  let quarantined =
    List.rev !poison_order
    |> List.filter_map (fun job -> Hashtbl.find_opt poison job)
  in
  let completed = Hashtbl.fold (fun j r acc -> (j, r) :: acc) done_results [] in
  (pending, quarantined, List.rev !lineage, !epoch, completed)

let open_store dir =
  try
    ensure_dir dir;
    ensure_dir (Filename.concat dir "snapshots");
    ensure_dir (Filename.concat dir "instances");
    sweep_tmp dir;
    sweep_tmp (Filename.concat dir "snapshots");
    sweep_tmp (Filename.concat dir "instances");
    let journal_path = Filename.concat dir journal_file in
    let records, torn, prefix = Journal.replay_prefix journal_path in
    (* Repair before append: a torn half-record at the tail would merge
       with the next line we write and poison the journal from there on.
       The valid prefix is exactly what replay certified, so cutting at
       its end loses nothing replay would have kept. *)
    if
      Sys.file_exists journal_path
      && (Unix.stat journal_path).Unix.st_size > prefix
    then Unix.truncate journal_path prefix;
    let oc =
      open_out_gen [ Open_append; Open_creat; Open_binary ] 0o644 journal_path
    in
    let pending, quarantined, lineage, epoch, completed =
      compute_pending records
    in
    Ok
      {
        dir;
        oc;
        lock = Mutex.create ();
        pending;
        quarantined;
        lineage;
        torn;
        epoch;
        completed;
        size = prefix;
        subscribers = [];
      }
  with
  | Sys_error msg -> Error ("store: " ^ msg)
  | Unix.Unix_error (e, fn, arg) ->
      Error (Printf.sprintf "store: %s: %s %s" fn (Unix.error_message e) arg)

let dir t = t.dir
let pending t = t.pending
let quarantined t = t.quarantined
let lineage t = t.lineage
let torn_tail t = t.torn
let epoch t = t.epoch
let completed_results t = t.completed

let append ?epoch t record =
  Psdp_fault.Failpoint.hit ~arg:(Filename.concat t.dir journal_file)
    "store.append";
  Mutex.lock t.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.lock)
    (fun () ->
      let data = Journal.to_line ?epoch record ^ "\n" in
      output_string t.oc data;
      flush t.oc;
      Unix.fsync (Unix.descr_of_out_channel t.oc);
      let offset = t.size in
      t.size <- t.size + String.length data;
      (* Notify inside the lock: subscribers see appends in order with
         contiguous offsets, which is what replication streaming needs
         to keep replica journals byte-identical. *)
      List.iter (fun f -> f ~offset ~data) t.subscribers)

let journal_size t =
  Mutex.lock t.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.lock)
    (fun () -> t.size)

let tail t ~from =
  Mutex.lock t.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.lock)
    (fun () ->
      if from >= t.size then ""
      else begin
        let ic = open_in_bin (Filename.concat t.dir journal_file) in
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () ->
            seek_in ic from;
            really_input_string ic (t.size - from))
      end)

let subscribe t f =
  Mutex.lock t.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.lock)
    (fun () -> t.subscribers <- t.subscribers @ [ f ])

let sanitize job =
  let keep c =
    match c with
    | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '.' | '_' | '-' -> c
    | _ -> '_'
  in
  let s = String.map keep job in
  if String.length s > 40 then String.sub s 0 40 else s

let snapshot_rel ~job =
  Filename.concat "snapshots"
    (Printf.sprintf "%s-%s.snap" (sanitize job) (Checksum.fnv1a64_hex job))

let save_snapshot t ~job snap =
  let rel = snapshot_rel ~job in
  Snapshot.save (Filename.concat t.dir rel) snap;
  rel

let load_snapshot t rel = Snapshot.load (Filename.concat t.dir rel)

let save_instance t ~digest ~text =
  let path = Filename.concat (Filename.concat t.dir "instances") (digest ^ ".inst") in
  if not (Sys.file_exists path) then Atomic_io.write_atomic path text;
  path

let close t =
  Mutex.lock t.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.lock)
    (fun () -> close_out_noerr t.oc)
