(** Content checksums for the durable store.

    FNV-1a is not cryptographic; it guards against torn writes and bit
    rot, not adversaries. Instance *identity* is established separately
    by [Loader.digest]. *)

val fnv1a64 : string -> int64
(** 64-bit FNV-1a over the bytes of the string. *)

val fnv1a64_hex : string -> string
(** {!fnv1a64} rendered as 16 lowercase hex digits. *)
