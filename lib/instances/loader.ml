open Psdp_sparse

let to_string inst =
  let buf = Buffer.create 4096 in
  let n = Psdp_core.Instance.num_constraints inst in
  Buffer.add_string buf "psdp-instance v1\n";
  Buffer.add_string buf (Printf.sprintf "dim %d\n" (Psdp_core.Instance.dim inst));
  Buffer.add_string buf (Printf.sprintf "constraints %d\n" n);
  Array.iteri
    (fun i f ->
      let q = Factored.factor f in
      Buffer.add_string buf
        (Printf.sprintf "factor %d %d %d %d\n" i (Csr.rows q) (Csr.cols q)
           (Csr.nnz q));
      let { Csr.row_ptr; col_idx; values; _ } = q in
      for r = 0 to Csr.rows q - 1 do
        for k = row_ptr.(r) to row_ptr.(r + 1) - 1 do
          Buffer.add_string buf
            (Printf.sprintf "%d %d %.17g\n" r col_idx.(k) values.(k))
        done
      done)
    (Psdp_core.Instance.factors inst);
  Buffer.contents buf

let of_string text =
  let lines = String.split_on_char '\n' text in
  (* Strip comments and blank lines, keeping 1-based line numbers. *)
  let numbered =
    List.filteri (fun _ _ -> true) lines
    |> List.mapi (fun i l -> (i + 1, String.trim l))
    |> List.filter (fun (_, l) -> l <> "" && l.[0] <> '#')
  in
  let fail ln msg = failwith (Printf.sprintf "Loader: line %d: %s" ln msg) in
  let parse_int ln s =
    match int_of_string_opt s with
    | Some v -> v
    | None -> fail ln (Printf.sprintf "expected integer, got %S" s)
  in
  let parse_float ln s =
    match float_of_string_opt s with
    | Some v when Float.is_finite v -> v
    | Some _ -> fail ln (Printf.sprintf "non-finite value %S" s)
    | None -> fail ln (Printf.sprintf "expected number, got %S" s)
  in
  match numbered with
  | (ln0, header) :: rest ->
      if header <> "psdp-instance v1" then fail ln0 "bad header";
      let dim, rest =
        match rest with
        | (ln, l) :: rest -> (
            match String.split_on_char ' ' l with
            | [ "dim"; v ] ->
                let dim = parse_int ln v in
                if dim < 1 || dim > 1_000_000 then
                  fail ln (Printf.sprintf "dim %d out of range [1, 1e6]" dim);
                (dim, rest)
            | _ -> fail ln "expected 'dim <m>'")
        | [] -> fail ln0 "truncated file"
      in
      let n, rest =
        match rest with
        | (ln, l) :: rest -> (
            match String.split_on_char ' ' l with
            | [ "constraints"; v ] ->
                let n = parse_int ln v in
                if n < 1 || n > 10_000_000 then
                  fail ln
                    (Printf.sprintf "constraints %d out of range [1, 1e7]" n);
                (n, rest)
            | _ -> fail ln "expected 'constraints <n>'")
        | [] -> fail ln0 "truncated file"
      in
      let rest = ref rest in
      let next () =
        match !rest with
        | [] -> fail 0 "unexpected end of file"
        | x :: tl ->
            rest := tl;
            x
      in
      let factors =
        Array.init n (fun expect ->
            let ln, l = next () in
            match String.split_on_char ' ' l with
            | [ "factor"; idx; rows; cols; nnz ] ->
                let idx = parse_int ln idx in
                if idx <> expect then
                  fail ln (Printf.sprintf "expected factor %d" expect);
                let rows = parse_int ln rows
                and cols = parse_int ln cols
                and nnz = parse_int ln nnz in
                if rows <> dim then fail ln "factor rows <> dim";
                if cols < 1 || cols > 1_000_000 then
                  fail ln (Printf.sprintf "factor cols %d out of range" cols);
                if nnz < 0 || nnz > rows * cols then
                  fail ln
                    (Printf.sprintf "factor nnz %d out of range [0, %d]" nnz
                       (rows * cols));
                let entries = ref [] in
                for _ = 1 to nnz do
                  let ln, l = next () in
                  match String.split_on_char ' ' l with
                  | [ r; c; v ] ->
                      let r = parse_int ln r and c = parse_int ln c in
                      if r < 0 || r >= rows then
                        fail ln
                          (Printf.sprintf "row %d out of bounds [0, %d)" r rows);
                      if c < 0 || c >= cols then
                        fail ln
                          (Printf.sprintf "col %d out of bounds [0, %d)" c cols);
                      entries := (r, c, parse_float ln v) :: !entries
                  | _ -> fail ln "expected '<row> <col> <value>'"
                done;
                Factored.of_csr (Csr.of_coo ~rows ~cols !entries)
            | _ -> fail ln "expected 'factor <i> <rows> <cols> <nnz>'")
      in
      if !rest <> [] then begin
        let ln, _ = List.hd !rest in
        fail ln "trailing content"
      end;
      Psdp_core.Instance.of_factors factors
  | [] -> failwith "Loader: empty input"

let save path inst =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string inst))

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let len = in_channel_length ic in
      really_input_string ic len)
  |> of_string

let of_string_result text =
  match of_string text with
  | inst -> Ok inst
  | exception Failure msg -> Error msg
  | exception Invalid_argument msg -> Error msg
  | exception e -> Error ("Loader: " ^ Printexc.to_string e)

let load_result path =
  match load path with
  | inst -> Ok inst
  | exception Failure msg -> Error msg
  | exception Invalid_argument msg -> Error msg
  | exception Sys_error msg -> Error msg
  (* Catch-all: a malformed file must surface as a clean bad-input
     error (CLI exit 2), never as an escaped backtrace. *)
  | exception e -> Error ("Loader: " ^ Printexc.to_string e)

let digest inst = Digest.to_hex (Digest.string (to_string inst))
