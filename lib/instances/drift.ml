open Psdp_prelude
open Psdp_sparse
open Psdp_core

let perturb ~rng ?(magnitude = 0.05) inst =
  if not (Float.is_finite magnitude) || magnitude < 0. then
    invalid_arg
      (Printf.sprintf "Drift.perturb: magnitude must be finite and >= 0, got %g"
         magnitude);
  let factors = Instance.factors inst in
  let drifted =
    Array.map
      (fun f ->
        let c = Float.exp (magnitude *. Rng.gaussian rng) in
        Factored.scale c f)
      factors
  in
  Instance.of_factors drifted
