(** Random factored packing instances — the synthetic workload family for
    the scaling experiments (EXP1/EXP2/EXP5).

    Each constraint is [Aᵢ = QᵢQᵢᵀ] with [Qᵢ] an [m × rank] sparse factor
    of the requested density, Gaussian values. Instances are fully
    reproducible from the RNG seed. *)

val factored :
  rng:Psdp_prelude.Rng.t ->
  dim:int ->
  n:int ->
  ?rank:int ->
  ?density:float ->
  ?scale_spread:float ->
  unit ->
  Psdp_core.Instance.t
(** [rank] defaults to [max 1 (dim/4)]; [density] (fraction of non-zeros
    per factor, default 0.5); [scale_spread] multiplies constraint [i] by
    a log-uniform factor in [[1/spread, spread]] (default 1 = none),
    giving heterogeneous traces. *)

val with_width :
  rng:Psdp_prelude.Rng.t ->
  dim:int ->
  n:int ->
  width:float ->
  Psdp_core.Instance.t
(** A width-ramped family for EXP3: constraints are random rank-1/low-rank
    matrices normalized to [λmax ≈ 1], except one "heavy" constraint
    scaled to [λmax = width]. OPT stays within a constant factor across
    the ramp while the width parameter grows as requested. *)

val conditioned :
  rng:Psdp_prelude.Rng.t ->
  dim:int ->
  n:int ->
  cond:float ->
  unit ->
  Psdp_core.Instance.t
(** Full-rank constraints with a prescribed condition number: each
    [Aᵢ = Uᵢ Λ Uᵢᵀ] where [Uᵢ] is a Haar-ish random orthonormal basis
    (QR of a Gaussian matrix) and [Λ] is log-spaced on [[1/cond, 1]] —
    the conformance harness's knob for probing eigensolver and
    exponential-kernel accuracy at [κ = cond]. *)
