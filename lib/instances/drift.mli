(** Drifted variants of an instance — the serving workload shape.

    Live traffic re-solves the {e same} instance family with slightly
    changed data (beamforming channels moving, edge weights updating).
    [perturb] models that: each constraint [Aᵢ] is rescaled by an
    independent positive factor close to 1, which keeps every constraint
    PSD and non-zero, so the drifted instance is always valid and its
    optimum stays near the parent's — exactly the situation where a
    warm start from the parent's incumbent pays off. Deterministic in
    the supplied [rng]. *)

open Psdp_prelude
open Psdp_core

val perturb : rng:Rng.t -> ?magnitude:float -> Instance.t -> Instance.t
(** [perturb ~rng ~magnitude inst] rescales each constraint by
    [exp (magnitude * g)] with [g ~ N(0,1)] drawn from [rng].
    [magnitude] defaults to [0.05] (a few percent of drift) and must be
    non-negative and finite, else [Invalid_argument]. [magnitude = 0.]
    still re-rounds through the factored representation but changes no
    values. *)
