(** Plain-text serialization of normalized instances, so the CLI can move
    workloads between [gen], [solve] and [verify] invocations.

    Format (line-oriented, '#' comments allowed):
    {v
    psdp-instance v1
    dim <m>
    constraints <n>
    factor <index> <rows> <cols> <nnz>
    <row> <col> <value>     (nnz entry lines)
    ...
    v} *)

val to_string : Psdp_core.Instance.t -> string
val of_string : string -> Psdp_core.Instance.t
(** Raises [Failure] with a line-numbered message on malformed input. *)

val save : string -> Psdp_core.Instance.t -> unit
val load : string -> Psdp_core.Instance.t

val of_string_result : string -> (Psdp_core.Instance.t, string) result
val load_result : string -> (Psdp_core.Instance.t, string) result
(** Non-raising variants: malformed content and I/O errors come back as
    [Error msg]. Batch drivers use these to distinguish "bad input" from
    solver verdicts. *)

val digest : Psdp_core.Instance.t -> string
(** Content hash (hex) of the canonical {!to_string} serialization.
    Because [to_string] emits entries in a canonical order (constraints by
    index, factor entries row-major) and [of_string] rebuilds exactly that
    form, the digest is invariant under save/load round-trips — two
    instances share a digest iff they serialize identically. The batch
    engine keys its result cache and warm-start lookups on this. *)
