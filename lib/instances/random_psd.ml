open Psdp_prelude
open Psdp_sparse

let sparse_factor rng ~rows ~cols ~density =
  let entries = ref [] in
  for i = 0 to rows - 1 do
    for j = 0 to cols - 1 do
      if Rng.uniform rng < density then
        entries := (i, j, Rng.gaussian rng) :: !entries
    done
  done;
  (* Guarantee a non-zero factor: force one entry if sampling missed. *)
  if !entries = [] then
    entries := [ (Rng.int rng rows, Rng.int rng cols, 1.0 +. Rng.uniform rng) ];
  Csr.of_coo ~rows ~cols !entries

let factored ~rng ~dim ~n ?rank ?(density = 0.5) ?(scale_spread = 1.0) () =
  if dim < 1 || n < 1 then invalid_arg "Random_psd.factored: dim, n >= 1";
  if density <= 0.0 || density > 1.0 then
    invalid_arg "Random_psd.factored: density in (0,1]";
  if scale_spread < 1.0 then
    invalid_arg "Random_psd.factored: scale_spread >= 1";
  let rank = match rank with Some r -> max 1 r | None -> max 1 (dim / 4) in
  let factors =
    Array.init n (fun _ ->
        let q = sparse_factor rng ~rows:dim ~cols:rank ~density in
        let f = Factored.of_csr q in
        let scale_ =
          if scale_spread = 1.0 then 1.0
          else
            exp (log scale_spread *. ((2.0 *. Rng.uniform rng) -. 1.0))
        in
        (* Normalize so λmax is Θ(1) before applying the spread. *)
        Factored.scale (scale_ /. Float.max 1e-12 (Factored.lambda_max f)) f)
  in
  Psdp_core.Instance.of_factors factors

let with_width ~rng ~dim ~n ~width =
  if width < 1.0 then invalid_arg "Random_psd.with_width: width >= 1";
  if n < 2 then invalid_arg "Random_psd.with_width: n >= 2";
  let unit_constraint () =
    let q = sparse_factor rng ~rows:dim ~cols:(max 1 (dim / 8)) ~density:0.6 in
    let f = Factored.of_csr q in
    Factored.scale (1.0 /. Float.max 1e-12 (Factored.lambda_max f)) f
  in
  let factors = Array.init n (fun _ -> unit_constraint ()) in
  (* One heavy constraint carries the width. Its best standalone dual
     value is 1/width, so it never dominates OPT and the optimum of the
     family stays comparable across the ramp. *)
  factors.(0) <- Factored.scale width factors.(0);
  Psdp_core.Instance.of_factors factors

let conditioned ~rng ~dim ~n ~cond () =
  if dim < 1 || n < 1 then invalid_arg "Random_psd.conditioned: dim, n >= 1";
  if cond < 1.0 then invalid_arg "Random_psd.conditioned: cond >= 1";
  let module Mat = Psdp_linalg.Mat in
  let module Qr = Psdp_linalg.Qr in
  (* Shared spectrum, log-spaced on [1/cond, 1]. *)
  let sqrt_lambda =
    Array.init dim (fun i ->
        let t = if dim = 1 then 0.0 else float_of_int i /. float_of_int (dim - 1) in
        exp (-0.5 *. t *. log cond))
  in
  let constraint_ () =
    let u = Qr.orthonormal_columns (Mat.init dim dim (fun _ _ -> Rng.gaussian rng)) in
    (* Factor U·diag(√λ): then A = (U√Λ)(U√Λ)ᵀ = U Λ Uᵀ with κ(A) = cond. *)
    let f = Mat.init dim dim (fun i j -> Mat.get u i j *. sqrt_lambda.(j)) in
    Factored.of_dense_factor f
  in
  Psdp_core.Instance.of_factors (Array.init n (fun _ -> constraint_ ()))
