(* Binary max-heap on (priority, -seq): higher priority first, FIFO within
   a priority class. Protected by one mutex; [pop] waits on a condition. *)

type 'a entry = { prio : int; seq : int; item : 'a }

type 'a t = {
  mutex : Mutex.t;
  nonempty : Condition.t;
  mutable heap : 'a entry array;  (* first [len] slots form the heap *)
  mutable len : int;
  mutable seq : int;
  mutable closed : bool;
}

let create () =
  {
    mutex = Mutex.create ();
    nonempty = Condition.create ();
    heap = [||];
    len = 0;
    seq = 0;
    closed = false;
  }

let before a b = a.prio > b.prio || (a.prio = b.prio && a.seq < b.seq)

let swap h i j =
  let tmp = h.(i) in
  h.(i) <- h.(j);
  h.(j) <- tmp

let rec sift_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if before h.(i) h.(parent) then begin
      swap h i parent;
      sift_up h parent
    end
  end

let rec sift_down h len i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let best = ref i in
  if l < len && before h.(l) h.(!best) then best := l;
  if r < len && before h.(r) h.(!best) then best := r;
  if !best <> i then begin
    swap h i !best;
    sift_down h len !best
  end

let push t ~priority item =
  Mutex.lock t.mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.mutex)
    (fun () ->
      if t.closed then invalid_arg "Scheduler.push: queue is closed";
      let e = { prio = priority; seq = t.seq; item } in
      t.seq <- t.seq + 1;
      if t.len = Array.length t.heap then begin
        let cap = max 16 (2 * t.len) in
        let bigger = Array.make cap e in
        Array.blit t.heap 0 bigger 0 t.len;
        t.heap <- bigger
      end;
      t.heap.(t.len) <- e;
      t.len <- t.len + 1;
      sift_up t.heap (t.len - 1);
      Condition.signal t.nonempty)

let pop t =
  Mutex.lock t.mutex;
  let rec wait () =
    if t.len > 0 then begin
      let root = t.heap.(0) in
      t.len <- t.len - 1;
      if t.len > 0 then begin
        t.heap.(0) <- t.heap.(t.len);
        sift_down t.heap t.len 0
      end;
      Some root.item
    end
    else if t.closed then None
    else begin
      Condition.wait t.nonempty t.mutex;
      wait ()
    end
  in
  let r = wait () in
  Mutex.unlock t.mutex;
  r

let close t =
  Mutex.lock t.mutex;
  t.closed <- true;
  Condition.broadcast t.nonempty;
  Mutex.unlock t.mutex

let length t =
  Mutex.lock t.mutex;
  let n = t.len in
  Mutex.unlock t.mutex;
  n
