open Psdp_prelude
open Psdp_core

type op = Solve | Decide of { threshold : float }
type source = File of string | Inline of Instance.t

module Trace_context = Psdp_obs.Trace_context

type spec = {
  id : string;
  op : op;
  source : source;
  eps : float;
  backend : Decision.backend;
  mode : Decision.mode;
  priority : int;
  timeout : float option;
  parent : string option;
  trace : Trace_context.t option;
}

let default_backend = Decision.Exact
let default_mode = Decision.Adaptive { check_every = 10 }

let make_spec ?(id = "") ?(eps = 0.1) ?(backend = default_backend)
    ?(mode = default_mode) ?(priority = 0) ?timeout ?parent ?trace op source =
  { id; op; source; eps; backend; mode; priority; timeout; parent; trace }

let solve_spec ?id ?eps ?backend ?mode ?priority ?timeout ?parent ?trace
    source =
  make_spec ?id ?eps ?backend ?mode ?priority ?timeout ?parent ?trace Solve
    source

let decide_spec ?id ?eps ?backend ?mode ?priority ?timeout ?trace ~threshold
    source =
  make_spec ?id ?eps ?backend ?mode ?priority ?timeout ?trace
    (Decide { threshold }) source

type cache_status = Hit | Warm | Parent | Miss

type outcome =
  | Solved of {
      value : float;
      upper_bound : float;
      decision_calls : int;
      iterations : int;
      cache : cache_status;
      certified : bool;
    }
  | Decided of { accepted : bool; bound : float; iterations : int }
  | Failed of string
  | Cancelled
  | Timed_out

type result = { id : string; outcome : outcome; elapsed : float }

let backend_key = function
  | Decision.Exact -> "exact"
  | Decision.Sketched { seed; sketch_dim } ->
      Printf.sprintf "sketched:%d:%s" seed
        (match sketch_dim with Some d -> string_of_int d | None -> "auto")

let mode_key = function
  | Decision.Faithful -> "faithful"
  | Decision.Adaptive { check_every } ->
      Printf.sprintf "adaptive:%d" check_every

let cache_status_string = function
  | Hit -> "hit"
  | Warm -> "warm"
  | Parent -> "parent"
  | Miss -> "miss"

(* ------------------------------------------------------------------ *)
(* Decoding *)

let spec_of_json j =
  let ( let* ) = Result.bind in
  let opt name extract ~default =
    match Json.mem name j with
    | None -> Ok default
    | Some v -> (
        match extract v with
        | Some x -> Ok x
        | None -> Error (Printf.sprintf "bad %S field" name))
  in
  let* id = opt "id" Json.str ~default:"" in
  let* op_name = opt "op" Json.str ~default:"solve" in
  let* eps = opt "eps" Json.num ~default:0.1 in
  let* priority = opt "priority" Json.int ~default:0 in
  let* timeout =
    opt "timeout" (fun v -> Option.map Option.some (Json.num v)) ~default:None
  in
  let* parent =
    opt "parent" (fun v -> Option.map Option.some (Json.str v)) ~default:None
  in
  let* file =
    match Option.bind (Json.mem "file" j) Json.str with
    | Some f -> Ok f
    | None -> Error "missing \"file\" field"
  in
  let* op =
    match op_name with
    | "solve" -> Ok Solve
    | "decide" -> (
        match Option.bind (Json.mem "threshold" j) Json.num with
        | Some t when t > 0.0 -> Ok (Decide { threshold = t })
        | Some _ -> Error "\"threshold\" must be positive"
        | None -> Error "op \"decide\" requires a numeric \"threshold\"")
    | other -> Error (Printf.sprintf "unknown op %S" other)
  in
  let* backend =
    let* name = opt "backend" Json.str ~default:"exact" in
    let* seed = opt "seed" Json.int ~default:17 in
    let* sketch_dim =
      opt "sketch_dim"
        (fun v -> Option.map Option.some (Json.int v))
        ~default:None
    in
    match name with
    | "exact" -> Ok Decision.Exact
    | "sketched" -> Ok (Decision.Sketched { seed; sketch_dim })
    | other -> Error (Printf.sprintf "unknown backend %S" other)
  in
  let* mode =
    let* name = opt "mode" Json.str ~default:"adaptive" in
    let* check_every = opt "check_every" Json.int ~default:10 in
    match name with
    | "adaptive" -> Ok (Decision.Adaptive { check_every })
    | "faithful" -> Ok Decision.Faithful
    | other -> Error (Printf.sprintf "unknown mode %S" other)
  in
  (* The trace context is deliberately outside the strict codec: a
     corrupt, truncated or foreign context string must degrade to "no
     context" (the receiver mints a fresh root) — a mangled trace id
     must never fail a frame or a manifest line. *)
  let trace =
    match Option.bind (Json.mem "trace" j) Json.str with
    | Some s -> Trace_context.of_string s
    | None -> None
  in
  if eps <= 0.0 || eps >= 1.0 then Error "\"eps\" must lie in (0,1)"
  else
    Ok
      {
        id;
        op;
        source = File file;
        eps;
        backend;
        mode;
        priority;
        timeout;
        parent;
        trace;
      }

(* ------------------------------------------------------------------ *)
(* Encoding *)

let spec_to_json spec =
  match spec.source with
  | Inline _ -> Error "inline sources have no JSON form"
  | File path ->
      let op_fields =
        match spec.op with
        | Solve -> [ ("op", Json.Str "solve") ]
        | Decide { threshold } ->
            [ ("op", Json.Str "decide"); ("threshold", Json.Num threshold) ]
      in
      let backend_fields =
        match spec.backend with
        | Decision.Exact -> [ ("backend", Json.Str "exact") ]
        | Decision.Sketched { seed; sketch_dim } ->
            ("backend", Json.Str "sketched")
            :: ("seed", Json.Num (float_of_int seed))
            ::
            (match sketch_dim with
            | Some d -> [ ("sketch_dim", Json.Num (float_of_int d)) ]
            | None -> [])
      in
      let mode_fields =
        match spec.mode with
        | Decision.Faithful -> [ ("mode", Json.Str "faithful") ]
        | Decision.Adaptive { check_every } ->
            [
              ("mode", Json.Str "adaptive");
              ("check_every", Json.Num (float_of_int check_every));
            ]
      in
      let timeout_fields =
        match spec.timeout with
        | Some s -> [ ("timeout", Json.Num s) ]
        | None -> []
      in
      let parent_fields =
        match spec.parent with
        | Some p -> [ ("parent", Json.Str p) ]
        | None -> []
      in
      let trace_fields =
        match spec.trace with
        | Some c -> [ ("trace", Json.Str (Trace_context.to_string c)) ]
        | None -> []
      in
      Ok
        (Json.Obj
           (("id", Json.Str spec.id) :: op_fields
           @ [ ("file", Json.Str path); ("eps", Json.Num spec.eps) ]
           @ backend_fields @ mode_fields
           @ [ ("priority", Json.Num (float_of_int spec.priority)) ]
           @ timeout_fields @ parent_fields @ trace_fields))

let result_to_json r =
  let status, fields =
    match r.outcome with
    | Solved s ->
        ( "ok",
          [
            ("value", Json.Num s.value);
            ("upper", Json.Num s.upper_bound);
            ("calls", Json.Num (float_of_int s.decision_calls));
            ("iters", Json.Num (float_of_int s.iterations));
            ("cache", Json.Str (cache_status_string s.cache));
            ("certified", Json.Bool s.certified);
          ] )
    | Decided d ->
        ( (if d.accepted then "ok" else "rejected"),
          [
            ("accepted", Json.Bool d.accepted);
            ("bound", Json.Num d.bound);
            ("iters", Json.Num (float_of_int d.iterations));
          ] )
    | Failed msg -> ("failed", [ ("error", Json.Str msg) ])
    | Cancelled -> ("cancelled", [])
    | Timed_out -> ("timeout", [])
  in
  Json.Obj
    (("id", Json.Str r.id) :: ("status", Json.Str status)
    :: fields
    @ [ ("elapsed", Json.Num r.elapsed) ])

let result_of_json j =
  let ( let* ) = Result.bind in
  let str name =
    match Option.bind (Json.mem name j) Json.str with
    | Some s -> Ok s
    | None -> Error (Printf.sprintf "result: missing or bad %S" name)
  in
  (* [result_to_json] prints non-finite floats as [null] (JSON has no
     spelling for them); accept that and substitute a stated default so
     the codec round-trips every result the engine can produce. *)
  let num ?(default = 0.0) name =
    match Json.mem name j with
    | None -> Error (Printf.sprintf "result: missing %S" name)
    | Some Json.Null -> Ok default
    | Some v -> (
        match Json.num v with
        | Some x -> Ok x
        | None -> Error (Printf.sprintf "result: bad %S" name))
  in
  let int name = Result.map int_of_float (num name) in
  let bool name =
    match Option.bind (Json.mem name j) Json.bool with
    | Some b -> Ok b
    | None -> Error (Printf.sprintf "result: missing or bad %S" name)
  in
  let* id = str "id" in
  let* status = str "status" in
  let* elapsed = num "elapsed" in
  let* outcome =
    match status with
    | "cancelled" -> Ok Cancelled
    | "timeout" -> Ok Timed_out
    | "failed" ->
        let* msg = str "error" in
        Ok (Failed msg)
    | "ok" | "rejected" -> (
        match Json.mem "accepted" j with
        | Some _ ->
            let* accepted = bool "accepted" in
            let* bound = num ~default:Float.infinity "bound" in
            let* iterations = int "iters" in
            Ok (Decided { accepted; bound; iterations })
        | None ->
            let* value = num "value" in
            let* upper_bound = num "upper" in
            let* decision_calls = int "calls" in
            let* iterations = int "iters" in
            let* certified = bool "certified" in
            let* cache =
              let* c = str "cache" in
              match c with
              | "hit" -> Ok Hit
              | "warm" -> Ok Warm
              | "parent" -> Ok Parent
              | "miss" -> Ok Miss
              | other -> Error (Printf.sprintf "result: bad cache %S" other)
            in
            Ok
              (Solved
                 {
                   value;
                   upper_bound;
                   decision_calls;
                   iterations;
                   cache;
                   certified;
                 }))
    | other -> Error (Printf.sprintf "result: unknown status %S" other)
  in
  Ok { id; outcome; elapsed }

(* ------------------------------------------------------------------ *)
(* Manifests *)

let resolve ?dir spec =
  match (dir, spec.source) with
  | Some d, File path when Filename.is_relative path ->
      { spec with source = File (Filename.concat d path) }
  | _ -> spec

let parse_manifest ?dir text =
  let lines = String.split_on_char '\n' text in
  let rec go lineno acc = function
    | [] -> Ok (List.rev acc)
    | line :: rest ->
        let trimmed = String.trim line in
        if trimmed = "" || trimmed.[0] = '#' then go (lineno + 1) acc rest
        else
          let parsed =
            match Json.parse trimmed with
            | Error msg -> Error msg
            | Ok j -> spec_of_json j
          in
          (match parsed with
          | Error msg ->
              Error (Printf.sprintf "manifest line %d: %s" lineno msg)
          | Ok spec ->
              let spec =
                if spec.id = "" then
                  { spec with id = Printf.sprintf "job-%d" lineno }
                else spec
              in
              go (lineno + 1) (resolve ?dir spec :: acc) rest)
  in
  go 1 [] lines
