open Psdp_prelude

type target = Null | Memory of Json.t list ref | Channel of out_channel

type sink = {
  mutex : Mutex.t;
  t0 : float;
  mutable last : float;  (* latest stamp handed out; enforces monotonicity *)
  target : target;
}

let make target =
  { mutex = Mutex.create (); t0 = Timer.now (); last = 0.0; target }

let null = make Null
let memory () = make (Memory (ref []))
let channel oc = make (Channel oc)

let stamp sink =
  let t = Float.max sink.last (Timer.now () -. sink.t0) in
  sink.last <- t;
  t

let emit sink ?job ~kind fields =
  match sink.target with
  | Null -> ()
  | target ->
      Mutex.lock sink.mutex;
      Fun.protect
        ~finally:(fun () -> Mutex.unlock sink.mutex)
        (fun () ->
          let t = stamp sink in
          let header =
            ("t", Json.Num t) :: ("kind", Json.Str kind)
            ::
            (match job with Some j -> [ ("job", Json.Str j) ] | None -> [])
          in
          let ev = Json.Obj (header @ fields) in
          match target with
          | Null -> ()
          | Memory buf -> buf := ev :: !buf
          | Channel oc ->
              output_string oc (Json.to_string ev);
              output_char oc '\n';
              flush oc)

let events sink =
  match sink.target with
  | Memory buf ->
      Mutex.lock sink.mutex;
      let evs = !buf in
      Mutex.unlock sink.mutex;
      List.rev evs
  | Null | Channel _ -> []

let elapsed sink =
  Mutex.lock sink.mutex;
  let t = stamp sink in
  Mutex.unlock sink.mutex;
  t
