open Psdp_prelude

type target = Null | Memory of Json.t list ref | Channel of out_channel

type sink = {
  mutex : Mutex.t;
  t0 : float;
  mutable last : float;  (* latest stamp handed out; enforces monotonicity *)
  target : target;
  flush_every : int;
  mutable unflushed : int;  (* events written since the last flush *)
  mutable ident : (string * int) option;  (* process role + pid tag *)
}

let make ?(flush_every = 1) target =
  if flush_every < 1 then invalid_arg "Trace: flush_every must be >= 1";
  {
    mutex = Mutex.create ();
    t0 = Timer.now ();
    last = 0.0;
    target;
    flush_every;
    unflushed = 0;
    ident = None;
  }

let null = make Null
let memory () = make (Memory (ref []))
let channel ?flush_every oc = make ?flush_every (Channel oc)
let enabled sink =
  match sink.target with Null -> false | Memory _ | Channel _ -> true

(* Identity tagging is what lets Trace_assemble tell which process a
   span came from once several streams are merged: set once per
   process, before the first event, with the command's role. *)
let set_role sink role =
  sink.ident <- Some (role, Unix.getpid ())

let ident_fields sink =
  match sink.ident with
  | None -> []
  | Some (role, pid) ->
      [ ("role", Json.Str role); ("pid", Json.Num (float_of_int pid)) ]

let stamp sink =
  let t = Float.max sink.last (Timer.now () -. sink.t0) in
  sink.last <- t;
  t

(* The timestamp is the one field that must be taken under the sink mutex
   (the monotonic clamp reads and writes [last], and the stamp order must
   match the write order so readers see non-decreasing [t] line by line).
   Everything else about the event is rendered before taking the lock, so
   concurrent runner domains serialize only on stamp + write, never on
   JSON formatting. *)
let emit sink ?job ~kind fields =
  match sink.target with
  | Null -> ()
  | Memory buf ->
      let header =
        ("kind", Json.Str kind)
        :: ((match job with Some j -> [ ("job", Json.Str j) ] | None -> [])
           @ ident_fields sink)
      in
      Mutex.lock sink.mutex;
      Fun.protect
        ~finally:(fun () -> Mutex.unlock sink.mutex)
        (fun () ->
          let t = stamp sink in
          buf := Json.Obj (("t", Json.Num t) :: (header @ fields)) :: !buf)
  | Channel oc ->
      (* Rendered as {"t":<stamp>,<tail>}: the tail is the event minus its
         leading "t" field, formatted outside the lock. *)
      let header =
        ("kind", Json.Str kind)
        :: ((match job with Some j -> [ ("job", Json.Str j) ] | None -> [])
           @ ident_fields sink)
      in
      let tail =
        match Json.to_string (Json.Obj (header @ fields)) with
        | "{}" -> "}"
        | s -> "," ^ String.sub s 1 (String.length s - 1)
      in
      Mutex.lock sink.mutex;
      Fun.protect
        ~finally:(fun () -> Mutex.unlock sink.mutex)
        (fun () ->
          let t = stamp sink in
          output_string oc "{\"t\":";
          output_string oc (Json.to_string (Json.Num t));
          output_string oc tail;
          output_char oc '\n';
          sink.unflushed <- sink.unflushed + 1;
          if sink.unflushed >= sink.flush_every then begin
            flush oc;
            sink.unflushed <- 0
          end)

let flush_sink sink =
  match sink.target with
  | Null | Memory _ -> ()
  | Channel oc ->
      Mutex.lock sink.mutex;
      flush oc;
      sink.unflushed <- 0;
      Mutex.unlock sink.mutex

let events sink =
  match sink.target with
  | Memory buf ->
      Mutex.lock sink.mutex;
      let evs = !buf in
      Mutex.unlock sink.mutex;
      List.rev evs
  | Null | Channel _ -> []

let elapsed sink =
  Mutex.lock sink.mutex;
  let t = stamp sink in
  Mutex.unlock sink.mutex;
  t

(* A span event: a named, durationed segment identified by a trace
   context (the context's span id IS the span; its parent id links it
   into the cross-process tree). The event's own stamp marks the span's
   end on this process's clock — Trace_assemble derives the local start
   as [t - dur] and never compares stamps across processes. *)
let span sink ?job ~ctx ~name ~dur fields =
  emit sink ?job ~kind:"span"
    (("name", Json.Str name)
    :: ("ctx", Json.Str (Psdp_obs.Trace_context.to_string ctx))
    :: ("dur", Json.Num (Float.max 0.0 dur))
    :: fields)
