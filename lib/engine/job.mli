(** Job specifications and results — the engine's unit of work.

    A job names an instance (a {!Psdp_instances.Loader} file or an
    in-memory instance), an operation ([solve] = full approxPSDP,
    [decide] = one ε-decision call at a threshold), an accuracy target,
    a backend/mode pair, and scheduling metadata (priority, timeout).

    The JSON codecs here define the engine's three wire surfaces:
    manifest files for [psdp batch], request lines for [psdp serve], and
    result lines for both. A manifest is line-delimited JSON with blank
    lines and [#] comments allowed:
    {v
    {"id": "bf-fine", "op": "solve", "file": "bf.inst", "eps": 0.05}
    {"op": "decide", "file": "cyc.inst", "threshold": 2.5, "eps": 0.2}
    {"op": "solve", "file": "bf.inst", "eps": 0.05, "backend": "sketched",
     "priority": 10, "timeout": 30.0}
    v}
    Unknown fields are ignored (forward compatibility); a missing [id]
    is filled in from the line number. *)

open Psdp_core

type op = Solve | Decide of { threshold : float }

type source =
  | File of string  (** loaded (and digested) by the runner at start time *)
  | Inline of Instance.t

type spec = {
  id : string;  (** ["" ] lets the engine assign ["job-<seq>"] *)
  op : op;
  source : source;
  eps : float;
  backend : Decision.backend;
  mode : Decision.mode;
  priority : int;  (** higher runs first; default 0 *)
  timeout : float option;  (** wall-clock seconds; checked between solver
                               iterations (best effort, never mid-kernel) *)
  parent : string option;
      (** warm-start lineage: instance-content digest of a previously
          solved ancestor. When the job's own digest has no cached
          incumbent, the runner looks the parent digest up and adopts
          its solution vector as a warm start — the vector is
          re-verified against {e this} instance before being trusted,
          and the parent's upper bound is never reused (it belongs to a
          different instance), so lineage can only speed things up,
          never corrupt the certificate. *)
  trace : Psdp_obs.Trace_context.t option;
      (** distributed trace context: the span the submitter owns, under
          which the executing engine parents its own spans. Travels as
          an optional ["trace"] string field in the spec's JSON form,
          parsed leniently — an absent or corrupt context decodes to
          [None] (the receiver mints a fresh root), never to an
          error. *)
}

val solve_spec :
  ?id:string -> ?eps:float -> ?backend:Decision.backend ->
  ?mode:Decision.mode -> ?priority:int -> ?timeout:float ->
  ?parent:string -> ?trace:Psdp_obs.Trace_context.t -> source -> spec
(** Defaults: [eps = 0.1], [backend = Exact],
    [mode = Adaptive {check_every = 10}], [priority = 0], no timeout,
    no parent, no trace context. *)

val decide_spec :
  ?id:string -> ?eps:float -> ?backend:Decision.backend ->
  ?mode:Decision.mode -> ?priority:int -> ?timeout:float ->
  ?trace:Psdp_obs.Trace_context.t -> threshold:float -> source -> spec

type cache_status =
  | Hit  (** exact (digest, ε, backend, mode) cache entry returned *)
  | Warm  (** warm-started from this instance's own cached incumbent *)
  | Parent  (** warm-started from the declared parent digest's incumbent *)
  | Miss

type outcome =
  | Solved of {
      value : float;
      upper_bound : float;
      decision_calls : int;  (** 0 on a cache hit: none were made *)
      iterations : int;
      cache : cache_status;
      certified : bool;  (** final dual re-verified by the engine *)
    }
  | Decided of {
      accepted : bool;
          (** [true]: dual found, OPT ≥ [bound]. [false]: covering
              certificate, OPT ≤ [bound] (threshold-rejected). *)
      bound : float;
      iterations : int;
    }
  | Failed of string  (** bad input, solver precondition, unexpected exn *)
  | Cancelled
  | Timed_out

type result = { id : string; outcome : outcome; elapsed : float }

(** {1 Canonical key strings}

    Used as cache-key components and in the JSON codecs. They encode
    everything that affects the numerical result: the sketched backend's
    seed and dimension, the adaptive mode's check period. *)

val backend_key : Decision.backend -> string
val mode_key : Decision.mode -> string

val cache_status_string : cache_status -> string
(** ["hit"] / ["warm"] / ["parent"] / ["miss"] — the [cache] field of
    the result JSON and the trace [cache] event's [status]. *)

(** {1 JSON codecs} *)

val spec_of_json : Psdp_prelude.Json.t -> (spec, string) Stdlib.result
(** Fields: [op] ("solve" default, or "decide" with required numeric
    [threshold]), [file] (required — inline sources have no JSON form),
    [id], [eps], [backend] ("exact"/"sketched"), [seed] and [sketch_dim]
    (sketched backend), [mode] ("adaptive"/"faithful"), [check_every],
    [priority], [timeout], [parent] (warm-start ancestor digest). *)

val spec_to_json : spec -> (Psdp_prelude.Json.t, string) Stdlib.result
(** Inverse of {!spec_of_json} for [File] specs — the form the
    checkpoint store's journal records. [spec_of_json (spec_to_json s)]
    rebuilds [s] exactly. [Inline] sources have no JSON form and return
    [Error]; the engine saves them to a file first. *)

val result_to_json : result -> Psdp_prelude.Json.t
(** One flat object: [id], [status]
    ("ok"/"rejected"/"failed"/"cancelled"/"timeout"), [elapsed], and the
    outcome's fields ([value], [upper], [calls], [iters], [cache],
    [certified] for solves; [accepted], [bound], [iters] for decisions;
    [error] for failures). *)

val result_of_json : Psdp_prelude.Json.t -> (result, string) Stdlib.result
(** Inverse of {!result_to_json} — the distributed layer ships results
    between worker and coordinator in exactly the reported form.
    [result_of_json (result_to_json r)] rebuilds [r] (up to non-finite
    floats, which JSON cannot carry: {!result_to_json} emits them as
    [null], which decodes back as [infinity] for a decision's [bound]
    and [0] elsewhere). *)

val parse_manifest :
  ?dir:string -> string -> (spec list, string) Stdlib.result
(** Parse a whole manifest text. Relative [file] paths are resolved
    against [dir] when given (the CLI passes the manifest's directory).
    The error names the offending line. *)
