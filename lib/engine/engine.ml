open Psdp_prelude
open Psdp_parallel
module Loader = Psdp_instances.Loader

let log_src = Logs.Src.create "psdp.engine" ~doc:"batch solve engine"

module Log = (val Logs.src_log log_src : Logs.LOG)

module Store = Psdp_store.Store
module Journal = Psdp_store.Journal
module Snapshot = Psdp_store.Snapshot
module Metrics = Psdp_obs.Metrics
module Profiler = Psdp_obs.Profiler
module Trace_context = Psdp_obs.Trace_context
module Failpoint = Psdp_fault.Failpoint
module Fault = Psdp_fault.Fault
module Retry = Psdp_fault.Retry
module Breaker = Psdp_fault.Breaker

exception Store_crash = Exec.Store_crash

(* Engine-specific fault classes layered over the generic taxonomy. *)
let classify = function
  | Exec.Store_crash _ -> Fault.Transient
  | Exec.Bad_input _ -> Fault.Permanent
  | e -> Fault.classify e

(* Series the engine feeds when a metrics registry is attached. All are
   registered once at [create]; updates are O(1) and lock-free or
   per-series, so runner domains never contend on the registry. *)
type meters = {
  reg : Metrics.t;
  m_submitted : Metrics.counter;
  m_iterations : Metrics.counter;
  m_decision_calls : Metrics.counter;
  m_queue_depth : Metrics.gauge;
  m_in_flight : Metrics.gauge;
  m_job_seconds : Metrics.histogram;
  m_decision_iterations : Metrics.histogram;
  m_cache_hits : Metrics.counter;
  m_cache_misses : Metrics.counter;
  m_cache_warm : Metrics.counter;
  m_cache_stores : Metrics.counter;
  m_pool_parallel : Metrics.counter;
  m_pool_fallbacks : Metrics.counter;
  m_cost_work : Metrics.gauge;
  m_cost_depth : Metrics.gauge;
  m_retries : Metrics.counter;
  m_quarantined : Metrics.gauge;
  m_breaker_open : Metrics.gauge;
  m_runner_restarts : Metrics.counter;
  m_sketch_resamples : Metrics.counter;
}

let make_meters reg =
  {
    reg;
    m_submitted =
      Metrics.counter reg ~help:"jobs accepted by the engine"
        "psdp_jobs_submitted_total";
    m_iterations =
      Metrics.counter reg ~help:"solver iterations across all jobs"
        "psdp_solver_iterations_total";
    m_decision_calls =
      Metrics.counter reg ~help:"bisection decision calls across all jobs"
        "psdp_decision_calls_total";
    m_queue_depth =
      Metrics.gauge reg ~help:"jobs queued, not yet picked up by a runner"
        "psdp_queue_depth";
    m_in_flight =
      Metrics.gauge reg ~help:"jobs currently executing" "psdp_jobs_in_flight";
    m_job_seconds =
      Metrics.histogram reg ~help:"end-to-end job latency, seconds"
        "psdp_job_seconds";
    m_decision_iterations =
      Metrics.histogram reg ~lo:1.0 ~ratio:2.0 ~buckets:24
        ~help:"solver iterations per decision call" "psdp_decision_iterations";
    m_cache_hits =
      Metrics.counter reg ~help:"result cache exact hits"
        "psdp_cache_hits_total";
    m_cache_misses =
      Metrics.counter reg ~help:"result cache misses" "psdp_cache_misses_total";
    m_cache_warm =
      Metrics.counter reg ~help:"warm-start sources found"
        "psdp_cache_warm_hits_total";
    m_cache_stores =
      Metrics.counter reg ~help:"results stored in the cache"
        "psdp_cache_stores_total";
    m_pool_parallel =
      Metrics.counter reg ~help:"pool loops that fanned out to workers"
        "psdp_pool_parallel_loops_total";
    m_pool_fallbacks =
      Metrics.counter reg ~help:"pool loops that ran sequentially (busy pool)"
        "psdp_pool_busy_fallbacks_total";
    m_cost_work =
      Metrics.gauge reg ~help:"abstract work charged by the cost model"
        "psdp_cost_work";
    m_cost_depth =
      Metrics.gauge reg ~help:"abstract depth charged by the cost model"
        "psdp_cost_depth";
    m_retries =
      Metrics.counter reg ~help:"job attempts retried after transient faults"
        "psdp_retries_total";
    m_quarantined =
      Metrics.gauge reg ~help:"jobs currently quarantined as poison"
        "psdp_quarantined_jobs";
    m_breaker_open =
      Metrics.gauge reg
        ~help:"1 when the store circuit breaker is open (non-durable mode)"
        "psdp_store_breaker_open";
    m_runner_restarts =
      Metrics.counter reg
        ~help:"runner domains restarted after an escaped exception"
        "psdp_runner_restarts_total";
    m_sketch_resamples =
      Metrics.counter reg
        ~help:"JL-sketch resamples after a failed certificate"
        "psdp_sketch_resamples_total";
  }

type state = Pending | Running | Done of Job.result

type handle = {
  spec : Job.spec;
  cancel_flag : bool Atomic.t;
  resume_from : Snapshot.t option;  (* recovery: seed the bisection *)
  submitted_at : float;  (* Timer.now at acceptance; queue-wait span base *)
  mutable state : state;  (* protected by the engine mutex *)
}

type t = {
  epool : Pool.t;
  owns_pool : bool;
  ecache : Cache.t;
  etrace : Trace.sink;
  store : Store.t option;
  checkpoint_every : int;
  sched : handle Scheduler.t;
  mutex : Mutex.t;
  cond : Condition.t;  (* signals job completion and resume *)
  mutable paused : bool;
  mutable handles : handle list;  (* newest first *)
  mutable seq : int;
  nonce : string;  (* per-engine submit nonce: auto ids never collide
                      across engines or processes (coordinator journals
                      mix ids from many workers) *)
  mutable runners : unit Domain.t list;
  mutable stopped : bool;
  iter_batch : int;
  on_complete : (Job.result -> unit) option;
  meters : meters option;
  oprofiler : Profiler.t option;  (* process-wide; per-job merged in *)
  in_flight : int Atomic.t;
  retry : Retry.policy;
  retry_budget : Retry.budget;
  quarantine_after : int option;
  breaker : Breaker.t;
  mutable quarantined : Store.quarantined list;  (* engine mutex; newest first *)
}

let pool t = t.epool
let cache t = t.ecache
let trace t = t.etrace
let job_id h = h.spec.Job.id

let quarantined t =
  Mutex.lock t.mutex;
  let q = List.rev t.quarantined in
  Mutex.unlock t.mutex;
  q

let store_degraded t = Breaker.is_open t.breaker

(* Every store call goes through the breaker: [K] consecutive faults
   latch it open and the engine degrades to non-durable mode — jobs keep
   solving, nothing more is journaled or snapshotted — instead of paying
   a fault (and a retry) per job on a dead store. *)
let breaker_guard eng ~what f =
  if Breaker.is_open eng.breaker then None
  else
    match f () with
    | v ->
        Breaker.success eng.breaker;
        Some v
    | exception e ->
        Fault.record Fault.Transient;
        let opened = Breaker.failure eng.breaker in
        Trace.emit eng.etrace ~kind:"store_fault"
          [
            ("op", Json.Str what);
            ("error", Json.Str (Printexc.to_string e));
            ( "consecutive",
              Json.Num (float_of_int (Breaker.failures eng.breaker)) );
          ];
        if opened then begin
          Log.warn (fun m ->
              m
                "store circuit breaker open after %d consecutive faults \
                 (last: %s during %s); degrading to non-durable mode"
                (Breaker.failures eng.breaker) (Printexc.to_string e) what);
          Trace.emit eng.etrace ~kind:"breaker_open"
            [ ("op", Json.Str what) ];
          match eng.meters with
          | Some m -> Metrics.set m.m_breaker_open 1.0
          | None -> ()
        end;
        raise e

(* Mirror the counters other subsystems keep for themselves (cache,
   pool, cost model) into the registry. [record] raises-to-at-least, so
   sampling at every job boundary and at shutdown never double-counts. *)
let sample_meters eng =
  match eng.meters with
  | None -> ()
  | Some m ->
      Metrics.set m.m_queue_depth (float_of_int (Scheduler.length eng.sched));
      let cs = Cache.stats eng.ecache in
      Metrics.record m.m_cache_hits cs.Cache.hits;
      Metrics.record m.m_cache_misses cs.Cache.misses;
      Metrics.record m.m_cache_warm cs.Cache.warm_hits;
      Metrics.record m.m_cache_stores cs.Cache.stores;
      let ps = Pool.stats eng.epool in
      Metrics.record m.m_pool_parallel ps.Pool.parallel_loops;
      Metrics.record m.m_pool_fallbacks ps.Pool.busy_fallbacks;
      let c = Cost.read () in
      Metrics.set m.m_cost_work (float_of_int c.Cost.work);
      Metrics.set m.m_cost_depth (float_of_int c.Cost.depth);
      List.iter
        (fun k ->
          Metrics.record
            (Metrics.counter m.reg ~help:"faults absorbed, by class"
               ~labels:[ ("class", Fault.klass_label k) ] "psdp_faults_total")
            (Fault.count k))
        [ Fault.Transient; Fault.Permanent; Fault.Crash ];
      Metrics.set m.m_breaker_open (if Breaker.is_open eng.breaker then 1.0 else 0.0);
      let quarantine_depth =
        Mutex.lock eng.mutex;
        let n = List.length eng.quarantined in
        Mutex.unlock eng.mutex;
        n
      in
      Metrics.set m.m_quarantined (float_of_int quarantine_depth)

(* ------------------------------------------------------------------ *)
(* Job execution (in a runner domain) — the solve path itself lives in
   {!Exec}; the engine contributes the policy-bearing pieces of the
   execution context: metric taps and the durable checkpoint sink. *)

let exec_hooks eng =
  match eng.meters with
  | None -> Exec.no_hooks
  | Some m ->
      {
        Exec.on_iteration = (fun () -> Metrics.inc m.m_iterations);
        on_decision_call = (fun () -> Metrics.inc m.m_decision_calls);
        observe_call_iterations =
          (fun n -> Metrics.observe m.m_decision_iterations (float_of_int n));
        on_sketch_resample = (fun () -> Metrics.inc m.m_sketch_resamples);
      }

(* The checkpoint sink: every [checkpoint_every]-th decision call's
   snapshot is persisted through the breaker. A broken store must not
   masquerade as a solver verdict — and must leave no completion record,
   so the job stays recoverable — hence [Store_crash]. When the breaker
   is open the engine runs non-durable; solving continues without
   snapshots. *)
let exec_persist eng =
  match eng.store with
  | None -> None
  | Some store ->
      Some
        (fun ~job (snap : Snapshot.t) ->
          if snap.Snapshot.calls mod eng.checkpoint_every = 0 then
            match
              breaker_guard eng ~what:"checkpoint" (fun () ->
                  let rel = Store.save_snapshot store ~job snap in
                  Store.append store
                    (Journal.Checkpoint
                       { job; call = snap.Snapshot.calls; snapshot = rel }))
            with
            | Some () ->
                Trace.emit eng.etrace ~job ~kind:"checkpoint"
                  [
                    ("call", Json.Num (float_of_int snap.Snapshot.calls));
                    ("lo", Json.Num snap.Snapshot.lo);
                    ("hi", Json.Num snap.Snapshot.hi);
                  ]
            | None -> ()
            | exception e -> raise (Exec.Store_crash (Printexc.to_string e)))

let exec_ctx eng =
  {
    Exec.pool = eng.epool;
    cache = eng.ecache;
    trace = eng.etrace;
    iter_batch = eng.iter_batch;
    persist = exec_persist eng;
    hooks = exec_hooks eng;
  }

let finished_fields (r : Job.result) =
  match r.Job.outcome with
  | Job.Solved s ->
      [
        ("status", Json.Str "ok");
        ("value", Json.Num s.value);
        ("upper", Json.Num s.upper_bound);
        ("calls", Json.Num (float_of_int s.decision_calls));
        ("iters", Json.Num (float_of_int s.iterations));
      ]
  | Job.Decided d ->
      [
        ("status", Json.Str (if d.accepted then "ok" else "rejected"));
        ("iters", Json.Num (float_of_int d.iterations));
      ]
  | Job.Failed msg -> [ ("status", Json.Str "failed"); ("error", Json.Str msg) ]
  | Job.Cancelled -> [ ("status", Json.Str "cancelled") ]
  | Job.Timed_out -> [ ("status", Json.Str "timeout") ]

(* Journal the terminal record. Solver verdicts (including failures) are
   [Completed] — the job is settled and recovery must not rerun it.
   Cancellations and timeouts are deliberate interruptions: a [Cancelled]
   record keeps the job's snapshots and leaves it resumable. A failing
   append is swallowed — rerunning a job on recovery is safe, crashing
   the runner is not. *)
let journal_finish eng (result : Job.result) =
  match eng.store with
  | None -> ()
  | Some store -> (
      let record =
        match result.Job.outcome with
        | Job.Solved _ ->
            Journal.Completed
              { job = result.Job.id; status = "ok"; result = None }
        | Job.Decided _ ->
            Journal.Completed
              { job = result.Job.id; status = "decided"; result = None }
        | Job.Failed msg ->
            Journal.Completed
              { job = result.Job.id; status = "failed: " ^ msg; result = None }
        | Job.Cancelled ->
            Journal.Cancelled { job = result.Job.id; reason = "cancel" }
        | Job.Timed_out ->
            Journal.Cancelled { job = result.Job.id; reason = "timeout" }
      in
      try
        ignore
          (breaker_guard eng ~what:"journal_finish" (fun () ->
               Store.append store record))
      with _ -> ())

let journal_quarantine eng ~job ~reason ~attempts =
  match eng.store with
  | None -> ()
  | Some store -> (
      try
        ignore
          (breaker_guard eng ~what:"journal_quarantine" (fun () ->
               Store.append store
                 (Journal.Quarantined { job; reason; attempts })))
      with _ -> ())

let finish ?(record = true) eng h (result : Job.result) =
  if record then journal_finish eng result;
  Mutex.lock eng.mutex;
  h.state <- Done result;
  Condition.broadcast eng.cond;
  Mutex.unlock eng.mutex;
  Trace.emit eng.etrace ~job:result.Job.id ~kind:"job_finished"
    (finished_fields result
    @ [ ("elapsed", Json.Num result.Job.elapsed) ]);
  match eng.on_complete with Some f -> f result | None -> ()

let run_one eng h =
  let id = h.spec.Job.id in
  if Atomic.get h.cancel_flag then
    finish eng h { Job.id; outcome = Job.Cancelled; elapsed = 0.0 }
  else begin
    Mutex.lock eng.mutex;
    h.state <- Running;
    Mutex.unlock eng.mutex;
    Trace.emit eng.etrace ~job:id ~kind:"job_started" [];
    (match eng.meters with
    | Some m ->
        Metrics.set m.m_in_flight
          (float_of_int (1 + Atomic.fetch_and_add eng.in_flight 1));
        Metrics.set m.m_queue_depth
          (float_of_int (Scheduler.length eng.sched))
    | None -> ());
    (* The in-flight gauge must come back down even when a crash-class
       fault escapes to the supervisor. *)
    let decr_in_flight () =
      match eng.meters with
      | Some m ->
          Metrics.set m.m_in_flight
            (float_of_int (Atomic.fetch_and_add eng.in_flight (-1) - 1))
      | None -> ()
    in
    Fun.protect ~finally:decr_in_flight @@ fun () ->
    (* Distributed tracing: [spec.trace] is the span the submitter owns
       (a client's request, a coordinator's assignment); everything this
       engine emits parents under it. With no inherited context — a
       plain [psdp batch] run — the engine mints a fresh root and emits
       the enclosing "job" span itself, so a single-process trace still
       assembles into one tree. All span bookkeeping is skipped when the
       sink is null. *)
    let base =
      if Trace.enabled eng.etrace then
        match h.spec.Job.trace with
        | Some parent -> Some (parent, false)
        | None -> Some (Trace_context.mint (), true)
      else None
    in
    (* Each job profiles into a private registry — runner domains never
       share span state — and the result is merged into the process-wide
       profiler after the fact. Tracing forces a profiler even without
       one attached: phase spans (load, solve, certify) are derived from
       the profiler rows. *)
    let job_prof =
      if Option.is_some eng.oprofiler || Option.is_some base then
        Some (Profiler.create ())
      else None
    in
    let prof =
      match job_prof with
      | None -> Profiler.disabled
      | Some p -> Profiler.root p "solve"
    in
    let t0 = Timer.now () in
    (match base with
    | Some (b, _) ->
        Trace.span eng.etrace ~job:id ~ctx:(Trace_context.child b)
          ~name:"queue_wait" ~dur:(t0 -. h.submitted_at) []
    | None -> ());
    let deadline = Option.map (fun s -> t0 +. s) h.spec.Job.timeout in
    let fail_message = function
      | Exec.Store_crash msg -> "checkpoint store: " ^ msg
      | Exec.Bad_input msg | Failure msg | Invalid_argument msg -> msg
      | e -> Printexc.to_string e
    in
    let ctx = exec_ctx eng in
    let check () =
      if Atomic.get h.cancel_flag then raise Exec.Cancelled_exn;
      match deadline with
      | Some d when Timer.now () > d -> raise Exec.Timed_out_exn
      | _ -> ()
    in
    (* Per-job deterministic jitter stream: retries of different jobs
       decorrelate without sharing RNG state across domains. *)
    let retry_rng = Rng.create (Hashtbl.hash id) in
    let prev_backoff = ref 0.0 in
    let may_retry n =
      n < eng.retry.Retry.max_attempts
      && (not (Atomic.get h.cancel_flag))
      && (match deadline with Some d -> Timer.now () < d | None -> true)
      && Retry.try_consume eng.retry_budget
    in
    (* The attempt loop: transient faults are retried with decorrelated
       jitter (within the per-job policy and the engine-wide budget),
       permanent faults fail immediately, and crash-class faults
       re-raise to the runner's supervisor. A job whose terminal failure
       burned [quarantine_after] or more attempts is poison: it is
       journaled as quarantined and never re-run automatically. *)
    let rec attempt n =
      match
        Failpoint.hit ~arg:id "engine.job_attempt";
        Exec.run ctx ?resume:h.resume_from ~check ~prof h.spec
      with
      | outcome -> (outcome, true)
      | exception Exec.Cancelled_exn -> (Job.Cancelled, true)
      | exception Exec.Timed_out_exn -> (Job.Timed_out, true)
      | exception e -> (
          let klass = classify e in
          (* Crash-class faults are tallied by the supervisor. *)
          (match klass with
          | Fault.Crash -> ()
          | k -> Fault.record k);
          Trace.emit eng.etrace ~job:id ~kind:"job_fault"
            [
              ("attempt", Json.Num (float_of_int n));
              ("class", Json.Str (Fault.klass_label klass));
              ("error", Json.Str (fail_message e));
            ];
          match klass with
          | Fault.Crash -> raise e
          | Fault.Transient when may_retry n ->
              let d =
                Retry.backoff eng.retry ~rng:retry_rng ~prev:!prev_backoff
              in
              prev_backoff := d;
              (match eng.meters with
              | Some m -> Metrics.inc m.m_retries
              | None -> ());
              Trace.emit eng.etrace ~job:id ~kind:"job_retry"
                [
                  ("attempt", Json.Num (float_of_int n));
                  ("backoff", Json.Num d);
                ];
              if d > 0.0 then Unix.sleepf d;
              attempt (n + 1)
          | _ -> (
              let msg = fail_message e in
              match eng.quarantine_after with
              | Some q when n >= q ->
                  journal_quarantine eng ~job:id ~reason:msg ~attempts:n;
                  Mutex.lock eng.mutex;
                  eng.quarantined <-
                    { Store.job = id; reason = msg; attempts = n }
                    :: eng.quarantined;
                  Mutex.unlock eng.mutex;
                  Trace.emit eng.etrace ~job:id ~kind:"job_quarantined"
                    [
                      ("attempts", Json.Num (float_of_int n));
                      ("error", Json.Str msg);
                    ];
                  Log.warn (fun m ->
                      m "job %s quarantined after %d attempts: %s" id n msg);
                  (* The Quarantined record above is the terminal journal
                     entry; no Completed record must follow it. *)
                  ( Job.Failed
                      (Printf.sprintf "quarantined after %d attempts: %s" n
                         msg),
                    false )
              | _ ->
                  (* A store fault leaves no completion record, so the
                     job stays pending for recovery. *)
                  let record =
                    match e with Store_crash _ -> false | _ -> true
                  in
                  (Job.Failed msg, record)))
    in
    let outcome, record = attempt 1 in
    let elapsed = Timer.now () -. t0 in
    Profiler.exit prof;
    let status =
      match outcome with
      | Job.Solved _ -> "ok"
      | Job.Decided { accepted; _ } -> if accepted then "ok" else "rejected"
      | Job.Failed _ -> "failed"
      | Job.Cancelled -> "cancelled"
      | Job.Timed_out -> "timeout"
    in
    (match base with
    | None -> ()
    | Some (b, minted) ->
        let exec_span = Trace_context.child b in
        (* Phase spans mirror the profiler tree: paths sort so a parent
           ("solve") precedes its children ("solve/certify"), letting
           each row's context link under its parent's. Rows whose parent
           path never profiled fall back to the exec span. *)
        (match job_prof with
        | None -> ()
        | Some p ->
            let rows =
              List.sort
                (fun (a : Profiler.row) (b : Profiler.row) ->
                  compare a.Profiler.path b.Profiler.path)
                (Profiler.report p)
            in
            let ctxs = Hashtbl.create 8 in
            List.iter
              (fun (r : Profiler.row) ->
                let path = r.Profiler.path in
                let parent_ctx, name =
                  match String.rindex_opt path '/' with
                  | None -> (exec_span, path)
                  | Some i ->
                      ( (match
                           Hashtbl.find_opt ctxs (String.sub path 0 i)
                         with
                        | Some c -> c
                        | None -> exec_span),
                        String.sub path (i + 1) (String.length path - i - 1)
                      )
                in
                let c = Trace_context.child parent_ctx in
                Hashtbl.replace ctxs path c;
                Trace.span eng.etrace ~job:id ~ctx:c ~name
                  ~dur:r.Profiler.total
                  [ ("count", Json.Num (float_of_int r.Profiler.count)) ])
              rows);
        Trace.span eng.etrace ~job:id ~ctx:exec_span ~name:"exec"
          ~dur:elapsed
          [ ("status", Json.Str status) ];
        if minted then
          Trace.span eng.etrace ~job:id ~ctx:b ~name:"job"
            ~dur:(Timer.now () -. h.submitted_at)
            [ ("status", Json.Str status) ]);
    (match (job_prof, eng.oprofiler) with
    | Some p, Some shared ->
        Trace.emit eng.etrace ~job:id ~kind:"profile"
          [
            ( "spans",
              Json.Obj
                (List.map
                   (fun (r : Profiler.row) ->
                     ( r.Profiler.path,
                       Json.Obj
                         [
                           ("count", Json.Num (float_of_int r.Profiler.count));
                           ("total", Json.Num r.Profiler.total);
                         ] ))
                   (Profiler.report p)) );
          ];
        Profiler.merge ~into:shared p
    | _ -> ());
    (match eng.meters with
    | Some m ->
        Metrics.observe m.m_job_seconds elapsed;
        Metrics.inc
          (Metrics.counter m.reg ~help:"jobs finished, by terminal status"
             ~labels:[ ("status", status) ] "psdp_jobs_finished_total");
        sample_meters eng
    | None -> ());
    finish ~record eng h { Job.id; outcome; elapsed }
  end

(* Supervision: an exception escaping [run_one] must not kill the
   runner domain — with it would go one unit of the engine's capacity,
   silently. The crash is tallied and traced, the job is settled as
   failed (when the crash left it unsettled), and the loop restarts
   with the next job. *)
let supervise eng h e =
  let id = h.spec.Job.id in
  Fault.record Fault.Crash;
  (match eng.meters with
  | Some m -> Metrics.inc m.m_runner_restarts
  | None -> ());
  (try
     Trace.emit eng.etrace ~job:id ~kind:"runner_restarted"
       [ ("error", Json.Str (Printexc.to_string e)) ];
     Log.warn (fun m ->
         m "runner crashed on job %s (%s); restarting" id
           (Printexc.to_string e))
   with _ -> ());
  Mutex.lock eng.mutex;
  let settled =
    match h.state with Done _ -> true | Pending | Running -> false
  in
  Mutex.unlock eng.mutex;
  if not settled then
    try
      finish eng h
        {
          Job.id;
          outcome = Job.Failed ("runner crashed: " ^ Printexc.to_string e);
          elapsed = 0.0;
        }
    with _ -> ()

let rec runner_loop eng =
  Mutex.lock eng.mutex;
  while eng.paused do
    Condition.wait eng.cond eng.mutex
  done;
  Mutex.unlock eng.mutex;
  match Scheduler.pop eng.sched with
  | None -> ()
  | Some h ->
      (try run_one eng h with e -> supervise eng h e);
      runner_loop eng

(* ------------------------------------------------------------------ *)
(* Lifecycle *)

(* Submit nonce: 8 hex chars mixing pid, wall clock and a process-wide
   counter, so auto-assigned job ids are unique across engines in one
   process {e and} across processes. Distributed reroutes re-journal a
   job under its original id; two workers inventing "job-3" would
   corrupt the coordinator's assignment bookkeeping. *)
let nonce_counter = Atomic.make 0

let fresh_nonce () =
  String.sub
    (Psdp_store.Checksum.fnv1a64_hex
       (Printf.sprintf "%d.%.9f.%d" (Unix.getpid ()) (Unix.gettimeofday ())
          (Atomic.fetch_and_add nonce_counter 1)))
    0 8

let create ?pool ?(max_in_flight = 2) ?cache ?trace ?store
    ?(checkpoint_every = 1) ?(paused = false) ?(iter_batch = 32) ?metrics
    ?profiler ?on_complete ?(retry = Retry.no_retry) ?retry_budget
    ?quarantine_after ?(breaker_threshold = 5) () =
  if max_in_flight < 1 then
    invalid_arg "Engine.create: max_in_flight must be >= 1";
  if iter_batch < 1 then invalid_arg "Engine.create: iter_batch must be >= 1";
  if checkpoint_every < 1 then
    invalid_arg "Engine.create: checkpoint_every must be >= 1";
  (match quarantine_after with
  | Some q when q < 1 ->
      invalid_arg "Engine.create: quarantine_after must be >= 1"
  | _ -> ());
  let epool, owns_pool =
    match pool with Some p -> (p, false) | None -> (Pool.create (), true)
  in
  let eng =
    {
      epool;
      owns_pool;
      ecache = (match cache with Some c -> c | None -> Cache.create ());
      etrace = (match trace with Some t -> t | None -> Trace.null);
      store;
      checkpoint_every;
      sched = Scheduler.create ();
      mutex = Mutex.create ();
      cond = Condition.create ();
      paused;
      handles = [];
      seq = 0;
      nonce = fresh_nonce ();
      runners = [];
      stopped = false;
      iter_batch;
      on_complete;
      meters = Option.map make_meters metrics;
      oprofiler = profiler;
      in_flight = Atomic.make 0;
      retry;
      retry_budget = Retry.budget retry_budget;
      quarantine_after;
      breaker = Breaker.create ~threshold:breaker_threshold ();
      quarantined = [];
    }
  in
  Trace.emit eng.etrace ~kind:"engine_started"
    [
      ("pool_size", Json.Num (float_of_int (Pool.size epool)));
      ("max_in_flight", Json.Num (float_of_int max_in_flight));
    ];
  eng.runners <-
    List.init max_in_flight (fun _ -> Domain.spawn (fun () -> runner_loop eng));
  eng

(* Make a spec journalable: inline instances are persisted into the
   store's [instances/] directory (idempotently, keyed by digest) so the
   WAL always refers to a file a later process can reload. *)
let journal_submit eng (spec : Job.spec) =
  match eng.store with
  | None -> spec
  | Some store -> (
      match
        breaker_guard eng ~what:"journal_submit" (fun () ->
            let spec =
              match spec.Job.source with
              | Job.File _ -> spec
              | Job.Inline inst ->
                  let digest = Loader.digest inst in
                  let path =
                    Store.save_instance store ~digest
                      ~text:(Loader.to_string inst)
                  in
                  { spec with Job.source = Job.File path }
            in
            (match Job.spec_to_json spec with
            | Ok json ->
                Store.append store
                  (Journal.Submitted { job = spec.Job.id; spec = json })
            | Error _ -> ());
            (* Lineage is pure provenance on top of the spec (which
               already carries [parent] through its JSON form): it makes
               warm-start ancestry auditable from the WAL alone. *)
            (match spec.Job.parent with
            | Some parent ->
                Store.append store
                  (Journal.Lineage { job = spec.Job.id; parent })
            | None -> ());
            spec)
      with
      | Some spec -> spec
      | None -> spec (* breaker open: accept the job non-durably *)
      | exception _ ->
          (* A store fault at submission degrades durability, never
             availability: the job is accepted unjournaled (the breaker
             counted the fault). *)
          spec)

let submit_with ?resume eng (spec : Job.spec) =
  Mutex.lock eng.mutex;
  if eng.stopped then begin
    Mutex.unlock eng.mutex;
    invalid_arg "Engine.submit: engine is shut down"
  end;
  eng.seq <- eng.seq + 1;
  let spec : Job.spec =
    if spec.Job.id = "" then
      { spec with Job.id = Printf.sprintf "job-%s-%d" eng.nonce eng.seq }
    else spec
  in
  Mutex.unlock eng.mutex;
  let spec = journal_submit eng spec in
  Mutex.lock eng.mutex;
  let h =
    { spec; cancel_flag = Atomic.make false; resume_from = resume;
      submitted_at = Timer.now (); state = Pending }
  in
  eng.handles <- h :: eng.handles;
  Mutex.unlock eng.mutex;
  Trace.emit eng.etrace ~job:spec.Job.id ~kind:"job_submitted"
    [
      ( "op",
        Json.Str
          (match spec.Job.op with Job.Solve -> "solve" | Job.Decide _ -> "decide")
      );
      ("eps", Json.Num spec.Job.eps);
      ("priority", Json.Num (float_of_int spec.Job.priority));
    ];
  Scheduler.push eng.sched ~priority:spec.Job.priority h;
  (match eng.meters with
  | Some m ->
      Metrics.inc m.m_submitted;
      Metrics.set m.m_queue_depth (float_of_int (Scheduler.length eng.sched))
  | None -> ());
  h

let submit eng spec = submit_with eng spec

let recover eng =
  match eng.store with
  | None -> []
  | Some store ->
      let pend = Store.pending store in
      Trace.emit eng.etrace ~kind:"recovery_started"
        [ ("pending", Json.Num (float_of_int (List.length pend))) ];
      (match Store.torn_tail store with
      | Some msg ->
          Trace.emit eng.etrace ~kind:"journal_torn"
            [ ("error", Json.Str msg) ]
      | None -> ());
      List.filter_map
        (fun (p : Store.pending) ->
          match Job.spec_of_json p.Store.spec with
          | Error msg ->
              Trace.emit eng.etrace ~job:p.Store.job ~kind:"recovery_skipped"
                [ ("error", Json.Str msg) ];
              None
          | Ok spec ->
              let spec = { spec with Job.id = p.Store.job } in
              let resume =
                match p.Store.snapshot with
                | None -> None
                | Some rel -> (
                    match Store.load_snapshot store rel with
                    | Ok snap -> Some snap
                    | Error msg ->
                        (* Corrupt snapshot: the spec is still good, so
                           the job reruns from scratch rather than being
                           dropped or trusted. *)
                        Trace.emit eng.etrace ~job:p.Store.job
                          ~kind:"snapshot_rejected"
                          [ ("reason", Json.Str msg) ];
                        None)
              in
              let h = submit_with ?resume eng spec in
              Trace.emit eng.etrace ~job:p.Store.job ~kind:"job_recovered"
                [
                  ( "from_call",
                    Json.Num
                      (float_of_int
                         (match resume with
                         | Some s -> s.Snapshot.calls
                         | None -> 0)) );
                  ( "interrupted",
                    Json.Str
                      (match p.Store.interrupted with
                      | Some reason -> reason
                      | None -> "crash") );
                ];
              Some h)
        pend

let cancel eng h =
  Atomic.set h.cancel_flag true;
  Mutex.lock eng.mutex;
  let took = match h.state with Done _ -> false | Pending | Running -> true in
  Mutex.unlock eng.mutex;
  took

let peek eng h =
  Mutex.lock eng.mutex;
  let r = match h.state with Done r -> Some r | Pending | Running -> None in
  Mutex.unlock eng.mutex;
  r

let await eng h =
  Mutex.lock eng.mutex;
  let rec wait () =
    match h.state with
    | Done r ->
        Mutex.unlock eng.mutex;
        r
    | Pending | Running ->
        Condition.wait eng.cond eng.mutex;
        wait ()
  in
  wait ()

let resume eng =
  Mutex.lock eng.mutex;
  eng.paused <- false;
  Condition.broadcast eng.cond;
  Mutex.unlock eng.mutex

let drain eng =
  Mutex.lock eng.mutex;
  let all = List.rev eng.handles in
  Mutex.unlock eng.mutex;
  List.map (fun h -> await eng h) all

let shutdown eng =
  Mutex.lock eng.mutex;
  if eng.stopped then Mutex.unlock eng.mutex
  else begin
    eng.stopped <- true;
    eng.paused <- false;
    Condition.broadcast eng.cond;
    Mutex.unlock eng.mutex;
    Scheduler.close eng.sched;
    List.iter Domain.join eng.runners;
    eng.runners <- [];
    let stats = Pool.stats eng.epool in
    sample_meters eng;
    Trace.emit eng.etrace ~kind:"engine_stopped"
      [
        ("jobs", Json.Num (float_of_int eng.seq));
        ( "pool_parallel_loops",
          Json.Num (float_of_int stats.Pool.parallel_loops) );
        ( "pool_busy_fallbacks",
          Json.Num (float_of_int stats.Pool.busy_fallbacks) );
      ];
    Trace.flush_sink eng.etrace;
    Log.info (fun m ->
        m "engine stopped: %d jobs, %d parallel loops, %d busy fallbacks"
          eng.seq stats.Pool.parallel_loops stats.Pool.busy_fallbacks);
    if eng.owns_pool then Pool.shutdown eng.epool
  end

let with_engine ?pool ?max_in_flight ?cache ?trace ?store ?checkpoint_every
    ?iter_batch ?metrics ?profiler ?on_complete ?retry ?retry_budget
    ?quarantine_after ?breaker_threshold f =
  let eng =
    create ?pool ?max_in_flight ?cache ?trace ?store ?checkpoint_every
      ?iter_batch ?metrics ?profiler ?on_complete ?retry ?retry_budget
      ?quarantine_after ?breaker_threshold ()
  in
  match f eng with
  | result ->
      shutdown eng;
      result
  | exception e ->
      shutdown eng;
      raise e
