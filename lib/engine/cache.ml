open Psdp_prelude

type entry = {
  digest : string;
  eps : float;
  backend : string;
  mode : string;
  value : float;
  upper_bound : float;
  x : float array;
  decision_calls : int;
  iterations : int;
}

type stats = { hits : int; misses : int; warm_hits : int; stores : int }

type t = {
  mutex : Mutex.t;
  table : (string, entry list) Hashtbl.t;  (* digest -> entries, newest first *)
  mutable persist : out_channel option;
  mutable count : int;
  hits : int Atomic.t;
  misses : int Atomic.t;
  warm_hits : int Atomic.t;
  store_count : int Atomic.t;
}

let entry_to_json e =
  Json.Obj
    [
      ("digest", Json.Str e.digest);
      ("eps", Json.Num e.eps);
      ("backend", Json.Str e.backend);
      ("mode", Json.Str e.mode);
      ("value", Json.Num e.value);
      ("upper", Json.Num e.upper_bound);
      ("calls", Json.Num (float_of_int e.decision_calls));
      ("iters", Json.Num (float_of_int e.iterations));
      ("x", Json.List (Array.to_list (Array.map (fun v -> Json.Num v) e.x)));
    ]

let entry_of_json j =
  let field name extract =
    match Option.bind (Json.mem name j) extract with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "cache entry: missing or bad %S" name)
  in
  let ( let* ) = Result.bind in
  let* digest = field "digest" Json.str in
  let* eps = field "eps" Json.num in
  let* backend = field "backend" Json.str in
  let* mode = field "mode" Json.str in
  let* value = field "value" Json.num in
  let* upper_bound = field "upper" Json.num in
  let* decision_calls = field "calls" Json.int in
  let* iterations = field "iters" Json.int in
  let* xs = field "x" Json.list in
  let* x =
    List.fold_left
      (fun acc v ->
        match (acc, Json.num v) with
        | Ok l, Some f -> Ok (f :: l)
        | Ok _, None -> Error "cache entry: non-numeric x element"
        | (Error _ as e), _ -> e)
      (Ok []) xs
    |> Result.map (fun l -> Array.of_list (List.rev l))
  in
  Ok { digest; eps; backend; mode; value; upper_bound; x; decision_calls;
       iterations }

let insert t e =
  let existing = Option.value ~default:[] (Hashtbl.find_opt t.table e.digest) in
  Hashtbl.replace t.table e.digest (e :: existing);
  t.count <- t.count + 1

let create ?persist () =
  let t =
    { mutex = Mutex.create (); table = Hashtbl.create 64; persist = None;
      count = 0; hits = Atomic.make 0; misses = Atomic.make 0;
      warm_hits = Atomic.make 0; store_count = Atomic.make 0 }
  in
  (match persist with
  | None -> ()
  | Some path ->
      (if Sys.file_exists path then
         let ic = open_in path in
         Fun.protect
           ~finally:(fun () -> close_in ic)
           (fun () ->
             try
               while true do
                 let line = String.trim (input_line ic) in
                 if line <> "" then
                   match Json.parse line with
                   | Ok j -> (
                       match entry_of_json j with
                       | Ok e -> insert t e
                       | Error _ -> ())
                   | Error _ -> ()
               done
             with End_of_file -> ()));
      t.persist <- Some (open_out_gen [ Open_append; Open_creat ] 0o644 path));
  t

let find t ~digest ~eps ~backend ~mode =
  Mutex.lock t.mutex;
  let entries = Option.value ~default:[] (Hashtbl.find_opt t.table digest) in
  let r =
    List.find_opt
      (fun e -> e.eps = eps && e.backend = backend && e.mode = mode)
      entries
  in
  Mutex.unlock t.mutex;
  Atomic.incr (match r with Some _ -> t.hits | None -> t.misses);
  r

let find_warm ?eps t ~digest ~backend ~mode =
  (* Without [eps]: tightest certified bracket wins (smallest upper
     bound, ties toward larger value). With [eps]: the entry whose ε is
     closest to the requested one wins — its incumbent was shaped at the
     nearest accuracy regime — with the tightness order as tie-break. *)
  let better e b =
    let tightness_pref () =
      e.upper_bound < b.upper_bound
      || (e.upper_bound = b.upper_bound && e.value > b.value)
    in
    match eps with
    | None -> tightness_pref ()
    | Some target ->
        let de = Float.abs (e.eps -. target)
        and db = Float.abs (b.eps -. target) in
        de < db || (de = db && tightness_pref ())
  in
  Mutex.lock t.mutex;
  let entries = Option.value ~default:[] (Hashtbl.find_opt t.table digest) in
  let r =
    List.fold_left
      (fun best e ->
        if e.backend <> backend || e.mode <> mode then best
        else
          match best with
          | None -> Some e
          | Some b -> if better e b then Some e else best)
      None entries
  in
  Mutex.unlock t.mutex;
  (match r with Some _ -> Atomic.incr t.warm_hits | None -> ());
  r

let store t e =
  Atomic.incr t.store_count;
  Mutex.lock t.mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.mutex)
    (fun () ->
      insert t e;
      match t.persist with
      | None -> ()
      | Some oc ->
          output_string oc (Json.to_string (entry_to_json e));
          output_char oc '\n';
          flush oc)

let size t =
  Mutex.lock t.mutex;
  let n = t.count in
  Mutex.unlock t.mutex;
  n

let stats t =
  {
    hits = Atomic.get t.hits;
    misses = Atomic.get t.misses;
    warm_hits = Atomic.get t.warm_hits;
    stores = Atomic.get t.store_count;
  }

let export_metrics reg t =
  let set name help v =
    Psdp_obs.Metrics.set (Psdp_obs.Metrics.gauge reg ~help name) (float_of_int v)
  in
  set "psdp_cache_hits" "result cache exact hits (lifetime)"
    (Atomic.get t.hits);
  set "psdp_cache_misses" "result cache misses (lifetime)"
    (Atomic.get t.misses);
  set "psdp_cache_warm_hits" "warm-start sources found (lifetime)"
    (Atomic.get t.warm_hits);
  set "psdp_cache_stores" "results stored in the cache (lifetime)"
    (Atomic.get t.store_count);
  set "psdp_cache_size" "entries currently held" (size t)

let close t =
  Mutex.lock t.mutex;
  (match t.persist with
  | Some oc ->
      close_out oc;
      t.persist <- None
  | None -> ());
  Mutex.unlock t.mutex
