open Psdp_prelude
open Psdp_core
open Psdp_instances
module Snapshot = Psdp_store.Snapshot
module Profiler = Psdp_obs.Profiler

exception Cancelled_exn
exception Timed_out_exn
exception Bad_input of string
exception Store_crash of string

type hooks = {
  on_iteration : unit -> unit;
  on_decision_call : unit -> unit;
  observe_call_iterations : int -> unit;
  on_sketch_resample : unit -> unit;
}

let no_hooks =
  {
    on_iteration = ignore;
    on_decision_call = ignore;
    observe_call_iterations = ignore;
    on_sketch_resample = ignore;
  }

type ctx = {
  pool : Psdp_parallel.Pool.t;
  cache : Cache.t;
  trace : Trace.sink;
  iter_batch : int;
  persist : (job:string -> Psdp_store.Snapshot.t -> unit) option;
  hooks : hooks;
}

let load_instance = function
  | Job.Inline inst -> inst
  | Job.File path -> (
      match Loader.load_result path with
      | Ok inst -> inst
      | Error msg -> raise (Bad_input msg))

let run ctx ?resume:resume_from ~check ~prof (spec : Job.spec) =
  let id = spec.Job.id in
  let iters = ref 0 in
  let on_iter (st : Decision.iter_stats) =
    incr iters;
    ctx.hooks.on_iteration ();
    if !iters mod ctx.iter_batch = 0 then
      Trace.emit ctx.trace ~job:id ~kind:"iter_batch"
        [
          ("iters", Json.Num (float_of_int !iters));
          ("l1", Json.Num st.Decision.l1);
          ("trace_w", Json.Num st.Decision.trace_w);
        ];
    check ()
  in
  (* Load and certification get their own profiler phases: they are the
     two non-solver segments of a job's wall clock, and the trace
     critical path should name them rather than lump them into the
     parent's self time. *)
  let inst =
    Profiler.with_span prof "load" (fun () -> load_instance spec.Job.source)
  in
  check ();
  match spec.Job.op with
  | Job.Decide { threshold } ->
      let scaled = Instance.scale threshold inst in
      let r =
        Decision.solve ~pool:ctx.pool ~backend:spec.Job.backend
          ~mode:spec.Job.mode ~prof ~on_iter ~eps:spec.Job.eps scaled
      in
      ctx.hooks.observe_call_iterations r.Decision.iterations;
      (match r.Decision.outcome with
      | Decision.Dual { x; _ } ->
          let value = Util.sum_array x in
          Job.Decided
            {
              accepted = true;
              bound = threshold *. value;
              iterations = r.Decision.iterations;
            }
      | Decision.Primal { dots; _ } ->
          let min_dot = Util.min_array dots in
          Job.Decided
            {
              accepted = false;
              bound =
                (if min_dot > 0.0 then threshold /. min_dot else Float.infinity);
              iterations = r.Decision.iterations;
            })
  | Job.Solve -> (
      let digest = Loader.digest inst in
      let backend = Job.backend_key spec.Job.backend in
      let mode = Job.mode_key spec.Job.mode in
      let emit_cache status =
        Trace.emit ctx.trace ~job:id ~kind:"cache"
          [ ("status", Json.Str status); ("digest", Json.Str digest) ]
      in
      match
        Cache.find ctx.cache ~digest ~eps:spec.Job.eps ~backend ~mode
      with
      | Some e ->
          emit_cache "hit";
          Job.Solved
            {
              value = e.Cache.value;
              upper_bound = e.Cache.upper_bound;
              decision_calls = 0;
              iterations = 0;
              cache = Job.Hit;
              certified = true;
            }
      | None ->
          let warm_entry = Cache.find_warm ctx.cache ~digest ~backend ~mode in
          (* Lineage fallback: no incumbent for this exact instance, but
             the spec names a parent digest — adopt the parent's closest-ε
             solution vector as a seed. Only [x0] crosses instances: the
             solver re-verifies it against {e this} instance, so a stale
             or drifted-away parent costs nothing. The parent's
             [upper_bound] is never reused — it certifies a different
             instance and would be trusted unverified. *)
          let parent_entry =
            match (warm_entry, spec.Job.parent) with
            | Some _, _ | _, None -> None
            | None, Some p -> (
                match
                  Cache.find_warm ~eps:spec.Job.eps ctx.cache ~digest:p
                    ~backend ~mode
                with
                | Some e
                  when Array.length e.Cache.x = Instance.num_constraints inst
                  ->
                    Some e
                | Some _ | None -> None)
          in
          let warm =
            match (warm_entry, parent_entry) with
            | Some e, _ ->
                emit_cache "warm";
                { Solver.upper = Some e.Cache.upper_bound;
                  x0 = Some e.Cache.x }
            | None, Some e ->
                Trace.emit ctx.trace ~job:id ~kind:"cache"
                  [
                    ("status", Json.Str "parent");
                    ("digest", Json.Str digest);
                    ("parent", Json.Str e.Cache.digest);
                  ];
                { Solver.upper = None; x0 = Some e.Cache.x }
            | None, None ->
                emit_cache "miss";
                Solver.cold
          in
          (* A recovery snapshot is adopted only if it provably belongs
             to this exact work item: same instance content (digest),
             same accuracy, same backend/mode. Anything else is traced
             and discarded — the job simply solves cold. *)
          let resume =
            match resume_from with
            | None -> None
            | Some snap
              when snap.Snapshot.digest = digest
                   && snap.Snapshot.eps = spec.Job.eps
                   && snap.Snapshot.backend = backend
                   && snap.Snapshot.mode = mode ->
                Trace.emit ctx.trace ~job:id ~kind:"resume"
                  [
                    ("from_call", Json.Num (float_of_int snap.Snapshot.calls));
                    ("lo", Json.Num snap.Snapshot.lo);
                    ("hi", Json.Num snap.Snapshot.hi);
                  ];
                Some
                  {
                    Solver.lo = snap.Snapshot.lo;
                    hi = snap.Snapshot.hi;
                    incumbent = snap.Snapshot.x;
                    incumbent_value = snap.Snapshot.value;
                    calls_done = snap.Snapshot.calls;
                    iterations_done = snap.Snapshot.iterations;
                    dropped = snap.Snapshot.dropped;
                  }
            | Some snap ->
                Trace.emit ctx.trace ~job:id ~kind:"snapshot_rejected"
                  [
                    ("reason", Json.Str "identity mismatch");
                    ("snapshot_digest", Json.Str snap.Snapshot.digest);
                    ("instance_digest", Json.Str digest);
                  ];
                None
          in
          let checkpoint =
            match ctx.persist with
            | None -> None
            | Some persist ->
                Some
                  (fun (s : Solver.bisection_state) ->
                    persist ~job:id
                      {
                        Snapshot.digest;
                        eps = spec.Job.eps;
                        backend;
                        mode;
                        threshold = sqrt (s.Solver.lo *. s.Solver.hi);
                        lo = s.Solver.lo;
                        hi = s.Solver.hi;
                        value = s.Solver.incumbent_value;
                        calls = s.Solver.calls_done;
                        iterations = s.Solver.iterations_done;
                        dropped = s.Solver.dropped;
                        x = s.Solver.incumbent;
                        rng = [||];
                      })
          in
          (* Iterations-per-call accounting: [on_call] fires before each
             decision call, so the delta since the previous firing is the
             previous call's iteration count; the last call is flushed
             after the solver returns. *)
          let seen_call = ref false and iters_at_call = ref 0 in
          let bump_call_histogram () =
            if !seen_call then begin
              ctx.hooks.observe_call_iterations (!iters - !iters_at_call);
              iters_at_call := !iters
            end
          in
          let on_call ~call ~threshold =
            bump_call_histogram ();
            seen_call := true;
            ctx.hooks.on_decision_call ();
            Trace.emit ctx.trace ~job:id ~kind:"decision_call"
              [
                ("call", Json.Num (float_of_int call));
                ("threshold", Json.Num threshold);
              ];
            check ()
          in
          let run_solver ?checkpoint backend_v =
            let r =
              Solver.solve_packing ~pool:ctx.pool ~backend:backend_v
                ~mode:spec.Job.mode ~warm ?resume ?checkpoint ~prof ~on_iter
                ~on_call ~eps:spec.Job.eps inst
            in
            bump_call_histogram ();
            let cert =
              Profiler.with_span prof "certify" (fun () ->
                  Certificate.check_dual inst r.Solver.x)
            in
            Trace.emit ctx.trace ~job:id ~kind:"cert_verified"
              [
                ("lambda_max", Json.Num cert.Certificate.lambda_max);
                ("feasible", Json.Bool cert.Certificate.feasible);
              ];
            (r, cert)
          in
          let r, cert = run_solver ?checkpoint spec.Job.backend in
          (* Numerical graceful degradation: an uncertified sketched
             solve gets exactly one resample with a fresh sketch seed —
             an unlucky JL projection should not fail the job — before
             the result is reported uncertified. The resample runs
             without checkpointing (its snapshots would carry the wrong
             backend identity) and caches under its own backend key. *)
          let backend_used, r, cert =
            match spec.Job.backend with
            | Decision.Sketched { seed; sketch_dim }
              when not cert.Certificate.feasible ->
                let fresh = Decision.Sketched { seed = seed + 1; sketch_dim } in
                Psdp_fault.Fault.record Psdp_fault.Fault.Transient;
                ctx.hooks.on_sketch_resample ();
                Trace.emit ctx.trace ~job:id ~kind:"sketch_resample"
                  [
                    ("seed", Json.Num (float_of_int seed));
                    ("fresh_seed", Json.Num (float_of_int (seed + 1)));
                  ];
                let r2, cert2 = run_solver fresh in
                (fresh, r2, cert2)
            | _ -> (spec.Job.backend, r, cert)
          in
          if cert.Certificate.feasible then
            Cache.store ctx.cache
              {
                Cache.digest;
                eps = spec.Job.eps;
                backend = Job.backend_key backend_used;
                mode;
                value = r.Solver.value;
                upper_bound = r.Solver.upper_bound;
                x = r.Solver.x;
                decision_calls = r.Solver.decision_calls;
                iterations = r.Solver.total_iterations;
              };
          Job.Solved
            {
              value = r.Solver.value;
              upper_bound = r.Solver.upper_bound;
              decision_calls = r.Solver.decision_calls;
              iterations = r.Solver.total_iterations;
              cache =
                (if warm_entry <> None then Job.Warm
                 else if parent_entry <> None then Job.Parent
                 else Job.Miss);
              certified = cert.Certificate.feasible;
            })
