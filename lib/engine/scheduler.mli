(** Blocking priority queue feeding the engine's runner domains.

    Higher priority pops first; within a priority class, submission order
    (FIFO). All operations are thread-safe; {!pop} blocks until an item
    is available or the queue is closed {e and} empty — closing does not
    discard queued items, so a drain-then-join shutdown runs everything
    that was accepted. *)

type 'a t

val create : unit -> 'a t

val push : 'a t -> priority:int -> 'a -> unit
(** Raises [Invalid_argument] if the queue is closed. *)

val pop : 'a t -> 'a option
(** Highest-priority item, blocking while the queue is open but empty.
    [None] once the queue is closed and exhausted. *)

val close : 'a t -> unit
(** No further pushes; blocked and future pops drain the remaining items
    and then return [None]. Idempotent. *)

val length : 'a t -> int
(** Items currently queued (not yet popped). *)
