(** Result cache and warm-start store, keyed by instance content.

    Entries are certified packing results keyed by
    [(Loader.digest, ε, backend, mode)]. Two lookups:

    - {!find}: exact key match — a repeated job is answered without any
      solver work, with bitwise-identical [value]/[upper_bound].
    - {!find_warm}: same digest/backend/mode at {e any} ε — the entry's
      certified bracket ([x], [upper_bound]) seeds
      {!Psdp_core.Solver.solve_packing}'s bisection, so an ε-refinement
      (coarse solve, then fine) skips the decision calls that would
      re-derive the coarse bracket. Soundness does not depend on the
      cache being right: the warm [x0] is re-verified by the solver, and
      [upper_bound]s come from certified covering witnesses.

    Optionally persisted as append-only JSONL (one entry per line), so a
    repeated [psdp batch --cache FILE] run starts warm. Malformed or
    alien lines in the file are skipped, not fatal. All operations are
    thread-safe. *)

type entry = {
  digest : string;  (** {!Psdp_instances.Loader.digest} of the instance *)
  eps : float;
  backend : string;  (** canonical key, {!Job.backend_key} *)
  mode : string;  (** canonical key, {!Job.mode_key} *)
  value : float;  (** certified lower bound (‖x‖₁) *)
  upper_bound : float;  (** certified upper bound *)
  x : float array;  (** the certified dual solution *)
  decision_calls : int;
  iterations : int;
}

type t

val create : ?persist:string -> unit -> t
(** [create ~persist ()] loads any existing entries from the JSONL file
    at [persist] and appends future {!store}s to it. Without [persist]
    the cache is memory-only. *)

val find :
  t -> digest:string -> eps:float -> backend:string -> mode:string ->
  entry option
(** Exact-key lookup; most recently stored entry wins. *)

val find_warm :
  ?eps:float ->
  t -> digest:string -> backend:string -> mode:string -> entry option
(** Best warm-start source for the digest at any ε. Without [eps], the
    entry with the smallest [upper_bound] wins (ties broken toward
    larger [value]). With [eps] — the serving path, which knows the
    accuracy it is about to solve at — the entry whose ε is {e closest}
    to the request wins (ties broken by the tightness order): a
    same-regime incumbent is a better seed than a much coarser or much
    finer one. *)

val store : t -> entry -> unit
(** Insert (and append to the persist file, if any). *)

val size : t -> int
(** Number of entries held. *)

type stats = { hits : int; misses : int; warm_hits : int; stores : int }
(** Lifetime traffic counters, mirroring {!Psdp_parallel.Pool.stats}:
    [hits]/[misses] count exact {!find} lookups, [warm_hits] counts
    {!find_warm} lookups that produced a warm-start source, [stores]
    counts {!store}s. A warm-started job contributes one miss {e and}
    one warm hit. *)

val stats : t -> stats
(** Current counter values (monotone). The batch engine mirrors these
    into its metrics registry to expose the cache hit rate. *)

val export_metrics : Psdp_obs.Metrics.t -> t -> unit
(** Snapshot {!stats} (plus {!size}) into the registry as the
    [psdp_cache_hits] / [psdp_cache_misses] / [psdp_cache_warm_hits] /
    [psdp_cache_stores] / [psdp_cache_size] gauges. Idempotent —
    re-registration finds the same series — so callers sample it as
    often as they like (the serve tier does so on every response). The
    gauge names are distinct from the engine's [psdp_cache_*_total]
    counters, so both views can share one registry. *)

val close : t -> unit
(** Flush and close the persist channel, if any. Idempotent; the
    in-memory side stays usable. *)

val entry_to_json : entry -> Psdp_prelude.Json.t
val entry_of_json : Psdp_prelude.Json.t -> (entry, string) result
