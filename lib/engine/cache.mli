(** Result cache and warm-start store, keyed by instance content.

    Entries are certified packing results keyed by
    [(Loader.digest, ε, backend, mode)]. Two lookups:

    - {!find}: exact key match — a repeated job is answered without any
      solver work, with bitwise-identical [value]/[upper_bound].
    - {!find_warm}: same digest/backend/mode at {e any} ε — the entry's
      certified bracket ([x], [upper_bound]) seeds
      {!Psdp_core.Solver.solve_packing}'s bisection, so an ε-refinement
      (coarse solve, then fine) skips the decision calls that would
      re-derive the coarse bracket. Soundness does not depend on the
      cache being right: the warm [x0] is re-verified by the solver, and
      [upper_bound]s come from certified covering witnesses.

    Optionally persisted as append-only JSONL (one entry per line), so a
    repeated [psdp batch --cache FILE] run starts warm. Malformed or
    alien lines in the file are skipped, not fatal. All operations are
    thread-safe. *)

type entry = {
  digest : string;  (** {!Psdp_instances.Loader.digest} of the instance *)
  eps : float;
  backend : string;  (** canonical key, {!Job.backend_key} *)
  mode : string;  (** canonical key, {!Job.mode_key} *)
  value : float;  (** certified lower bound (‖x‖₁) *)
  upper_bound : float;  (** certified upper bound *)
  x : float array;  (** the certified dual solution *)
  decision_calls : int;
  iterations : int;
}

type t

val create : ?persist:string -> unit -> t
(** [create ~persist ()] loads any existing entries from the JSONL file
    at [persist] and appends future {!store}s to it. Without [persist]
    the cache is memory-only. *)

val find :
  t -> digest:string -> eps:float -> backend:string -> mode:string ->
  entry option
(** Exact-key lookup; most recently stored entry wins. *)

val find_warm :
  t -> digest:string -> backend:string -> mode:string -> entry option
(** Best warm-start source for the digest at any ε: the entry with the
    smallest [upper_bound] (ties broken toward larger [value]). *)

val store : t -> entry -> unit
(** Insert (and append to the persist file, if any). *)

val size : t -> int
(** Number of entries held. *)

type stats = { hits : int; misses : int; warm_hits : int; stores : int }
(** Lifetime traffic counters, mirroring {!Psdp_parallel.Pool.stats}:
    [hits]/[misses] count exact {!find} lookups, [warm_hits] counts
    {!find_warm} lookups that produced a warm-start source, [stores]
    counts {!store}s. A warm-started job contributes one miss {e and}
    one warm hit. *)

val stats : t -> stats
(** Current counter values (monotone). The batch engine mirrors these
    into its metrics registry to expose the cache hit rate. *)

val close : t -> unit
(** Flush and close the persist channel, if any. Idempotent; the
    in-memory side stays usable. *)

val entry_to_json : entry -> Psdp_prelude.Json.t
val entry_of_json : Psdp_prelude.Json.t -> (entry, string) result
