(** The job-execution core, shared by every front end that runs solves.

    {!Engine} (the in-process batch service) and the distributed worker
    ([Psdp_dist.Worker], which wraps an engine per node) both ultimately
    execute one {!Job.spec} at a time: load the instance, consult the
    result cache, adopt a recovery snapshot when one provably matches,
    run the solver with checkpoint/trace/metric plumbing, re-verify the
    certificate, and resample an unlucky JL sketch once. This module is
    that shared core, split out of the engine so job {e routing}
    (scheduling, retry, supervision, journaling — [engine.ml]) and job
    {e execution} (this file) evolve independently and the distributed
    layer never forks the solve path.

    Execution is synchronous and policy-free: cancellation, deadlines,
    retries and durability decisions are injected by the caller through
    {!ctx}. Everything here may be called from any domain; the contexts
    hold only domain-safe components. *)

open Psdp_core

exception Cancelled_exn
(** Raised by the caller's [check] to abort between iterations. *)

exception Timed_out_exn
(** Raised by the caller's [check] when the job deadline passed. *)

exception Bad_input of string
(** Instance failed to load or parse — a {e permanent} fault. *)

exception Store_crash of string
(** A [persist] callback failed while checkpointing — a {e transient}
    fault that must not masquerade as a solver verdict. *)

type hooks = {
  on_iteration : unit -> unit;  (** every solver iteration *)
  on_decision_call : unit -> unit;  (** every bisection decision call *)
  observe_call_iterations : int -> unit;
      (** iterations attributed to one finished decision call *)
  on_sketch_resample : unit -> unit;
      (** a failed sketched certificate triggered a fresh-seed rerun *)
}
(** Metric taps. The engine mirrors these into its Prometheus series; a
    bare caller uses {!no_hooks}. *)

val no_hooks : hooks

type ctx = {
  pool : Psdp_parallel.Pool.t;
  cache : Cache.t;
  trace : Trace.sink;
  iter_batch : int;  (** one [iter_batch] trace event per this many iterations *)
  persist : (job:string -> Psdp_store.Snapshot.t -> unit) option;
      (** called after every decision call with the current bisection
          state as a snapshot; the callback decides frequency (via
          [snap.calls]) and durability, and raises {!Store_crash} when
          the store is broken *)
  hooks : hooks;
}

val load_instance : Job.source -> Instance.t
(** Load (or unwrap) a job's instance. Raises {!Bad_input}. *)

val run :
  ctx ->
  ?resume:Psdp_store.Snapshot.t ->
  check:(unit -> unit) ->
  prof:Psdp_obs.Profiler.span ->
  Job.spec ->
  Job.outcome
(** Execute one job to its solver outcome. [check] is evaluated between
    iterations and may raise {!Cancelled_exn} / {!Timed_out_exn} (the
    caller maps those to terminal results). [resume] seeds the bisection
    when the snapshot's digest/ε/backend/mode match the loaded instance
    exactly; a mismatch is traced as [snapshot_rejected] and ignored.
    Raises whatever the solver, [check] or [persist] raise — fault
    classification and retries belong to the caller. *)
