(** Structured telemetry for the batch engine.

    Every observable step of a batch run — job lifecycle, decision calls,
    iteration batches, cache traffic, certificate checks — is emitted as
    one JSON object with a per-sink monotonic timestamp. A sink decides
    where events go: nowhere, an in-memory buffer (tests introspect it),
    or an output channel as JSONL (one compact object per line — the
    format `psdp batch --trace` writes and the bench harness and
    [psdp trace summarize] consume).

    Emission is thread-safe. Events are formatted {e outside} the sink
    mutex; only the timestamp (whose clamp must match write order) and
    the channel write itself are serialized, so runner domains never
    contend on JSON rendering. Timestamps come from the monotonic
    {!Psdp_prelude.Timer.now}, so they are non-decreasing by
    construction; the sink additionally clamps each stamp to be at least
    the previous one as a backstop (and to make [elapsed] monotone with
    the event stream).

    Event schema: [{"t": seconds_since_sink_creation, "kind": str,
    "job": str?, ...kind-specific fields}]. Kinds used by the engine:
    [job_submitted], [job_started], [job_finished], [decision_call],
    [iter_batch], [cache], [cert_verified], [profile] (per-job span
    totals, when a profiler is attached), [engine_started],
    [engine_stopped]; and, when a checkpoint store is attached,
    [checkpoint], [recovery_started], [job_recovered], [resume],
    [snapshot_rejected], [recovery_skipped], [journal_torn]. *)

open Psdp_prelude

type sink

val null : sink
(** Discards everything (the default — telemetry is strictly opt-in). *)

val memory : unit -> sink
(** Buffers events in memory; read them back with {!events}. *)

val channel : ?flush_every:int -> out_channel -> sink
(** Writes each event as one JSON line. [flush_every] (default 1)
    batches flushes: the channel is flushed after every [flush_every]th
    event rather than after each one. The default preserves crash
    post-mortem semantics — a concurrent reader (or a crashed run's
    post-mortem) sees every complete record; raise it to take per-event
    I/O off the emission path on high-frequency traces. The channel is
    not closed by the sink. *)

val enabled : sink -> bool
(** [false] exactly for {!null} — lets callers skip span bookkeeping
    (context derivation, duration math) when telemetry is off. *)

val set_role : sink -> string -> unit
(** Tag every subsequent event with this process's role (e.g.
    ["worker"]) and pid, so merged multi-process streams stay
    attributable. Call once, before the first event. *)

val emit : sink -> ?job:string -> kind:string -> (string * Json.t) list -> unit
(** [emit sink ~job ~kind fields] records one event. [fields] must not
    rebind ["t"], ["kind"] or ["job"]. *)

val span :
  sink ->
  ?job:string ->
  ctx:Psdp_obs.Trace_context.t ->
  name:string ->
  dur:float ->
  (string * Json.t) list ->
  unit
(** Emit a [span] event: a named segment of [dur] seconds whose
    identity and tree position are the given context (its span id is
    this span; its parent id links it under the owner's span). The
    event stamp marks the span's end on the local clock;
    {!Psdp_obs.Trace_assemble} orders strictly by parent links across
    processes. *)

val flush_sink : sink -> unit
(** Force any batched events out to the channel. No-op for {!null} and
    {!memory} sinks. *)

val events : sink -> Json.t list
(** Events recorded so far, oldest first. Empty for {!null} and
    {!channel} sinks. *)

val elapsed : sink -> float
(** Seconds since the sink was created, clamped to be monotone with the
    event stream. *)
