(** Structured telemetry for the batch engine.

    Every observable step of a batch run — job lifecycle, decision calls,
    iteration batches, cache traffic, certificate checks — is emitted as
    one JSON object with a per-sink monotonic timestamp. A sink decides
    where events go: nowhere, an in-memory buffer (tests introspect it),
    or an output channel as JSONL (one compact object per line — the
    format `psdp batch --trace` writes and the bench harness consumes).

    Emission is thread-safe; events from concurrent runner domains are
    serialized by the sink and their timestamps are non-decreasing in
    emission order ([Unix.gettimeofday] is not monotonic under clock
    adjustment, so the sink clamps each stamp to be at least the previous
    one).

    Event schema: [{"t": seconds_since_sink_creation, "kind": str,
    "job": str?, ...kind-specific fields}]. Kinds used by the engine:
    [job_submitted], [job_started], [job_finished], [decision_call],
    [iter_batch], [cache], [cert_verified], [engine_started],
    [engine_stopped]; and, when a checkpoint store is attached,
    [checkpoint], [recovery_started], [job_recovered], [resume],
    [snapshot_rejected], [recovery_skipped], [journal_torn]. *)

open Psdp_prelude

type sink

val null : sink
(** Discards everything (the default — telemetry is strictly opt-in). *)

val memory : unit -> sink
(** Buffers events in memory; read them back with {!events}. *)

val channel : out_channel -> sink
(** Writes each event as one JSON line and flushes, so a concurrent
    reader (or a crashed run's post-mortem) sees complete records. The
    channel is not closed by the sink. *)

val emit : sink -> ?job:string -> kind:string -> (string * Json.t) list -> unit
(** [emit sink ~job ~kind fields] records one event. [fields] must not
    rebind ["t"], ["kind"] or ["job"]. *)

val events : sink -> Json.t list
(** Events recorded so far, oldest first. Empty for {!null} and
    {!channel} sinks. *)

val elapsed : sink -> float
(** Seconds since the sink was created, clamped to be monotone with the
    event stream. *)
