(** The batch-solve engine: a persistent multi-job solve service.

    [psdp solve] pays pool spin-up, normalization and bracketing once per
    process. The engine amortizes all three across a stream of jobs:

    {v
    submit ──▶ scheduler (priority queue) ──▶ runner domains ──▶ results
                                              │        │
                                              ▼        ▼
                                        shared Pool   Cache ⇄ warm start
                                              │
                                              ▼
                                         Trace sink (JSONL)
    v}

    - {b Scheduling}: jobs queue by priority (FIFO within a class) and
      run on [max_in_flight] runner domains — the bounded in-flight
      limit. Pending or running jobs can be {!cancel}led; a job's
      [timeout] turns it into a [Timed_out] result. Cancellation and
      timeouts are checked between solver iterations, so they interrupt
      even a single long-running solve.
    - {b Pool sharing}: all runners issue their parallel loops on one
      shared {!Psdp_parallel.Pool}. At most one job's loop fans out at a
      time; contenders degrade to sequential execution with the identical
      chunk partition, so each job's numbers are independent of scheduling
      (see {!Psdp_parallel.Pool.stats}).
    - {b Caching}: solve results are stored in a {!Cache} keyed by
      instance digest; an exact repeat is answered without solver work,
      and an ε-refinement warm-starts from the certified coarse bracket.
      Decision jobs are not cached (they are single calls already).
    - {b Telemetry}: every step emits a {!Trace} event; the per-job
      counters in [job_finished] match the per-job event stream (as the
      test suite asserts).
    - {b Observability}: with a {!Psdp_obs.Metrics} registry attached,
      the engine feeds counters (jobs submitted / finished by status,
      solver iterations, decision calls, mirrored cache / pool stats),
      gauges (queue depth, jobs in flight, cost-model work / depth) and
      histograms ([psdp_job_seconds], [psdp_decision_iterations]).
      With a {!Psdp_obs.Profiler} attached, each job is profiled into a
      private per-job profiler (runner domains share no span state)
      whose root ["solve"] span covers the whole solve; the per-job
      rows are emitted as a ["profile"] trace event and then merged
      into the shared profiler. Pointing the profiler at the same
      registry puts span histograms in the same Prometheus snapshot.

    Runners re-verify every solve's dual certificate against the
    instance before reporting it, so a cache or warm-start bug can
    surface only as [certified = false], never as a silently wrong
    answer.

    {b Durability}: with a {!Psdp_store.Store} attached, the engine
    writes a WAL record at submission, a solver-state snapshot every
    [checkpoint_every] decision calls, and a terminal record at
    completion. After a crash, {!recover} re-enqueues every job that
    was submitted but never completed, resuming each from its latest
    snapshot once the snapshot's instance digest, ε and backend/mode
    keys are revalidated against the freshly loaded instance (a
    mismatching or corrupt snapshot is traced as [snapshot_rejected]
    and the job reruns cold). A store failure mid-checkpoint fails the
    job {e without} journaling completion, so the work stays
    recoverable. *)

type t

exception Store_crash of string
(** The checkpoint store failed while persisting a snapshot or WAL
    record. Internal: surfaced to results as
    [Failed "checkpoint store: ..."]; the job keeps its pending status
    in the journal. Classified {e transient} by the fault taxonomy, so
    a retry policy covers it. *)

val create :
  ?pool:Psdp_parallel.Pool.t ->
  ?max_in_flight:int ->
  ?cache:Cache.t ->
  ?trace:Trace.sink ->
  ?store:Psdp_store.Store.t ->
  ?checkpoint_every:int ->
  ?paused:bool ->
  ?iter_batch:int ->
  ?metrics:Psdp_obs.Metrics.t ->
  ?profiler:Psdp_obs.Profiler.t ->
  ?on_complete:(Job.result -> unit) ->
  ?retry:Psdp_fault.Retry.policy ->
  ?retry_budget:int ->
  ?quarantine_after:int ->
  ?breaker_threshold:int ->
  unit ->
  t
(** [create ()] spawns [max_in_flight] (default 2) runner domains.
    [pool] defaults to a freshly created pool owned (and shut down) by
    the engine; a caller-supplied pool is shared and left alive.
    [cache] defaults to a fresh memory-only cache; [trace] to
    {!Trace.null}. With [paused = true] runners hold until {!resume} —
    tests use this to make priority ordering deterministic.
    [iter_batch] (default 32) is the telemetry batching period: one
    [iter_batch] event per that many solver iterations. [on_complete]
    fires in the runner domain after each job finishes (any terminal
    status) — [psdp serve] streams results from it.

    [store] (default none — no durability) attaches a checkpoint store;
    the engine appends to its journal and snapshots solver state every
    [checkpoint_every] (default 1) decision calls. The store is not
    owned: the caller closes it after {!shutdown}.

    [metrics] (default none — zero overhead) attaches a metrics
    registry; [profiler] (default none) a span profiler. Neither is
    owned — the caller renders/reports them after {!shutdown} (or
    concurrently: both are domain-safe).

    {b Fault tolerance}: [retry] (default {!Psdp_fault.Retry.no_retry})
    governs how {e transient} faults (store failures, injected faults,
    system errors) are retried per job — decorrelated-jitter backoff
    between attempts; [retry_budget] (default unlimited) caps total
    retries engine-wide. Permanent faults (bad input, violated
    invariants) never retry. Crash-class faults re-raise to the runner's
    supervisor: the job fails as ["runner crashed: ..."], the runner
    restarts ([psdp_runner_restarts_total]), and subsequent jobs are
    unaffected. With [quarantine_after = N], a job whose terminal
    failure consumed at least [N] attempts is poison: it is journaled
    as [Quarantined] (terminal — {!recover} never re-enqueues it, a
    fresh submission releases it), listed by {!quarantined}, and
    reported as [Failed "quarantined after ..."]. [breaker_threshold]
    (default 5) consecutive store faults open a circuit breaker:
    the engine degrades to non-durable mode (journaling and
    checkpointing stop, jobs keep solving) with a [breaker_open] trace
    event and the [psdp_store_breaker_open] gauge set. A sketched solve
    whose certificate fails verification is resampled once with a fresh
    sketch seed ([sketch_resample] trace event) before being reported
    uncertified. *)

type handle

val submit : t -> Job.spec -> handle
(** Enqueue a job. A spec with [id = ""] is assigned
    ["job-<nonce>-<seq>"], where the 8-hex-digit nonce is unique per
    engine (and per process), so auto ids from independently running
    engines — e.g. distributed workers sharing a coordinator journal —
    never collide.
    Raises [Invalid_argument] after {!shutdown}. With a store attached,
    the submission is journaled first; an [Inline] instance is saved
    under the store's [instances/] directory so the journal always
    refers to a reloadable file. *)

val recover : t -> handle list
(** Re-enqueue every pending job from the attached store's journal —
    jobs submitted (possibly by a previous, crashed process) but never
    completed. Each is resumed from its latest valid snapshot, or rerun
    from scratch when it has none (or the snapshot is corrupt or
    belongs to different work). Emits [recovery_started],
    [job_recovered], [recovery_skipped] and [snapshot_rejected] trace
    events. Returns [[]] without a store. Call once, after {!create}
    and before submitting new work, so recovered jobs keep their
    journal identities. *)

val job_id : handle -> string

val cancel : t -> handle -> bool
(** Request cancellation. Pending jobs resolve to [Cancelled] without
    running; running jobs abort at the next iteration boundary. Returns
    [false] if the job had already finished (the result stands). *)

val peek : t -> handle -> Job.result option
(** The result, if the job has finished. Non-blocking. *)

val await : t -> handle -> Job.result
(** Block until the job finishes. Every submitted job terminates (runs,
    fails, cancels or times out), so [await] always returns once the
    engine is running (not paused). *)

val resume : t -> unit
(** Release runners created with [paused = true]. Idempotent. *)

val drain : t -> Job.result list
(** Wait for every job submitted so far; results in submission order. *)

val quarantined : t -> Psdp_store.Store.quarantined list
(** Jobs this engine quarantined, oldest first. (Jobs quarantined by a
    {e previous} process are listed by
    {!Psdp_store.Store.quarantined}.) *)

val store_degraded : t -> bool
(** [true] once the store circuit breaker has opened: the engine is
    running non-durable. *)

val shutdown : t -> unit
(** Stop accepting jobs, run everything still queued, join the runner
    domains, emit [engine_stopped] (with pool contention stats), and
    shut down the pool if the engine owns it. Idempotent. *)

val with_engine :
  ?pool:Psdp_parallel.Pool.t ->
  ?max_in_flight:int ->
  ?cache:Cache.t ->
  ?trace:Trace.sink ->
  ?store:Psdp_store.Store.t ->
  ?checkpoint_every:int ->
  ?iter_batch:int ->
  ?metrics:Psdp_obs.Metrics.t ->
  ?profiler:Psdp_obs.Profiler.t ->
  ?on_complete:(Job.result -> unit) ->
  ?retry:Psdp_fault.Retry.policy ->
  ?retry_budget:int ->
  ?quarantine_after:int ->
  ?breaker_threshold:int ->
  (t -> 'a) ->
  'a
(** [with_engine f] creates an engine, applies [f], and shuts it down
    even if [f] raises. *)

val pool : t -> Psdp_parallel.Pool.t
val cache : t -> Cache.t
val trace : t -> Trace.sink
