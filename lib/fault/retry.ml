open Psdp_prelude

type policy = { max_attempts : int; base : float; cap : float }

let make ?(base = 0.05) ?(cap = 2.0) ~max_attempts () =
  let base = Float.max 0.0 base in
  { max_attempts = max 1 max_attempts; base; cap = Float.max base cap }

let no_retry = make ~base:0.0 ~cap:0.0 ~max_attempts:1 ()
let default = make ~max_attempts:3 ()

(* Decorrelated jitter (Brooker): sleep_{n+1} ~ U(base, 3*sleep_n),
   clamped to cap. Spreads correlated retries apart without the
   synchronized waves plain exponential backoff produces. *)
let backoff p ~rng ~prev =
  if p.cap <= 0.0 then 0.0
  else
    let hi = 3.0 *. Float.max prev p.base in
    let span = Float.max 0.0 (hi -. p.base) in
    Float.min p.cap (p.base +. Rng.float rng span)

type budget = { limit : int option; used : int Atomic.t }

let budget limit = { limit; used = Atomic.make 0 }

let try_consume b =
  match b.limit with
  | None ->
      Atomic.incr b.used;
      true
  | Some n ->
      let rec go () =
        let u = Atomic.get b.used in
        if u >= n then false
        else if Atomic.compare_and_set b.used u (u + 1) then true
        else go ()
      in
      go ()

let consumed b = Atomic.get b.used
