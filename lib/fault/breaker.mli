(** Circuit breaker over a flaky dependency (the checkpoint store).

    [K] consecutive failures open the breaker; while open, callers skip
    the dependency entirely (the engine degrades to non-durable mode)
    instead of paying a fault per job. A success while still closed
    resets the consecutive-failure count. The breaker only reports the
    open transition once ({!tripped}) so the caller can trace a single
    warning. *)

type t

val create : ?threshold:int -> unit -> t
(** [threshold] consecutive failures open the breaker (default 5,
    clamped to >= 1). *)

val is_open : t -> bool

val success : t -> unit
(** Record a successful call; zeroes the consecutive-failure count
    unless the breaker is already open (open is latched until
    {!reset}). *)

val failure : t -> bool
(** Record a failed call. Returns [true] exactly once: on the failure
    that opens the breaker. *)

val failures : t -> int
(** Consecutive failures recorded since the last success. *)

val reset : t -> unit
(** Close the breaker and zero the count (tests / manual override). *)
