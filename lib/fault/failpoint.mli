(** Named failpoint registry — structured fault injection.

    A failpoint is a named hook compiled into a production code path
    ([Store.append], the atomic-write protocol, the solver's decision
    loop, the exp kernels). In normal operation an unarmed failpoint
    costs one atomic load; tests and chaos runs {e arm} points by name
    with a trigger policy and an action, turning deterministic or
    probabilistic fault injection on without touching the code under
    test. This generalizes (and replaced) the old ad-hoc
    [Atomic_io.set_kill_hook]: any subsystem can expose injection sites
    under stable names, and one registry arms them all.

    Registered point names in this codebase:
    - ["store.write.before"], ["store.write.after_write"],
      ["store.write.after_rename"] — the atomic-write kill points
      (argument: the destination path)
    - ["store.write.data"] — the atomic-write payload (data point:
      supports [Corrupt])
    - ["store.append"] — every journal append (argument: journal path)
    - ["solver.decision_call"] — entry of every bisection decision call
    - ["expm.eval"] — every sketched exponential kernel evaluation
    - ["expm.cheb.remainder"] — the certified Chebyshev remainder shift
      (data point: supports [Corrupt]); any tamper deterministically
      breaks the shift's one-sidedness, which the
      [cheb_remainder_sound] QA property catches against dense
      eigendecomposition ground truth
    - ["engine.job_attempt"] — start of every engine job attempt
      (argument: the job id — filter on it to poison one job)
    - ["evaluator.dots.exact"], ["evaluator.dots.sketched"] — the first
      gradient dot product each oracle evaluation produces, per backend
      (data point: supports [Corrupt]); arming exactly one of these is
      how the QA self-test breaks a single solver backend and checks
      that the differential oracle notices

    The registry is global and domain-safe. Trigger counters are
    per-point and survive re-arming only through {!reset}. *)

type trigger =
  | Always  (** fire on every matching evaluation *)
  | Nth of int  (** fire on exactly the [n]-th matching evaluation (1-based) *)
  | Prob of { p : float; seed : int }
      (** fire on each matching evaluation independently with probability
          [p], from a deterministic stream seeded by [seed] *)

type action =
  | Fail of string
      (** raise {!Injected} — a {e transient} fault (see
          {!Fault.classify}) *)
  | Crash of string
      (** raise {!Injected_crash} — classified as a {e crash}, used to
          exercise runner supervision *)
  | Delay of float  (** sleep that many seconds, then continue *)
  | Corrupt
      (** at a data point ({!with_data}), flip one byte of the payload;
          at a unit point ({!hit}), a no-op *)

exception Injected of string
(** Raised by a fired [Fail] action; the message names the point. *)

exception Injected_crash of string
(** Raised by a fired [Crash] action. *)

val arm :
  ?trigger:trigger -> ?filter:(string -> bool) -> string -> action -> unit
(** [arm name action] arms the failpoint [name] (default trigger
    {!Always}). [filter] restricts matching to evaluations whose
    argument satisfies it (e.g. only paths ending in [".snap"]);
    non-matching evaluations neither count nor fire. Re-arming a name
    replaces its entry and resets its counters. *)

val disarm : string -> unit
(** Remove one armed point. Unknown names are ignored. *)

val reset : unit -> unit
(** Disarm everything and zero all counters. Tests call this in
    [Fun.protect] finalizers so injection never leaks across cases. *)

val hit : ?arg:string -> string -> unit
(** Evaluate a unit failpoint. Free (one atomic load) when nothing is
    armed anywhere; a no-op when [name] is not armed or [arg] fails its
    filter. May raise {!Injected} / {!Injected_crash} or sleep,
    according to the armed action. *)

val with_data : ?arg:string -> string -> string -> string
(** [with_data name data] evaluates a data failpoint: behaves like
    {!hit}, and a fired [Corrupt] action returns [data] with one byte
    flipped (other actions return [data] unchanged, after their
    effect). *)

val hits : string -> int
(** Matching evaluations of an armed point since it was armed. [0] for
    unarmed names. *)

val fired : string -> int
(** How often the point's action actually triggered. *)

val armed : unit -> string list
(** Names currently armed, sorted. *)

val is_armed : string -> bool
(** Whether [name] is armed right now — a cheap pre-check that lets hot
    paths skip building a {!with_data} payload when no fault is
    injected. A single atomic load when nothing at all is armed. *)

val arm_spec : string -> (unit, string) result
(** Parse and arm one CLI chaos spec: [NAME=ACTION[@TRIGGER]] with
    [ACTION] one of [fail], [crash], [delay:SECONDS], [corrupt] and
    [TRIGGER] one of [always] (default), [nth:N], [prob:P] or
    [prob:P:SEED]. Examples:
    {v
    store.append=fail@prob:0.1:42
    solver.decision_call=crash@nth:3
    store.write.data=corrupt@nth:1
    v} *)
