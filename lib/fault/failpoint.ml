open Psdp_prelude

type trigger = Always | Nth of int | Prob of { p : float; seed : int }
type action = Fail of string | Crash of string | Delay of float | Corrupt

exception Injected of string
exception Injected_crash of string

type entry = {
  action : action;
  trigger : trigger;
  filter : (string -> bool) option;
  rng : Rng.t option;  (* drawn under the registry lock (Prob only) *)
  mutable hits : int;
  mutable fired : int;
}

(* One global registry. The armed count rides in an atomic so the
   hot-path check in unarmed processes is a single load, never a lock. *)
let table : (string, entry) Hashtbl.t = Hashtbl.create 8
let lock = Mutex.create ()
let armed_count = Atomic.make 0

let locked f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let arm ?(trigger = Always) ?filter name action =
  locked (fun () ->
      if not (Hashtbl.mem table name) then Atomic.incr armed_count;
      let rng =
        match trigger with
        | Prob { seed; _ } -> Some (Rng.create seed)
        | Always | Nth _ -> None
      in
      Hashtbl.replace table name
        { action; trigger; filter; rng; hits = 0; fired = 0 })

let disarm name =
  locked (fun () ->
      if Hashtbl.mem table name then begin
        Hashtbl.remove table name;
        Atomic.decr armed_count
      end)

let reset () =
  locked (fun () ->
      Hashtbl.reset table;
      Atomic.set armed_count 0)

let hits name =
  locked (fun () ->
      match Hashtbl.find_opt table name with Some e -> e.hits | None -> 0)

let fired name =
  locked (fun () ->
      match Hashtbl.find_opt table name with Some e -> e.fired | None -> 0)

let armed () =
  locked (fun () ->
      List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) table []))

let is_armed name =
  Atomic.get armed_count > 0 && locked (fun () -> Hashtbl.mem table name)

(* Decide (under the lock) whether the point fires; the action itself is
   performed by the caller outside the lock, so a Delay never stalls
   other failpoint evaluations. *)
let evaluate name arg =
  locked (fun () ->
      match Hashtbl.find_opt table name with
      | None -> None
      | Some e -> (
          match e.filter with
          | Some keep when not (keep arg) -> None
          | _ ->
              e.hits <- e.hits + 1;
              let fire =
                match e.trigger with
                | Always -> true
                | Nth n -> e.hits = n
                | Prob { p; _ } -> (
                    match e.rng with
                    | Some rng -> Rng.float rng 1.0 < p
                    | None -> false)
              in
              if fire then begin
                e.fired <- e.fired + 1;
                Some e.action
              end
              else None))

let corrupt_bytes data =
  if String.length data = 0 then data
  else begin
    let b = Bytes.of_string data in
    let i = Bytes.length b / 2 in
    Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x40));
    Bytes.to_string b
  end

let perform name data = function
  | Fail msg -> raise (Injected (Printf.sprintf "failpoint %s: %s" name msg))
  | Crash msg ->
      raise (Injected_crash (Printf.sprintf "failpoint %s: %s" name msg))
  | Delay s ->
      Unix.sleepf s;
      data
  | Corrupt -> corrupt_bytes data

let hit ?(arg = "") name =
  if Atomic.get armed_count > 0 then
    match evaluate name arg with
    | None -> ()
    | Some Corrupt -> ()
    | Some action -> ignore (perform name "" action)

let with_data ?(arg = "") name data =
  if Atomic.get armed_count = 0 then data
  else
    match evaluate name arg with
    | None -> data
    | Some action -> perform name data action

(* ------------------------------------------------------------------ *)
(* CLI chaos specs: NAME=ACTION[@TRIGGER] *)

let parse_trigger s =
  match String.split_on_char ':' s with
  | [ "always" ] -> Ok Always
  | [ "nth"; n ] -> (
      match int_of_string_opt n with
      | Some n when n >= 1 -> Ok (Nth n)
      | _ -> Error (Printf.sprintf "bad nth count %S" n))
  | [ "prob"; p ] | [ "prob"; p; _ ] as parts -> (
      let seed =
        match parts with
        | [ _; _; seed ] -> int_of_string_opt seed
        | _ -> Some 1
      in
      match (float_of_string_opt p, seed) with
      | Some p, Some seed when p >= 0.0 && p <= 1.0 -> Ok (Prob { p; seed })
      | _ -> Error (Printf.sprintf "bad probability %S" s))
  | _ -> Error (Printf.sprintf "unknown trigger %S" s)

let parse_action s =
  match String.split_on_char ':' s with
  | [ "fail" ] -> Ok (Fail "injected")
  | [ "crash" ] -> Ok (Crash "injected crash")
  | [ "corrupt" ] -> Ok Corrupt
  | [ "delay"; sec ] -> (
      match float_of_string_opt sec with
      | Some v when v >= 0.0 -> Ok (Delay v)
      | _ -> Error (Printf.sprintf "bad delay %S" sec))
  | _ -> Error (Printf.sprintf "unknown action %S" s)

let arm_spec spec =
  match String.index_opt spec '=' with
  | None -> Error (Printf.sprintf "failpoint spec %S: expected NAME=ACTION" spec)
  | Some i -> (
      let name = String.sub spec 0 i in
      let rest = String.sub spec (i + 1) (String.length spec - i - 1) in
      let action_s, trigger_s =
        match String.index_opt rest '@' with
        | None -> (rest, "always")
        | Some j ->
            ( String.sub rest 0 j,
              String.sub rest (j + 1) (String.length rest - j - 1) )
      in
      if name = "" then Error (Printf.sprintf "failpoint spec %S: empty name" spec)
      else
        match (parse_action action_s, parse_trigger trigger_s) with
        | Ok action, Ok trigger ->
            arm ~trigger name action;
            Ok ()
        | Error e, _ | _, Error e ->
            Error (Printf.sprintf "failpoint spec %S: %s" spec e))
