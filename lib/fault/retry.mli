(** Retry policy: bounded attempts with decorrelated-jitter backoff.

    The engine retries {e transient} faults only (see {!Fault.classify});
    a policy caps attempts per job while a shared {!budget} caps total
    retries per engine so a correlated outage cannot multiply load. *)

type policy = {
  max_attempts : int;  (** total attempts, first try included; >= 1 *)
  base : float;  (** minimum backoff before the 2nd attempt, seconds *)
  cap : float;  (** upper bound on any single backoff, seconds *)
}

val no_retry : policy
(** One attempt, no backoff — the default engine policy, preserving
    pre-fault-layer behaviour. *)

val default : policy
(** Three attempts, 50ms base, 2s cap. *)

val make : ?base:float -> ?cap:float -> max_attempts:int -> unit -> policy
(** Clamps [max_attempts] to at least 1 and [base]/[cap] to
    non-negative (default base 0.05, cap 2.0). *)

val backoff : policy -> rng:Psdp_prelude.Rng.t -> prev:float -> float
(** Next sleep from the decorrelated-jitter scheme:
    [min cap (uniform base (3 * max prev base))]. Pass [~prev:0.] for
    the first backoff. *)

type budget
(** Domain-safe counter of retries an engine may still perform. *)

val budget : int option -> budget
(** [budget (Some n)] allows [n] retries engine-wide; [budget None] is
    unlimited. *)

val try_consume : budget -> bool
(** Take one retry token; [false] when the budget is exhausted (the
    caller must then fail instead of retrying). *)

val consumed : budget -> int
(** Retries granted so far. *)
