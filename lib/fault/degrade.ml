type rung = { at : int; factor : float }

type t = { rungs : rung list; cap : float }

let none = { rungs = []; cap = 0.5 }

let make ?(cap = 0.5) pairs =
  if not (Float.is_finite cap && cap > 0.) then
    Error (Printf.sprintf "degrade: cap must be positive, got %g" cap)
  else
    let rec check prev_at prev_factor = function
      | [] -> Ok ()
      | (at, factor) :: rest ->
          if at <= prev_at then
            Error
              (Printf.sprintf
                 "degrade: thresholds must be positive and strictly \
                  increasing (%d after %d)"
                 at prev_at)
          else if not (Float.is_finite factor) || factor < 1. then
            Error
              (Printf.sprintf "degrade: factor at load %d must be >= 1, got %g"
                 at factor)
          else if factor < prev_factor then
            Error
              (Printf.sprintf
                 "degrade: factors must be non-decreasing (%g after %g)" factor
                 prev_factor)
          else check at factor rest
    in
    match check 0 1. pairs with
    | Error _ as e -> e
    | Ok () ->
        Ok { rungs = List.map (fun (at, factor) -> { at; factor }) pairs; cap }

let rungs t = t.rungs
let cap t = t.cap

let level t ~load =
  let rec go i best = function
    | [] -> best
    | r :: rest -> if load >= r.at then go (i + 1) (i + 1) rest else best
  in
  go 0 0 t.rungs

let factor t ~load =
  match level t ~load with 0 -> 1.0 | l -> (List.nth t.rungs (l - 1)).factor

let apply t ~load v =
  let l = level t ~load in
  if l = 0 then (v, 0)
  else
    let f = (List.nth t.rungs (l - 1)).factor in
    let v' = Float.min (v *. f) t.cap in
    (Float.max v v', l)

let to_string t =
  if t.rungs = [] then "none"
  else
    let body =
      String.concat ","
        (List.map (fun r -> Printf.sprintf "%d:%g" r.at r.factor) t.rungs)
    in
    Printf.sprintf "%s@cap=%g" body t.cap

let parse s =
  let s = String.trim s in
  if s = "" || s = "none" then Ok none
  else
    let body, cap =
      match String.index_opt s '@' with
      | None -> (s, Ok 0.5)
      | Some i ->
          let suffix = String.sub s (i + 1) (String.length s - i - 1) in
          let cap =
            match String.split_on_char '=' suffix with
            | [ "cap"; v ] -> (
                match float_of_string_opt v with
                | Some c -> Ok c
                | None -> Error (Printf.sprintf "degrade: bad cap %S" v))
            | _ ->
                Error
                  (Printf.sprintf "degrade: expected @cap=C suffix, got %S"
                     suffix)
          in
          (String.sub s 0 i, cap)
    in
    match cap with
    | Error _ as e -> e
    | Ok cap -> (
        let parse_rung part =
          match String.split_on_char ':' (String.trim part) with
          | [ a; f ] -> (
              match (int_of_string_opt a, float_of_string_opt f) with
              | Some at, Some factor -> Ok (at, factor)
              | _ -> Error (Printf.sprintf "degrade: bad rung %S" part))
          | _ ->
              Error
                (Printf.sprintf "degrade: rung %S is not AT:FACTOR" part)
        in
        let rec collect acc = function
          | [] -> Ok (List.rev acc)
          | p :: rest -> (
              match parse_rung p with
              | Ok r -> collect (r :: acc) rest
              | Error _ as e -> e)
        in
        match collect [] (String.split_on_char ',' body) with
        | Error _ as e -> e
        | Ok pairs -> make ~cap pairs)
