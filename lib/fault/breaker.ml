type t = {
  threshold : int;
  lock : Mutex.t;
  mutable consecutive : int;
  mutable opened : bool;
}

let create ?(threshold = 5) () =
  { threshold = max 1 threshold; lock = Mutex.create (); consecutive = 0;
    opened = false }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let is_open t = locked t (fun () -> t.opened)

let success t =
  locked t (fun () -> if not t.opened then t.consecutive <- 0)

let failure t =
  locked t (fun () ->
      t.consecutive <- t.consecutive + 1;
      if (not t.opened) && t.consecutive >= t.threshold then begin
        t.opened <- true;
        true
      end
      else false)

let failures t = locked t (fun () -> t.consecutive)

let reset t =
  locked t (fun () ->
      t.opened <- false;
      t.consecutive <- 0)
