(** Bounded, load-keyed degradation ladders.

    A {e ladder} maps a scalar load signal (queue depth, failure streak,
    backlog bytes — any monotone "pressure" integer) to a bounded
    coarsening factor. It generalizes the fault layer's ad-hoc numerical
    degradation moves (Cholesky diagonal shifts, JL resampling) into a
    declared, inspectable policy: rung [i] says "at load >= at_i, multiply
    the controlled quantity by factor_i", and the result is clamped to a
    hard [cap] so no load level can push the system outside its certified
    operating envelope.

    The serve tier uses a ladder over the admission-queue depth to
    coarsen ε: every degraded job is still solved and certified at its
    {e actual} served ε, so degradation trades accuracy for latency
    without ever trading away soundness.

    Ladders are pure values — applying one never mutates state — so the
    same schedule can be consulted concurrently from every runner
    domain. *)

type rung = { at : int; factor : float }
(** "At load >= [at], degrade by [factor]." *)

type t
(** A validated ladder: rung thresholds strictly increasing, factors
    >= 1 and non-decreasing, plus a hard cap on the degraded value. *)

val none : t
(** The empty ladder: never degrades (level 0, factor 1) at any load. *)

val make : ?cap:float -> (int * float) list -> (t, string) result
(** [make ~cap rungs] validates [(at, factor)] pairs: thresholds must be
    positive and strictly increasing, factors >= 1 and non-decreasing.
    [cap] (default 0.5) is the hard ceiling {!apply} clamps to; it must
    be positive. *)

val rungs : t -> rung list
(** The validated rungs, in increasing-threshold order. *)

val cap : t -> float

val level : t -> load:int -> int
(** Index of the deepest rung whose threshold [load] meets, 1-based;
    0 when no rung is triggered (or the ladder is {!none}). *)

val factor : t -> load:int -> float
(** The triggered rung's factor ([1.0] at level 0). *)

val apply : t -> load:int -> float -> float * int
(** [apply t ~load v] returns the degraded value
    [min (v * factor) cap] — never below [v] itself, so an
    already-coarse request is not refined — together with the level that
    produced it. *)

val parse : string -> (t, string) result
(** CLI grammar: ["AT:FACTOR,AT:FACTOR,...[@cap=C]"], e.g.
    ["4:1.5,8:2,16:3@cap=0.5"] — at queue depth 4 coarsen 1.5x, at 8
    coarsen 2x, at 16 coarsen 3x, never past 0.5. The empty string (or
    ["none"]) parses to {!none}. *)

val to_string : t -> string
(** Canonical rendering in the {!parse} grammar (["none"] for the empty
    ladder). *)
