(** Fault taxonomy and ambient fault tallies.

    Every failure the engine absorbs is classified into one of three
    classes, which drive the retry policy:

    - {e Transient}: worth retrying — injected failpoint faults, store
      I/O errors, system errors. The cause is expected to go away.
    - {e Permanent}: retrying cannot help — malformed input, violated
      invariants ([Bad_input], [Failure], [Invalid_argument]).
    - {e Crash}: the executing context itself is suspect — an injected
      crash, [Out_of_memory], [Stack_overflow], [Assert_failure]. The
      job fails without retry and the runner is restarted by its
      supervisor.

    The classifier here only knows generic exceptions; the engine layers
    its own mapping ([Store_crash] → transient, [Bad_input] → permanent)
    in front of it.

    Like the ambient {!Psdp_prelude.Cost} tallies, faults recorded via
    {!record} accumulate in a global, domain-safe counter set that the
    engine mirrors into the metrics registry
    ([psdp_faults_total{class=...}]). *)

type klass = Transient | Permanent | Crash

val klass_label : klass -> string
(** ["transient"], ["permanent"], ["crash"] — stable label values for
    metrics and trace events. *)

val classify : exn -> klass
(** Generic classification: {!Failpoint.Injected} and system errors are
    transient; {!Failpoint.Injected_crash}, [Out_of_memory],
    [Stack_overflow] and [Assert_failure] are crashes; everything else
    (including [Failure] and [Invalid_argument]) is permanent. *)

val record : klass -> unit
(** Bump the ambient tally for [klass]. *)

val count : klass -> int
(** Ambient tally for [klass] since the last {!reset}. *)

val total : unit -> int
(** Sum over all classes. *)

val reset : unit -> unit
(** Zero all tallies (tests). *)
