type klass = Transient | Permanent | Crash

let klass_label = function
  | Transient -> "transient"
  | Permanent -> "permanent"
  | Crash -> "crash"

let classify = function
  | Failpoint.Injected _ -> Transient
  | Failpoint.Injected_crash _ -> Crash
  | Out_of_memory | Stack_overflow | Assert_failure _ -> Crash
  | Sys_error _ | Unix.Unix_error _ -> Transient
  | _ -> Permanent

let transient = Atomic.make 0
let permanent = Atomic.make 0
let crash = Atomic.make 0

let cell = function
  | Transient -> transient
  | Permanent -> permanent
  | Crash -> crash

let record k = Atomic.incr (cell k)
let count k = Atomic.get (cell k)
let total () = count Transient + count Permanent + count Crash

let reset () =
  Atomic.set transient 0;
  Atomic.set permanent 0;
  Atomic.set crash 0
