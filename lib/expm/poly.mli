(** Polynomial approximations of the matrix exponential applied to a
    vector: the paper's truncated Taylor prefix (Lemma 4.2, after [AK07]
    Lemma 6) and the certified Chebyshev expansion that is the default
    hot path (ROADMAP item 4, DESIGN §3.10).

    For PSD [B] with [‖B‖₂ <= κ], the degree-[<k] Taylor prefix
    [p̂(B) = Σ_{0<=i<k} Bⁱ/i!] with [k = max(e²κ, ln(2/ε))] satisfies
    [(1-ε)·exp(B) ≼ p̂(B) ≼ exp(B)]. The Chebyshev expansion reaches the
    same accuracy at degree [≈ κ/2 + O(√(κ·ln(1/ε)))] — several times
    shorter — and {!chebyshev_certified} restores the one-sided operator
    inequality the certificates rely on by computing a rigorous remainder
    bound [r] and shifting the evaluated polynomial to [p(B) + r·I ⪰
    exp(B)]. Each extra degree costs one matvec, and the matvec chain is
    the only sequential dependence — exactly the primitive Theorem 4.1
    prices. *)

open Psdp_linalg

type choice = Taylor | Chebyshev

val default_choice : choice ref
(** Process-wide default polynomial for the exp kernels ({!Big_dot_exp},
    {!Trace_est}). Initially [Chebyshev]; the [--poly taylor] CLI flag
    and {!with_choice} override it. *)

val set_default_choice : choice -> unit

val with_choice : choice -> (unit -> 'a) -> 'a
(** [with_choice c f] runs [f] with the default polynomial set to [c],
    restoring the previous default afterwards (exception-safe). *)

val clamp_kappa : cap:float -> float -> float
(** [clamp_kappa ~cap estimate] is the spectral interval actually handed
    to degree selection: [min cap estimate], except that a non-finite or
    negative [estimate] (e.g. an overflowed λmax upper bound on a spiked
    spectrum) yields [cap] — the analytic Lemma-3.2 bound is always a
    sound interval, a broken cheap estimate never is. Raises
    [Invalid_argument] unless [cap] is finite and positive. *)

val degree : kappa:float -> eps:float -> int
(** [degree ~kappa ~eps] is Lemma 4.2's [k = max(e²·max(1,κ), ln(2/ε))],
    rounded up. Raises [Invalid_argument] unless [eps] in [(0,1)] and
    [kappa] finite and non-negative. *)

val apply : matvec:(Vec.t -> Vec.t) -> degree:int -> Vec.t -> Vec.t
(** [apply ~matvec ~degree v] is [Σ_{0<=i<degree} Bⁱv/i!] using [degree-1]
    invocations of [matvec]. *)

val apply_many :
  matvec_many:(Vec.t array -> Vec.t array) -> degree:int -> Vec.t array -> Vec.t array
(** Panel variant of {!apply}: all columns advance through the chain in
    lockstep, so a batched [matvec_many] (e.g. {!Psdp_sparse.Csr.spmv_many})
    makes one pass over the operator per degree step. Column [r] of the
    result is byte-identical to [apply ~matvec ~degree vs.(r)]. *)

val apply_exp : matvec:(Vec.t -> Vec.t) -> kappa:float -> eps:float -> Vec.t -> Vec.t
(** Convenience: {!apply} with the degree from {!degree}. *)

(** {1 Certified Chebyshev default}

    The Chebyshev series of [e^x] on [[0, κ]] has coefficients
    [c₀ = e^{κ/2}I₀(κ/2)], [c_k = 2e^{κ/2}I_k(κ/2)], all positive; since
    [|T_k| <= 1] the degree-[d] truncation error is at most the tail sum
    [Σ_{k>d} c_k]. {!chebyshev_remainder} bounds that tail rigorously
    (computed coefficients up to a cap, a geometric majorant from
    [I_{k+1}(z) <= I_k(z)·z/(2(k+1))] beyond it, plus floating-point
    slack covering the [O(u·d·e^κ)] evaluation rounding — the
    coefficients are [O(e^κ)] while [p_d(x)] is [Θ(1)] at the spectrum's
    low end, so the cancellation is intrinsic). With [r] that bound,

    [exp(X) ⪯ p_d(X) + r·I ⪯ (1+2r)·exp(X)]

    for any PSD [X] with [‖X‖₂ <= κ]: both sides are functions of the
    same matrix, so the scalar inequalities on [[0, κ]] lift to the
    operator order, and they survive the squaring into Frobenius dots.
    When no degree certifies — [fp_slack] alone exceeds the target at
    large κ — {!chebyshev_certified} returns [None] and callers fall
    back to the Taylor prefix. *)

val chebyshev_coefficients : kappa:float -> degree:int -> float array
(** Coefficients [c₀ … c_degree] of the Chebyshev-series approximation of
    [e^x] on [[0, κ]] (scaled-Bessel values by Miller's downward
    recurrence; [c₀] already includes its conventional ½ factor). *)

val chebyshev_degree : kappa:float -> eps:float -> int
(** Smallest degree whose coefficient tail is below [eps] — determined
    numerically from the coefficient decay, without the certified shift.
    Retained for the EXP9c ablation. *)

val chebyshev_remainder : kappa:float -> degree:int -> float
(** [chebyshev_remainder ~kappa ~degree] is a certified upper bound on
    [max_{x ∈ [0,κ]} |p_degree(x) − e^x|] including evaluation rounding;
    [infinity] when [kappa > 600] (past double precision's reach). *)

val chebyshev_certified : kappa:float -> eps:float -> (int * float) option
(** [chebyshev_certified ~kappa ~eps] is [Some (degree, r)] for the
    smallest degree whose {!chebyshev_remainder} [r] satisfies
    [(1+2r)² <= 1+eps], or [None] when no degree certifies (the caller
    should fall back to {!degree}/{!apply}). *)

val chebyshev_apply :
  matvec:(Vec.t -> Vec.t) -> kappa:float -> degree:int -> Vec.t -> Vec.t
(** Evaluates the (unshifted) Chebyshev approximation of [exp] on a
    vector using the three-term recurrence ([degree] matvecs). *)

val chebyshev_apply_many :
  matvec_many:(Vec.t array -> Vec.t array) ->
  kappa:float ->
  degree:int ->
  Vec.t array ->
  Vec.t array
(** Panel variant of {!chebyshev_apply}; column [r] is byte-identical to
    the column-at-a-time evaluation. *)

val chebyshev_apply_shifted :
  matvec:(Vec.t -> Vec.t) ->
  kappa:float ->
  degree:int ->
  remainder:float ->
  Vec.t ->
  Vec.t
(** [chebyshev_apply_shifted ~remainder] evaluates [p_degree(X)v +
    remainder·v] — the certified one-sided form. Carries the
    ["expm.cheb.remainder"] failpoint: a fired corruption drives the
    shift a unit below zero so differential oracles can prove they catch
    a broken bound. *)

val chebyshev_apply_shifted_many :
  matvec_many:(Vec.t array -> Vec.t array) ->
  kappa:float ->
  degree:int ->
  remainder:float ->
  Vec.t array ->
  Vec.t array
(** Panel variant of {!chebyshev_apply_shifted}. *)

val remainder_failpoint : string
(** ["expm.cheb.remainder"] — the data failpoint name armed by the QA
    chaos self-test. *)
