open Psdp_prelude
open Psdp_linalg

type choice = Taylor | Chebyshev

(* Process-wide default for the exp-kernel polynomial. Chebyshev is the
   default hot path (ROADMAP item 4): the certified variant below keeps
   the one-sided sandwich the certificates need, and callers that cannot
   certify fall back to the Lemma-4.2 Taylor prefix automatically. *)
let default_choice = ref Chebyshev

let set_default_choice c = default_choice := c

let with_choice c f =
  let prev = !default_choice in
  default_choice := c;
  Fun.protect ~finally:(fun () -> default_choice := prev) f

let clamp_kappa ~cap estimate =
  if not (Util.finite cap) || cap <= 0.0 then
    invalid_arg "Poly.clamp_kappa: cap must be finite and positive";
  (* A non-finite or negative estimate (an overflowed λmax upper bound on
     a spiked spectrum, say) must not poison degree selection: the
     analytic cap is always a sound interval. *)
  if not (Util.finite estimate) || estimate < 0.0 then cap
  else Float.min cap estimate

let degree ~kappa ~eps =
  if not (Util.finite kappa) || kappa < 0.0 then
    invalid_arg "Poly.degree: kappa must be finite and non-negative";
  if eps <= 0.0 || eps >= 1.0 then
    invalid_arg "Poly.degree: eps must lie in (0,1)";
  let kappa = Float.max 1.0 kappa in
  let k =
    Float.max (exp 2.0 *. kappa) (log (2.0 /. eps))
  in
  int_of_float (Float.ceil k)

let apply ~matvec ~degree v =
  if degree < 1 then invalid_arg "Poly.apply: degree must be >= 1";
  let acc = Vec.copy v in
  let term = ref (Vec.copy v) in
  for i = 1 to degree - 1 do
    let next = matvec !term in
    Vec.scale_inplace next (1.0 /. float_of_int i);
    Vec.axpy acc ~alpha:1.0 next;
    term := next
  done;
  acc

let apply_exp ~matvec ~kappa ~eps v =
  apply ~matvec ~degree:(degree ~kappa ~eps) v

(* Panel (multi-vector) variant of {!apply}: all columns advance through
   the matvec chain in lockstep, so a batched [matvec_many] makes one
   pass over the operator data per degree step. Per column the arithmetic
   is identical to {!apply} — the differential tests rely on
   byte-for-byte equality with the column-at-a-time loop. *)
let apply_many ~matvec_many ~degree vs =
  if degree < 1 then invalid_arg "Poly.apply_many: degree must be >= 1";
  let accs = Array.map Vec.copy vs in
  let terms = ref (Array.map Vec.copy vs) in
  for i = 1 to degree - 1 do
    let next = matvec_many !terms in
    Array.iteri
      (fun r nr ->
        Vec.scale_inplace nr (1.0 /. float_of_int i);
        Vec.axpy accs.(r) ~alpha:1.0 nr)
      next;
    terms := next
  done;
  accs

(* Chebyshev series of e^x on [0, kappa]: with t = (2x − κ)/κ,
   e^x = e^{κ/2}·e^{(κ/2)t} and the classical expansion
   e^{zt} = I₀(z) + 2 Σ_{k≥1} I_k(z) T_k(t) gives
   c₀ = e^{κ/2}I₀(κ/2), c_k = 2e^{κ/2}I_k(κ/2). The scaled Bessel values
   J_k = I_k(z)/e^z are computed by Miller's downward recurrence
   (normalized through I₀ + 2ΣI_k = e^z), which keeps the tiny tail
   coefficients relatively accurate — a naive quadrature loses them under
   the e^κ dynamic range. *)
let scaled_bessel ~z ~count =
  (* J_k = I_k(z)/e^z for k = 0..count-1. *)
  let start = count + max 20 (int_of_float (2.0 *. sqrt z)) + 20 in
  let i = Array.make (start + 2) 0.0 in
  i.(start + 1) <- 0.0;
  i.(start) <- 1e-280;
  for k = start downto 1 do
    i.(k - 1) <- i.(k + 1) +. (2.0 *. float_of_int k /. z *. i.(k));
    (* Rescale before overflow; relative values are all that matter. *)
    if i.(k - 1) > 1e280 then begin
      let scale_ = 1e-280 in
      for j = k - 1 to start + 1 do
        i.(j) <- i.(j) *. scale_
      done
    end
  done;
  let norm = ref i.(0) in
  for k = 1 to start do
    norm := !norm +. (2.0 *. i.(k))
  done;
  Array.init count (fun k -> i.(k) /. !norm)

let chebyshev_coefficients ~kappa ~degree =
  if degree < 0 then invalid_arg "Poly.chebyshev_coefficients: degree < 0";
  if not (Util.finite kappa) || kappa <= 0.0 then
    invalid_arg "Poly.chebyshev_coefficients: kappa must be positive";
  let z = kappa /. 2.0 in
  let j = scaled_bessel ~z ~count:(degree + 1) in
  (* c_k = 2·e^{κ/2}·I_k(z) = 2·e^{κ/2}·e^z·J_k = 2·e^κ·J_k. *)
  let front = exp kappa in
  Array.init (degree + 1) (fun k ->
      if k = 0 then front *. j.(0) else 2.0 *. front *. j.(k))

(* Largest degree any Chebyshev search will consider. Coefficients are
   negligible past ~κ + O(√κ), so this only binds for pathological κ —
   a clamped caller (see {!clamp_kappa}) never reaches it, and an
   unclamped κ estimate must not allocate κ-sized arrays. *)
let max_search_degree = 8192

let term_cap ~kappa =
  min max_search_degree
    (max 16 (int_of_float (Float.ceil (kappa +. (20.0 *. sqrt kappa)))))

let chebyshev_degree ~kappa ~eps =
  if eps <= 0.0 || eps >= 1.0 then
    invalid_arg "Poly.chebyshev_degree: eps must lie in (0,1)";
  if not (Util.finite kappa) then
    invalid_arg "Poly.chebyshev_degree: kappa must be finite";
  let kappa = Float.max 1.0 kappa in
  (* Coefficients decay super-exponentially past ~kappa/2; search for the
     smallest truncation whose tail bound drops below eps (absolute, and
     hence multiplicative at the spectrum's low end where e^x = Θ(1)). *)
  let cap = term_cap ~kappa in
  let c = chebyshev_coefficients ~kappa ~degree:cap in
  let tail = Array.make (cap + 2) 0.0 in
  for k = cap downto 0 do
    tail.(k) <- tail.(k + 1) +. Float.abs c.(k)
  done;
  let d = ref cap in
  (try
     for k = 0 to cap do
       if tail.(k + 1) <= eps then begin
         d := k;
         raise Exit
       end
     done
   with Exit -> ());
  max 1 !d

(* ------------------------------------------------------------------ *)
(* Certified remainder bound (ROADMAP item 4)

   On [0, κ] with t = (2x−κ)/κ, e^x = Σ_k c_k T_k(t) with c_k =
   2e^{κ/2}I_k(κ/2) > 0 (half weight on c₀). Since |T_k| <= 1, the
   truncation error of the degree-d prefix obeys

     max_{[0,κ]} |p_d(x) − e^x| <= Σ_{k>d} c_k.

   The tail splits into a computed part (d < k <= cap, summed from the
   Miller-recurrence coefficients) and an analytic part beyond the cap:
   term-by-term, I_{k+1}(z) <= I_k(z)·z/(2(k+1)), so past [cap] the
   coefficients are dominated by a geometric series with ratio
   ρ = z/(2(cap+1)) < 1. Three floating-point effects are folded in on
   top: the computed coefficients carry Miller-recurrence rounding, the
   three-term evaluation of p_d(X)v loses up to O(u·d·Σc_k) = O(u·d·e^κ)
   absolutely (the coefficients are O(e^κ) while p_d(x) is Θ(1) at the
   spectrum's low end — the cancellation is intrinsic), and the shift
   addition itself rounds. [fp_slack] bounds all three; when it alone
   exceeds the target (large κ), certification honestly fails and the
   caller falls back to the Taylor prefix. *)

(* e^κ must stay finite and the fp slack meaningful; beyond this no
   degree can certify in double precision anyway. *)
let max_certifiable_kappa = 600.0

let fp_slack ~kappa ~degree =
  1e-14 *. float_of_int (degree + 1) *. exp kappa

let chebyshev_remainder ~kappa ~degree =
  if degree < 1 then invalid_arg "Poly.chebyshev_remainder: degree must be >= 1";
  if not (Util.finite kappa) || kappa <= 0.0 then
    invalid_arg "Poly.chebyshev_remainder: kappa must be positive";
  if kappa > max_certifiable_kappa then infinity
  else begin
    let cap = max (degree + 1) (term_cap ~kappa) in
    let c = chebyshev_coefficients ~kappa ~degree:cap in
    let tail = ref 0.0 in
    for k = cap downto degree + 1 do
      tail := !tail +. Float.abs c.(k)
    done;
    let z = kappa /. 2.0 in
    let rho = z /. (2.0 *. float_of_int (cap + 1)) in
    let beyond =
      if rho < 1.0 then Float.abs c.(cap) *. rho /. (1.0 -. rho) else infinity
    in
    (* 1e-6 relative inflation covers Miller-recurrence rounding in the
       computed tail itself; fp_slack covers evaluation-time rounding. *)
    ((!tail +. beyond) *. (1.0 +. 1e-6)) +. fp_slack ~kappa ~degree
  end

let chebyshev_certified ~kappa ~eps =
  if eps <= 0.0 || eps >= 1.0 then
    invalid_arg "Poly.chebyshev_certified: eps must lie in (0,1)";
  if not (Util.finite kappa) || kappa < 0.0 then
    invalid_arg "Poly.chebyshev_certified: kappa must be finite and non-negative";
  let kappa = Float.max 1.0 kappa in
  if kappa > max_certifiable_kappa then None
  else begin
    (* The shift gives exp(X) ⪯ p_d(X) + r·I ⪯ (1+2r)·exp(X) (pointwise
       on the spectrum, since both are functions of the same matrix and
       e^x >= 1 on [0,κ]). Downstream the evaluation is squared into
       Frobenius dots, so require (1+2r)² <= 1+eps. *)
    let target = (sqrt (1.0 +. eps) -. 1.0) /. 2.0 in
    let cap = term_cap ~kappa in
    let c = chebyshev_coefficients ~kappa ~degree:cap in
    let z = kappa /. 2.0 in
    let rho = z /. (2.0 *. float_of_int (cap + 1)) in
    let beyond =
      if rho < 1.0 then Float.abs c.(cap) *. rho /. (1.0 -. rho) else infinity
    in
    let remainder_at d tail =
      ((tail +. beyond) *. (1.0 +. 1e-6)) +. fp_slack ~kappa ~degree:d
    in
    (* Walk d upward keeping the running tail Σ_{k>d}|c_k|. *)
    let tail = ref 0.0 in
    for k = 2 to cap do
      tail := !tail +. Float.abs c.(k)
    done;
    let found = ref None in
    let d = ref 1 in
    while !found = None && !d <= cap do
      let r = remainder_at !d !tail in
      if r <= target then found := Some (!d, r)
      else begin
        incr d;
        if !d <= cap then tail := Float.max 0.0 (!tail -. Float.abs c.(!d))
      end
    done;
    !found
  end

let chebyshev_apply ~matvec ~kappa ~degree v =
  let c = chebyshev_coefficients ~kappa ~degree in
  (* S = (2/kappa)·Φ − I maps the spectrum into [−1, 1]. *)
  let s u =
    let w = matvec u in
    Vec.scale_inplace w (2.0 /. kappa);
    Vec.axpy w ~alpha:(-1.0) u;
    w
  in
  let acc = Vec.scale c.(0) v in
  if degree >= 1 then begin
    let t_prev = ref (Vec.copy v) in
    let t_curr = ref (s v) in
    Vec.axpy acc ~alpha:c.(1) !t_curr;
    for k = 2 to degree do
      (* T_{k} = 2·S·T_{k−1} − T_{k−2} *)
      let next = s !t_curr in
      Vec.scale_inplace next 2.0;
      Vec.axpy next ~alpha:(-1.0) !t_prev;
      Vec.axpy acc ~alpha:c.(k) next;
      t_prev := !t_curr;
      t_curr := next
    done
  end;
  acc

(* Panel variant of {!chebyshev_apply}; per column the arithmetic is
   identical (the differential tests check byte-for-byte equality). *)
let chebyshev_apply_many ~matvec_many ~kappa ~degree vs =
  let c = chebyshev_coefficients ~kappa ~degree in
  let s us =
    let ws = matvec_many us in
    Array.iteri
      (fun r w ->
        Vec.scale_inplace w (2.0 /. kappa);
        Vec.axpy w ~alpha:(-1.0) us.(r))
      ws;
    ws
  in
  let accs = Array.map (Vec.scale c.(0)) vs in
  if degree >= 1 then begin
    let t_prev = ref (Array.map Vec.copy vs) in
    let t_curr = ref (s vs) in
    Array.iteri (fun r t -> Vec.axpy accs.(r) ~alpha:c.(1) t) !t_curr;
    for k = 2 to degree do
      let next = s !t_curr in
      Array.iteri
        (fun r n ->
          Vec.scale_inplace n 2.0;
          Vec.axpy n ~alpha:(-1.0) !t_prev.(r);
          Vec.axpy accs.(r) ~alpha:c.(k) n)
        next;
      t_prev := !t_curr;
      t_curr := next
    done
  end;
  accs

(* ------------------------------------------------------------------ *)
(* Certified (shifted) evaluation *)

let remainder_failpoint = "expm.cheb.remainder"

(* Fault-injection site for the QA chaos self-test: a fired corruption
   models a broken remainder certificate. A mantissa byte flip of a tiny
   shift would be observationally silent, so any tamper drives the shift
   a full unit below zero — the polynomial loses its one-sidedness by an
   O(1) margin and the differential oracles must notice. *)
(* Any tamper of the remainder payload replaces the shift with a
   deterministic unit-scale negative value: a mantissa-level byte flip
   of a ~1e-2 shift would be observationally silent, and the solver's
   ratio-normalized decisions (dots/trace) absorb any scalar shift, so
   the catchable symptom of a broken bound is the loss of
   one-sidedness itself — p̂(X) − (1+|r|)·I dips below exp(X) wherever
   the spectrum is small, which the [cheb_remainder_sound] QA property
   verifies against dense ground truth. *)
let tampered_shift r =
  if Psdp_fault.Failpoint.is_armed remainder_failpoint then begin
    let raw = Printf.sprintf "%.17g" r in
    let seen = Psdp_fault.Failpoint.with_data remainder_failpoint raw in
    if String.equal seen raw then r else -1.0 -. Float.abs r
  end
  else r

let chebyshev_apply_shifted ~matvec ~kappa ~degree ~remainder v =
  let r = tampered_shift remainder in
  let acc = chebyshev_apply ~matvec ~kappa ~degree v in
  Vec.axpy acc ~alpha:r v;
  acc

let chebyshev_apply_shifted_many ~matvec_many ~kappa ~degree ~remainder vs =
  let r = tampered_shift remainder in
  let accs = chebyshev_apply_many ~matvec_many ~kappa ~degree vs in
  Array.iteri (fun i acc -> Vec.axpy acc ~alpha:r vs.(i)) accs;
  accs
