(** Process-wide exp-kernel counters (psdp_kernel_* series).

    The hot kernels ({!Big_dot_exp}, the panel matvecs) count work into
    lock-free atomics; {!publish} mirrors the totals into a
    {!Psdp_obs.Metrics} registry as monotonic counters. Publishing is
    idempotent ([Metrics.record] raises-to-at-least), so the CLI calls
    it right before every metrics render. *)

val add_matvecs : int -> unit
val record_cheb_eval : unit -> unit
val record_taylor_eval : unit -> unit
val record_taylor_fallback : unit -> unit
val add_panel_columns : int -> unit
val record_gram_pass : unit -> unit

val matvecs : unit -> int
(** Polynomial chain steps: one per (column, degree step) pair. *)

val cheb_evals : unit -> int
val taylor_evals : unit -> int

val taylor_fallbacks : unit -> int
(** How often Chebyshev certification failed and the kernel fell back to
    the Taylor prefix. [cheb_evals + taylor_fallbacks] evaluations were
    requested as Chebyshev; every one of them stayed certified. *)

val panel_columns : unit -> int
val gram_passes : unit -> int

val reset : unit -> unit
(** Zero all counters (benches isolate phases with this). *)

val publish : Psdp_obs.Metrics.t -> unit
(** Mirror the totals into [reg] as [psdp_kernel_*] counters. *)
