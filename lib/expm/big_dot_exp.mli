(** The [bigDotExp] primitive of Theorem 4.1: evaluate all
    [exp(Φ) • Aᵢ] and [Tr exp(Φ)] approximately, in near-linear work.

    Writing [Aᵢ = QᵢQᵢᵀ], [exp(Φ)•Aᵢ = ‖exp(Φ/2)Qᵢ‖²_F]; the algorithm
    replaces [exp(Φ/2)] by the Lemma-4.2 Taylor prefix [p̂] and compresses
    rows with a JL sketch [Π], returning [‖Π p̂(Φ/2) Qᵢ‖²_F]. Row [r] of
    [Π p̂(Φ/2)] is [p̂(Φ/2)·πᵣ] by symmetry, so the whole computation is
    [k] independent chains of [degree] matvecs — depth [O(κ·log(1/ε))]
    times the matvec depth, work [O(k·(degree·q_Φ + q))]. *)

open Psdp_linalg
open Psdp_sparse

type result = {
  dots : float array;  (** [dots.(i) ≈ exp(Φ) • Aᵢ] *)
  trace_estimate : float;  (** [≈ Tr exp(Φ)] *)
  degree : int;  (** polynomial degree actually used *)
}

type polynomial = Taylor | Chebyshev
(** Which polynomial approximates [exp(Φ/2)]: [Taylor] is the paper's
    Lemma 4.2 (one-sided PSD sandwich, degree [Θ(κ)]); [Chebyshev] is the
    extension with degree [≈ κ/4 + O(√κ·ln(1/ε))] — typically 4–7× shorter
    — at the cost of the one-sidedness (see {!Poly}). *)

val compute :
  ?pool:Psdp_parallel.Pool.t ->
  ?poly:polynomial ->
  ?prof:Psdp_obs.Profiler.span ->
  matvec:(Vec.t -> Vec.t) ->
  dim:int ->
  kappa:float ->
  eps:float ->
  sketch:Psdp_sketch.Jl.t ->
  Factored.t array ->
  result
(** [compute ~matvec ~dim ~kappa ~eps ~sketch factors]: [matvec] applies
    [Φ] (symmetric PSD, [‖Φ‖₂ <= kappa]); the sketch must have
    [source_dim = dim]. The polynomial ([poly] defaults to [Taylor]) is
    sized for accuracy [eps/2], leaving the rest of the error budget to
    the sketch. [prof] (default {!Psdp_obs.Profiler.disabled}) charges
    the polynomial chains to an ["expm"] child span and the Gram
    products to a ["gram"] child span. *)

val compute_exact : Mat.t -> Factored.t array -> result
(** Dense reference implementation via the exact eigendecomposition
    ([degree] reported as 0). Used as the test oracle and by the solver's
    exact mode. *)
