(** The [bigDotExp] primitive of Theorem 4.1: evaluate all
    [exp(Φ) • Aᵢ] and [Tr exp(Φ)] approximately, in near-linear work.

    Writing [Aᵢ = QᵢQᵢᵀ], [exp(Φ)•Aᵢ = ‖exp(Φ/2)Qᵢ‖²_F]; the algorithm
    replaces [exp(Φ/2)] by a one-sided polynomial (the certified
    Chebyshev expansion by default, the Lemma-4.2 Taylor prefix on
    request or fallback) and compresses rows with a JL sketch [Π],
    returning [‖Π p̂(Φ/2) Qᵢ‖²_F]. Row [r] of [Π p̂(Φ/2)] is [p̂(Φ/2)·πᵣ]
    by symmetry; with a batched [matvec_many] all [k] chains advance in
    lockstep so each degree step is one pass over the operator data, and
    the Gram stage sweeps each factor's nonzeros once for all columns
    ({!Psdp_sparse.Factored.gram_dot_many}) — work tracks nnz
    (Corollary 1.2). *)

open Psdp_linalg
open Psdp_sparse

type polynomial = Poly.choice = Taylor | Chebyshev
(** Which polynomial approximates [exp(Φ/2)]: [Taylor] is the paper's
    Lemma 4.2 (one-sided PSD sandwich, degree [Θ(κ)]); [Chebyshev] is
    the {e certified} expansion with the one-sided remainder shift
    ({!Poly.chebyshev_certified}) at degree [≈ κ/4 + O(√κ·ln(1/ε))] —
    typically 3–6× fewer matvecs. When certification fails (κ beyond
    double precision's reach) the kernel silently falls back to Taylor,
    so every answer is one-sided either way. *)

type result = {
  dots : float array;  (** [dots.(i) ≈ exp(Φ) • Aᵢ] *)
  trace_estimate : float;  (** [≈ Tr exp(Φ)] *)
  degree : int;  (** polynomial degree actually used *)
  poly_used : polynomial;
      (** which polynomial actually ran (Taylor on fallback) *)
  remainder : float;
      (** the certified one-sided shift [r]; [0] for Taylor and exact *)
  matvecs : int;  (** matvec chain steps spent ([0] for exact) *)
}

val default_poly : unit -> polynomial
(** The process-wide default ({!Poly.default_choice}), initially
    [Chebyshev]. *)

val set_default_poly : polynomial -> unit
(** Override the default — the CLI's [--poly taylor] escape hatch. *)

val with_poly : polynomial -> (unit -> 'a) -> 'a
(** Scoped override, restored on exit (exception-safe). *)

val compute :
  ?pool:Psdp_parallel.Pool.t ->
  ?poly:polynomial ->
  ?prof:Psdp_obs.Profiler.span ->
  ?matvec_many:(Vec.t array -> Vec.t array) ->
  matvec:(Vec.t -> Vec.t) ->
  dim:int ->
  kappa:float ->
  eps:float ->
  sketch:Psdp_sketch.Jl.t ->
  Factored.t array ->
  result
(** [compute ~matvec ~dim ~kappa ~eps ~sketch factors]: [matvec] applies
    [Φ] (symmetric PSD, [‖Φ‖₂ <= kappa]); the sketch must have
    [source_dim = dim]. The polynomial ([poly] defaults to the
    process-wide default, normally [Chebyshev]) is sized for accuracy
    [eps/2], leaving the rest of the error budget to the sketch.
    [matvec_many], when given, must agree with [matvec] column-wise
    (e.g. {!Psdp_sparse.Weighted_gram.apply_many}); the polynomial
    chains then ride one batched pass per degree step and row-level
    parallelism lives inside it. Without it the [k] chains run
    independently under [pool]. Both paths produce byte-identical
    columns. [prof] (default {!Psdp_obs.Profiler.disabled}) charges the
    polynomial chains to an ["expm"] child span and the Gram products to
    a ["gram"] child span. *)

val compute_exact : Mat.t -> Factored.t array -> result
(** Dense reference implementation via the exact eigendecomposition
    ([degree] and [matvecs] reported as 0). Used as the test oracle and
    by the solver's exact mode. *)
