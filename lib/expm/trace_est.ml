open Psdp_prelude
open Psdp_linalg

let check_args ~samples ~dim =
  if samples < 1 then invalid_arg "Trace_est: samples must be >= 1";
  if dim < 1 then invalid_arg "Trace_est: dim must be >= 1"

let rademacher rng dim =
  Array.init dim (fun _ -> if Rng.uniform rng < 0.5 then -1.0 else 1.0)

let estimate ~probe ~rng ~samples ~dim matvec =
  check_args ~samples ~dim;
  let total = ref 0.0 in
  for _ = 1 to samples do
    let z = probe rng dim in
    total := !total +. Vec.dot z (matvec z)
  done;
  !total /. float_of_int samples

let hutchinson ~rng ~samples ~dim matvec =
  estimate ~probe:rademacher ~rng ~samples ~dim matvec

let gaussian ~rng ~samples ~dim matvec =
  estimate ~probe:Rng.gaussian_array ~rng ~samples ~dim matvec

let exp_trace ?matvec_many ~rng ~samples ~dim ~kappa ~eps matvec =
  check_args ~samples ~dim;
  let half_matvec v = Vec.scale 0.5 (matvec v) in
  let half_matvec_many =
    match matvec_many with
    | Some mv ->
        fun vs ->
          let ws = mv vs in
          Array.iter (fun w -> Vec.scale_inplace w 0.5) ws;
          ws
    | None -> fun vs -> Array.map half_matvec vs
  in
  let half_kappa = 0.5 *. Float.max 1.0 kappa in
  (* Same polynomial policy as [Big_dot_exp.compute]: the process-wide
     default, with Taylor fallback when certification is out of reach. *)
  let selection =
    match !Poly.default_choice with
    | Poly.Taylor -> `Taylor (Poly.degree ~kappa:half_kappa ~eps)
    | Poly.Chebyshev -> (
        match Poly.chebyshev_certified ~kappa:half_kappa ~eps with
        | Some (d, r) -> `Chebyshev (d, r)
        | None ->
            Kernel_stats.record_taylor_fallback ();
            `Taylor (Poly.degree ~kappa:half_kappa ~eps))
  in
  (* All probes ride one batched panel: the rng draw order is unchanged
     (probes are drawn before any application either way) and each
     column is byte-identical to the one-at-a-time loop. *)
  let zs = Array.init samples (fun _ -> rademacher rng dim) in
  Kernel_stats.add_panel_columns samples;
  let ws =
    match selection with
    | `Taylor d ->
        Kernel_stats.record_taylor_eval ();
        Kernel_stats.add_matvecs (samples * (d - 1));
        Poly.apply_many ~matvec_many:half_matvec_many ~degree:d zs
    | `Chebyshev (d, r) ->
        Kernel_stats.record_cheb_eval ();
        Kernel_stats.add_matvecs (samples * d);
        Poly.chebyshev_apply_shifted_many ~matvec_many:half_matvec_many
          ~kappa:half_kappa ~degree:d ~remainder:r zs
  in
  let total = ref 0.0 in
  Array.iter (fun w -> total := !total +. Vec.dot w w) ws;
  !total /. float_of_int samples
