open Psdp_prelude
open Psdp_linalg
open Psdp_sparse

type result = { dots : float array; trace_estimate : float; degree : int }
type polynomial = Taylor | Chebyshev

let compute ?(pool = Psdp_parallel.Pool.sequential) ?(poly = Taylor)
    ?(prof = Psdp_obs.Profiler.disabled) ~matvec ~dim ~kappa ~eps ~sketch
    factors =
  Psdp_fault.Failpoint.hit "expm.eval";
  if Psdp_sketch.Jl.source_dim sketch <> dim then
    invalid_arg "Big_dot_exp.compute: sketch dimension mismatch";
  Array.iter
    (fun f ->
      if Factored.dim f <> dim then
        invalid_arg "Big_dot_exp.compute: factor dimension mismatch")
    factors;
  let half_matvec v = Vec.scale 0.5 (matvec v) in
  let half_kappa = 0.5 *. Float.max 1.0 kappa in
  let degree, apply_poly =
    match poly with
    | Taylor ->
        let d = Poly.degree ~kappa:half_kappa ~eps:(eps /. 2.0) in
        (d, fun v -> Poly.apply ~matvec:half_matvec ~degree:d v)
    | Chebyshev ->
        let d = Poly.chebyshev_degree ~kappa:half_kappa ~eps:(eps /. 2.0) in
        (d, fun v ->
            Poly.chebyshev_apply ~matvec:half_matvec ~kappa:half_kappa
              ~degree:d v)
  in
  let k = Psdp_sketch.Jl.target_dim sketch in
  (* z.(r) = p̂(Φ/2) · πᵣ ; the k chains are independent. *)
  let z = Array.make k [||] in
  Psdp_obs.Profiler.with_span prof "expm" (fun () ->
      Psdp_parallel.Pool.parallel_for pool ~grain:1 ~lo:0 ~hi:k (fun r ->
          z.(r) <- apply_poly (Psdp_sketch.Jl.row sketch r)));
  let trace_estimate =
    Util.sum_array (Array.map (fun zr -> Vec.dot zr zr) z)
  in
  let n = Array.length factors in
  let dots = Array.make n 0.0 in
  Psdp_obs.Profiler.with_span prof "gram" (fun () ->
      Psdp_parallel.Pool.parallel_for pool ~grain:1 ~lo:0 ~hi:n (fun i ->
          let qt = Factored.factor_t factors.(i) in
          let s = ref 0.0 in
          for r = 0 to k - 1 do
            let u = Csr.spmv qt z.(r) in
            s := !s +. Vec.dot u u
          done;
          dots.(i) <- !s));
  { dots; trace_estimate; degree }

let compute_exact phi factors =
  let e = Matfun.expm phi in
  let dots = Array.map (fun f -> Factored.dot_dense f e) factors in
  { dots; trace_estimate = Mat.trace e; degree = 0 }
