open Psdp_prelude
open Psdp_linalg
open Psdp_sparse

type polynomial = Poly.choice = Taylor | Chebyshev

type result = {
  dots : float array;
  trace_estimate : float;
  degree : int;
  poly_used : polynomial;
  remainder : float;
  matvecs : int;
}

let default_poly () = !Poly.default_choice
let set_default_poly = Poly.set_default_choice
let with_poly = Poly.with_choice

let compute ?(pool = Psdp_parallel.Pool.sequential) ?poly
    ?(prof = Psdp_obs.Profiler.disabled) ?matvec_many ~matvec ~dim ~kappa ~eps
    ~sketch factors =
  Psdp_fault.Failpoint.hit "expm.eval";
  let poly = match poly with Some p -> p | None -> !Poly.default_choice in
  if Psdp_sketch.Jl.source_dim sketch <> dim then
    invalid_arg "Big_dot_exp.compute: sketch dimension mismatch";
  Array.iter
    (fun f ->
      if Factored.dim f <> dim then
        invalid_arg "Big_dot_exp.compute: factor dimension mismatch")
    factors;
  let half_matvec v = Vec.scale 0.5 (matvec v) in
  let half_matvec_many =
    Option.map
      (fun mv vs ->
        let ws = mv vs in
        Array.iter (fun w -> Vec.scale_inplace w 0.5) ws;
        ws)
      matvec_many
    |> Option.value ~default:(fun vs -> Array.map half_matvec vs)
  in
  let half_kappa = 0.5 *. Float.max 1.0 kappa in
  (* The polynomial is sized for eps/2, leaving the rest of the error
     budget to the sketch; Chebyshev certification that fails (κ past
     double precision's reach) falls back to the Taylor prefix so every
     answer stays one-sided. *)
  let selection =
    match poly with
    | Taylor -> `Taylor (Poly.degree ~kappa:half_kappa ~eps:(eps /. 2.0))
    | Chebyshev -> (
        match Poly.chebyshev_certified ~kappa:half_kappa ~eps:(eps /. 2.0) with
        | Some (d, r) -> `Chebyshev (d, r)
        | None ->
            Kernel_stats.record_taylor_fallback ();
            `Taylor (Poly.degree ~kappa:half_kappa ~eps:(eps /. 2.0)))
  in
  let degree, remainder, poly_used, matvecs_per_chain =
    match selection with
    | `Taylor d -> (d, 0.0, Taylor, d - 1)
    | `Chebyshev (d, r) -> (d, r, Chebyshev, d)
  in
  let k = Psdp_sketch.Jl.target_dim sketch in
  (* z.(r) = p̂(Φ/2) · πᵣ. With a batched matvec all k chains advance in
     lockstep — one pass over the operator data per degree step — and
     the row-level parallelism lives inside [matvec_many]. Without one,
     the k chains are independent and run under the pool. Per column the
     two paths are byte-identical. *)
  let z =
    Psdp_obs.Profiler.with_span prof "expm" (fun () ->
        match matvec_many with
        | Some _ ->
            Kernel_stats.add_panel_columns k;
            let panel = Array.init k (Psdp_sketch.Jl.row sketch) in
            (match selection with
            | `Taylor d ->
                Poly.apply_many ~matvec_many:half_matvec_many ~degree:d panel
            | `Chebyshev (d, r) ->
                Poly.chebyshev_apply_shifted_many ~matvec_many:half_matvec_many
                  ~kappa:half_kappa ~degree:d ~remainder:r panel)
        | None ->
            let apply_poly =
              match selection with
              | `Taylor d -> fun v -> Poly.apply ~matvec:half_matvec ~degree:d v
              | `Chebyshev (d, r) ->
                  fun v ->
                    Poly.chebyshev_apply_shifted ~matvec:half_matvec
                      ~kappa:half_kappa ~degree:d ~remainder:r v
            in
            let z = Array.make k [||] in
            Psdp_parallel.Pool.parallel_for pool ~grain:1 ~lo:0 ~hi:k (fun r ->
                z.(r) <- apply_poly (Psdp_sketch.Jl.row sketch r));
            z)
  in
  Kernel_stats.add_matvecs (k * matvecs_per_chain);
  (match poly_used with
  | Chebyshev -> Kernel_stats.record_cheb_eval ()
  | Taylor -> Kernel_stats.record_taylor_eval ());
  let trace_estimate =
    Util.sum_array (Array.map (fun zr -> Vec.dot zr zr) z)
  in
  let n = Array.length factors in
  let dots = Array.make n 0.0 in
  Psdp_obs.Profiler.with_span prof "gram" (fun () ->
      Psdp_parallel.Pool.parallel_for pool ~grain:1 ~lo:0 ~hi:n (fun i ->
          Kernel_stats.record_gram_pass ();
          dots.(i) <- Factored.gram_dot_many factors.(i) z));
  {
    dots;
    trace_estimate;
    degree;
    poly_used;
    remainder;
    matvecs = k * matvecs_per_chain;
  }

let compute_exact phi factors =
  let e = Matfun.expm phi in
  let dots = Array.map (fun f -> Factored.dot_dense f e) factors in
  {
    dots;
    trace_estimate = Mat.trace e;
    degree = 0;
    poly_used = Taylor;
    remainder = 0.0;
    matvecs = 0;
  }
