(** Stochastic trace estimation.

    The solver's fast path estimates [Tr exp(Φ)] through the same JL
    sketch it uses for the dots; this module provides the classical
    standalone estimators for comparison and for users who only need
    traces: Hutchinson's Rademacher estimator
    [Tr M = E[zᵀMz], z ∈ {±1}^m] and its Gaussian variant. *)

open Psdp_linalg

val hutchinson :
  rng:Psdp_prelude.Rng.t ->
  samples:int ->
  dim:int ->
  (Vec.t -> Vec.t) ->
  float
(** [hutchinson ~rng ~samples ~dim matvec] averages [zᵀ(Mz)] over
    [samples] Rademacher vectors. Unbiased; variance
    [2(‖M‖²_F − Σᵢmᵢᵢ²)/samples]. *)

val gaussian :
  rng:Psdp_prelude.Rng.t ->
  samples:int ->
  dim:int ->
  (Vec.t -> Vec.t) ->
  float
(** Same with standard normal probes (variance [2‖M‖²_F/samples]). *)

val exp_trace :
  ?matvec_many:(Vec.t array -> Vec.t array) ->
  rng:Psdp_prelude.Rng.t ->
  samples:int ->
  dim:int ->
  kappa:float ->
  eps:float ->
  (Vec.t -> Vec.t) ->
  float
(** [exp_trace ~kappa ~eps matvec] estimates [Tr exp(Φ)] for PSD [Φ]
    with [‖Φ‖₂ <= kappa]: Hutchinson probes pushed through a one-sided
    polynomial for [exp(Φ/2)], using [Tr e^Φ = E‖e^{Φ/2}z‖²]. The
    polynomial follows the process-wide default
    ({!Poly.default_choice}): certified Chebyshev with its remainder
    shift, or the Lemma-4.2 Taylor prefix (also the fallback when
    certification is out of double precision's reach). All probes
    advance as one batched panel; [matvec_many], when given, must agree
    column-wise with [matvec] and makes each degree step a single pass
    over the operator data. *)
