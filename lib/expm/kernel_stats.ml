(* Process-wide kernel counters. The exp kernels run deep inside the
   solver where no metrics registry is in scope, so the counters live in
   lock-free atomics here and are mirrored into a registry on demand
   with [Metrics.record] (raise-to-at-least, so repeated publishes never
   double count). *)

type t = {
  matvecs : int Atomic.t;
  cheb_evals : int Atomic.t;
  taylor_evals : int Atomic.t;
  taylor_fallbacks : int Atomic.t;
  panel_columns : int Atomic.t;
  gram_passes : int Atomic.t;
}

let global =
  {
    matvecs = Atomic.make 0;
    cheb_evals = Atomic.make 0;
    taylor_evals = Atomic.make 0;
    taylor_fallbacks = Atomic.make 0;
    panel_columns = Atomic.make 0;
    gram_passes = Atomic.make 0;
  }

let rec fetch_add a n =
  let v = Atomic.get a in
  if not (Atomic.compare_and_set a v (v + n)) then fetch_add a n

let add_matvecs n = fetch_add global.matvecs n
let record_cheb_eval () = fetch_add global.cheb_evals 1
let record_taylor_eval () = fetch_add global.taylor_evals 1
let record_taylor_fallback () = fetch_add global.taylor_fallbacks 1
let add_panel_columns n = fetch_add global.panel_columns n
let record_gram_pass () = fetch_add global.gram_passes 1

let matvecs () = Atomic.get global.matvecs
let cheb_evals () = Atomic.get global.cheb_evals
let taylor_evals () = Atomic.get global.taylor_evals
let taylor_fallbacks () = Atomic.get global.taylor_fallbacks
let panel_columns () = Atomic.get global.panel_columns
let gram_passes () = Atomic.get global.gram_passes

let reset () =
  Atomic.set global.matvecs 0;
  Atomic.set global.cheb_evals 0;
  Atomic.set global.taylor_evals 0;
  Atomic.set global.taylor_fallbacks 0;
  Atomic.set global.panel_columns 0;
  Atomic.set global.gram_passes 0

module Metrics = Psdp_obs.Metrics

let publish reg =
  let mirror name help value =
    Metrics.record (Metrics.counter reg ~help name) value
  in
  mirror "psdp_kernel_matvecs_total"
    "Polynomial matvec chain steps (columns x degree steps)" (matvecs ());
  mirror "psdp_kernel_cheb_evals_total"
    "Exp evaluations served by the certified Chebyshev polynomial"
    (cheb_evals ());
  mirror "psdp_kernel_taylor_evals_total"
    "Exp evaluations served by the Lemma-4.2 Taylor prefix" (taylor_evals ());
  mirror "psdp_kernel_taylor_fallbacks_total"
    "Chebyshev certifications that failed and fell back to Taylor"
    (taylor_fallbacks ());
  mirror "psdp_kernel_panel_columns_total"
    "Sketch columns that rode a batched (panel) matvec pass"
    (panel_columns ());
  mirror "psdp_kernel_gram_passes_total"
    "Batched gram passes (one sweep of a factor's nonzeros for all columns)"
    (gram_passes ())
