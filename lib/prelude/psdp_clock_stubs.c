/* Monotonic clock for Timer.now.
 *
 * OCaml's Unix library exposes only gettimeofday (wall clock, steps
 * backwards under NTP adjustment) and Sys.time (CPU time, over-counts
 * parallel regions).  Interval measurement needs CLOCK_MONOTONIC, which
 * needs one line of C. */

#include <caml/mlvalues.h>
#include <caml/alloc.h>
#include <time.h>

CAMLprim value psdp_monotonic_seconds(value unit)
{
  struct timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  (void)unit;
  return caml_copy_double((double)ts.tv_sec + 1e-9 * (double)ts.tv_nsec);
}
