external monotonic_seconds : unit -> float = "psdp_monotonic_seconds"

let now () = monotonic_seconds ()
let wall () = Unix.gettimeofday ()

let time f =
  let t0 = now () in
  let result = f () in
  (result, now () -. t0)

let time_median ?(repeats = 3) f =
  if repeats < 1 then invalid_arg "Timer.time_median: repeats < 1";
  let samples = Array.make repeats 0.0 in
  let result = ref None in
  for i = 0 to repeats - 1 do
    let r, dt = time f in
    samples.(i) <- dt;
    result := Some r
  done;
  match !result with
  | Some r -> (r, Stats.median samples)
  | None -> assert false
