type t = {
  mutable s0 : int64;
  mutable s1 : int64;
  mutable s2 : int64;
  mutable s3 : int64;
  (* Cached second output of the polar method. *)
  mutable spare : float;
  mutable has_spare : bool;
}

(* splitmix64: expands a single seed into well-distributed 64-bit words,
   the recommended way to seed xoshiro generators. *)
let splitmix64_next state =
  let open Int64 in
  state := add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let of_seed64 seed =
  let state = ref seed in
  let s0 = splitmix64_next state in
  let s1 = splitmix64_next state in
  let s2 = splitmix64_next state in
  let s3 = splitmix64_next state in
  { s0; s1; s2; s3; spare = 0.0; has_spare = false }

let create seed = of_seed64 (Int64.of_int seed)

let rotl x k =
  Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

let bits64 t =
  let open Int64 in
  let result = add (rotl (add t.s0 t.s3) 23) t.s0 in
  let tmp = shift_left t.s1 17 in
  t.s2 <- logxor t.s2 t.s0;
  t.s3 <- logxor t.s3 t.s1;
  t.s1 <- logxor t.s1 t.s2;
  t.s0 <- logxor t.s0 t.s3;
  t.s2 <- logxor t.s2 tmp;
  t.s3 <- rotl t.s3 45;
  result

let split t = of_seed64 (bits64 t)

let state t = [| t.s0; t.s1; t.s2; t.s3 |]

let of_state a =
  if Array.length a <> 4 then invalid_arg "Rng.of_state: expected 4 words";
  if Array.for_all (fun w -> w = 0L) a then
    invalid_arg "Rng.of_state: all-zero state";
  { s0 = a.(0); s1 = a.(1); s2 = a.(2); s3 = a.(3);
    spare = 0.0; has_spare = false }

let copy t =
  { s0 = t.s0; s1 = t.s1; s2 = t.s2; s3 = t.s3;
    spare = t.spare; has_spare = t.has_spare }

let uniform t =
  (* Top 53 bits give a uniform double in [0, 1). *)
  let bits = Int64.shift_right_logical (bits64 t) 11 in
  Int64.to_float bits *. 0x1.0p-53

let float t bound = uniform t *. bound

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection-free for our use: bounds are tiny compared to 2^63, so the
     modulo bias is negligible; still, mask-and-reject keeps it exact. *)
  let mask = Util.ceil_pow2 bound - 1 in
  let rec draw () =
    let r = Int64.to_int (Int64.logand (bits64 t) (Int64.of_int mask)) in
    if r < bound then r else draw ()
  in
  draw ()

let gaussian t =
  if t.has_spare then begin
    t.has_spare <- false;
    t.spare
  end
  else begin
    let rec sample () =
      let u = (2.0 *. uniform t) -. 1.0 in
      let v = (2.0 *. uniform t) -. 1.0 in
      let s = (u *. u) +. (v *. v) in
      if s >= 1.0 || s = 0.0 then sample ()
      else begin
        let factor = sqrt (-2.0 *. log s /. s) in
        t.spare <- v *. factor;
        t.has_spare <- true;
        u *. factor
      end
    in
    sample ()
  end

let gaussian_array t n = Array.init n (fun _ -> gaussian t)

let permutation t n =
  let a = Array.init n (fun i -> i) in
  for i = n - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done;
  a

let choose t a =
  if Array.length a = 0 then invalid_arg "Rng.choose: empty array";
  a.(int t (Array.length a))
