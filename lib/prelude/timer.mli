(** Timing helpers for the solvers, the engine and the benchmark harness. *)

val now : unit -> float
(** Monotonic seconds ([clock_gettime(CLOCK_MONOTONIC)] via a one-line C
    stub — OCaml's [Unix] exposes no monotonic clock). The epoch is
    arbitrary: only differences are meaningful. Unlike
    [Unix.gettimeofday] it never steps backwards under clock adjustment,
    so interval measurements (trace stamps, deadlines, span durations)
    are trustworthy; [Sys.time] would report CPU time, which over-counts
    parallel regions by the number of domains. *)

val wall : unit -> float
(** Wall-clock seconds since the Unix epoch ([Unix.gettimeofday]) — for
    human-facing report timestamps only, never for measuring
    durations. *)

val time : (unit -> 'a) -> 'a * float
(** [time f] is [(f (), elapsed_monotonic_seconds)]. *)

val time_median : ?repeats:int -> (unit -> 'a) -> 'a * float
(** Run [f] [repeats] times (default 3) and report the median elapsed
    time together with the last result. *)
