type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Printing *)

let escape_into buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let num_to_string v =
  if not (Float.is_finite v) then "null"
  else if Float.is_integer v && Float.abs v <= 9.007199254740992e15 then
    Printf.sprintf "%.0f" v
  else
    (* Shortest representation that round-trips through float_of_string. *)
    let s = Printf.sprintf "%.15g" v in
    if float_of_string s = v then s else Printf.sprintf "%.17g" v

let rec print_into buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Num v -> Buffer.add_string buf (num_to_string v)
  | Str s -> escape_into buf s
  | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char buf ',';
          print_into buf v)
        items;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape_into buf k;
          Buffer.add_char buf ':';
          print_into buf v)
        fields;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  print_into buf v;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parsing: recursive descent over the raw string. *)

exception Bad of int * string

let parse_exn text =
  let len = String.length text in
  let pos = ref 0 in
  let fail msg = raise (Bad (!pos, msg)) in
  let peek () = if !pos < len then Some text.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < len
      && match text.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | Some c' -> fail (Printf.sprintf "expected '%c', got '%c'" c c')
    | None -> fail (Printf.sprintf "expected '%c', got end of input" c)
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= len && String.sub text !pos l = word then begin
      pos := !pos + l;
      value
    end
    else fail (Printf.sprintf "expected '%s'" word)
  in
  let hex4 () =
    if !pos + 4 > len then fail "truncated \\u escape";
    let v = ref 0 in
    for _ = 1 to 4 do
      let d =
        match text.[!pos] with
        | '0' .. '9' as c -> Char.code c - Char.code '0'
        | 'a' .. 'f' as c -> Char.code c - Char.code 'a' + 10
        | 'A' .. 'F' as c -> Char.code c - Char.code 'A' + 10
        | _ -> fail "bad hex digit in \\u escape"
      in
      v := (!v * 16) + d;
      advance ()
    done;
    !v
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' ->
          advance ();
          (match peek () with
          | Some '"' -> Buffer.add_char buf '"'; advance ()
          | Some '\\' -> Buffer.add_char buf '\\'; advance ()
          | Some '/' -> Buffer.add_char buf '/'; advance ()
          | Some 'n' -> Buffer.add_char buf '\n'; advance ()
          | Some 't' -> Buffer.add_char buf '\t'; advance ()
          | Some 'r' -> Buffer.add_char buf '\r'; advance ()
          | Some 'b' -> Buffer.add_char buf '\b'; advance ()
          | Some 'f' -> Buffer.add_char buf '\012'; advance ()
          | Some 'u' ->
              advance ();
              let cp = hex4 () in
              let cp =
                (* Combine a UTF-16 surrogate pair when one follows. *)
                if cp >= 0xD800 && cp <= 0xDBFF
                   && !pos + 1 < len
                   && text.[!pos] = '\\'
                   && text.[!pos + 1] = 'u'
                then begin
                  pos := !pos + 2;
                  let lo = hex4 () in
                  if lo >= 0xDC00 && lo <= 0xDFFF then
                    0x10000 + ((cp - 0xD800) lsl 10) + (lo - 0xDC00)
                  else fail "unpaired UTF-16 surrogate"
                end
                else cp
              in
              (match Uchar.of_int cp with
              | u -> Buffer.add_utf_8_uchar buf u
              | exception Invalid_argument _ -> fail "invalid codepoint")
          | _ -> fail "bad escape");
          go ()
      | Some c when Char.code c < 0x20 -> fail "raw control char in string"
      | Some c ->
          Buffer.add_char buf c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let digit () =
      match peek () with
      | Some ('0' .. '9') -> advance (); true
      | _ -> false
    in
    let digits () = if digit () then (while digit () do () done; true) else false in
    if peek () = Some '-' then advance ();
    if not (digits ()) then fail "bad number";
    if peek () = Some '.' then begin
      advance ();
      if not (digits ()) then fail "bad number: digits required after '.'"
    end;
    (match peek () with
    | Some ('e' | 'E') ->
        advance ();
        (match peek () with Some ('+' | '-') -> advance () | _ -> ());
        if not (digits ()) then fail "bad number: bad exponent"
    | _ -> ());
    let v = float_of_string (String.sub text start (!pos - start)) in
    (* Overflowing literals like 1e999 parse to infinity, which the
       printer has no spelling for; reject rather than round-trip badly. *)
    if not (Float.is_finite v) then fail "number out of range";
    v
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin advance (); Obj [] end
        else begin
          let fields = ref [] in
          let rec field () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            fields := (k, v) :: !fields;
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); field ()
            | Some '}' -> advance ()
            | _ -> fail "expected ',' or '}'"
          in
          field ();
          Obj (List.rev !fields)
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin advance (); List [] end
        else begin
          let items = ref [] in
          let rec item () =
            let v = parse_value () in
            items := v :: !items;
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); item ()
            | Some ']' -> advance ()
            | _ -> fail "expected ',' or ']'"
          in
          item ();
          List (List.rev !items)
        end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> Num (parse_number ())
    | Some c -> fail (Printf.sprintf "unexpected character '%c'" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos < len then fail "trailing content after value";
    v
  with
  | v -> v
  | exception Bad (at, msg) ->
      failwith (Printf.sprintf "Json: at offset %d: %s" at msg)

let parse text =
  match parse_exn text with v -> Ok v | exception Failure msg -> Error msg

(* ------------------------------------------------------------------ *)
(* Accessors *)

let mem k = function Obj fields -> List.assoc_opt k fields | _ -> None
let str = function Str s -> Some s | _ -> None
let num = function Num v -> Some v | _ -> None
let bool = function Bool b -> Some b | _ -> None
let list = function List l -> Some l | _ -> None

let int = function
  | Num v when Float.is_integer v && Float.abs v <= 9.007199254740992e15 ->
      Some (int_of_float v)
  | _ -> None
