(** Minimal JSON, from scratch like everything else in this repository.

    The batch engine speaks line-delimited JSON on three surfaces — job
    manifests, result reports, and telemetry traces — and none of the
    preinstalled libraries provide a JSON codec, so this module implements
    the subset of RFC 8259 those surfaces need: the full value grammar on
    input, and a compact single-line printer on output (no newlines ever
    appear inside a printed value, which is what makes JSONL framing
    trivial).

    Numbers are represented as [float]. Integers up to 2⁵³ round-trip
    exactly; non-finite floats print as [null] (JSON has no spelling for
    them). *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val parse : string -> (t, string) result
(** Parse one JSON value (surrounding whitespace allowed, nothing else
    after it). Errors carry a character offset and a description.
    Number literals that overflow to infinity (e.g. [1e999]) are
    rejected: every [Num] a parse produces is finite. *)

val parse_exn : string -> t
(** Like {!parse}; raises [Failure] on malformed input. *)

val to_string : t -> string
(** Compact single-line rendering: no spaces, no newlines, strings
    escaped per RFC 8259. [parse (to_string v)] succeeds for every [v]
    whose numbers are finite. *)

(** {1 Accessors}

    Total lookups used by the decoders in [Psdp_engine.Job]; they return
    [None] rather than raising so callers can produce field-level error
    messages. *)

val mem : string -> t -> t option
(** [mem k (Obj ...)] is the value bound to [k], if any. [None] on
    non-objects. First binding wins if a key repeats. *)

val str : t -> string option
val num : t -> float option
val bool : t -> bool option
val list : t -> t list option

val int : t -> int option
(** [Num] values that are exact integers (within [2⁵³]). *)
