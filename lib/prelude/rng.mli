(** Deterministic, splittable pseudo-random number generation.

    The generator is xoshiro256++ seeded through splitmix64, so every
    experiment in the repository is reproducible from a single integer
    seed, and parallel workers can each draw from an independently split
    stream without sharing mutable state. *)

type t
(** A mutable generator state. Not thread-safe; use {!split} to derive an
    independent stream per domain. *)

val create : int -> t
(** [create seed] builds a generator from an arbitrary integer seed. *)

val split : t -> t
(** [split t] draws from [t] and returns a fresh generator whose stream is
    (computationally) independent of the parent's subsequent output. *)

val copy : t -> t
(** Structural copy; both generators continue the same stream. *)

val state : t -> int64 array
(** The four xoshiro256++ state words, for serialization. The cached
    Gaussian spare is not included. *)

val of_state : int64 array -> t
(** Rebuild a generator from {!state}. The uniform/integer stream
    continues exactly; a pending Gaussian spare is dropped, so the
    Gaussian stream may skip one cached value. Raises [Invalid_argument]
    unless given exactly four words, not all zero. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform on [0 .. bound-1]. Requires [bound > 0]. *)

val float : t -> float -> float
(** [float t bound] is uniform on [[0, bound)]. *)

val uniform : t -> float
(** Uniform on [[0, 1)] with 53 bits of precision. *)

val gaussian : t -> float
(** Standard normal via the Marsaglia polar method. *)

val gaussian_array : t -> int -> float array
(** [gaussian_array t n] is [n] i.i.d. standard normals. *)

val permutation : t -> int -> int array
(** Uniformly random permutation of [0 .. n-1] (Fisher–Yates). *)

val choose : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)
