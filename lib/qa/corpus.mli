(** Persistent failure corpus — JSONL, one entry per distilled failure.

    Every campaign failure is shrunk and then appended here; the same
    file is re-ingested at the start of the next campaign (regression
    pass) and addressed by {!Fuzz.replay}. Entries are self-contained:
    the spec, the property name and the exact failpoint arm-specs that
    were active are enough to reproduce the failure byte-for-byte,
    because every layer underneath (instance generation, the solvers,
    the failpoint trigger streams) is deterministic in its seeds. *)

type entry = {
  id : string;
      (** content hash of (prop, spec, failpoints) — stable across
          campaigns, so duplicates dedupe naturally *)
  prop : string;  (** {!Property.t} name *)
  spec : Spec.t;  (** the (shrunk) failing instance spec *)
  failpoints : string list;
      (** [Psdp_fault.Failpoint.arm_spec] strings active during the
          check ([[]] for organic failures) *)
  message : string;  (** the oracle's failure message *)
  shrink_steps : int;  (** how many shrink steps distilled the spec *)
}

val id_of : prop:string -> spec:Spec.t -> failpoints:string list -> string
(** 12-hex-char digest of the canonical content. *)

val make :
  prop:string ->
  spec:Spec.t ->
  failpoints:string list ->
  message:string ->
  shrink_steps:int ->
  entry

val to_json : entry -> Psdp_prelude.Json.t
val of_json : Psdp_prelude.Json.t -> (entry, string) result

val append : string -> entry -> unit
(** Append one entry as a single JSONL line to the given path, creating
    the file if needed. *)

val load : string -> (entry list, string) result
(** All entries, in file order; a missing file is [Ok []]; a malformed
    line is an [Error] naming the line number. Blank lines are
    skipped. *)

val find : entries:entry list -> string -> entry option
(** Look up an entry by id (exact match, or unique prefix of length
    [>= 4]). *)
