open Psdp_prelude
module Metrics = Psdp_obs.Metrics
module Failpoint = Psdp_fault.Failpoint

type config = {
  seed : int;
  budget : float;
  max_cases : int;
  props : Property.t list;
  focus : Spec.t list;
  corpus_path : string option;
  failpoint_specs : string list;
  registry : Metrics.t option;
  log : string -> unit;
}

let default =
  {
    seed = 0;
    budget = 10.0;
    max_cases = 200;
    props = Property.all;
    focus = [];
    corpus_path = None;
    failpoint_specs = [];
    registry = None;
    log = ignore;
  }

type failure = { entry : Corpus.entry; replay : string option }

type outcome = {
  cases : int;
  checks : int;
  failures : failure list;
  regressions : failure list;
  elapsed : float;
}

let replay_command ~seed ~corpus ~id =
  Printf.sprintf "SEED=%d psdp fuzz --replay %s --corpus %s" seed id
    (Filename.quote corpus)

(* ------------------------------------------------------------------ *)
(* Metrics *)

type meters = {
  m_cases : Metrics.counter;
  m_shrinks : Metrics.counter;
  m_regressions : Metrics.counter;
  m_seconds : Metrics.histogram;
  m_checks : string -> Metrics.counter;
  m_failures : string -> Metrics.counter;
}

let meters_of registry =
  Option.map
    (fun reg ->
      {
        m_cases =
          Metrics.counter reg ~help:"Sampled fuzz cases" "psdp_fuzz_cases_total";
        m_shrinks =
          Metrics.counter reg ~help:"Shrink probes that ran"
            "psdp_fuzz_shrink_steps_total";
        m_regressions =
          Metrics.counter reg ~help:"Corpus entries that still fail"
            "psdp_fuzz_regressions_total";
        m_seconds =
          Metrics.histogram reg ~help:"Per-check wall time"
            "psdp_fuzz_check_seconds";
        m_checks =
          (fun prop ->
            Metrics.counter reg ~help:"Property evaluations"
              ~labels:[ ("prop", prop) ] "psdp_fuzz_checks_total");
        m_failures =
          (fun prop ->
            Metrics.counter reg ~help:"Distinct distilled failures"
              ~labels:[ ("prop", prop) ] "psdp_fuzz_failures_total");
      })
    registry

let with_meters meters f = Option.iter f meters

(* ------------------------------------------------------------------ *)
(* Hermetic single checks *)

(* Arming resets per-point counters and the Prob trigger stream, so each
   check sees the exact same injection schedule — the root of the
   byte-for-byte replay guarantee. *)
let arm_all specs =
  Failpoint.reset ();
  List.iter
    (fun s ->
      match Failpoint.arm_spec s with
      | Ok () -> ()
      | Error e -> invalid_arg ("fuzz: failpoint spec: " ^ e))
    specs

(* [Some message] when the property fails on [spec] under [failpoints];
   oracle errors and escaped exceptions are both failures. *)
let check_once ~meters ~checks ~failpoints (prop : Property.t) spec =
  arm_all failpoints;
  incr checks;
  let t0 = Timer.now () in
  let verdict =
    match prop.Property.check spec with
    | Ok () -> None
    | Error msg -> Some msg
    | exception e -> Some (Printf.sprintf "exception: %s" (Printexc.to_string e))
  in
  with_meters meters (fun m ->
      Metrics.observe m.m_seconds (Timer.now () -. t0);
      Metrics.inc (m.m_checks prop.Property.name));
  verdict

let max_shrink_steps = 200

let shrink ~meters ~checks ~failpoints prop spec message =
  let rec go spec message steps =
    if steps >= max_shrink_steps then (spec, message, steps)
    else
      let next =
        List.find_map
          (fun candidate ->
            with_meters meters (fun m -> Metrics.inc m.m_shrinks);
            Option.map
              (fun msg -> (candidate, msg))
              (check_once ~meters ~checks ~failpoints prop candidate))
          (Spec.shrink spec)
      in
      match next with
      | None -> (spec, message, steps)
      | Some (candidate, msg) -> go candidate msg (steps + 1)
  in
  go spec message 0

(* ------------------------------------------------------------------ *)
(* Campaign *)

let validate_failpoints specs =
  let rec go = function
    | [] -> Ok ()
    | s :: tl -> (
        match Failpoint.arm_spec s with
        | Ok () -> go tl
        | Error e -> Error (Printf.sprintf "bad failpoint spec %S: %s" s e))
  in
  let r = go specs in
  Failpoint.reset ();
  r

let run config =
  let ( let* ) = Result.bind in
  let* () = validate_failpoints config.failpoint_specs in
  let* corpus_entries =
    match config.corpus_path with
    | None -> Ok []
    | Some path -> Corpus.load path
  in
  let meters = meters_of config.registry in
  let started = Timer.now () in
  let deadline =
    if config.budget > 0.0 then Some (started +. config.budget) else None
  in
  let expired () =
    match deadline with None -> false | Some d -> Timer.now () > d
  in
  let checks = ref 0 in
  let replay_of entry =
    Option.map
      (fun corpus ->
        replay_command ~seed:config.seed ~corpus ~id:entry.Corpus.id)
      config.corpus_path
  in
  Fun.protect ~finally:Failpoint.reset @@ fun () ->
  (* Regression pass: previously distilled failures, replayed under
     their own recorded failpoints. Entries that still fail are
     reported but not re-appended (their id is already present). *)
  let regressions =
    List.filter_map
      (fun (entry : Corpus.entry) ->
        if expired () then None
        else
          match Property.find entry.Corpus.prop with
          | None ->
              config.log
                (Printf.sprintf "corpus %s: unknown property %s, skipped"
                   entry.Corpus.id entry.Corpus.prop);
              None
          | Some prop -> (
              match
                check_once ~meters ~checks
                  ~failpoints:entry.Corpus.failpoints prop entry.Corpus.spec
              with
              | None -> None
              | Some message ->
                  with_meters meters (fun m -> Metrics.inc m.m_regressions);
                  config.log
                    (Printf.sprintf "regression %s: %s still fails: %s"
                       entry.Corpus.id entry.Corpus.prop message);
                  Some { entry = { entry with Corpus.message }; replay = replay_of entry }))
      corpus_entries
  in
  (* Campaign pass. *)
  let rng = Rng.create config.seed in
  let known_ids =
    List.fold_left
      (fun acc (e : Corpus.entry) -> e.Corpus.id :: acc)
      [] corpus_entries
  in
  let seen = Hashtbl.create 16 in
  List.iter (fun id -> Hashtbl.replace seen id ()) known_ids;
  let failures = ref [] in
  let cases = ref 0 in
  let focus = Array.of_list config.focus in
  while !cases < config.max_cases && not (expired ()) do
       let spec =
         if Array.length focus > 0 then focus.(!cases mod Array.length focus)
         else Spec.sample rng
       in
       List.iter
         (fun (prop : Property.t) ->
           if prop.Property.applies spec && not (expired ()) then
             match
               check_once ~meters ~checks
                 ~failpoints:config.failpoint_specs prop spec
             with
             | None -> ()
             | Some message ->
                 let spec, message, steps =
                   shrink ~meters ~checks
                     ~failpoints:config.failpoint_specs prop spec message
                 in
                 let entry =
                   Corpus.make ~prop:prop.Property.name ~spec
                     ~failpoints:config.failpoint_specs ~message
                     ~shrink_steps:steps
                 in
                 if not (Hashtbl.mem seen entry.Corpus.id) then begin
                   Hashtbl.replace seen entry.Corpus.id ();
                   with_meters meters (fun m ->
                       Metrics.inc (m.m_failures prop.Property.name));
                   Option.iter
                     (fun path -> Corpus.append path entry)
                     config.corpus_path;
                   let replay = replay_of entry in
                   failures := { entry; replay } :: !failures;
                   config.log
                     (Printf.sprintf "FAIL %s %s after %d shrinks: %s"
                        prop.Property.name (Spec.to_string spec) steps message);
                   Option.iter config.log replay
                 end)
         config.props;
    incr cases;
    with_meters meters (fun m -> Metrics.inc m.m_cases)
  done;
  Ok
    {
      cases = !cases;
      checks = !checks;
      failures = List.rev !failures;
      regressions;
      elapsed = Timer.now () -. started;
    }

(* ------------------------------------------------------------------ *)
(* Replay *)

type replay_result = Reproduced of string | Not_reproduced

let replay ?registry ~corpus ~id () =
  let ( let* ) = Result.bind in
  let* entries = Corpus.load corpus in
  let* entry =
    match Corpus.find ~entries id with
    | Some e -> Ok e
    | None -> Error (Printf.sprintf "corpus %s: no entry with id %s" corpus id)
  in
  let* prop =
    match Property.find entry.Corpus.prop with
    | Some p -> Ok p
    | None ->
        Error
          (Printf.sprintf "corpus entry %s names unknown property %S"
             entry.Corpus.id entry.Corpus.prop)
  in
  let meters = meters_of registry in
  let checks = ref 0 in
  Fun.protect ~finally:Failpoint.reset @@ fun () ->
  match
    check_once ~meters ~checks ~failpoints:entry.Corpus.failpoints prop
      entry.Corpus.spec
  with
  | Some message ->
      with_meters meters (fun m ->
          Metrics.inc (m.m_failures prop.Property.name));
      Ok (Reproduced message, entry)
  | None -> Ok (Not_reproduced, entry)
