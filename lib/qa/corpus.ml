open Psdp_prelude

type entry = {
  id : string;
  prop : string;
  spec : Spec.t;
  failpoints : string list;
  message : string;
  shrink_steps : int;
}

let id_of ~prop ~spec ~failpoints =
  let canonical =
    String.concat "|" (prop :: Spec.to_string spec :: failpoints)
  in
  String.sub (Digest.to_hex (Digest.string canonical)) 0 12

let make ~prop ~spec ~failpoints ~message ~shrink_steps =
  { id = id_of ~prop ~spec ~failpoints; prop; spec; failpoints; message; shrink_steps }

let to_json e =
  Json.Obj
    [
      ("id", Json.Str e.id);
      ("prop", Json.Str e.prop);
      ("spec", Spec.to_json e.spec);
      ("failpoints", Json.List (List.map (fun s -> Json.Str s) e.failpoints));
      ("message", Json.Str e.message);
      ("shrink_steps", Json.Num (float_of_int e.shrink_steps));
    ]

let of_json j =
  let ( let* ) = Result.bind in
  let field name conv =
    match Option.bind (Json.mem name j) conv with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "corpus entry: missing or bad field %S" name)
  in
  let* id = field "id" Json.str in
  let* prop = field "prop" Json.str in
  let* spec_json =
    match Json.mem "spec" j with
    | Some s -> Ok s
    | None -> Error "corpus entry: missing field \"spec\""
  in
  let* spec = Spec.of_json spec_json in
  let* failpoints =
    match Option.bind (Json.mem "failpoints" j) Json.list with
    | None -> Ok []
    | Some items ->
        let rec strs acc = function
          | [] -> Ok (List.rev acc)
          | it :: tl -> (
              match Json.str it with
              | Some s -> strs (s :: acc) tl
              | None -> Error "corpus entry: non-string failpoint spec")
        in
        strs [] items
  in
  let* message = field "message" Json.str in
  let* shrink_steps =
    match Json.mem "shrink_steps" j with
    | None -> Ok 0
    | Some v -> (
        match Json.int v with
        | Some i -> Ok i
        | None -> Error "corpus entry: bad field \"shrink_steps\"")
  in
  Ok { id; prop; spec; failpoints; message; shrink_steps }

let append path e =
  let oc =
    open_out_gen [ Open_wronly; Open_append; Open_creat ] 0o644 path
  in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (Json.to_string (to_json e));
      output_char oc '\n')

let load path =
  if not (Sys.file_exists path) then Ok []
  else begin
    let ic = open_in path in
    let lines = ref [] in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        try
          while true do
            lines := input_line ic :: !lines
          done
        with End_of_file -> ());
    let ( let* ) = Result.bind in
    let rec decode acc lineno = function
      | [] -> Ok (List.rev acc)
      | line :: tl ->
          if String.trim line = "" then decode acc (lineno + 1) tl
          else
            let* j =
              Result.map_error
                (fun e -> Printf.sprintf "%s:%d: %s" path lineno e)
                (Json.parse line)
            in
            let* e =
              Result.map_error
                (fun e -> Printf.sprintf "%s:%d: %s" path lineno e)
                (of_json j)
            in
            decode (e :: acc) (lineno + 1) tl
    in
    decode [] 1 (List.rev !lines)
  end

let find ~entries id =
  match List.find_opt (fun e -> e.id = id) entries with
  | Some e -> Some e
  | None ->
      if String.length id < 4 then None
      else begin
        let prefixed =
          List.filter
            (fun e ->
              String.length e.id >= String.length id
              && String.sub e.id 0 (String.length id) = id)
            entries
        in
        match prefixed with [ e ] -> Some e | _ -> None
      end
