(** Differential oracles and metamorphic invariants.

    Every check takes a {!Spec.t}, materializes the instance(s) it needs
    and returns [Ok ()] or [Error msg]. Checks only rely on {e certified}
    facts: each solver run returns a verified bracket [value <= OPT <=
    upper_bound], so two independent runs of anything that brackets the
    same optimum must produce intersecting brackets — no oracle ever
    assumes a particular trajectory, iteration count or float-for-float
    agreement between backends.

    Differential oracles (three independently-derived answers per
    instance, plus the scalar LP solver and closed-form optima):
    {!backends_agree}, {!bucketed_agrees}, {!lp_oracle}, {!known_opt},
    {!resume_replay}. Metamorphic invariants (paper-level equivariances
    shared with [ALO15]/[JY12]): {!scale_equivariance},
    {!permutation_equivariance}, {!congruence_equivariance},
    {!eps_refinement}, {!certificates_verify}. *)

type check = Spec.t -> (unit, string) result

val eps : float
(** Accuracy every oracle solve uses (0.3 — cheap, and all tolerances
    derive from it). *)

val backends_agree : check
(** Dense-exact {!Psdp_core.Solver.solve_packing}, the JL-sketched
    backend (Theorem 4.1) and the width-dependent MMW baseline must
    produce pairwise-intersecting certified brackets, each with relative
    gap at most [(1+eps)] (plus verification slack). *)

val bucketed_agrees : check
(** A {!Psdp_core.Bucketed} decision at the geometric midpoint of the
    exact solve's bracket must not contradict that bracket: a dual
    outcome's implied lower bound stays below [upper_bound], a primal
    outcome's implied upper bound stays above [value]. *)

val lp_oracle : check
(** Diagonal instances only: the independent scalar LP solver
    ({!Psdp_core.Lp}, Young's algorithm) and the SDP solver bracket the
    same optimum (paper §1.2). *)

val known_opt : check
(** Families with analytic optima: the certified bracket contains OPT,
    and [value >= OPT/(1+eps)] up to verification slack. *)

val taylor_chebyshev_agree : check
(** The certified-Chebyshev default and the Lemma-4.2 Taylor prefix are
    independent one-sided polynomials for the same [exp(Φ/2)]: sketched
    solves under each (same sketch seed) must produce intersecting
    certified brackets. *)

val cheb_remainder_sound : check
(** On generated spectral intervals [[0, κ]] the certified Chebyshev
    remainder is sound against dense eigendecomposition ground truth:
    [p̂(X) + r·I − exp(X)] is PSD with operator norm at most [2r]. This
    is the oracle that catches a corrupted remainder shift
    ({!Psdp_expm.Poly.remainder_failpoint}): the solver's
    ratio-normalized decisions absorb scalar shifts, so a broken bound
    is observable only as lost one-sidedness. *)

val resume_replay : check
(** Crash-consistency: interrupt a checkpointed
    {!Psdp_core.Solver.solve_packing} after an intermediate decision
    call, resume from the captured {!Psdp_core.Solver.bisection_state},
    and require the resumed solve to reproduce the uninterrupted run's
    bracket and call count exactly (the bisection is deterministic). *)

val scale_equivariance : check
(** [OPT(v·A) = OPT(A)/v]: solve both, unscale, brackets must
    intersect. The scale factor is drawn deterministically from the
    spec's seed. *)

val permutation_equivariance : check
(** Permuting the constraints leaves the bracket (up to tolerance)
    unchanged. *)

val congruence_equivariance : check
(** [Aᵢ ↦ U Aᵢ Uᵀ] for orthonormal [U] preserves the optimum (the
    spectrum of [Σ xᵢAᵢ] is invariant); brackets must intersect. *)

val eps_refinement : check
(** Solving at [eps] and [eps/2] yields valid intersecting brackets
    whose relative gaps respect their respective [(1+ε)] guarantees —
    accuracy is monotone in ε. *)

val warm_start_equivalence : check
(** Warm-starting a drifted instance from the undrifted parent's
    incumbent ({!Psdp_core.Solver.warm_start} with [upper = None], the
    serve tier's lineage path) yields a valid certified bracket that
    intersects the cold solve's bracket and respects the same [(1+ε)]
    gap — warm starts change cost, never the answer. *)

val certificates_verify : check
(** The decision procedure's outcome on the normalized instance
    re-verifies against {!Psdp_core.Certificate} (dual feasible with
    [‖x‖₁ >= 1−ε], or primal [min dot >= 1−ε]), and the optimizer's
    incumbent is dual-feasible. *)
