type t = {
  name : string;
  doc : string;
  applies : Spec.t -> bool;
  check : Oracle.check;
}

let always _ = true

let diagonal_only (s : Spec.t) =
  match s.Spec.family with
  | Spec.Diagonal _ | Spec.Diagonal_identities -> true
  | _ -> false

let has_known_opt (s : Spec.t) =
  match s.Spec.family with
  | Spec.Diagonal_identities | Spec.Graph_cycle | Spec.Known_projectors
  | Spec.Known_rank_one | Spec.Known_simplex ->
      true
  | _ -> false

let all =
  [
    {
      name = "backends_agree";
      doc =
        "exact, JL-sketched and width-dependent-baseline solves produce \
         intersecting certified brackets";
      applies = always;
      check = Oracle.backends_agree;
    };
    {
      name = "bucketed_agrees";
      doc =
        "a bucketed-step decision at the exact bracket's midpoint never \
         contradicts the bracket";
      applies = always;
      check = Oracle.bucketed_agrees;
    };
    {
      name = "lp_oracle";
      doc =
        "diagonal SDPs and the independent scalar LP solver bracket the same \
         optimum (paper \xc2\xa71.2)";
      applies = diagonal_only;
      check = Oracle.lp_oracle;
    };
    {
      name = "known_opt";
      doc = "certified brackets contain the family's closed-form optimum";
      applies = has_known_opt;
      check = Oracle.known_opt;
    };
    {
      name = "taylor_chebyshev_agree";
      doc =
        "the certified-Chebyshev default and the Lemma-4.2 Taylor prefix \
         produce intersecting certified brackets at matched accuracy \
         (catches a corrupted remainder shift)";
      applies = always;
      check = Oracle.taylor_chebyshev_agree;
    };
    {
      name = "cheb_remainder_sound";
      doc =
        "on generated spectral intervals the certified Chebyshev remainder \
         is one-sided and tight against dense eigendecomposition ground \
         truth: p\xcc\x82(X)+rI\xe2\x88\x92exp(X) is PSD with norm <= 2r";
      applies = always;
      check = Oracle.cheb_remainder_sound;
    };
    {
      name = "resume_replay";
      doc =
        "resuming an interrupted checkpointed solve reproduces the \
         uninterrupted bracket exactly";
      applies = always;
      check = Oracle.resume_replay;
    };
    {
      name = "scale_equivariance";
      doc = "OPT(v\xc2\xb7A) = OPT(A)/v through certified brackets";
      applies = always;
      check = Oracle.scale_equivariance;
    };
    {
      name = "permutation_equivariance";
      doc = "constraint order does not move the certified bracket";
      applies = always;
      check = Oracle.permutation_equivariance;
    };
    {
      name = "congruence_equivariance";
      doc = "orthogonal congruence A \xe2\x86\xa6 UAU\xe1\xb5\x80 preserves the optimum";
      applies = always;
      check = Oracle.congruence_equivariance;
    };
    {
      name = "eps_refinement";
      doc = "halving eps yields a nested-accuracy, still-consistent bracket";
      applies = always;
      check = Oracle.eps_refinement;
    };
    {
      name = "warm_start_equivalence";
      doc =
        "warm-starting a drifted instance from its parent's incumbent \
         moves cost, not the certified bracket (serve-tier lineage \
         soundness)";
      applies = always;
      check = Oracle.warm_start_equivalence;
    };
    {
      name = "certificates_verify";
      doc = "decision outcomes and solver incumbents re-verify independently";
      applies = always;
      check = Oracle.certificates_verify;
    };
    {
      name = "wire_roundtrip";
      doc =
        "distributed wire codecs (frame + JSON payloads) round-trip job \
         specs, results and binary blobs byte-for-byte";
      applies = always;
      check = Wire.roundtrip;
    };
    {
      name = "trace_context_roundtrip";
      doc =
        "trace contexts round-trip the string codec and Submit frames \
         byte-for-byte; any single-bit damage to the context string \
         degrades to a fresh root (trace = None), never a frame failure";
      applies = always;
      check = Wire.trace_ctx;
    };
    {
      name = "wire_corruption";
      doc =
        "the frame decoder rejects single-bit corruption at every byte, \
         truncation, trailing garbage and oversized declared lengths";
      applies = always;
      check = Wire.corruption;
    };
    {
      name = "replication_frame_roundtrip";
      doc =
        "WAL replication and fencing frames (Rep_hello/Rep_snapshot/\
         Rep_append/Rep_ack/Takeover, epoch-bearing Hello/Welcome) \
         round-trip byte-for-byte, the hex byte codec is inverse on \
         arbitrary binary, and every single-bit corruption of a \
         Rep_append frame is caught by the FNV trailer";
      applies = always;
      check = Wire.replication;
    };
  ]

let find name = List.find_opt (fun p -> p.name = name) all
let names () = List.map (fun p -> p.name) all

let select = function
  | [] -> Ok all
  | wanted ->
      let rec resolve acc = function
        | [] -> Ok (List.rev acc)
        | n :: tl -> (
            match find n with
            | Some p -> resolve (p :: acc) tl
            | None ->
                Error
                  (Printf.sprintf "unknown property %S (known: %s)" n
                     (String.concat ", " (names ()))))
      in
      resolve [] wanted
