open Psdp_prelude
module Frame = Psdp_dist.Frame
module Proto = Psdp_dist.Proto
module Job = Psdp_engine.Job
module Decision = Psdp_core.Decision
module Trace_context = Psdp_obs.Trace_context

let fail fmt = Printf.ksprintf (fun m -> Error m) fmt

(* Deterministic payload pool for a spec: sizes scale with the spec's
   shape (so shrinking the spec shrinks the frames) plus the fixed edge
   cases 0 and 1. *)
let payloads (spec : Spec.t) =
  let rng = Rng.create (spec.Spec.seed lxor 0x51F3) in
  let blob size = String.init size (fun _ -> Char.chr (Rng.int rng 256)) in
  Json.to_string (Spec.to_json spec)
  :: List.map blob [ 0; 1; spec.Spec.dim; (spec.Spec.dim * spec.Spec.n) + 3 ]

(* A job spec exercising the fields the wire must carry; varied by the
   instance spec's seed so campaigns cover both backends and ops. *)
let wire_spec (spec : Spec.t) =
  let seed = spec.Spec.seed in
  let backend =
    if seed land 1 = 0 then Decision.Exact
    else
      Decision.Sketched
        { seed; sketch_dim = (if seed land 2 = 0 then None else Some 7) }
  in
  let mode =
    if seed land 4 = 0 then Decision.Adaptive { check_every = 10 }
    else Decision.Faithful
  in
  let source = Job.File ("instances/" ^ Spec.family_name spec.Spec.family) in
  if seed land 8 = 0 then
    Job.solve_spec ~id:(Printf.sprintf "qa-%d" seed) ~eps:0.25 ~backend ~mode
      ~priority:(seed mod 7) ~timeout:4.5 source
  else
    Job.decide_spec ~id:(Printf.sprintf "qa-%d" seed) ~eps:0.25 ~backend ~mode
      ~threshold:1.5 source

let results (spec : Spec.t) =
  let seed = spec.Spec.seed in
  [
    {
      Job.id = "r-solved";
      outcome =
        Job.Solved
          {
            value = float_of_int seed *. 0.125;
            upper_bound = (float_of_int seed *. 0.125) +. 0.5;
            decision_calls = seed mod 13;
            iterations = seed mod 9973;
            cache =
              (match seed mod 4 with
              | 0 -> Job.Hit
              | 1 -> Job.Warm
              | 2 -> Job.Parent
              | _ -> Job.Miss);
            certified = seed land 16 = 0;
          };
      elapsed = 0.0625;
    };
    (* A rejected decision at an unbounded threshold carries bound = inf,
       which JSON can only spell as null — the codec must survive it. *)
    {
      Job.id = "r-rejected";
      outcome =
        Job.Decided
          { accepted = false; bound = Float.infinity; iterations = 41 };
      elapsed = 0.125;
    };
    { Job.id = "r-failed"; outcome = Job.Failed "injected"; elapsed = 0.25 };
    { Job.id = "r-cancelled"; outcome = Job.Cancelled; elapsed = 0.0 };
    { Job.id = "r-timeout"; outcome = Job.Timed_out; elapsed = 1.5 };
  ]

let roundtrip_frame ~tag payload =
  let frame = Frame.encode ~tag payload in
  match Frame.decode_exact frame with
  | Error e -> fail "frame %d/%dB: decode failed: %s" tag
                 (String.length payload) (Frame.error_to_string e)
  | Ok (tag', payload') ->
      if tag' <> tag then fail "frame: tag %d decoded as %d" tag tag'
      else if payload' <> payload then
        fail "frame %d/%dB: payload mutated in flight" tag
          (String.length payload)
      else Ok ()

let roundtrip_msg msg =
  match Frame.decode_exact (Proto.encode msg) with
  | Error e ->
      fail "proto %s: frame decode failed: %s" (Proto.describe msg)
        (Frame.error_to_string e)
  | Ok (tag, payload) -> (
      match Proto.decode ~tag payload with
      | Error e -> fail "proto %s: payload decode failed: %s"
                     (Proto.describe msg) e
      | Ok msg' ->
          if msg' = msg then Ok ()
          else
            fail "proto %s: decoded as %s" (Proto.describe msg)
              (Proto.describe msg'))

let roundtrip (spec : Spec.t) =
  let ( let* ) = Result.bind in
  let* () =
    List.fold_left
      (fun acc p ->
        Result.bind acc (fun () ->
            roundtrip_frame ~tag:(String.length p mod 256) p))
      (Ok ()) (payloads spec)
  in
  let* () = roundtrip_msg (Proto.Submit { spec = wire_spec spec; epoch = 0 }) in
  let* () =
    roundtrip_msg
      (Proto.Submit { spec = wire_spec spec; epoch = 1 + (spec.Spec.seed mod 7) })
  in
  let* () =
    List.fold_left
      (fun acc r -> Result.bind acc (fun () ->
           roundtrip_msg (Proto.Result { result = r })))
      (Ok ()) (results spec)
  in
  let* () =
    roundtrip_msg
      (Proto.Hello
         {
           worker = "w-1";
           capacity = 1 + (spec.Spec.n mod 8);
           fence = spec.Spec.seed mod 5;
         })
  in
  let* () =
    roundtrip_msg
      (Proto.Welcome
         { coordinator = "qa"; heartbeat_every = 0.25; epoch = spec.Spec.n mod 4 })
  in
  let* () =
    roundtrip_msg (Proto.Heartbeat { worker = "w-1"; inflight = spec.Spec.dim })
  in
  let* () = roundtrip_msg Proto.Heartbeat_ack in
  let* () = roundtrip_msg (Proto.Goodbye { reason = "qa done" }) in
  let* () = roundtrip_msg (Proto.Error_msg { message = "qa error" }) in
  roundtrip_msg Proto.Shutdown

let corruption (spec : Spec.t) =
  let rng = Rng.create (spec.Spec.seed lxor 0x0C0F) in
  let payload =
    String.init
      ((spec.Spec.dim mod 64) + 5)
      (fun _ -> Char.chr (Rng.int rng 256))
  in
  let frame = Frame.encode ~tag:(spec.Spec.seed mod 256) payload in
  let n = String.length frame in
  let flipped = ref (Ok ()) in
  (* Every byte position, one flipped bit: FNV-1a's absorption step is a
     state bijection, so single-byte damage is always detectable — and
     the decoder must actually reject it, wherever it lands. *)
  for i = 0 to n - 1 do
    if !flipped = Ok () then begin
      let bit = 1 lsl (i mod 8) in
      let corrupt =
        String.mapi
          (fun j c -> if j = i then Char.chr (Char.code c lxor bit) else c)
          frame
      in
      match Frame.decode_exact corrupt with
      | Error _ -> ()
      | Ok _ -> flipped := fail "flip of byte %d/%d went undetected" i n
    end
  done;
  let ( let* ) = Result.bind in
  let* () = !flipped in
  (* Truncation: every proper prefix must be rejected, not decoded. *)
  let truncated = ref (Ok ()) in
  let step = max 1 (n / 17) in
  let i = ref 0 in
  while !i < n do
    (if !truncated = Ok () then
       match Frame.decode_exact (String.sub frame 0 !i) with
       | Error _ -> ()
       | Ok _ -> truncated := fail "prefix of %d/%d bytes decoded" !i n);
    i := !i + step
  done;
  let* () = !truncated in
  (* Trailing garbage is not silently swallowed. *)
  let* () =
    match Frame.decode_exact (frame ^ "x") with
    | Error _ -> Ok ()
    | Ok _ -> fail "frame with trailing garbage decoded"
  in
  (* The length field is bounded before any allocation happens: a frame
     declaring more than max_payload must be refused as Oversized. *)
  match Frame.decode_exact ~max_payload:4 frame with
  | Error (Frame.Oversized { length; limit }) ->
      if length = String.length payload && limit = 4 then Ok ()
      else fail "oversized error misreports: length=%d limit=%d" length limit
  | Error e ->
      fail "oversized frame rejected as %s, not Oversized"
        (Frame.error_to_string e)
  | Ok _ -> fail "frame above max_payload decoded"

(* ------------------------------------------------------------------ *)
(* Trace-context propagation *)

let hex rng n = String.init n (fun _ -> "0123456789abcdef".[Rng.int rng 16])

let with_trace_field j s =
  match j with
  | Json.Obj fields ->
      Json.Obj
        (List.map
           (fun (k, v) -> if k = "trace" then (k, Json.Str s) else (k, v))
           fields)
  | other -> other

let trace_ctx (spec : Spec.t) =
  let ( let* ) = Result.bind in
  let seed = spec.Spec.seed in
  let rng = Rng.create (seed lxor 0x7C47) in
  (* Deterministic ids so a corpus entry replays the exact context; the
     leading trace-id digit is forced nonzero to dodge the (valid)
     all-zero rejection. *)
  let trace_id =
    String.make 1 "123456789abcdef".[Rng.int rng 15] ^ hex rng 31
  in
  let span_id = hex rng 16 in
  let parent = if seed land 1 = 0 then None else Some (hex rng 16) in
  let sampled = seed land 2 = 0 in
  let* ctx =
    match Trace_context.of_parts ~trace_id ~span_id ?parent ~sampled () with
    | Some c -> Ok c
    | None ->
        fail "of_parts rejected valid ids %s/%s" trace_id span_id
  in
  let s = Trace_context.to_string ctx in
  (* The string codec is inverse on valid contexts. *)
  let* () =
    match Trace_context.of_string s with
    | Some c when Trace_context.equal c ctx -> Ok ()
    | Some _ -> fail "context %s reparsed as a different context" s
    | None -> fail "context %s failed to reparse" s
  in
  (* A Submit frame carries the context byte-for-byte. *)
  let spec_out = { (wire_spec spec) with Job.trace = Some ctx } in
  let* () =
    match
      Frame.decode_exact
        (Proto.encode (Proto.Submit { spec = spec_out; epoch = 0 }))
    with
    | Error e ->
        fail "submit-with-trace: frame decode failed: %s"
          (Frame.error_to_string e)
    | Ok (tag, payload) -> (
        match Proto.decode ~tag payload with
        | Error e -> fail "submit-with-trace: payload decode failed: %s" e
        | Ok (Proto.Submit { spec = spec'; _ }) -> (
            match spec'.Job.trace with
            | Some c when Trace_context.to_string c = s -> Ok ()
            | Some c ->
                fail "context mutated in flight: %s -> %s" s
                  (Trace_context.to_string c)
            | None -> fail "context dropped in flight")
        | Ok other ->
            fail "submit-with-trace decoded as %s" (Proto.describe other))
  in
  let* spec_json =
    match Job.spec_to_json spec_out with
    | Ok j -> Ok j
    | Error e -> fail "spec_to_json: %s" e
  in
  (* Single-bit damage at every bit of every byte of the context string:
     the in-string check must reject it, and a spec JSON carrying the
     damaged string must still decode — with [trace = None] (the
     receiver mints a fresh root), never as a frame or spec failure.
     Frame-level flips are the [corruption] property's business; here
     the string is damaged before encoding, which JSON string escaping
     carries losslessly whatever byte the flip produced. *)
  let n = String.length s in
  let outcome = ref (Ok ()) in
  for i = 0 to n - 1 do
    for b = 0 to 7 do
      if !outcome = Ok () then begin
        let damaged =
          String.mapi
            (fun j c ->
              if j = i then Char.chr (Char.code c lxor (1 lsl b)) else c)
            s
        in
        (match Trace_context.of_string damaged with
        | None -> ()
        | Some _ ->
            outcome := fail "bit %d of byte %d: damaged context parsed" b i);
        if !outcome = Ok () then begin
          let payload = Json.to_string (with_trace_field spec_json damaged) in
          let frame = Frame.encode ~tag:3 (* Submit *) payload in
          match Frame.decode_exact frame with
          | Error e ->
              outcome :=
                fail "bit %d of byte %d: frame decode failed: %s" b i
                  (Frame.error_to_string e)
          | Ok (tag, payload') -> (
              match Proto.decode ~tag payload' with
              | Ok (Proto.Submit { spec = spec'; _ }) ->
                  if spec'.Job.trace <> None then
                    outcome :=
                      fail "bit %d of byte %d: damaged context accepted" b i
              | Ok other ->
                  outcome :=
                    fail "bit %d of byte %d: decoded as %s" b i
                      (Proto.describe other)
              | Error e ->
                  outcome :=
                    fail
                      "bit %d of byte %d: damaged context failed the spec: %s"
                      b i e)
        end
      end
    done
  done;
  !outcome

(* ------------------------------------------------------------------ *)
(* Replication stream *)

(* The frames that carry the WAL to a standby, and the epoch fields
   that fence reigns, must survive the wire byte-for-byte — a replica
   journal diverging silently would defeat the whole failover design.
   Journal bytes travel hex-encoded, so the check feeds the codec raw
   binary: newlines (the journal's record separator), NULs, bit-7
   bytes, and the empty string. *)
let replication (spec : Spec.t) =
  let ( let* ) = Result.bind in
  let seed = spec.Spec.seed in
  let rng = Rng.create (seed lxor 0x9E97) in
  let blobs =
    [
      "";
      "\n";
      "\x00\xff\x80\n";
      "{\"kind\":\"epoch\",\"epoch\":3}\n";
      String.init ((spec.Spec.dim mod 96) + 7) (fun _ ->
          Char.chr (Rng.int rng 256));
    ]
  in
  (* The hex codec is inverse on every byte string, and rejects what no
     encoder produces. *)
  let* () =
    List.fold_left
      (fun acc blob ->
        Result.bind acc (fun () ->
            match Proto.hex_decode (Proto.hex_encode blob) with
            | Some b when b = blob -> Ok ()
            | Some _ -> fail "hex codec mutated a %dB blob" (String.length blob)
            | None -> fail "hex codec rejected its own %dB output"
                        (String.length blob)))
      (Ok ()) blobs
  in
  let* () =
    match Proto.hex_decode "abc" with
    | None -> Ok ()
    | Some _ -> fail "odd-length hex accepted"
  in
  let* () =
    match Proto.hex_decode "0g" with
    | None -> Ok ()
    | Some _ -> fail "non-hex digit accepted"
  in
  (* Every replication / fencing message roundtrips structurally. *)
  let epoch = seed mod 11 in
  let offset = (seed * 37) mod 100_000 in
  let* () =
    List.fold_left
      (fun acc msg -> Result.bind acc (fun () -> roundtrip_msg msg))
      (Ok ())
      (List.concat_map
         (fun blob ->
           [
             Proto.Rep_snapshot { epoch; data = blob };
             Proto.Rep_append { epoch; offset; data = blob };
           ])
         blobs
      @ [
          Proto.Rep_hello { standby = Printf.sprintf "sb-%d" seed };
          Proto.Rep_ack { offset };
          Proto.Takeover;
          Proto.Hello { worker = "w-ha"; capacity = 2; fence = epoch };
          Proto.Welcome
            { coordinator = "ha"; heartbeat_every = 0.5; epoch };
        ])
  in
  (* Negative offsets and lengths no encoder emits must be refused. *)
  let* () =
    match Proto.decode ~tag:13 "{\"offset\":-1}" with
    | Error _ -> Ok ()
    | Ok _ -> fail "negative rep_ack offset accepted"
  in
  let* () =
    match
      Proto.decode ~tag:12 "{\"epoch\":1,\"offset\":-4,\"data\":\"00\"}"
    with
    | Error _ -> Ok ()
    | Ok _ -> fail "negative rep_append offset accepted"
  in
  (* Single-bit damage anywhere in an encoded Rep_append frame — header,
     hex payload, trailer — must be caught by the FNV-1a trailer before
     any replica byte is written. *)
  let frame =
    Proto.encode
      (Proto.Rep_append { epoch; offset; data = List.nth blobs 4 })
  in
  let n = String.length frame in
  let outcome = ref (Ok ()) in
  for i = 0 to n - 1 do
    if !outcome = Ok () then begin
      let bit = 1 lsl (i mod 8) in
      let corrupt =
        String.mapi
          (fun j c -> if j = i then Char.chr (Char.code c lxor bit) else c)
          frame
      in
      match Frame.decode_exact corrupt with
      | Error _ -> ()
      | Ok _ ->
          outcome :=
            fail "rep_append: flip of byte %d/%d went undetected" i n
    end
  done;
  !outcome
