(** Conformance properties for the distributed wire codecs.

    Both checks are driven by an instance {!Spec} like every other
    property — payload shapes and sizes derive from the spec's
    dimensions and seed, so shrinking a failing case shrinks the wire
    payloads with it, and a corpus entry replays the exact bytes. *)

val roundtrip : Oracle.check
(** Frame and JSON payload codecs are mutually inverse: binary blobs,
    job specs (both backends, both ops) and every result status
    round-trip byte-for-byte through {!Psdp_dist.Frame} +
    {!Psdp_dist.Proto} — including the non-finite [bound] a rejected
    decision can carry, which JSON spells [null]. *)

val corruption : Oracle.check
(** The frame decoder rejects every single-bit corruption at {e every}
    byte position of an encoded frame, every proper prefix
    (truncation), trailing garbage, and frames whose declared payload
    length exceeds the reader's limit (checked before allocation). *)

val trace_ctx : Oracle.check
(** Trace contexts survive the wire and corruption degrades, never
    fails: a deterministic {!Psdp_obs.Trace_context} round-trips the
    string codec and a [Submit] frame byte-for-byte, while every
    single-bit flip of the context {e string} (damaged before
    encoding, unlike [corruption]'s frame-level flips) is rejected by
    the in-string check — the spec still decodes, with [trace = None],
    so the receiver mints a fresh root instead of failing the frame. *)

val replication : Oracle.check
(** The WAL replication and fencing frames are trustworthy: the hex
    byte codec is inverse on arbitrary binary (newlines, NULs, high
    bytes, empty) and rejects non-hex input; [Rep_hello] /
    [Rep_snapshot] / [Rep_append] / [Rep_ack] / [Takeover] and the
    epoch-bearing [Hello]/[Welcome] round-trip structurally; negative
    offsets are refused; and every single-bit corruption of an encoded
    [Rep_append] frame is caught by the FNV-1a trailer before a
    replica byte could be written. *)
