(** The named-property registry the fuzz driver iterates.

    Each property pairs an {!Oracle} check with an applicability filter
    (the LP oracle only makes sense on diagonal instances, the known-OPT
    oracle only on families with closed-form optima). Names are stable:
    they appear in corpus entries, replay commands and
    [psdp_fuzz_*{prop=...}] metric labels. *)

type t = {
  name : string;
  doc : string;  (** one-line description for [psdp fuzz --list-props] *)
  applies : Spec.t -> bool;
  check : Oracle.check;
}

val all : t list
(** Every registered property, in a stable order. *)

val find : string -> t option
val names : unit -> string list

val select : string list -> (t list, string) result
(** Resolve a list of names ([[]] means {!all}); [Error] names the first
    unknown property. *)
