open Psdp_prelude
open Psdp_instances

type family =
  | Random of { rank : int; density : float; spread : float }
  | Conditioned of { cond : float }
  | Diagonal of { density : float }
  | Diagonal_identities
  | Graph_cycle
  | Graph_gnp of { p : float }
  | Beamforming of { corr : float }
  | Known_projectors
  | Known_rank_one
  | Known_simplex

type t = { family : family; dim : int; n : int; seed : int }

let family_name = function
  | Random _ -> "random"
  | Conditioned _ -> "conditioned"
  | Diagonal _ -> "diagonal"
  | Diagonal_identities -> "identities"
  | Graph_cycle -> "cycle"
  | Graph_gnp _ -> "gnp"
  | Beamforming _ -> "beamforming"
  | Known_projectors -> "projectors"
  | Known_rank_one -> "rank_one"
  | Known_simplex -> "simplex"

let validate s =
  let err fmt = Printf.ksprintf Result.error fmt in
  if s.dim < 1 then err "spec: dim %d < 1" s.dim
  else if s.n < 1 then err "spec: n %d < 1" s.n
  else
    match s.family with
    | Random { rank; density; spread } ->
        if rank < 1 then err "spec: rank %d < 1" rank
        else if not (density > 0.0 && density <= 1.0) then
          err "spec: density %g outside (0,1]" density
        else if spread < 1.0 then err "spec: spread %g < 1" spread
        else Ok s
    | Conditioned { cond } ->
        if cond < 1.0 then err "spec: cond %g < 1" cond else Ok s
    | Diagonal { density } ->
        if not (density > 0.0 && density <= 1.0) then
          err "spec: density %g outside (0,1]" density
        else Ok s
    | Diagonal_identities -> Ok s
    | Graph_cycle ->
        if s.dim < 3 then err "spec: cycle needs dim >= 3"
        else Ok { s with n = s.dim }
    | Graph_gnp { p } ->
        if s.dim < 2 then err "spec: gnp needs dim >= 2"
        else if not (p >= 0.0 && p <= 1.0) then err "spec: p %g outside [0,1]" p
        else Ok s
    | Beamforming { corr } ->
        if not (corr >= 0.0 && corr < 1.0) then
          err "spec: corr %g outside [0,1)" corr
        else Ok s
    | Known_projectors | Known_rank_one ->
        if s.n > s.dim then err "spec: %s needs n <= dim" (family_name s.family)
        else Ok s
    | Known_simplex -> Ok { s with n = s.dim }

let build s =
  let s =
    match validate s with
    | Ok s -> s
    | Error msg -> invalid_arg ("Spec.build: " ^ msg)
  in
  let rng = Rng.create s.seed in
  match s.family with
  | Random { rank; density; spread } ->
      ( Random_psd.factored ~rng ~dim:s.dim ~n:s.n ~rank ~density
          ~scale_spread:spread (),
        None )
  | Conditioned { cond } ->
      (Random_psd.conditioned ~rng ~dim:s.dim ~n:s.n ~cond (), None)
  | Diagonal { density } ->
      (Diagonal.random ~rng ~dim:s.dim ~n:s.n ~density (), None)
  | Diagonal_identities ->
      (* Log-spread positive coefficients; OPT = 1/min cᵢ exactly. *)
      let cs =
        Array.init s.n (fun _ -> 0.25 +. (4.0 *. Rng.uniform rng))
      in
      let inst, opt = Diagonal.scaled_identities cs ~dim:s.dim in
      (inst, Some opt)
  | Graph_cycle ->
      ( Graph_packing.edge_packing (Graph.cycle s.dim),
        Some (Graph_packing.edge_packing_opt_cycle s.dim) )
  | Graph_gnp { p } ->
      (Graph_packing.edge_packing (Graph.gnp ~rng ~vertices:s.dim ~p), None)
  | Beamforming { corr } ->
      let model =
        if corr = 0.0 then Beamforming.Rayleigh else Beamforming.Correlated corr
      in
      (Beamforming.instance ~rng ~antennas:s.dim ~users:s.n ~model (), None)
  | Known_projectors ->
      let inst, opt = Known_opt.orthogonal_projectors ~rng ~dim:s.dim ~n:s.n in
      (inst, Some opt)
  | Known_rank_one ->
      let inst, opt = Known_opt.rank_one_orthonormal ~rng ~dim:s.dim ~n:s.n in
      (inst, Some opt)
  | Known_simplex ->
      let inst, opt = Known_opt.simplex_corner ~dim:s.dim in
      (inst, Some opt)

(* ------------------------------------------------------------------ *)
(* Canonical rendering and JSON codec *)

let params_string = function
  | Random { rank; density; spread } ->
      Printf.sprintf "{rank=%d,density=%.17g,spread=%.17g}" rank density spread
  | Conditioned { cond } -> Printf.sprintf "{cond=%.17g}" cond
  | Diagonal { density } -> Printf.sprintf "{density=%.17g}" density
  | Graph_gnp { p } -> Printf.sprintf "{p=%.17g}" p
  | Beamforming { corr } -> Printf.sprintf "{corr=%.17g}" corr
  | Diagonal_identities | Graph_cycle | Known_projectors | Known_rank_one
  | Known_simplex ->
      ""

let to_string s =
  Printf.sprintf "%s%s:dim=%d,n=%d,seed=%d" (family_name s.family)
    (params_string s.family) s.dim s.n s.seed

let to_json s =
  let params =
    match s.family with
    | Random { rank; density; spread } ->
        [
          ("rank", Json.Num (float_of_int rank));
          ("density", Json.Num density);
          ("spread", Json.Num spread);
        ]
    | Conditioned { cond } -> [ ("cond", Json.Num cond) ]
    | Diagonal { density } -> [ ("density", Json.Num density) ]
    | Graph_gnp { p } -> [ ("p", Json.Num p) ]
    | Beamforming { corr } -> [ ("corr", Json.Num corr) ]
    | Diagonal_identities | Graph_cycle | Known_projectors | Known_rank_one
    | Known_simplex ->
        []
  in
  Json.Obj
    ([
       ("family", Json.Str (family_name s.family));
       ("dim", Json.Num (float_of_int s.dim));
       ("n", Json.Num (float_of_int s.n));
       ("seed", Json.Num (float_of_int s.seed));
     ]
    @ params)

let of_json j =
  let ( let* ) = Result.bind in
  let field name conv =
    match Option.bind (Json.mem name j) conv with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "spec: missing or bad field %S" name)
  in
  let num_or name default =
    match Json.mem name j with
    | None -> Ok default
    | Some v -> (
        match Json.num v with
        | Some f -> Ok f
        | None -> Error (Printf.sprintf "spec: bad field %S" name))
  in
  let* fam = field "family" Json.str in
  let* dim = field "dim" Json.int in
  let* n = field "n" Json.int in
  let* seed = field "seed" Json.int in
  let* family =
    match fam with
    | "random" ->
        let* rank =
          match Option.bind (Json.mem "rank" j) Json.int with
          | Some r -> Ok r
          | None -> Error "spec: missing or bad field \"rank\""
        in
        let* density = num_or "density" 0.5 in
        let* spread = num_or "spread" 1.0 in
        Ok (Random { rank; density; spread })
    | "conditioned" ->
        let* cond = num_or "cond" 1.0 in
        Ok (Conditioned { cond })
    | "diagonal" ->
        let* density = num_or "density" 0.6 in
        Ok (Diagonal { density })
    | "identities" -> Ok Diagonal_identities
    | "cycle" -> Ok Graph_cycle
    | "gnp" ->
        let* p = num_or "p" 0.3 in
        Ok (Graph_gnp { p })
    | "beamforming" ->
        let* corr = num_or "corr" 0.0 in
        Ok (Beamforming { corr })
    | "projectors" -> Ok Known_projectors
    | "rank_one" -> Ok Known_rank_one
    | "simplex" -> Ok Known_simplex
    | other -> Error (Printf.sprintf "spec: unknown family %S" other)
  in
  validate { family; dim; n; seed }

(* ------------------------------------------------------------------ *)
(* Sampling and shrinking *)

let sample rng =
  let pick lo hi = lo + Rng.int rng (hi - lo + 1) in
  let seed = Rng.int rng 1_000_000 in
  let spec =
    match Rng.int rng 10 with
    | 0 ->
        let dim = pick 2 10 in
        {
          family =
            Random
              {
                rank = pick 1 (max 1 (dim / 2));
                density = 0.3 +. (0.7 *. Rng.uniform rng);
                spread = (if Rng.int rng 2 = 0 then 1.0 else 4.0);
              };
          dim;
          n = pick 1 8;
          seed;
        }
    | 1 ->
        {
          family = Conditioned { cond = Rng.choose rng [| 1.0; 1e2; 1e4 |] };
          dim = pick 2 8;
          n = pick 1 6;
          seed;
        }
    | 2 ->
        {
          family = Diagonal { density = 0.4 +. (0.6 *. Rng.uniform rng) };
          dim = pick 1 10;
          n = pick 1 8;
          seed;
        }
    | 3 -> { family = Diagonal_identities; dim = pick 1 8; n = pick 1 6; seed }
    | 4 ->
        let dim = pick 3 12 in
        { family = Graph_cycle; dim; n = dim; seed }
    | 5 ->
        {
          family = Graph_gnp { p = 0.2 +. (0.5 *. Rng.uniform rng) };
          dim = pick 2 9;
          n = 1;
          seed;
        }
    | 6 ->
        {
          family =
            Beamforming { corr = (if Rng.int rng 2 = 0 then 0.0 else 0.6) };
          dim = pick 2 8;
          n = pick 1 8;
          seed;
        }
    | 7 ->
        let dim = pick 2 10 in
        { family = Known_projectors; dim; n = pick 1 dim; seed }
    | 8 ->
        let dim = pick 2 10 in
        { family = Known_rank_one; dim; n = pick 1 dim; seed }
    | _ ->
        let dim = pick 1 8 in
        { family = Known_simplex; dim; n = dim; seed }
  in
  match validate spec with
  | Ok s -> s
  | Error msg -> invalid_arg ("Spec.sample: internal: " ^ msg)

let size s =
  let rank = match s.family with Random { rank; _ } -> rank | _ -> 0 in
  (s.dim * 16) + (s.n * 4) + rank

let shrink s =
  let candidates = ref [] in
  let push c = candidates := c :: !candidates in
  (* Shape reductions, halving first. *)
  let dims d = if d > 1 then List.filter (fun v -> v < d) [ d / 2; d - 1 ] else [] in
  List.iter (fun dim -> push { s with dim }) (dims s.dim);
  List.iter (fun n -> push { s with n }) (dims s.n);
  (* Family-parameter simplifications. *)
  (match s.family with
  | Random { rank; density; spread } ->
      List.iter
        (fun rank -> push { s with family = Random { rank; density; spread } })
        (dims rank);
      if spread > 1.0 then
        push { s with family = Random { rank; density; spread = 1.0 } };
      if density < 1.0 then
        push { s with family = Random { rank; density = 1.0; spread } }
  | Conditioned { cond } ->
      if cond > 1.0 then
        push { s with family = Conditioned { cond = Float.max 1.0 (sqrt cond) } }
  | Graph_gnp _ -> push { s with family = Graph_cycle; dim = max 3 s.dim }
  | Beamforming { corr } when corr > 0.0 ->
      push { s with family = Beamforming { corr = 0.0 } }
  | _ -> ());
  (* Keep only valid, strictly smaller candidates; a same-size candidate
     (e.g. the cycle fallback for gnp) is allowed only if it simplifies
     the family, which the size metric cannot see — drop those to keep
     shrinking well-founded. *)
  List.filter_map
    (fun c ->
      match validate c with
      | Ok c when size c < size s -> Some c
      | Ok _ | Error _ -> None)
    (List.rev !candidates)

let arbitrary =
  let gen st = sample (Rng.create (Random.State.bits st)) in
  let shrink_iter s yield = List.iter yield (shrink s) in
  QCheck.make gen ~print:to_string ~shrink:shrink_iter
