open Psdp_prelude
open Psdp_linalg
open Psdp_core

type check = Spec.t -> (unit, string) result

let eps = 0.3

(* Certified facts have verification tolerance ~1e-6; the sketched
   backend's upper bounds additionally carry the Theorem-4.1 estimate
   error (<= eps/2 relative). [slack] absorbs both plus bisection
   termination noise. *)
let slack = 0.05

let ok = Ok ()
let failf fmt = Printf.ksprintf Result.error fmt

let bracket_of (r : Solver.packing_result) = (r.Solver.value, r.Solver.upper_bound)

let valid_bracket name (l, h) =
  if not (Float.is_finite l && Float.is_finite h) then
    failf "%s: non-finite bracket [%.6g, %.6g]" name l h
  else if l <= 0.0 then failf "%s: non-positive lower bound %.6g" name l
  else if h < l *. (1.0 -. 1e-9) then
    failf "%s: inverted bracket [%.6g, %.6g]" name l h
  else ok

let intersect ?(tol = slack) name_a (la, ha) name_b (lb, hb) =
  if Float.max la lb > Float.min ha hb *. (1.0 +. tol) then
    failf "brackets disjoint: %s=[%.6g, %.6g] vs %s=[%.6g, %.6g]" name_a la ha
      name_b lb hb
  else ok

let gap_within name (l, h) bound =
  if h > l *. bound *. (1.0 +. slack) then
    failf "%s: gap %.4f exceeds %.4f" name (h /. l) bound
  else ok

let ( let* ) = Result.bind

(* ------------------------------------------------------------------ *)
(* Differential oracles *)

let backends_agree spec =
  let inst, _ = Spec.build spec in
  let exact = Solver.solve_packing ~eps inst in
  let sketched =
    Solver.solve_packing
      ~backend:(Decision.Sketched { seed = spec.Spec.seed lxor 0x5D17; sketch_dim = None })
      ~eps inst
  in
  let be = bracket_of exact and bs = bracket_of sketched in
  let* () = valid_bracket "exact" be in
  let* () = valid_bracket "sketched" bs in
  let* () = gap_within "exact" be (1.0 +. eps) in
  let* () = gap_within "sketched" bs ((1.0 +. eps) *. (1.0 +. (eps /. 2.0))) in
  let* () = intersect ~tol:(slack +. (eps /. 2.0)) "exact" be "sketched" bs in
  (* The width-dependent MMW baseline is the third independent answer;
     its iteration budget scales with the width, so skip it on the rare
     wide draws to keep campaign cases uniformly cheap. *)
  if Instance.width inst > 32.0 then ok
  else begin
    let b = Baseline.maximize ~eps inst in
    let bb = (b.Baseline.value, b.Baseline.upper_bound) in
    let* () = valid_bracket "baseline" bb in
    let* () = gap_within "baseline" bb (1.0 +. eps) in
    intersect "exact" be "baseline" bb
  end

let bucketed_agrees spec =
  let inst, _ = Spec.build spec in
  let r = Solver.solve_packing ~eps inst in
  let lo, hi = bracket_of r in
  let* () = valid_bracket "exact" (lo, hi) in
  let v = sqrt (lo *. hi) in
  let scaled = Instance.scale v inst in
  let b = Bucketed.solve ~eps scaled in
  match b.Bucketed.outcome with
  | Decision.Dual { x; _ } ->
      (* x packs {v·Aᵢ} ⇒ OPT >= v·‖x‖₁ (after re-verification). *)
      let cert = Certificate.rescale_dual scaled x in
      if not cert.Certificate.feasible then
        failf "bucketed: dual certificate failed verification (λmax %.6g)"
          cert.Certificate.lambda_max
      else if v *. cert.Certificate.value > hi *. (1.0 +. slack) then
        failf "bucketed: dual bound %.6g contradicts exact upper bound %.6g"
          (v *. cert.Certificate.value)
          hi
      else ok
  | Decision.Primal { dots; _ } ->
      let d = Util.min_array dots in
      if d <= 0.0 then failf "bucketed: primal certificate with min dot %.6g" d
      else if v /. d < lo *. (1.0 -. slack) then
        failf "bucketed: primal bound %.6g contradicts exact lower bound %.6g"
          (v /. d) lo
      else ok

let lp_oracle spec =
  let inst, _ = Spec.build spec in
  match Lp.of_diagonal_instance inst with
  | exception Invalid_argument msg -> failf "lp_oracle: %s" msg
  | lp ->
      let l = Lp.maximize ~eps lp in
      let r = Solver.solve_packing ~eps inst in
      let bl = (l.Lp.value, l.Lp.upper_bound) and bs = bracket_of r in
      let* () = valid_bracket "lp" bl in
      let* () = valid_bracket "sdp" bs in
      intersect "lp" bl "sdp" bs

let known_opt spec =
  let inst, opt = Spec.build spec in
  match opt with
  | None -> ok
  | Some opt ->
      let r = Solver.solve_packing ~eps inst in
      let lo, hi = bracket_of r in
      let* () = valid_bracket "solver" (lo, hi) in
      if lo > opt *. (1.0 +. 1e-4) then
        failf "known_opt: certified lower bound %.6g exceeds OPT %.6g" lo opt
      else if hi < opt *. (1.0 -. 1e-4) then
        failf "known_opt: certified upper bound %.6g below OPT %.6g" hi opt
      else if lo < opt /. (1.0 +. eps) *. (1.0 -. slack) then
        failf "known_opt: value %.6g below (1+eps)-approximation of OPT %.6g" lo
          opt
      else ok

let resume_replay spec =
  let inst, _ = Spec.build spec in
  let states = ref [] in
  let full =
    Solver.solve_packing ~eps ~checkpoint:(fun s -> states := s :: !states) inst
  in
  let states = Array.of_list (List.rev !states) in
  if Array.length states < 2 then ok
  else begin
    (* "Crash" after an intermediate decision call and continue from the
       captured snapshot; the bisection is deterministic, so the resumed
       run must land on the same bracket with the same lifetime
       counters. *)
    let mid = states.((Array.length states / 2) - 1) in
    let resumed = Solver.solve_packing ~eps ~resume:mid inst in
    let close a b = Float.abs (a -. b) <= 1e-9 *. Float.max 1.0 (Float.abs b) in
    if not (close resumed.Solver.value full.Solver.value) then
      failf "resume: value %.17g <> uninterrupted %.17g" resumed.Solver.value
        full.Solver.value
    else if not (close resumed.Solver.upper_bound full.Solver.upper_bound) then
      failf "resume: upper bound %.17g <> uninterrupted %.17g"
        resumed.Solver.upper_bound full.Solver.upper_bound
    else if resumed.Solver.decision_calls <> full.Solver.decision_calls then
      failf "resume: %d lifetime decision calls <> uninterrupted %d"
        resumed.Solver.decision_calls full.Solver.decision_calls
    else ok
  end

(* The certified-Chebyshev default and the paper's Taylor prefix are
   independent one-sided polynomials for the same exp(Φ/2); at matched
   accuracy their certified brackets must agree. *)
let taylor_chebyshev_agree spec =
  let inst, _ = Spec.build spec in
  let backend =
    Decision.Sketched { seed = spec.Spec.seed lxor 0xC4EB; sketch_dim = None }
  in
  let solve poly =
    Psdp_expm.Big_dot_exp.with_poly poly (fun () ->
        Solver.solve_packing ~backend ~eps inst)
  in
  let bt = bracket_of (solve Psdp_expm.Big_dot_exp.Taylor) in
  let bc = bracket_of (solve Psdp_expm.Big_dot_exp.Chebyshev) in
  let* () = valid_bracket "taylor" bt in
  let* () = valid_bracket "chebyshev" bc in
  let* () = gap_within "taylor" bt ((1.0 +. eps) *. (1.0 +. (eps /. 2.0))) in
  let* () =
    gap_within "chebyshev" bc ((1.0 +. eps) *. (1.0 +. (eps /. 2.0)))
  in
  intersect ~tol:(slack +. (eps /. 2.0)) "taylor" bt "chebyshev" bc

(* Soundness of the instance-computable Chebyshev remainder bound
   itself, against dense eigendecomposition ground truth: on a random
   matrix with spectrum inside the certified interval,
   p̂(X) + r·I − exp(X) must be PSD with operator norm at most 2r.
   This is the oracle that catches a corrupted remainder shift
   (failpoint [Poly.remainder_failpoint]): the solver's
   ratio-normalized decisions absorb scalar shifts, so a broken bound
   is observable only as the loss of one-sidedness checked here. *)
let cheb_remainder_sound spec =
  let rng = Rng.create (spec.Spec.seed lxor 0xC4EB) in
  let kappa = 0.5 +. (17.5 *. Rng.uniform rng) in
  let eps_t = 0.05 +. (0.3 *. Rng.uniform rng) in
  match Psdp_expm.Poly.chebyshev_certified ~kappa ~eps:eps_t with
  | None -> failf "certification failed for kappa=%.6g eps=%.6g" kappa eps_t
  | Some (degree, r) ->
      let m = 6 in
      let u =
        Qr.orthonormal_columns (Mat.init m m (fun _ _ -> Rng.gaussian rng))
      in
      (* Pin one eigenvalue at each end so the interval is exercised. *)
      let evals =
        Array.init m (fun i ->
            if i = 0 then kappa
            else if i = 1 then 0.0
            else kappa *. Rng.uniform rng)
      in
      let x_mat =
        Mat.symmetrize (Mat.mul (Mat.mul u (Mat.diag evals)) (Mat.transpose u))
      in
      let basis j = Array.init m (fun i -> if i = j then 1.0 else 0.0) in
      let p_mat =
        Mat.symmetrize
          (Mat.of_rows
             (Array.init m (fun j ->
                  Psdp_expm.Poly.chebyshev_apply_shifted
                    ~matvec:(Mat.gemv x_mat) ~kappa ~degree ~remainder:r
                    (basis j))))
      in
      let diff = Mat.sub p_mat (Matfun.expm x_mat) in
      let { Eig.values; _ } = Eig.symmetric diff in
      let tol = 1e-12 *. float_of_int m *. exp kappa in
      let lo = values.(m - 1) and hi = values.(0) in
      if lo < -.tol then
        failf
          "one-sidedness violated: λmin(p̂(X)+rI−exp(X)) = %.6g < 0 (κ=%.6g \
           eps=%.6g degree=%d r=%.6g)"
          lo kappa eps_t degree r
      else if hi > (2.0 *. r) +. tol then
        failf
          "remainder bound violated: ‖p̂(X)+rI−exp(X)‖ = %.6g > 2r = %.6g \
           (κ=%.6g eps=%.6g degree=%d)"
          hi (2.0 *. r) kappa eps_t degree
      else ok

(* ------------------------------------------------------------------ *)
(* Metamorphic invariants *)

let scale_equivariance spec =
  let inst, _ = Spec.build spec in
  let rng = Rng.create (spec.Spec.seed lxor 0xA5A5) in
  let v = 0.5 +. (2.5 *. Rng.uniform rng) in
  let r1 = Solver.solve_packing ~eps inst in
  let r2 = Solver.solve_packing ~eps (Instance.scale v inst) in
  let b1 = bracket_of r1 in
  let b2 = (v *. r2.Solver.value, v *. r2.Solver.upper_bound) in
  let* () = valid_bracket "original" b1 in
  let* () = valid_bracket "scaled" b2 in
  intersect "original" b1
    (Printf.sprintf "scaled(v=%.4g, unscaled)" v)
    b2

let permutation_equivariance spec =
  let inst, _ = Spec.build spec in
  let n = Instance.num_constraints inst in
  let rng = Rng.create (spec.Spec.seed lxor 0x9E37) in
  let perm = Rng.permutation rng n in
  let factors = Instance.factors inst in
  let permuted = Instance.of_factors (Array.map (fun i -> factors.(i)) perm) in
  let r1 = Solver.solve_packing ~eps inst in
  let r2 = Solver.solve_packing ~eps permuted in
  let* () = valid_bracket "original" (bracket_of r1) in
  let* () = valid_bracket "permuted" (bracket_of r2) in
  intersect "original" (bracket_of r1) "permuted" (bracket_of r2)

let congruence_equivariance spec =
  let inst, _ = Spec.build spec in
  let m = Instance.dim inst in
  let rng = Rng.create (spec.Spec.seed lxor 0x517C) in
  let u =
    Qr.orthonormal_columns (Mat.init m m (fun _ _ -> Rng.gaussian rng))
  in
  let ut = Mat.transpose u in
  let rotated =
    Array.map
      (fun a -> Mat.symmetrize (Mat.mul (Mat.mul u a) ut))
      (Instance.dense_mats inst)
  in
  match Instance.of_dense rotated with
  | exception Invalid_argument msg -> failf "congruence: rebuild failed: %s" msg
  | rot ->
      let r1 = Solver.solve_packing ~eps inst in
      let r2 = Solver.solve_packing ~eps rot in
      let* () = valid_bracket "original" (bracket_of r1) in
      let* () = valid_bracket "rotated" (bracket_of r2) in
      intersect "original" (bracket_of r1) "rotated" (bracket_of r2)

let eps_refinement spec =
  let inst, _ = Spec.build spec in
  let coarse = Solver.solve_packing ~eps inst in
  let fine = Solver.solve_packing ~eps:(eps /. 2.0) inst in
  let bc = bracket_of coarse and bf = bracket_of fine in
  let* () = valid_bracket "coarse" bc in
  let* () = valid_bracket "fine" bf in
  let* () = gap_within "coarse" bc (1.0 +. eps) in
  let* () = gap_within "fine" bf (1.0 +. (eps /. 2.0)) in
  intersect "coarse" bc "fine" bf

(* Metamorphic relation behind the serve tier's warm-start lineage: a
   solve of a drifted instance warm-started from the undrifted parent's
   incumbent must land in the same certified bracket as the cold solve
   of that drifted instance, at the same accuracy — the warm path may
   only change {e how fast} the bracket is found, never {e where} it
   is. The parent's upper bound is deliberately not reused: it is
   instance-specific and trusted, so across instances only the
   re-verified x0 may travel (cf. Exec's parent resolution). *)
let warm_start_equivalence spec =
  let inst, _ = Spec.build spec in
  let rng = Rng.create (spec.Spec.seed lxor 0x7E57) in
  let drifted = Psdp_instances.Drift.perturb ~rng ~magnitude:0.05 inst in
  let parent = Solver.solve_packing ~eps inst in
  let cold = Solver.solve_packing ~eps drifted in
  let warmed =
    Solver.solve_packing ~eps
      ~warm:{ Solver.upper = None; x0 = Some parent.Solver.x }
      drifted
  in
  let bc = bracket_of cold and bw = bracket_of warmed in
  let* () = valid_bracket "cold" bc in
  let* () = valid_bracket "warm" bw in
  let* () = gap_within "cold" bc (1.0 +. eps) in
  let* () = gap_within "warm" bw (1.0 +. eps) in
  let* () = intersect "cold" bc "warm" bw in
  let cert = Certificate.check_dual ~tol:1e-5 drifted warmed.Solver.x in
  if not cert.Certificate.feasible then
    failf "warm incumbent infeasible on drifted instance: λmax %.6g"
      cert.Certificate.lambda_max
  else ok

let certificates_verify spec =
  let inst, _ = Spec.build spec in
  let r = Decision.solve ~eps inst in
  let* () =
    match r.Decision.outcome with
    | Decision.Dual { x; _ } ->
        let cert = Certificate.check_dual ~tol:1e-5 inst x in
        if not cert.Certificate.feasible then
          failf "decision dual infeasible: λmax %.6g" cert.Certificate.lambda_max
        else if cert.Certificate.value < 1.0 -. eps -. 1e-6 then
          failf "decision dual value %.6g below 1 - eps" cert.Certificate.value
        else ok
    | Decision.Primal { dots; _ } ->
        let d = Util.min_array dots in
        if d < 1.0 -. eps -. 1e-6 then
          failf "decision primal min dot %.6g below 1 - eps" d
        else ok
  in
  let s = Solver.solve_packing ~eps inst in
  let cert = Certificate.check_dual ~tol:1e-5 inst s.Solver.x in
  if not cert.Certificate.feasible then
    failf "solver incumbent infeasible: λmax %.6g" cert.Certificate.lambda_max
  else ok
