(** Generator specifications — the seeds of the conformance harness.

    A spec is a small, fully deterministic description of one instance:
    the family, its shape parameters (dimension, constraint count, rank,
    density, conditioning) and the PRNG seed. Every instance the harness
    ever solves is [build] of some spec, so a failing case is replayed
    exactly by persisting the spec (one JSON object) rather than the
    instance itself, and shrinking operates on specs — candidates are
    re-{!build}able smaller descriptions, never ad-hoc matrix surgery.

    Families cover every generator in [lib/instances]; the ones with
    closed-form packing optima ({!Known_projectors}, {!Known_rank_one},
    {!Known_simplex}, {!Graph_cycle}, and {!Diagonal_identities}) return
    the analytic OPT from [build], which the [known_opt] oracle checks
    against the solver's certified bracket. *)

type family =
  | Random of { rank : int; density : float; spread : float }
      (** {!Psdp_instances.Random_psd.factored} *)
  | Conditioned of { cond : float }
      (** {!Psdp_instances.Random_psd.conditioned} — constraints with
          spectrum log-spaced in [[1/cond, 1]] *)
  | Diagonal of { density : float }
      (** {!Psdp_instances.Diagonal.random} — ≡ a positive packing LP *)
  | Diagonal_identities
      (** {!Psdp_instances.Diagonal.scaled_identities}: OPT = 1/min cᵢ *)
  | Graph_cycle  (** edge packing on [C_dim]; OPT known in closed form *)
  | Graph_gnp of { p : float }  (** edge packing on [G(dim, p)] *)
  | Beamforming of { corr : float }
      (** IPS10 §2.2 channels; [corr = 0] is Rayleigh, otherwise the
          correlated Toeplitz model *)
  | Known_projectors  (** orthogonal projectors: OPT = n *)
  | Known_rank_one  (** rank-one orthonormal: OPT = n *)
  | Known_simplex  (** simplex corner: OPT = dim/2 *)

type t = { family : family; dim : int; n : int; seed : int }
(** [n] is normalized by {!validate}/[build] where the family fixes it
    (cycles have [dim] edges, the simplex corner has [n = dim]). *)

val validate : t -> (t, string) result
(** Check family-specific constraints (e.g. [n <= dim] for projector
    families, [dim >= 3] for cycles) and normalize [n] where the family
    determines it. [build] only accepts validated specs. *)

val build : t -> Psdp_core.Instance.t * float option
(** Materialize the instance, together with its analytic packing optimum
    when the family has one. Deterministic in the spec: two calls return
    instances with identical {!Psdp_instances.Loader.digest}s. Raises
    [Invalid_argument] on specs that {!validate} would reject. *)

val family_name : family -> string
(** Short family tag: ["random"], ["diagonal"], ["cycle"], … *)

val to_string : t -> string
(** Canonical one-line rendering, e.g.
    ["random{rank=2,density=0.5,spread=1}:dim=6,n=4,seed=123"]. Stable —
    corpus entry ids are derived from it. *)

val to_json : t -> Psdp_prelude.Json.t
val of_json : Psdp_prelude.Json.t -> (t, string) result
(** Inverse of {!to_json}; validates the decoded spec. *)

val sample : Psdp_prelude.Rng.t -> t
(** Draw a small random valid spec (dimensions are kept modest — the
    oracles solve each instance several times over). Deterministic in the
    RNG stream. *)

val shrink : t -> t list
(** Strictly smaller valid specs to try when [t] fails a property,
    largest reductions first (halve [dim]/[n]/[rank], then decrements,
    then parameter simplifications toward 1). Every candidate passes
    {!validate}. *)

val size : t -> int
(** Shrinking measure: [shrink] candidates all have strictly smaller
    [size]. *)

val arbitrary : t QCheck.arbitrary
(** QCheck generator over {!sample}d specs with {!shrink}-based
    shrinking and {!to_string} printing — for property tests that want
    instance-family coverage without hand-rolling generators. *)
