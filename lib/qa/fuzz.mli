(** The fuzz driver: time-boxed conformance campaigns with deterministic
    replay.

    A campaign (1) re-runs every persisted corpus entry as a regression
    check, (2) samples instance specs from the campaign seed and runs
    every applicable {!Property} against each, (3) greedily shrinks any
    failure to a minimal spec, and (4) persists the distilled failure to
    the JSONL corpus together with a one-line replay command.

    Determinism contract: each individual property check is {e
    hermetic}. The failpoint registry is reset and the configured
    arm-specs re-armed immediately before {e every} check (arming resets
    trigger counters and the [prob] trigger's random stream), so a check
    never observes trigger state leaked from an earlier check — which is
    what makes [replay] reproduce a campaign failure byte-for-byte from
    its corpus entry alone. *)

type config = {
  seed : int;  (** campaign seed; drives spec sampling only *)
  budget : float;  (** wall-clock seconds; [<= 0] means no time box *)
  max_cases : int;  (** hard cap on sampled cases *)
  props : Property.t list;  (** properties to run (see {!Property.select}) *)
  focus : Spec.t list;
      (** when non-empty, cycle through these specs instead of sampling
          — used by targeted campaigns and the self-test *)
  corpus_path : string option;
      (** JSONL failure corpus to regression-check and append to *)
  failpoint_specs : string list;
      (** [Psdp_fault.Failpoint.arm_spec] strings re-armed before every
          check (chaos-mode campaigns) *)
  registry : Psdp_obs.Metrics.t option;
      (** export [psdp_fuzz_*] series here when provided *)
  log : string -> unit;  (** progress lines (one per event) *)
}

val default : config
(** seed 0, 10-second budget, 200 cases, all properties, no corpus, no
    failpoints, no registry, silent. *)

type failure = {
  entry : Corpus.entry;
  replay : string option;
      (** the [SEED=… psdp fuzz --replay …] one-liner, when a corpus
          path is configured *)
}

type outcome = {
  cases : int;  (** sampled specs (regression entries not included) *)
  checks : int;  (** property evaluations, including shrink probes *)
  failures : failure list;  (** fresh failures, already shrunk + persisted *)
  regressions : failure list;
      (** corpus entries that still fail when replayed *)
  elapsed : float;
}

val replay_command : seed:int -> corpus:string -> id:string -> string

val run : config -> (outcome, string) result
(** Execute a campaign. [Error] only for configuration problems (bad
    failpoint spec, unreadable corpus); oracle failures are reported in
    the outcome. The failpoint registry is left fully reset. *)

type replay_result =
  | Reproduced of string  (** the check failed again, with this message *)
  | Not_reproduced  (** the check passed — the failure is gone *)

val replay :
  ?registry:Psdp_obs.Metrics.t ->
  corpus:string ->
  id:string ->
  unit ->
  (replay_result * Corpus.entry, string) result
(** Re-run one corpus entry under its recorded failpoints. [Error] for
    an unreadable corpus, unknown id, or unknown property name. *)
