type task = {
  body : int -> int -> unit;  (* executes one half-open chunk *)
  next : int Atomic.t;        (* next chunk start index *)
  hi : int;
  grain : int;
  pending : int Atomic.t;     (* chunks still running or unclaimed *)
  failure : exn option Atomic.t;
  done_mutex : Mutex.t;
  done_cond : Condition.t;
}

type pool = {
  n_workers : int;  (* spawned domains; total parallelism is n_workers + 1 *)
  mutex : Mutex.t;
  cond : Condition.t;
  mutable current : task option;
  mutable epoch : int;
  mutable stop : bool;
  mutable domains : unit Domain.t list;
  busy : bool Atomic.t;  (* a loop is in flight; nested loops go sequential *)
  mutable alive : bool;
  loops : int Atomic.t;  (* loops that actually fanned out to the workers *)
  fallbacks : int Atomic.t;  (* loops run sequentially because [busy] was set *)
}

type t = Sequential | Pool of pool

(* Claim and run chunks until the task is exhausted. Any worker (including
   the submitting domain) can call this. *)
let run_chunks task =
  let rec loop () =
    let start = Atomic.fetch_and_add task.next task.grain in
    if start < task.hi then begin
      let stop_ = min (start + task.grain) task.hi in
      (try task.body start stop_
       with e ->
         (* Record the first failure; later chunks still drain so that the
            completion count reaches zero. *)
         ignore
           (Atomic.compare_and_set task.failure None (Some e)));
      let remaining = Atomic.fetch_and_add task.pending (-1) - 1 in
      if remaining = 0 then begin
        Mutex.lock task.done_mutex;
        Condition.broadcast task.done_cond;
        Mutex.unlock task.done_mutex
      end;
      loop ()
    end
  in
  loop ()

let worker_loop pool =
  let rec wait_for_epoch last_epoch =
    Mutex.lock pool.mutex;
    while pool.epoch = last_epoch && not pool.stop do
      Condition.wait pool.cond pool.mutex
    done;
    if pool.stop then begin
      Mutex.unlock pool.mutex
    end
    else begin
      let epoch = pool.epoch in
      let task = pool.current in
      Mutex.unlock pool.mutex;
      (match task with Some t -> run_chunks t | None -> ());
      wait_for_epoch epoch
    end
  in
  wait_for_epoch 0

let default_num_domains () =
  match Sys.getenv_opt "PSDP_DOMAINS" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> n
      | _ -> invalid_arg "PSDP_DOMAINS must be a positive integer")
  | None -> min 8 (Domain.recommended_domain_count ())

let create ?num_domains () =
  let n =
    match num_domains with Some n -> n | None -> default_num_domains ()
  in
  if n < 1 then invalid_arg "Pool.create: num_domains must be >= 1";
  if n = 1 then Sequential
  else begin
    let pool =
      {
        n_workers = n - 1;
        mutex = Mutex.create ();
        cond = Condition.create ();
        current = None;
        epoch = 0;
        stop = false;
        domains = [];
        busy = Atomic.make false;
        alive = true;
        loops = Atomic.make 0;
        fallbacks = Atomic.make 0;
      }
    in
    pool.domains <-
      List.init pool.n_workers (fun _ -> Domain.spawn (fun () -> worker_loop pool));
    Pool pool
  end

let sequential = Sequential

let size = function Sequential -> 1 | Pool p -> p.n_workers + 1

type stats = { parallel_loops : int; busy_fallbacks : int }

let stats = function
  | Sequential -> { parallel_loops = 0; busy_fallbacks = 0 }
  | Pool p ->
      {
        parallel_loops = Atomic.get p.loops;
        busy_fallbacks = Atomic.get p.fallbacks;
      }

let shutdown = function
  | Sequential -> ()
  | Pool p ->
      if p.alive then begin
        Mutex.lock p.mutex;
        p.stop <- true;
        Condition.broadcast p.cond;
        Mutex.unlock p.mutex;
        List.iter Domain.join p.domains;
        p.domains <- [];
        p.alive <- false
      end

let with_pool ?num_domains f =
  let pool = create ?num_domains () in
  match f pool with
  | result ->
      shutdown pool;
      result
  | exception e ->
      shutdown pool;
      raise e

let global_pool = ref None
let global_mutex = Mutex.create ()

let global () =
  Mutex.lock global_mutex;
  let pool =
    match !global_pool with
    | Some p -> p
    | None ->
        let p = create () in
        global_pool := Some p;
        p
  in
  Mutex.unlock global_mutex;
  pool

(* Sequential execution still honours the chunk size so that chunked
   reductions see the identical partition regardless of pool size — this
   is what makes parallel results bitwise-deterministic. *)
let sequential_chunks ~lo ~hi ~grain body =
  let i = ref lo in
  while !i < hi do
    let j = min (!i + grain) hi in
    body !i j;
    i := j
  done

let choose_grain ?grain ~lo ~hi pool_size =
  match grain with
  | Some g ->
      if g < 1 then invalid_arg "Pool: grain must be >= 1";
      g
  | None ->
      (* Aim for ~4 chunks per worker to absorb imbalance, but never chunks
         smaller than 64 indices: tiny chunks make the atomics dominate. *)
      let range = hi - lo in
      max 64 (range / (4 * pool_size) + 1)

let parallel_for_chunks t ?grain ~lo ~hi body =
  if hi > lo then
    match t with
    | Sequential ->
        let g = choose_grain ?grain ~lo ~hi 1 in
        sequential_chunks ~lo ~hi ~grain:g body
    | Pool p ->
        let g = choose_grain ?grain ~lo ~hi (p.n_workers + 1) in
        if hi - lo <= g then
          (* Range too small to split: run in the caller. The grain is the
             same one a fanned-out loop would use, so the chunk partition —
             and therefore every chunked reduction — is identical either
             way. *)
          sequential_chunks ~lo ~hi ~grain:g body
        else if not (Atomic.compare_and_set p.busy false true) then begin
          (* A loop is already in flight — either a nested loop from the
             same submitter or a concurrent loop from another domain
             sharing the pool. Run in the caller; same grain, same
             partition, same results. *)
          Atomic.incr p.fallbacks;
          sequential_chunks ~lo ~hi ~grain:g body
        end
        else begin
          Atomic.incr p.loops;
          let n_chunks = Psdp_prelude.Util.ceil_div (hi - lo) g in
          let task =
            {
              body;
              next = Atomic.make lo;
              hi;
              grain = g;
              pending = Atomic.make n_chunks;
              failure = Atomic.make None;
              done_mutex = Mutex.create ();
              done_cond = Condition.create ();
            }
          in
          Mutex.lock p.mutex;
          p.current <- Some task;
          p.epoch <- p.epoch + 1;
          Condition.broadcast p.cond;
          Mutex.unlock p.mutex;
          run_chunks task;
          Mutex.lock task.done_mutex;
          while Atomic.get task.pending > 0 do
            Condition.wait task.done_cond task.done_mutex
          done;
          Mutex.unlock task.done_mutex;
          Mutex.lock p.mutex;
          p.current <- None;
          Mutex.unlock p.mutex;
          Atomic.set p.busy false;
          match Atomic.get task.failure with
          | Some e -> raise e
          | None -> ()
        end

let parallel_for t ?grain ~lo ~hi f =
  parallel_for_chunks t ?grain ~lo ~hi (fun clo chi ->
      for i = clo to chi - 1 do
        f i
      done)

let reduce t ?grain ~lo ~hi ~init ~chunk ~combine =
  if hi <= lo then init
  else
    let g = choose_grain ?grain ~lo ~hi (size t) in
    let n_chunks = Psdp_prelude.Util.ceil_div (hi - lo) g in
    if n_chunks = 1 then combine init (chunk lo hi)
    else begin
      let results = Array.make n_chunks None in
      parallel_for_chunks t ~grain:g ~lo ~hi (fun clo chi ->
          results.((clo - lo) / g) <- Some (chunk clo chi));
      Array.fold_left
        (fun acc r ->
          match r with
          | Some v -> combine acc v
          | None -> assert false)
        init results
    end

let sum_floats t ?grain ~lo ~hi f =
  reduce t ?grain ~lo ~hi ~init:0.0
    ~chunk:(fun clo chi ->
      let s = ref 0.0 in
      for i = clo to chi - 1 do
        s := !s +. f i
      done;
      !s)
    ~combine:( +. )

let map_array t ?grain f a =
  let n = Array.length a in
  if n = 0 then [||]
  else begin
    let first = f a.(0) in
    let out = Array.make n first in
    parallel_for t ?grain ~lo:1 ~hi:n (fun i -> out.(i) <- f a.(i));
    out
  end

let init_float_array t ?grain n f =
  let out = Array.make n 0.0 in
  parallel_for_chunks t ?grain ~lo:0 ~hi:n (fun clo chi ->
      for i = clo to chi - 1 do
        out.(i) <- f i
      done);
  out
