(** Fork–join parallelism over OCaml 5 domains.

    This is the repository's stand-in for the paper's PRAM: a fixed pool of
    worker domains executing chunk-stealing parallel loops. Design points:

    - One pool is created per process (or per benchmark configuration) and
      reused across the solver's many iterations; spawning domains per loop
      would dominate the runtime of fine-grained kernels.
    - Loops are {e flat}: a [parallel_for] issued while another one is
      running on the same pool (nesting) degrades gracefully to sequential
      execution in the caller. The solvers only need flat data parallelism.
    - Pools may be {e shared across concurrent submitters}: several
      domains (e.g. the batch engine's job runners) can issue loops on one
      pool simultaneously. Exactly one loop fans out to the workers at a
      time; the others run sequentially in their callers with the same
      grain — and therefore the same chunk partition — so results are
      independent of who won the race. {!stats} counts how often each
      path was taken.
    - Reductions are {e deterministic}: chunk results are combined in chunk
      order, so floating-point results do not depend on scheduling. This is
      what lets the test suite assert parallel == sequential exactly. *)

type t

val create : ?num_domains:int -> unit -> t
(** [create ~num_domains ()] spawns [num_domains - 1] worker domains (the
    caller is the remaining worker). Defaults to
    [min 8 (Domain.recommended_domain_count ())], overridable with the
    [PSDP_DOMAINS] environment variable. [num_domains >= 1]. *)

val sequential : t
(** A zero-worker pool: every operation runs in the caller. Used as the
    default by code that was not handed a pool explicitly. *)

val size : t -> int
(** Total workers, including the calling domain. [size sequential = 1]. *)

type stats = { parallel_loops : int; busy_fallbacks : int }
(** Lifetime loop counters: loops that fanned out to the workers vs.
    loops that ran sequentially because the pool was busy (nested or
    concurrent submission). Loops too small to split are counted in
    neither. *)

val stats : t -> stats
(** Current counter values (monotone; both 0 for {!sequential}). The
    batch engine reports these in its telemetry to expose pool
    contention. *)

val shutdown : t -> unit
(** Join the worker domains. The pool must not be used afterwards.
    Idempotent. *)

val with_pool : ?num_domains:int -> (t -> 'a) -> 'a
(** [with_pool f] creates a pool, applies [f], and shuts the pool down even
    if [f] raises. *)

val global : unit -> t
(** Process-wide lazily-created pool (size per [create]'s default). *)

val parallel_for : t -> ?grain:int -> lo:int -> hi:int -> (int -> unit) -> unit
(** [parallel_for pool ~lo ~hi f] runs [f i] for [lo <= i < hi]. [grain]
    is the minimum indices per chunk (default chosen from range and pool
    size). Exceptions raised by [f] are re-raised in the caller (one of
    them, if several). *)

val parallel_for_chunks :
  t -> ?grain:int -> lo:int -> hi:int -> (int -> int -> unit) -> unit
(** Like {!parallel_for} but hands each worker a whole chunk
    [f chunk_lo chunk_hi] (half-open), avoiding per-index closure overhead
    in hot kernels. *)

val reduce :
  t ->
  ?grain:int ->
  lo:int ->
  hi:int ->
  init:'a ->
  chunk:(int -> int -> 'a) ->
  combine:('a -> 'a -> 'a) ->
  'a
(** [reduce pool ~lo ~hi ~init ~chunk ~combine] folds [chunk lo' hi'] over
    disjoint chunks covering [lo, hi) and combines the chunk values
    left-to-right in chunk order starting from [init]. Deterministic for
    any fixed [grain]. *)

val sum_floats : t -> ?grain:int -> lo:int -> hi:int -> (int -> float) -> float
(** Deterministic parallel sum of [f i] over the range. *)

val map_array : t -> ?grain:int -> ('a -> 'b) -> 'a array -> 'b array
(** Parallel [Array.map]. *)

val init_float_array : t -> ?grain:int -> int -> (int -> float) -> float array
(** Parallel [Array.init] specialised to unboxed float arrays. *)
