(** Positive semidefinite matrices in factorized form [A = Q Qᵀ].

    This is the input format of Theorem 4.1 and Corollary 1.2: the solver's
    work is measured in the total number of non-zeros of the factors [Qᵢ].
    A factored matrix is immutable. *)

open Psdp_linalg

type t

val of_csr : Csr.t -> t
(** [of_csr q] represents [Q Qᵀ] for the [m×r] sparse factor [q]. *)

val of_dense_factor : Mat.t -> t
(** Same, from a dense factor (converted to CSR). *)

val of_dense_psd : ?tol:float -> Mat.t -> t
(** Factor a dense PSD matrix through its eigendecomposition:
    [Q = V √Λ] with eigenvalues below [tol·λmax] dropped. This is the
    preprocessing step the paper prices at O(m⁴)/parallel-QR; any valid
    factorization is equivalent for the solver. *)

val of_dense_psd_pivoted : ?tol:float -> Mat.t -> t
(** Same contract, via rank-revealing pivoted Cholesky
    ({!Psdp_linalg.Cholesky.pivoted}) — O(m²·rank) instead of O(m³), the
    cheaper preprocessing when the input is low-rank. *)

val scale : float -> t -> t
(** [scale c a] is [c · A] for [c >= 0] (scales the factor by [√c]). *)

val dim : t -> int
(** The matrix is [dim × dim]. *)

val inner_dim : t -> int
(** Number of columns of [Q] (an upper bound on the rank). *)

val nnz : t -> int
(** Non-zeros in the factor [Q] — the paper's [q] contribution. *)

val factor : t -> Csr.t
(** The underlying [Q]. *)

val factor_t : t -> Csr.t
(** The transpose [Qᵀ], precomputed. *)

val apply : ?pool:Psdp_parallel.Pool.t -> t -> Vec.t -> Vec.t
(** [apply a v] is [A v = Q (Qᵀ v)] in [O(nnz)] work. *)

val apply_many : ?pool:Psdp_parallel.Pool.t -> t -> Vec.t array -> Vec.t array
(** Panel version of {!apply}: both sparse products make one pass over
    their nonzeros for all columns. Column [r] is byte-identical to
    [apply a vs.(r)]. *)

val gram_dot_many : t -> Vec.t array -> float
(** [gram_dot_many a zs = Σ_r ‖Qᵀ zs.(r)‖²] in one sweep of [Qᵀ]'s
    nonzeros — the sketched-Gram stage of [bigDotExp], where [zs] are the
    rows of [Π p̂(Φ/2)]. Byte-identical to summing [‖spmv qt zs.(r)‖²]
    column by column. *)

val trace : t -> float
(** [Tr A = ‖Q‖²_F]. *)

val to_dense : t -> Mat.t

val dot_dense : t -> Mat.t -> float
(** [A • S] for a dense symmetric [S]: [Σ_j qⱼᵀ S qⱼ] over the columns
    of [Q]. *)

val quadratic : t -> Vec.t -> float
(** [vᵀ A v = ‖Qᵀ v‖²] — non-negative by construction. *)

val lambda_max_upper : t -> float
(** Cheap upper bound on [λmax(A)]: [min(Tr A, ‖A‖_∞-row-sum bound)]
    computed from the factor; used for width estimation. *)

val lambda_max : t -> float
(** Exact [λmax(A)] via the inner Gram matrix: [λmax(QQᵀ) = λmax(QᵀQ)],
    an [r×r] dense eigenproblem where [r = inner_dim] — cheap whenever the
    factorization is thin. *)
