(** Compressed sparse row matrices.

    The paper's near-linear work bound (Corollary 1.2) counts non-zeros in
    the factorization; CSR is the storage that realises it. Sparse
    matrix–vector products parallelise over rows. *)

open Psdp_linalg

type t = private {
  rows : int;
  cols : int;
  row_ptr : int array;  (** length [rows + 1] *)
  col_idx : int array;  (** length [nnz], sorted within each row *)
  values : float array;  (** length [nnz] *)
}

val of_coo : rows:int -> cols:int -> (int * int * float) list -> t
(** Builds from coordinate triples; duplicate coordinates are summed,
    explicit zeros dropped. Raises [Invalid_argument] on out-of-range
    indices. *)

val of_dense : ?tol:float -> Mat.t -> t
(** Entries with absolute value [<= tol] (default [0.]) are dropped. *)

val to_dense : t -> Mat.t
val identity : int -> t
val nnz : t -> int
val rows : t -> int
val cols : t -> int

val get : t -> int -> int -> float
(** Logarithmic in the row length. *)

val scale : float -> t -> t
val transpose : t -> t

val spmv : ?pool:Psdp_parallel.Pool.t -> t -> Vec.t -> Vec.t
(** [spmv a x] is [A x], parallel over rows. *)

val spmv_many : ?pool:Psdp_parallel.Pool.t -> t -> Vec.t array -> Vec.t array
(** [spmv_many a xs] is [[| A xs.(0); …; A xs.(p-1) |]] in one pass over
    the nonzeros (each entry is read once and serves every column),
    parallel over rows. Column [r] is byte-identical to [spmv a xs.(r)]. *)

val spmv_t : t -> Vec.t -> Vec.t
(** [Aᵀ x] without materializing the transpose (sequential scatter). *)

val row_dot : t -> int -> Vec.t -> float
(** Dot product of row [i] with a dense vector. *)

val frobenius_sq : t -> float
(** [Σ aᵢⱼ²]. *)

val equal : ?tol:float -> t -> t -> bool
val pp : Format.formatter -> t -> unit
