open Psdp_prelude
open Psdp_linalg

type t = {
  rows : int;
  cols : int;
  row_ptr : int array;
  col_idx : int array;
  values : float array;
}

let nnz t = Array.length t.values
let rows t = t.rows
let cols t = t.cols

let of_coo ~rows ~cols entries =
  if rows < 0 || cols < 0 then invalid_arg "Csr.of_coo: negative dimension";
  List.iter
    (fun (i, j, _) ->
      if i < 0 || i >= rows || j < 0 || j >= cols then
        invalid_arg
          (Printf.sprintf "Csr.of_coo: entry (%d,%d) out of %dx%d" i j rows cols))
    entries;
  let sorted =
    List.sort
      (fun (i1, j1, _) (i2, j2, _) -> compare (i1, j1) (i2, j2))
      entries
  in
  (* Merge duplicates and drop zeros. *)
  let merged = ref [] in
  List.iter
    (fun (i, j, v) ->
      match !merged with
      | (i', j', v') :: rest when i = i' && j = j' ->
          merged := (i, j, v +. v') :: rest
      | _ -> merged := (i, j, v) :: !merged)
    sorted;
  let cells = List.filter (fun (_, _, v) -> v <> 0.0) (List.rev !merged) in
  let n = List.length cells in
  let row_ptr = Array.make (rows + 1) 0 in
  let col_idx = Array.make n 0 in
  let values = Array.make n 0.0 in
  List.iteri
    (fun k (i, j, v) ->
      row_ptr.(i + 1) <- row_ptr.(i + 1) + 1;
      col_idx.(k) <- j;
      values.(k) <- v)
    cells;
  for i = 0 to rows - 1 do
    row_ptr.(i + 1) <- row_ptr.(i + 1) + row_ptr.(i)
  done;
  { rows; cols; row_ptr; col_idx; values }

let of_dense ?(tol = 0.0) m =
  let entries = ref [] in
  for i = Mat.rows m - 1 downto 0 do
    for j = Mat.cols m - 1 downto 0 do
      let v = Mat.get m i j in
      if Float.abs v > tol then entries := (i, j, v) :: !entries
    done
  done;
  of_coo ~rows:(Mat.rows m) ~cols:(Mat.cols m) !entries

let to_dense t =
  let m = Mat.create t.rows t.cols in
  for i = 0 to t.rows - 1 do
    for k = t.row_ptr.(i) to t.row_ptr.(i + 1) - 1 do
      Mat.set m i t.col_idx.(k) t.values.(k)
    done
  done;
  m

let identity n = of_coo ~rows:n ~cols:n (List.init n (fun i -> (i, i, 1.0)))

let get t i j =
  if i < 0 || i >= t.rows || j < 0 || j >= t.cols then
    invalid_arg "Csr.get: out of range";
  (* Binary search within the row: column indices are sorted. *)
  let lo = ref t.row_ptr.(i) and hi = ref (t.row_ptr.(i + 1) - 1) in
  let result = ref 0.0 in
  while !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let c = t.col_idx.(mid) in
    if c = j then begin
      result := t.values.(mid);
      lo := !hi + 1
    end
    else if c < j then lo := mid + 1
    else hi := mid - 1
  done;
  !result

let scale alpha t = { t with values = Array.map (fun v -> alpha *. v) t.values }

let transpose t =
  let n = nnz t in
  let counts = Array.make (t.cols + 1) 0 in
  for k = 0 to n - 1 do
    counts.(t.col_idx.(k) + 1) <- counts.(t.col_idx.(k) + 1) + 1
  done;
  for j = 0 to t.cols - 1 do
    counts.(j + 1) <- counts.(j + 1) + counts.(j)
  done;
  let row_ptr = Array.copy counts in
  let col_idx = Array.make n 0 in
  let values = Array.make n 0.0 in
  let cursor = Array.copy counts in
  for i = 0 to t.rows - 1 do
    for k = t.row_ptr.(i) to t.row_ptr.(i + 1) - 1 do
      let j = t.col_idx.(k) in
      let pos = cursor.(j) in
      cursor.(j) <- pos + 1;
      col_idx.(pos) <- i;
      values.(pos) <- t.values.(k)
    done
  done;
  { rows = t.cols; cols = t.rows; row_ptr; col_idx; values }

let spmv ?(pool = Psdp_parallel.Pool.sequential) t x =
  if Array.length x <> t.cols then invalid_arg "Csr.spmv: dimension mismatch";
  Cost.parallel ~work:(2 * nnz t) ~span:(2 * Util.ceil_div (nnz t) (max 1 t.rows));
  let y = Array.make t.rows 0.0 in
  Psdp_parallel.Pool.parallel_for_chunks pool ~lo:0 ~hi:t.rows
    (fun row_lo row_hi ->
      for i = row_lo to row_hi - 1 do
        let s = ref 0.0 in
        for k = t.row_ptr.(i) to t.row_ptr.(i + 1) - 1 do
          s := !s +. (t.values.(k) *. x.(t.col_idx.(k)))
        done;
        y.(i) <- !s
      done);
  y

(* Panel SpMV: one pass over the nonzeros serves every column. Per
   (row, column) the accumulation order over the row's nonzeros is
   identical to {!spmv}, so column [r] of the result is byte-identical
   to [spmv t xs.(r)] — the differential tests depend on it. *)
let spmv_many ?(pool = Psdp_parallel.Pool.sequential) t xs =
  let p = Array.length xs in
  Array.iter
    (fun x ->
      if Array.length x <> t.cols then
        invalid_arg "Csr.spmv_many: dimension mismatch")
    xs;
  Cost.parallel
    ~work:(2 * nnz t * max 1 p)
    ~span:(2 * Util.ceil_div (nnz t) (max 1 t.rows));
  let ys = Array.init p (fun _ -> Array.make t.rows 0.0) in
  if p > 0 then
    Psdp_parallel.Pool.parallel_for_chunks pool ~lo:0 ~hi:t.rows
      (fun row_lo row_hi ->
        let acc = Array.make p 0.0 in
        for i = row_lo to row_hi - 1 do
          Array.fill acc 0 p 0.0;
          for k = t.row_ptr.(i) to t.row_ptr.(i + 1) - 1 do
            let v = t.values.(k) and c = t.col_idx.(k) in
            for r = 0 to p - 1 do
              acc.(r) <- acc.(r) +. (v *. xs.(r).(c))
            done
          done;
          for r = 0 to p - 1 do
            ys.(r).(i) <- acc.(r)
          done
        done);
  ys

let spmv_t t x =
  if Array.length x <> t.rows then
    invalid_arg "Csr.spmv_t: dimension mismatch";
  Cost.serial (2 * nnz t);
  let y = Array.make t.cols 0.0 in
  for i = 0 to t.rows - 1 do
    let xi = x.(i) in
    if xi <> 0.0 then
      for k = t.row_ptr.(i) to t.row_ptr.(i + 1) - 1 do
        y.(t.col_idx.(k)) <- y.(t.col_idx.(k)) +. (xi *. t.values.(k))
      done
  done;
  y

let row_dot t i x =
  if i < 0 || i >= t.rows then invalid_arg "Csr.row_dot: row out of range";
  if Array.length x <> t.cols then invalid_arg "Csr.row_dot: dimension";
  let s = ref 0.0 in
  for k = t.row_ptr.(i) to t.row_ptr.(i + 1) - 1 do
    s := !s +. (t.values.(k) *. x.(t.col_idx.(k)))
  done;
  !s

let frobenius_sq t =
  Array.fold_left (fun acc v -> acc +. (v *. v)) 0.0 t.values

let equal ?tol a b =
  a.rows = b.rows && a.cols = b.cols
  && Mat.equal ?tol (to_dense a) (to_dense b)

let pp ppf t =
  Format.fprintf ppf "csr %dx%d nnz=%d" t.rows t.cols (nnz t)
