open Psdp_linalg

type t = {
  dim : int;
  factors : Factored.t array;
  q : Csr.t;  (* m × R concatenation of all factors *)
  qt : Csr.t;  (* R × m *)
  owner : int array;  (* column j of q belongs to constraint owner.(j) *)
  col_weight : float array;  (* w_j = x_{owner j}, kept in sync *)
  x : float array;  (* current constraint weights *)
  traces : float array;  (* Tr Aᵢ, cached *)
  lmax_uppers : float array;  (* per-constraint λmax upper bounds *)
}

let create factors =
  let n = Array.length factors in
  if n = 0 then invalid_arg "Weighted_gram.create: no factors";
  let dim = Factored.dim factors.(0) in
  Array.iteri
    (fun i f ->
      if Factored.dim f <> dim then
        invalid_arg
          (Printf.sprintf
             "Weighted_gram.create: factor %d has dimension %d, expected %d" i
             (Factored.dim f) dim))
    factors;
  let total_cols =
    Array.fold_left (fun acc f -> acc + Factored.inner_dim f) 0 factors
  in
  let owner = Array.make total_cols 0 in
  let entries = ref [] in
  let col_base = ref 0 in
  Array.iteri
    (fun i f ->
      let q = Factored.factor f in
      let { Csr.row_ptr; col_idx; values; _ } = q in
      for r = 0 to Csr.rows q - 1 do
        for k = row_ptr.(r) to row_ptr.(r + 1) - 1 do
          entries := (r, !col_base + col_idx.(k), values.(k)) :: !entries
        done
      done;
      for c = 0 to Factored.inner_dim f - 1 do
        owner.(!col_base + c) <- i
      done;
      col_base := !col_base + Factored.inner_dim f)
    factors;
  let q = Csr.of_coo ~rows:dim ~cols:total_cols !entries in
  {
    dim;
    factors;
    q;
    qt = Csr.transpose q;
    owner;
    col_weight = Array.make total_cols 0.0;
    x = Array.make n 0.0;
    traces = Array.map Factored.trace factors;
    lmax_uppers = Array.map Factored.lambda_max_upper factors;
  }

let dim t = t.dim
let num_constraints t = Array.length t.factors
let nnz t = Csr.nnz t.q

let set_weights t x =
  if Array.length x <> Array.length t.x then
    invalid_arg "Weighted_gram.set_weights: wrong length";
  Array.iteri
    (fun i v ->
      if v < 0.0 then invalid_arg "Weighted_gram.set_weights: negative weight";
      t.x.(i) <- v)
    x;
  for j = 0 to Array.length t.owner - 1 do
    t.col_weight.(j) <- t.x.(t.owner.(j))
  done

let weights t = Array.copy t.x

let apply ?pool t v =
  let u = Csr.spmv ?pool t.qt v in
  for j = 0 to Array.length u - 1 do
    u.(j) <- u.(j) *. t.col_weight.(j)
  done;
  Csr.spmv ?pool t.q u

(* Panel application: both sparse products sweep their nonzeros once for
   all columns. Per column the arithmetic matches [apply] exactly. *)
let apply_many ?pool t vs =
  let us = Csr.spmv_many ?pool t.qt vs in
  Array.iter
    (fun u ->
      for j = 0 to Array.length u - 1 do
        u.(j) <- u.(j) *. t.col_weight.(j)
      done)
    us;
  Csr.spmv_many ?pool t.q us

let trace t =
  let s = ref 0.0 in
  for i = 0 to Array.length t.x - 1 do
    s := !s +. (t.x.(i) *. t.traces.(i))
  done;
  !s

let to_dense t =
  let acc = Mat.create t.dim t.dim in
  Array.iteri
    (fun i f ->
      if t.x.(i) <> 0.0 then
        Mat.axpy acc ~alpha:t.x.(i) (Factored.to_dense f))
    t.factors;
  acc

let lambda_max_upper_bound t =
  let s = ref 0.0 in
  for i = 0 to Array.length t.x - 1 do
    s := !s +. (t.x.(i) *. t.lmax_uppers.(i))
  done;
  !s
