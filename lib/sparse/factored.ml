open Psdp_prelude
open Psdp_linalg

type t = {
  q : Csr.t;
  qt : Csr.t;  (* transpose, precomputed: both products need both layouts *)
  trace : float;  (* ‖Q‖²_F, cached *)
}

let of_csr q =
  { q; qt = Csr.transpose q; trace = Csr.frobenius_sq q }

let of_dense_factor m = of_csr (Csr.of_dense m)

let of_dense_psd ?(tol = 1e-10) a =
  let { Eig.values; vectors } = Eig.symmetric a in
  let n = Array.length values in
  let lmax = if n = 0 then 0.0 else Float.max 0.0 values.(0) in
  let cutoff = tol *. Float.max 1e-300 lmax in
  if lmax > 0.0 && values.(n - 1) < -.(1e-6 *. lmax) then
    invalid_arg "Factored.of_dense_psd: matrix has a negative eigenvalue";
  (* Keep columns with eigenvalue above the cutoff: Q = V √Λ restricted. *)
  let keep = ref [] in
  for j = n - 1 downto 0 do
    if values.(j) > cutoff then keep := j :: !keep
  done;
  let kept = Array.of_list !keep in
  let r = Array.length kept in
  let factor =
    Mat.init n r (fun i k ->
        Mat.get vectors i kept.(k) *. sqrt values.(kept.(k)))
  in
  of_dense_factor factor

let of_dense_psd_pivoted ?tol a =
  match Cholesky.pivoted ?tol a with
  | f, rank ->
      if rank = 0 then
        invalid_arg "Factored.of_dense_psd_pivoted: matrix is (numerically) zero";
      of_dense_factor f
  | exception Cholesky.Not_positive_definite _ ->
      invalid_arg
        "Factored.of_dense_psd_pivoted: matrix has a negative eigenvalue"

let scale c a =
  if c < 0.0 then invalid_arg "Factored.scale: negative coefficient";
  of_csr (Csr.scale (sqrt c) a.q)

let dim a = Csr.rows a.q
let inner_dim a = Csr.cols a.q
let nnz a = Csr.nnz a.q
let factor a = a.q
let factor_t a = a.qt

let apply ?pool a v = Csr.spmv ?pool a.q (Csr.spmv ?pool a.qt v)

let apply_many ?pool a vs = Csr.spmv_many ?pool a.q (Csr.spmv_many ?pool a.qt vs)

(* Σ_r ‖Qᵀ zs.(r)‖² in ONE sweep of Qᵀ's nonzeros: row j of Qᵀ yields
   u_{r,j} for every column r before moving on, so work tracks
   nnz(Q)·|zs| with each nonzero loaded once (Corollary 1.2's
   nnz-proportional promise, now also cache-proportional). Accumulation
   per (j, r) follows the row's nonzeros in order and the total sums
   per-column subtotals in column order — byte-identical to the
   column-at-a-time [Σ_r ‖spmv qt zs.(r)‖²]. *)
let gram_dot_many a zs =
  let p = Array.length zs in
  if p = 0 then 0.0
  else begin
    let qt = a.qt in
    Array.iter
      (fun z ->
        if Array.length z <> Csr.cols qt then
          invalid_arg "Factored.gram_dot_many: dimension mismatch")
      zs;
    Cost.parallel
      ~work:(2 * Csr.nnz qt * p)
      ~span:(2 * Util.ceil_div (Csr.nnz qt) (max 1 (Csr.rows qt)));
    let { Csr.row_ptr; col_idx; values; _ } = qt in
    let partial = Array.make p 0.0 in
    let urow = Array.make p 0.0 in
    for j = 0 to Csr.rows qt - 1 do
      Array.fill urow 0 p 0.0;
      for k = row_ptr.(j) to row_ptr.(j + 1) - 1 do
        let v = values.(k) and c = col_idx.(k) in
        for r = 0 to p - 1 do
          urow.(r) <- urow.(r) +. (v *. zs.(r).(c))
        done
      done;
      for r = 0 to p - 1 do
        partial.(r) <- partial.(r) +. (urow.(r) *. urow.(r))
      done
    done;
    let s = ref 0.0 in
    for r = 0 to p - 1 do
      s := !s +. partial.(r)
    done;
    !s
  end

let trace a = a.trace

let to_dense a =
  Mat.mul (Csr.to_dense a.q) (Csr.to_dense a.qt)

let dot_dense a s =
  if Mat.rows s <> dim a || Mat.cols s <> dim a then
    invalid_arg "Factored.dot_dense: dimension mismatch";
  (* Tr[QQᵀS] = Σ_j qⱼᵀ S qⱼ, iterating over rows of Qᵀ (= columns of Q). *)
  let total = ref 0.0 in
  let qt = a.qt in
  for j = 0 to Csr.rows qt - 1 do
    (* column j of Q as a sparse row of Qᵀ *)
    let { Csr.row_ptr; col_idx; values; _ } = qt in
    let s_q = Array.make (dim a) 0.0 in
    for k = row_ptr.(j) to row_ptr.(j + 1) - 1 do
      let i = col_idx.(k) and v = values.(k) in
      (* accumulate S * q_j *)
      for t = 0 to dim a - 1 do
        s_q.(t) <- s_q.(t) +. (Mat.get s t i *. v)
      done
    done;
    for k = row_ptr.(j) to row_ptr.(j + 1) - 1 do
      total := !total +. (values.(k) *. s_q.(col_idx.(k)))
    done
  done;
  !total

let quadratic a v =
  let u = Csr.spmv a.qt v in
  Vec.dot u u

let lambda_max a =
  let r = inner_dim a in
  (* G = QᵀQ, built one column of Q at a time through the transpose. *)
  let g = Mat.create r r in
  let { Csr.row_ptr; col_idx; values; _ } = a.qt in
  for j1 = 0 to r - 1 do
    for j2 = j1 to r - 1 do
      (* sparse dot of columns j1 and j2 of Q = rows j1, j2 of Qᵀ *)
      let k1 = ref row_ptr.(j1) and k2 = ref row_ptr.(j2) in
      let s = ref 0.0 in
      while !k1 < row_ptr.(j1 + 1) && !k2 < row_ptr.(j2 + 1) do
        let c1 = col_idx.(!k1) and c2 = col_idx.(!k2) in
        if c1 = c2 then begin
          s := !s +. (values.(!k1) *. values.(!k2));
          incr k1;
          incr k2
        end
        else if c1 < c2 then incr k1
        else incr k2
      done;
      Mat.set g j1 j2 !s;
      Mat.set g j2 j1 !s
    done
  done;
  Float.max 0.0 (Eig.lambda_max g)

let lambda_max_upper a =
  (* λmax(QQᵀ) = ‖Q‖₂² <= min(‖Q‖²_F, ‖Q‖₁·‖Q‖_∞). *)
  let q = a.q in
  let row_abs = Array.make (Csr.rows q) 0.0 in
  let col_abs = Array.make (Csr.cols q) 0.0 in
  let { Csr.row_ptr; col_idx; values; _ } = q in
  for i = 0 to Csr.rows q - 1 do
    for k = row_ptr.(i) to row_ptr.(i + 1) - 1 do
      let v = Float.abs values.(k) in
      row_abs.(i) <- row_abs.(i) +. v;
      col_abs.(col_idx.(k)) <- col_abs.(col_idx.(k)) +. v
    done
  done;
  let max_of arr = Array.fold_left Float.max 0.0 arr in
  Float.min a.trace (max_of row_abs *. max_of col_abs)
