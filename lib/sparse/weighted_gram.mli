(** The solver's cumulative matrix [Ψ(x) = Σᵢ xᵢ Aᵢ] as an implicit
    operator, for factored constraints [Aᵢ = QᵢQᵢᵀ].

    Horizontally concatenating the factors into one [m × R] matrix
    [Q = [Q₁ | Q₂ | … | Qₙ]] gives [Ψ(x) = Q·diag(w)·Qᵀ] where column [j]
    of [Q] carries weight [w_j = x_{owner(j)}]. One application is two
    sparse matvecs plus a diagonal scaling — [O(q)] work total, which is
    what makes each solver iteration nearly-linear (Corollary 1.2). *)

open Psdp_linalg

type t

val create : Factored.t array -> t
(** All factors must share the same outer dimension. Weights start at 0. *)

val dim : t -> int
val num_constraints : t -> int
val nnz : t -> int
(** Total non-zeros across all factors — the paper's [q]. *)

val set_weights : t -> float array -> unit
(** [set_weights t x] installs the constraint weights [x] (length
    [num_constraints], non-negative). O(R) — just a per-column copy. *)

val weights : t -> float array
(** Current per-constraint weights (a copy). *)

val apply : ?pool:Psdp_parallel.Pool.t -> t -> Vec.t -> Vec.t
(** [apply t v = Ψ(x) v]. *)

val apply_many : ?pool:Psdp_parallel.Pool.t -> t -> Vec.t array -> Vec.t array
(** [apply_many t vs]: all of [Ψ(x) vs.(r)] with one pass over the
    nonzeros per sparse product (each entry read once, serving every
    column). Column [r] is byte-identical to [apply t vs.(r)] — the
    batched polynomial chains in [bigDotExp] rely on this. *)

val trace : t -> float
(** [Tr Ψ(x) = Σᵢ xᵢ Tr Aᵢ], O(n). *)

val to_dense : t -> Mat.t
(** Materialize [Ψ(x)] (testing / dense fallback). *)

val lambda_max_upper_bound : t -> float
(** [Σᵢ xᵢ · (upper bound on λmax(Aᵢ))] — a crude but certified upper
    bound used to size polynomial degrees. *)
