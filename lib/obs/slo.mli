(** Serve-tier SLOs: a declared latency objective ("99% of requests
    under 500ms") tracked as multi-window error-budget burn rates.

    The error budget is the tolerated breach fraction [1 - objective];
    a window's burn rate is its observed breach fraction divided by the
    budget, so burn 1.0 consumes the budget exactly as fast as it
    accrues. The live tracker exports [psdp_slo_*] series when given a
    registry; {!report_of_events} computes the same numbers offline
    from a trace stream for [psdp slo report]. *)

type target = { objective : float; latency : float }

val make_target : objective:float -> latency:float -> target
(** Validates [objective] in (0,1) and [latency] > 0; raises
    [Invalid_argument] otherwise. *)

val parse_target : string -> (target, string) result
(** ["0.99@0.5"] — 99% of requests under 0.5 seconds. *)

val target_to_string : target -> string
val budget : target -> float  (** [1 - objective] *)

(** {1 Live tracker} *)

type t

val create :
  ?registry:Metrics.t -> ?windows:(string * float) list -> target -> t
(** [windows] are (label, span-seconds) pairs, default 5m and 1h, each
    a 60-slot ring rotated lazily — no background thread. With a
    registry, exports [psdp_slo_latency_target_seconds],
    [psdp_slo_objective], [psdp_slo_requests_total],
    [psdp_slo_breaches_total], [psdp_slo_burn_rate{window=...}] and
    [psdp_slo_error_budget_remaining]. *)

val observe : ?now:float -> t -> float -> unit
(** Record one request latency. [now] (default {!Psdp_prelude.Timer.now})
    anchors window rotation; tests inject it for determinism. *)

val burn_rate : ?now:float -> t -> string -> float
(** Current burn for a window label; raises on unknown labels. *)

val requests : t -> int
val breaches : t -> int

(** {1 Offline report} *)

type report = {
  r_target : target;
  r_requests : int;
  r_breaches : int;
  r_compliance : float;  (** observed in-target fraction *)
  r_p50 : float;
  r_p95 : float;
  r_p99 : float;  (** latency quantiles; [nan] with no samples *)
  r_burn : (string * float) list;  (** trailing windows from the last stamp *)
  r_budget_consumed : float;  (** breaches / tolerated breaches *)
}

val report :
  ?windows:(string * float) list -> target -> (float * float) list -> report
(** From (stamp, latency) samples; windows trail the latest stamp. *)

val report_of_events :
  ?windows:(string * float) list -> target -> Psdp_prelude.Json.t list -> report
(** Samples from a trace stream: [serve_completed] latencies when
    present, else [job_finished] elapsed times. *)

val report_to_json : report -> Psdp_prelude.Json.t
val pp_report : Format.formatter -> report -> unit
