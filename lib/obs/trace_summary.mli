(** Post-hoc analytics over an engine telemetry trace.

    Turns the JSONL stream written by [psdp batch --trace] /
    [psdp serve --trace] (schema: {!Psdp_engine.Trace}) into the tables
    behind [psdp trace summarize]: per-job queue wait and run time,
    per-phase latency quantiles (p50/p90/p99 via
    {!Psdp_prelude.Stats.quantile}), a work-attribution table from the
    engine's per-job [profile] events (present when the engine runs with
    a profiler attached), and cache hit/warm/miss counts.

    The summarizer is schema-tolerant in the same way the engine's other
    consumers are: unknown event kinds are skipped, and lines that fail
    to parse as JSON at all (a torn tail from a crashed writer, alien
    content) are counted in {!field-t.skipped} rather than failing the
    summary — operators read these files mid-incident. *)

type phase_stat = {
  phase : string;
  samples : int;
  total : float;
  p50 : float;
  p90 : float;
  p99 : float;  (** quantiles are [nan] when there are no samples *)
}

type job_row = {
  job : string;
  status : string;
  queue_wait : float;  (** [job_submitted] → [job_started], seconds *)
  run : float;  (** the job's reported [elapsed] (fallback: stamp delta) *)
  calls : int;
  iters : int;
}

type attribution_row = {
  path : string;  (** span path, e.g. ["solve/decision_call/iteration"] *)
  count : int;
  seconds : float;
  share : float;  (** fraction of the summed root-span seconds *)
}

type t = {
  events : int;
  skipped : int;  (** unparseable lines, skipped with a warning *)
  span : float;  (** seconds between first and last event stamp *)
  jobs : job_row list;  (** in first-appearance order *)
  latencies : phase_stat list;
      (** [queue_wait], [job_run], and [decision_call] (gaps between
          consecutive decision-call stamps within a job) *)
  attribution : attribution_row list;  (** empty without [profile] events *)
  cache : (string * int) list;  (** cache event status → count *)
  faults : (string * int) list;
      (** fault-layer event counts ([job_fault], [job_retry],
          [job_quarantined], [store_fault], [breaker_open],
          [runner_restarted], [sketch_resample]); empty for clean runs *)
  serve : (string * int) list;
      (** serve-tier event counts ([serve_admitted], [serve_rejected],
          [eps_degraded], [serve_completed]); empty for batch traces *)
}

val of_events : Psdp_prelude.Json.t list -> t
(** Summarize parsed events. Objects without [t]/[kind] are ignored. *)

val of_lines : string list -> t
(** Parse JSONL lines (blank lines allowed) and summarize. Malformed
    lines are skipped and counted, never fatal. *)

val load : string -> (t, string) result
(** [of_lines] over a file's contents; only I/O errors come back as
    [Error] — an empty or partially torn file yields an [Ok] summary. *)

val pp : Format.formatter -> t -> unit
(** The human-readable report [psdp trace summarize] prints. *)
