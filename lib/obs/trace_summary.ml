open Psdp_prelude

type phase_stat = {
  phase : string;
  samples : int;
  total : float;
  p50 : float;
  p90 : float;
  p99 : float;
}

type job_row = {
  job : string;
  status : string;
  queue_wait : float;
  run : float;
  calls : int;
  iters : int;
}

type attribution_row = {
  path : string;
  count : int;
  seconds : float;
  share : float;  (* of the summed root-span time *)
}

type t = {
  events : int;
  skipped : int;  (* unparseable lines (torn tail, alien content) *)
  span : float;  (* time covered by the trace, seconds *)
  jobs : job_row list;
  latencies : phase_stat list;
  attribution : attribution_row list;
  cache : (string * int) list;  (* status -> count, e.g. hit/warm/miss *)
  faults : (string * int) list;  (* fault event kind -> count *)
  serve : (string * int) list;  (* serve event kind -> count *)
}

let fault_kinds =
  [
    "job_fault"; "job_retry"; "job_quarantined"; "store_fault";
    "breaker_open"; "runner_restarted"; "sketch_resample";
  ]

let serve_kinds =
  [ "serve_admitted"; "serve_rejected"; "eps_degraded"; "serve_completed" ]

(* ---------------------------------------------------------------- *)
(* Accumulation *)

type job_acc = {
  mutable submitted : float option;
  mutable started : float option;
  mutable finished : float option;
  mutable jstatus : string;
  mutable elapsed : float option;
  mutable jcalls : int;
  mutable jiters : int;
  mutable call_stamps : float list;  (* newest first *)
}

let quantiles name samples =
  let arr = Array.of_list samples in
  {
    phase = name;
    samples = Array.length arr;
    total = Util.sum_array arr;
    p50 = (if arr = [||] then Float.nan else Stats.quantile arr 0.5);
    p90 = (if arr = [||] then Float.nan else Stats.quantile arr 0.9);
    p99 = (if arr = [||] then Float.nan else Stats.quantile arr 0.99);
  }

let of_events events =
  let jobs : (string, job_acc) Hashtbl.t = Hashtbl.create 16 in
  let job_order = ref [] in
  let acc id =
    match Hashtbl.find_opt jobs id with
    | Some a -> a
    | None ->
        let a =
          {
            submitted = None;
            started = None;
            finished = None;
            jstatus = "?";
            elapsed = None;
            jcalls = 0;
            jiters = 0;
            call_stamps = [];
          }
        in
        Hashtbl.replace jobs id a;
        job_order := id :: !job_order;
        a
  in
  let cache_counts : (string, int) Hashtbl.t = Hashtbl.create 4 in
  let fault_counts : (string, int) Hashtbl.t = Hashtbl.create 4 in
  let serve_counts : (string, int) Hashtbl.t = Hashtbl.create 4 in
  let spans : (string, int * float) Hashtbl.t = Hashtbl.create 16 in
  let span_order = ref [] in
  let t_min = ref Float.infinity and t_max = ref Float.neg_infinity in
  let n_events = ref 0 in
  List.iter
    (fun ev ->
      match (Option.bind (Json.mem "t" ev) Json.num,
             Option.bind (Json.mem "kind" ev) Json.str) with
      | None, _ | _, None -> ()  (* alien line: not a trace event *)
      | Some t, Some kind -> (
          incr n_events;
          if t < !t_min then t_min := t;
          if t > !t_max then t_max := t;
          let job = Option.bind (Json.mem "job" ev) Json.str in
          let num field =
            Option.bind (Json.mem field ev) Json.num
          in
          match (kind, job) with
          | "job_submitted", Some id -> (acc id).submitted <- Some t
          | "job_started", Some id -> (acc id).started <- Some t
          | "job_finished", Some id ->
              let a = acc id in
              a.finished <- Some t;
              a.jstatus <-
                Option.value ~default:"?"
                  (Option.bind (Json.mem "status" ev) Json.str);
              a.elapsed <- num "elapsed";
              (match num "calls" with
              | Some c -> a.jcalls <- int_of_float c
              | None -> ());
              (match num "iters" with
              | Some i -> a.jiters <- int_of_float i
              | None -> ())
          | "decision_call", Some id ->
              let a = acc id in
              a.call_stamps <- t :: a.call_stamps
          | "cache", _ ->
              let status =
                Option.value ~default:"?"
                  (Option.bind (Json.mem "status" ev) Json.str)
              in
              Hashtbl.replace cache_counts status
                (1 + Option.value ~default:0 (Hashtbl.find_opt cache_counts status))
          | k, _ when List.mem k fault_kinds ->
              Hashtbl.replace fault_counts k
                (1 + Option.value ~default:0 (Hashtbl.find_opt fault_counts k))
          | k, _ when List.mem k serve_kinds ->
              Hashtbl.replace serve_counts k
                (1 + Option.value ~default:0 (Hashtbl.find_opt serve_counts k))
          | "profile", _ -> (
              match Json.mem "spans" ev with
              | Some (Json.Obj paths) ->
                  List.iter
                    (fun (path, v) ->
                      let c =
                        Option.value ~default:0
                          (Option.bind (Json.mem "count" v) Json.int)
                      and s =
                        Option.value ~default:0.0
                          (Option.bind (Json.mem "total" v) Json.num)
                      in
                      (match Hashtbl.find_opt spans path with
                      | Some (c0, s0) ->
                          Hashtbl.replace spans path (c0 + c, s0 +. s)
                      | None ->
                          Hashtbl.replace spans path (c, s);
                          span_order := path :: !span_order))
                    paths
              | _ -> ())
          | _ -> ()))
    events;
  let job_rows =
    List.rev_map
      (fun id ->
        let a = Hashtbl.find jobs id in
        let queue_wait =
          match (a.submitted, a.started) with
          | Some s, Some r -> Float.max 0.0 (r -. s)
          | _ -> Float.nan
        in
        let run =
          match a.elapsed with
          | Some e -> e
          | None -> (
              match (a.started, a.finished) with
              | Some s, Some f -> f -. s
              | _ -> Float.nan)
        in
        { job = id; status = a.jstatus; queue_wait; run;
          calls = a.jcalls; iters = a.jiters })
      !job_order
  in
  (* Per-decision-call latency: gaps between consecutive decision_call
     stamps within one job, closed by the job_finished stamp (the last
     call's work ends when the job does). *)
  let call_latencies =
    Hashtbl.fold
      (fun _ a l ->
        let stamps =
          match a.finished with
          | Some f when a.call_stamps <> [] -> f :: a.call_stamps
          | _ -> a.call_stamps
        in
        let rec gaps = function
          | later :: (earlier :: _ as rest) -> (later -. earlier) :: gaps rest
          | _ -> []
        in
        gaps stamps @ l)
      jobs []
  in
  let collect f = List.filter (fun v -> Float.is_finite v) (List.map f job_rows) in
  let latencies =
    [
      quantiles "queue_wait" (collect (fun j -> j.queue_wait));
      quantiles "job_run" (collect (fun j -> j.run));
      quantiles "decision_call" call_latencies;
    ]
  in
  let root_total =
    Hashtbl.fold
      (fun path (_, s) acc ->
        if String.contains path '/' then acc else acc +. s)
      spans 0.0
  in
  let attribution =
    List.rev !span_order
    |> List.map (fun path ->
           let count, seconds = Hashtbl.find spans path in
           { path; count; seconds;
             share = (if root_total > 0.0 then seconds /. root_total else 0.0) })
    |> List.sort (fun a b -> compare a.path b.path)
  in
  let cache =
    List.sort compare
      (Hashtbl.fold (fun k v l -> (k, v) :: l) cache_counts [])
  in
  let faults =
    List.filter_map
      (fun k -> Option.map (fun v -> (k, v)) (Hashtbl.find_opt fault_counts k))
      fault_kinds
  in
  let serve =
    List.filter_map
      (fun k -> Option.map (fun v -> (k, v)) (Hashtbl.find_opt serve_counts k))
      serve_kinds
  in
  {
    events = !n_events;
    skipped = 0;
    span = (if !n_events = 0 then 0.0 else !t_max -. !t_min);
    jobs = job_rows;
    latencies;
    attribution;
    cache;
    faults;
    serve;
  }

(* Lenient by design: a trace file from a crashed or still-writing
   process routinely ends in a torn line, and operators summarize such
   files mid-incident. Unparseable lines are counted, never fatal. *)
let of_lines lines =
  let events = ref [] and bad = ref 0 in
  List.iter
    (fun line ->
      let line = String.trim line in
      if line <> "" then
        match Json.parse line with
        | Ok ev -> events := ev :: !events
        | Error _ -> incr bad)
    lines;
  let t = of_events (List.rev !events) in
  { t with skipped = !bad }

let load path =
  match
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        let lines = ref [] in
        (try
           while true do
             lines := input_line ic :: !lines
           done
         with End_of_file -> ());
        List.rev !lines)
  with
  | lines -> Ok (of_lines lines)
  | exception Sys_error msg -> Error msg

(* ---------------------------------------------------------------- *)
(* Rendering *)

let pf = Format.fprintf

let pp_val ppf v =
  if Float.is_nan v then pf ppf "%9s" "-" else pf ppf "%9.4f" v

let pp ppf t =
  pf ppf "@[<v>trace: %d events over %.3f s, %d jobs@," t.events t.span
    (List.length t.jobs);
  if t.skipped > 0 then
    pf ppf "warning: %d unparseable line(s) skipped (torn tail?)@," t.skipped;
  pf ppf "@,";
  pf ppf "per-job:@,";
  pf ppf "  %-16s %-9s %9s %9s %7s %8s@," "job" "status" "wait(s)" "run(s)"
    "calls" "iters";
  List.iter
    (fun j ->
      pf ppf "  %-16s %-9s %a %a %7d %8d@," j.job j.status pp_val j.queue_wait
        pp_val j.run j.calls j.iters)
    t.jobs;
  pf ppf "@,phase latency quantiles (s):@,";
  pf ppf "  %-16s %7s %10s %9s %9s %9s@," "phase" "samples" "total" "p50"
    "p90" "p99";
  List.iter
    (fun s ->
      pf ppf "  %-16s %7d %10.4f %a %a %a@," s.phase s.samples s.total pp_val
        s.p50 pp_val s.p90 pp_val s.p99)
    t.latencies;
  if t.attribution <> [] then begin
    pf ppf "@,work attribution (profiled spans):@,";
    pf ppf "  %-44s %9s %11s %7s@," "path" "count" "seconds" "share";
    List.iter
      (fun a ->
        pf ppf "  %-44s %9d %11.6f %6.1f%%@," a.path a.count a.seconds
          (100.0 *. a.share))
      t.attribution
  end;
  if t.cache <> [] then begin
    pf ppf "@,cache:";
    List.iter (fun (k, v) -> pf ppf " %s=%d" k v) t.cache;
    pf ppf "@,"
  end;
  if t.faults <> [] then begin
    pf ppf "@,faults:";
    List.iter (fun (k, v) -> pf ppf " %s=%d" k v) t.faults;
    pf ppf "@,"
  end;
  if t.serve <> [] then begin
    pf ppf "@,serve:";
    List.iter (fun (k, v) -> pf ppf " %s=%d" k v) t.serve;
    pf ppf "@,"
  end;
  pf ppf "@]"
