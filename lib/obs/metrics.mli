(** Domain-safe metrics registry with Prometheus text exposition.

    A registry holds named time series of three kinds — monotonic
    {e counters}, free-floating {e gauges}, and log-bucketed
    {e histograms} — and renders them all as one Prometheus text
    exposition (v0.0.4) snapshot. Series are identified by family name
    plus an optional label set; registering the same (name, labels) pair
    twice returns the same series, so independent subsystems can share a
    registry without coordination.

    Concurrency: every operation is safe to call from any domain.
    Counters are lock-free atomics; gauges and histograms take a
    per-series mutex held only for the O(1) update. Nothing here blocks
    on I/O — {!render} produces a string and leaves writing it to the
    caller (the CLI writes snapshots via [Psdp_store.Atomic_io]).

    Histograms use geometric ("log") buckets [lo·ratioⁱ]: a fixed number
    of buckets covers many orders of magnitude of latency, and quantiles
    (p50/p90/p99) are recovered by interpolating within the bucket — see
    {!quantile}. The defaults (1 µs lower edge, ×2 ratio, 40 buckets)
    cover 1 µs to ≈ 9 minutes. *)

type t
(** A registry. *)

val create : unit -> t

(** {1 Counters} *)

type counter

val counter :
  t -> ?help:string -> ?labels:(string * string) list -> string -> counter
(** [counter reg name] registers (or finds) the counter series
    [name{labels}]. Raises [Invalid_argument] if [name] is not a valid
    Prometheus metric name or is already registered with a different
    kind. *)

val inc : counter -> unit
val add : counter -> int -> unit
(** Add [n >= 0]; counters are monotone by contract. *)

val record : counter -> int -> unit
(** [record c v] raises the counter to at least [v] — for mirroring an
    external monotone counter (e.g. {!Psdp_engine.Cache.stats}) into the
    registry without double counting. *)

val counter_value : counter -> int

(** {1 Gauges} *)

type gauge

val gauge :
  t -> ?help:string -> ?labels:(string * string) list -> string -> gauge

val set : gauge -> float -> unit
val gauge_value : gauge -> float

(** {1 Histograms} *)

type histogram

val histogram :
  t ->
  ?help:string ->
  ?labels:(string * string) list ->
  ?lo:float ->
  ?ratio:float ->
  ?buckets:int ->
  string ->
  histogram
(** Log-bucketed histogram: bucket [i] has upper bound [lo·ratioⁱ]
    (defaults: [lo = 1e-6], [ratio = 2.0], [buckets = 40]), plus the
    implicit [+Inf] bucket. Re-registration must use the same bucket
    scheme. *)

val observe : histogram -> float -> unit
val hist_count : histogram -> int
val hist_sum : histogram -> float

val quantile : histogram -> float -> float
(** [quantile h q] for [q ∈ [0,1]]: the value below which a fraction [q]
    of the observations fall, linearly interpolated inside the bucket
    (the first bucket interpolates from 0; observations above the last
    bound are pinned to it). [nan] when the histogram is empty. *)

val absorb : into:histogram -> histogram -> unit
(** Add the source histogram's bucket counts and sum into [into]. Both
    must use the same bucket scheme ([Invalid_argument] otherwise).
    Used to merge per-job profiles into a shared registry. *)

(** {1 Exposition} *)

val render : t -> string
(** Prometheus text exposition format v0.0.4: one [# HELP]/[# TYPE]
    header per family (families in registration order), then one line
    per series; histograms expand to cumulative [_bucket{le="…"}] lines
    plus [_sum] and [_count]. The output always ends with a newline —
    ready to write to a [.prom] file or serve as
    [text/plain; version=0.0.4]. *)
