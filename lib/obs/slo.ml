(* Serve-tier SLOs: a declared latency objective ("99% of requests
   under 500ms"), tracked live as multi-window error-budget burn rates
   and exported as psdp_slo_* series.

   The error budget is the tolerated breach fraction, 1 - objective. A
   window's burn rate is its observed breach fraction divided by that
   budget: burn 1.0 means the budget is being consumed exactly as fast
   as it accrues; burn 10 on a short window plus burn >1 on a long one
   is the classic page-worthy condition. Windows are fixed-width bucket
   rings rotated lazily on observe/read, so an idle tier decays to
   burn 0 without a background thread. *)

open Psdp_prelude

type target = { objective : float; latency : float }

let make_target ~objective ~latency =
  if objective <= 0.0 || objective >= 1.0 then
    invalid_arg "Slo: objective must lie in (0,1)";
  if latency <= 0.0 then invalid_arg "Slo: latency target must be positive";
  { objective; latency }

(* "0.99@0.5" — 99% of requests under 0.5s. *)
let parse_target s =
  match String.split_on_char '@' s with
  | [ obj; lat ] -> (
      match (float_of_string_opt obj, float_of_string_opt lat) with
      | Some objective, Some latency
        when objective > 0.0 && objective < 1.0 && latency > 0.0 ->
          Ok { objective; latency }
      | _ -> Error (Printf.sprintf "bad SLO %S: need OBJ in (0,1), LAT > 0" s))
  | _ -> Error (Printf.sprintf "bad SLO %S: expected OBJECTIVE@LATENCY" s)

let target_to_string t = Printf.sprintf "%g@%g" t.objective t.latency
let budget t = 1.0 -. t.objective

(* ------------------------------------------------------------------ *)
(* Live tracker *)

let default_windows = [ ("5m", 300.0); ("1h", 3600.0) ]
let ring_slots = 60

type window = {
  w_label : string;
  w_span : float;
  w_slot : float;  (* seconds per ring slot *)
  w_reqs : int array;
  w_breaches : int array;
  mutable w_epoch : int;  (* absolute slot index of the current head *)
  w_burn : Metrics.gauge option;
}

type t = {
  tgt : target;
  windows : window list;
  mutable requests : int;
  mutable breaches : int;
  mutex : Mutex.t;
  g_requests : Metrics.counter option;
  g_breaches : Metrics.counter option;
  g_budget : Metrics.gauge option;
}

let create ?registry ?(windows = default_windows) tgt =
  ignore (make_target ~objective:tgt.objective ~latency:tgt.latency);
  let reg = registry in
  Option.iter
    (fun reg ->
      Metrics.set
        (Metrics.gauge reg ~help:"declared SLO latency threshold, seconds"
           "psdp_slo_latency_target_seconds")
        tgt.latency;
      Metrics.set
        (Metrics.gauge reg ~help:"declared SLO objective (fraction in-target)"
           "psdp_slo_objective")
        tgt.objective)
    reg;
  {
    tgt;
    windows =
      List.map
        (fun (label, span) ->
          if span <= 0.0 then invalid_arg "Slo: window span must be positive";
          {
            w_label = label;
            w_span = span;
            w_slot = span /. float_of_int ring_slots;
            w_reqs = Array.make ring_slots 0;
            w_breaches = Array.make ring_slots 0;
            w_epoch = 0;
            w_burn =
              Option.map
                (fun reg ->
                  Metrics.gauge reg
                    ~labels:[ ("window", label) ]
                    ~help:"error-budget burn rate (breach rate / budget)"
                    "psdp_slo_burn_rate")
                reg;
          })
        windows;
    requests = 0;
    breaches = 0;
    mutex = Mutex.create ();
    g_requests =
      Option.map
        (fun reg ->
          Metrics.counter reg ~help:"requests observed against the SLO"
            "psdp_slo_requests_total")
        reg;
    g_breaches =
      Option.map
        (fun reg ->
          Metrics.counter reg ~help:"requests over the SLO latency target"
            "psdp_slo_breaches_total")
        reg;
    g_budget =
      Option.map
        (fun reg ->
          Metrics.gauge reg
            ~help:"cumulative error budget remaining (1 = untouched, <0 = blown)"
            "psdp_slo_error_budget_remaining")
        reg;
  }

(* Advance the ring head to [now], zeroing every slot the head skips
   over. Skipping more than a full revolution clears the ring. *)
let rotate w ~now =
  let slot = int_of_float (Float.max 0.0 now /. w.w_slot) in
  if slot > w.w_epoch then begin
    let gap = min ring_slots (slot - w.w_epoch) in
    for i = 1 to gap do
      let idx = (w.w_epoch + i) mod ring_slots in
      w.w_reqs.(idx) <- 0;
      w.w_breaches.(idx) <- 0
    done;
    w.w_epoch <- slot
  end

let window_counts w =
  ( Array.fold_left ( + ) 0 w.w_reqs,
    Array.fold_left ( + ) 0 w.w_breaches )

let burn_of tgt ~reqs ~breaches =
  if reqs = 0 then 0.0
  else float_of_int breaches /. float_of_int reqs /. budget tgt

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let observe ?now t latency =
  let now = match now with Some n -> n | None -> Timer.now () in
  let breach = latency > t.tgt.latency in
  locked t (fun () ->
      t.requests <- t.requests + 1;
      if breach then t.breaches <- t.breaches + 1;
      List.iter
        (fun w ->
          rotate w ~now;
          let idx = w.w_epoch mod ring_slots in
          w.w_reqs.(idx) <- w.w_reqs.(idx) + 1;
          if breach then w.w_breaches.(idx) <- w.w_breaches.(idx) + 1;
          match w.w_burn with
          | Some g ->
              let reqs, breaches = window_counts w in
              Metrics.set g (burn_of t.tgt ~reqs ~breaches)
          | None -> ())
        t.windows;
      Option.iter Metrics.inc t.g_requests;
      if breach then Option.iter Metrics.inc t.g_breaches;
      match t.g_budget with
      | Some g ->
          let allowed = float_of_int t.requests *. budget t.tgt in
          Metrics.set g
            (if allowed > 0.0 then 1.0 -. (float_of_int t.breaches /. allowed)
             else 1.0)
      | None -> ())

let burn_rate ?now t label =
  let now = match now with Some n -> n | None -> Timer.now () in
  locked t (fun () ->
      match List.find_opt (fun w -> w.w_label = label) t.windows with
      | None -> invalid_arg (Printf.sprintf "Slo: unknown window %S" label)
      | Some w ->
          rotate w ~now;
          let reqs, breaches = window_counts w in
          burn_of t.tgt ~reqs ~breaches)

let requests t = locked t (fun () -> t.requests)
let breaches t = locked t (fun () -> t.breaches)

(* ------------------------------------------------------------------ *)
(* Offline report (from trace streams) *)

type report = {
  r_target : target;
  r_requests : int;
  r_breaches : int;
  r_compliance : float;  (* observed in-target fraction *)
  r_p50 : float;
  r_p95 : float;
  r_p99 : float;
  r_burn : (string * float) list;  (* trailing windows, anchored at t_max *)
  r_budget_consumed : float;  (* breaches / allowed breaches *)
}

let report ?(windows = default_windows) tgt samples =
  let n = List.length samples in
  let breaches =
    List.fold_left
      (fun acc (_, l) -> if l > tgt.latency then acc + 1 else acc)
      0 samples
  in
  let lat = Array.of_list (List.map snd samples) in
  let q p = if lat = [||] then Float.nan else Stats.quantile lat p in
  let t_max = List.fold_left (fun acc (t, _) -> Float.max acc t) 0.0 samples in
  let burn =
    List.map
      (fun (label, span) ->
        let reqs = ref 0 and brs = ref 0 in
        List.iter
          (fun (t, l) ->
            if t > t_max -. span then begin
              incr reqs;
              if l > tgt.latency then incr brs
            end)
          samples;
        (label, burn_of tgt ~reqs:!reqs ~breaches:!brs))
      windows
  in
  {
    r_target = tgt;
    r_requests = n;
    r_breaches = breaches;
    r_compliance =
      (if n = 0 then 1.0
       else 1.0 -. (float_of_int breaches /. float_of_int n));
    r_p50 = q 0.5;
    r_p95 = q 0.95;
    r_p99 = q 0.99;
    r_burn = burn;
    r_budget_consumed =
      (let allowed = float_of_int n *. budget tgt in
       if allowed > 0.0 then float_of_int breaches /. allowed else 0.0);
  }

(* Latency samples from a trace stream: serve_completed events carry an
   explicit admission-to-response latency; batch/worker streams fall
   back to job_finished elapsed, so a distributed smoke trace still
   yields a meaningful report. *)
let samples_of_events events =
  let serve = ref [] and finished = ref [] in
  List.iter
    (fun ev ->
      match
        ( Option.bind (Json.mem "t" ev) Json.num,
          Option.bind (Json.mem "kind" ev) Json.str )
      with
      | Some t, Some "serve_completed" -> (
          match Option.bind (Json.mem "latency" ev) Json.num with
          | Some l -> serve := (t, l) :: !serve
          | None -> ())
      | Some t, Some "job_finished" -> (
          match Option.bind (Json.mem "elapsed" ev) Json.num with
          | Some l -> finished := (t, l) :: !finished
          | None -> ())
      | _ -> ())
    events;
  if !serve <> [] then List.rev !serve else List.rev !finished

let report_of_events ?windows tgt events =
  report ?windows tgt (samples_of_events events)

let report_to_json r =
  Json.Obj
    [
      ("objective", Json.Num r.r_target.objective);
      ("latency_target", Json.Num r.r_target.latency);
      ("requests", Json.Num (float_of_int r.r_requests));
      ("breaches", Json.Num (float_of_int r.r_breaches));
      ("compliance", Json.Num r.r_compliance);
      ("p50", Json.Num r.r_p50);
      ("p95", Json.Num r.r_p95);
      ("p99", Json.Num r.r_p99);
      ("budget_consumed", Json.Num r.r_budget_consumed);
      ( "burn",
        Json.Obj (List.map (fun (w, b) -> (w, Json.Num b)) r.r_burn) );
    ]

let pf = Format.fprintf

let pp_val ppf v = if Float.is_nan v then pf ppf "-" else pf ppf "%.4f" v

let pp_report ppf r =
  pf ppf "@[<v>slo: %.4g%% of requests under %gs@," (100.0 *. r.r_target.objective)
    r.r_target.latency;
  pf ppf "  requests %d, breaches %d, compliance %.4f (budget consumed %.2f)@,"
    r.r_requests r.r_breaches r.r_compliance r.r_budget_consumed;
  pf ppf "  latency p50 %a  p95 %a  p99 %a@," pp_val r.r_p50 pp_val r.r_p95
    pp_val r.r_p99;
  pf ppf "  burn rates:";
  List.iter (fun (w, b) -> pf ppf " %s=%.3f" w b) r.r_burn;
  pf ppf "@,@]"
