(* Cross-process trace assembly: merge the JSONL span streams written
   by client, coordinator, worker and serve processes into one tree per
   trace id, then attribute wall clock to named segments.

   Each process stamps events with its own monotonic clock, so stamps
   from different files are mutually meaningless — possibly skewed by
   hours or negative. The tree shape therefore comes from parent links
   alone; timestamps are only ever compared between two spans of the
   same (role, pid) stream, and then only to order siblings for
   display. Attribution likewise never subtracts stamps across
   processes: every span carries its own duration, and a node's self
   time is its duration minus its children's (clamped at zero), which
   telescopes to the root duration when spans nest properly. *)

open Psdp_prelude

type span = {
  ctx : Trace_context.t;
  name : string;
  role : string;  (* "?" when the stream was written untagged *)
  pid : int;  (* 0 when untagged *)
  job : string option;
  dur : float;  (* seconds, self-reported by the emitting process *)
  finish : float;  (* local stamp of emission; same-process order only *)
}

type node = { span : span; mutable children : node list; mutable self : float }

type tree = {
  trace_id : string;
  t_job : string option;
  roots : node list;
  span_count : int;
  procs : (string * int) list;  (* distinct (role, pid) that contributed *)
  orphans : int;  (* parent link pointed outside the merged streams *)
}

type t = {
  trees : tree list;
  spans : int;
  skipped : int;  (* unparseable lines / non-span or context-less events *)
}

(* ------------------------------------------------------------------ *)
(* Parsing *)

let span_of_event ev =
  match
    ( Option.bind (Json.mem "kind" ev) Json.str,
      Option.bind (Option.bind (Json.mem "ctx" ev) Json.str)
        Trace_context.of_string,
      Option.bind (Json.mem "name" ev) Json.str,
      Option.bind (Json.mem "dur" ev) Json.num )
  with
  | Some "span", Some ctx, Some name, Some dur ->
      Some
        {
          ctx;
          name;
          role =
            Option.value ~default:"?"
              (Option.bind (Json.mem "role" ev) Json.str);
          pid =
            Option.value ~default:0 (Option.bind (Json.mem "pid" ev) Json.int);
          job = Option.bind (Json.mem "job" ev) Json.str;
          dur = Float.max 0.0 dur;
          finish =
            Option.value ~default:0.0
              (Option.bind (Json.mem "t" ev) Json.num);
        }
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Tree building *)

let start s = s.finish -. s.dur

let sort_siblings nodes =
  List.sort
    (fun a b ->
      (* Same process: the local clock is coherent, order by start.
         Cross-process siblings: order by (role, pid, name) — stable
         under any skew. *)
      if a.span.role = b.span.role && a.span.pid = b.span.pid then
        compare
          (start a.span, a.span.name)
          (start b.span, b.span.name)
      else
        compare
          (a.span.role, a.span.pid, a.span.name)
          (b.span.role, b.span.pid, b.span.name))
    nodes

let rec finalize node =
  node.children <- sort_siblings node.children;
  List.iter finalize node.children;
  let child_total =
    List.fold_left (fun acc c -> acc +. c.span.dur) 0.0 node.children
  in
  node.self <- Float.max 0.0 (node.span.dur -. child_total)

let build_tree trace_id spans =
  let nodes = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun s ->
      let id = s.ctx.Trace_context.span_id in
      (* A span id seen twice (e.g. a replayed stream merged with
         itself) keeps its first occurrence; duplicates would double
         every duration under it. *)
      if not (Hashtbl.mem nodes id) then begin
        Hashtbl.replace nodes id { span = s; children = []; self = 0.0 };
        order := id :: !order
      end)
    spans;
  let roots = ref [] and orphans = ref 0 in
  List.iter
    (fun id ->
      let n = Hashtbl.find nodes id in
      match n.span.ctx.Trace_context.parent_id with
      | None -> roots := n :: !roots
      | Some p -> (
          match Hashtbl.find_opt nodes p with
          | Some parent when parent != n -> parent.children <- n :: parent.children
          | _ ->
              (* The parent's stream was not merged in (or the link is
                 damaged): keep the subtree visible as an extra root
                 rather than dropping it. *)
              incr orphans;
              roots := n :: !roots))
    (List.rev !order);
  let roots = sort_siblings !roots in
  List.iter finalize roots;
  let procs =
    List.sort_uniq compare
      (List.map (fun s -> (s.role, s.pid)) spans)
  in
  let t_job = List.find_map (fun s -> s.job) spans in
  {
    trace_id;
    t_job;
    roots;
    span_count = Hashtbl.length nodes;
    procs;
    orphans = !orphans;
  }

let of_events events =
  let by_trace = Hashtbl.create 8 in
  let order = ref [] in
  let spans = ref 0 and skipped = ref 0 in
  List.iter
    (fun ev ->
      match span_of_event ev with
      | None -> incr skipped
      | Some s ->
          incr spans;
          let tid = s.ctx.Trace_context.trace_id in
          (match Hashtbl.find_opt by_trace tid with
          | Some l -> Hashtbl.replace by_trace tid (s :: l)
          | None ->
              Hashtbl.replace by_trace tid [ s ];
              order := tid :: !order))
    events;
  let trees =
    List.rev_map
      (fun tid -> build_tree tid (List.rev (Hashtbl.find by_trace tid)))
      !order
  in
  { trees; spans = !spans; skipped = !skipped }

(* Lenient line parsing: a torn tail or an alien line costs one skipped
   count, never the whole assembly. *)
let of_lines lines =
  let events = ref [] and bad = ref 0 in
  List.iter
    (fun line ->
      let line = String.trim line in
      if line <> "" then
        match Json.parse line with
        | Ok ev -> events := ev :: !events
        | Error _ -> incr bad)
    lines;
  let t = of_events (List.rev !events) in
  { t with skipped = t.skipped + !bad }

let load_files paths =
  let read path =
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let lines = ref [] in
        (try
           while true do
             lines := input_line ic :: !lines
           done
         with End_of_file -> ());
        List.rev !lines)
  in
  let rec go acc = function
    | [] -> Ok (of_lines (List.concat (List.rev acc)))
    | path :: rest -> (
        match read path with
        | lines -> go (lines :: acc) rest
        | exception Sys_error msg -> Error msg)
  in
  go [] paths

(* ------------------------------------------------------------------ *)
(* Analytics *)

type seg = {
  path : string;  (* "request/assign/exec" *)
  role : string;
  seconds : float;  (* critical path: span duration; attribution: self *)
  share : float;  (* of the tree total *)
}

let total tree = List.fold_left (fun acc r -> acc +. r.span.dur) 0.0 tree.roots

let attributed tree =
  let rec sum n = n.self +. List.fold_left (fun a c -> a +. sum c) 0.0 n.children in
  List.fold_left (fun acc r -> acc +. sum r) 0.0 tree.roots

(* Self-time attribution: every span's exclusive time, largest first.
   Sums to [total] when children nest inside their parents (the
   emitters guarantee this per process; cross-process queue/assign/exec
   segments nest by construction of the propagation protocol). *)
let attribution tree =
  let tot = total tree in
  let segs = ref [] in
  let rec walk prefix n =
    let path = if prefix = "" then n.span.name else prefix ^ "/" ^ n.span.name in
    segs :=
      {
        path;
        role = n.span.role;
        seconds = n.self;
        share = (if tot > 0.0 then n.self /. tot else 0.0);
      }
      :: !segs;
    List.iter (walk path) n.children
  in
  List.iter (walk "") tree.roots;
  List.sort (fun a b -> compare b.seconds a.seconds) !segs

(* The critical path: from the heaviest root, repeatedly descend into
   the heaviest child. Durations (not selfs) are reported so each step
   shows how much of the parent the chain explains. *)
let critical_path tree =
  let tot = total tree in
  let heaviest nodes =
    List.fold_left
      (fun best n ->
        match best with
        | Some b when b.span.dur >= n.span.dur -> best
        | _ -> Some n)
      None nodes
  in
  let rec descend prefix acc n =
    let path = if prefix = "" then n.span.name else prefix ^ "/" ^ n.span.name in
    let seg =
      {
        path;
        role = n.span.role;
        seconds = n.span.dur;
        share = (if tot > 0.0 then n.span.dur /. tot else 0.0);
      }
    in
    match heaviest n.children with
    | None -> List.rev (seg :: acc)
    | Some c -> descend path (seg :: acc) c
  in
  match heaviest tree.roots with None -> [] | Some r -> descend "" [] r

(* ------------------------------------------------------------------ *)
(* Rendering *)

let pf = Format.fprintf

let pp_tree ppf tree =
  pf ppf "@[<v>trace %s" tree.trace_id;
  (match tree.t_job with Some j -> pf ppf " job %s" j | None -> ());
  pf ppf ": %d spans across %d process(es)" tree.span_count
    (List.length tree.procs);
  if tree.orphans > 0 then pf ppf ", %d orphan(s)" tree.orphans;
  pf ppf "@,";
  let rec render indent n =
    pf ppf "%s%s [%s/%d] %.6fs (self %.6fs)@," indent n.span.name n.span.role
      n.span.pid n.span.dur n.self;
    List.iter (render (indent ^ "  ")) n.children
  in
  List.iter (render "  ") tree.roots;
  pf ppf "@]"

let pp_segments ppf segs =
  pf ppf "@[<v>  %-44s %-12s %11s %7s@," "segment" "role" "seconds" "share";
  List.iter
    (fun s ->
      pf ppf "  %-44s %-12s %11.6f %6.1f%%@," s.path s.role s.seconds
        (100.0 *. s.share))
    segs;
  pf ppf "@]"
