(** Hierarchical span profiler over explicit handles.

    A profiler attributes wall-clock time to a tree of named phases —
    the solver taxonomy is
    [solve → decision_call → iteration → kernel{expm, sketch, gram,
    select}]. Entering a span returns a fresh immutable {e handle};
    children are opened from their parent's handle, never from ambient
    state, so concurrent runner domains profiling different jobs never
    share a mutable frame (there is no thread-local "current span").

    Aggregation is by {e path} ("solve/decision_call/iteration"): each
    path owns a log-bucketed {!Metrics.histogram} of durations in the
    backing registry, labeled [{path="…"}] under one family (default
    [psdp_span_seconds]) — so a profiler backed by a shared registry
    exports its spans in the same Prometheus snapshot as everything
    else, with per-path p50/p90/p99 recoverable via {!Metrics.quantile}.

    Cost: entering a span reads the monotonic clock; exiting reads it
    again and does one O(1) histogram update under a per-path mutex.
    The {!disabled} span makes the whole tree free: entering from a
    disabled handle yields a disabled handle and exits are no-ops, so
    instrumented code takes an optional handle and defaults to
    {!disabled}. *)

type t

val create : ?registry:Metrics.t -> ?family:string -> unit -> t
(** [create ~registry ()] aggregates into [registry] (default: a fresh
    private one) under the family name [family] (default
    ["psdp_span_seconds"]). *)

type span
(** A handle to an open span. Immutable; owned by the opening domain. *)

val disabled : span
(** The inert handle: all spans derived from it are free no-ops. *)

val root : t -> string -> span
(** Open a top-level span. *)

val enter : span -> string -> span
(** [enter parent name] opens a child span [parent.path ^ "/" ^ name].
    From a {!disabled} parent, returns {!disabled}. *)

val exit : span -> unit
(** Close the span and record its duration under its path. No-op for
    {!disabled}; closing the same handle twice records twice (don't). *)

val with_span : span -> string -> (unit -> 'a) -> 'a
(** [with_span parent name f]: enter, run [f], exit (also on raise). *)

type row = {
  path : string;
  count : int;
  total : float;  (** summed duration, seconds *)
  self : float;  (** [total] minus direct children's totals *)
}

val report : t -> row list
(** One row per path seen so far, sorted by path (so children follow
    their parent). *)

val merge : into:t -> t -> unit
(** Fold every path's histogram of the source into [into] — the engine
    merges per-job profiles into the process-wide profiler. Both must
    use the default bucket scheme. *)

val quantile : t -> string -> float -> float
(** [quantile t path q]: duration quantile for one span path ([nan] if
    the path was never recorded). *)

val registry : t -> Metrics.t
(** The backing registry (useful when the profiler created its own). *)

val pp_report : Format.formatter -> row list -> unit
(** Aligned table: path, count, total, self, and self's share of the
    root spans' total. *)
