(* Every span path owns one log-bucketed histogram in the backing
   registry, labeled {path="solve/decision_call/..."}. A span handle is
   an immutable record private to the domain that entered it — nesting is
   explicit (child handles point at their parent's path), so concurrent
   runner domains never share a mutable frame; only the O(1) histogram
   update at exit synchronizes. *)

open Psdp_prelude

type t = {
  reg : Metrics.t;
  family : string;
  mutex : Mutex.t;  (* guards [table], [children] and [order] *)
  table : (string, Metrics.histogram) Hashtbl.t;  (* path → histogram *)
  children : (string * string, string * Metrics.histogram) Hashtbl.t;
      (* (parent path, name) → (child path, histogram): the hot-loop
         cache, so re-entering the same child costs one lookup and no
         string building *)
  mutable order : string list;  (* newest first *)
}

(* A handle carries its path's histogram, resolved once at [enter], so
   [exit] touches only the clock and that histogram — no profiler lock,
   no path hashing on the close path. *)
type span =
  | Disabled
  | Open of { t : t; path : string; hist : Metrics.histogram; t0 : float }

let disabled = Disabled

let create ?registry ?(family = "psdp_span_seconds") () =
  let reg = match registry with Some r -> r | None -> Metrics.create () in
  {
    reg;
    family;
    mutex = Mutex.create ();
    table = Hashtbl.create 32;
    children = Hashtbl.create 32;
    order = [];
  }

(* Under [t.mutex]. *)
let intern t path =
  match Hashtbl.find_opt t.table path with
  | Some h -> h
  | None ->
      let h =
        Metrics.histogram t.reg ~labels:[ ("path", path) ]
          ~help:"hierarchical span durations by path" t.family
      in
      Hashtbl.replace t.table path h;
      t.order <- path :: t.order;
      h

let resolve t parent name =
  Mutex.lock t.mutex;
  match Hashtbl.find_opt t.children (parent, name) with
  | Some hit ->
      Mutex.unlock t.mutex;
      hit
  | None -> (
      match
        let path = if parent = "" then name else parent ^ "/" ^ name in
        let entry = (path, intern t path) in
        Hashtbl.replace t.children (parent, name) entry;
        entry
      with
      | entry ->
          Mutex.unlock t.mutex;
          entry
      | exception e ->
          Mutex.unlock t.mutex;
          raise e)

let hist_for t path =
  Mutex.lock t.mutex;
  match intern t path with
  | h ->
      Mutex.unlock t.mutex;
      h
  | exception e ->
      Mutex.unlock t.mutex;
      raise e

let open_span t parent name =
  let path, hist = resolve t parent name in
  Open { t; path; hist; t0 = Timer.now () }

let root t name = open_span t "" name

let enter parent name =
  match parent with
  | Disabled -> Disabled
  | Open { t; path; _ } -> open_span t path name

let exit span =
  match span with
  | Disabled -> ()
  | Open { hist; t0; _ } -> Metrics.observe hist (Timer.now () -. t0)

let with_span parent name f =
  match parent with
  | Disabled -> f ()
  | Open _ -> (
      let s = enter parent name in
      match f () with
      | v ->
          exit s;
          v
      | exception e ->
          exit s;
          raise e)

type row = { path : string; count : int; total : float; self : float }

let rows t =
  Mutex.lock t.mutex;
  let order = List.rev t.order in
  let hists = List.map (fun p -> (p, Hashtbl.find t.table p)) order in
  Mutex.unlock t.mutex;
  List.map
    (fun (p, h) ->
      (p, Metrics.hist_count h, Metrics.hist_sum h))
    hists

let report t =
  let raw = rows t in
  (* Self time: total minus the totals of direct children. *)
  let parent_of p =
    match String.rindex_opt p '/' with
    | None -> None
    | Some i -> Some (String.sub p 0 i)
  in
  let child_total = Hashtbl.create 16 in
  List.iter
    (fun (p, _, total) ->
      match parent_of p with
      | None -> ()
      | Some parent ->
          let cur =
            Option.value ~default:0.0 (Hashtbl.find_opt child_total parent)
          in
          Hashtbl.replace child_total parent (cur +. total))
    raw;
  raw
  |> List.map (fun (path, count, total) ->
         let children =
           Option.value ~default:0.0 (Hashtbl.find_opt child_total path)
         in
         { path; count; total; self = Float.max 0.0 (total -. children) })
  |> List.sort (fun a b -> compare a.path b.path)

let merge ~into src =
  List.iter
    (fun { path; count; total = _; self = _ } ->
      if count >= 0 then
        let src_h =
          Mutex.lock src.mutex;
          let h = Hashtbl.find src.table path in
          Mutex.unlock src.mutex;
          h
        in
        Metrics.absorb ~into:(hist_for into path) src_h)
    (report src)

let quantile t path q =
  Mutex.lock t.mutex;
  let h = Hashtbl.find_opt t.table path in
  Mutex.unlock t.mutex;
  match h with None -> Float.nan | Some h -> Metrics.quantile h q

let registry t = t.reg

let pp_report ppf rows =
  let total_root =
    List.fold_left
      (fun acc r ->
        if String.contains r.path '/' then acc else acc +. r.total)
      0.0 rows
  in
  Format.fprintf ppf "@[<v>%-44s %10s %12s %12s %7s@,"
    "span path" "count" "total(s)" "self(s)" "share";
  List.iter
    (fun r ->
      Format.fprintf ppf "%-44s %10d %12.6f %12.6f %6.1f%%@,"
        r.path r.count r.total r.self
        (if total_root > 0.0 then 100.0 *. r.self /. total_root else 0.0))
    rows;
  Format.fprintf ppf "@]"
