(** Cross-process trace assembly: merge the JSONL span streams written
    by client, coordinator, worker and serve processes into one tree
    per trace id, then attribute wall clock to named segments.

    Events of kind ["span"] carry a {!Trace_context} string ([ctx]), a
    [name], a self-reported duration [dur], and the emitting process's
    [role]/[pid]. Tree shape comes from parent links only: stamps from
    different processes are never compared (each file uses its own
    monotonic clock, so cross-host skew is unbounded), and sibling
    order falls back to names across processes. A span whose parent is
    not in the merged streams stays visible as an orphan root. *)

type span = {
  ctx : Trace_context.t;
  name : string;
  role : string;  (** ["?"] when the stream was written untagged *)
  pid : int;  (** [0] when untagged *)
  job : string option;
  dur : float;  (** seconds, self-reported by the emitting process *)
  finish : float;  (** local emission stamp; same-process order only *)
}

type node = { span : span; mutable children : node list; mutable self : float }

type tree = {
  trace_id : string;
  t_job : string option;  (** first job id any span carried *)
  roots : node list;
  span_count : int;
  procs : (string * int) list;  (** distinct (role, pid) contributors *)
  orphans : int;  (** parent link pointed outside the merged streams *)
}

type t = {
  trees : tree list;  (** in first-appearance order *)
  spans : int;
  skipped : int;  (** unparseable lines and non-span events *)
}

val of_events : Psdp_prelude.Json.t list -> t
val of_lines : string list -> t
(** Lenient: a torn tail or alien line costs one skipped count. *)

val load_files : string list -> (t, string) result
(** Concatenate and assemble several per-process trace files; only
    I/O errors are [Error]. *)

type seg = {
  path : string;  (** slash-joined names from the root *)
  role : string;
  seconds : float;
  share : float;  (** of the tree's total (summed root durations) *)
}

val total : tree -> float
(** Summed root durations — the tree's end-to-end wall clock. *)

val attributed : tree -> float
(** Summed self times; equals {!total} when spans nest properly, so
    [attributed /. total] is the named-segment coverage fraction. *)

val attribution : tree -> seg list
(** Every span's exclusive (self) time, largest first. *)

val critical_path : tree -> seg list
(** Root-to-leaf chain following the heaviest child at each step;
    [seconds] is each span's full duration. *)

val pp_tree : Format.formatter -> tree -> unit
val pp_segments : Format.formatter -> seg list -> unit
