(** Distributed trace context: the identity a request carries across
    process boundaries (client → coordinator → worker, or into the
    serve tier) so per-process span streams can be merged into one tree
    by {!Trace_assemble}.

    A context names the span its *sender* owns. A receiver derives
    {!child} contexts for the work it does on the request's behalf, so
    the assembled tree's shape is fixed entirely by parent links —
    never by cross-host clocks.

    On the wire the context rides as a versioned optional field inside
    the job-spec JSON ({!Psdp_engine.Job.spec_of_json} parses it
    leniently). The string form is self-checking: a trailing FNV-1a
    check makes single-bit damage detectable, so {!of_string} returns
    [None] for a mangled context and the receiver mints a fresh root —
    corruption degrades tracing, never service. *)

type t = {
  trace_id : string;  (** 32 lowercase hex chars, not all zero *)
  span_id : string;  (** 16 lowercase hex chars: the sender's span *)
  parent_id : string option;  (** 16 lowercase hex chars *)
  sampled : bool;
}

val equal : t -> t -> bool

val mint : ?sampled:bool -> unit -> t
(** A fresh root context (no parent), ids drawn from a process-wide
    generator seeded with pid + wall clock. [sampled] defaults true. *)

val child : t -> t
(** Same trace and sampling flag, fresh span id, parented under the
    given context's span. *)

val is_root : t -> bool

val to_string : t -> string
(** [<trace32>-<span16>-<parent16|empty>-<0|1>-<check8>]; the trailing
    8 hex chars are an FNV-1a-64 check over everything before them. *)

val of_string : string -> t option
(** Strict parse of {!to_string}'s format — wrong lengths, non-hex,
    an all-zero trace id or a check mismatch all yield [None]. Never
    raises: [None] means "start a fresh root", not "error". *)

val of_parts :
  trace_id:string ->
  span_id:string ->
  ?parent:string ->
  sampled:bool ->
  unit ->
  t option
(** Deterministic construction for tests and replayable QA campaigns,
    validated like {!of_string}. *)
