(* Distributed trace context: the identity a request carries across
   process boundaries so per-process span streams can later be merged
   into one tree. A context names the span the *sender* owns — whatever
   the receiver does on the request's behalf becomes children of that
   span (via {!child}), so the tree shape is fixed entirely by parent
   links and never by cross-host clocks.

   The wire form is a single self-checking string (see {!to_string}):
   trailing FNV-1a check hex makes any single-bit damage — and most
   multi-bit damage — detectable, so {!of_string} can refuse a mangled
   context instead of silently grafting spans onto a garbage trace id.
   Decoders must treat [None] as "start a fresh root", never as an
   error: a corrupt or absent context degrades tracing, not service. *)

open Psdp_prelude

type t = {
  trace_id : string;  (* 32 lowercase hex chars, not all zero *)
  span_id : string;  (* 16 lowercase hex chars *)
  parent_id : string option;  (* 16 lowercase hex chars *)
  sampled : bool;
}

let equal a b =
  a.trace_id = b.trace_id && a.span_id = b.span_id
  && a.parent_id = b.parent_id && a.sampled = b.sampled

(* Local FNV-1a-64 (same constants as Psdp_store.Checksum, re-stated
   here so obs keeps its prelude-only dependency footprint). *)
let fnv_offset = 0xcbf29ce484222325L
let fnv_prime = 0x100000001b3L

let fnv1a64 s =
  let h = ref fnv_offset in
  String.iter
    (fun c ->
      h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) fnv_prime)
    s;
  !h

let check_hex body =
  Printf.sprintf "%08Lx" (Int64.logand (fnv1a64 body) 0xFFFFFFFFL)

(* ------------------------------------------------------------------ *)
(* Minting *)

(* Process-wide id stream, seeded once per process from pid + wall
   clock so two processes minting at the same instant still diverge.
   Minting is rare (once per request, never per iteration), so a mutex
   around the shared generator costs nothing measurable. *)
let gen =
  lazy
    (Rng.create
       (Hashtbl.hash
          (Unix.getpid (), Unix.gettimeofday (), "psdp-trace-context")))

let gen_mutex = Mutex.create ()

let fresh_hex16 () =
  Mutex.lock gen_mutex;
  let v = Rng.bits64 (Lazy.force gen) in
  Mutex.unlock gen_mutex;
  Printf.sprintf "%016Lx" v

let zero_trace = String.make 32 '0'

let rec fresh_trace_id () =
  let id = fresh_hex16 () ^ fresh_hex16 () in
  if id = zero_trace then fresh_trace_id () else id

let mint ?(sampled = true) () =
  {
    trace_id = fresh_trace_id ();
    span_id = fresh_hex16 ();
    parent_id = None;
    sampled;
  }

let child ctx =
  {
    trace_id = ctx.trace_id;
    span_id = fresh_hex16 ();
    parent_id = Some ctx.span_id;
    sampled = ctx.sampled;
  }

let is_root ctx = ctx.parent_id = None

(* ------------------------------------------------------------------ *)
(* Codec *)

(* <trace32>-<span16>-<parent16|empty>-<0|1>-<check8>, e.g.
   4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7--1-9d2c08a5 *)
let to_string ctx =
  let body =
    Printf.sprintf "%s-%s-%s-%c" ctx.trace_id ctx.span_id
      (Option.value ~default:"" ctx.parent_id)
      (if ctx.sampled then '1' else '0')
  in
  body ^ "-" ^ check_hex body

let is_hex s =
  String.for_all (function 'a' .. 'f' | '0' .. '9' -> true | _ -> false) s

let of_string s =
  match String.split_on_char '-' s with
  | [ trace_id; span_id; parent; flag; check ]
    when String.length trace_id = 32
         && is_hex trace_id && trace_id <> zero_trace
         && String.length span_id = 16
         && is_hex span_id
         && (parent = "" || (String.length parent = 16 && is_hex parent))
         && (flag = "0" || flag = "1")
         && check = check_hex (String.sub s 0 (String.length s - 9)) ->
      Some
        {
          trace_id;
          span_id;
          parent_id = (if parent = "" then None else Some parent);
          sampled = flag = "1";
        }
  | _ -> None

(* Deterministic construction for tests and replayable QA campaigns:
   validated like {!of_string}, so a property cannot accidentally build
   a context the codec would refuse. *)
let of_parts ~trace_id ~span_id ?parent ~sampled () =
  if
    String.length trace_id = 32
    && is_hex trace_id && trace_id <> zero_trace
    && String.length span_id = 16
    && is_hex span_id
    && match parent with
       | None -> true
       | Some p -> String.length p = 16 && is_hex p
  then Some { trace_id; span_id; parent_id = parent; sampled }
  else None
