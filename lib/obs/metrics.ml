(* The registry is a hashtable from (family name, rendered label set) to
   series, plus a family table carrying help/kind for exposition. The
   registry mutex guards registration and render only; updates go through
   per-series synchronization (atomics for counters, a small mutex for
   gauges and histograms) so hot paths from concurrent runner domains
   never serialize on the registry. *)

type hist_state = {
  bounds : float array;  (* strictly increasing upper bounds *)
  counts : int array;  (* per-bucket, non-cumulative; counts.(n) = +Inf *)
  mutable sum : float;
  mutable total : int;
  hmutex : Mutex.t;
}

type counter = int Atomic.t
type gauge = { gmutex : Mutex.t; mutable value : float }
type histogram = hist_state

type series =
  | Counter of counter
  | Gauge of gauge
  | Histogram of histogram

type kind = Kcounter | Kgauge | Khistogram

type family = {
  fname : string;
  help : string;
  kind : kind;
  mutable series : (string * series) list;  (* rendered labels, oldest first *)
}

type t = {
  mutex : Mutex.t;
  table : (string * string, series) Hashtbl.t;  (* (name, labels) -> series *)
  families : (string, family) Hashtbl.t;
  mutable order : string list;  (* family registration order, newest first *)
}

let create () =
  {
    mutex = Mutex.create ();
    table = Hashtbl.create 64;
    families = Hashtbl.create 64;
    order = [];
  }

let valid_name name =
  String.length name > 0
  && (match name.[0] with
     | 'a' .. 'z' | 'A' .. 'Z' | '_' | ':' -> true
     | _ -> false)
  && String.for_all
       (function
         | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> true
         | _ -> false)
       name

let valid_label_name name =
  String.length name > 0
  && (match name.[0] with 'a' .. 'z' | 'A' .. 'Z' | '_' -> true | _ -> false)
  && String.for_all
       (function
         | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> true | _ -> false)
       name

let escape_label_value v =
  let buf = Buffer.create (String.length v) in
  String.iter
    (function
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    v;
  Buffer.contents buf

(* Canonical label rendering: sorted by label name, so the same label set
   always maps to the same series regardless of argument order. *)
let render_labels = function
  | [] -> ""
  | labels ->
      let labels =
        List.sort (fun (a, _) (b, _) -> compare a b) labels
      in
      let parts =
        List.map
          (fun (k, v) ->
            if not (valid_label_name k) then
              invalid_arg (Printf.sprintf "Metrics: bad label name %S" k);
            Printf.sprintf "%s=\"%s\"" k (escape_label_value v))
          labels
      in
      "{" ^ String.concat "," parts ^ "}"

let kind_of = function
  | Counter _ -> Kcounter
  | Gauge _ -> Kgauge
  | Histogram _ -> Khistogram

let register reg ~help ~labels ~name ~kind ~make =
  if not (valid_name name) then
    invalid_arg (Printf.sprintf "Metrics: bad metric name %S" name);
  let lbl = render_labels labels in
  Mutex.lock reg.mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock reg.mutex)
    (fun () ->
      match Hashtbl.find_opt reg.table (name, lbl) with
      | Some s ->
          if kind_of s <> kind then
            invalid_arg
              (Printf.sprintf "Metrics: %s already registered with another kind"
                 name);
          s
      | None ->
          let fam =
            match Hashtbl.find_opt reg.families name with
            | Some f ->
                if f.kind <> kind then
                  invalid_arg
                    (Printf.sprintf
                       "Metrics: %s already registered with another kind" name);
                f
            | None ->
                let f = { fname = name; help; kind; series = [] } in
                Hashtbl.replace reg.families name f;
                reg.order <- name :: reg.order;
                f
          in
          let s = make () in
          Hashtbl.replace reg.table (name, lbl) s;
          fam.series <- fam.series @ [ (lbl, s) ];
          s)

(* --------------------------------------------------------------- *)
(* Counters *)

let counter reg ?(help = "") ?(labels = []) name =
  match
    register reg ~help ~labels ~name ~kind:Kcounter ~make:(fun () ->
        Counter (Atomic.make 0))
  with
  | Counter c -> c
  | Gauge _ | Histogram _ -> assert false

let inc c = Atomic.incr c

let add c n =
  if n < 0 then invalid_arg "Metrics.add: negative increment";
  ignore (Atomic.fetch_and_add c n)

let rec record c v =
  let cur = Atomic.get c in
  if v > cur && not (Atomic.compare_and_set c cur v) then record c v

let counter_value c = Atomic.get c

(* --------------------------------------------------------------- *)
(* Gauges *)

let gauge reg ?(help = "") ?(labels = []) name =
  match
    register reg ~help ~labels ~name ~kind:Kgauge ~make:(fun () ->
        Gauge { gmutex = Mutex.create (); value = 0.0 })
  with
  | Gauge g -> g
  | Counter _ | Histogram _ -> assert false

let set g v =
  Mutex.lock g.gmutex;
  g.value <- v;
  Mutex.unlock g.gmutex

let gauge_value g =
  Mutex.lock g.gmutex;
  let v = g.value in
  Mutex.unlock g.gmutex;
  v

(* --------------------------------------------------------------- *)
(* Histograms *)

let default_lo = 1e-6
let default_ratio = 2.0
let default_buckets = 40

let histogram reg ?(help = "") ?(labels = []) ?(lo = default_lo)
    ?(ratio = default_ratio) ?(buckets = default_buckets) name =
  if lo <= 0.0 || ratio <= 1.0 || buckets < 1 then
    invalid_arg "Metrics.histogram: need lo > 0, ratio > 1, buckets >= 1";
  let make () =
    let bounds = Array.init buckets (fun i -> lo *. (ratio ** float_of_int i)) in
    Histogram
      {
        bounds;
        counts = Array.make (buckets + 1) 0;
        sum = 0.0;
        total = 0;
        hmutex = Mutex.create ();
      }
  in
  match register reg ~help ~labels ~name ~kind:Khistogram ~make with
  | Histogram h ->
      if
        Array.length h.bounds <> buckets
        || h.bounds.(0) <> lo
        || (buckets > 1 && h.bounds.(1) <> lo *. ratio)
      then
        invalid_arg
          (Printf.sprintf "Metrics: %s re-registered with a different bucket \
                           scheme" name);
      h
  | Counter _ | Gauge _ -> assert false

(* First bound >= v, by binary search; Array.length bounds = +Inf. *)
let bucket_index bounds v =
  let n = Array.length bounds in
  if v > bounds.(n - 1) then n
  else begin
    let lo = ref 0 and hi = ref (n - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if v <= bounds.(mid) then hi := mid else lo := mid + 1
    done;
    !lo
  end

let observe h v =
  Mutex.lock h.hmutex;
  let i = bucket_index h.bounds v in
  h.counts.(i) <- h.counts.(i) + 1;
  h.sum <- h.sum +. v;
  h.total <- h.total + 1;
  Mutex.unlock h.hmutex

let hist_count h =
  Mutex.lock h.hmutex;
  let n = h.total in
  Mutex.unlock h.hmutex;
  n

let hist_sum h =
  Mutex.lock h.hmutex;
  let s = h.sum in
  Mutex.unlock h.hmutex;
  s

let quantile h q =
  if q < 0.0 || q > 1.0 then invalid_arg "Metrics.quantile: q outside [0,1]";
  Mutex.lock h.hmutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock h.hmutex)
    (fun () ->
      if h.total = 0 then Float.nan
      else begin
        let target = q *. float_of_int h.total in
        let n = Array.length h.bounds in
        let cum = ref 0 and idx = ref n in
        (try
           for i = 0 to n do
             cum := !cum + h.counts.(i);
             if float_of_int !cum >= target then begin
               idx := i;
               raise Exit
             end
           done
         with Exit -> ());
        if !idx >= n then h.bounds.(n - 1)  (* overflow bucket: pin to top *)
        else begin
          let upper = h.bounds.(!idx) in
          let lower = if !idx = 0 then 0.0 else h.bounds.(!idx - 1) in
          let before = !cum - h.counts.(!idx) in
          let within =
            if h.counts.(!idx) = 0 then 1.0
            else
              (target -. float_of_int before) /. float_of_int h.counts.(!idx)
          in
          lower +. ((upper -. lower) *. Float.max 0.0 (Float.min 1.0 within))
        end
      end)

let absorb ~into src =
  if Array.length into.bounds <> Array.length src.bounds
     || into.bounds.(0) <> src.bounds.(0)
  then invalid_arg "Metrics.absorb: bucket schemes differ";
  (* Lock ordering: into before src; absorb is only ever called to fold a
     private per-job histogram into a shared one, so no cycle arises. *)
  Mutex.lock into.hmutex;
  Mutex.lock src.hmutex;
  Array.iteri (fun i c -> into.counts.(i) <- into.counts.(i) + c) src.counts;
  into.sum <- into.sum +. src.sum;
  into.total <- into.total + src.total;
  Mutex.unlock src.hmutex;
  Mutex.unlock into.hmutex

(* --------------------------------------------------------------- *)
(* Exposition *)

let float_str v =
  if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.9g" v

let render_series buf name lbl = function
  | Counter c -> Printf.bprintf buf "%s%s %d\n" name lbl (Atomic.get c)
  | Gauge g -> Printf.bprintf buf "%s%s %s\n" name lbl (float_str (gauge_value g))
  | Histogram h ->
      Mutex.lock h.hmutex;
      let bounds = h.bounds and counts = Array.copy h.counts in
      let sum = h.sum and total = h.total in
      Mutex.unlock h.hmutex;
      (* [le] joins any user labels inside the braces. *)
      let with_le le =
        if lbl = "" then Printf.sprintf "{le=\"%s\"}" le
        else Printf.sprintf "%s,le=\"%s\"}" (String.sub lbl 0 (String.length lbl - 1)) le
      in
      let cum = ref 0 in
      Array.iteri
        (fun i bound ->
          cum := !cum + counts.(i);
          Printf.bprintf buf "%s_bucket%s %d\n" name (with_le (float_str bound))
            !cum)
        bounds;
      Printf.bprintf buf "%s_bucket%s %d\n" name (with_le "+Inf") total;
      Printf.bprintf buf "%s_sum%s %s\n" name lbl (float_str sum);
      Printf.bprintf buf "%s_count%s %d\n" name lbl total

(* HELP text travels on a single exposition line: the format reserves
   backslash and newline there (escaped as \\ and \n), and a literal
   newline would otherwise corrupt every line after it. *)
let escape_help v =
  let buf = Buffer.create (String.length v) in
  String.iter
    (function
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    v;
  Buffer.contents buf

let render reg =
  Mutex.lock reg.mutex;
  let fams =
    List.rev_map (fun name -> Hashtbl.find reg.families name) reg.order
  in
  Mutex.unlock reg.mutex;
  let buf = Buffer.create 4096 in
  List.iter
    (fun fam ->
      if fam.help <> "" then
        Printf.bprintf buf "# HELP %s %s\n" fam.fname (escape_help fam.help);
      Printf.bprintf buf "# TYPE %s %s\n" fam.fname
        (match fam.kind with
        | Kcounter -> "counter"
        | Kgauge -> "gauge"
        | Khistogram -> "histogram");
      List.iter (fun (lbl, s) -> render_series buf fam.fname lbl s) fam.series)
    fams;
  Buffer.contents buf
