(** SLA-aware online serving tier over the batch engine.

    The engine solves whatever it is given, in priority order, however
    long that takes. A serving workload needs three policies on top:

    - {b Admission control}: at most [queue_cap] requests outstanding.
      Request [queue_cap + 1] is {e shed} — answered immediately with a
      typed [Rejected] response instead of silently queueing into a
      latency cliff.
    - {b Deadlines}: every admitted request gets a wall-clock deadline
      ([default_deadline] unless the spec carries a tighter [timeout]),
      enforced by the engine's timeout machinery — a request that blows
      its deadline resolves as [Timed_out], never occupies a runner
      forever.
    - {b Load-adaptive ε-degradation}: as the outstanding count deepens,
      requested ε is coarsened by the bounded
      {!Psdp_fault.Degrade} ladder. Crucially, degradation never touches
      soundness: the job is {e solved and certified at the coarsened ε},
      and the response reports both the requested and the actually
      served ε, so a degraded answer is a certified answer to a
      coarser question — never an uncertified answer to the original.

    Warm-start lineage rides through the engine untouched: a spec whose
    [parent] names an ancestor digest is warm-started from the parent's
    re-verified incumbent by the execution layer (see {!Psdp_engine.Job}).

    Every response surfaces through [on_response], which fires in a
    runner domain — exactly like the engine's [on_complete] — so
    handlers must be domain-safe. Shed requests fire [on_response]
    synchronously from {!submit}. Every {!submit} produces exactly one
    response. *)

open Psdp_engine

type config = {
  queue_cap : int;  (** max outstanding admitted requests; > 0 *)
  default_deadline : float option;
      (** seconds; applied when the spec has no tighter [timeout] *)
  degrade : Psdp_fault.Degrade.t;
      (** ε-coarsening ladder over the outstanding count *)
}

val default_config : config
(** [queue_cap = 64], no deadline, no degradation. *)

type reject_reason = Queue_full | Stopped

val reject_reason_string : reject_reason -> string
(** ["queue_full"] / ["stopped"]. *)

type outcome = Done of Job.result | Rejected of reject_reason

type response = {
  id : string;  (** serve-assigned when the spec's [id] was [""] *)
  requested_eps : float;
  served_eps : float;  (** = [requested_eps] unless degraded *)
  degrade_level : int;  (** ladder rung that applied; 0 = none *)
  outcome : outcome;
  latency : float;  (** admission → response, seconds; 0 for sheds *)
}

val response_to_json : response -> Psdp_prelude.Json.t
(** The engine's result JSON (for completed jobs) extended with
    [requested_eps] / [served_eps] / [degrade_level] / [latency];
    sheds render as [{"id", "status":"rejected", "reason", ...}]. *)

type t

val create :
  ?metrics:Psdp_obs.Metrics.t ->
  ?slo:Psdp_obs.Slo.t ->
  config ->
  make_engine:(on_complete:(Job.result -> unit) -> Engine.t) ->
  on_response:(response -> unit) ->
  unit ->
  t
(** [make_engine ~on_complete] must build the engine with exactly that
    completion callback (the serve tier needs to intercept completions;
    an engine's [on_complete] is fixed at creation). The engine is owned:
    {!shutdown} shuts it down. [metrics] additionally exposes
    [psdp_serve_*] series and samples the engine cache's
    [psdp_cache_*] gauges on every response. [slo] feeds every completed
    request's admission-to-response latency into the tracker, so burn
    rates track the serving path specifically (sheds never count: a
    rejected request has no latency to misreport). When the engine's
    trace sink is live, each admitted request also gets a "request" span
    the engine's spans parent under. *)

val engine : t -> Engine.t

val submit : t -> Job.spec -> unit
(** Admit or shed. Exactly one [on_response] follows — synchronously
    (sheds, or admission-time submit failures) or from a runner domain
    on completion. *)

val depth : t -> int
(** Outstanding admitted requests right now (the degradation ladder's
    load signal). *)

val shutdown : t -> unit
(** Stop admitting ({!submit} now sheds with [Stopped]), drain the
    engine — every admitted request still gets its response — and shut
    the engine down. Idempotent. *)
