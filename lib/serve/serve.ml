open Psdp_prelude
open Psdp_engine
module Metrics = Psdp_obs.Metrics
module Trace_context = Psdp_obs.Trace_context
module Slo = Psdp_obs.Slo
module Degrade = Psdp_fault.Degrade

type config = {
  queue_cap : int;
  default_deadline : float option;
  degrade : Degrade.t;
}

let default_config =
  { queue_cap = 64; default_deadline = None; degrade = Degrade.none }

type reject_reason = Queue_full | Stopped

let reject_reason_string = function
  | Queue_full -> "queue_full"
  | Stopped -> "stopped"

type outcome = Done of Job.result | Rejected of reject_reason

type response = {
  id : string;
  requested_eps : float;
  served_eps : float;
  degrade_level : int;
  outcome : outcome;
  latency : float;
}

let response_to_json r =
  let serve_fields =
    [
      ("requested_eps", Json.Num r.requested_eps);
      ("served_eps", Json.Num r.served_eps);
      ("degrade_level", Json.Num (float_of_int r.degrade_level));
      ("latency", Json.Num r.latency);
    ]
  in
  match r.outcome with
  | Done result -> (
      match Job.result_to_json result with
      | Json.Obj fields -> Json.Obj (fields @ serve_fields)
      | other -> other)
  | Rejected reason ->
      Json.Obj
        (("id", Json.Str r.id)
        :: ("status", Json.Str "rejected")
        :: ("reason", Json.Str (reject_reason_string reason))
        :: serve_fields)

type meters = {
  reg : Metrics.t;
  s_requests : Metrics.counter;
  s_admitted : Metrics.counter;
  s_shed_full : Metrics.counter;
  s_shed_stopped : Metrics.counter;
  s_degraded : Metrics.counter;
  s_depth : Metrics.gauge;
  s_latency : Metrics.histogram;
  s_eps_served : Metrics.histogram;
}

let make_meters reg =
  let rejected reason =
    Metrics.counter reg ~help:"requests shed by admission control"
      ~labels:[ ("reason", reason) ] "psdp_serve_rejected_total"
  in
  {
    reg;
    s_requests =
      Metrics.counter reg ~help:"requests offered to the serve tier"
        "psdp_serve_requests_total";
    s_admitted =
      Metrics.counter reg ~help:"requests admitted past admission control"
        "psdp_serve_admitted_total";
    s_shed_full = rejected "queue_full";
    s_shed_stopped = rejected "stopped";
    s_degraded =
      Metrics.counter reg ~help:"admitted requests whose eps was coarsened"
        "psdp_serve_degraded_total";
    s_depth =
      Metrics.gauge reg ~help:"admitted requests outstanding"
        "psdp_serve_queue_depth";
    s_latency =
      Metrics.histogram reg ~help:"admission-to-response latency, seconds"
        "psdp_serve_latency_seconds";
    s_eps_served =
      Metrics.histogram reg ~lo:0.001 ~ratio:1.5 ~buckets:24
        ~help:"eps actually served (after any degradation)"
        "psdp_serve_eps_served";
  }

type pending_meta = {
  p_requested_eps : float;
  p_served_eps : float;
  p_level : int;
  p_admitted_at : float;
  p_ctx : Trace_context.t option;
      (* this request's span; the engine's spans parent under it *)
}

type t = {
  cfg : config;
  eng : Engine.t;
  mutex : Mutex.t;
  pending : (string, pending_meta) Hashtbl.t;
  mutable outstanding : int;
  mutable seq : int;
  mutable stopped : bool;
  meters : meters option;
  slo : Slo.t option;
  on_response : response -> unit;
}

let cache_status_of_result (r : Job.result) =
  match r.Job.outcome with
  | Job.Solved s -> Some (Job.cache_status_string s.cache)
  | _ -> None

(* Completion interception: runs in a runner domain. Results for jobs
   the serve tier never admitted (e.g. recovered batch jobs on a shared
   engine) pass through untouched. *)
let on_engine_complete (cell : t option ref) (result : Job.result) =
  match !cell with
  | None -> ()
  | Some t -> (
      let meta =
        Mutex.lock t.mutex;
        let m = Hashtbl.find_opt t.pending result.Job.id in
        (match m with
        | Some _ ->
            Hashtbl.remove t.pending result.Job.id;
            t.outstanding <- t.outstanding - 1
        | None -> ());
        let depth = t.outstanding in
        Mutex.unlock t.mutex;
        Option.map (fun m -> (m, depth)) m
      in
      match meta with
      | None -> ()
      | Some (m, depth) ->
          let latency = Timer.now () -. m.p_admitted_at in
          (match t.slo with
          | Some slo -> Slo.observe slo latency
          | None -> ());
          (match m.p_ctx with
          | Some ctx ->
              Trace.span (Engine.trace t.eng) ~job:result.Job.id ~ctx
                ~name:"request" ~dur:latency
                [ ("served_eps", Json.Num m.p_served_eps) ]
          | None -> ());
          (match t.meters with
          | Some ms ->
              Metrics.set ms.s_depth (float_of_int depth);
              Metrics.observe ms.s_latency latency;
              Metrics.observe ms.s_eps_served m.p_served_eps;
              (match cache_status_of_result result with
              | Some status ->
                  Metrics.inc
                    (Metrics.counter ms.reg
                       ~help:"served solve results by cache status"
                       ~labels:[ ("status", status) ]
                       "psdp_serve_results_total")
              | None -> ());
              Cache.export_metrics ms.reg (Engine.cache t.eng)
          | None -> ());
          Trace.emit (Engine.trace t.eng) ~job:result.Job.id
            ~kind:"serve_completed"
            [
              ("latency", Json.Num latency);
              ("served_eps", Json.Num m.p_served_eps);
              ("depth", Json.Num (float_of_int depth));
            ];
          t.on_response
            {
              id = result.Job.id;
              requested_eps = m.p_requested_eps;
              served_eps = m.p_served_eps;
              degrade_level = m.p_level;
              outcome = Done result;
              latency;
            })

let create ?metrics ?slo cfg ~make_engine ~on_response () =
  if cfg.queue_cap <= 0 then
    invalid_arg "Serve.create: queue_cap must be positive";
  let cell = ref None in
  let eng = make_engine ~on_complete:(on_engine_complete cell) in
  let t =
    {
      cfg;
      eng;
      mutex = Mutex.create ();
      pending = Hashtbl.create 64;
      outstanding = 0;
      seq = 0;
      stopped = false;
      meters = Option.map make_meters metrics;
      slo;
      on_response;
    }
  in
  cell := Some t;
  t

let engine t = t.eng

let depth t =
  Mutex.lock t.mutex;
  let d = t.outstanding in
  Mutex.unlock t.mutex;
  d

let shed t ~id ~eps reason =
  (match t.meters with
  | Some ms ->
      Metrics.inc
        (match reason with
        | Queue_full -> ms.s_shed_full
        | Stopped -> ms.s_shed_stopped)
  | None -> ());
  Trace.emit (Engine.trace t.eng) ~job:id ~kind:"serve_rejected"
    [ ("reason", Json.Str (reject_reason_string reason)) ];
  t.on_response
    {
      id;
      requested_eps = eps;
      served_eps = eps;
      degrade_level = 0;
      outcome = Rejected reason;
      latency = 0.0;
    }

let submit t (spec : Job.spec) =
  (match t.meters with Some ms -> Metrics.inc ms.s_requests | None -> ());
  Mutex.lock t.mutex;
  t.seq <- t.seq + 1;
  let id =
    if spec.Job.id = "" then Printf.sprintf "serve-%d" t.seq else spec.Job.id
  in
  if t.stopped then begin
    Mutex.unlock t.mutex;
    shed t ~id ~eps:spec.Job.eps Stopped
  end
  else if t.outstanding >= t.cfg.queue_cap then begin
    Mutex.unlock t.mutex;
    shed t ~id ~eps:spec.Job.eps Queue_full
  end
  else begin
    t.outstanding <- t.outstanding + 1;
    let load = t.outstanding in
    (* ε-degradation keyed on the post-admission depth: the deeper the
       backlog, the coarser the answer — bounded by the ladder's cap, so
       a served ε can never leave (0,1). *)
    let served_eps, level = Degrade.apply t.cfg.degrade ~load spec.Job.eps in
    let timeout =
      match (spec.Job.timeout, t.cfg.default_deadline) with
      | Some a, Some b -> Some (Float.min a b)
      | (Some _ as x), None | None, (Some _ as x) -> x
      | None, None -> None
    in
    (* The serve tier owns a "request" span per admitted request: a
       child of whatever context the caller shipped in the spec, else a
       fresh root. The engine's spans parent under it via the spec. *)
    let p_ctx =
      if Trace.enabled (Engine.trace t.eng) then
        Some
          (match spec.Job.trace with
          | Some parent -> Trace_context.child parent
          | None -> Trace_context.mint ())
      else None
    in
    Hashtbl.replace t.pending id
      {
        p_requested_eps = spec.Job.eps;
        p_served_eps = served_eps;
        p_level = level;
        p_admitted_at = Timer.now ();
        p_ctx;
      };
    Mutex.unlock t.mutex;
    (match t.meters with
    | Some ms ->
        Metrics.inc ms.s_admitted;
        Metrics.set ms.s_depth (float_of_int load);
        if level > 0 then Metrics.inc ms.s_degraded
    | None -> ());
    Trace.emit (Engine.trace t.eng) ~job:id ~kind:"serve_admitted"
      [ ("depth", Json.Num (float_of_int load)) ];
    if level > 0 then
      Trace.emit (Engine.trace t.eng) ~job:id ~kind:"eps_degraded"
        [
          ("requested", Json.Num spec.Job.eps);
          ("served", Json.Num served_eps);
          ("level", Json.Num (float_of_int level));
          ("depth", Json.Num (float_of_int load));
        ];
    let spec' =
      { spec with Job.id; eps = served_eps; timeout;
        trace = (match p_ctx with Some _ -> p_ctx | None -> spec.Job.trace) }
    in
    match Engine.submit t.eng spec' with
    | _handle -> ()
    | exception _ ->
        (* Engine refused (e.g. shut down under us): undo the admission
           and shed, preserving the one-response-per-submit contract. *)
        Mutex.lock t.mutex;
        Hashtbl.remove t.pending id;
        t.outstanding <- t.outstanding - 1;
        Mutex.unlock t.mutex;
        shed t ~id ~eps:spec.Job.eps Stopped
  end

let shutdown t =
  Mutex.lock t.mutex;
  let was_stopped = t.stopped in
  t.stopped <- true;
  Mutex.unlock t.mutex;
  if not was_stopped then Engine.shutdown t.eng
