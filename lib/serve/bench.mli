(** Latency-percentile serving benchmark: an open-loop drifting-instance
    workload driven against the serve tier.

    The workload models live traffic over one instance family: a parent
    instance is solved once to seed the cache, then every arrival is a
    freshly {e drifted} child (each with a unique content digest, so the
    result cache can never exact-hit). Arrivals alternate A/B between
    declaring the parent digest (warm lineage path) and arriving cold —
    an interleaved comparison that shares the same load, scheduler state
    and machine, so the warm-vs-cold iteration ratio isolates exactly
    the value of the lineage warm start.

    The generator is open-loop ({!Arrival}): it never waits for the
    system, so overload shows up as shed requests and ε-degradation
    rather than as a silently slowed generator. *)

open Psdp_prelude

type config = {
  process : Arrival.process;
  duration : float;  (** generator horizon, seconds *)
  seed : int;
  eps : float;  (** requested accuracy (pre-degradation) *)
  dim : int;  (** parent instance dimension *)
  n : int;  (** parent instance constraint count *)
  drift : float;  (** per-arrival perturbation magnitude, {!Drift} *)
  queue_cap : int;
  deadline : float option;
  degrade : Psdp_fault.Degrade.t;
  domains : int;  (** engine runner domains *)
}

val default_config : config
(** Poisson 4 req/s for 10 s, seed 42, ε 0.25, dim 10 / n 4, drift 0.05,
    queue cap 16, no deadline, no degradation, 2 domains. Instance sizes
    are deliberately small: a single dim-10/ε-0.25 solve is ~1 s on one
    core, so a 2-domain engine saturates at ~2 req/s and the admission /
    degradation machinery actually engages. *)

type report = {
  arrivals : int;
  served : int;  (** responses carrying an engine result *)
  shed : int;
  shed_rate : float;
  certified : int;
  uncertified : int;  (** solves whose certificate failed — must be 0 *)
  timed_out : int;
  degraded : int;  (** responses served at a coarsened ε *)
  parent_starts : int;  (** solves warm-started from the parent digest *)
  warm_starts : int;  (** own-digest warm starts (none expected here) *)
  exact_hits : int;  (** exact cache hits (none expected here) *)
  cold : int;
  p50 : float;
  p95 : float;
  p99 : float;  (** admission→response latency, seconds, over served *)
  mean_parent_iters : float;  (** mean solver iterations, lineage path *)
  mean_cold_iters : float;
  parent_cold_ratio : float;  (** [mean_parent_iters /. mean_cold_iters] *)
  eps_served : (float * int) list;  (** served-ε histogram, ascending ε *)
}

val run : ?metrics:Psdp_obs.Metrics.t -> ?trace:Psdp_engine.Trace.sink ->
  config -> report
(** Build the parent, seed the cache by solving it, replay the arrival
    schedule in real time, drain, and summarize. Deterministic in
    [config.seed] up to scheduling (latency numbers vary; counts of
    arrivals and the A/B split do not). *)

val report_to_json : report -> Json.t
val pp_report : Format.formatter -> report -> unit
