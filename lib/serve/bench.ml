open Psdp_prelude
open Psdp_instances
open Psdp_engine

type config = {
  process : Arrival.process;
  duration : float;
  seed : int;
  eps : float;
  dim : int;
  n : int;
  drift : float;
  queue_cap : int;
  deadline : float option;
  degrade : Psdp_fault.Degrade.t;
  domains : int;
}

let default_config =
  {
    process = Arrival.Poisson { rate = 4.0 };
    duration = 10.0;
    seed = 42;
    eps = 0.25;
    dim = 10;
    n = 4;
    drift = 0.05;
    queue_cap = 16;
    deadline = None;
    degrade = Psdp_fault.Degrade.none;
    domains = 2;
  }

type report = {
  arrivals : int;
  served : int;
  shed : int;
  shed_rate : float;
  certified : int;
  uncertified : int;
  timed_out : int;
  degraded : int;
  parent_starts : int;
  warm_starts : int;
  exact_hits : int;
  cold : int;
  p50 : float;
  p95 : float;
  p99 : float;
  mean_parent_iters : float;
  mean_cold_iters : float;
  parent_cold_ratio : float;
  eps_served : (float * int) list;
}

let mean = function
  | [] -> Float.nan
  | l -> List.fold_left ( +. ) 0.0 l /. float_of_int (List.length l)

let summarize ~arrivals responses =
  let served = ref 0 and shed = ref 0 in
  let certified = ref 0 and uncertified = ref 0 and timed_out = ref 0 in
  let degraded = ref 0 in
  let parent_starts = ref 0 and warm_starts = ref 0 in
  let exact_hits = ref 0 and cold = ref 0 in
  let latencies = ref [] in
  let parent_iters = ref [] and cold_iters = ref [] in
  let eps_counts : (float, int) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun (r : Serve.response) ->
      match r.Serve.outcome with
      | Serve.Rejected _ -> incr shed
      | Serve.Done result -> (
          incr served;
          latencies := r.Serve.latency :: !latencies;
          if r.Serve.degrade_level > 0 then incr degraded;
          match result.Job.outcome with
          | Job.Solved s ->
              if s.certified then incr certified else incr uncertified;
              Hashtbl.replace eps_counts r.Serve.served_eps
                (1
                + Option.value ~default:0
                    (Hashtbl.find_opt eps_counts r.Serve.served_eps));
              let iters = float_of_int s.iterations in
              (match s.cache with
              | Job.Parent ->
                  incr parent_starts;
                  parent_iters := iters :: !parent_iters
              | Job.Miss ->
                  incr cold;
                  cold_iters := iters :: !cold_iters
              | Job.Warm -> incr warm_starts
              | Job.Hit -> incr exact_hits)
          | Job.Timed_out -> incr timed_out
          | _ -> ()))
    responses;
  let q p =
    match !latencies with
    | [] -> Float.nan
    | l -> Stats.quantile (Array.of_list l) p
  in
  let mean_parent_iters = mean !parent_iters in
  let mean_cold_iters = mean !cold_iters in
  {
    arrivals;
    served = !served;
    shed = !shed;
    shed_rate =
      (if arrivals = 0 then 0.0 else float_of_int !shed /. float_of_int arrivals);
    certified = !certified;
    uncertified = !uncertified;
    timed_out = !timed_out;
    degraded = !degraded;
    parent_starts = !parent_starts;
    warm_starts = !warm_starts;
    exact_hits = !exact_hits;
    cold = !cold;
    p50 = q 0.5;
    p95 = q 0.95;
    p99 = q 0.99;
    mean_parent_iters;
    mean_cold_iters;
    parent_cold_ratio = mean_parent_iters /. mean_cold_iters;
    eps_served =
      List.sort compare
        (Hashtbl.fold (fun k v l -> (k, v) :: l) eps_counts []);
  }

let run ?metrics ?trace cfg =
  let rng = Rng.create cfg.seed in
  let parent = Random_psd.factored ~rng ~dim:cfg.dim ~n:cfg.n () in
  let parent_digest = Loader.digest parent in
  let schedule =
    Arrival.times ~seed:(cfg.seed + 1) ~duration:cfg.duration cfg.process
  in
  (* Materialize the whole workload before starting the clock: drifting
     an instance inside the replay loop would charge generator work to
     the serving latency it is supposed to measure. Arrival [i] declares
     the parent digest iff [i] is even — the interleaved A/B split. *)
  let workload =
    List.mapi
      (fun i at ->
        let child = Drift.perturb ~rng ~magnitude:cfg.drift parent in
        let parent = if i mod 2 = 0 then Some parent_digest else None in
        (at, Job.solve_spec ~eps:cfg.eps ?parent (Job.Inline child)))
      schedule
  in
  let responses = ref [] in
  let resp_mutex = Mutex.create () in
  let on_response r =
    Mutex.lock resp_mutex;
    responses := r :: !responses;
    Mutex.unlock resp_mutex
  in
  let serve =
    Serve.create ?metrics
      {
        Serve.queue_cap = cfg.queue_cap;
        default_deadline = cfg.deadline;
        degrade = cfg.degrade;
      }
      ~make_engine:(fun ~on_complete ->
        Engine.create ?metrics ?trace ~max_in_flight:cfg.domains ~on_complete
          ())
      ~on_response ()
  in
  Fun.protect
    ~finally:(fun () -> Serve.shutdown serve)
    (fun () ->
      (* Seed the lineage: solve the parent once, directly through the
         engine (bypassing admission — warming the cache is setup, not
         traffic). *)
      let eng = Serve.engine serve in
      let warm_up =
        Engine.submit eng
          (Job.solve_spec ~id:"bench-parent" ~eps:cfg.eps
             (Job.Inline parent))
      in
      ignore (Engine.await eng warm_up);
      let t0 = Timer.now () in
      List.iter
        (fun (at, spec) ->
          let delay = t0 +. at -. Timer.now () in
          if delay > 0.0 then Unix.sleepf delay;
          Serve.submit serve spec)
        workload);
  summarize ~arrivals:(List.length workload) (List.rev !responses)

let report_to_json r =
  Json.Obj
    [
      ("arrivals", Json.Num (float_of_int r.arrivals));
      ("served", Json.Num (float_of_int r.served));
      ("shed", Json.Num (float_of_int r.shed));
      ("shed_rate", Json.Num r.shed_rate);
      ("certified", Json.Num (float_of_int r.certified));
      ("uncertified", Json.Num (float_of_int r.uncertified));
      ("timed_out", Json.Num (float_of_int r.timed_out));
      ("degraded", Json.Num (float_of_int r.degraded));
      ("parent_starts", Json.Num (float_of_int r.parent_starts));
      ("warm_starts", Json.Num (float_of_int r.warm_starts));
      ("exact_hits", Json.Num (float_of_int r.exact_hits));
      ("cold", Json.Num (float_of_int r.cold));
      ("p50", Json.Num r.p50);
      ("p95", Json.Num r.p95);
      ("p99", Json.Num r.p99);
      ("mean_parent_iters", Json.Num r.mean_parent_iters);
      ("mean_cold_iters", Json.Num r.mean_cold_iters);
      ("parent_cold_ratio", Json.Num r.parent_cold_ratio);
      ( "eps_served",
        Json.List
          (List.map
             (fun (eps, count) ->
               Json.Obj
                 [
                   ("eps", Json.Num eps);
                   ("count", Json.Num (float_of_int count));
                 ])
             r.eps_served) );
    ]

let pf = Format.fprintf

let pp_report ppf r =
  pf ppf "@[<v>arrivals %d: served %d, shed %d (%.1f%%)@," r.arrivals r.served
    r.shed (100.0 *. r.shed_rate);
  pf ppf "results: certified %d, uncertified %d, timed out %d, degraded %d@,"
    r.certified r.uncertified r.timed_out r.degraded;
  pf ppf "cache: parent %d, warm %d, hit %d, cold %d@," r.parent_starts
    r.warm_starts r.exact_hits r.cold;
  pf ppf "latency (s): p50 %.4f  p95 %.4f  p99 %.4f@," r.p50 r.p95 r.p99;
  pf ppf
    "iterations: parent-started %.1f vs cold %.1f (ratio %.2f — lower is \
     better)@,"
    r.mean_parent_iters r.mean_cold_iters r.parent_cold_ratio;
  if r.eps_served <> [] then begin
    pf ppf "served eps:";
    List.iter (fun (e, c) -> pf ppf " %g×%d" e c) r.eps_served;
    pf ppf "@,"
  end;
  pf ppf "@]"
