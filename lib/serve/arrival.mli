(** Open-loop arrival processes for the serve bench.

    Open-loop means the generator decides arrival instants up front and
    never waits for the system: if the serve tier falls behind, requests
    pile up — exactly the regime that exercises admission control and
    ε-degradation. (A closed-loop generator that waits for each response
    can never overload the system, so it cannot measure shedding.)

    Times are deterministic in the seed: the same [(seed, duration,
    process)] triple always yields the same schedule, which is what lets
    CI pin a serve smoke run. *)

type process =
  | Poisson of { rate : float }
      (** memoryless arrivals at [rate] requests/second *)
  | Burst of { rate : float; peak : float; period : float; duty : float }
      (** periodic load spikes: each [period] seconds begins with a
          burst window of [duty·period] seconds at [peak] req/s, then
          relaxes to the base [rate] — the classic diurnal/flash-crowd
          shape that triggers shedding and ε-degradation *)

val times : seed:int -> duration:float -> process -> float list
(** Arrival instants in [[0, duration)], increasing. Poisson gaps are
    exponential with mean [1/rate]; bursts draw gaps at the rate in
    force at the current instant (piecewise-constant thinning-free
    construction). Raises [Invalid_argument] on non-positive rates,
    period, or duration, or [duty] outside [[0,1]]. *)

val parse : string -> (process, string) result
(** CLI grammar: ["poisson:RATE"] or ["burst:RATE:PEAK:PERIOD:DUTY"]
    (e.g. ["burst:2:20:5:0.2"] — 2 req/s base, 20 req/s for the first
    second of every 5). *)

val to_string : process -> string
