open Psdp_prelude

type process =
  | Poisson of { rate : float }
  | Burst of { rate : float; peak : float; period : float; duty : float }

let validate = function
  | Poisson { rate } ->
      if not (Float.is_finite rate && rate > 0.) then
        invalid_arg (Printf.sprintf "Arrival: rate must be positive, got %g" rate)
  | Burst { rate; peak; period; duty } ->
      if not (Float.is_finite rate && rate > 0.) then
        invalid_arg (Printf.sprintf "Arrival: rate must be positive, got %g" rate);
      if not (Float.is_finite peak && peak > 0.) then
        invalid_arg (Printf.sprintf "Arrival: peak must be positive, got %g" peak);
      if not (Float.is_finite period && period > 0.) then
        invalid_arg
          (Printf.sprintf "Arrival: period must be positive, got %g" period);
      if not (Float.is_finite duty && duty >= 0. && duty <= 1.) then
        invalid_arg (Printf.sprintf "Arrival: duty must lie in [0,1], got %g" duty)

let rate_at proc t =
  match proc with
  | Poisson { rate } -> rate
  | Burst { rate; peak; period; duty } ->
      let phase = Float.rem t period in
      if phase < duty *. period then peak else rate

let times ~seed ~duration proc =
  validate proc;
  if not (Float.is_finite duration && duration > 0.) then
    invalid_arg
      (Printf.sprintf "Arrival: duration must be positive, got %g" duration);
  let rng = Rng.create seed in
  let rec go t acc =
    (* Exponential gap at the rate in force now. Rates are
       piecewise-constant, so drawing the whole gap at the current rate
       only blurs arrivals that straddle a phase boundary — fine for a
       load generator, and it keeps the schedule a pure function of the
       seed. *)
    let r = rate_at proc t in
    let u = Rng.uniform rng in
    let gap = -.Float.log (1.0 -. u) /. r in
    let t' = t +. gap in
    if t' >= duration then List.rev acc else go t' (t' :: acc)
  in
  go 0.0 []

let to_string = function
  | Poisson { rate } -> Printf.sprintf "poisson:%g" rate
  | Burst { rate; peak; period; duty } ->
      Printf.sprintf "burst:%g:%g:%g:%g" rate peak period duty

let parse s =
  let fail () = Error (Printf.sprintf "arrival: cannot parse %S" s) in
  match String.split_on_char ':' (String.trim s) with
  | [ "poisson"; r ] -> (
      match float_of_string_opt r with
      | Some rate when Float.is_finite rate && rate > 0. ->
          Ok (Poisson { rate })
      | _ -> fail ())
  | [ "burst"; r; p; per; d ] -> (
      match
        ( float_of_string_opt r,
          float_of_string_opt p,
          float_of_string_opt per,
          float_of_string_opt d )
      with
      | Some rate, Some peak, Some period, Some duty -> (
          match validate (Burst { rate; peak; period; duty }) with
          | () -> Ok (Burst { rate; peak; period; duty })
          | exception Invalid_argument m -> Error m)
      | _ -> fail ())
  | _ -> fail ()
