open Psdp_prelude

exception Not_positive_definite of int

let factor ?(eps = 1e-12) a =
  if not (Mat.is_square a) then invalid_arg "Cholesky.factor: not square";
  let n = Mat.rows a in
  let l = Mat.create n n in
  let max_diag =
    Util.fold_range n ~init:0.0 ~f:(fun acc i ->
        Float.max acc (Float.abs (Mat.get a i i)))
  in
  let pivot_tol = eps *. Float.max 1.0 max_diag in
  Cost.parallel ~work:(n * n * n / 3) ~span:(n * 30);
  for j = 0 to n - 1 do
    (* Diagonal entry. *)
    let s = ref (Mat.get a j j) in
    for k = 0 to j - 1 do
      s := !s -. Util.square (Mat.get l j k)
    done;
    if !s <= pivot_tol then raise (Not_positive_definite j);
    let ljj = sqrt !s in
    Mat.set l j j ljj;
    for i = j + 1 to n - 1 do
      let s = ref (Mat.get a i j) in
      for k = 0 to j - 1 do
        s := !s -. (Mat.get l i k *. Mat.get l j k)
      done;
      Mat.set l i j (!s /. ljj)
    done
  done;
  l

let solve_lower l b =
  let n = Mat.rows l in
  if Array.length b <> n then invalid_arg "Cholesky.solve_lower: dimension";
  Cost.serial (n * n);
  let y = Array.make n 0.0 in
  for i = 0 to n - 1 do
    let s = ref b.(i) in
    for k = 0 to i - 1 do
      s := !s -. (Mat.get l i k *. y.(k))
    done;
    y.(i) <- !s /. Mat.get l i i
  done;
  y

let solve_upper_transposed l b =
  let n = Mat.rows l in
  if Array.length b <> n then
    invalid_arg "Cholesky.solve_upper_transposed: dimension";
  Cost.serial (n * n);
  let x = Array.make n 0.0 in
  for i = n - 1 downto 0 do
    let s = ref b.(i) in
    for k = i + 1 to n - 1 do
      (* (Lᵀ)ᵢₖ = Lₖᵢ *)
      s := !s -. (Mat.get l k i *. x.(k))
    done;
    x.(i) <- !s /. Mat.get l i i
  done;
  x

let solve ~l b = solve_upper_transposed l (solve_lower l b)

let solve_lower_mat l b =
  let n = Mat.rows l in
  if Mat.rows b <> n then invalid_arg "Cholesky.solve_lower_mat: dimension";
  let x = Mat.create n (Mat.cols b) in
  for j = 0 to Mat.cols b - 1 do
    let col = solve_lower l (Mat.col b j) in
    for i = 0 to n - 1 do
      Mat.set x i j col.(i)
    done
  done;
  x

let inverse_lower l = solve_lower_mat l (Mat.identity (Mat.rows l))

let congruence ~l a =
  (* L⁻¹ A L⁻ᵀ: first X = L⁻¹ A, then (L⁻¹ Xᵀ)ᵀ. *)
  let x = solve_lower_mat l a in
  Mat.symmetrize (Mat.transpose (solve_lower_mat l (Mat.transpose x)))

let log_det l =
  let n = Mat.rows l in
  let s = ref 0.0 in
  for i = 0 to n - 1 do
    s := !s +. log (Mat.get l i i)
  done;
  2.0 *. !s

let pivoted ?(tol = 1e-12) a =
  if not (Mat.is_square a) then invalid_arg "Cholesky.pivoted: not square";
  let m = Mat.rows a in
  (* Residual diagonal of the not-yet-factored part. *)
  let d = Array.init m (fun i -> Mat.get a i i) in
  let max_diag = Array.fold_left (fun acc v -> Float.max acc (Float.abs v)) 1e-300 d in
  let cutoff = tol *. Float.max 1.0 max_diag in
  let f = Mat.create m m in
  Cost.parallel ~work:(m * m * m / 3) ~span:(m * 30);
  let rank = ref 0 in
  (try
     for k = 0 to m - 1 do
       (* Greedy diagonal pivot. *)
       let pivot = ref 0 in
       for i = 1 to m - 1 do
         if d.(i) > d.(!pivot) then pivot := i
       done;
       let p = !pivot in
       if d.(p) <= cutoff then begin
         (* Everything left is numerically zero — but a significantly
            negative residual diagonal means the input was indefinite. *)
         Array.iteri
           (fun i v ->
             if v < -.(1e-6 *. max_diag) then raise (Not_positive_definite i))
           d;
         raise Exit
       end;
       let root = sqrt d.(p) in
       for i = 0 to m - 1 do
         let s = ref (Mat.get a i p) in
         for j = 0 to k - 1 do
           s := !s -. (Mat.get f i j *. Mat.get f p j)
         done;
         Mat.set f i k (!s /. root)
       done;
       for i = 0 to m - 1 do
         d.(i) <- d.(i) -. Util.square (Mat.get f i k)
       done;
       (* The pivot row is now fully resolved. *)
       d.(p) <- 0.0;
       incr rank
     done
   with Exit -> ());
  (Mat.init m !rank (fun i j -> Mat.get f i j), !rank)

let factor_robust ?(eps = 1e-12) a =
  match factor ~eps a with
  | l -> (l, 0.0)
  | exception Not_positive_definite i -> (
      let n = Mat.rows a in
      (* Rank-revealing probe at a tolerance well below the working one:
         genuine rank deficiency or indefiniteness has no meaningful
         shifted factorization, so those re-raise. Only a numerically
         full-rank matrix that plain elimination mishandled earns the
         diagonal-shift fallback. *)
      match pivoted ~tol:(eps *. 1e-3) a with
      | _, rank when rank < n -> raise (Not_positive_definite i)
      | _ ->
          let max_diag =
            Util.fold_range n ~init:0.0 ~f:(fun acc j ->
                Float.max acc (Float.abs (Mat.get a j j)))
          in
          let scale = Float.max 1.0 max_diag in
          let rec go shift =
            if shift > scale then raise (Not_positive_definite i)
            else
              let shifted = Mat.add a (Mat.scale shift (Mat.identity n)) in
              match factor ~eps shifted with
              | l -> (l, shift)
              | exception Not_positive_definite _ -> go (shift *. 10.0)
          in
          go (10.0 *. eps *. scale))

let is_psd ?(tol = 1e-8) a =
  Mat.is_symmetric ~tol:1e-6 a
  &&
  let n = Mat.rows a in
  let shift = tol *. Float.max 1.0 (Mat.max_abs a) in
  let shifted = Mat.add a (Mat.scale shift (Mat.identity n)) in
  match factor shifted with
  | (_ : Mat.t) -> true
  | exception Not_positive_definite _ -> false
