(** Cholesky factorization and triangular solves for symmetric
    positive-definite matrices.

    This powers the Appendix-A normalization: with [C = LLᵀ] the congruence
    [Bᵢ = L⁻¹AᵢL⁻ᵀ] produces a normalized program with the same optimum as
    dividing through by [C^{1/2}] (see DESIGN.md §2). *)

exception Not_positive_definite of int
(** Raised with the offending pivot index when a pivot is not positive
    (beyond tolerance), i.e. the input is not numerically PD. *)

val factor : ?eps:float -> Mat.t -> Mat.t
(** [factor a] returns the lower-triangular [L] with [L Lᵀ = A] for a
    symmetric positive-definite [A]. [eps] (default [1e-12]) scales the
    pivot tolerance relative to the largest diagonal entry.
    @raise Not_positive_definite when a pivot falls below tolerance. *)

val solve_lower : Mat.t -> Vec.t -> Vec.t
(** [solve_lower l b] solves [L y = b] by forward substitution. *)

val solve_upper_transposed : Mat.t -> Vec.t -> Vec.t
(** [solve_upper_transposed l b] solves [Lᵀ x = b] by back substitution
    (the argument is still the lower factor). *)

val solve : l:Mat.t -> Vec.t -> Vec.t
(** [solve ~l b] solves [A x = b] given [A = LLᵀ]. *)

val solve_lower_mat : Mat.t -> Mat.t -> Mat.t
(** [solve_lower_mat l b] solves [L X = B] column-by-column. *)

val inverse_lower : Mat.t -> Mat.t
(** Explicit [L⁻¹] (lower triangular). *)

val congruence : l:Mat.t -> Mat.t -> Mat.t
(** [congruence ~l a] is [L⁻¹ A L⁻ᵀ], symmetrized against roundoff. *)

val log_det : Mat.t -> float
(** [log_det l] is [log det A = 2 Σ log lᵢᵢ] for [A = LLᵀ]. *)

val pivoted : ?tol:float -> Mat.t -> Mat.t * int
(** [pivoted a] is a rank-revealing Cholesky factorization of a symmetric
    positive {e semi}-definite matrix: returns [(f, rank)] with [f] of
    size [m × rank] and [f fᵀ = A] (up to [tol·max-diagonal] per pivot,
    default [1e-12]). Diagonal pivoting makes it stable on singular
    inputs — this is the eigendecomposition-free way to bring a dense PSD
    constraint into the paper's factorized form [A = QQᵀ] (the
    preprocessing step discussed after Corollary 1.2).
    @raise Not_positive_definite when a pivot is significantly negative
    (the input was not PSD). *)

val factor_robust : ?eps:float -> Mat.t -> Mat.t * float
(** [factor_robust a] is {!factor} with numerical graceful degradation:
    on success it is [(factor a, 0.)]. When a pivot breaks down, a
    rank-revealing {!pivoted} probe (at tolerance [eps·1e-3]) decides
    whether the matrix is numerically full rank; if so, the smallest
    escalating diagonal shift [σ] (powers of ten from
    [10·eps·max(1,max-diagonal)]) that makes [A + σI] factor is applied
    and [(L, σ)] returned so the caller can trace the degradation.
    @raise Not_positive_definite when the input is indefinite or
    genuinely rank-deficient — shifting those would silently change the
    problem rather than absorb roundoff. *)

val is_psd : ?tol:float -> Mat.t -> bool
(** Numerical PSD test: attempts a Cholesky factorization of
    [A + tol·max(1,‖A‖)·I]. Cheap and robust enough for input
    validation ([tol] defaults to [1e-8]). *)
