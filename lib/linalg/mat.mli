(** Dense row-major matrices.

    The representation is a flat [float array] of length [rows * cols];
    entry [(i, j)] lives at index [i * cols + j]. Operations taking an
    optional [?pool] parallelise over row blocks using
    {!Psdp_parallel.Pool}; they default to sequential execution. *)

type t = private { rows : int; cols : int; a : float array }

val create : int -> int -> t
(** Zero matrix. *)

val init : int -> int -> (int -> int -> float) -> t
val of_array : rows:int -> cols:int -> float array -> t
(** Takes ownership of the array (no copy). Length must be [rows*cols]. *)

val of_rows : float array array -> t
(** Builds from an array of equal-length rows (copies). *)

val identity : int -> t
val diag : float array -> t
(** Square matrix with the given diagonal. *)

val diagonal : t -> float array
(** Extracts the diagonal of a square matrix. *)

val rows : t -> int
val cols : t -> int
val is_square : t -> bool

val get : t -> int -> int -> float
val set : t -> int -> int -> float -> unit

val copy : t -> t
val transpose : t -> t

val add : t -> t -> t
val sub : t -> t -> t
val scale : float -> t -> t
val add_inplace : t -> t -> unit
(** [add_inplace acc m] performs [acc <- acc + m]. *)

val axpy : t -> alpha:float -> t -> unit
(** [axpy acc ~alpha m] performs [acc <- acc + alpha * m]. *)

val mul : ?pool:Psdp_parallel.Pool.t -> t -> t -> t
(** Matrix product, blocked i–k–j loop, optionally parallel over rows. *)

val gemv : t -> Vec.t -> Vec.t
(** [gemv a x] is [A x]. *)

val gemv_t : t -> Vec.t -> Vec.t
(** [gemv_t a x] is [Aᵀ x] without forming the transpose. *)

val gemv_many : t -> Vec.t array -> Vec.t array
(** [gemv_many a xs] is [[| A xs.(0); …; A xs.(p-1) |]] in one pass over
    the matrix entries (each loaded once for all columns). Column [r]
    is byte-identical to [gemv a xs.(r)]. *)

val symv : t -> Vec.t -> Vec.t
(** Tiled matvec for a {e symmetric} square matrix: off-diagonal tiles
    are loaded once and serve both their row and column blocks, halving
    memory traffic versus {!gemv}. The matrix is assumed symmetric —
    only diagonal tiles and the upper triangle of tiles are read. *)

val symv_into : t -> Vec.t -> into:Vec.t -> unit
(** In-place {!symv}. [into] is overwritten; it may alias the input
    vector (the input is snapshotted first). *)

val outer : Vec.t -> t
(** [outer v] is the rank-one matrix [v vᵀ]. *)

val outer_pair : Vec.t -> Vec.t -> t
(** [outer_pair u v] is [u vᵀ]. *)

val trace : t -> float
val dot : t -> t -> float
(** Frobenius inner product [A • B = Tr(AᵀB)]; for symmetric arguments this
    is the paper's [A • B = Tr(AB)]. *)

val frobenius_norm : t -> float
val max_abs : t -> float

val symmetrize : t -> t
(** [(A + Aᵀ)/2]. *)

val is_symmetric : ?tol:float -> t -> bool

val row : t -> int -> Vec.t
val col : t -> int -> Vec.t

val equal : ?tol:float -> t -> t -> bool
val pp : Format.formatter -> t -> unit
