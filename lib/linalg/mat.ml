open Psdp_prelude

type t = { rows : int; cols : int; a : float array }

let create rows cols =
  if rows < 0 || cols < 0 then invalid_arg "Mat.create: negative dimension";
  { rows; cols; a = Array.make (rows * cols) 0.0 }

let init rows cols f =
  { rows; cols; a = Util.array_init_matrixwise rows cols f }

let of_array ~rows ~cols a =
  if Array.length a <> rows * cols then
    invalid_arg "Mat.of_array: length <> rows*cols";
  { rows; cols; a }

let of_rows rs =
  let rows = Array.length rs in
  if rows = 0 then { rows = 0; cols = 0; a = [||] }
  else begin
    let cols = Array.length rs.(0) in
    Array.iter
      (fun r ->
        if Array.length r <> cols then invalid_arg "Mat.of_rows: ragged rows")
      rs;
    init rows cols (fun i j -> rs.(i).(j))
  end

let identity n = init n n (fun i j -> if i = j then 1.0 else 0.0)

let diag d =
  let n = Array.length d in
  init n n (fun i j -> if i = j then d.(i) else 0.0)

let rows m = m.rows
let cols m = m.cols
let is_square m = m.rows = m.cols

let diagonal m =
  if not (is_square m) then invalid_arg "Mat.diagonal: not square";
  Array.init m.rows (fun i -> m.a.((i * m.cols) + i))

let get m i j = m.a.((i * m.cols) + j)
let set m i j v = m.a.((i * m.cols) + j) <- v

let copy m = { m with a = Array.copy m.a }

let transpose m =
  Cost.parallel ~work:(m.rows * m.cols) ~span:1;
  init m.cols m.rows (fun i j -> get m j i)

let check_same_shape name x y =
  if x.rows <> y.rows || x.cols <> y.cols then
    invalid_arg
      (Printf.sprintf "Mat.%s: shape mismatch (%dx%d vs %dx%d)" name x.rows
         x.cols y.rows y.cols)

let add x y =
  check_same_shape "add" x y;
  Cost.parallel ~work:(Array.length x.a) ~span:1;
  { x with a = Array.init (Array.length x.a) (fun k -> x.a.(k) +. y.a.(k)) }

let sub x y =
  check_same_shape "sub" x y;
  Cost.parallel ~work:(Array.length x.a) ~span:1;
  { x with a = Array.init (Array.length x.a) (fun k -> x.a.(k) -. y.a.(k)) }

let scale alpha x =
  Cost.parallel ~work:(Array.length x.a) ~span:1;
  { x with a = Array.map (fun v -> alpha *. v) x.a }

let add_inplace acc m =
  check_same_shape "add_inplace" acc m;
  Cost.parallel ~work:(Array.length acc.a) ~span:1;
  for k = 0 to Array.length acc.a - 1 do
    acc.a.(k) <- acc.a.(k) +. m.a.(k)
  done

let axpy acc ~alpha m =
  check_same_shape "axpy" acc m;
  Cost.parallel ~work:(2 * Array.length acc.a) ~span:1;
  for k = 0 to Array.length acc.a - 1 do
    acc.a.(k) <- acc.a.(k) +. (alpha *. m.a.(k))
  done

(* i-k-j loop order: the inner loop walks both [b] and [c] contiguously,
   which is the cache-friendly order for row-major storage. *)
let mul_rows a b c row_lo row_hi =
  let n = a.cols and p = b.cols in
  for i = row_lo to row_hi - 1 do
    let ci = i * p in
    for k = 0 to n - 1 do
      let aik = a.a.((i * n) + k) in
      if aik <> 0.0 then begin
        let bk = k * p in
        for j = 0 to p - 1 do
          c.(ci + j) <- c.(ci + j) +. (aik *. b.a.(bk + j))
        done
      end
    done
  done

let mul ?(pool = Psdp_parallel.Pool.sequential) a b =
  if a.cols <> b.rows then
    invalid_arg
      (Printf.sprintf "Mat.mul: inner dimension mismatch (%dx%d * %dx%d)"
         a.rows a.cols b.rows b.cols);
  let c = Array.make (a.rows * b.cols) 0.0 in
  Cost.parallel
    ~work:(2 * a.rows * a.cols * b.cols)
    ~span:(2 * a.cols);
  Psdp_parallel.Pool.parallel_for_chunks pool ~grain:1 ~lo:0 ~hi:a.rows
    (fun lo hi -> mul_rows a b c lo hi);
  { rows = a.rows; cols = b.cols; a = c }

let gemv m x =
  if m.cols <> Array.length x then invalid_arg "Mat.gemv: dimension mismatch";
  Cost.parallel ~work:(2 * m.rows * m.cols) ~span:(2 * m.cols);
  Array.init m.rows (fun i ->
      let base = i * m.cols in
      let s = ref 0.0 in
      for j = 0 to m.cols - 1 do
        s := !s +. (m.a.(base + j) *. x.(j))
      done;
      !s)

(* Panel gemv: one pass over the matrix serves every column (each entry
   is loaded once for all p right-hand sides). Per (row, column) the
   accumulation order over [j] matches {!gemv}, so column [r] of the
   result is byte-identical to [gemv m xs.(r)]. *)
let gemv_many m xs =
  let p = Array.length xs in
  Array.iter
    (fun x ->
      if Array.length x <> m.cols then
        invalid_arg "Mat.gemv_many: dimension mismatch")
    xs;
  Cost.parallel
    ~work:(2 * m.rows * m.cols * max 1 p)
    ~span:(2 * m.cols);
  let ys = Array.init p (fun _ -> Array.make m.rows 0.0) in
  if p > 0 then begin
    let acc = Array.make p 0.0 in
    for i = 0 to m.rows - 1 do
      let base = i * m.cols in
      Array.fill acc 0 p 0.0;
      for j = 0 to m.cols - 1 do
        let v = m.a.(base + j) in
        for r = 0 to p - 1 do
          acc.(r) <- acc.(r) +. (v *. xs.(r).(j))
        done
      done;
      for r = 0 to p - 1 do
        ys.(r).(i) <- acc.(r)
      done
    done
  end;
  ys

(* Tiled symmetric matvec. Diagonal tiles are read in full; an
   off-diagonal tile (I, J) with I < J is loaded once and serves both
   y_I += A_IJ x_J and y_J += A_IJᵀ x_I, so only the upper triangle of
   tiles is touched — about half the memory traffic of gemv on a
   symmetric operand, with every tile resident in cache while it is
   used twice. *)
let symv_tile = 64

let symv_into m x ~into:y =
  if not (is_square m) then invalid_arg "Mat.symv: not square";
  let n = m.rows in
  if Array.length x <> n then invalid_arg "Mat.symv: dimension mismatch";
  if Array.length y <> n then invalid_arg "Mat.symv: output dimension mismatch";
  (* Aliased input/output is allowed: snapshot x before clearing y. *)
  let x = if x == y then Array.copy x else x in
  Array.fill y 0 n 0.0;
  Cost.parallel ~work:((n * n) + n) ~span:(2 * n);
  let b = symv_tile in
  let nb = Util.ceil_div n b in
  for ib = 0 to nb - 1 do
    let i_lo = ib * b and i_hi = min n ((ib + 1) * b) in
    for i = i_lo to i_hi - 1 do
      let base = i * n in
      let s = ref 0.0 in
      for j = i_lo to i_hi - 1 do
        s := !s +. (m.a.(base + j) *. x.(j))
      done;
      y.(i) <- y.(i) +. !s
    done;
    for jb = ib + 1 to nb - 1 do
      let j_lo = jb * b and j_hi = min n ((jb + 1) * b) in
      for i = i_lo to i_hi - 1 do
        let base = i * n in
        let xi = x.(i) in
        let s = ref 0.0 in
        for j = j_lo to j_hi - 1 do
          let v = m.a.(base + j) in
          s := !s +. (v *. x.(j));
          y.(j) <- y.(j) +. (v *. xi)
        done;
        y.(i) <- y.(i) +. !s
      done
    done
  done

let symv m x =
  let y = Array.make m.rows 0.0 in
  symv_into m x ~into:y;
  y

let gemv_t m x =
  if m.rows <> Array.length x then
    invalid_arg "Mat.gemv_t: dimension mismatch";
  Cost.parallel ~work:(2 * m.rows * m.cols) ~span:(2 * m.rows);
  let y = Array.make m.cols 0.0 in
  for i = 0 to m.rows - 1 do
    let xi = x.(i) in
    if xi <> 0.0 then begin
      let base = i * m.cols in
      for j = 0 to m.cols - 1 do
        y.(j) <- y.(j) +. (xi *. m.a.(base + j))
      done
    end
  done;
  y

let outer v =
  let n = Array.length v in
  Cost.parallel ~work:(n * n) ~span:1;
  init n n (fun i j -> v.(i) *. v.(j))

let outer_pair u v =
  Cost.parallel ~work:(Array.length u * Array.length v) ~span:1;
  init (Array.length u) (Array.length v) (fun i j -> u.(i) *. v.(j))

let trace m =
  if not (is_square m) then invalid_arg "Mat.trace: not square";
  Cost.serial m.rows;
  let s = ref 0.0 in
  for i = 0 to m.rows - 1 do
    s := !s +. m.a.((i * m.cols) + i)
  done;
  !s

let dot x y =
  check_same_shape "dot" x y;
  Cost.parallel ~work:(2 * Array.length x.a) ~span:1;
  let s = ref 0.0 in
  for k = 0 to Array.length x.a - 1 do
    s := !s +. (x.a.(k) *. y.a.(k))
  done;
  !s

let frobenius_norm m = sqrt (dot m m)
let max_abs m = Array.fold_left (fun acc v -> Float.max acc (Float.abs v)) 0.0 m.a

let symmetrize m =
  if not (is_square m) then invalid_arg "Mat.symmetrize: not square";
  init m.rows m.cols (fun i j -> 0.5 *. (get m i j +. get m j i))

let is_symmetric ?(tol = 1e-9) m =
  is_square m
  &&
  let scale_ = Float.max 1.0 (max_abs m) in
  let ok = ref true in
  for i = 0 to m.rows - 1 do
    for j = i + 1 to m.cols - 1 do
      if Float.abs (get m i j -. get m j i) > tol *. scale_ then ok := false
    done
  done;
  !ok

let row m i = Array.sub m.a (i * m.cols) m.cols
let col m j = Array.init m.rows (fun i -> get m i j)

let equal ?(tol = 1e-9) x y =
  x.rows = y.rows && x.cols = y.cols
  &&
  let ok = ref true in
  for k = 0 to Array.length x.a - 1 do
    if not (Util.close ~rtol:tol ~atol:tol x.a.(k) y.a.(k)) then ok := false
  done;
  !ok

let pp ppf m =
  Format.fprintf ppf "@[<v>";
  for i = 0 to m.rows - 1 do
    Format.fprintf ppf "[";
    for j = 0 to m.cols - 1 do
      if j > 0 then Format.fprintf ppf ", ";
      Format.fprintf ppf "%10.5g" (get m i j)
    done;
    Format.fprintf ppf "]";
    if i < m.rows - 1 then Format.fprintf ppf "@,"
  done;
  Format.fprintf ppf "@]"
