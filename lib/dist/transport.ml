type addr = Unix_sock of string | Tcp of string * int

let addr_of_string s =
  match String.index_opt s ':' with
  | None -> (
      match int_of_string_opt s with
      | Some p when p > 0 && p < 65536 -> Ok (Tcp ("127.0.0.1", p))
      | _ -> Error (Printf.sprintf "bad address %S (want unix:PATH or HOST:PORT)" s))
  | Some i ->
      let scheme = String.sub s 0 i in
      let rest = String.sub s (i + 1) (String.length s - i - 1) in
      if scheme = "unix" then
        if rest = "" then Error "unix: address needs a path"
        else Ok (Unix_sock rest)
      else (
        match int_of_string_opt rest with
        | Some p when p > 0 && p < 65536 ->
            Ok (Tcp ((if scheme = "" then "127.0.0.1" else scheme), p))
        | _ -> Error (Printf.sprintf "bad port in address %S" s))

let addr_to_string = function
  | Unix_sock path -> "unix:" ^ path
  | Tcp (host, port) -> Printf.sprintf "%s:%d" host port

exception Closed
exception Protocol_failure of string

(* A dead peer must surface as an exception on write, not kill the
   process. Idempotent; set up before the first socket exists. *)
let ignore_sigpipe =
  lazy (if Sys.os_type = "Unix" then Sys.set_signal Sys.sigpipe Sys.Signal_ignore)

let sockaddr_of = function
  | Unix_sock path -> Unix.ADDR_UNIX path
  | Tcp (host, port) ->
      let ip =
        try Unix.inet_addr_of_string host
        with Failure _ -> (
          match Unix.getaddrinfo host "" [ Unix.AI_FAMILY Unix.PF_INET ] with
          | { Unix.ai_addr = Unix.ADDR_INET (ip, _); _ } :: _ -> ip
          | _ -> failwith (Printf.sprintf "cannot resolve host %S" host))
      in
      Unix.ADDR_INET (ip, port)

let listen ?(backlog = 64) addr =
  Lazy.force ignore_sigpipe;
  try
    (match addr with
    | Unix_sock path when Sys.file_exists path -> (
        try Unix.unlink path with Unix.Unix_error _ -> ())
    | _ -> ());
    let domain =
      match addr with Unix_sock _ -> Unix.PF_UNIX | Tcp _ -> Unix.PF_INET
    in
    let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
    (match addr with
    | Tcp _ -> Unix.setsockopt fd Unix.SO_REUSEADDR true
    | Unix_sock _ -> ());
    Unix.bind fd (sockaddr_of addr);
    Unix.listen fd backlog;
    Ok fd
  with
  | Unix.Unix_error (e, fn, arg) ->
      Error (Printf.sprintf "listen %s: %s: %s %s" (addr_to_string addr) fn
               (Unix.error_message e) arg)
  | Failure msg -> Error msg

type conn = {
  fd : Unix.file_descr;
  mutable rbuf : Bytes.t;
  mutable rlen : int;  (* valid bytes at the front of [rbuf] *)
  wlock : Mutex.t;
  max_payload : int;
  count_rx : int -> unit;
  count_tx : int -> unit;
  mutable closed : bool;
}

let of_fd ?(max_payload = Frame.default_max_payload) ?(count_rx = ignore)
    ?(count_tx = ignore) fd =
  Lazy.force ignore_sigpipe;
  {
    fd;
    rbuf = Bytes.create 4096;
    rlen = 0;
    wlock = Mutex.create ();
    max_payload;
    count_rx;
    count_tx;
    closed = false;
  }

let connect ?max_payload ?count_rx ?count_tx addr =
  Lazy.force ignore_sigpipe;
  try
    let domain =
      match addr with Unix_sock _ -> Unix.PF_UNIX | Tcp _ -> Unix.PF_INET
    in
    let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
    Unix.connect fd (sockaddr_of addr);
    Ok (of_fd ?max_payload ?count_rx ?count_tx fd)
  with
  | Unix.Unix_error (e, fn, arg) ->
      Error (Printf.sprintf "connect %s: %s: %s %s" (addr_to_string addr) fn
               (Unix.error_message e) arg)
  | Failure msg -> Error msg

let fd c = c.fd

let close c =
  if not c.closed then begin
    c.closed <- true;
    try Unix.close c.fd with Unix.Unix_error _ -> ()
  end

let send c msg =
  let frame = Proto.encode msg in
  Mutex.lock c.wlock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock c.wlock)
    (fun () ->
      let n = String.length frame in
      let pos = ref 0 in
      (try
         while !pos < n do
           match Unix.write_substring c.fd frame !pos (n - !pos) with
           | k -> pos := !pos + k
           | exception Unix.Unix_error (Unix.EINTR, _, _) ->
               (* A signal (timer, SIGCHLD, ...) landed mid-write: the
                  kernel wrote nothing for this call, the frame is still
                  whole — retry the same range. *)
               ()
           | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
             -> (
               (* Non-blocking peers (the coordinator's accepted fds):
                  wait for writability rather than tear the frame. *)
               try ignore (Unix.select [] [ c.fd ] [] 1.0)
               with Unix.Unix_error (Unix.EINTR, _, _) -> ())
         done
       with
      | Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET | Unix.EBADF), _, _) ->
          raise Closed);
      c.count_tx n)

let fill c =
  (* Grow so a read can always make progress; the cap on what we will
     *decode* is [max_payload], enforced in [pop] before the declared
     length influences any allocation here (the buffer grows only as
     fast as bytes actually arrive). *)
  if c.rlen = Bytes.length c.rbuf then begin
    let bigger = Bytes.create (2 * Bytes.length c.rbuf) in
    Bytes.blit c.rbuf 0 bigger 0 c.rlen;
    c.rbuf <- bigger
  end;
  match Unix.read c.fd c.rbuf c.rlen (Bytes.length c.rbuf - c.rlen) with
  | 0 -> false
  | n ->
      c.count_rx n;
      c.rlen <- c.rlen + n;
      true
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
    ->
      (* EINTR: interrupted before any bytes moved — not end-of-stream,
         just "nothing arrived this call"; the caller's loop retries. *)
      true
  | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE | Unix.EBADF), _, _)
    ->
      false

let pop c =
  match Frame.decode ~max_payload:c.max_payload c.rbuf ~off:0 ~len:c.rlen with
  | Ok Frame.Incomplete -> None
  | Error e -> raise (Protocol_failure (Frame.error_to_string e))
  | Ok (Frame.Frame { tag; payload; size }) -> (
      Bytes.blit c.rbuf size c.rbuf 0 (c.rlen - size);
      c.rlen <- c.rlen - size;
      match Proto.decode ~tag payload with
      | Ok msg -> Some msg
      | Error e -> raise (Protocol_failure e))

let rec recv c =
  match pop c with
  | Some msg -> msg
  | None -> if fill c then recv c else raise Closed
