(** A submitting client for the distributed service — what
    [psdp submit], the chaos tests and the throughput bench speak.

    The client is deliberately thin: it pushes [Submit] frames and
    collects [Result] frames; sharding, journaling and rerouting are
    entirely the coordinator's business. *)

open Psdp_engine

type t

val connect :
  ?max_payload:int -> ?trace:Trace.sink -> Transport.addr -> (t, string) result
(** [trace] (default null) makes the client the trace-root owner: each
    submission mints a context (unless the spec already carries one),
    ships it in the spec's [trace] field, and {!collect} closes the
    matching "request" span when the result lands. *)

val submit : t -> Job.spec -> (unit, string) result
(** Send one job. Specs must carry a non-empty [id] (the coordinator
    rejects empty ids — auto-numbering is a per-engine notion) and a
    [File] source. *)

val collect :
  ?timeout:float -> t -> expected:int -> (Job.result list, string) result
(** Wait for [expected] results, in completion order. [timeout]
    (default none) bounds the {e total} wait. An [Error_msg] from the
    coordinator (rejected submit) aborts with its message; so do a
    dropped connection and a protocol violation. *)

val shutdown_cluster : t -> unit
(** Ask the coordinator to stop (it dismisses its workers first).
    Send-and-forget. *)

val close : t -> unit
