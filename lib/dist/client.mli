(** A submitting client for the distributed service — what
    [psdp submit], the chaos tests and the throughput bench speak.

    The client is deliberately thin: it pushes [Submit] frames and
    collects [Result] frames; sharding, journaling and rerouting are
    entirely the coordinator's business. What it does own is
    {e self-healing}: it holds an ordered coordinator address list and,
    whenever the link dies (crash, failover, a standby or deposed
    primary saying [Goodbye]), it reconnects — sleeping a
    decorrelated-jitter backoff between full unreachable cycles — and
    replays every submission whose result has not landed yet. The job
    id is the idempotency nonce: the coordinator answers a replayed
    finished job from its journal instead of re-running it, and the
    client drops duplicate deliveries, so a job is paid for once and
    its result counted once. *)

open Psdp_engine

type failure =
  | Unreachable of string
      (** no coordinator answered within the retry budget — [psdp
          submit] maps this to its documented "unreachable" exit code *)
  | Refused of string  (** the coordinator rejected the request *)
  | Timed_out of string  (** {!collect}'s deadline expired *)

val failure_to_string : failure -> string

type t

val connect :
  ?max_payload:int ->
  ?trace:Trace.sink ->
  ?retry:Psdp_fault.Retry.policy ->
  Transport.addr list ->
  (t, failure) result
(** Dial the list in order until someone accepts ([Invalid_argument]
    on an empty list); [retry.max_attempts] bounds full unreachable
    cycles before [Unreachable]. [trace] (default null) makes the
    client the trace-root owner: each submission mints a context
    (unless the spec already carries one), ships it in the spec's
    [trace] field, and {!collect} closes the matching "request" span
    when the result lands. *)

val submit : t -> Job.spec -> (unit, failure) result
(** Send one job. Specs must carry a non-empty [id] (the coordinator
    rejects empty ids — auto-numbering is a per-engine notion) and a
    [File] source. A link failure triggers reconnect-and-replay; only
    an exhausted retry budget surfaces as [Unreachable]. *)

val collect :
  ?timeout:float -> t -> expected:int -> (Job.result list, failure) result
(** Wait for [expected] {e distinct} results, in completion order.
    [timeout] (default none) bounds the {e total} wait. An [Error_msg]
    from the coordinator aborts with [Refused]; a dropped link or a
    [Goodbye] triggers reconnect-and-replay instead of failing. *)

val shutdown_cluster : t -> unit
(** Ask the coordinator to stop (it dismisses its workers first).
    Send-and-forget. *)

val close : t -> unit
