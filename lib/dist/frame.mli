(** The distributed layer's wire frame — a from-scratch length-prefixed
    binary envelope.

    {2 Layout}

    {v
    offset  size  field
    0       4     magic "PSDP"
    4       1     protocol version (currently 1)
    5       1     message type tag (opaque here; Proto assigns meaning)
    6       2     reserved, sent as zero (ignored on read)
    8       4     payload length, u32 big-endian
    12      N     payload bytes
    12+N    8     FNV-1a-64 of bytes [0, 12+N), big-endian
    v}

    The checksum covers the whole header {e and} the payload, so a
    corrupted length or tag is caught, not just corrupted payload
    bytes. Because each FNV-1a absorption step [(h xor b) * prime] is a
    bijection of the 64-bit state, any {e single} flipped byte is
    detected with certainty (multi-byte corruption with probability
    [1 - 2⁻⁶⁴] per the usual hash argument).

    {2 Hardening}

    The decoder validates everything it can {e before} allocating: the
    magic is checked byte-by-byte as input arrives, the version next,
    and the declared payload length is bounded by [max_payload]
    (default {!default_max_payload}, 16 MiB) before any
    payload-sized buffer exists. A peer therefore cannot make the
    process allocate attacker-controlled amounts of memory by sending
    a 12-byte header with a huge length field. *)

type error =
  | Bad_magic  (** leading bytes are not ["PSDP"] — not our protocol *)
  | Bad_version of int  (** version byte we do not speak *)
  | Oversized of { length : int; limit : int }
      (** declared payload length exceeds the reader's limit; rejected
          before allocation *)
  | Truncated  (** a complete buffer ended mid-frame ({!decode_exact}) *)
  | Checksum_mismatch  (** frame arrived complete but corrupt *)

val error_to_string : error -> string

val header_size : int
(** 12: magic + version + tag + reserved + length. *)

val trailer_size : int
(** 8: the checksum. *)

val default_max_payload : int
(** 16 MiB. *)

val version : int
(** The protocol version this build speaks (1). *)

val encode : tag:int -> string -> string
(** [encode ~tag payload] renders one complete frame. Raises
    [Invalid_argument] unless [0 <= tag < 256]. *)

type decoded =
  | Incomplete  (** no full frame yet — read more bytes and retry *)
  | Frame of { tag : int; payload : string; size : int }
      (** one frame; [size] bytes of input were consumed *)

val decode :
  ?max_payload:int -> Bytes.t -> off:int -> len:int -> (decoded, error) result
(** Try to decode one frame from [len] bytes starting at [off].
    Incremental: [Incomplete] means the prefix seen so far is a valid
    partial frame; errors are definitive (the connection should be
    dropped — resynchronising a corrupt byte stream is not
    attempted). *)

val decode_exact : ?max_payload:int -> string -> (int * string, error) result
(** Decode a string holding exactly one frame, returning
    [(tag, payload)]. Partial input is [Error Truncated]; bytes after
    the frame are decoded as the start of a next frame, so trailing
    garbage surfaces as [Error Bad_magic]. Used by tests and the QA
    corruption properties. *)
