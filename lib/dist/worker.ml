open Psdp_prelude
open Psdp_engine
module Metrics = Psdp_obs.Metrics
module Failpoint = Psdp_fault.Failpoint
module Retry = Psdp_fault.Retry

let log_src = Logs.Src.create "psdp.dist.worker" ~doc:"distributed worker"

module Log = (val Logs.src_log log_src : Logs.LOG)

let default_retry = Retry.make ~base:0.2 ~cap:3.0 ~max_attempts:1_000_000 ()

(* One registered session against one coordinator address ends in one
   of these; the reconnect loop decides what survives it. *)
type session_end =
  | Finished of string  (* orderly dismissal: stop for good *)
  | Link_lost of string  (* reconnect and re-register *)

let run ?metrics ?max_payload ?(trace = Trace.null) ?(retry = default_retry)
    ~connect ~name ~capacity ~make_engine () =
  (match connect with
  | [] -> invalid_arg "Worker.run: empty coordinator address list"
  | _ -> ());
  let count dir =
    match metrics with
    | None -> ignore
    | Some reg ->
        let c =
          Metrics.counter reg
            ~labels:[ ("dir", dir) ]
            ~help:"raw bytes crossing the worker's coordinator link"
            "psdp_dist_frame_bytes_total"
        in
        fun n -> Metrics.add c n
  in
  let reconnects =
    Option.map
      (fun reg ->
        Metrics.counter reg
          ~help:"times this worker re-registered after losing its link"
          "psdp_ha_worker_reconnects_total")
      metrics
  in
  let fence_meter =
    Option.map
      (fun reg ->
        Metrics.counter reg
          ~help:"coordinator frames rejected for carrying a stale epoch"
          "psdp_ha_fence_rejections_total")
      metrics
  in
  (* Results flow through an outbox instead of straight onto the
     socket: runner domains enqueue, the session loop delivers, and
     whatever is undelivered when a link dies ships on the next one —
     a result computed is a result delivered, eventually. [recent]
     remembers what we already solved so a coordinator that re-assigns
     a job it saw us die with (it did not) gets the answer replayed,
     not recomputed. *)
  let lock = Mutex.create () in
  let outbox = Queue.create () in
  let recent = Hashtbl.create 64 in
  let recent_order = Queue.create () in
  let notify_r, notify_w = Unix.pipe () in
  Unix.set_nonblock notify_r;
  let inflight = Atomic.make 0 in
  let on_complete (result : Job.result) =
    Atomic.decr inflight;
    Mutex.lock lock;
    Queue.push result outbox;
    if not (Hashtbl.mem recent result.Job.id) then begin
      Hashtbl.replace recent result.Job.id result;
      Queue.push result.Job.id recent_order;
      if Queue.length recent_order > 1024 then
        Hashtbl.remove recent (Queue.pop recent_order)
    end
    else Hashtbl.replace recent result.Job.id result;
    Mutex.unlock lock;
    try ignore (Unix.write notify_w (Bytes.make 1 '!') 0 1)
    with Unix.Unix_error _ -> ()
  in
  let engine = make_engine ~on_complete in
  let fence = ref 0 in
  let rng = Rng.create (Hashtbl.hash (name, Unix.getpid ())) in
  let drain_notify () =
    let buf = Bytes.create 64 in
    let rec go () =
      match Unix.read notify_r buf 0 64 with
      | _ -> go ()
      | exception
          Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
        -> ()
      | exception Unix.Unix_error _ -> ()
    in
    go ()
  in
  let reject_stale conn ~what ~epoch =
    (match fence_meter with Some c -> Metrics.inc c | None -> ());
    Trace.emit trace ~kind:"fence_rejected"
      [
        ("what", Json.Str what);
        ("epoch", Json.Num (float_of_int epoch));
        ("fence", Json.Num (float_of_int !fence));
      ];
    Log.warn (fun m ->
        m "rejected %s with epoch %d below our fence %d: stale coordinator"
          what epoch !fence);
    (try
       Transport.send conn
         (Proto.Goodbye
            {
              reason =
                Printf.sprintf "fenced: your epoch %d < my fence %d" epoch
                  !fence;
            })
     with Transport.Closed | Unix.Unix_error _ -> ())
  in
  (* Deliver everything queued in the outbox over [conn]; false means
     the link died mid-flush (undelivered results stay queued). *)
  let flush_outbox conn =
    let ok = ref true in
    let next () =
      Mutex.lock lock;
      let r = if Queue.is_empty outbox then None else Some (Queue.peek outbox) in
      Mutex.unlock lock;
      r
    in
    let rec go () =
      match next () with
      | None -> ()
      | Some result -> (
          match Transport.send conn (Proto.Result { result }) with
          | () ->
              Mutex.lock lock;
              ignore (Queue.pop outbox);
              Mutex.unlock lock;
              go ()
          | exception (Transport.Closed | Unix.Unix_error _) -> ok := false)
    in
    go ();
    !ok
  in
  let this_registered = ref false in
  let session addr =
    this_registered := false;
    match
      Transport.connect ?max_payload ~count_rx:(count "rx")
        ~count_tx:(count "tx") addr
    with
    | Error e -> Link_lost e
    | Ok conn -> (
        let finish v =
          Transport.close conn;
          v
        in
        match
          Transport.send conn
            (Proto.Hello { worker = name; capacity; fence = !fence });
          Transport.recv conn
        with
        | exception (Transport.Closed | Unix.Unix_error _) ->
            finish (Link_lost "coordinator closed the connection during handshake")
        | exception Transport.Protocol_failure why ->
            finish (Link_lost ("handshake: " ^ why))
        | Proto.Goodbye { reason } ->
            (* A standby refusing service is a routing hint (try the
               next address), not a verdict on this worker; anything
               else — name taken, policy — is final. *)
            if
              String.length reason >= 7 && String.sub reason 0 7 = "standby"
            then finish (Link_lost ("standby refused: " ^ reason))
            else finish (Finished ("coordinator refused us: " ^ reason))
        | Proto.Welcome { epoch; _ } when epoch < !fence ->
            reject_stale conn ~what:"welcome" ~epoch;
            finish (Link_lost "stale coordinator")
        | Proto.Welcome { coordinator; heartbeat_every; epoch } -> (
            this_registered := true;
            fence := max !fence epoch;
            Log.info (fun m ->
                m "registered with %s (heartbeat every %gs, epoch %d)"
                  coordinator heartbeat_every epoch);
            Trace.emit trace ~kind:"worker_registered"
              [
                ("coordinator", Json.Str coordinator);
                ("epoch", Json.Num (float_of_int epoch));
              ];
            let stop = ref None in
            if not (flush_outbox conn) then stop := Some (Link_lost "connection lost");
            while !stop = None do
              Failpoint.hit ~arg:name "dist.worker.tick";
              let readable, _, _ =
                try
                  Unix.select
                    [ Transport.fd conn; notify_r ]
                    [] [] heartbeat_every
                with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
              in
              if List.mem notify_r readable then drain_notify ();
              if not (flush_outbox conn) then
                stop := Some (Link_lost "connection lost")
              else if readable = [] then begin
                try
                  Transport.send conn
                    (Proto.Heartbeat
                       { worker = name; inflight = Atomic.get inflight })
                with Transport.Closed | Unix.Unix_error _ ->
                  stop := Some (Link_lost "connection lost")
              end
              else if List.mem (Transport.fd conn) readable then
                match Transport.fill conn with
                | false -> stop := Some (Link_lost "connection closed")
                | true -> (
                    try
                      let continue = ref true in
                      while !continue do
                        match Transport.pop conn with
                        | None -> continue := false
                        | Some (Proto.Submit { spec; epoch }) ->
                            Failpoint.hit ~arg:spec.Job.id "dist.worker.tick";
                            if epoch < !fence then begin
                              reject_stale conn ~what:"submit" ~epoch;
                              stop := Some (Link_lost "stale coordinator");
                              continue := false
                            end
                            else begin
                              fence := max !fence epoch;
                              let replay =
                                Mutex.lock lock;
                                let r = Hashtbl.find_opt recent spec.Job.id in
                                (match r with
                                | Some result -> Queue.push result outbox
                                | None -> ());
                                Mutex.unlock lock;
                                r <> None
                              in
                              if replay then begin
                                Trace.emit trace ~job:spec.Job.id
                                  ~kind:"result_replayed" [];
                                if not (flush_outbox conn) then begin
                                  stop := Some (Link_lost "connection lost");
                                  continue := false
                                end
                              end
                              else begin
                                Atomic.incr inflight;
                                ignore (Engine.submit engine spec)
                              end
                            end
                        | Some Proto.Heartbeat_ack -> ()
                        | Some (Proto.Goodbye { reason }) ->
                            (* "coordinator stopped" is the cluster
                               winding down; anything else (e.g.
                               "unknown worker" after we were declared
                               dead) means: go away and come back
                               fresh. *)
                            if reason = "coordinator stopped" then
                              stop := Some (Finished ("dismissed: " ^ reason))
                            else stop := Some (Link_lost ("dismissed: " ^ reason));
                            continue := false
                        | Some Proto.Shutdown ->
                            stop := Some (Finished "shutdown");
                            continue := false
                        | Some other ->
                            Log.warn (fun m ->
                                m "unexpected %s from coordinator; ignored"
                                  (Proto.describe other))
                      done
                    with Transport.Protocol_failure why ->
                      stop := Some (Link_lost ("protocol failure: " ^ why)))
            done;
            match !stop with
            | Some v -> finish v
            | None -> finish (Link_lost "unreachable"))
        | other ->
            finish
              (Link_lost
                 (Printf.sprintf "handshake: expected welcome, got %s"
                    (Proto.describe other))))
  in
  Fun.protect
    ~finally:(fun () ->
      (* Drain first: jobs already accepted finish; their results stay
         in the outbox (journaled coordinator-side only if they made it
         out before the close). *)
      Engine.shutdown engine;
      (try Unix.close notify_r with Unix.Unix_error _ -> ());
      try Unix.close notify_w with Unix.Unix_error _ -> ())
    (fun () ->
      (* Cycle the ordered address list; one full cycle with no
         registration costs one decorrelated-jitter backoff sleep.
         Cycles that do register reset the failure count — a worker
         bounced between failovers retries forever. *)
      let failures = ref 0 in
      let prev = ref 0.0 in
      let result = ref None in
      while !result = None do
        let registered = ref false in
        List.iter
          (fun addr ->
            if !result = None then
              match session addr with
              | Finished why ->
                  Log.info (fun m -> m "stopping (%s)" why);
                  result := Some (Ok ())
              | Link_lost why ->
                  Log.info (fun m ->
                      m "link to %s lost (%s)"
                        (Transport.addr_to_string addr)
                        why);
                  if !this_registered then begin
                    registered := true;
                    match reconnects with
                    | Some c -> Metrics.inc c
                    | None -> ()
                  end)
          connect;
        match !result with
        | Some _ -> ()
        | None ->
            if !registered then failures := 0 else incr failures;
            if !failures >= retry.Retry.max_attempts then
              result :=
                Some
                  (Error
                     (Printf.sprintf
                        "no coordinator reachable after %d attempt cycle(s)"
                        !failures))
            else begin
              let delay = Retry.backoff retry ~rng ~prev:!prev in
              prev := delay;
              Trace.emit trace ~kind:"worker_reconnect_backoff"
                [ ("delay", Json.Num delay) ];
              Unix.sleepf delay
            end
      done;
      match !result with Some r -> r | None -> Ok ())
