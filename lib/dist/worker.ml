open Psdp_engine
module Metrics = Psdp_obs.Metrics
module Failpoint = Psdp_fault.Failpoint

let log_src = Logs.Src.create "psdp.dist.worker" ~doc:"distributed worker"

module Log = (val Logs.src_log log_src : Logs.LOG)

let run ?metrics ?max_payload ~connect ~name ~capacity ~make_engine () =
  let count dir =
    match metrics with
    | None -> ignore
    | Some reg ->
        let c =
          Metrics.counter reg
            ~labels:[ ("dir", dir) ]
            ~help:"raw bytes crossing the worker's coordinator link"
            "psdp_dist_frame_bytes_total"
        in
        fun n -> Metrics.add c n
  in
  match
    Transport.connect ?max_payload ~count_rx:(count "rx") ~count_tx:(count "tx")
      connect
  with
  | Error e -> Error e
  | Ok conn -> (
      Transport.send conn (Proto.Hello { worker = name; capacity });
      match Transport.recv conn with
      | exception Transport.Closed ->
          Transport.close conn;
          Error "coordinator closed the connection during handshake"
      | exception Transport.Protocol_failure why ->
          Transport.close conn;
          Error ("handshake: " ^ why)
      | Proto.Goodbye { reason } ->
          Transport.close conn;
          Error ("coordinator refused us: " ^ reason)
      | ( Proto.Hello _ | Proto.Submit _ | Proto.Result _ | Proto.Heartbeat _
        | Proto.Heartbeat_ack | Proto.Error_msg _ | Proto.Shutdown ) as other ->
          Transport.close conn;
          Error
            (Printf.sprintf "handshake: expected welcome, got %s"
               (Proto.describe other))
      | Proto.Welcome { coordinator; heartbeat_every } ->
          Log.info (fun m ->
              m "registered with %s (heartbeat every %gs)" coordinator
                heartbeat_every);
          let inflight = Atomic.make 0 in
          let link_up = Atomic.make true in
          let on_complete result =
            Atomic.decr inflight;
            if Atomic.get link_up then
              try Transport.send conn (Proto.Result { result })
              with Transport.Closed | Unix.Unix_error _ ->
                Atomic.set link_up false
          in
          let engine = make_engine ~on_complete in
          let stop = ref None in
          Fun.protect
            ~finally:(fun () ->
              (* Drain first: jobs already accepted finish and (if the
                 link survives) their results still ship. *)
              Engine.shutdown engine;
              Atomic.set link_up false;
              Transport.close conn)
            (fun () ->
              while !stop = None do
                Failpoint.hit ~arg:name "dist.worker.tick";
                let readable, _, _ =
                  try Unix.select [ Transport.fd conn ] [] [] heartbeat_every
                  with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
                in
                if readable = [] then begin
                  try
                    Transport.send conn
                      (Proto.Heartbeat
                         { worker = name; inflight = Atomic.get inflight })
                  with Transport.Closed | Unix.Unix_error _ ->
                    stop := Some "connection lost"
                end
                else
                  match Transport.fill conn with
                  | false -> stop := Some "connection closed"
                  | true -> (
                      try
                        let continue = ref true in
                        while !continue do
                          match Transport.pop conn with
                          | None -> continue := false
                          | Some (Proto.Submit { spec }) ->
                              Failpoint.hit ~arg:spec.Job.id "dist.worker.tick";
                              Atomic.incr inflight;
                              ignore (Engine.submit engine spec)
                          | Some Proto.Heartbeat_ack -> ()
                          | Some (Proto.Goodbye { reason }) ->
                              stop := Some ("dismissed: " ^ reason);
                              continue := false
                          | Some Proto.Shutdown ->
                              stop := Some "shutdown";
                              continue := false
                          | Some other ->
                              Log.warn (fun m ->
                                  m "unexpected %s from coordinator; ignored"
                                    (Proto.describe other))
                        done
                      with Transport.Protocol_failure why ->
                        stop := Some ("protocol failure: " ^ why))
              done;
              Log.info (fun m ->
                  m "stopping (%s)" (Option.value ~default:"?" !stop));
              Ok ()))
