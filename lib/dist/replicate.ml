open Psdp_prelude
module Store = Psdp_store.Store
module Journal = Psdp_store.Journal
module Metrics = Psdp_obs.Metrics
module Retry = Psdp_fault.Retry
module Trace = Psdp_engine.Trace

let log_src = Logs.Src.create "psdp.dist.standby" ~doc:"standby coordinator"

module Log = (val Logs.src_log log_src : Logs.LOG)

let journal_file = "journal.jsonl" (* must match Store's layout *)

let rec ensure_dir path =
  if path <> "" && path <> "." && path <> "/" && not (Sys.file_exists path)
  then begin
    ensure_dir (Filename.dirname path);
    try Unix.mkdir path 0o755
    with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

(* ------------------------------------------------------------------ *)
(* Recovery plan *)

type plan = {
  valid_records : int;
  valid_prefix : int;
  torn : string option;
  epoch : int;
  requeue : string list;
  answerable : string list;
}

let recover_plan ~dir =
  let path = Filename.concat dir journal_file in
  let records, torn, prefix = Journal.replay_prefix path in
  match Store.open_store dir with
  | Error e -> Error e
  | Ok store ->
      let plan =
        {
          valid_records = List.length records;
          valid_prefix = prefix;
          torn;
          epoch = Store.epoch store;
          requeue =
            List.map (fun (p : Store.pending) -> p.Store.job)
              (Store.pending store);
          answerable = List.map fst (Store.completed_results store);
        }
      in
      Store.close store;
      Ok plan

(* ------------------------------------------------------------------ *)
(* Standby *)

type replica = {
  dir : string;
  mutable oc : out_channel option;
  mutable size : int;
}

let replica_path r = Filename.concat r.dir journal_file

let replica_close r =
  match r.oc with
  | None -> ()
  | Some oc ->
      close_out_noerr oc;
      r.oc <- None

let replica_sync oc =
  flush oc;
  try Unix.fsync (Unix.descr_of_out_channel oc) with Unix.Unix_error _ -> ()

(* Install a full snapshot: the replica becomes byte-identical to the
   primary's journal as of the handshake. *)
let replica_install r data =
  replica_close r;
  ensure_dir r.dir;
  let oc =
    open_out_gen [ Open_wronly; Open_creat; Open_trunc; Open_binary ] 0o644
      (replica_path r)
  in
  output_string oc data;
  replica_sync oc;
  r.oc <- Some oc;
  r.size <- String.length data

let replica_append r data =
  match r.oc with
  | None -> invalid_arg "replica_append before snapshot"
  | Some oc ->
      output_string oc data;
      replica_sync oc;
      r.size <- r.size + String.length data

type verdict =
  | Keep_tailing
  | Resync of string  (* drop the link, re-handshake for a snapshot *)
  | Promote of string
  | Dismissed of string

let standby ?(config = Coordinator.default_config) ?metrics
    ?(trace = Trace.null)
    ?(retry = Retry.make ~base:0.2 ~cap:3.0 ~max_attempts:1_000_000 ())
    ?on_ready ~name ~listen ~primaries ~dir () =
  (match primaries with
  | [] -> invalid_arg "Replicate.standby: empty primary address list"
  | _ -> ());
  ensure_dir dir;
  let lag_gauge =
    Option.map
      (fun reg ->
        Metrics.gauge reg ~help:"replica journal bytes applied"
          "psdp_ha_replica_bytes")
      metrics
  in
  let reconnects =
    Option.map
      (fun reg ->
        Metrics.counter reg
          ~help:"times the standby re-attached to a primary"
          "psdp_ha_standby_reattach_total")
      metrics
  in
  match Transport.listen listen with
  | Error e -> Error e
  | Ok lfd ->
      (match on_ready with Some f -> f () | None -> ());
      Log.info (fun m ->
          m "standby %s listening on %s, tailing %s" name
            (Transport.addr_to_string listen)
            (String.concat ","
               (List.map Transport.addr_to_string primaries)));
      let r = { dir; oc = None; size = 0 } in
      let rng = Rng.create (Hashtbl.hash (name, Unix.getpid ())) in
      let rep : Transport.conn option ref = ref None in
      let accepted : (int * Transport.conn) list ref = ref [] in
      let next_acc = ref 0 in
      let requester : Transport.conn option ref = ref None in
      let epoch_seen = ref 0 in
      let last_seen = ref 0.0 in
      let last_hb = ref 0.0 in
      let next_dial = ref 0.0 in
      let prev_delay = ref 0.0 in
      let drop_rep () =
        (match !rep with Some c -> Transport.close c | None -> ());
        rep := None
      in
      let dial () =
        let attached =
          List.exists
            (fun addr ->
              match Transport.connect addr with
              | Error _ -> false
              | Ok conn -> (
                  match
                    Transport.send conn (Proto.Rep_hello { standby = name });
                    Transport.recv conn
                  with
                  | Proto.Rep_snapshot { epoch; data } ->
                      replica_install r data;
                      (match lag_gauge with
                      | Some g -> Metrics.set g (float_of_int r.size)
                      | None -> ());
                      epoch_seen := max !epoch_seen epoch;
                      rep := Some conn;
                      last_seen := Unix.gettimeofday ();
                      last_hb := Unix.gettimeofday ();
                      (try Transport.send conn (Proto.Rep_ack { offset = r.size })
                       with Transport.Closed | Unix.Unix_error _ -> ());
                      (match reconnects with
                      | Some c -> Metrics.inc c
                      | None -> ());
                      Trace.emit trace ~kind:"standby_tailing"
                        [
                          ("primary", Json.Str (Transport.addr_to_string addr));
                          ("epoch", Json.Num (float_of_int epoch));
                          ("bytes", Json.Num (float_of_int r.size));
                        ];
                      Log.info (fun m ->
                          m "tailing %s (epoch %d, %dB snapshot)"
                            (Transport.addr_to_string addr)
                            epoch r.size);
                      true
                  | _ ->
                      Transport.close conn;
                      false
                  | exception _ ->
                      Transport.close conn;
                      false))
            primaries
        in
        if not attached then begin
          let d = Retry.backoff retry ~rng ~prev:!prev_delay in
          prev_delay := d;
          next_dial := Unix.gettimeofday () +. d
        end
        else prev_delay := 0.0
      in
      (* One incoming replication message → what happens next. *)
      let on_rep_msg = function
        | Proto.Rep_append { epoch; offset; data } ->
            if offset <> r.size then
              Resync
                (Printf.sprintf "append at %d but replica is %dB" offset
                   r.size)
            else begin
              replica_append r data;
              epoch_seen := max !epoch_seen epoch;
              last_seen := Unix.gettimeofday ();
              (match lag_gauge with
              | Some g -> Metrics.set g (float_of_int r.size)
              | None -> ());
              (match !rep with
              | Some conn -> (
                  try Transport.send conn (Proto.Rep_ack { offset = r.size })
                  with Transport.Closed | Unix.Unix_error _ -> ())
              | None -> ());
              Keep_tailing
            end
        | Proto.Rep_snapshot { epoch; data } ->
            replica_install r data;
            epoch_seen := max !epoch_seen epoch;
            last_seen := Unix.gettimeofday ();
            Keep_tailing
        | Proto.Heartbeat_ack ->
            last_seen := Unix.gettimeofday ();
            Keep_tailing
        | Proto.Goodbye { reason } -> Dismissed reason
        | _ -> Keep_tailing
      in
      let running = ref true in
      let outcome = ref None in
      while !running do
        if !rep = None && Unix.gettimeofday () >= !next_dial then dial ();
        let fds =
          (lfd :: (match !rep with Some c -> [ Transport.fd c ] | None -> []))
          @ List.map (fun (_, c) -> Transport.fd c) !accepted
        in
        let readable, _, _ =
          try Unix.select fds [] [] (config.heartbeat_every /. 2.0)
          with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
        in
        List.iter
          (fun fd ->
            if fd = lfd then begin
              match Unix.accept lfd with
              | cfd, _ ->
                  Unix.set_nonblock cfd;
                  let id = !next_acc in
                  incr next_acc;
                  accepted := (id, Transport.of_fd cfd) :: !accepted
              | exception Unix.Unix_error _ -> ()
            end
            else
              match
                List.find_opt (fun (_, c) -> Transport.fd c = fd) !accepted
              with
              | Some (id, conn) -> (
                  let drop () =
                    accepted := List.remove_assoc id !accepted;
                    Transport.close conn
                  in
                  match Transport.fill conn with
                  | false -> drop ()
                  | true -> (
                      match Transport.pop conn with
                      | None -> ()
                      | Some Proto.Takeover ->
                          accepted := List.remove_assoc id !accepted;
                          requester := Some conn;
                          outcome := Some (Promote "operator takeover");
                          running := false
                      | Some Proto.Shutdown ->
                          Transport.close conn;
                          outcome := Some (Dismissed "operator shutdown");
                          running := false
                      | Some _ ->
                          (* Workers and clients probing the standby:
                             not serving, but the refusal names us so
                             their retry loops know to move on. *)
                          (try
                             Transport.send conn
                               (Proto.Goodbye
                                  {
                                    reason =
                                      Printf.sprintf
                                        "standby %s: not serving" name;
                                  })
                           with Transport.Closed | Unix.Unix_error _ -> ());
                          drop ()
                      | exception Transport.Protocol_failure _ -> drop ()))
              | None -> (
                  match !rep with
                  | Some conn when Transport.fd conn = fd -> (
                      match Transport.fill conn with
                      | false ->
                          outcome :=
                            Some (Promote "primary connection closed");
                          running := false
                      | true -> (
                          try
                            let continue = ref true in
                            while !continue && !running do
                              match Transport.pop conn with
                              | None -> continue := false
                              | Some msg -> (
                                  match on_rep_msg msg with
                                  | Keep_tailing -> ()
                                  | Resync why ->
                                      Log.warn (fun m ->
                                          m "replica diverged (%s); \
                                             re-syncing" why);
                                      drop_rep ();
                                      continue := false
                                  | (Promote _ | Dismissed _) as v ->
                                      outcome := Some v;
                                      running := false)
                            done
                          with Transport.Protocol_failure why ->
                            Log.warn (fun m ->
                                m "replication protocol failure: %s" why);
                            drop_rep ()))
                  | _ -> ()))
          readable;
        (* Liveness bookkeeping on the replication link. *)
        (match !rep with
        | Some conn ->
            let now = Unix.gettimeofday () in
            if now -. !last_seen > config.heartbeat_grace then begin
              outcome := Some (Promote "primary heartbeat silence");
              running := false
            end
            else if now -. !last_hb >= config.heartbeat_every then begin
              last_hb := now;
              try
                Transport.send conn
                  (Proto.Heartbeat { worker = name; inflight = 0 })
              with Transport.Closed | Unix.Unix_error _ ->
                outcome := Some (Promote "primary heartbeat send failed");
                running := false
            end
        | None -> ())
      done;
      drop_rep ();
      List.iter (fun (_, c) -> Transport.close c) !accepted;
      accepted := [];
      replica_close r;
      let finish_listener () =
        (try Unix.close lfd with Unix.Unix_error _ -> ());
        match listen with
        | Transport.Unix_sock path -> (
            try Sys.remove path with Sys_error _ -> ())
        | Transport.Tcp _ -> ()
      in
      (match !outcome with
      | Some (Dismissed reason) ->
          Log.info (fun m ->
              m "dismissed (%s): primary shut down cleanly; not promoting"
                reason);
          Trace.emit trace ~kind:"standby_dismissed"
            [ ("reason", Json.Str reason) ];
          (match !requester with Some c -> Transport.close c | None -> ());
          finish_listener ();
          Ok ()
      | Some (Promote reason) -> (
          Log.info (fun m -> m "promoting: %s" reason);
          Trace.emit trace ~kind:"standby_promoted"
            [
              ("reason", Json.Str reason);
              ("replica_bytes", Json.Num (float_of_int r.size));
            ];
          (* The replica journal is now ours. Opening the store repairs
             any torn tail (the snapshot/append discipline makes one
             unlikely, but a primary dying mid-frame can leave one) and
             replays: unfinished jobs re-queue, finished ones become
             answerable. [serve ~takeover:true] bumps the epoch past
             every reign this journal has seen — the fence. *)
          match Store.open_store dir with
          | Error e ->
              (match !requester with Some c -> Transport.close c | None -> ());
              finish_listener ();
              Error ("promotion: cannot open replica store: " ^ e)
          | Ok store ->
              (match !requester with
              | Some c ->
                  (try
                     Transport.send c
                       (Proto.Welcome
                          {
                            coordinator = name;
                            heartbeat_every = config.heartbeat_every;
                            epoch = Store.epoch store + 1;
                          })
                   with Transport.Closed | Unix.Unix_error _ -> ());
                  Transport.close c
              | None -> ());
              Coordinator.serve ~config:{ config with name } ~store ?metrics
                ~trace ~takeover:true ~lfd ~listen ())
      | Some (Keep_tailing | Resync _) | None ->
          finish_listener ();
          Ok ())
