(** The distributed coordinator: accepts jobs from clients, shards them
    across registered workers, and reroutes work when a worker dies.

    {2 Sharding}

    Jobs are placed by {e rendezvous (highest-random-weight) hashing}
    on the instance digest: among live workers with spare capacity, the
    job goes to the one maximizing [fnv1a64(digest ^ "|" ^ worker)].
    Two properties follow: repeated solves of the same instance land on
    the same worker (whose engine cache then answers warm or hot), and
    a worker joining or leaving moves only the jobs that hash to it —
    no global reshuffle.

    {2 Durability and rerouting}

    With a {!Psdp_store.Store} attached, the coordinator journals
    [Submitted] when it accepts a job, [Assigned] each time it hands
    the job to a worker, and [Completed] — now carrying the result
    body — when the result arrives; the same WAL the single-process
    engine writes, so [psdp journal] tools read it unchanged. A worker
    that misses heartbeats past the grace period (or whose connection
    drops) is declared dead; its unfinished jobs are re-queued and
    re-journaled as [Assigned] to their new worker. On startup the
    coordinator replays its journal: every job submitted but never
    completed is re-queued, and every completed job's result is loaded
    so an idempotent resubmission (same job id) is answered from the
    journal instead of re-run — a client never pays twice and never
    loses a result across a coordinator death.

    {2 High availability}

    A standby (see {!Replicate}) attaches with [Rep_hello] and receives
    the whole journal as [Rep_snapshot], then every fsynced append as a
    byte-exact [Rep_append]; its [Rep_ack]s feed the replication-lag
    gauge. Each reign has a {e fencing epoch}: journaled in an [Epoch]
    record, stamped on every journal line, and carried by [Welcome] and
    worker-bound [Submit] frames. A plain restart keeps the stored
    epoch (first-ever start is epoch 1); only a takeover/promotion
    bumps it. A [Hello] whose [fence] exceeds our epoch means a newer
    primary reigns: the worker is {e not} registered — it receives our
    stale [Welcome], rejects it against its fence, and stays with the
    live primary. That exchange is what makes a resurrected deposed
    primary harmless (no split-brain).

    {2 Concurrency model}

    One thread, one [select] loop. Frame decoding is pure and
    incremental, so slow or malicious peers cannot wedge the loop;
    writes are blocking (results and acks are small). Protocol
    violations drop the offending connection only. *)

type config = {
  name : string;  (** announced in [Welcome] *)
  heartbeat_every : float;  (** seconds between worker heartbeats *)
  heartbeat_grace : float;
      (** silence after which a worker is declared dead; must exceed
          [heartbeat_every] *)
  max_payload : int;  (** per-frame payload acceptance limit, bytes *)
}

val default_config : config
(** [{name = "coordinator"; heartbeat_every = 1.0;
     heartbeat_grace = 5.0; max_payload = Frame.default_max_payload}] *)

val serve :
  ?config:config ->
  ?store:Psdp_store.Store.t ->
  ?metrics:Psdp_obs.Metrics.t ->
  ?trace:Psdp_engine.Trace.sink ->
  ?on_ready:(unit -> unit) ->
  ?takeover:bool ->
  lfd:Unix.file_descr ->
  listen:Transport.addr ->
  unit ->
  (unit, string) result
(** Serve over an already-bound, listening descriptor. This is the
    promotion entry point: a standby binds its address at startup and
    hands the descriptor here the moment it decides to take over, so
    failover involves no bind race. [takeover] bumps the fencing epoch
    past the journal's (and journals the bump); default [false] keeps
    the stored epoch. Closes [lfd] (and unlinks a Unix socket path) on
    the way out. *)

val run :
  ?config:config ->
  ?store:Psdp_store.Store.t ->
  ?metrics:Psdp_obs.Metrics.t ->
  ?trace:Psdp_engine.Trace.sink ->
  ?on_ready:(unit -> unit) ->
  ?takeover:bool ->
  listen:Transport.addr ->
  unit ->
  (unit, string) result
(** Bind [listen] and {!serve} until a client sends [Shutdown] (all
    peers then receive [Goodbye] and every connection is closed) — or
    return [Error] if the listen address cannot be bound. [on_ready]
    fires once recovery is done and the loop is about to start
    (in-process tests synchronize on it).

    Metrics registered when [metrics] is given:
    [psdp_dist_workers], [psdp_dist_worker_inflight{worker}],
    [psdp_dist_jobs_submitted_total], [psdp_dist_jobs_completed_total],
    [psdp_dist_jobs_queued], [psdp_dist_reroutes_total],
    [psdp_dist_heartbeat_misses_total],
    [psdp_dist_frame_bytes_total{dir="rx"|"tx"}], plus the HA meters
    [psdp_ha_epoch], [psdp_ha_standbys],
    [psdp_ha_replication_lag_bytes],
    [psdp_ha_replication_records_total],
    [psdp_ha_replication_bytes_total], [psdp_ha_failovers_total],
    [psdp_ha_deposed_hellos_total],
    [psdp_ha_resubmits_deduped_total]. *)
