(** The distributed coordinator: accepts jobs from clients, shards them
    across registered workers, and reroutes work when a worker dies.

    {2 Sharding}

    Jobs are placed by {e rendezvous (highest-random-weight) hashing}
    on the instance digest: among live workers with spare capacity, the
    job goes to the one maximizing [fnv1a64(digest ^ "|" ^ worker)].
    Two properties follow: repeated solves of the same instance land on
    the same worker (whose engine cache then answers warm or hot), and
    a worker joining or leaving moves only the jobs that hash to it —
    no global reshuffle.

    {2 Durability and rerouting}

    With a {!Psdp_store.Store} attached, the coordinator journals
    [Submitted] when it accepts a job, [Assigned] each time it hands
    the job to a worker, and [Completed] when the result arrives — the
    same WAL the single-process engine writes, so [psdp journal] tools
    read it unchanged. A worker that misses heartbeats past the grace
    period (or whose connection drops) is declared dead; its
    unfinished jobs are re-queued and re-journaled as [Assigned] to
    their new worker. On startup the coordinator replays its journal
    and re-queues every job that was submitted but never completed, so
    a coordinator crash loses no accepted work (results for recovered
    jobs have no client to return to; they are journaled and
    dropped).

    {2 Concurrency model}

    One thread, one [select] loop. Frame decoding is pure and
    incremental, so slow or malicious peers cannot wedge the loop;
    writes are blocking (results and acks are small). Protocol
    violations drop the offending connection only. *)

type config = {
  name : string;  (** announced in [Welcome] *)
  heartbeat_every : float;  (** seconds between worker heartbeats *)
  heartbeat_grace : float;
      (** silence after which a worker is declared dead; must exceed
          [heartbeat_every] *)
  max_payload : int;  (** per-frame payload acceptance limit, bytes *)
}

val default_config : config
(** [{name = "coordinator"; heartbeat_every = 1.0;
     heartbeat_grace = 5.0; max_payload = Frame.default_max_payload}] *)

val run :
  ?config:config ->
  ?store:Psdp_store.Store.t ->
  ?metrics:Psdp_obs.Metrics.t ->
  ?trace:Psdp_engine.Trace.sink ->
  ?on_ready:(unit -> unit) ->
  listen:Transport.addr ->
  unit ->
  (unit, string) result
(** Serve until a client sends [Shutdown] (all workers then receive
    [Goodbye] and every connection is closed) — or return [Error] if
    the listen address cannot be bound. [on_ready] fires once the
    socket is listening (in-process tests synchronize on it).

    Metrics registered when [metrics] is given:
    [psdp_dist_workers], [psdp_dist_worker_inflight{worker}],
    [psdp_dist_jobs_submitted_total], [psdp_dist_jobs_completed_total],
    [psdp_dist_jobs_queued], [psdp_dist_reroutes_total],
    [psdp_dist_heartbeat_misses_total],
    [psdp_dist_frame_bytes_total{dir="rx"|"tx"}]. *)
