module Checksum = Psdp_store.Checksum

type error =
  | Bad_magic
  | Bad_version of int
  | Oversized of { length : int; limit : int }
  | Truncated
  | Checksum_mismatch

let error_to_string = function
  | Bad_magic -> "bad magic (not a PSDP frame)"
  | Bad_version v -> Printf.sprintf "unsupported protocol version %d" v
  | Oversized { length; limit } ->
      Printf.sprintf "declared payload of %d bytes exceeds the %d-byte limit"
        length limit
  | Truncated -> "truncated frame"
  | Checksum_mismatch -> "frame checksum mismatch"

let magic = "PSDP"
let version = 1
let header_size = 12
let trailer_size = 8
let default_max_payload = 16 * 1024 * 1024

let encode ~tag payload =
  if tag < 0 || tag > 255 then
    invalid_arg (Printf.sprintf "Frame.encode: tag %d out of range" tag);
  let n = String.length payload in
  let b = Bytes.create (header_size + n + trailer_size) in
  Bytes.blit_string magic 0 b 0 4;
  Bytes.set_uint8 b 4 version;
  Bytes.set_uint8 b 5 tag;
  Bytes.set_uint8 b 6 0;
  Bytes.set_uint8 b 7 0;
  Bytes.set_uint8 b 8 ((n lsr 24) land 0xff);
  Bytes.set_uint8 b 9 ((n lsr 16) land 0xff);
  Bytes.set_uint8 b 10 ((n lsr 8) land 0xff);
  Bytes.set_uint8 b 11 (n land 0xff);
  Bytes.blit_string payload 0 b header_size n;
  let sum = Checksum.fnv1a64 (Bytes.sub_string b 0 (header_size + n)) in
  Bytes.set_int64_be b (header_size + n) sum;
  Bytes.unsafe_to_string b

type decoded =
  | Incomplete
  | Frame of { tag : int; payload : string; size : int }

let decode ?(max_payload = default_max_payload) buf ~off ~len =
  (* Validate the prefix as it arrives: magic byte-by-byte, then the
     version, then the declared length against the limit — all before a
     payload-sized allocation can happen. *)
  let ok_magic =
    let n = min len 4 in
    let rec go i = i >= n || (Bytes.get buf (off + i) = magic.[i] && go (i + 1)) in
    go 0
  in
  if not ok_magic then Error Bad_magic
  else if len < 5 then Ok Incomplete
  else
    let v = Bytes.get_uint8 buf (off + 4) in
    if v <> version then Error (Bad_version v)
    else if len < header_size then Ok Incomplete
    else
      let plen =
        (Bytes.get_uint8 buf (off + 8) lsl 24)
        lor (Bytes.get_uint8 buf (off + 9) lsl 16)
        lor (Bytes.get_uint8 buf (off + 10) lsl 8)
        lor Bytes.get_uint8 buf (off + 11)
      in
      if plen > max_payload then
        Error (Oversized { length = plen; limit = max_payload })
      else
        let size = header_size + plen + trailer_size in
        if len < size then Ok Incomplete
        else
          let body = Bytes.sub_string buf off (header_size + plen) in
          let sum = Bytes.get_int64_be buf (off + header_size + plen) in
          if not (Int64.equal (Checksum.fnv1a64 body) sum) then
            Error Checksum_mismatch
          else
            let tag = Bytes.get_uint8 buf (off + 5) in
            let payload = String.sub body header_size plen in
            Ok (Frame { tag; payload; size })

let decode_exact ?max_payload s =
  let buf = Bytes.unsafe_of_string s in
  match decode ?max_payload buf ~off:0 ~len:(String.length s) with
  | Error e -> Error e
  | Ok Incomplete -> Error Truncated
  | Ok (Frame { tag; payload; size }) ->
      if size <> String.length s then Error Bad_magic
      else Ok (tag, payload)
