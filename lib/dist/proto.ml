open Psdp_prelude
open Psdp_engine

type msg =
  | Hello of { worker : string; capacity : int; fence : int }
  | Welcome of { coordinator : string; heartbeat_every : float; epoch : int }
  | Submit of { spec : Job.spec; epoch : int }
  | Result of { result : Job.result }
  | Heartbeat of { worker : string; inflight : int }
  | Heartbeat_ack
  | Goodbye of { reason : string }
  | Error_msg of { message : string }
  | Shutdown
  | Rep_hello of { standby : string }
  | Rep_snapshot of { epoch : int; data : string }
  | Rep_append of { epoch : int; offset : int; data : string }
  | Rep_ack of { offset : int }
  | Takeover

let tag = function
  | Hello _ -> 1
  | Welcome _ -> 2
  | Submit _ -> 3
  | Result _ -> 4
  | Heartbeat _ -> 5
  | Heartbeat_ack -> 6
  | Goodbye _ -> 7
  | Error_msg _ -> 8
  | Shutdown -> 9
  | Rep_hello _ -> 10
  | Rep_snapshot _ -> 11
  | Rep_append _ -> 12
  | Rep_ack _ -> 13
  | Takeover -> 14

let describe = function
  | Hello { worker; _ } -> "hello:" ^ worker
  | Welcome { coordinator; _ } -> "welcome:" ^ coordinator
  | Submit { spec; _ } -> "submit:" ^ spec.Job.id
  | Result { result } -> "result:" ^ result.Job.id
  | Heartbeat { worker; _ } -> "heartbeat:" ^ worker
  | Heartbeat_ack -> "heartbeat_ack"
  | Goodbye { reason } -> "goodbye:" ^ reason
  | Error_msg { message } -> "error:" ^ message
  | Shutdown -> "shutdown"
  | Rep_hello { standby } -> "rep_hello:" ^ standby
  | Rep_snapshot { epoch; data } ->
      Printf.sprintf "rep_snapshot:e%d/%dB" epoch (String.length data)
  | Rep_append { epoch; offset; data } ->
      Printf.sprintf "rep_append:e%d@%d/%dB" epoch offset (String.length data)
  | Rep_ack { offset } -> Printf.sprintf "rep_ack:%d" offset
  | Takeover -> "takeover"

(* Journal bytes travel hex-encoded inside the JSON payload: the stream
   is byte-exact whatever the journal contains, with no dependence on
   the JSON codec's string-escaping fidelity for raw binary. *)
let hex_digits = "0123456789abcdef"

let hex_encode s =
  String.init
    (2 * String.length s)
    (fun i ->
      let c = Char.code s.[i / 2] in
      hex_digits.[if i land 1 = 0 then c lsr 4 else c land 0xf])

let hex_decode s =
  let n = String.length s in
  if n land 1 = 1 then None
  else
    let nibble c =
      match c with
      | '0' .. '9' -> Some (Char.code c - Char.code '0')
      | 'a' .. 'f' -> Some (Char.code c - Char.code 'a' + 10)
      | 'A' .. 'F' -> Some (Char.code c - Char.code 'A' + 10)
      | _ -> None
    in
    let bad = ref false in
    let out =
      String.init (n / 2) (fun i ->
          match (nibble s.[2 * i], nibble s.[(2 * i) + 1]) with
          | Some hi, Some lo -> Char.chr ((hi lsl 4) lor lo)
          | _ ->
              bad := true;
              '\x00')
    in
    if !bad then None else Some out

let num_int n = Json.Num (float_of_int n)

let payload_json = function
  | Hello { worker; capacity; fence } ->
      Json.Obj
        [
          ("worker", Json.Str worker);
          ("capacity", num_int capacity);
          ("fence", num_int fence);
        ]
  | Welcome { coordinator; heartbeat_every; epoch } ->
      Json.Obj
        [
          ("coordinator", Json.Str coordinator);
          ("heartbeat_every", Json.Num heartbeat_every);
          ("epoch", num_int epoch);
        ]
  | Submit { spec; epoch } -> (
      match Job.spec_to_json spec with
      | Ok (Json.Obj fields) ->
          if epoch = 0 then Json.Obj fields
          else Json.Obj (fields @ [ ("epoch", num_int epoch) ])
      | Ok j -> j
      | Error msg -> invalid_arg ("Proto.encode: " ^ msg))
  | Result { result } -> Job.result_to_json result
  | Heartbeat { worker; inflight } ->
      Json.Obj
        [ ("worker", Json.Str worker); ("inflight", num_int inflight) ]
  | Heartbeat_ack -> Json.Obj []
  | Goodbye { reason } -> Json.Obj [ ("reason", Json.Str reason) ]
  | Error_msg { message } -> Json.Obj [ ("message", Json.Str message) ]
  | Shutdown -> Json.Obj []
  | Rep_hello { standby } -> Json.Obj [ ("standby", Json.Str standby) ]
  | Rep_snapshot { epoch; data } ->
      Json.Obj
        [ ("epoch", num_int epoch); ("data", Json.Str (hex_encode data)) ]
  | Rep_append { epoch; offset; data } ->
      Json.Obj
        [
          ("epoch", num_int epoch);
          ("offset", num_int offset);
          ("data", Json.Str (hex_encode data));
        ]
  | Rep_ack { offset } -> Json.Obj [ ("offset", num_int offset) ]
  | Takeover -> Json.Obj []

let encode msg = Frame.encode ~tag:(tag msg) (Json.to_string (payload_json msg))

let decode ~tag payload =
  let ( let* ) = Result.bind in
  let* j =
    match Json.parse payload with
    | Ok j -> Ok j
    | Error e -> Error ("payload is not JSON: " ^ e)
  in
  let str name =
    match Option.bind (Json.mem name j) Json.str with
    | Some s -> Ok s
    | None -> Error (Printf.sprintf "missing or bad %S" name)
  in
  let int name =
    match Option.bind (Json.mem name j) Json.int with
    | Some n -> Ok n
    | None -> Error (Printf.sprintf "missing or bad %S" name)
  in
  (* Epoch fields default to 0 ("unfenced"): pre-HA peers omit them and
     must keep interoperating with fenced ones. *)
  let int_default name d =
    match Json.mem name j with
    | None -> Ok d
    | Some v -> (
        match Json.int v with
        | Some n -> Ok n
        | None -> Error (Printf.sprintf "missing or bad %S" name))
  in
  let num name =
    match Option.bind (Json.mem name j) Json.num with
    | Some x -> Ok x
    | None -> Error (Printf.sprintf "missing or bad %S" name)
  in
  let data name =
    let* s = str name in
    match hex_decode s with
    | Some d -> Ok d
    | None -> Error (Printf.sprintf "field %S is not hex" name)
  in
  match tag with
  | 1 ->
      let* worker = str "worker" in
      let* capacity = int "capacity" in
      let* fence = int_default "fence" 0 in
      if capacity < 1 then Error "hello: capacity must be positive"
      else if fence < 0 then Error "hello: fence must be non-negative"
      else Ok (Hello { worker; capacity; fence })
  | 2 ->
      let* coordinator = str "coordinator" in
      let* heartbeat_every = num "heartbeat_every" in
      let* epoch = int_default "epoch" 0 in
      Ok (Welcome { coordinator; heartbeat_every; epoch })
  | 3 ->
      let* spec = Job.spec_of_json j in
      let* epoch = int_default "epoch" 0 in
      Ok (Submit { spec; epoch })
  | 4 ->
      let* result = Job.result_of_json j in
      Ok (Result { result })
  | 5 ->
      let* worker = str "worker" in
      let* inflight = int "inflight" in
      Ok (Heartbeat { worker; inflight })
  | 6 -> Ok Heartbeat_ack
  | 7 ->
      let* reason = str "reason" in
      Ok (Goodbye { reason })
  | 8 ->
      let* message = str "message" in
      Ok (Error_msg { message })
  | 9 -> Ok Shutdown
  | 10 ->
      let* standby = str "standby" in
      Ok (Rep_hello { standby })
  | 11 ->
      let* epoch = int "epoch" in
      let* data = data "data" in
      Ok (Rep_snapshot { epoch; data })
  | 12 ->
      let* epoch = int "epoch" in
      let* offset = int "offset" in
      let* data = data "data" in
      if offset < 0 then Error "rep_append: negative offset"
      else Ok (Rep_append { epoch; offset; data })
  | 13 ->
      let* offset = int "offset" in
      if offset < 0 then Error "rep_ack: negative offset"
      else Ok (Rep_ack { offset })
  | 14 -> Ok Takeover
  | other -> Error (Printf.sprintf "unknown message tag %d" other)
