open Psdp_prelude
open Psdp_engine

type msg =
  | Hello of { worker : string; capacity : int }
  | Welcome of { coordinator : string; heartbeat_every : float }
  | Submit of { spec : Job.spec }
  | Result of { result : Job.result }
  | Heartbeat of { worker : string; inflight : int }
  | Heartbeat_ack
  | Goodbye of { reason : string }
  | Error_msg of { message : string }
  | Shutdown

let tag = function
  | Hello _ -> 1
  | Welcome _ -> 2
  | Submit _ -> 3
  | Result _ -> 4
  | Heartbeat _ -> 5
  | Heartbeat_ack -> 6
  | Goodbye _ -> 7
  | Error_msg _ -> 8
  | Shutdown -> 9

let describe = function
  | Hello { worker; _ } -> "hello:" ^ worker
  | Welcome { coordinator; _ } -> "welcome:" ^ coordinator
  | Submit { spec } -> "submit:" ^ spec.Job.id
  | Result { result } -> "result:" ^ result.Job.id
  | Heartbeat { worker; _ } -> "heartbeat:" ^ worker
  | Heartbeat_ack -> "heartbeat_ack"
  | Goodbye { reason } -> "goodbye:" ^ reason
  | Error_msg { message } -> "error:" ^ message
  | Shutdown -> "shutdown"

let payload_json = function
  | Hello { worker; capacity } ->
      Json.Obj
        [
          ("worker", Json.Str worker);
          ("capacity", Json.Num (float_of_int capacity));
        ]
  | Welcome { coordinator; heartbeat_every } ->
      Json.Obj
        [
          ("coordinator", Json.Str coordinator);
          ("heartbeat_every", Json.Num heartbeat_every);
        ]
  | Submit { spec } -> (
      match Job.spec_to_json spec with
      | Ok j -> j
      | Error msg -> invalid_arg ("Proto.encode: " ^ msg))
  | Result { result } -> Job.result_to_json result
  | Heartbeat { worker; inflight } ->
      Json.Obj
        [
          ("worker", Json.Str worker);
          ("inflight", Json.Num (float_of_int inflight));
        ]
  | Heartbeat_ack -> Json.Obj []
  | Goodbye { reason } -> Json.Obj [ ("reason", Json.Str reason) ]
  | Error_msg { message } -> Json.Obj [ ("message", Json.Str message) ]
  | Shutdown -> Json.Obj []

let encode msg = Frame.encode ~tag:(tag msg) (Json.to_string (payload_json msg))

let decode ~tag payload =
  let ( let* ) = Result.bind in
  let* j =
    match Json.parse payload with
    | Ok j -> Ok j
    | Error e -> Error ("payload is not JSON: " ^ e)
  in
  let str name =
    match Option.bind (Json.mem name j) Json.str with
    | Some s -> Ok s
    | None -> Error (Printf.sprintf "missing or bad %S" name)
  in
  let int name =
    match Option.bind (Json.mem name j) Json.int with
    | Some n -> Ok n
    | None -> Error (Printf.sprintf "missing or bad %S" name)
  in
  let num name =
    match Option.bind (Json.mem name j) Json.num with
    | Some x -> Ok x
    | None -> Error (Printf.sprintf "missing or bad %S" name)
  in
  match tag with
  | 1 ->
      let* worker = str "worker" in
      let* capacity = int "capacity" in
      if capacity < 1 then Error "hello: capacity must be positive"
      else Ok (Hello { worker; capacity })
  | 2 ->
      let* coordinator = str "coordinator" in
      let* heartbeat_every = num "heartbeat_every" in
      Ok (Welcome { coordinator; heartbeat_every })
  | 3 ->
      let* spec = Job.spec_of_json j in
      Ok (Submit { spec })
  | 4 ->
      let* result = Job.result_of_json j in
      Ok (Result { result })
  | 5 ->
      let* worker = str "worker" in
      let* inflight = int "inflight" in
      Ok (Heartbeat { worker; inflight })
  | 6 -> Ok Heartbeat_ack
  | 7 ->
      let* reason = str "reason" in
      Ok (Goodbye { reason })
  | 8 ->
      let* message = str "message" in
      Ok (Error_msg { message })
  | 9 -> Ok Shutdown
  | other -> Error (Printf.sprintf "unknown message tag %d" other)
