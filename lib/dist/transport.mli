(** Framed message transport over TCP or Unix-domain sockets.

    A {!conn} wraps a connected socket with a growable read buffer and
    a write mutex. Reads are {e pull}-based so both I/O styles work:

    - blocking peers (worker, client) call {!recv}, which loops
      [fill] → [pop] until a whole message arrives;
    - the coordinator's select loop calls {!fill} when the descriptor
      is readable and then drains {!pop} — decoding is pure, so one
      [read] may yield zero or many messages.

    Protocol violations (bad magic/version, oversized or corrupt
    frames, undecodable payloads) raise {!Protocol_failure}; the only
    sane response is to drop the connection, which callers do. A peer
    closing the socket surfaces as {!Closed}.

    Writes are blocking and serialized per connection by a mutex, so a
    worker's runner domains can push results while its main thread
    heartbeats. [SIGPIPE] is disabled process-wide on first use —
    writing to a dead peer raises [EPIPE], which callers treat exactly
    like {!Closed}. *)

type addr = Unix_sock of string | Tcp of string * int

val addr_of_string : string -> (addr, string) result
(** ["unix:PATH"] or ["HOST:PORT"]; a bare [PORT] means
    [127.0.0.1:PORT]. *)

val addr_to_string : addr -> string

exception Closed
exception Protocol_failure of string

type conn

val listen : ?backlog:int -> addr -> (Unix.file_descr, string) result
(** Bind and listen. A pre-existing Unix socket path is unlinked first
    (a stale path from a killed process would otherwise block
    rebinding forever). *)

val connect :
  ?max_payload:int -> ?count_rx:(int -> unit) -> ?count_tx:(int -> unit) ->
  addr -> (conn, string) result

val of_fd :
  ?max_payload:int -> ?count_rx:(int -> unit) -> ?count_tx:(int -> unit) ->
  Unix.file_descr -> conn
(** Wrap an accepted descriptor. [count_rx]/[count_tx] observe raw byte
    counts as they cross the socket (the coordinator feeds
    [psdp_dist_frame_bytes_total]). [max_payload] bounds what this side
    will {e accept} (default {!Frame.default_max_payload}). *)

val fd : conn -> Unix.file_descr

val send : conn -> Proto.msg -> unit
(** Encode and write the whole frame under the connection's write
    mutex, looping on short writes: [EINTR] retries the same range,
    [EAGAIN]/[EWOULDBLOCK] (non-blocking descriptors) waits for
    writability — a frame is either delivered whole or the connection
    is dead, never torn by a slow socket or a signal. Raises {!Closed}
    on [EPIPE]/[ECONNRESET]. *)

val fill : conn -> bool
(** One [read] into the buffer. [false] means end-of-stream (the peer
    closed); [true] means bytes (possibly few, possibly none on
    [EAGAIN]/[EINTR]) arrived. Blocks unless the caller knows the
    descriptor is readable. *)

val pop : conn -> Proto.msg option
(** Decode one message from the buffer, or [None] if no complete frame
    is buffered. Raises {!Protocol_failure} on a malformed stream. *)

val recv : conn -> Proto.msg
(** [pop] or block in [fill] until a message arrives; {!Closed} if the
    stream ends first. *)

val close : conn -> unit
(** Close the descriptor; double-close is harmless. *)
