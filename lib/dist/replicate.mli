(** The standby side of coordinator high availability: tail a primary's
    WAL into a byte-identical replica journal, and take over when the
    primary dies.

    {2 Lifecycle}

    A standby binds its own listen address {e immediately} (so failover
    never races a bind) but refuses service: workers and clients that
    dial it receive [Goodbye "standby NAME: not serving"] — their
    self-healing loops treat that as "try the next address". It then
    dials the primary list, announces itself with [Rep_hello], installs
    the [Rep_snapshot] (the primary's whole journal, byte-exact),
    and applies each [Rep_append] — verifying the offset against the
    replica length (a mismatch forces a fresh snapshot), fsyncing, and
    acknowledging with [Rep_ack]. It heartbeats the primary on the same
    link.

    {2 Failover}

    The standby {e promotes} — replays its replica, bumps the fencing
    epoch, and becomes the coordinator on its already-bound address —
    when the replication link reaches end-of-stream, when the primary
    falls silent past the heartbeat grace, or when an operator connects
    and sends [Takeover] (answered with the new reign's [Welcome]). A
    [Goodbye] from the primary is a {e dismissal} (clean cluster
    shutdown): the standby exits without promoting, because an operator
    stop is not a death. Promotion opens the replica store (repairing a
    torn tail), re-queues every unfinished job, loads every journaled
    result for idempotent replay, and calls
    {!Coordinator.serve}[ ~takeover:true] — the epoch bump is what
    fences the old primary out if it ever resurrects. *)

type plan = {
  valid_records : int;  (** journal records in the longest valid prefix *)
  valid_prefix : int;  (** byte length of that prefix *)
  torn : string option;  (** description of the torn tail, if any *)
  epoch : int;  (** highest fencing epoch in the valid prefix *)
  requeue : string list;  (** unfinished jobs a promotion re-queues *)
  answerable : string list;
      (** finished jobs whose results replay from the journal *)
}

val recover_plan : dir:string -> (plan, string) result
(** What promoting over the journal in [dir] would do, computed by the
    {e same} open-and-replay path promotion uses ({!Store.open_store}):
    the torn tail, if any, is truncated away on disk, the longest valid
    prefix is kept, and unfinished work is listed for re-queue. The
    torn-tail tests drive this at every byte offset of a final
    record. *)

val standby :
  ?config:Coordinator.config ->
  ?metrics:Psdp_obs.Metrics.t ->
  ?trace:Psdp_engine.Trace.sink ->
  ?retry:Psdp_fault.Retry.policy ->
  ?on_ready:(unit -> unit) ->
  name:string ->
  listen:Transport.addr ->
  primaries:Transport.addr list ->
  dir:string ->
  unit ->
  (unit, string) result
(** Run the standby lifecycle described above. [listen] is the address
    this standby will serve on after promotion (bound before
    [on_ready] fires); [primaries] is dialed in order, with
    decorrelated-jitter backoff ([retry]) between full unreachable
    cycles; [dir] holds the replica journal and becomes the promoted
    coordinator's store directory. Returns when the promoted
    coordinator finishes (or on dismissal / operator shutdown).
    With [metrics], registers [psdp_ha_replica_bytes] and
    [psdp_ha_standby_reattach_total] while tailing, plus everything
    {!Coordinator.serve} registers after promotion. *)
