open Psdp_prelude
open Psdp_engine
module Store = Psdp_store.Store
module Journal = Psdp_store.Journal
module Checksum = Psdp_store.Checksum
module Metrics = Psdp_obs.Metrics
module Trace_context = Psdp_obs.Trace_context

let log_src = Logs.Src.create "psdp.dist.coord" ~doc:"distributed coordinator"

module Log = (val Logs.src_log log_src : Logs.LOG)

type config = {
  name : string;
  heartbeat_every : float;
  heartbeat_grace : float;
  max_payload : int;
}

let default_config =
  {
    name = "coordinator";
    heartbeat_every = 1.0;
    heartbeat_grace = 5.0;
    max_payload = Frame.default_max_payload;
  }

type meters = {
  m_workers : Metrics.gauge;
  m_submitted : Metrics.counter;
  m_completed : Metrics.counter;
  m_queued : Metrics.gauge;
  m_reroutes : Metrics.counter;
  m_hb_misses : Metrics.counter;
  m_rx_bytes : Metrics.counter;
  m_tx_bytes : Metrics.counter;
  m_epoch : Metrics.gauge;
  m_standbys : Metrics.gauge;
  m_rep_lag : Metrics.gauge;
  m_rep_records : Metrics.counter;
  m_rep_bytes : Metrics.counter;
  m_failovers : Metrics.counter;
  m_deposed : Metrics.counter;
  m_resubmits : Metrics.counter;
  m_reg : Metrics.t;
}

let make_meters reg =
  {
    m_workers =
      Metrics.gauge reg ~help:"workers currently registered"
        "psdp_dist_workers";
    m_submitted =
      Metrics.counter reg ~help:"jobs accepted from clients"
        "psdp_dist_jobs_submitted_total";
    m_completed =
      Metrics.counter reg ~help:"results received from workers"
        "psdp_dist_jobs_completed_total";
    m_queued =
      Metrics.gauge reg ~help:"jobs accepted but not yet assigned"
        "psdp_dist_jobs_queued";
    m_reroutes =
      Metrics.counter reg ~help:"jobs re-queued after a worker death"
        "psdp_dist_reroutes_total";
    m_hb_misses =
      Metrics.counter reg ~help:"heartbeat periods a worker went silent"
        "psdp_dist_heartbeat_misses_total";
    m_rx_bytes =
      Metrics.counter reg ~labels:[ ("dir", "rx") ]
        ~help:"raw bytes crossing coordinator sockets"
        "psdp_dist_frame_bytes_total";
    m_tx_bytes =
      Metrics.counter reg ~labels:[ ("dir", "tx") ]
        ~help:"raw bytes crossing coordinator sockets"
        "psdp_dist_frame_bytes_total";
    m_epoch =
      Metrics.gauge reg ~help:"fencing epoch of this coordinator's reign"
        "psdp_ha_epoch";
    m_standbys =
      Metrics.gauge reg ~help:"standby coordinators tailing our WAL"
        "psdp_ha_standbys";
    m_rep_lag =
      Metrics.gauge reg
        ~help:"journal bytes not yet acknowledged by the slowest standby"
        "psdp_ha_replication_lag_bytes";
    m_rep_records =
      Metrics.counter reg ~help:"journal records streamed to standbys"
        "psdp_ha_replication_records_total";
    m_rep_bytes =
      Metrics.counter reg ~help:"journal bytes streamed to standbys"
        "psdp_ha_replication_bytes_total";
    m_failovers =
      Metrics.counter reg
        ~help:"times this process promoted from standby to primary"
        "psdp_ha_failovers_total";
    m_deposed =
      Metrics.counter reg
        ~help:"hellos carrying a fence above our epoch (a newer primary exists)"
        "psdp_ha_deposed_hellos_total";
    m_resubmits =
      Metrics.counter reg
        ~help:"idempotent resubmissions deduplicated by job id"
        "psdp_ha_resubmits_deduped_total";
    m_reg = reg;
  }

type role =
  | Pending
  | Worker_role of string
  | Client_role
  | Standby_role of { s_name : string; mutable s_acked : int }

type peer = { pid : int; conn : Transport.conn; mutable role : role }

type wstate = {
  w_name : string;
  w_peer : peer;
  w_capacity : int;
  w_jobs : (string, unit) Hashtbl.t;  (* assigned, not yet completed *)
  mutable w_last_seen : float;
  mutable w_missed : int;  (* heartbeat periods counted silent so far *)
  w_gauge : Metrics.gauge option;
}

type jstate = {
  j_spec : Job.spec;
  mutable j_worker : string option;
  mutable j_client : int option;  (* peer id to return the result to *)
  mutable j_done : bool;
  (* Tracing state. [j_ctx] is the span the coordinator parents its own
     spans under — the client's request span when the spec carried one,
     else a root minted here (the [bool] records that we own it and must
     emit the enclosing "job" span at completion). [j_wait_start] anchors
     the current queue (or reroute) wait; [j_assign] is the open
     assignment span (context + start), closed on result or reroute. *)
  mutable j_ctx : (Trace_context.t * bool) option;
  j_t0 : float;
  mutable j_wait_start : float;
  mutable j_assign : (Trace_context.t * float) option;
  mutable j_rerouted : bool;
}

type t = {
  cfg : config;
  store : Store.t option;
  meters : meters option;
  trace : Trace.sink;
  conns : (int, peer) Hashtbl.t;
  workers : (string, wstate) Hashtbl.t;
  jobs : (string, jstate) Hashtbl.t;
  queue : string Queue.t;
  digests : (string, string) Hashtbl.t;  (* instance path -> shard key *)
  done_results : (string, Json.t) Hashtbl.t;
      (* journaled results of finished jobs, for idempotent redelivery *)
  mutable epoch : int;
  mutable doomed : int list;  (* peers to drop outside iteration *)
  mutable next_pid : int;
  mutable running : bool;
}

(* ------------------------------------------------------------------ *)
(* Sharding *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* The shard key is the digest of the instance *content* when the file
   is readable here (coordinator and workers share a filesystem in the
   local-cluster deployments this serves), falling back to the path —
   still deterministic, just blind to renames. *)
let shard_key t (spec : Job.spec) =
  match spec.Job.source with
  | Job.Inline _ -> spec.Job.id
  | Job.File path -> (
      match Hashtbl.find_opt t.digests path with
      | Some k -> k
      | None ->
          let k =
            match read_file path with
            | text -> Checksum.fnv1a64_hex text
            | exception _ -> Checksum.fnv1a64_hex path
          in
          Hashtbl.replace t.digests path k;
          k)

let rendezvous t key =
  Hashtbl.fold
    (fun name w best ->
      if Hashtbl.length w.w_jobs >= w.w_capacity then best
      else
        let score = Checksum.fnv1a64 (key ^ "|" ^ name) in
        match best with
        | Some (s, _) when Int64.unsigned_compare s score >= 0 -> best
        | _ -> Some (score, w))
    t.workers None
  |> Option.map snd

(* ------------------------------------------------------------------ *)
(* Journaling and metrics helpers *)

let journal t record =
  match t.store with
  | None -> ()
  | Some store -> (
      try Store.append ~epoch:t.epoch store record
      with e ->
        Log.warn (fun m ->
            m "journal append failed (%s); continuing non-durable"
              (Printexc.to_string e)))

let set_queue_gauge t =
  match t.meters with
  | None -> ()
  | Some m -> Metrics.set m.m_queued (float_of_int (Queue.length t.queue))

let set_worker_gauges t =
  match t.meters with
  | None -> ()
  | Some m ->
      Metrics.set m.m_workers (float_of_int (Hashtbl.length t.workers));
      Hashtbl.iter
        (fun _ w ->
          match w.w_gauge with
          | Some g -> Metrics.set g (float_of_int (Hashtbl.length w.w_jobs))
          | None -> ())
        t.workers

let standby_count t =
  Hashtbl.fold
    (fun _ p acc -> match p.role with Standby_role _ -> acc + 1 | _ -> acc)
    t.conns 0

let set_rep_gauges t =
  match t.meters with
  | None -> ()
  | Some m ->
      Metrics.set m.m_standbys (float_of_int (standby_count t));
      let size =
        match t.store with Some s -> Store.journal_size s | None -> 0
      in
      let lag =
        Hashtbl.fold
          (fun _ p acc ->
            match p.role with
            | Standby_role { s_acked; _ } -> max acc (size - s_acked)
            | _ -> acc)
          t.conns 0
      in
      Metrics.set m.m_rep_lag (float_of_int lag)

let safe_send peer msg =
  try
    Transport.send peer.conn msg;
    true
  with Transport.Closed | Unix.Unix_error _ -> false

(* ------------------------------------------------------------------ *)
(* Dispatch *)

let rec dispatch t =
  if not (Queue.is_empty t.queue) then
    match
      let id = Queue.peek t.queue in
      match Hashtbl.find_opt t.jobs id with
      | None -> `Drop
      | Some j when j.j_done || j.j_worker <> None -> `Drop
      | Some j -> (
          match rendezvous t (shard_key t j.j_spec) with
          | None -> `Stall  (* every live worker is at capacity *)
          | Some w -> `Assign (id, j, w))
    with
    | `Drop ->
        ignore (Queue.pop t.queue);
        dispatch t
    | `Stall -> ()
    | `Assign (id, j, w) ->
        ignore (Queue.pop t.queue);
        (* Re-parent the context before shipping: the worker's engine
           parents its spans under the assignment span, so each attempt
           of a rerouted job gets its own subtree. *)
        let assign =
          match j.j_ctx with
          | Some (base, _) when Trace.enabled t.trace ->
              Some (base, Trace_context.child base, Timer.now ())
          | _ -> None
        in
        let spec_out =
          match assign with
          | Some (_, actx, _) -> { j.j_spec with Job.trace = Some actx }
          | None -> j.j_spec
        in
        if
          safe_send w.w_peer (Proto.Submit { spec = spec_out; epoch = t.epoch })
        then begin
          (match assign with
          | Some (base, actx, now) ->
              Trace.span t.trace ~job:id ~ctx:(Trace_context.child base)
                ~name:(if j.j_rerouted then "reroute_wait" else "queue_wait")
                ~dur:(now -. j.j_wait_start)
                [ ("worker", Json.Str w.w_name) ];
              j.j_assign <- Some (actx, now)
          | None -> ());
          j.j_worker <- Some w.w_name;
          Hashtbl.replace w.w_jobs id ();
          journal t (Journal.Assigned { job = id; worker = w.w_name });
          Trace.emit t.trace ~job:id ~kind:"job_assigned"
            [ ("worker", Json.Str w.w_name) ];
          Log.debug (fun m -> m "assigned %s to %s" id w.w_name);
          set_worker_gauges t;
          set_queue_gauge t;
          dispatch t
        end
        else begin
          (* The write failed: the worker is dead. Re-queue and let the
             death path (triggered by EOF or the heartbeat sweep) clean
             the rest up; here we just avoid losing this job. *)
          Queue.push id t.queue;
          dispatch_after_death t w.w_name
        end

and dispatch_after_death t name =
  match Hashtbl.find_opt t.workers name with
  | None -> ()
  | Some w -> worker_dead t w ~reason:"send failed"

and worker_dead t w ~reason =
  Log.warn (fun m ->
      m "worker %s dead (%s); rerouting %d job(s)" w.w_name reason
        (Hashtbl.length w.w_jobs));
  Trace.emit t.trace ~kind:"worker_dead"
    [ ("worker", Json.Str w.w_name); ("reason", Json.Str reason) ];
  Hashtbl.remove t.workers w.w_name;
  Hashtbl.remove t.conns w.w_peer.pid;
  Transport.close w.w_peer.conn;
  let rerouted = ref 0 in
  Hashtbl.iter
    (fun id () ->
      match Hashtbl.find_opt t.jobs id with
      | Some j when not j.j_done ->
          (* Close the dead attempt's assignment span and restart the
             wait clock: the gap until the next dispatch shows up in the
             trace as an explicit "reroute_wait" segment. *)
          (match j.j_assign with
          | Some (actx, t0a) ->
              Trace.span t.trace ~job:id ~ctx:actx ~name:"assign"
                ~dur:(Timer.now () -. t0a)
                [
                  ("worker", Json.Str w.w_name);
                  ("status", Json.Str "rerouted");
                ]
          | None -> ());
          j.j_assign <- None;
          j.j_rerouted <- true;
          j.j_wait_start <- Timer.now ();
          j.j_worker <- None;
          Queue.push id t.queue;
          incr rerouted;
          Trace.emit t.trace ~job:id ~kind:"job_rerouted"
            [ ("from", Json.Str w.w_name) ]
      | _ -> ())
    w.w_jobs;
  (match t.meters with
  | Some m -> Metrics.add m.m_reroutes !rerouted
  | None -> ());
  set_worker_gauges t;
  set_queue_gauge t;
  dispatch t

(* ------------------------------------------------------------------ *)
(* Message handling *)

let send_stored_result t peer ~id json =
  (match t.meters with Some m -> Metrics.inc m.m_resubmits | None -> ());
  Trace.emit t.trace ~job:id ~kind:"job_resubmit_deduped" [];
  match Job.result_of_json json with
  | Ok result -> ignore (safe_send peer (Proto.Result { result }))
  | Error e ->
      ignore
        (safe_send peer
           (Proto.Error_msg
              {
                message =
                  Printf.sprintf
                    "job %s already completed but its journaled result is \
                     unreadable: %s"
                    id e;
              }))

let accept_job t peer (spec : Job.spec) =
  if spec.Job.id = "" then
    ignore
      (safe_send peer
         (Proto.Error_msg { message = "submit: job id must not be empty" }))
  else begin
    if peer.role = Pending then peer.role <- Client_role;
    match Hashtbl.find_opt t.jobs spec.Job.id with
    | Some j when j.j_done -> (
        (* Idempotent resubmission of a finished job: replay the stored
           result instead of re-running — the client paid once. *)
        match Hashtbl.find_opt t.done_results spec.Job.id with
        | Some json -> send_stored_result t peer ~id:spec.Job.id json
        | None ->
            ignore
              (safe_send peer
                 (Proto.Error_msg
                    {
                      message =
                        Printf.sprintf "submit: duplicate job id %S"
                          spec.Job.id;
                    })))
    | Some j ->
        (* The job is already queued or running (a reconnecting client
           resubmitting after failover): re-attach the result route, do
           not double-enqueue. *)
        j.j_client <- Some peer.pid;
        (match t.meters with Some m -> Metrics.inc m.m_resubmits | None -> ());
        Trace.emit t.trace ~job:spec.Job.id ~kind:"job_reattached" []
    | None -> (
        match Hashtbl.find_opt t.done_results spec.Job.id with
        | Some json ->
            (* Finished in an earlier reign; the replayed journal still
               knows the answer. *)
            send_stored_result t peer ~id:spec.Job.id json
        | None ->
            let j_ctx =
              match spec.Job.trace with
              | Some parent -> Some (parent, false)
              | None ->
                  if Trace.enabled t.trace then Some (Trace_context.mint (), true)
                  else None
            in
            let now = Timer.now () in
            let j =
              { j_spec = spec; j_worker = None; j_client = Some peer.pid;
                j_done = false; j_ctx; j_t0 = now; j_wait_start = now;
                j_assign = None; j_rerouted = false }
            in
            Hashtbl.replace t.jobs spec.Job.id j;
            Queue.push spec.Job.id t.queue;
            (match Job.spec_to_json spec with
            | Ok json ->
                journal t (Journal.Submitted { job = spec.Job.id; spec = json })
            | Error _ -> ());
            (match t.meters with Some m -> Metrics.inc m.m_submitted | None -> ());
            Trace.emit t.trace ~job:spec.Job.id ~kind:"job_accepted" [];
            set_queue_gauge t;
            dispatch t)
  end

let accept_result t peer (result : Job.result) =
  let id = result.Job.id in
  match Hashtbl.find_opt t.jobs id with
  | None -> Log.warn (fun m -> m "result for unknown job %s; dropped" id)
  | Some j when j.j_done ->
      Log.debug (fun m -> m "duplicate result for %s; dropped" id)
  | Some j ->
      j.j_done <- true;
      (match peer.role with
      | Worker_role name -> (
          match Hashtbl.find_opt t.workers name with
          | Some w -> Hashtbl.remove w.w_jobs id
          | None -> ())
      | _ -> ());
      let status =
        match result.Job.outcome with
        | Job.Solved _ -> "ok"
        | Job.Decided { accepted; _ } -> if accepted then "ok" else "rejected"
        | Job.Failed _ -> "failed"
        | Job.Cancelled -> "cancelled"
        | Job.Timed_out -> "timeout"
      in
      (* Journal the result body too: after a failover, the promoted
         standby answers an idempotent resubmission of this job from
         the replicated record — the result outlives this process. *)
      let rjson = Job.result_to_json result in
      Hashtbl.replace t.done_results id rjson;
      journal t (Journal.Completed { job = id; status; result = Some rjson });
      (match t.meters with Some m -> Metrics.inc m.m_completed | None -> ());
      Trace.emit t.trace ~job:id ~kind:"job_completed"
        [ ("status", Json.Str status) ];
      (match j.j_assign with
      | Some (actx, t0a) ->
          Trace.span t.trace ~job:id ~ctx:actx ~name:"assign"
            ~dur:(Timer.now () -. t0a)
            (("status", Json.Str status)
            ::
            (match j.j_worker with
            | Some w -> [ ("worker", Json.Str w) ]
            | None -> []))
      | None -> ());
      (* A coordinator-minted context means no client owns the trace:
         emit the enclosing root span here. *)
      (match j.j_ctx with
      | Some (base, true) ->
          Trace.span t.trace ~job:id ~ctx:base ~name:"job"
            ~dur:(Timer.now () -. j.j_t0)
            [ ("status", Json.Str status) ]
      | _ -> ());
      (match Option.bind j.j_client (Hashtbl.find_opt t.conns) with
      | Some client -> ignore (safe_send client (Proto.Result { result }))
      | None -> ());
      set_worker_gauges t;
      dispatch t

let drop_peer t peer ~reason =
  match peer.role with
  | Worker_role name -> (
      match Hashtbl.find_opt t.workers name with
      | Some w -> worker_dead t w ~reason
      | None ->
          Hashtbl.remove t.conns peer.pid;
          Transport.close peer.conn)
  | Standby_role { s_name; _ } ->
      Log.info (fun m -> m "standby %s detached (%s)" s_name reason);
      Trace.emit t.trace ~kind:"standby_detached"
        [ ("standby", Json.Str s_name); ("reason", Json.Str reason) ];
      Hashtbl.remove t.conns peer.pid;
      Transport.close peer.conn;
      set_rep_gauges t
  | Pending | Client_role ->
      (* A gone client orphans its jobs: they still run to completion
         and are journaled, the results just have nowhere to go. *)
      Hashtbl.iter
        (fun _ j -> if j.j_client = Some peer.pid then j.j_client <- None)
        t.jobs;
      Hashtbl.remove t.conns peer.pid;
      Transport.close peer.conn

let handle_msg t peer msg =
  match msg with
  | Proto.Hello { worker; capacity; fence } ->
      if fence > t.epoch then begin
        (* The worker was welcomed by a higher reign: we are a deposed
           primary that does not know it yet. Announce our (stale)
           epoch honestly and register nothing — the worker's fence
           check rejects the Welcome and it moves on to the live
           primary. Assigning work here would be split-brain. *)
        (match t.meters with Some m -> Metrics.inc m.m_deposed | None -> ());
        Log.warn (fun m ->
            m
              "worker %s carries fence epoch %d > our epoch %d: a newer \
               primary exists; refusing to register it"
              worker fence t.epoch);
        Trace.emit t.trace ~kind:"deposed_hello"
          [
            ("worker", Json.Str worker);
            ("fence", Json.Num (float_of_int fence));
            ("epoch", Json.Num (float_of_int t.epoch));
          ];
        ignore
          (safe_send peer
             (Proto.Welcome
                {
                  coordinator = t.cfg.name;
                  heartbeat_every = t.cfg.heartbeat_every;
                  epoch = t.epoch;
                }))
      end
      else if Hashtbl.mem t.workers worker then begin
        ignore
          (safe_send peer
             (Proto.Goodbye
                { reason = Printf.sprintf "worker name %S taken" worker }));
        drop_peer t peer ~reason:"duplicate name"
      end
      else begin
        peer.role <- Worker_role worker;
        let w =
          {
            w_name = worker;
            w_peer = peer;
            w_capacity = capacity;
            w_jobs = Hashtbl.create 8;
            w_last_seen = Unix.gettimeofday ();
            w_missed = 0;
            w_gauge =
              Option.map
                (fun m ->
                  Metrics.gauge m.m_reg
                    ~labels:[ ("worker", worker) ]
                    ~help:"jobs currently assigned to this worker"
                    "psdp_dist_worker_inflight")
                t.meters;
          }
        in
        Hashtbl.replace t.workers worker w;
        Trace.emit t.trace ~kind:"worker_joined"
          [
            ("worker", Json.Str worker);
            ("capacity", Json.Num (float_of_int capacity));
          ];
        Log.info (fun m -> m "worker %s joined (capacity %d)" worker capacity);
        ignore
          (safe_send peer
             (Proto.Welcome
                {
                  coordinator = t.cfg.name;
                  heartbeat_every = t.cfg.heartbeat_every;
                  epoch = t.epoch;
                }));
        set_worker_gauges t;
        dispatch t
      end
  | Proto.Submit { spec; epoch = _ } -> accept_job t peer spec
  | Proto.Result { result } -> accept_result t peer result
  | Proto.Heartbeat { worker; _ } -> (
      match peer.role with
      | Standby_role _ -> ignore (safe_send peer Proto.Heartbeat_ack)
      | _ -> (
          match Hashtbl.find_opt t.workers worker with
          | Some w ->
              w.w_last_seen <- Unix.gettimeofday ();
              w.w_missed <- 0;
              ignore (safe_send w.w_peer Proto.Heartbeat_ack)
          | None ->
              (* A heartbeat from a worker we already declared dead: tell
                 it to go away so it can reconnect fresh. *)
              ignore
                (safe_send peer (Proto.Goodbye { reason = "unknown worker" }))))
  | Proto.Goodbye { reason } -> drop_peer t peer ~reason
  | Proto.Shutdown ->
      Log.info (fun m -> m "shutdown requested");
      t.running <- false
  | Proto.Rep_hello { standby } -> (
      match t.store with
      | None ->
          ignore
            (safe_send peer
               (Proto.Error_msg
                  {
                    message =
                      "replication requires a journaling primary \
                       (--checkpoint-dir)";
                  }));
          drop_peer t peer ~reason:"standby without a store"
      | Some store ->
          peer.role <- Standby_role { s_name = standby; s_acked = 0 };
          Log.info (fun m -> m "standby %s attached; sending snapshot" standby);
          Trace.emit t.trace ~kind:"standby_attached"
            [ ("standby", Json.Str standby) ];
          let data = Store.tail store ~from:0 in
          if
            not
              (safe_send peer (Proto.Rep_snapshot { epoch = t.epoch; data }))
          then drop_peer t peer ~reason:"snapshot send failed"
          else set_rep_gauges t)
  | Proto.Rep_ack { offset } -> (
      match peer.role with
      | Standby_role s ->
          s.s_acked <- max s.s_acked offset;
          set_rep_gauges t
      | _ -> drop_peer t peer ~reason:"unexpected message")
  | Proto.Takeover ->
      (* We are already primary: answer idempotently with our reign so
         an operator's [--takeover] against the wrong address reports
         the live epoch instead of hanging. *)
      ignore
        (safe_send peer
           (Proto.Welcome
              {
                coordinator = t.cfg.name;
                heartbeat_every = t.cfg.heartbeat_every;
                epoch = t.epoch;
              }))
  | Proto.Welcome _ | Proto.Heartbeat_ack | Proto.Error_msg _
  | Proto.Rep_snapshot _ | Proto.Rep_append _ ->
      drop_peer t peer ~reason:"unexpected message"

(* ------------------------------------------------------------------ *)
(* Heartbeat sweep *)

let sweep t =
  let now = Unix.gettimeofday () in
  let dead = ref [] in
  Hashtbl.iter
    (fun _ w ->
      let silent = now -. w.w_last_seen in
      let periods = int_of_float (silent /. t.cfg.heartbeat_every) in
      if periods > w.w_missed then begin
        (match t.meters with
        | Some m -> Metrics.add m.m_hb_misses (periods - w.w_missed)
        | None -> ());
        w.w_missed <- periods
      end;
      if silent > t.cfg.heartbeat_grace then dead := w :: !dead)
    t.workers;
  List.iter (fun w -> worker_dead t w ~reason:"heartbeat timeout") !dead

(* ------------------------------------------------------------------ *)
(* Recovery *)

let recover t =
  match t.store with
  | None -> ()
  | Some store ->
      List.iter
        (fun (job, rjson) -> Hashtbl.replace t.done_results job rjson)
        (Store.completed_results store);
      List.iter
        (fun (p : Store.pending) ->
          match Job.spec_of_json p.Store.spec with
          | Error msg ->
              Log.warn (fun m ->
                  m "recovery: cannot decode spec for %s: %s" p.Store.job msg)
          | Ok spec ->
              let spec =
                if spec.Job.id = "" then { spec with Job.id = p.Store.job }
                else spec
              in
              if not (Hashtbl.mem t.jobs spec.Job.id) then begin
                let now = Timer.now () in
                Hashtbl.replace t.jobs spec.Job.id
                  {
                    j_spec = spec;
                    j_worker = None;
                    j_client = None;
                    j_done = false;
                    j_ctx =
                      (match spec.Job.trace with
                      | Some parent -> Some (parent, false)
                      | None ->
                          if Trace.enabled t.trace then
                            Some (Trace_context.mint (), true)
                          else None);
                    j_t0 = now;
                    j_wait_start = now;
                    j_assign = None;
                    j_rerouted = false;
                  };
                Queue.push spec.Job.id t.queue;
                Trace.emit t.trace ~job:spec.Job.id ~kind:"job_recovered"
                  (match p.Store.assigned with
                  | Some w -> [ ("last_worker", Json.Str w) ]
                  | None -> [])
              end)
        (Store.pending store);
      if not (Queue.is_empty t.queue) then
        Log.info (fun m ->
            m "recovered %d unfinished job(s) from the journal"
              (Queue.length t.queue));
      set_queue_gauge t

(* ------------------------------------------------------------------ *)
(* Main loop *)

let serve ?(config = default_config) ?store ?metrics ?(trace = Trace.null)
    ?on_ready ?(takeover = false) ~lfd ~listen () =
  let meters = Option.map make_meters metrics in
  (* Epoch discipline: the journal's highest [Epoch] record is the last
     reign that owned this WAL. A plain (re)start keeps it — same
     primary, same reign, so a restarted process is *not* mistaken for
     a failover. A promotion (takeover / standby failover) bumps it by
     one and journals the bump, which is exactly what fences the old
     primary out if it ever comes back. First-ever start is reign 1. *)
  let stored = match store with Some s -> Store.epoch s | None -> 0 in
  let epoch = if takeover then stored + 1 else max stored 1 in
  let t =
    {
      cfg = config;
      store;
      meters;
      trace;
      conns = Hashtbl.create 16;
      workers = Hashtbl.create 8;
      jobs = Hashtbl.create 64;
      queue = Queue.create ();
      digests = Hashtbl.create 16;
      done_results = Hashtbl.create 64;
      epoch;
      doomed = [];
      next_pid = 0;
      running = true;
    }
  in
  if epoch > stored then journal t (Journal.Epoch { epoch });
  (match meters with
  | Some m ->
      Metrics.set m.m_epoch (float_of_int epoch);
      if takeover then Metrics.inc m.m_failovers
  | None -> ());
  Trace.emit t.trace ~kind:"coordinator_started"
    [
      ("listen", Json.Str (Transport.addr_to_string listen));
      ("epoch", Json.Num (float_of_int epoch));
      ("takeover", Json.Bool takeover);
    ];
  Log.info (fun m ->
      m "serving %s (epoch %d%s)"
        (Transport.addr_to_string listen)
        epoch
        (if takeover then ", promoted by takeover" else ""));
  recover t;
  (* Replication stream: every fsynced append is forwarded, byte-exact,
     to every attached standby. The callback runs under the store lock
     in the select-loop thread; failed sends only doom the standby (it
     re-syncs from a snapshot when it reconnects). *)
  (match store with
  | Some s ->
      Store.subscribe s (fun ~offset ~data ->
          Hashtbl.iter
            (fun _ p ->
              match p.role with
              | Standby_role _ ->
                  if
                    safe_send p
                      (Proto.Rep_append { epoch = t.epoch; offset; data })
                  then begin
                    match t.meters with
                    | Some m ->
                        Metrics.inc m.m_rep_records;
                        Metrics.add m.m_rep_bytes (String.length data)
                    | None -> ()
                  end
                  else t.doomed <- p.pid :: t.doomed
              | _ -> ())
            t.conns)
  | None -> ());
  (match on_ready with Some f -> f () | None -> ());
  let count_rx n =
    match meters with Some m -> Metrics.add m.m_rx_bytes n | None -> ()
  in
  let count_tx n =
    match meters with Some m -> Metrics.add m.m_tx_bytes n | None -> ()
  in
  while t.running do
    (* Peers doomed inside a store-subscription callback (where dropping
       them would have mutated the table being iterated) die here. *)
    (match t.doomed with
    | [] -> ()
    | pids ->
        t.doomed <- [];
        List.iter
          (fun pid ->
            match Hashtbl.find_opt t.conns pid with
            | Some p -> drop_peer t p ~reason:"replication send failed"
            | None -> ())
          pids);
    let fds =
      lfd
      :: Hashtbl.fold (fun _ p acc -> Transport.fd p.conn :: acc) t.conns []
    in
    let tick = config.heartbeat_every /. 2.0 in
    let readable, _, _ =
      try Unix.select fds [] [] tick
      with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
    in
    List.iter
      (fun fd ->
        if fd = lfd then begin
          match Unix.accept lfd with
          | cfd, _ ->
              Unix.set_nonblock cfd;
              let conn =
                Transport.of_fd ~max_payload:config.max_payload ~count_rx
                  ~count_tx cfd
              in
              let pid = t.next_pid in
              t.next_pid <- pid + 1;
              Hashtbl.replace t.conns pid { pid; conn; role = Pending }
          | exception Unix.Unix_error _ -> ()
        end
        else
          let peer =
            Hashtbl.fold
              (fun _ p acc ->
                if Transport.fd p.conn = fd then Some p else acc)
              t.conns None
          in
          match peer with
          | None -> ()
          | Some peer -> (
              match Transport.fill peer.conn with
              | false -> drop_peer t peer ~reason:"connection closed"
              | true -> (
                  try
                    let continue = ref true in
                    while !continue do
                      match Transport.pop peer.conn with
                      | Some msg ->
                          handle_msg t peer msg;
                          (* the peer may have been dropped *)
                          if not (Hashtbl.mem t.conns peer.pid) then
                            continue := false
                      | None -> continue := false
                    done
                  with Transport.Protocol_failure why ->
                    Log.warn (fun m ->
                        m "protocol failure from peer %d: %s" peer.pid why);
                    Trace.emit t.trace ~kind:"protocol_failure"
                      [ ("why", Json.Str why) ];
                    drop_peer t peer ~reason:("protocol: " ^ why))))
      readable;
    sweep t
  done;
  (* Graceful stop: tell everyone, close everything. A standby receiving
     this Goodbye exits without promoting — an operator shutdown is not
     a primary death. *)
  Hashtbl.iter
    (fun _ p ->
      ignore (safe_send p (Proto.Goodbye { reason = "coordinator stopped" }));
      Transport.close p.conn)
    t.conns;
  (try Unix.close lfd with Unix.Unix_error _ -> ());
  (match listen with
  | Transport.Unix_sock path -> (
      try Sys.remove path with Sys_error _ -> ())
  | Transport.Tcp _ -> ());
  Trace.emit t.trace ~kind:"coordinator_stopped"
    [ ("unfinished", Json.Num (float_of_int (Queue.length t.queue))) ];
  Ok ()

let run ?config ?store ?metrics ?trace ?on_ready ?takeover ~listen () =
  match Transport.listen listen with
  | Error e -> Error e
  | Ok lfd ->
      serve ?config ?store ?metrics ?trace ?on_ready ?takeover ~lfd ~listen ()
