(** Messages of the coordinator/worker/client protocol, and their frame
    codecs.

    Payloads are JSON (the prelude codec) inside {!Frame} envelopes —
    job specs and results travel in exactly the form the engine's own
    codecs journal and report, so a frame captured off the wire can be
    replayed against [psdp batch] unchanged.

    {2 Conversation shape}

    {v
    worker  ──Hello{worker,capacity}──────▶ coordinator
    worker  ◀─Welcome{coordinator,heartbeat_every}── coordinator
    client  ──Submit{spec}────────────────▶ coordinator
    coordinator ──Submit{spec}────────────▶ worker      (sharded)
    worker  ──Result{result}──────────────▶ coordinator
    coordinator ──Result{result}──────────▶ client
    worker  ──Heartbeat{worker,inflight}──▶ coordinator (every heartbeat_every)
    worker  ◀─Heartbeat_ack───────────────  coordinator
    any     ──Goodbye{reason}─────────────▶ peer        (graceful close)
    coordinator ──Error{message}──────────▶ client      (rejected submit)
    client  ──Shutdown────────────────────▶ coordinator (stop the cluster)
    v} *)

open Psdp_engine

type msg =
  | Hello of { worker : string; capacity : int }
  | Welcome of { coordinator : string; heartbeat_every : float }
  | Submit of { spec : Job.spec }
  | Result of { result : Job.result }
  | Heartbeat of { worker : string; inflight : int }
  | Heartbeat_ack
  | Goodbye of { reason : string }
  | Error_msg of { message : string }
  | Shutdown

val tag : msg -> int
val describe : msg -> string
(** One-word message name plus its key field, for logs. *)

val encode : msg -> string
(** Render a message as one complete wire frame. Raises
    [Invalid_argument] for a [Submit] whose spec has an [Inline] source
    (those have no JSON form; callers persist them to a file first). *)

val decode : tag:int -> string -> (msg, string) result
(** Decode a frame's payload. Unknown tags and malformed payloads are
    [Error] — the transport layer turns them into a typed protocol
    failure and drops the connection. *)
