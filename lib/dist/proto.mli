(** Messages of the coordinator/worker/client protocol, and their frame
    codecs.

    Payloads are JSON (the prelude codec) inside {!Frame} envelopes —
    job specs and results travel in exactly the form the engine's own
    codecs journal and report, so a frame captured off the wire can be
    replayed against [psdp batch] unchanged.

    {2 Conversation shape}

    {v
    worker  ──Hello{worker,capacity,fence}─▶ coordinator
    worker  ◀─Welcome{coordinator,heartbeat_every,epoch}── coordinator
    client  ──Submit{spec}────────────────▶ coordinator
    coordinator ──Submit{spec,epoch}──────▶ worker      (sharded)
    worker  ──Result{result}──────────────▶ coordinator
    coordinator ──Result{result}──────────▶ client
    worker  ──Heartbeat{worker,inflight}──▶ coordinator (every heartbeat_every)
    worker  ◀─Heartbeat_ack───────────────  coordinator
    any     ──Goodbye{reason}─────────────▶ peer        (graceful close)
    coordinator ──Error{message}──────────▶ client      (rejected submit)
    client  ──Shutdown────────────────────▶ coordinator (stop the cluster)
    v}

    {2 Replication (standby tails the primary's WAL)}

    {v
    standby ──Rep_hello{standby}──────────▶ primary
    standby ◀─Rep_snapshot{epoch,data}────  primary     (whole journal)
    standby ◀─Rep_append{epoch,offset,data} primary     (per fsynced append)
    standby ──Rep_ack{offset}─────────────▶ primary     (lag accounting)
    standby ──Heartbeat / ◀─Heartbeat_ack─  primary     (liveness)
    operator ──Takeover───────────────────▶ standby     (forced promote)
    v}

    Journal bytes inside [Rep_snapshot]/[Rep_append] travel hex-encoded
    in the JSON payload, so the replica journal is byte-identical to the
    primary's whatever bytes the journal holds.

    {2 Fencing}

    [fence] in [Hello] is the highest coordinator epoch the worker has
    ever been welcomed under; [epoch] in [Welcome] and worker-bound
    [Submit] is the sending coordinator's reign. A worker rejects any
    coordinator frame whose epoch is below its fence — that is what
    locks a resurrected deposed primary out after a failover. All three
    fields default to 0 (unfenced) when absent, so pre-HA peers
    interoperate. Client-originated [Submit] frames carry epoch 0. *)

open Psdp_engine

type msg =
  | Hello of { worker : string; capacity : int; fence : int }
  | Welcome of { coordinator : string; heartbeat_every : float; epoch : int }
  | Submit of { spec : Job.spec; epoch : int }
  | Result of { result : Job.result }
  | Heartbeat of { worker : string; inflight : int }
  | Heartbeat_ack
  | Goodbye of { reason : string }
  | Error_msg of { message : string }
  | Shutdown
  | Rep_hello of { standby : string }
      (** a standby announces itself; the primary answers with a full
          [Rep_snapshot] and then streams [Rep_append]s *)
  | Rep_snapshot of { epoch : int; data : string }
      (** initial catch-up: the primary's entire journal, byte-exact,
          plus its current fencing epoch *)
  | Rep_append of { epoch : int; offset : int; data : string }
      (** one fsynced journal append: [data] starts at byte [offset] of
          the journal. A standby whose replica is not exactly [offset]
          bytes long re-syncs from a fresh snapshot. *)
  | Rep_ack of { offset : int }
      (** standby → primary: replica length after applying an append;
          feeds the primary's replication-lag gauges *)
  | Takeover
      (** operator order to a standby: stop tailing, bump the epoch and
          serve (also accepted, idempotently, by a running primary) *)

val tag : msg -> int
val describe : msg -> string
(** One-word message name plus its key field, for logs. *)

val encode : msg -> string
(** Render a message as one complete wire frame. Raises
    [Invalid_argument] for a [Submit] whose spec has an [Inline] source
    (those have no JSON form; callers persist them to a file first). *)

val decode : tag:int -> string -> (msg, string) result
(** Decode a frame's payload. Unknown tags and malformed payloads are
    [Error] — the transport layer turns them into a typed protocol
    failure and drops the connection. *)

val hex_encode : string -> string
val hex_decode : string -> string option
(** The byte codec replication payloads use; exposed for the QA
    properties. *)
