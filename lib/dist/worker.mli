(** A distributed worker: one process wrapping one supervised
    {!Psdp_engine.Engine} behind the wire protocol.

    The worker connects out to the coordinator, announces itself
    ([Hello] with its name and capacity), and then loops: [Submit]
    frames become {!Psdp_engine.Engine.submit} calls, and the engine's
    [on_complete] hook ships each finished result back as a [Result]
    frame (runner domains write concurrently; the transport's write
    mutex serializes them). Every retry/backoff/quarantine/breaker
    semantic of the single-process engine applies unchanged per node —
    the worker adds only the wire.

    Every pass through the main loop (each received message and each
    heartbeat tick) evaluates the ["dist.worker.tick"] failpoint, so
    chaos runs can kill a worker mid-stream with
    [--failpoint dist.worker.tick=crash\@nth:N]: the injected crash
    escapes {!run} (it is deliberately {e not} caught), unwinds main,
    and takes the whole process down — a real death, which the
    coordinator detects by heartbeat silence and reroutes around. *)

open Psdp_engine

val run :
  ?metrics:Psdp_obs.Metrics.t ->
  ?max_payload:int ->
  connect:Transport.addr ->
  name:string ->
  capacity:int ->
  make_engine:(on_complete:(Job.result -> unit) -> Engine.t) ->
  unit ->
  (unit, string) result
(** Connect, register, and serve until the coordinator says [Goodbye]
    / [Shutdown] or the connection drops; then drain the engine
    ({!Engine.shutdown} finishes everything already accepted, shipping
    those results if the connection still stands) and return.
    [make_engine] must wire the given [on_complete] into the engine it
    builds — the worker owns the engine and shuts it down.
    [capacity] is advertised to the coordinator as the assignment
    limit; sensible values match the engine's [max_in_flight] (the
    coordinator stops assigning above it, keeping queueing central
    where rerouting can reach it). With [metrics], the worker registers
    [psdp_dist_frame_bytes_total{dir}] for its connection alongside
    whatever the engine itself feeds. Failpoint crashes escape. *)
