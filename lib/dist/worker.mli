(** A distributed worker: one process wrapping one supervised
    {!Psdp_engine.Engine} behind the wire protocol, self-healing across
    coordinator failovers.

    The worker connects out to the first reachable coordinator in an
    ordered address list, announces itself ([Hello] with its name,
    capacity, and fencing epoch), and then loops: [Submit] frames
    become {!Psdp_engine.Engine.submit} calls, and the engine's
    [on_complete] hook enqueues each finished result into an outbox the
    session loop delivers as [Result] frames. Every
    retry/backoff/quarantine/breaker semantic of the single-process
    engine applies unchanged per node — the worker adds only the wire.

    {2 Self-healing}

    When the link dies (coordinator crash, failover, network blip) the
    worker keeps the engine running, cycles the address list, and
    re-registers with whoever answers — sleeping a decorrelated-jitter
    backoff between full unreachable cycles. Undelivered results stay
    in the outbox and ship on the next link; a re-assigned job the
    worker already solved is answered from its recent-results table,
    not recomputed. The worker tracks a {e fence}: the highest epoch it
    was ever welcomed under. A [Welcome] or [Submit] carrying a lower
    epoch is from a deposed primary — the worker emits a
    ["fence_rejected"] trace event, sends [Goodbye], and drops the
    connection. Post-handshake [Goodbye "coordinator stopped"] (or
    [Shutdown]) ends the worker for good; any other dismissal (e.g.
    ["unknown worker"] after a partition) triggers a fresh reconnect. A
    handshake [Goodbye] whose reason starts with ["standby"] means
    "not serving here, try the next address"; other handshake refusals
    (name taken) are final.

    Every pass through the session loop (each received message and each
    heartbeat tick) evaluates the ["dist.worker.tick"] failpoint, so
    chaos runs can kill a worker mid-stream with
    [--failpoint dist.worker.tick=crash\@nth:N]: the injected crash
    escapes {!run} (it is deliberately {e not} caught), unwinds main,
    and takes the whole process down — a real death, which the
    coordinator detects by heartbeat silence and reroutes around. *)

open Psdp_engine

val run :
  ?metrics:Psdp_obs.Metrics.t ->
  ?max_payload:int ->
  ?trace:Trace.sink ->
  ?retry:Psdp_fault.Retry.policy ->
  connect:Transport.addr list ->
  name:string ->
  capacity:int ->
  make_engine:(on_complete:(Job.result -> unit) -> Engine.t) ->
  unit ->
  (unit, string) result
(** Connect (first reachable address wins), register, and serve until
    orderly dismissal or the connection drops — reconnecting and
    re-registering on drops as described above; then drain the engine
    ({!Engine.shutdown} finishes everything already accepted) and
    return. [connect] must be non-empty ([Invalid_argument]
    otherwise); list a primary and its standbys in preference order.
    [retry] shapes the between-cycle backoff ([max_attempts] bounds
    {e consecutive cycles with no successful registration}; once
    registered, the worker retries forever). [make_engine] must wire
    the given [on_complete] into the engine it builds — the worker owns
    the engine and shuts it down. [capacity] is advertised to the
    coordinator as the assignment limit; sensible values match the
    engine's [max_in_flight]. With [metrics], the worker registers
    [psdp_dist_frame_bytes_total{dir}],
    [psdp_ha_worker_reconnects_total], and
    [psdp_ha_fence_rejections_total]. [trace] receives
    ["worker_registered"], ["fence_rejected"], ["result_replayed"],
    and ["worker_reconnect_backoff"] events. Failpoint crashes
    escape. *)
