open Psdp_prelude
open Psdp_engine
module Trace_context = Psdp_obs.Trace_context
module Retry = Psdp_fault.Retry

type failure =
  | Unreachable of string
  | Refused of string
  | Timed_out of string

let failure_to_string = function
  | Unreachable m -> "unreachable: " ^ m
  | Refused m -> m
  | Timed_out m -> m

let default_retry = Retry.make ~base:0.05 ~cap:1.0 ~max_attempts:30 ()

type t = {
  addrs : Transport.addr list;
  retry : Retry.policy;
  max_payload : int option;
  trace : Trace.sink;
  rng : Rng.t;
  mutable conn : Transport.conn option;
  (* job id -> spec as shipped: everything submitted whose result has
     not landed yet, replayed verbatim after every reconnect (the job
     id is the idempotency nonce — the coordinator dedupes). *)
  outstanding : (string, Job.spec) Hashtbl.t;
  received : (string, unit) Hashtbl.t;
  (* job id -> (request span context, submit stamp); closed on result *)
  inflight : (string, Trace_context.t * float) Hashtbl.t;
}

let mark_down t =
  match t.conn with
  | None -> ()
  | Some c ->
      Transport.close c;
      t.conn <- None

(* Dial the address list in order until someone accepts, sleeping a
   decorrelated-jitter backoff between full unreachable cycles, then
   replay every outstanding submission over the fresh link. *)
let ensure_link t =
  match t.conn with
  | Some c -> Ok c
  | None ->
      let failures = ref 0 in
      let prev = ref 0.0 in
      let result = ref None in
      while !result = None do
        let conn =
          List.find_map
            (fun addr ->
              match
                Transport.connect ?max_payload:t.max_payload addr
              with
              | Ok c -> Some c
              | Error _ -> None)
            t.addrs
        in
        (match conn with
        | Some conn -> (
            match
              Hashtbl.iter
                (fun _ spec ->
                  Transport.send conn (Proto.Submit { spec; epoch = 0 }))
                t.outstanding
            with
            | () ->
                t.conn <- Some conn;
                if Hashtbl.length t.outstanding > 0 then
                  Trace.emit t.trace ~kind:"client_resubmitted"
                    [
                      ( "jobs",
                        Json.Num
                          (float_of_int (Hashtbl.length t.outstanding)) );
                    ];
                result := Some (Ok conn)
            | exception (Transport.Closed | Unix.Unix_error _) ->
                Transport.close conn)
        | None -> ());
        if !result = None then begin
          incr failures;
          if !failures >= t.retry.Retry.max_attempts then
            result :=
              Some
                (Error
                   (Unreachable
                      (Printf.sprintf
                         "no coordinator reachable after %d attempt \
                          cycle(s) over %d address(es)"
                         !failures (List.length t.addrs))))
          else begin
            let delay = Retry.backoff t.retry ~rng:t.rng ~prev:!prev in
            prev := delay;
            Unix.sleepf delay
          end
        end
      done;
      match !result with
      | Some r -> r
      | None -> Error (Unreachable "unreachable")

let connect ?max_payload ?(trace = Trace.null) ?(retry = default_retry) addrs =
  (match addrs with
  | [] -> invalid_arg "Client.connect: empty coordinator address list"
  | _ -> ());
  let t =
    {
      addrs;
      retry;
      max_payload;
      trace;
      rng = Rng.create (Hashtbl.hash ("client", Unix.getpid ()));
      conn = None;
      outstanding = Hashtbl.create 16;
      received = Hashtbl.create 16;
      inflight = Hashtbl.create 16;
    }
  in
  match ensure_link t with Ok _ -> Ok t | Error f -> Error f

let submit t (spec : Job.spec) =
  if spec.Job.id = "" then Error (Refused "submit: spec needs a non-empty id")
  else
    match spec.Job.source with
    | Job.Inline _ ->
        Error (Refused "submit: inline instances cannot travel the wire")
    | Job.File _ -> (
        (* The client owns the trace root: each submission opens a
           "request" span whose context travels in the spec, so the
           coordinator's and worker's spans assemble under it. *)
        let spec =
          if Trace.enabled t.trace then begin
            let base =
              match spec.Job.trace with
              | Some c -> c
              | None -> Trace_context.mint ()
            in
            Hashtbl.replace t.inflight spec.Job.id (base, Timer.now ());
            { spec with Job.trace = Some base }
          end
          else spec
        in
        Hashtbl.replace t.outstanding spec.Job.id spec;
        match ensure_link t with
        | Error f -> Error f
        | Ok conn -> (
            try
              Transport.send conn (Proto.Submit { spec; epoch = 0 });
              Ok ()
            with Transport.Closed | Unix.Unix_error _ -> (
              (* The link died under us: reconnect; the fresh link's
                 outstanding replay carries this spec too. *)
              mark_down t;
              match ensure_link t with
              | Ok _ -> Ok ()
              | Error f -> Error f)))

let record_result t (result : Job.result) =
  let id = result.Job.id in
  match Hashtbl.find_opt t.inflight id with
  | None -> ()
  | Some (ctx, t0) ->
      Hashtbl.remove t.inflight id;
      let status =
        match result.Job.outcome with
        | Job.Solved _ -> "ok"
        | Job.Decided { accepted; _ } -> if accepted then "ok" else "rejected"
        | Job.Failed _ -> "failed"
        | Job.Cancelled -> "cancelled"
        | Job.Timed_out -> "timeout"
      in
      Trace.span t.trace ~job:id ~ctx ~name:"request"
        ~dur:(Timer.now () -. t0)
        [ ("status", Json.Str status) ]

let collect ?timeout t ~expected =
  let deadline = Option.map (fun s -> Unix.gettimeofday () +. s) timeout in
  let results = ref [] in
  let count = ref 0 in
  let err = ref None in
  (try
     while !err = None && !count < expected do
       match ensure_link t with
       | Error f -> err := Some f
       | Ok conn -> (
           match Transport.pop conn with
           | Some (Proto.Result { result }) ->
               (* Reconnect replays can produce duplicate deliveries;
                  the first one wins, the rest are dropped here. *)
               if not (Hashtbl.mem t.received result.Job.id) then begin
                 Hashtbl.replace t.received result.Job.id ();
                 Hashtbl.remove t.outstanding result.Job.id;
                 record_result t result;
                 results := result :: !results;
                 incr count
               end
           | Some (Proto.Error_msg { message }) -> err := Some (Refused message)
           | Some (Proto.Goodbye { reason }) ->
               (* A standby telling us where to go, a deposed primary
                  fencing itself off, a dying coordinator: all the
                  same cure — drop the link and let [ensure_link]
                  find whoever now reigns. *)
               Trace.emit t.trace ~kind:"client_redirected"
                 [ ("reason", Json.Str reason) ];
               mark_down t
           | Some _ -> ()
           | None -> (
               let wait =
                 match deadline with
                 | None -> 60.0
                 | Some d ->
                     let left = d -. Unix.gettimeofday () in
                     if left <= 0.0 then raise Exit else left
               in
               let readable, _, _ =
                 try Unix.select [ Transport.fd conn ] [] [] wait
                 with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
               in
               (if readable <> [] then
                  match Transport.fill conn with
                  | true -> ()
                  | false -> mark_down t
                  | exception Transport.Protocol_failure _ -> mark_down t);
               match deadline with
               | Some d when Unix.gettimeofday () >= d && !count < expected ->
                   raise Exit
               | _ -> ())
           | exception Transport.Protocol_failure _ -> mark_down t)
     done
   with Exit ->
     err :=
       Some
         (Timed_out
            (Printf.sprintf "timed out with %d of %d results" !count expected)));
  match !err with None -> Ok (List.rev !results) | Some e -> Error e

let shutdown_cluster t =
  match ensure_link t with
  | Error _ -> ()
  | Ok conn -> (
      try Transport.send conn Proto.Shutdown
      with Transport.Closed | Unix.Unix_error _ -> ())

let close t = mark_down t
