open Psdp_engine

type t = { conn : Transport.conn }

let connect ?max_payload addr =
  Result.map (fun conn -> { conn }) (Transport.connect ?max_payload addr)

let submit t (spec : Job.spec) =
  if spec.Job.id = "" then Error "submit: spec needs a non-empty id"
  else
    match spec.Job.source with
    | Job.Inline _ -> Error "submit: inline instances cannot travel the wire"
    | Job.File _ -> (
        try
          Transport.send t.conn (Proto.Submit { spec });
          Ok ()
        with Transport.Closed | Unix.Unix_error _ ->
          Error "submit: connection to coordinator lost")

let collect ?timeout t ~expected =
  let deadline = Option.map (fun s -> Unix.gettimeofday () +. s) timeout in
  let results = ref [] in
  let err = ref None in
  (try
     while !err = None && List.length !results < expected do
       match Transport.pop t.conn with
       | Some (Proto.Result { result }) -> results := result :: !results
       | Some (Proto.Error_msg { message }) -> err := Some message
       | Some (Proto.Goodbye { reason }) ->
           err := Some ("coordinator said goodbye: " ^ reason)
       | Some _ -> ()
       | None ->
           let wait =
             match deadline with
             | None -> 60.0
             | Some d ->
                 let left = d -. Unix.gettimeofday () in
                 if left <= 0.0 then raise Exit else left
           in
           let readable, _, _ =
             try Unix.select [ Transport.fd t.conn ] [] [] wait
             with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
           in
           if readable <> [] && not (Transport.fill t.conn) then
             err := Some "connection to coordinator lost"
     done
   with
  | Exit ->
      err :=
        Some
          (Printf.sprintf "timed out with %d of %d results"
             (List.length !results) expected)
  | Transport.Protocol_failure why -> err := Some ("protocol failure: " ^ why));
  match !err with None -> Ok (List.rev !results) | Some e -> Error e

let shutdown_cluster t =
  try Transport.send t.conn Proto.Shutdown
  with Transport.Closed | Unix.Unix_error _ -> ()

let close t = Transport.close t.conn
