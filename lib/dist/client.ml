open Psdp_prelude
open Psdp_engine
module Trace_context = Psdp_obs.Trace_context

type t = {
  conn : Transport.conn;
  trace : Trace.sink;
  (* job id -> (request span context, submit stamp); closed on result *)
  inflight : (string, Trace_context.t * float) Hashtbl.t;
}

let connect ?max_payload ?(trace = Trace.null) addr =
  Result.map
    (fun conn -> { conn; trace; inflight = Hashtbl.create 16 })
    (Transport.connect ?max_payload addr)

let submit t (spec : Job.spec) =
  if spec.Job.id = "" then Error "submit: spec needs a non-empty id"
  else
    match spec.Job.source with
    | Job.Inline _ -> Error "submit: inline instances cannot travel the wire"
    | Job.File _ -> (
        (* The client owns the trace root: each submission opens a
           "request" span whose context travels in the spec, so the
           coordinator's and worker's spans assemble under it. *)
        let spec =
          if Trace.enabled t.trace then begin
            let base =
              match spec.Job.trace with
              | Some c -> c
              | None -> Trace_context.mint ()
            in
            Hashtbl.replace t.inflight spec.Job.id (base, Timer.now ());
            { spec with Job.trace = Some base }
          end
          else spec
        in
        try
          Transport.send t.conn (Proto.Submit { spec });
          Ok ()
        with Transport.Closed | Unix.Unix_error _ ->
          Error "submit: connection to coordinator lost")

let record_result t (result : Job.result) =
  let id = result.Job.id in
  match Hashtbl.find_opt t.inflight id with
  | None -> ()
  | Some (ctx, t0) ->
      Hashtbl.remove t.inflight id;
      let status =
        match result.Job.outcome with
        | Job.Solved _ -> "ok"
        | Job.Decided { accepted; _ } -> if accepted then "ok" else "rejected"
        | Job.Failed _ -> "failed"
        | Job.Cancelled -> "cancelled"
        | Job.Timed_out -> "timeout"
      in
      Trace.span t.trace ~job:id ~ctx ~name:"request"
        ~dur:(Timer.now () -. t0)
        [ ("status", Json.Str status) ]

let collect ?timeout t ~expected =
  let deadline = Option.map (fun s -> Unix.gettimeofday () +. s) timeout in
  let results = ref [] in
  let err = ref None in
  (try
     while !err = None && List.length !results < expected do
       match Transport.pop t.conn with
       | Some (Proto.Result { result }) ->
           record_result t result;
           results := result :: !results
       | Some (Proto.Error_msg { message }) -> err := Some message
       | Some (Proto.Goodbye { reason }) ->
           err := Some ("coordinator said goodbye: " ^ reason)
       | Some _ -> ()
       | None ->
           let wait =
             match deadline with
             | None -> 60.0
             | Some d ->
                 let left = d -. Unix.gettimeofday () in
                 if left <= 0.0 then raise Exit else left
           in
           let readable, _, _ =
             try Unix.select [ Transport.fd t.conn ] [] [] wait
             with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
           in
           if readable <> [] && not (Transport.fill t.conn) then
             err := Some "connection to coordinator lost"
     done
   with
  | Exit ->
      err :=
        Some
          (Printf.sprintf "timed out with %d of %d results"
             (List.length !results) expected)
  | Transport.Protocol_failure why -> err := Some ("protocol failure: " ^ why));
  match !err with None -> Ok (List.rev !results) | Some e -> Error e

let shutdown_cluster t =
  try Transport.send t.conn Proto.Shutdown
  with Transport.Closed | Unix.Unix_error _ -> ()

let close t = Transport.close t.conn
