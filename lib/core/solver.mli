(** [approxPSDP] — the optimization layer (Main Theorem 1.1, via the
    Lemma-2.2 reduction).

    The packing optimum [OPT = max{1ᵀx : Σᵢ xᵢAᵢ ≼ I, x >= 0}] is
    bracketed by single-coordinate solutions and trace bounds, then
    refined by multiplicative bisection: at threshold [v], a decision call
    on the rescaled instance [{v·Aᵢ}] returns either a dual certificate
    (re-verified, raising the lower bound and the incumbent) or a primal
    certificate (capping [OPT <= v/min_dot]). The trace clamp of
    Lemma 2.2 drops constraints whose rescaled trace exceeds [n³] — their
    total dual mass is at most [1/n]. *)

open Psdp_linalg

type packing_result = {
  x : float array;  (** incumbent feasible dual solution (verified) *)
  value : float;  (** [‖x‖₁] — certified lower bound on OPT *)
  upper_bound : float;  (** certified upper bound on OPT *)
  primal_dots : float array option;
      (** [Aᵢ•Z] of the scaled covering witness behind [upper_bound] *)
  primal_z : Mat.t option;
      (** materialized covering witness [Z] ([Tr Z = upper_bound],
          [Aᵢ•Z >= 1 − tol]); present when the backend is exact *)
  decision_calls : int;
  total_iterations : int;  (** decision iterations summed over all calls *)
  dropped_constraints : int;  (** Lemma-2.2 trace clamp casualties *)
}

type warm_start = {
  upper : float option;
      (** trusted upper bound on OPT. Must come from a certified solve of
          the {e same} instance (e.g. the batch engine's result cache); it
          tightens the bracket before bisection starts. *)
  x0 : float array option;
      (** candidate dual solution. Re-verified with
          {!Certificate.rescale_dual} before adoption, so a stale or wrong
          vector can only cost the verification, never soundness. *)
}

val cold : warm_start
(** [{upper = None; x0 = None}] — the default. *)

type bisection_state = {
  lo : float;  (** certified lower end of the bracket *)
  hi : float;  (** certified upper end of the bracket *)
  incumbent : float array;  (** best verified dual so far *)
  incumbent_value : float;
  calls_done : int;
  iterations_done : int;
  dropped : int;
}
(** Everything the bisection loop needs to continue after an
    interruption. Handed to [checkpoint] after every decision call (the
    [incumbent] array is a fresh copy, safe to retain) and accepted back
    through [resume]. *)

val solve_packing :
  ?pool:Psdp_parallel.Pool.t ->
  ?backend:Decision.backend ->
  ?mode:Decision.mode ->
  ?max_calls:int ->
  ?warm:warm_start ->
  ?resume:bisection_state ->
  ?checkpoint:(bisection_state -> unit) ->
  ?prof:Psdp_obs.Profiler.span ->
  ?on_iter:(Decision.iter_stats -> unit) ->
  ?on_call:(call:int -> threshold:float -> unit) ->
  eps:float ->
  Instance.t ->
  packing_result
(** [(1+ε)]-approximation: on return (absent [max_calls] exhaustion)
    [value <= OPT <= upper_bound] with [upper_bound <= (1+ε)·value] up to
    the verification tolerance. Defaults follow {!Decision.solve}.

    [warm] (default {!cold}) seeds the bisection bracket from a previous
    solve: a coarse-ε result warm-starting a fine-ε solve of the same
    instance skips the decision calls that would re-derive the coarse
    bracket, and a {e verified} warm incumbent additionally redirects the
    first two probes from the geometric midpoint [sqrt(lo·hi)] to the
    creeping [lo·sqrt(1+ε)] — under the lineage hypothesis (the incumbent
    is near OPT, e.g. it came from a certified solve of a slightly
    drifted ancestor instance) a creep probe's covering certificate
    collapses the bracket and the solve ends within a call or two, while
    a wrong hypothesis costs two cheap dual-side calls (each of which
    still advances [lo]) before geometric bisection resumes.
    [on_call] observes every bisection step (decision call number
    and threshold); [on_iter] observes every solver iteration inside every
    decision call — both are used by the batch engine's telemetry.

    [checkpoint] fires after every completed decision call with the
    current {!bisection_state}; the checkpoint subsystem serializes it.
    [resume] continues an interrupted solve: the saved incumbent is
    re-verified before adoption (like [warm.x0]), the saved [hi] is
    trusted like [warm.upper] — the caller must have validated the
    snapshot's provenance (instance digest, checksum) first. Progress
    counters continue from the saved values; the call budget applies to
    the calls made in {e this} invocation only.

    [prof] (default {!Psdp_obs.Profiler.disabled}) charges every
    bisection step to a ["decision_call"] child span, under which
    {!Decision.solve} charges iterations and kernels — the full span
    taxonomy is [solve → decision_call → iteration →
    {expm, sketch, gram, select, cert}]. *)

type covering_result = {
  z : Mat.t;  (** feasible covering solution: [Aᵢ•Z >= 1 − tol], [Z ≽ 0] *)
  objective : float;  (** [Tr Z] — a certified upper bound on the
                          covering optimum = packing optimum *)
  lower_bound : float;  (** matching verified packing value (weak duality) *)
  packing : packing_result;
}

val solve_covering :
  ?pool:Psdp_parallel.Pool.t ->
  ?backend:Decision.backend ->
  ?mode:Decision.mode ->
  ?max_calls:int ->
  eps:float ->
  Instance.t ->
  covering_result
(** The primal side of Figure 2: [min Tr Y] s.t. [Aᵢ•Y >= 1]. Runs
    {!solve_packing} and returns the covering witness behind the upper
    bound; when the bisection never needed a primal step (the a-priori
    bracket was already tight) the witness falls back to the scaled
    identity [Z = I/minᵢTr Aᵢ], which is always feasible. Requires the
    exact backend (the witness must be materialized). *)

type general_result = {
  packing : packing_result;  (** result on the normalized instance *)
  y : Mat.t option;  (** covering solution of the original program *)
  objective_value : float option;  (** [C•Y] *)
  dual : float array;  (** dual of the original: [Σᵢ bᵢ·dualᵢ <= OPT] *)
  dual_value : float;
}

val solve_general :
  ?pool:Psdp_parallel.Pool.t ->
  ?backend:Decision.backend ->
  ?mode:Decision.mode ->
  ?max_calls:int ->
  eps:float ->
  Instance.general ->
  general_result
(** Full pipeline on the primal form (1.1): normalize (Appendix A), solve,
    de-normalize both solutions. *)
