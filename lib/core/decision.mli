(** [decisionPSDP] — Algorithm 3.1, the width-independent parallel solver
    for the ε-decision problem (Theorem 3.1).

    Given a normalized packing instance, either find a dual [x >= 0] with
    [‖x‖₁ >= 1 − ε] and [Σᵢ xᵢAᵢ ≼ I], or a primal [Y ≽ 0] with
    [Tr Y = 1] and [Aᵢ•Y >= 1] for all [i] (up to the numerical
    tolerances discussed in DESIGN.md). The iteration count is
    [O(ε⁻³ log² n)], independent of the width [maxᵢ λmax(Aᵢ)].

    Two backends compute the per-iteration primitive
    [(exp(Ψ)•Aᵢ)ᵢ, Tr exp(Ψ)]:
    - {!Exact}: dense eigendecomposition — O(m³ + n·m²) per iteration,
      exact; the reference.
    - {!Sketched}: Theorem 4.1 — truncated-Taylor polynomial plus a fresh
      JL sketch per iteration; near-linear work in the factorization size.

    Two modes:
    - {!Faithful} runs the pseudocode with the paper's constants to the
      paper's exit conditions.
    - {!Adaptive} additionally verifies a primal/dual certificate every
      [check_every] iterations and exits early as soon as one verifies —
      sound (certificates are checked against the instance) and orders of
      magnitude faster in practice. *)

open Psdp_linalg

type backend = Evaluator.backend =
  | Exact
  | Sketched of {
      seed : int;  (** RNG seed for the per-iteration sketches *)
      sketch_dim : int option;
          (** rows of the JL sketch; default {!Psdp_sketch.Jl.recommended_dim} *)
    }

type mode = Faithful | Adaptive of { check_every : int }

type iter_stats = {
  t : int;  (** iteration number, 1-based *)
  l1 : float;  (** [‖x⁽ᵗ⁾‖₁] after the update *)
  trace_w : float;  (** [Tr W⁽ᵗ⁾] *)
  updated : int;  (** [|B⁽ᵗ⁾|] *)
  degree : int;  (** polynomial degree used (0 for the exact backend) *)
}

type primal_solution = {
  dots : float array;  (** [Aᵢ•Y] (exact or sketched estimates) *)
  y : Mat.t option;  (** materialized [Y] (exact backend only) *)
}

type dual_solution = {
  x : float array;  (** scaled dual solution (the paper's [x̂]) *)
  raw : float array;  (** unscaled final iterate [x⁽ᵀ⁾] *)
}

type outcome = Primal of primal_solution | Dual of dual_solution

type result = {
  outcome : outcome;
  iterations : int;
  params : Params.t;
}

val solve :
  ?pool:Psdp_parallel.Pool.t ->
  ?backend:backend ->
  ?mode:mode ->
  ?prof:Psdp_obs.Profiler.span ->
  ?on_iter:(iter_stats -> unit) ->
  eps:float ->
  Instance.t ->
  result
(** Defaults: [backend = Exact], [mode = Adaptive {check_every = 10}].
    [eps] must lie in (0, 1); it is the decision problem's ε (callers
    wanting the paper's end-to-end guarantee pass [ε/10], cf. the proof of
    Theorem 3.1). [on_iter] observes every iteration (used by the
    invariant bench and the traces in EXPERIMENTS.md).

    [prof] (default {!Psdp_obs.Profiler.disabled} — free) charges each
    iteration to an ["iteration"] child span, with the evaluator's
    kernels ([expm]/[sketch]/[gram]), the weight-update ([select]) and
    the adaptive certificate checks ([cert]) as grandchildren. *)

val initial_point : Instance.t -> float array
(** [x⁽⁰⁾ᵢ = 1/(n·Tr Aᵢ)] — exposed for the invariant tests
    (Claim 3.3: [Σᵢ x⁽⁰⁾ᵢAᵢ ≼ I]). *)
