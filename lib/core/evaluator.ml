open Psdp_prelude
open Psdp_linalg
open Psdp_sparse
module Profiler = Psdp_obs.Profiler

type backend = Exact | Sketched of { seed : int; sketch_dim : int option }

type evaluation = {
  dots : float array;
  trace_w : float;
  degree : int;
  w : Mat.t option;
}

type t = ?span:Profiler.span -> float array -> evaluation

(* Fault-injection sites for the QA differential oracles: when armed,
   the named point sees the first gradient dot product as a data payload
   and may corrupt it, silently breaking exactly one backend. Unarmed
   cost is one atomic load. *)
let tamper_dots point dots =
  if Array.length dots > 0 && Psdp_fault.Failpoint.is_armed point then begin
    let raw = Printf.sprintf "%.17g" dots.(0) in
    let seen = Psdp_fault.Failpoint.with_data point raw in
    if not (String.equal seen raw) then
      dots.(0) <-
        (match float_of_string_opt seen with
        (* A byte flip can yield an unparseable literal; perturb
           deterministically so the corruption never goes unnoticed. *)
        | Some v when Float.is_finite v -> v
        | Some _ | None -> (-1.0) -. dots.(0))
  end;
  dots

let exact inst =
  let mats = Instance.dense_mats inst in
  let m = Instance.dim inst in
  fun ?(span = Profiler.disabled) x ->
    let psi = Mat.create m m in
    Profiler.with_span span "gram" (fun () ->
        Array.iteri
          (fun i a -> if x.(i) <> 0.0 then Mat.axpy psi ~alpha:x.(i) a)
          mats);
    let w = Profiler.with_span span "expm" (fun () -> Matfun.expm psi) in
    let dots =
      Profiler.with_span span "gram" (fun () ->
          Array.map (fun a -> Mat.dot a w) mats)
    in
    let dots = tamper_dots "evaluator.dots.exact" dots in
    { dots; trace_w = Mat.trace w; degree = 0; w = Some w }

let sketched ?pool inst ~params ~seed ~sketch_dim =
  let m = Instance.dim inst in
  let factors = Instance.factors inst in
  let gram = Weighted_gram.create factors in
  let rng = Rng.create seed in
  let k =
    match sketch_dim with
    | Some k -> min k m
    | None ->
        min m
          (Psdp_sketch.Jl.recommended_dim ~eps:(params.Params.eps /. 2.0) m)
  in
  (* Analytic cap on ‖Ψ‖₂ along the trajectory (Lemma 3.2). *)
  let analytic_cap =
    (1.0 +. (10.0 *. params.Params.eps)) *. params.Params.k_cap
  in
  fun ?(span = Profiler.disabled) x ->
    let kappa =
      Profiler.with_span span "gram" (fun () ->
          Weighted_gram.set_weights gram x;
          (* Clamp the spectral estimate to the tracked analytic bound:
             a spiked or non-finite estimate must never inflate the
             degree-selection interval past what the invariant allows. *)
          Psdp_expm.Poly.clamp_kappa ~cap:analytic_cap
            (Weighted_gram.lambda_max_upper_bound gram))
    in
    (* A fresh sketch per iteration keeps the estimates independent of the
       adaptively-chosen trajectory; at full dimension the identity sketch
       is exact and the randomness is unnecessary. *)
    let sketch =
      Profiler.with_span span "sketch" (fun () ->
          if k >= m then Psdp_sketch.Jl.identity m
          else
            Psdp_sketch.Jl.create ~rng:(Rng.split rng) ~target_dim:k
              ~source_dim:m)
    in
    let { Psdp_expm.Big_dot_exp.dots; trace_estimate; degree; _ } =
      Psdp_expm.Big_dot_exp.compute ?pool ~prof:span
        ~matvec:(Weighted_gram.apply ?pool gram)
        ~matvec_many:(Weighted_gram.apply_many ?pool gram)
        ~dim:m ~kappa ~eps:(params.Params.eps /. 2.0) ~sketch factors
    in
    let dots = tamper_dots "evaluator.dots.sketched" dots in
    { dots; trace_w = trace_estimate; degree; w = None }

let create ?pool ~backend ~params inst =
  match backend with
  | Exact -> exact inst
  | Sketched { seed; sketch_dim } ->
      sketched ?pool inst ~params ~seed ~sketch_dim
