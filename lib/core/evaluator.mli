(** The per-iteration primitive of the Main Theorem, shared by
    {!Decision} and its variants ({!Phased}, {!Bucketed}): given the
    current weights [x], evaluate all [exp(Ψ(x)) • Aᵢ] and [Tr exp(Ψ(x))]
    where [Ψ(x) = Σᵢ xᵢAᵢ]. *)

open Psdp_linalg

type backend =
  | Exact
      (** dense eigendecomposition — O(m³ + n·m²) per evaluation, exact *)
  | Sketched of {
      seed : int;
      sketch_dim : int option;
          (** JL rows; default [min m (recommended_dim (eps/2) m)] *)
    }  (** Theorem 4.1: truncated Taylor + JL sketch, near-linear work *)

type evaluation = {
  dots : float array;  (** [exp(Ψ)•Aᵢ] (or estimates) *)
  trace_w : float;  (** [Tr exp(Ψ)] (or estimate) *)
  degree : int;  (** polynomial degree used; 0 for {!Exact} *)
  w : Mat.t option;  (** [exp(Ψ)] itself ({!Exact} only) *)
}

type t = ?span:Psdp_obs.Profiler.span -> float array -> evaluation
(** An evaluation optionally charges its kernel phases as children of
    [span] (default {!Psdp_obs.Profiler.disabled}, which is free):
    ["gram"] for weighted-Gram assembly and constraint products,
    ["expm"] for the matrix exponential (dense or polynomial chains),
    ["sketch"] for drawing the per-iteration JL sketch. *)

val create :
  ?pool:Psdp_parallel.Pool.t -> backend:backend -> params:Params.t ->
  Instance.t -> t
(** Builds the evaluator. The sketched backend draws a fresh sketch per
    call (statistical independence across iterations) and bounds [‖Ψ‖₂]
    by [min((1+10ε)K, Σᵢxᵢ·λmax-upper(Aᵢ))] — the Lemma 3.2 cap and the
    cheap certified bound, whichever is tighter. *)
