open Psdp_prelude
open Psdp_linalg
open Psdp_sparse

let log_src = Logs.Src.create "psdp.solver" ~doc:"approxPSDP (Thm 1.1)"

module Log = (val Logs.src_log log_src : Logs.LOG)

type packing_result = {
  x : float array;
  value : float;
  upper_bound : float;
  primal_dots : float array option;
  primal_z : Mat.t option;
  decision_calls : int;
  total_iterations : int;
  dropped_constraints : int;
}

type warm_start = { upper : float option; x0 : float array option }

let cold = { upper = None; x0 = None }

type bisection_state = {
  lo : float;
  hi : float;
  incumbent : float array;
  incumbent_value : float;
  calls_done : int;
  iterations_done : int;
  dropped : int;
}

let default_max_calls ~eps ~ratio =
  (* Geometric bisection halves the log-gap per call; this budget reaches
     a (1+eps) bracket with slack for noisy certificate values. *)
  let log_gap = Float.max 1e-9 (log ratio) in
  let halvings = Util.log2 (log_gap /. log (1.0 +. (eps /. 2.0))) in
  max 4 (int_of_float (Float.ceil halvings) + 8)

let solve_packing ?pool ?backend ?mode ?max_calls ?(warm = cold) ?resume
    ?checkpoint ?(prof = Psdp_obs.Profiler.disabled) ?on_iter ?on_call ~eps
    inst =
  if eps <= 0.0 || eps >= 1.0 then
    invalid_arg "Solver.solve_packing: eps must lie in (0,1)";
  let n = Instance.num_constraints inst in
  let m = Instance.dim inst in
  let factors = Instance.factors inst in
  let traces = Instance.traces inst in
  let lmaxes = Array.map Factored.lambda_max factors in
  Array.iteri
    (fun i l ->
      if l <= 0.0 then
        invalid_arg
          (Printf.sprintf "Solver.solve_packing: constraint %d has λmax <= 0" i))
    lmaxes;
  (* Bracket: best single-coordinate solution from below; the sum of
     single-coordinate optima and the trace bound from above. *)
  let best_i = ref 0 in
  Array.iteri (fun i l -> if l < lmaxes.(!best_i) then best_i := i) lmaxes;
  let lo0 = 1.0 /. lmaxes.(!best_i) in
  let sum_bound =
    Util.sum_array (Array.map (fun l -> 1.0 /. l) lmaxes)
  in
  let trace_bound = float_of_int m /. Util.min_array traces in
  let hi0 = Float.max lo0 (Float.min sum_bound trace_bound) in
  let incumbent_x = Array.make n 0.0 in
  incumbent_x.(!best_i) <- lo0;
  let incumbent_value = ref lo0 in
  let lo = ref lo0 and hi = ref hi0 in
  (* Warm start: a candidate dual is re-verified before adoption (so the
     returned [value] stays certified no matter what the caller hands us);
     the upper bound is taken on trust — it must come from a certified
     solve of this same instance, e.g. the engine's result cache. *)
  let creep_budget = ref 0 in
  (match warm.x0 with
  | None -> ()
  | Some x0 ->
      if Array.length x0 <> n then
        invalid_arg "Solver.solve_packing: warm x0 has wrong length";
      let cert = Certificate.rescale_dual inst x0 in
      if cert.Certificate.feasible && cert.Certificate.value > !incumbent_value
      then begin
        incumbent_value := cert.Certificate.value;
        Array.blit cert.Certificate.x 0 incumbent_x 0 n;
        lo := Float.max !lo cert.Certificate.value;
        creep_budget := 2
      end);
  (match warm.upper with
  | None -> ()
  | Some u ->
      if Float.is_finite u && u > 0.0 then
        hi := Float.max !lo (Float.min !hi u));
  (* Resume from a checkpoint of an interrupted solve of this same
     instance. The incumbent is re-verified exactly like a warm x0; the
     saved upper end of the bracket is trusted like [warm.upper] (the
     caller is responsible for validating the snapshot's provenance —
     the engine matches instance digests before handing it to us). *)
  (match resume with
  | None -> ()
  | Some s ->
      if Array.length s.incumbent <> n then
        invalid_arg "Solver.solve_packing: resume incumbent has wrong length";
      let cert = Certificate.rescale_dual inst s.incumbent in
      if cert.Certificate.feasible && cert.Certificate.value > !incumbent_value
      then begin
        incumbent_value := cert.Certificate.value;
        Array.blit cert.Certificate.x 0 incumbent_x 0 n
      end;
      lo := Float.max !lo !incumbent_value;
      if Float.is_finite s.hi && s.hi > 0.0 then
        hi := Float.max !lo (Float.min !hi s.hi));
  let primal_dots = ref None and primal_z = ref None in
  let base_calls, base_iters, base_dropped =
    match resume with
    | None -> (0, 0, 0)
    | Some s -> (s.calls_done, s.iterations_done, s.dropped)
  in
  let calls = ref base_calls
  and iters = ref base_iters
  and dropped_total = ref base_dropped in
  let budget =
    (* The call budget covers the remaining work, not the lifetime total:
       a resumed solve gets as many fresh calls as a cold one would. *)
    match max_calls with
    | Some c -> c
    | None -> default_max_calls ~eps ~ratio:(!hi /. !lo)
  in
  let eps_dec = eps /. 4.0 in
  let clamp_cutoff = float_of_int n ** 3.0 in
  Log.info (fun m ->
      m "bracket [%.6g, %.6g], budget %d decision calls" !lo !hi budget);
  while !hi > (1.0 +. eps) *. !lo && !calls - base_calls < budget do
    incr calls;
    (* Probe placement. Geometric bisection probes sqrt(lo·hi) — optimal
       when nothing is known about OPT's position in the bracket. A
       verified warm incumbent changes that: lineage warm starts hand us
       lo ≈ OPT(1−δ) for small drift δ, while hi is still the trivial
       bound, and sqrt(lo·hi) then lands deep in the expensive
       covering-side band well above OPT (per-call decision cost peaks
       just past OPT — see EXP16). So while the warm {e creep budget}
       lasts, probe v = lo·√(1+ε), just above the incumbent. If the
       lineage hypothesis holds, a creep probe's covering certificate
       collapses hi to ≈ v and the solve ends within a call or two; if
       it answers dual instead (OPT drifted further up), lo advances
       past the probe and the next creep fires from there. Two dual
       answers exhaust the budget — the incumbent was not near OPT
       after all — and geometric bisection resumes having spent two
       cheap dual-side calls that both advanced lo. Soundness is
       untouched: only the probe position changes, and every bound
       still comes from a verified certificate. *)
    let v =
      if !creep_budget > 0 then begin
        decr creep_budget;
        Float.min (sqrt (!lo *. !hi)) (!lo *. sqrt (1.0 +. eps))
      end
      else sqrt (!lo *. !hi)
    in
    (match on_call with
    | Some f -> f ~call:!calls ~threshold:v
    | None -> ());
    Psdp_fault.Failpoint.hit "solver.decision_call";
    let dc_span = Psdp_obs.Profiler.enter prof "decision_call" in
    Log.debug (fun m ->
        m "call %d: threshold %.6g (bracket [%.6g, %.6g])" !calls v !lo !hi);
    (* Lemma 2.2 trace clamp: at threshold v, constraints whose rescaled
       trace exceeds n³ can carry only O(m/n³) dual mass each. *)
    let kept = ref [] and slack = ref 0.0 in
    for i = n - 1 downto 0 do
      if v *. traces.(i) <= clamp_cutoff then kept := i :: !kept
      else slack := !slack +. (float_of_int m /. (v *. traces.(i)))
    done;
    let kept = Array.of_list !kept in
    let dropped = n - Array.length kept in
    dropped_total := !dropped_total + dropped;
    let scaled =
      Instance.of_factors
        (Array.map (fun i -> Factored.scale v factors.(i)) kept)
    in
    let res =
      Decision.solve ?pool ?backend ?mode ~prof:dc_span ?on_iter ~eps:eps_dec
        scaled
    in
    iters := !iters + res.Decision.iterations;
    (match res.Decision.outcome with
    | Decision.Dual { x = xd; _ } ->
        (* x feasible for {v·Aᵢ} ⇒ v·x feasible for {Aᵢ}. Verify against
           the full (unclamped) instance and keep the measured value. *)
        let candidate = Array.make n 0.0 in
        Array.iteri (fun k i -> candidate.(i) <- v *. xd.(k)) kept;
        let cert = Certificate.rescale_dual inst candidate in
        if cert.Certificate.feasible && cert.Certificate.value > !incumbent_value
        then begin
          incumbent_value := cert.Certificate.value;
          Array.blit cert.Certificate.x 0 incumbent_x 0 n
        end;
        lo := Float.max !lo !incumbent_value
    | Decision.Primal { dots; y } ->
        (* Tr Y = 1 and (v·Aᵢ)•Y >= min_dot for kept i ⇒ in rescaled
           units OPT <= 1/min_dot plus the clamp slack. *)
        let min_dot = Util.min_array dots in
        if min_dot > 0.0 then begin
          let hi_cand = v *. ((1.0 /. min_dot) +. !slack) in
          if hi_cand < !hi then begin
            hi := Float.max hi_cand !lo;
            (* Covering witness on the original scale: Z = (v/min_dot)·Y,
               Aᵢ•Z = dotsᵢ/min_dot >= 1 for kept constraints. *)
            let full_dots = Array.make n Float.nan in
            Array.iteri
              (fun k i -> full_dots.(i) <- dots.(k) /. min_dot)
              kept;
            primal_dots := Some full_dots;
            primal_z :=
              Option.map (fun y -> Mat.scale (v /. min_dot) y) y
          end
        end);
    Psdp_obs.Profiler.exit dc_span;
    (match checkpoint with
    | Some f ->
        f
          {
            lo = !lo;
            hi = !hi;
            incumbent = Array.copy incumbent_x;
            incumbent_value = !incumbent_value;
            calls_done = !calls;
            iterations_done = !iters;
            dropped = !dropped_total;
          }
    | None -> ())
  done;
  {
    x = incumbent_x;
    value = !incumbent_value;
    upper_bound = !hi;
    primal_dots = !primal_dots;
    primal_z = !primal_z;
    decision_calls = !calls;
    total_iterations = !iters;
    dropped_constraints = !dropped_total;
  }

type covering_result = {
  z : Mat.t;
  objective : float;
  lower_bound : float;
  packing : packing_result;
}

let solve_covering ?pool ?(backend = Decision.Exact) ?mode ?max_calls ~eps inst =
  (match backend with
  | Decision.Exact -> ()
  | Decision.Sketched _ ->
      invalid_arg
        "Solver.solve_covering: the covering witness requires the exact \
         backend");
  let packing = solve_packing ?pool ~backend ?mode ?max_calls ~eps inst in
  (* Z = I/min_traces is always feasible: Aᵢ•Z = Tr Aᵢ/minⱼTr Aⱼ >= 1. *)
  let fallback =
    Mat.scale
      (1.0 /. Util.min_array (Instance.traces inst))
      (Mat.identity (Instance.dim inst))
  in
  let z =
    match packing.primal_z with
    | Some z when Mat.trace z <= Mat.trace fallback -> z
    | Some _ | None -> fallback
  in
  { z; objective = Mat.trace z; lower_bound = packing.value; packing }

type general_result = {
  packing : packing_result;
  y : Mat.t option;
  objective_value : float option;
  dual : float array;
  dual_value : float;
}

let solve_general ?pool ?backend ?mode ?max_calls ~eps g =
  let norm = Normalize.normalize g in
  let packing =
    solve_packing ?pool ?backend ?mode ?max_calls ~eps norm.Normalize.instance
  in
  let y = Option.map (Normalize.denormalize_primal norm) packing.primal_z in
  let objective_value = Option.map (Normalize.primal_objective g) y in
  let dual = Normalize.denormalize_dual norm packing.x in
  let dual_value = Normalize.dual_objective g dual in
  { packing; y; objective_value; dual; dual_value }
