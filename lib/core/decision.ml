open Psdp_prelude
open Psdp_linalg
module Profiler = Psdp_obs.Profiler

let log_src = Logs.Src.create "psdp.decision" ~doc:"decisionPSDP (Alg 3.1)"

module Log = (val Logs.src_log log_src : Logs.LOG)

type backend = Evaluator.backend =
  | Exact
  | Sketched of { seed : int; sketch_dim : int option }

type mode = Faithful | Adaptive of { check_every : int }

type iter_stats = {
  t : int;
  l1 : float;
  trace_w : float;
  updated : int;
  degree : int;
}

type primal_solution = { dots : float array; y : Mat.t option }
type dual_solution = { x : float array; raw : float array }
type outcome = Primal of primal_solution | Dual of dual_solution
type result = { outcome : outcome; iterations : int; params : Params.t }

let initial_point inst =
  let n = Instance.num_constraints inst in
  let traces = Instance.traces inst in
  Array.init n (fun i -> 1.0 /. (float_of_int n *. traces.(i)))

let solve ?pool ?(backend = Exact) ?(mode = Adaptive { check_every = 10 })
    ?(prof = Profiler.disabled) ?on_iter ~eps inst =
  let n = Instance.num_constraints inst in
  let m = Instance.dim inst in
  let params = Params.of_eps ~eps ~n in
  let { Params.k_cap; alpha; r_cap; _ } = params in
  let evaluate = Evaluator.create ?pool ~backend ~params inst in
  let x = initial_point inst in
  let l1 = ref (Util.sum_array x) in
  (* Running primal average: Y = (1/t) Σ_τ W⁽τ⁾/Tr W⁽τ⁾, tracked through
     the constraint values Aᵢ•Y; the exact backend also materializes Y. *)
  let avg_dots = Array.make n 0.0 in
  let y_acc =
    match backend with Exact -> Some (Mat.create m m) | Sketched _ -> None
  in
  let t = ref 0 in
  let finish_primal () =
    let steps = float_of_int (max 1 !t) in
    let dots = Array.map (fun d -> d /. steps) avg_dots in
    let y = Option.map (fun acc -> Mat.scale (1.0 /. steps) acc) y_acc in
    Primal { dots; y }
  in
  let paper_dual () =
    let scale = 1.0 /. ((1.0 +. (10.0 *. eps)) *. k_cap) in
    Dual { x = Array.map (fun v -> v *. scale) x; raw = Array.copy x }
  in
  (* Certificates for the adaptive early exits must not dominate the
     iteration cost: the sketched backend never materializes dense
     matrices, so its checks go through Lanczos. *)
  let cert_method =
    match backend with
    | Exact -> Certificate.Auto
    | Sketched _ -> Certificate.Lanczos
  in
  let early : outcome option ref = ref None in
  let check_early () =
    (* Sound early exits: both candidates are verified certificates. *)
    let dual_cert = Certificate.rescale_dual ~method_:cert_method inst x in
    if
      dual_cert.Certificate.feasible
      && dual_cert.Certificate.value >= 1.0 -. eps
    then begin
      Log.debug (fun m ->
          m "t=%d: dual certificate fired (value %.4f)" !t
            dual_cert.Certificate.value);
      early := Some (Dual { x = dual_cert.Certificate.x; raw = Array.copy x })
    end
    else begin
      let steps = float_of_int (max 1 !t) in
      let dots = Array.map (fun d -> d /. steps) avg_dots in
      if !t > 0 && Util.min_array dots >= 1.0 -. eps then begin
        Log.debug (fun m ->
            m "t=%d: primal certificate fired (min dot %.4f)" !t
              (Util.min_array dots));
        early := Some (finish_primal ())
      end
      else
        Log.debug (fun m ->
            m "t=%d: no certificate yet (dual %.4f, primal min %.4f, l1 %.4f)"
              !t dual_cert.Certificate.value
              (if !t > 0 then Util.min_array dots else Float.nan)
              !l1)
    end
  in
  while !early = None && !l1 <= k_cap && !t < r_cap do
    incr t;
    let it_span = Profiler.enter prof "iteration" in
    let { Evaluator.dots; trace_w; degree; w } = evaluate ~span:it_span x in
    (match (y_acc, w) with
    | Some acc, Some w -> Mat.axpy acc ~alpha:(1.0 /. trace_w) w
    | _ -> ());
    (* B⁽ᵗ⁾ = { i : W•Aᵢ <= (1+ε)·Tr W } — the constraints whose penalty
       is still small get their weight multiplied by (1+α). *)
    let updated = ref 0 in
    Profiler.with_span it_span "select" (fun () ->
        let threshold = (1.0 +. eps) *. trace_w in
        for i = 0 to n - 1 do
          if dots.(i) <= threshold then begin
            x.(i) <- x.(i) *. (1.0 +. alpha);
            incr updated
          end;
          avg_dots.(i) <- avg_dots.(i) +. (dots.(i) /. trace_w)
        done;
        l1 := Util.sum_array x);
    (match on_iter with
    | Some f -> f { t = !t; l1 = !l1; trace_w; updated = !updated; degree }
    | None -> ());
    (match mode with
    | Adaptive { check_every } when !t mod check_every = 0 ->
        Profiler.with_span it_span "cert" check_early
    | Adaptive _ | Faithful -> ());
    Profiler.exit it_span
  done;
  let outcome =
    match !early with
    | Some o -> o
    | None ->
        if !l1 > k_cap then begin
          Log.info (fun m ->
              m "faithful dual exit at t=%d (l1 %.4f > K %.4f)" !t !l1 k_cap);
          paper_dual ()
        end
        else begin
          Log.info (fun m -> m "faithful primal exit at t=%d (R=%d)" !t r_cap);
          finish_primal ()
        end
  in
  { outcome; iterations = !t; params }
