open Psdp_linalg

let log_src = Logs.Src.create "psdp.normalize" ~doc:"Appendix-A normalization"

module Log = (val Logs.src_log log_src : Logs.LOG)

type t = {
  instance : Instance.t;
  cholesky_factor : Mat.t;
  thresholds : float array;
}

(* Numerical graceful degradation: a Cholesky breakdown on a
   numerically full-rank objective is absorbed with a traced diagonal
   shift (and counted as a transient fault) instead of failing the job;
   genuinely singular or indefinite objectives still raise. *)
let robust_factor ~who objective =
  match Cholesky.factor_robust objective with
  | l, shift ->
      if shift > 0.0 then begin
        Psdp_fault.Fault.record Psdp_fault.Fault.Transient;
        Log.warn (fun m ->
            m "%s: Cholesky breakdown absorbed with diagonal shift %.3e" who
              shift)
      end;
      l
  | exception Cholesky.Not_positive_definite i ->
      invalid_arg
        (Printf.sprintf
           "%s: objective C is singular (pivot %d); the Appendix-A \
            reduction requires C to be positive definite on the \
            constraints' support"
           who i)

let normalize (g : Instance.general) =
  let l = robust_factor ~who:"Normalize.normalize" g.Instance.objective in
  let mats =
    Array.map
      (fun (a, b) -> Mat.scale (1.0 /. b) (Cholesky.congruence ~l a))
      g.Instance.constraints
  in
  {
    instance = Instance.of_dense mats;
    cholesky_factor = l;
    thresholds = Array.map snd g.Instance.constraints;
  }

let normalize_factored ~objective ~constraints =
  let m = Mat.rows objective in
  if not (Mat.is_symmetric ~tol:1e-8 objective) then
    invalid_arg "Normalize.normalize_factored: objective not symmetric";
  let l = robust_factor ~who:"Normalize.normalize_factored" objective in
  let factors =
    Array.mapi
      (fun idx (f, b) ->
        if b <= 0.0 then
          invalid_arg
            (Printf.sprintf
               "Normalize.normalize_factored: threshold b_%d must be > 0" idx);
        if Psdp_sparse.Factored.dim f <> m then
          invalid_arg
            (Printf.sprintf
               "Normalize.normalize_factored: constraint %d has dimension %d \
                <> %d"
               idx
               (Psdp_sparse.Factored.dim f)
               m);
        (* Columns of Qᵢ are solved against L and scaled by 1/√bᵢ:
           Bᵢ = (L⁻¹Qᵢ/√bᵢ)(L⁻¹Qᵢ/√bᵢ)ᵀ. *)
        let qt = Psdp_sparse.Factored.factor_t f in
        let r = Psdp_sparse.Csr.rows qt in
        let inv_sqrt_b = 1.0 /. sqrt b in
        let transformed = Mat.create m r in
        let { Psdp_sparse.Csr.row_ptr; col_idx; values; _ } = qt in
        for j = 0 to r - 1 do
          (* Column j of Qᵢ, read off the transpose's sparse row. *)
          let col = Array.make m 0.0 in
          for k = row_ptr.(j) to row_ptr.(j + 1) - 1 do
            col.(col_idx.(k)) <- values.(k)
          done;
          let solved = Cholesky.solve_lower l col in
          for i = 0 to m - 1 do
            Mat.set transformed i j (inv_sqrt_b *. solved.(i))
          done
        done;
        Psdp_sparse.Factored.of_dense_factor transformed)
      constraints
  in
  {
    instance = Instance.of_factors factors;
    cholesky_factor = l;
    thresholds = Array.map snd constraints;
  }

let denormalize_primal t z =
  let l_inv = Cholesky.inverse_lower t.cholesky_factor in
  (* Y = L⁻ᵀ Z L⁻¹ *)
  Mat.symmetrize (Mat.mul (Mat.transpose l_inv) (Mat.mul z l_inv))

let denormalize_dual t x =
  if Array.length x <> Array.length t.thresholds then
    invalid_arg "Normalize.denormalize_dual: wrong length";
  Array.mapi (fun i v -> v /. t.thresholds.(i)) x

let primal_objective (g : Instance.general) y = Mat.dot g.Instance.objective y

let dual_objective (g : Instance.general) x =
  if Array.length x <> Array.length g.Instance.constraints then
    invalid_arg "Normalize.dual_objective: wrong length";
  let s = ref 0.0 in
  Array.iteri (fun i (_, b) -> s := !s +. (b *. x.(i))) g.Instance.constraints;
  !s
