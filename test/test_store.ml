(* Tests for the checkpoint/recovery subsystem: snapshot codec
   (round-trips and corruption), atomic writes under injected crashes,
   journal replay with torn tails, store pending semantics, and the
   end-to-end acceptance scenario — crash an engine mid-solve at every
   kill point, recover, and get the same certified answer an
   uninterrupted run produces. *)

open Psdp_prelude
open Psdp_core
open Psdp_instances
open Psdp_store
open Psdp_engine
module Failpoint = Psdp_fault.Failpoint

let mktempdir () =
  let path = Filename.temp_file "psdp_store" "" in
  Sys.remove path;
  Unix.mkdir path 0o755;
  path

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun n -> rm_rf (Filename.concat path n)) (Sys.readdir path);
    Unix.rmdir path
  end
  else Sys.remove path

let with_tempdir f =
  let dir = mktempdir () in
  Fun.protect ~finally:(fun () -> try rm_rf dir with _ -> ()) (fun () -> f dir)

let ok_or_fail what = function
  | Ok v -> v
  | Error msg -> Alcotest.failf "%s: %s" what msg

let contains_sub hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

(* ------------------------------------------------------------------ *)
(* Checksum *)

let test_checksum_known_values () =
  (* Published FNV-1a-64 test vectors. *)
  Alcotest.(check string) "empty" "cbf29ce484222325" (Checksum.fnv1a64_hex "");
  Alcotest.(check string) "a" "af63dc4c8601ec8c" (Checksum.fnv1a64_hex "a");
  Alcotest.(check string) "foobar" "85944171f73967e8"
    (Checksum.fnv1a64_hex "foobar");
  Alcotest.(check bool) "sensitive to every byte" true
    (Checksum.fnv1a64 "snapshot\x00" <> Checksum.fnv1a64 "snapshot\x01")

(* ------------------------------------------------------------------ *)
(* Snapshot codec *)

let snap ?(digest = "d3adb33f") ?(eps = 0.1) ?(backend = "exact")
    ?(mode = "adaptive:10") ?(x = [| 0.5; 0.0; 1.25 |]) ?(rng = [||]) () =
  {
    Snapshot.digest;
    eps;
    backend;
    mode;
    threshold = 1.7320508;
    lo = 1.0;
    hi = 3.0;
    value = 1.5;
    calls = 4;
    iterations = 123;
    dropped = 1;
    x;
    rng;
  }

let snapshot_equal (a : Snapshot.t) (b : Snapshot.t) =
  a.Snapshot.digest = b.Snapshot.digest
  && a.Snapshot.backend = b.Snapshot.backend
  && a.Snapshot.mode = b.Snapshot.mode
  && a.Snapshot.calls = b.Snapshot.calls
  && a.Snapshot.iterations = b.Snapshot.iterations
  && a.Snapshot.dropped = b.Snapshot.dropped
  && List.for_all
       (fun (p, q) -> Int64.bits_of_float p = Int64.bits_of_float q)
       [
         (a.Snapshot.eps, b.Snapshot.eps);
         (a.Snapshot.threshold, b.Snapshot.threshold);
         (a.Snapshot.lo, b.Snapshot.lo);
         (a.Snapshot.hi, b.Snapshot.hi);
         (a.Snapshot.value, b.Snapshot.value);
       ]
  && Array.length a.Snapshot.x = Array.length b.Snapshot.x
  && Array.for_all2
       (fun p q -> Int64.bits_of_float p = Int64.bits_of_float q)
       a.Snapshot.x b.Snapshot.x
  && a.Snapshot.rng = b.Snapshot.rng

let test_snapshot_roundtrip () =
  let samples =
    [
      snap ();
      snap ~x:[||] ();
      snap ~digest:"" ~backend:"" ~mode:"" ();
      snap ~x:[| Float.max_float; 4.9e-324; -0.0; 1.0 /. 3.0 |] ();
      snap ~rng:[| 1L; -2L; Int64.max_int; Int64.min_int |] ();
      snap ~digest:(String.make 100 'z') ();
    ]
  in
  List.iter
    (fun s ->
      let s' = ok_or_fail "decode" (Snapshot.decode (Snapshot.encode s)) in
      Alcotest.(check bool) "roundtrip equal" true (snapshot_equal s s'))
    samples

let prop_snapshot_roundtrip =
  QCheck.Test.make ~name:"snapshot codec round-trips" ~count:100
    QCheck.(
      quad
        (string_gen_of_size (Gen.int_range 0 20) Gen.printable)
        (float_range 0.01 0.99)
        (list_of_size (Gen.int_range 0 50) float)
        (list_of_size (Gen.int_range 0 4) int64))
    (fun (digest, eps, xs, rs) ->
      let s =
        snap ~digest ~eps
          ~x:(Array.of_list (List.filter Float.is_finite xs))
          ~rng:(Array.of_list rs) ()
      in
      match Snapshot.decode (Snapshot.encode s) with
      | Ok s' -> snapshot_equal s s'
      | Error _ -> false)

let test_snapshot_rejects_truncation () =
  let data = Snapshot.encode (snap ()) in
  for len = 0 to String.length data - 1 do
    match Snapshot.decode (String.sub data 0 len) with
    | Ok _ -> Alcotest.failf "accepted truncation to %d bytes" len
    | Error _ -> ()
  done

let test_snapshot_rejects_bit_flips () =
  let data = Snapshot.encode (snap ()) in
  for i = 0 to String.length data - 1 do
    let b = Bytes.of_string data in
    Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x40));
    match Snapshot.decode (Bytes.to_string b) with
    | Ok _ -> Alcotest.failf "accepted byte flip at offset %d" i
    | Error _ -> ()
  done

let test_snapshot_rejects_wrong_version () =
  let data = Snapshot.encode (snap ()) in
  let b = Bytes.of_string data in
  Bytes.set_int32_le b 8 99l;
  (match Snapshot.decode (Bytes.to_string b) with
  | Ok _ -> Alcotest.fail "accepted version 99"
  | Error msg ->
      Alcotest.(check bool)
        (Printf.sprintf "error mentions version: %s" msg)
        true
        (contains_sub msg "version"));
  match Snapshot.decode (String.make 40 '\x00') with
  | Ok _ -> Alcotest.fail "accepted zero bytes"
  | Error _ -> ()

let test_snapshot_rejects_trailing_garbage () =
  let data = Snapshot.encode (snap ()) in
  match Snapshot.decode (data ^ "x") with
  | Ok _ -> Alcotest.fail "accepted trailing bytes"
  | Error _ -> ()

let test_snapshot_save_load () =
  with_tempdir (fun dir ->
      let path = Filename.concat dir "s.snap" in
      let s = snap () in
      Snapshot.save path s;
      let s' = ok_or_fail "load" (Snapshot.load path) in
      Alcotest.(check bool) "file roundtrip" true (snapshot_equal s s');
      (match Snapshot.load (Filename.concat dir "missing.snap") with
      | Ok _ -> Alcotest.fail "loaded a missing file"
      | Error _ -> ());
      (* Corrupt the file on disk; load must reject it cleanly. *)
      let oc = open_out_gen [ Open_wronly ] 0o644 path in
      seek_out oc 25;
      output_string oc "\xff\xff\xff";
      close_out oc;
      match Snapshot.load path with
      | Ok _ -> Alcotest.fail "loaded a corrupted file"
      | Error _ -> ())

(* ------------------------------------------------------------------ *)
(* Atomic writes under injected crashes *)

let test_atomic_write_kill_points () =
  with_tempdir (fun dir ->
      let path = Filename.concat dir "target" in
      Atomic_io.write_atomic path "original";
      let crash_at point =
        Failpoint.arm point (Failpoint.Fail "boom");
        Fun.protect
          ~finally:(fun () -> Failpoint.reset ())
          (fun () ->
            match Atomic_io.write_atomic path "replacement" with
            | () -> Alcotest.fail "failpoint did not fire"
            | exception Failpoint.Injected _ -> ())
      in
      (* Crash before/after writing the temp file: target untouched. *)
      crash_at "store.write.before";
      Alcotest.(check string) "before_write: old content intact" "original"
        (ok_or_fail "read" (Atomic_io.read_file path));
      crash_at "store.write.after_write";
      Alcotest.(check string) "after_write: old content intact" "original"
        (ok_or_fail "read" (Atomic_io.read_file path));
      (* Crash after the rename: new content fully in place. *)
      crash_at "store.write.after_rename";
      Alcotest.(check string) "after_rename: new content" "replacement"
        (ok_or_fail "read" (Atomic_io.read_file path));
      (* Never a torn mix, and a clean retry succeeds. *)
      Atomic_io.write_atomic path "final";
      Alcotest.(check string) "clean write" "final"
        (ok_or_fail "read" (Atomic_io.read_file path));
      (* A corrupt-bytes failpoint at the data point flips one byte:
         the write completes but the payload differs. *)
      Failpoint.arm "store.write.data" Failpoint.Corrupt;
      Fun.protect
        ~finally:(fun () -> Failpoint.reset ())
        (fun () ->
          Atomic_io.write_atomic path "untainted";
          Alcotest.(check bool) "payload corrupted in flight" true
            (ok_or_fail "read" (Atomic_io.read_file path) <> "untainted")))

(* ------------------------------------------------------------------ *)
(* Journal *)

let journal_samples =
  [
    Journal.Submitted
      { job = "j1"; spec = Json.Obj [ ("file", Json.Str "a.inst") ] };
    Journal.Checkpoint { job = "j1"; call = 3; snapshot = "snapshots/j1.snap" };
    Journal.Completed { job = "j1"; status = "ok"; result = None };
    Journal.Completed
      {
        job = "j9";
        status = "ok";
        result = Some (Json.Obj [ ("id", Json.Str "j9") ]);
      };
    Journal.Epoch { epoch = 3 };
    Journal.Cancelled { job = "j2"; reason = "timeout" };
    Journal.Quarantined { job = "j3"; reason = "poison"; attempts = 3 };
  ]

let test_journal_line_roundtrip () =
  List.iter
    (fun r ->
      let line = Journal.to_line r in
      Alcotest.(check bool) "single line" false (String.contains line '\n');
      let r' = ok_or_fail "of_line" (Journal.of_line line) in
      Alcotest.(check string) "roundtrip" line (Journal.to_line r'))
    journal_samples

let test_journal_rejects_tampering () =
  let line = Journal.to_line (List.hd journal_samples) in
  (* Flip one character in the body: the crc must catch it. *)
  let b = Bytes.of_string line in
  let idx = String.index line '1' in
  Bytes.set b idx '2';
  (match Journal.of_line (Bytes.to_string b) with
  | Ok _ -> Alcotest.fail "accepted tampered line"
  | Error _ -> ());
  List.iter
    (fun bad ->
      match Journal.of_line bad with
      | Ok _ -> Alcotest.failf "accepted %S" bad
      | Error _ -> ())
    [
      "";
      "not json";
      "{}";
      "[1]";
      {|{"kind":"submitted","job":"x","spec":{}}|};
      {|{"kind":"submitted","job":"x","spec":{},"crc":"0000000000000000"}|};
      {|{"kind":"wat","job":"x","crc":"0000000000000000"}|};
    ]

let test_journal_replay_torn_tail () =
  with_tempdir (fun dir ->
      let path = Filename.concat dir "journal.jsonl" in
      Alcotest.(check bool) "missing file: empty replay" true
        (Journal.replay path = ([], None));
      let oc = open_out path in
      List.iter
        (fun r ->
          output_string oc (Journal.to_line r);
          output_char oc '\n')
        journal_samples;
      (* A torn final line, as left by a crash mid-append. *)
      output_string oc {|{"kind":"submitted","job":"torn","sp|};
      close_out oc;
      let records, err = Journal.replay path in
      Alcotest.(check int) "valid prefix kept"
        (List.length journal_samples)
        (List.length records);
      Alcotest.(check bool) "torn tail reported" true (err <> None);
      List.iter2
        (fun a b ->
          Alcotest.(check string) "record order preserved" (Journal.to_line a)
            (Journal.to_line b))
        journal_samples records)

(* ------------------------------------------------------------------ *)
(* Store: pending computation and persistence *)

let submit_record job =
  Journal.Submitted
    { job; spec = Json.Obj [ ("file", Json.Str (job ^ ".inst")) ] }

let test_store_pending_lifecycle () =
  with_tempdir (fun dir ->
      let store = ok_or_fail "open" (Store.open_store dir) in
      Alcotest.(check int) "fresh store: nothing pending" 0
        (List.length (Store.pending store));
      Store.append store (submit_record "done");
      Store.append store
        (Journal.Completed { job = "done"; status = "ok"; result = None });
      Store.append store (submit_record "crashed");
      Store.append store
        (Journal.Checkpoint
           { job = "crashed"; call = 2; snapshot = "snapshots/c.snap" });
      Store.append store (submit_record "cancelled");
      Store.append store
        (Journal.Cancelled { job = "cancelled"; reason = "cancel" });
      Store.append store (submit_record "untouched");
      Store.close store;
      let store = ok_or_fail "reopen" (Store.open_store dir) in
      let pending = Store.pending store in
      Alcotest.(check (list string))
        "pending jobs, submission order"
        [ "crashed"; "cancelled"; "untouched" ]
        (List.map (fun (p : Store.pending) -> p.Store.job) pending);
      let find job =
        List.find (fun (p : Store.pending) -> p.Store.job = job) pending
      in
      Alcotest.(check (option string))
        "crashed kept its snapshot" (Some "snapshots/c.snap")
        (find "crashed").Store.snapshot;
      Alcotest.(check (option string))
        "crash has no interruption reason" None
        (find "crashed").Store.interrupted;
      Alcotest.(check (option string))
        "cancellation reason kept" (Some "cancel")
        (find "cancelled").Store.interrupted;
      Alcotest.(check (option string))
        "untouched has no snapshot" None (find "untouched").Store.snapshot;
      (* Re-submission of a recovered job keeps its earned snapshot. *)
      Store.append store (submit_record "crashed");
      Store.close store;
      let store = ok_or_fail "reopen 2" (Store.open_store dir) in
      Alcotest.(check (option string))
        "snapshot survives re-submission" (Some "snapshots/c.snap")
        (List.find
           (fun (p : Store.pending) -> p.Store.job = "crashed")
           (Store.pending store))
          .Store.snapshot;
      Store.close store)

let test_store_quarantine_listing () =
  with_tempdir (fun dir ->
      let store = ok_or_fail "open" (Store.open_store dir) in
      Store.append store (submit_record "poison");
      Store.append store
        (Journal.Quarantined
           { job = "poison"; reason = "always fails"; attempts = 3 });
      Store.append store (submit_record "healthy");
      Store.close store;
      let store = ok_or_fail "reopen" (Store.open_store dir) in
      (* Quarantine is terminal for recovery: the job leaves pending. *)
      Alcotest.(check (list string))
        "quarantined job not pending" [ "healthy" ]
        (List.map (fun (p : Store.pending) -> p.Store.job)
           (Store.pending store));
      (match Store.quarantined store with
      | [ q ] ->
          Alcotest.(check string) "job listed" "poison" q.Store.job;
          Alcotest.(check string) "reason kept" "always fails" q.Store.reason;
          Alcotest.(check int) "attempts kept" 3 q.Store.attempts
      | l -> Alcotest.failf "expected one quarantined job, got %d"
               (List.length l));
      (* A deliberate re-submission releases the job from quarantine. *)
      Store.append store (submit_record "poison");
      Store.close store;
      let store = ok_or_fail "reopen 2" (Store.open_store dir) in
      Alcotest.(check int) "released from quarantine" 0
        (List.length (Store.quarantined store));
      Alcotest.(check bool) "pending again" true
        (List.exists
           (fun (p : Store.pending) -> p.Store.job = "poison")
           (Store.pending store));
      Store.close store)

let test_store_snapshot_files_and_tmp_sweep () =
  with_tempdir (fun dir ->
      let store = ok_or_fail "open" (Store.open_store dir) in
      let rel = Store.save_snapshot store ~job:"weird/job: id*" (snap ()) in
      Alcotest.(check bool) "relative path" true (Filename.is_relative rel);
      let s' = ok_or_fail "load" (Store.load_snapshot store rel) in
      Alcotest.(check bool)
        "snapshot survives" true
        (snapshot_equal (snap ()) s');
      Alcotest.(check string) "deterministic path" rel
        (Store.snapshot_rel ~job:"weird/job: id*");
      Alcotest.(check bool) "distinct jobs, distinct files" true
        (Store.snapshot_rel ~job:"a" <> Store.snapshot_rel ~job:"b");
      (* Sanitization can collide on the name part; the checksum suffix
         must keep the paths distinct. *)
      Alcotest.(check bool) "sanitize collisions disambiguated" true
        (Store.snapshot_rel ~job:"a/b" <> Store.snapshot_rel ~job:"a_b");
      (* Stale temp files from a crashed atomic write are swept. *)
      let stale = Filename.concat dir "snapshots/x.snap.tmp.1234" in
      let oc = open_out stale in
      output_string oc "partial";
      close_out oc;
      Store.close store;
      let store = ok_or_fail "reopen" (Store.open_store dir) in
      Alcotest.(check bool) "tmp file swept" false (Sys.file_exists stale);
      Store.close store)

(* ------------------------------------------------------------------ *)
(* Engine integration: checkpoint, crash, recover *)

let proj () =
  Known_opt.orthogonal_projectors ~rng:(Rng.create 7) ~dim:8 ~n:3

let kind_of v = Option.bind (Json.mem "kind" v) Json.str

let count_kind events kind =
  List.length (List.filter (fun e -> kind_of e = Some kind) events)

type solved = {
  value : float;
  upper : float;
  calls : int;
  certified : bool;
}

let outcome_name = function
  | Job.Solved _ -> "Solved"
  | Job.Decided _ -> "Decided"
  | Job.Failed m -> "Failed: " ^ m
  | Job.Cancelled -> "Cancelled"
  | Job.Timed_out -> "Timed_out"

let solved (r : Job.result) =
  match r.Job.outcome with
  | Job.Solved { value; upper_bound; decision_calls; certified; _ } ->
      { value; upper = upper_bound; calls = decision_calls; certified }
  | o ->
      Alcotest.failf "job %s: expected Solved, got %s" r.Job.id
        (outcome_name o)

let run_store_engine ?(trace = Trace.null) dir f =
  let store = ok_or_fail "open store" (Store.open_store dir) in
  Fun.protect
    ~finally:(fun () -> Store.close store)
    (fun () ->
      Engine.with_engine ~pool:Psdp_parallel.Pool.sequential ~max_in_flight:1
        ~store ~trace ~checkpoint_every:1 f)

(* Kill the store on the [n]-th snapshot write, at the given point. *)
let arm_snapshot_kill point n =
  Failpoint.arm ~trigger:(Failpoint.Nth n)
    ~filter:(fun path -> Filename.check_suffix path ".snap")
    point
    (Failpoint.Fail "snapshot write crash")

let eps = 0.2

(* The acceptance scenario, parameterized over the kill point: an engine
   with a checkpoint store crashes while persisting a snapshot; a second
   engine over the same store recovers the job and must produce the same
   certified answer as an uninterrupted run. *)
let crash_recover_at point ~kill_after =
  let inst, known_opt = proj () in
  let uninterrupted = Solver.solve_packing ~eps inst in
  Alcotest.(check bool) "baseline needs several calls" true
    (uninterrupted.Solver.decision_calls > 2);
  with_tempdir (fun dir ->
      (* Phase 1: crash mid-solve. *)
      let r1 =
        Fun.protect
          ~finally:(fun () -> Failpoint.reset ())
          (fun () ->
            arm_snapshot_kill point kill_after;
            run_store_engine dir (fun eng ->
                Engine.await eng
                  (Engine.submit eng
                     (Job.solve_spec ~id:"crashy" ~eps (Job.Inline inst)))))
      in
      (match r1.Job.outcome with
      | Job.Failed msg ->
          Alcotest.(check bool)
            (Printf.sprintf "failure names the store: %s" msg)
            true
            (contains_sub msg "checkpoint store")
      | o -> Alcotest.failf "expected a store failure, got %s" (outcome_name o));
      (* Phase 2: recover in a fresh engine over the same store. *)
      let trace = Trace.memory () in
      let results =
        run_store_engine ~trace dir (fun eng ->
            let handles = Engine.recover eng in
            Alcotest.(check int) "one job recovered" 1 (List.length handles);
            List.map (fun h -> Engine.await eng h) handles)
      in
      let r2 = List.hd results in
      Alcotest.(check string) "journal identity preserved" "crashy" r2.Job.id;
      let s = solved r2 in
      Alcotest.(check bool) "recovered solve certified" true s.certified;
      (* Same guarantee as the uninterrupted run: a certified (1+ε)
         bracket around the known optimum. *)
      let tol = 1e-6 in
      Alcotest.(check bool) "lower bound valid" true
        (s.value <= known_opt +. tol);
      Alcotest.(check bool) "upper bound valid" true
        (s.upper >= known_opt -. tol);
      Alcotest.(check bool) "bracket closed" true
        (s.upper <= ((1.0 +. eps) *. s.value) +. tol);
      Alcotest.(check bool) "matches uninterrupted lower bound" true
        (s.value >= (uninterrupted.Solver.value /. (1.0 +. eps)) -. tol);
      let events = Trace.events trace in
      Alcotest.(check int) "recovery_started traced" 1
        (count_kind events "recovery_started");
      Alcotest.(check int) "job_recovered traced" 1
        (count_kind events "job_recovered");
      (events, s))

let test_crash_before_write () =
  let events, s =
    crash_recover_at "store.write.before" ~kill_after:2
  in
  (* The first snapshot survived, so recovery resumes rather than
     restarting: the resumed run's counters continue past the crash
     point. *)
  Alcotest.(check int) "resume traced" 1 (count_kind events "resume");
  Alcotest.(check bool) "counters continue across the crash" true
    (s.calls > 1)

let test_crash_after_write () =
  ignore (crash_recover_at "store.write.after_write" ~kill_after:2)

let test_crash_after_rename () =
  (* Snapshot file landed but the journal checkpoint record did not; the
     deterministic snapshot path still lets recovery find it. *)
  ignore (crash_recover_at "store.write.after_rename" ~kill_after:2)

let test_crash_on_first_snapshot () =
  (* Crash before any snapshot lands: recovery reruns from scratch. *)
  let events, _ =
    crash_recover_at "store.write.before" ~kill_after:1
  in
  Alcotest.(check int) "no resume without a snapshot" 0
    (count_kind events "resume")

let test_cancelled_job_is_resumable () =
  let inst, known_opt = proj () in
  with_tempdir (fun dir ->
      (* Cancel a job before it runs (paused engine makes this
         deterministic): the journal records an interruption, not a
         completion. *)
      let store = ok_or_fail "open" (Store.open_store dir) in
      let eng =
        Engine.create ~pool:Psdp_parallel.Pool.sequential ~max_in_flight:1
          ~store ~paused:true ()
      in
      let h =
        Engine.submit eng (Job.solve_spec ~id:"cxl" ~eps (Job.Inline inst))
      in
      Alcotest.(check bool) "cancel accepted" true (Engine.cancel eng h);
      Engine.resume eng;
      let r1 = Engine.await eng h in
      Engine.shutdown eng;
      Store.close store;
      Alcotest.(check string) "cancelled outcome" "Cancelled"
        (outcome_name r1.Job.outcome);
      let store = ok_or_fail "reopen" (Store.open_store dir) in
      let pending = Store.pending store in
      Store.close store;
      Alcotest.(check (list string))
        "cancelled job stays pending" [ "cxl" ]
        (List.map (fun (p : Store.pending) -> p.Store.job) pending);
      Alcotest.(check (option string))
        "reason recorded" (Some "cancel")
        (List.hd pending).Store.interrupted;
      (* Recover it: the job runs to a certified completion. *)
      let results =
        run_store_engine dir (fun eng ->
            List.map (fun h -> Engine.await eng h) (Engine.recover eng))
      in
      let s = solved (List.hd results) in
      Alcotest.(check bool) "recovered after cancel" true s.certified;
      Alcotest.(check bool) "recovered answer sound" true
        (s.value <= known_opt +. 1e-6))

let test_digest_mismatch_rejected () =
  let inst, _ = proj () in
  with_tempdir (fun dir ->
      (* Forge a store whose snapshot belongs to different work. *)
      let store = ok_or_fail "open" (Store.open_store dir) in
      let digest = Loader.digest inst in
      let path =
        Store.save_instance store ~digest ~text:(Loader.to_string inst)
      in
      let spec = Job.solve_spec ~id:"forged" ~eps (Job.File path) in
      let spec_json = ok_or_fail "spec json" (Job.spec_to_json spec) in
      Store.append store
        (Journal.Submitted { job = "forged"; spec = spec_json });
      let bogus =
        { (snap ()) with Snapshot.digest = "0000deadbeef0000"; eps }
      in
      let rel = Store.save_snapshot store ~job:"forged" bogus in
      Store.append store
        (Journal.Checkpoint { job = "forged"; call = 4; snapshot = rel });
      Store.close store;
      let trace = Trace.memory () in
      let results =
        run_store_engine ~trace dir (fun eng ->
            List.map (fun h -> Engine.await eng h) (Engine.recover eng))
      in
      let s = solved (List.hd results) in
      Alcotest.(check bool) "solved cold despite forged snapshot" true
        s.certified;
      let events = Trace.events trace in
      Alcotest.(check int) "snapshot rejected exactly once" 1
        (count_kind events "snapshot_rejected");
      Alcotest.(check int) "no resume from a forged snapshot" 0
        (count_kind events "resume"))

let test_corrupt_snapshot_rejected () =
  let inst, _ = proj () in
  with_tempdir (fun dir ->
      let store = ok_or_fail "open" (Store.open_store dir) in
      let digest = Loader.digest inst in
      let path =
        Store.save_instance store ~digest ~text:(Loader.to_string inst)
      in
      let spec = Job.solve_spec ~id:"corrupt" ~eps (Job.File path) in
      let spec_json = ok_or_fail "spec json" (Job.spec_to_json spec) in
      Store.append store
        (Journal.Submitted { job = "corrupt"; spec = spec_json });
      let rel = Store.snapshot_rel ~job:"corrupt" in
      let oc = open_out (Filename.concat dir rel) in
      output_string oc "PSDPSNAPgarbage that is not a valid snapshot";
      close_out oc;
      Store.append store
        (Journal.Checkpoint { job = "corrupt"; call = 1; snapshot = rel });
      Store.close store;
      let trace = Trace.memory () in
      let results =
        run_store_engine ~trace dir (fun eng ->
            List.map (fun h -> Engine.await eng h) (Engine.recover eng))
      in
      let s = solved (List.hd results) in
      Alcotest.(check bool) "solved cold despite corrupt snapshot" true
        s.certified;
      Alcotest.(check int) "corruption traced" 1
        (count_kind (Trace.events trace) "snapshot_rejected"))

let test_completed_jobs_not_recovered () =
  let inst, _ = proj () in
  with_tempdir (fun dir ->
      let r =
        run_store_engine dir (fun eng ->
            Engine.await eng
              (Engine.submit eng
                 (Job.solve_spec ~id:"clean" ~eps (Job.Inline inst))))
      in
      Alcotest.(check bool) "clean run solved" true (solved r).certified;
      let handles = run_store_engine dir (fun eng -> Engine.recover eng) in
      Alcotest.(check int) "nothing to recover" 0 (List.length handles))

let test_inline_instances_journaled_as_files () =
  let inst, _ = proj () in
  with_tempdir (fun dir ->
      ignore
        (run_store_engine dir (fun eng ->
             Engine.await eng
               (Engine.submit eng
                  (Job.solve_spec ~id:"inline" ~eps (Job.Inline inst)))));
      (* The journal must reference a real, reloadable instance file. *)
      let records, err =
        Journal.replay (Filename.concat dir "journal.jsonl")
      in
      Alcotest.(check bool) "journal intact" true (err = None);
      match
        List.find_map
          (function
            | Journal.Submitted { spec; _ } ->
                Option.bind (Json.mem "file" spec) Json.str
            | _ -> None)
          records
      with
      | None -> Alcotest.fail "no submitted record with a file"
      | Some path ->
          let reloaded = ok_or_fail "reload" (Loader.load_result path) in
          Alcotest.(check string) "identical content" (Loader.digest inst)
            (Loader.digest reloaded))

(* ------------------------------------------------------------------ *)
(* Solver-level resume: certified continuation semantics *)

let test_solver_resume_continues () =
  let inst, known_opt = proj () in
  let states = ref [] in
  let full =
    Solver.solve_packing ~eps
      ~checkpoint:(fun s -> states := s :: !states)
      inst
  in
  Alcotest.(check int) "one checkpoint per call" full.Solver.decision_calls
    (List.length !states);
  (* Resume from the state after the first call. *)
  let mid = List.nth !states (List.length !states - 1) in
  Alcotest.(check int) "first checkpoint is call 1" 1 mid.Solver.calls_done;
  let resumed = Solver.solve_packing ~eps ~resume:mid inst in
  let tol = 1e-6 in
  Alcotest.(check bool) "resumed lower bound valid" true
    (resumed.Solver.value <= known_opt +. tol);
  Alcotest.(check bool) "resumed bracket closed" true
    (resumed.Solver.upper_bound
    <= ((1.0 +. eps) *. resumed.Solver.value) +. tol);
  Alcotest.(check bool) "counters continue" true
    (resumed.Solver.decision_calls > mid.Solver.calls_done);
  Alcotest.(check bool) "resume does not repeat finished calls" true
    (resumed.Solver.decision_calls <= full.Solver.decision_calls);
  (* A lying incumbent is re-verified, never trusted. *)
  let lying =
    {
      mid with
      Solver.incumbent = Array.map (fun v -> v *. 100.0) mid.Solver.incumbent;
      incumbent_value = 1e9;
    }
  in
  let safe = Solver.solve_packing ~eps ~resume:lying inst in
  Alcotest.(check bool) "lying incumbent cannot break soundness" true
    (safe.Solver.value <= known_opt +. tol)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "store"
    [
      ( "checksum",
        [ Alcotest.test_case "known values" `Quick test_checksum_known_values ]
      );
      ( "snapshot",
        [
          Alcotest.test_case "roundtrip" `Quick test_snapshot_roundtrip;
          Alcotest.test_case "truncation" `Quick
            test_snapshot_rejects_truncation;
          Alcotest.test_case "bit flips" `Quick test_snapshot_rejects_bit_flips;
          Alcotest.test_case "wrong version" `Quick
            test_snapshot_rejects_wrong_version;
          Alcotest.test_case "trailing garbage" `Quick
            test_snapshot_rejects_trailing_garbage;
          Alcotest.test_case "save/load" `Quick test_snapshot_save_load;
        ] );
      ( "atomic",
        [
          Alcotest.test_case "kill points" `Quick test_atomic_write_kill_points;
        ] );
      ( "journal",
        [
          Alcotest.test_case "line roundtrip" `Quick
            test_journal_line_roundtrip;
          Alcotest.test_case "tamper detection" `Quick
            test_journal_rejects_tampering;
          Alcotest.test_case "torn tail replay" `Quick
            test_journal_replay_torn_tail;
        ] );
      ( "store",
        [
          Alcotest.test_case "pending lifecycle" `Quick
            test_store_pending_lifecycle;
          Alcotest.test_case "quarantine listing" `Quick
            test_store_quarantine_listing;
          Alcotest.test_case "snapshot files + tmp sweep" `Quick
            test_store_snapshot_files_and_tmp_sweep;
        ] );
      ( "recovery",
        [
          Alcotest.test_case "crash before write" `Quick
            test_crash_before_write;
          Alcotest.test_case "crash after write" `Quick test_crash_after_write;
          Alcotest.test_case "crash after rename" `Quick
            test_crash_after_rename;
          Alcotest.test_case "crash on first snapshot" `Quick
            test_crash_on_first_snapshot;
          Alcotest.test_case "cancel is resumable" `Quick
            test_cancelled_job_is_resumable;
          Alcotest.test_case "digest mismatch" `Quick
            test_digest_mismatch_rejected;
          Alcotest.test_case "corrupt snapshot" `Quick
            test_corrupt_snapshot_rejected;
          Alcotest.test_case "completed not recovered" `Quick
            test_completed_jobs_not_recovered;
          Alcotest.test_case "inline saved as file" `Quick
            test_inline_instances_journaled_as_files;
        ] );
      ( "solver resume",
        [
          Alcotest.test_case "continues certified" `Quick
            test_solver_resume_continues;
        ] );
      ( "properties",
        List.map
          Qa_harness.to_alcotest
          [ prop_snapshot_roundtrip ] );
    ]
