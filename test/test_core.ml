(* Tests for the paper's algorithms: parameters, certificates,
   normalization, decisionPSDP (Alg 3.1), approxPSDP (Thm 1.1), the
   width-dependent baseline and the positive-LP solver. *)

open Psdp_prelude
open Psdp_linalg
open Psdp_core
open Psdp_instances

(* ------------------------------------------------------------------ *)
(* Params *)

let test_params_formulas () =
  let p = Params.of_eps ~eps:0.1 ~n:100 in
  let ln_n = log 100.0 in
  Alcotest.(check (float 1e-9)) "K" ((1.0 +. ln_n) /. 0.1) p.Params.k_cap;
  Alcotest.(check (float 1e-9)) "alpha"
    (0.1 /. (p.Params.k_cap *. 2.0))
    p.Params.alpha;
  Alcotest.(check bool) "R = O(eps^-3 log^2 n)" true
    (p.Params.r_cap
    = int_of_float (Float.ceil (32.0 /. (0.1 *. p.Params.alpha) *. ln_n)))

let test_params_scaling_in_eps () =
  (* R should scale like eps^-3 (Theorem 3.1). *)
  (* R = 32(1+10ε)(1+ln n)·ln n/ε³: halving ε multiplies R by
     8·(1+5ε)/(1+10ε) ≈ 6 at ε = 0.1. *)
  let r eps = float_of_int (Params.of_eps ~eps ~n:50).Params.r_cap in
  let ratio = r 0.05 /. r 0.1 in
  if ratio < 5.0 || ratio > 10.0 then
    Alcotest.failf "halving eps should ~6-8x R, got %gx" ratio

let test_params_validation () =
  Alcotest.check_raises "eps = 0"
    (Invalid_argument "Params.of_eps: eps must lie in (0,1)") (fun () ->
      ignore (Params.of_eps ~eps:0.0 ~n:5));
  Alcotest.check_raises "n = 0"
    (Invalid_argument "Params.of_eps: n must be >= 1") (fun () ->
      ignore (Params.of_eps ~eps:0.1 ~n:0))

(* ------------------------------------------------------------------ *)
(* Instance *)

let test_instance_validation () =
  Alcotest.check_raises "empty"
    (Invalid_argument "Instance.of_factors: no constraints") (fun () ->
      ignore (Instance.of_factors [||]));
  let indef = Mat.of_rows [| [| 1.0; 2.0 |]; [| 2.0; 1.0 |] |] in
  (match Instance.of_dense [| indef |] with
  | (_ : Instance.t) -> Alcotest.fail "accepted an indefinite constraint"
  | exception Invalid_argument _ -> ());
  let zero = Mat.create 3 3 in
  match Instance.of_dense [| zero |] with
  | (_ : Instance.t) -> Alcotest.fail "accepted a zero constraint"
  | exception Invalid_argument _ -> ()

let test_instance_width () =
  let inst, _ = Diagonal.scaled_identities [| 0.5; 3.0 |] ~dim:4 in
  Alcotest.(check (float 1e-9)) "width = max c" 3.0 (Instance.width inst)

let test_instance_scale () =
  let inst, _ = Diagonal.scaled_identities [| 1.0 |] ~dim:3 in
  let scaled = Instance.scale 2.0 inst in
  Alcotest.(check (float 1e-9)) "scaled width" 2.0 (Instance.width scaled);
  Alcotest.(check (float 1e-9)) "scaled trace" 6.0 (Instance.traces scaled).(0)

(* ------------------------------------------------------------------ *)
(* Certificate *)

let test_certificate_dual () =
  let inst, _ = Diagonal.scaled_identities [| 1.0; 2.0 |] ~dim:3 in
  (* x = (1/2, 1/4): Σ xᵢcᵢ = 1 exactly. *)
  let cert = Certificate.check_dual inst [| 0.5; 0.25 |] in
  Alcotest.(check bool) "feasible" true cert.Certificate.feasible;
  Alcotest.(check (float 1e-9)) "value" 0.75 cert.Certificate.value;
  Alcotest.(check (float 1e-6)) "lambda" 1.0 cert.Certificate.lambda_max;
  let infeasible = Certificate.check_dual inst [| 2.0; 0.0 |] in
  Alcotest.(check bool) "infeasible detected" false
    infeasible.Certificate.feasible

let test_certificate_rescale () =
  let inst, _ = Diagonal.scaled_identities [| 1.0 |] ~dim:2 in
  let cert = Certificate.rescale_dual inst [| 5.0 |] in
  Alcotest.(check bool) "feasible after rescale" true cert.Certificate.feasible;
  Alcotest.(check (float 1e-6)) "value 1" 1.0 cert.Certificate.value

let test_certificate_lanczos_matches_dense () =
  let rng = Rng.create 11 in
  let inst =
    Random_psd.factored ~rng ~dim:20 ~n:6 ~rank:4 ~density:0.5 ()
  in
  let x = Array.init 6 (fun _ -> Rng.uniform rng) in
  let dense = Certificate.psi_lambda_max ~method_:Certificate.Dense inst x in
  let lan = Certificate.psi_lambda_max ~method_:Certificate.Lanczos inst x in
  if Float.abs (dense -. lan) > 0.02 *. dense then
    Alcotest.failf "lanczos %g vs dense %g" lan dense

let test_certificate_primal () =
  let inst, _ = Diagonal.scaled_identities [| 2.0 |] ~dim:2 in
  (* Y = I/2: Tr = 1, A•Y = 2·(1/2 + 1/2)/... A = 2I so A•Y = 2·Tr(Y)/1 = 2. *)
  let y = Mat.scale 0.5 (Mat.identity 2) in
  let cert = Certificate.check_primal inst y in
  Alcotest.(check bool) "feasible" true cert.Certificate.feasible;
  Alcotest.(check (float 1e-9)) "dot" 2.0 cert.Certificate.min_dot;
  let bad = Certificate.primal_of_dots ~trace:1.0 [| 0.5 |] in
  Alcotest.(check bool) "low dot rejected" false bad.Certificate.feasible

let test_certificate_rejects_negative () =
  let inst, _ = Diagonal.scaled_identities [| 1.0 |] ~dim:2 in
  Alcotest.check_raises "negative weight"
    (Invalid_argument "Certificate: negative weight x_0") (fun () ->
      ignore (Certificate.check_dual inst [| -1.0 |]))

(* ------------------------------------------------------------------ *)
(* Normalize (Appendix A) *)

let random_general rng m n =
  let psd k =
    let g = Mat.init m (m + 1) (fun _ _ -> Rng.gaussian rng) in
    Mat.add (Mat.mul g (Mat.transpose g)) (Mat.scale k (Mat.identity m))
  in
  Instance.general ~objective:(psd 0.5)
    ~constraints:(Array.init n (fun _ -> (psd 0.0, 0.5 +. Rng.uniform rng)))

let test_normalize_preserves_feasibility () =
  let rng = Rng.create 13 in
  let g = random_general rng 5 4 in
  let norm = Normalize.normalize g in
  (* A feasible covering Z for the normalized program maps to a feasible Y
     for the original with equal objective. Use Z = c·I with c large
     enough. *)
  let inst = norm.Normalize.instance in
  let mats = Instance.dense_mats inst in
  let worst =
    Array.fold_left (fun acc b -> Float.min acc (Mat.trace b)) infinity mats
  in
  ignore worst;
  (* Z = c·I is feasible once c·λmin... use c = 1/min over i of λmin is
     fragile; instead use Z = c·I with c = max_i 1/(Bᵢ•I/…)…
     simpler: Bᵢ•(cI) = c·Tr Bᵢ >= 1 ⟺ c >= 1/minᵢ Tr Bᵢ — wrong
     direction for PSD dot; actually Bᵢ•I = Tr Bᵢ, so this is exact. *)
  let c = 1.0 /. Array.fold_left (fun acc b -> Float.min acc (Mat.trace b)) infinity mats in
  let z = Mat.scale c (Mat.identity 5) in
  (* Check normalized feasibility. *)
  Array.iteri
    (fun i b ->
      if Mat.dot b z < 1.0 -. 1e-9 then Alcotest.failf "Z infeasible at %d" i)
    mats;
  let y = Normalize.denormalize_primal norm z in
  (* Original feasibility: Aᵢ•Y >= bᵢ. *)
  Array.iteri
    (fun i (a, b) ->
      let d = Mat.dot a y in
      if d < b -. 1e-6 then
        Alcotest.failf "constraint %d: %g < %g after denormalize" i d b)
    g.Instance.constraints;
  (* Objective preserved: C•Y = Tr Z. *)
  Alcotest.(check (float 1e-6)) "objective"
    (Mat.trace z)
    (Normalize.primal_objective g y)

let test_normalize_dual_direction () =
  let rng = Rng.create 17 in
  let g = random_general rng 4 3 in
  let norm = Normalize.normalize g in
  let inst = norm.Normalize.instance in
  (* Any feasible normalized dual maps to a feasible original dual with
     equal value. *)
  let x_norm = (Certificate.rescale_dual inst [| 0.3; 0.3; 0.3 |]).Certificate.x in
  let x_orig = Normalize.denormalize_dual norm x_norm in
  (* Feasibility: Σ xᵢAᵢ ≼ C ⟺ λmax(C^{-1}-congruence) <= 1; verify via
     eigenvalues of L⁻¹(Σ xᵢAᵢ)L⁻ᵀ. *)
  let m = Mat.rows g.Instance.objective in
  let sum = Mat.create m m in
  Array.iteri
    (fun i (a, _) -> Mat.axpy sum ~alpha:x_orig.(i) a)
    g.Instance.constraints;
  let l = Cholesky.factor g.Instance.objective in
  let lmax = Eig.lambda_max (Cholesky.congruence ~l sum) in
  Alcotest.(check bool) "dual feasible in original" true (lmax <= 1.0 +. 1e-6);
  Alcotest.(check (float 1e-9)) "value preserved"
    (Util.sum_array x_norm)
    (Normalize.dual_objective g x_orig)

let test_normalize_factored_matches_dense () =
  (* The pre-factored Appendix-A path must produce the same normalized
     constraints as the dense congruence. *)
  let rng = Rng.create 211 in
  let m = 6 in
  let c =
    let g = Mat.init m (m + 1) (fun _ _ -> Rng.gaussian rng) in
    Mat.add (Mat.mul g (Mat.transpose g)) (Mat.scale 0.5 (Mat.identity m))
  in
  let factored_constraints =
    Array.init 3 (fun _ ->
        let q = Mat.init m 2 (fun _ _ -> Rng.gaussian rng) in
        (Psdp_sparse.Factored.of_dense_factor q, 0.5 +. Rng.uniform rng))
  in
  let dense_constraints =
    Array.map
      (fun (f, b) -> (Psdp_sparse.Factored.to_dense f, b))
      factored_constraints
  in
  let via_dense =
    Normalize.normalize
      { Instance.objective = c; constraints = dense_constraints }
  in
  let via_factored = Normalize.normalize_factored ~objective:c ~constraints:factored_constraints in
  let md = Instance.dense_mats via_dense.Normalize.instance in
  let mf = Instance.dense_mats via_factored.Normalize.instance in
  Array.iteri
    (fun i a ->
      if not (Mat.equal ~tol:1e-7 a mf.(i)) then
        Alcotest.failf "normalized constraint %d differs (err %g)" i
          (Mat.max_abs (Mat.sub a mf.(i))))
    md;
  (* The factored path must preserve thin inner dimensions. *)
  Array.iteri
    (fun i f ->
      Alcotest.(check int)
        (Printf.sprintf "rank preserved %d" i)
        2
        (Psdp_sparse.Factored.inner_dim f))
    (Instance.factors via_factored.Normalize.instance)

let test_normalize_rejects_singular_objective () =
  let g =
    Instance.general
      ~objective:(Mat.identity 3)
      ~constraints:[| (Mat.identity 3, 1.0) |]
  in
  ignore g;
  (* Build a general instance manually with a singular C: Instance.general
     itself accepts PSD C; Normalize must reject. *)
  let singular = Mat.outer [| 1.0; 0.0; 0.0 |] in
  match
    Normalize.normalize
      {
        Instance.objective = singular;
        constraints = [| (Mat.identity 3, 1.0) |];
      }
  with
  | (_ : Normalize.t) -> Alcotest.fail "accepted singular C"
  | exception Invalid_argument _ -> ()

let test_general_drops_zero_thresholds () =
  let g =
    Instance.general
      ~objective:(Mat.identity 2)
      ~constraints:[| (Mat.identity 2, 0.0); (Mat.identity 2, 1.0) |]
  in
  Alcotest.(check int) "b=0 dropped" 1 (Array.length g.Instance.constraints)

(* ------------------------------------------------------------------ *)
(* Analysis *)

let test_analysis_report () =
  let inst, opt = Diagonal.scaled_identities [| 0.5; 2.0 |] ~dim:4 in
  let r = Analysis.analyze ~eps:0.1 inst in
  Alcotest.(check int) "dim" 4 r.Analysis.dim;
  Alcotest.(check int) "n" 2 r.Analysis.constraints;
  Alcotest.(check (float 1e-9)) "width" 2.0 r.Analysis.width;
  Alcotest.(check bool) "bracket contains OPT" true
    (r.Analysis.opt_lower <= opt +. 1e-9 && r.Analysis.opt_upper >= opt -. 1e-9);
  Alcotest.(check bool) "caps positive" true
    (r.Analysis.paper_iteration_cap > 0 && r.Analysis.taylor_degree_cap > 0);
  (* Pretty-printer runs without raising. *)
  ignore (Format.asprintf "%a" Analysis.pp r)

let test_analysis_bracket_always_valid () =
  let rng = Rng.create 227 in
  for _ = 1 to 5 do
    let inst = Random_psd.factored ~rng ~dim:6 ~n:4 ~rank:2 () in
    let r = Analysis.analyze inst in
    let solved = Solver.solve_packing ~eps:0.2 inst in
    if solved.Solver.value > r.Analysis.opt_upper *. (1.0 +. 1e-6) then
      Alcotest.failf "a-priori upper %g below verified value %g"
        r.Analysis.opt_upper solved.Solver.value;
    if solved.Solver.upper_bound < r.Analysis.opt_lower *. (1.0 -. 1e-6) then
      Alcotest.failf "a-priori lower %g above verified upper %g"
        r.Analysis.opt_lower solved.Solver.upper_bound
  done

(* ------------------------------------------------------------------ *)
(* Evaluator *)

let test_evaluator_exact_vs_identity_sketch () =
  (* With the identity sketch the sketched evaluator's only deviation from
     the exact one is the polynomial truncation, bounded by eps/2. *)
  let rng = Rng.create 223 in
  let inst = Random_psd.factored ~rng ~dim:9 ~n:4 ~rank:3 () in
  let params = Params.of_eps ~eps:0.05 ~n:4 in
  let exact = Evaluator.create ~backend:Decision.Exact ~params inst in
  let sketched =
    Evaluator.create
      ~backend:(Decision.Sketched { seed = 3; sketch_dim = Some 1000 })
      ~params inst
  in
  let x = Array.map (fun v -> 3.0 *. v) (Decision.initial_point inst) in
  let e = exact x and s = sketched x in
  Array.iteri
    (fun i d ->
      let rel = Float.abs (s.Evaluator.dots.(i) -. d) /. d in
      if rel > 0.05 then Alcotest.failf "evaluator dot %d rel err %g" i rel)
    e.Evaluator.dots;
  let tr_rel =
    Float.abs (s.Evaluator.trace_w -. e.Evaluator.trace_w) /. e.Evaluator.trace_w
  in
  if tr_rel > 0.05 then Alcotest.failf "trace rel err %g" tr_rel;
  (match e.Evaluator.w with
  | Some w ->
      Alcotest.(check (float 1e-9)) "trace consistent" (Mat.trace w)
        e.Evaluator.trace_w
  | None -> Alcotest.fail "exact evaluator must materialize W");
  Alcotest.(check bool) "sketched has no W" true (s.Evaluator.w = None)

let test_evaluator_spiked_spectrum_clamped_degree () =
  (* Regression: a spiked λmax estimate (huge weights) must not inflate
     the degree-selection interval past the tracked Lemma-3.2 bound.
     The clamped estimate equals the analytic cap exactly, so the
     selected degree matches the cap's own degree. *)
  let rng = Rng.create 229 in
  let inst = Random_psd.factored ~rng ~dim:8 ~n:3 ~rank:2 () in
  let params = Params.of_eps ~eps:0.3 ~n:3 in
  let sketched =
    Evaluator.create
      ~backend:(Decision.Sketched { seed = 5; sketch_dim = Some 4 })
      ~params inst
  in
  let analytic_cap =
    (1.0 +. (10.0 *. params.Params.eps)) *. params.Params.k_cap
  in
  let half_kappa = 0.5 *. Float.max 1.0 analytic_cap in
  let poly_eps = params.Params.eps /. 4.0 in
  let cap_degree =
    match Psdp_expm.Poly.chebyshev_certified ~kappa:half_kappa ~eps:poly_eps with
    | Some (d, _) -> d
    | None -> Psdp_expm.Poly.degree ~kappa:half_kappa ~eps:poly_eps
  in
  let spiked = Array.make 3 1e12 in
  let e = sketched spiked in
  Alcotest.(check int) "degree clamped to the analytic cap" cap_degree
    e.Evaluator.degree

(* ------------------------------------------------------------------ *)
(* Decision (Algorithm 3.1) *)

let test_initial_point_claim_3_3 () =
  (* Claim 3.3: Σᵢ x⁰ᵢ Aᵢ ≼ I. *)
  let rng = Rng.create 19 in
  let inst = Random_psd.factored ~rng ~dim:8 ~n:5 ~rank:3 () in
  let x0 = Decision.initial_point inst in
  let lmax = Certificate.psi_lambda_max inst x0 in
  Alcotest.(check bool) "Psi(0) <= I" true (lmax <= 1.0 +. 1e-9)

let check_decision_outcome inst eps (res : Decision.result) =
  match res.Decision.outcome with
  | Decision.Dual { x; _ } ->
      let cert = Certificate.check_dual ~tol:1e-6 inst x in
      Alcotest.(check bool) "dual feasible" true cert.Certificate.feasible;
      Alcotest.(check bool)
        (Printf.sprintf "dual value %g >= 1 - eps" cert.Certificate.value)
        true
        (cert.Certificate.value >= 1.0 -. eps -. 1e-9)
  | Decision.Primal { dots; _ } ->
      Alcotest.(check bool) "primal min dot" true
        (Util.min_array dots >= 1.0 -. eps -. 1e-9)

let test_decision_feasible_side () =
  (* Scale an instance so OPT >> 1: the dual side must fire. *)
  let rng = Rng.create 23 in
  let inst, opt = Known_opt.orthogonal_projectors ~rng ~dim:8 ~n:4 in
  let eps = 0.2 in
  (* Scaling the matrices by v divides the optimum by v: v = opt/2 gives
     OPT_scaled = 2, comfortably feasible. *)
  let scaled = Instance.scale (opt /. 2.0) inst in
  let res = Decision.solve ~eps scaled in
  (match res.Decision.outcome with
  | Decision.Dual _ -> ()
  | Decision.Primal _ -> Alcotest.fail "expected a dual outcome");
  check_decision_outcome scaled eps res

let test_decision_infeasible_side () =
  (* Scale so OPT << 1: the primal side must fire. *)
  let rng = Rng.create 29 in
  let inst, opt = Known_opt.orthogonal_projectors ~rng ~dim:8 ~n:4 in
  let eps = 0.2 in
  (* v = opt/0.25 drives the optimum down to 1/4 < 1 − ε. *)
  let scaled = Instance.scale (opt /. 0.25) inst in
  let res = Decision.solve ~eps scaled in
  (match res.Decision.outcome with
  | Decision.Primal _ -> ()
  | Decision.Dual _ -> Alcotest.fail "expected a primal outcome");
  check_decision_outcome scaled eps res

let test_decision_faithful_mode () =
  (* Faithful mode on a clearly-feasible instance exits through the
     ‖x‖₁ > K condition with the paper's scaled dual. *)
  let rng = Rng.create 31 in
  let inst, opt = Known_opt.rank_one_orthonormal ~rng ~dim:6 ~n:3 in
  let eps = 0.3 in
  let scaled = Instance.scale (opt /. 2.0) inst in
  let res = Decision.solve ~mode:Decision.Faithful ~eps scaled in
  check_decision_outcome scaled (10.0 *. eps) res;
  Alcotest.(check bool) "within R" true
    (res.Decision.iterations <= res.Decision.params.Params.r_cap)

let test_decision_spectrum_bound_lemma_3_2 () =
  (* Lemma 3.2: λmax(Ψ⁽ᵗ⁾) <= (1+10ε)K along the whole trajectory. *)
  let rng = Rng.create 37 in
  let inst = Random_psd.factored ~rng ~dim:6 ~n:4 ~rank:2 () in
  let eps = 0.3 in
  let scaled = Instance.scale 0.9 inst in
  let params = Params.of_eps ~eps ~n:4 in
  let cap = (1.0 +. (10.0 *. eps)) *. params.Params.k_cap in
  let weights_history = ref [] in
  let res =
    Decision.solve ~mode:Decision.Faithful ~eps
      ~on_iter:(fun s -> weights_history := s.Decision.l1 :: !weights_history)
      scaled
  in
  ignore res;
  (* The ℓ₁ cap implies the spectral cap through the trajectory; check the
     recorded ℓ₁ values against Claim 3.5 (‖x‖₁ <= (1+ε)K). *)
  List.iter
    (fun l1 ->
      if l1 > (1.0 +. eps) *. params.Params.k_cap +. 1e-9 then
        Alcotest.failf "Claim 3.5 violated: %g" l1)
    !weights_history;
  ignore cap

let test_decision_sketched_agrees () =
  let rng = Rng.create 41 in
  let inst = Beamforming.instance ~rng ~antennas:8 ~users:5 () in
  let scaled = Instance.scale 0.4 inst in
  let eps = 0.2 in
  let r_exact = Decision.solve ~eps ~backend:Decision.Exact scaled in
  let r_sketch =
    Decision.solve ~eps
      ~backend:(Decision.Sketched { seed = 1; sketch_dim = None })
      scaled
  in
  check_decision_outcome scaled eps r_exact;
  check_decision_outcome scaled eps r_sketch

let test_decision_primal_trace_one () =
  let rng = Rng.create 43 in
  let inst, opt = Known_opt.orthogonal_projectors ~rng ~dim:6 ~n:3 in
  let scaled = Instance.scale (opt /. 0.2) inst in
  let res = Decision.solve ~eps:0.2 scaled in
  match res.Decision.outcome with
  | Decision.Primal { y = Some y; _ } ->
      Alcotest.(check (float 1e-6)) "Tr Y = 1" 1.0 (Mat.trace y);
      let cert = Certificate.check_primal ~tol:0.21 scaled y in
      Alcotest.(check bool) "materialized Y feasible" true
        cert.Certificate.feasible
  | Decision.Primal { y = None; _ } -> Alcotest.fail "exact backend must give Y"
  | Decision.Dual _ -> Alcotest.fail "expected primal"

let test_decision_width_independence_smoke () =
  (* Iteration counts must stay flat as the width grows (EXP3 in full). *)
  let iters width =
    let rng = Rng.create 47 in
    let inst = Random_psd.with_width ~rng ~dim:8 ~n:5 ~width in
    (* Solve near OPT/2 so neither exit is instant. *)
    let r = Solver.solve_packing ~eps:0.3 inst in
    (* v = 2·OPT puts the threshold at OPT/2 so neither exit is instant. *)
    let scaled = Instance.scale (2.0 *. r.Solver.value) inst in
    (Decision.solve ~eps:0.3 scaled).Decision.iterations
  in
  let i1 = iters 1.0 and i100 = iters 100.0 in
  if float_of_int i100 > 4.0 *. float_of_int i1 +. 100.0 then
    Alcotest.failf "width dependence detected: %d -> %d iterations" i1 i100

(* ------------------------------------------------------------------ *)
(* Solver (approxPSDP) *)

let check_packing_result inst eps opt (r : Solver.packing_result) =
  let cert = Certificate.check_dual ~tol:1e-5 inst r.Solver.x in
  Alcotest.(check bool) "returned x feasible" true cert.Certificate.feasible;
  Alcotest.(check (float 1e-9)) "value consistent" r.Solver.value
    cert.Certificate.value;
  (match opt with
  | Some opt ->
      Alcotest.(check bool)
        (Printf.sprintf "value %g >= (1-eps)·OPT %g" r.Solver.value opt)
        true
        (r.Solver.value >= ((1.0 -. eps) *. opt) -. 1e-6);
      Alcotest.(check bool)
        (Printf.sprintf "upper %g >= OPT %g" r.Solver.upper_bound opt)
        true
        (r.Solver.upper_bound >= opt -. (0.05 *. opt) -. 1e-6)
  | None -> ());
  Alcotest.(check bool) "bracket ordered" true
    (r.Solver.upper_bound >= r.Solver.value -. 1e-9)

let test_solver_known_opt_projectors () =
  let rng = Rng.create 53 in
  let inst, opt = Known_opt.orthogonal_projectors ~rng ~dim:10 ~n:5 in
  let eps = 0.15 in
  let r = Solver.solve_packing ~eps inst in
  check_packing_result inst eps (Some opt) r

let test_solver_known_opt_rank_one () =
  let rng = Rng.create 59 in
  let inst, opt = Known_opt.rank_one_orthonormal ~rng ~dim:8 ~n:4 in
  let r = Solver.solve_packing ~eps:0.15 inst in
  check_packing_result inst 0.15 (Some opt) r

let test_solver_known_opt_weighted () =
  let rng = Rng.create 61 in
  let inst, opt =
    Known_opt.weighted_projectors ~rng ~dim:9 ~weights:[| 0.5; 1.0; 4.0 |]
  in
  let r = Solver.solve_packing ~eps:0.15 inst in
  check_packing_result inst 0.15 (Some opt) r

let test_solver_simplex_corner () =
  let inst, opt = Known_opt.simplex_corner ~dim:6 in
  let r = Solver.solve_packing ~eps:0.15 inst in
  check_packing_result inst 0.15 (Some opt) r

let test_solver_single_constraint () =
  (* n = 1: bracket collapses, zero decision calls. *)
  let inst, opt = Diagonal.scaled_identities [| 0.8 |] ~dim:3 in
  let r = Solver.solve_packing ~eps:0.1 inst in
  Alcotest.(check (float 1e-9)) "exact" opt r.Solver.value;
  Alcotest.(check int) "no calls" 0 r.Solver.decision_calls

let test_solver_cycle_edge_packing () =
  let n = 8 in
  let inst = Graph_packing.edge_packing (Graph.cycle n) in
  let opt = Graph_packing.edge_packing_opt_cycle n in
  let r = Solver.solve_packing ~eps:0.15 inst in
  check_packing_result inst 0.15 (Some opt) r

let test_solver_beamforming_bracket () =
  let rng = Rng.create 67 in
  let inst = Beamforming.instance ~rng ~antennas:10 ~users:6 () in
  let eps = 0.2 in
  let r = Solver.solve_packing ~eps inst in
  check_packing_result inst eps None r;
  Alcotest.(check bool) "gap closed" true
    (r.Solver.upper_bound <= (1.0 +. eps) *. r.Solver.value +. 1e-9)

let test_solver_sketched_backend () =
  let rng = Rng.create 71 in
  let inst, opt = Known_opt.orthogonal_projectors ~rng ~dim:8 ~n:4 in
  let r =
    Solver.solve_packing ~eps:0.2
      ~backend:(Decision.Sketched { seed = 5; sketch_dim = None })
      inst
  in
  check_packing_result inst 0.2 (Some opt) r

let test_solver_covering_witness () =
  (* Beamforming channels overlap, so the a-priori upper bracket is loose
     and the bisection must take primal (upper-bound) steps — giving us a
     covering witness to verify. (Projector families have a tight sum
     bound and never need one.) *)
  let rng = Rng.create 73 in
  let inst = Beamforming.instance ~rng ~antennas:8 ~users:6 () in
  let r = Solver.solve_packing ~eps:0.15 inst in
  match r.Solver.primal_z with
  | Some z ->
      (* Z is a covering witness: Aᵢ•Z >= 1 for kept constraints and
         Tr Z ≈ the certified upper bound. *)
      let cert = Certificate.check_primal ~tol:1e-6 inst z in
      Alcotest.(check bool) "covering feasible" true
        (cert.Certificate.min_dot >= 1.0 -. 1e-6);
      Alcotest.(check bool) "trace bounded by certified upper bound" true
        (Mat.trace z <= r.Solver.upper_bound *. (1.0 +. 1e-9) +. 1e-9)
  | None -> Alcotest.fail "expected a primal step to have produced Z"

let test_solve_covering () =
  (* Projectors: covering OPT = packing OPT = n, and the identity
     fallback witness is exactly optimal (Tr(I/min_tr) = dim/rank = n). *)
  let rng = Rng.create 107 in
  let inst, opt = Known_opt.orthogonal_projectors ~rng ~dim:12 ~n:4 in
  let r = Solver.solve_covering ~eps:0.15 inst in
  let cert = Certificate.check_primal inst r.Solver.z in
  Alcotest.(check bool) "witness feasible" true
    (cert.Certificate.min_dot >= 1.0 -. 1e-6);
  Alcotest.(check (float 1e-6)) "objective = Tr Z" (Mat.trace r.Solver.z)
    r.Solver.objective;
  Alcotest.(check bool) "objective >= OPT" true
    (r.Solver.objective >= opt -. 1e-6);
  Alcotest.(check bool) "weak duality" true
    (r.Solver.lower_bound <= r.Solver.objective +. 1e-9);
  (* On beamforming the primal bisection witness should beat (or match)
     the identity fallback. *)
  let bf = Beamforming.instance ~rng ~antennas:8 ~users:6 () in
  let rb = Solver.solve_covering ~eps:0.15 bf in
  let certb = Certificate.check_primal bf rb.Solver.z in
  Alcotest.(check bool) "bf witness feasible" true
    (certb.Certificate.min_dot >= 1.0 -. 1e-6);
  Alcotest.(check bool) "bf bracket sane" true
    (rb.Solver.lower_bound <= rb.Solver.objective +. 1e-9);
  Alcotest.check_raises "sketched rejected"
    (Invalid_argument
       "Solver.solve_covering: the covering witness requires the exact backend")
    (fun () ->
      ignore
        (Solver.solve_covering
           ~backend:(Decision.Sketched { seed = 1; sketch_dim = None })
           ~eps:0.15 bf))

let test_solve_general_end_to_end () =
  let rng = Rng.create 79 in
  let g = random_general rng 5 4 in
  let r = Solver.solve_general ~eps:0.2 g in
  (* Weak duality on the original program: dual value <= primal value. *)
  (match r.Solver.objective_value with
  | Some obj ->
      Alcotest.(check bool) "weak duality" true
        (r.Solver.dual_value <= obj +. 1e-6);
      (* Primal feasibility of the denormalized Y. *)
      (match r.Solver.y with
      | Some y ->
          Array.iteri
            (fun i (a, b) ->
              if Mat.dot a y < b -. (1e-5 *. b) then
                Alcotest.failf "original constraint %d violated" i)
            g.Instance.constraints
      | None -> Alcotest.fail "expected materialized Y")
  | None -> Alcotest.fail "expected objective value");
  (* Approximate optimality: gap within packing bracket. *)
  Alcotest.(check bool) "values bracket" true
    (r.Solver.dual_value <= r.Solver.packing.Solver.upper_bound +. 1e-6)

let test_solver_laplacian_covering_pipeline () =
  let g = Graph_packing.laplacian_covering (Graph.cycle 5) in
  let r = Solver.solve_general ~eps:0.25 g in
  match (r.Solver.y, r.Solver.objective_value) with
  | Some y, Some obj ->
      Array.iteri
        (fun i (a, b) ->
          if Mat.dot a y < b -. 1e-5 then Alcotest.failf "Y_%d%d < 1" i i)
        g.Instance.constraints;
      Alcotest.(check bool) "objective positive" true (obj > 0.0)
  | _ -> Alcotest.fail "missing primal"

(* ------------------------------------------------------------------ *)
(* Baseline *)

let test_baseline_feasible_side () =
  let rng = Rng.create 83 in
  let inst, opt = Known_opt.orthogonal_projectors ~rng ~dim:8 ~n:4 in
  let scaled = Instance.scale (opt /. 2.0) inst in
  let r = Baseline.decide ~eps:0.2 scaled in
  match r.Baseline.outcome with
  | Baseline.Feasible { x } ->
      let cert = Certificate.check_dual ~tol:1e-5 scaled x in
      Alcotest.(check bool) "feasible" true cert.Certificate.feasible;
      Alcotest.(check bool) "value" true (cert.Certificate.value >= 0.8 -. 1e-9)
  | Baseline.Infeasible _ -> Alcotest.fail "expected feasible"

let test_baseline_infeasible_side () =
  let rng = Rng.create 89 in
  let inst, opt = Known_opt.orthogonal_projectors ~rng ~dim:8 ~n:4 in
  (* OPT scaled down to 0.4 < 1: no unit-mass dual exists. *)
  let scaled = Instance.scale (opt /. 0.4) inst in
  let r = Baseline.decide ~eps:0.1 scaled in
  match r.Baseline.outcome with
  | Baseline.Infeasible { y } ->
      Alcotest.(check (float 1e-6)) "Tr y = 1" 1.0 (Mat.trace y);
      let cert = Certificate.check_primal ~tol:2.0 scaled y in
      Alcotest.(check bool) "all dots exceed 1" true
        (cert.Certificate.min_dot > 1.0)
  | Baseline.Feasible _ -> Alcotest.fail "expected infeasible"

let test_baseline_maximize () =
  let rng = Rng.create 109 in
  let inst, opt = Known_opt.orthogonal_projectors ~rng ~dim:8 ~n:4 in
  let r = Baseline.maximize ~eps:0.2 inst in
  let cert = Certificate.check_dual ~tol:1e-5 inst r.Baseline.x in
  Alcotest.(check bool) "feasible" true cert.Certificate.feasible;
  Alcotest.(check bool) "value near OPT" true
    (r.Baseline.value >= (0.8 *. opt) -. 1e-6);
  Alcotest.(check bool) "upper covers OPT" true
    (r.Baseline.upper_bound >= opt -. (0.05 *. opt))

let test_baseline_width_dependence () =
  (* The baseline's iteration budget grows with width: verify the budget
     relation (the actual EXP3 bench measures real iterations). *)
  let rng = Rng.create 97 in
  let narrow = Random_psd.with_width ~rng ~dim:6 ~n:4 ~width:1.0 in
  let wide = Random_psd.with_width ~rng ~dim:6 ~n:4 ~width:50.0 in
  Alcotest.(check bool) "width recorded" true
    (Instance.width wide > 10.0 *. Instance.width narrow)

(* ------------------------------------------------------------------ *)
(* Lp *)

let test_lp_decide_feasible () =
  (* 2 variables, M = [[1, 0.5]]: OPT = max x1+x2 st x1 + 0.5 x2 <= 1 = 2. *)
  let t = Lp.create ~rows:1 ~cols:[| [| 1.0 |]; [| 0.5 |] |] in
  let r = Lp.decide ~eps:0.2 t in
  match r.Lp.outcome with
  | Lp.Dual { x } ->
      Alcotest.(check bool) "feasible" true (Lp.feasible t x);
      Alcotest.(check bool) "value" true (Lp.value x >= 0.8 -. 1e-9)
  | Lp.Primal _ -> Alcotest.fail "expected dual"

let test_lp_maximize_known () =
  let t = Lp.create ~rows:1 ~cols:[| [| 1.0 |]; [| 0.5 |] |] in
  let r = Lp.maximize ~eps:0.1 t in
  Alcotest.(check bool) "near 2" true (r.Lp.value >= 1.8 && r.Lp.value <= 2.0 +. 1e-9);
  Alcotest.(check bool) "upper" true (r.Lp.upper_bound >= 2.0 -. 0.2)

let test_lp_matches_sdp_on_diagonal () =
  (* The headline consistency check: diagonal SDPs are LPs. *)
  let rng = Rng.create 101 in
  let inst = Diagonal.random ~rng ~dim:6 ~n:5 () in
  let eps = 0.15 in
  let sdp = Solver.solve_packing ~eps inst in
  let lp = Lp.maximize ~eps (Lp.of_diagonal_instance inst) in
  (* Both are (1±eps)-approximations of the same optimum. *)
  let lo = Float.max sdp.Solver.value lp.Lp.value in
  let hi = Float.min sdp.Solver.upper_bound lp.Lp.upper_bound in
  if lo > hi *. (1.0 +. 1e-6) then
    Alcotest.failf "SDP [%g, %g] and LP [%g, %g] brackets are disjoint"
      sdp.Solver.value sdp.Solver.upper_bound lp.Lp.value lp.Lp.upper_bound

let test_lp_rejects_non_diagonal () =
  let rng = Rng.create 103 in
  let inst = Random_psd.factored ~rng ~dim:4 ~n:2 ~rank:2 () in
  match Lp.of_diagonal_instance inst with
  | (_ : Lp.t) -> Alcotest.fail "accepted non-diagonal instance"
  | exception Invalid_argument _ -> ()

let test_lp_validation () =
  Alcotest.check_raises "negative entry"
    (Invalid_argument "Lp.create: negative entry in column 0") (fun () ->
      ignore (Lp.create ~rows:1 ~cols:[| [| -1.0 |] |]));
  Alcotest.check_raises "zero column"
    (Invalid_argument "Lp.create: column 0 is zero") (fun () ->
      ignore (Lp.create ~rows:2 ~cols:[| [| 0.0; 0.0 |] |]))

(* ------------------------------------------------------------------ *)
(* Properties *)

let prop_solver_bracket_valid =
  QCheck.Test.make ~name:"solver bracket contains a verified value" ~count:8
    (QCheck.int_bound 1_000_000) (fun seed ->
      let rng = Rng.create seed in
      let inst = Random_psd.factored ~rng ~dim:6 ~n:4 ~rank:2 () in
      let r = Solver.solve_packing ~eps:0.3 inst in
      let cert = Certificate.check_dual ~tol:1e-5 inst r.Solver.x in
      cert.Certificate.feasible
      && r.Solver.upper_bound >= r.Solver.value -. 1e-9)

let prop_decision_certificates =
  QCheck.Test.make ~name:"decision outcomes verify" ~count:8
    (QCheck.pair (QCheck.int_bound 1_000_000) (QCheck.float_range 0.3 2.0))
    (fun (seed, scale_) ->
      let rng = Rng.create seed in
      let inst = Random_psd.factored ~rng ~dim:5 ~n:3 ~rank:2 () in
      let scaled = Instance.scale scale_ inst in
      let eps = 0.3 in
      let res = Decision.solve ~eps scaled in
      match res.Decision.outcome with
      | Decision.Dual { x; _ } ->
          let cert = Certificate.check_dual ~tol:1e-5 scaled x in
          cert.Certificate.feasible && cert.Certificate.value >= 1.0 -. eps -. 1e-9
      | Decision.Primal { dots; _ } ->
          Util.min_array dots >= 1.0 -. eps -. 1e-9)

let prop_scaling_inverts_opt =
  (* OPT(v·A) = OPT(A)/v: the verified brackets must respect it. *)
  QCheck.Test.make ~name:"instance scaling inverts the optimum" ~count:5
    (QCheck.pair (QCheck.int_bound 1_000_000) (QCheck.float_range 0.5 3.0))
    (fun (seed, v) ->
      let rng = Rng.create seed in
      let inst = Random_psd.factored ~rng ~dim:6 ~n:3 ~rank:2 () in
      let r1 = Solver.solve_packing ~eps:0.25 inst in
      let r2 = Solver.solve_packing ~eps:0.25 (Instance.scale v inst) in
      (* Brackets of OPT and OPT/v: scaled-up r2 bracket must intersect
         r1's divided by v. *)
      let lo = Float.max r1.Solver.value (v *. r2.Solver.value) in
      let hi = Float.min r1.Solver.upper_bound (v *. r2.Solver.upper_bound) in
      lo <= hi *. (1.0 +. 1e-6))

let qcheck_cases =
  List.map
    Qa_harness.to_alcotest
    [ prop_solver_bracket_valid; prop_decision_certificates; prop_scaling_inverts_opt ]

let () =
  Alcotest.run "core"
    [
      ( "params",
        [
          Alcotest.test_case "formulas" `Quick test_params_formulas;
          Alcotest.test_case "eps scaling" `Quick test_params_scaling_in_eps;
          Alcotest.test_case "validation" `Quick test_params_validation;
        ] );
      ( "instance",
        [
          Alcotest.test_case "validation" `Quick test_instance_validation;
          Alcotest.test_case "width" `Quick test_instance_width;
          Alcotest.test_case "scale" `Quick test_instance_scale;
        ] );
      ( "certificate",
        [
          Alcotest.test_case "dual" `Quick test_certificate_dual;
          Alcotest.test_case "rescale" `Quick test_certificate_rescale;
          Alcotest.test_case "lanczos vs dense" `Quick
            test_certificate_lanczos_matches_dense;
          Alcotest.test_case "primal" `Quick test_certificate_primal;
          Alcotest.test_case "rejects negative" `Quick
            test_certificate_rejects_negative;
        ] );
      ( "normalize",
        [
          Alcotest.test_case "primal direction" `Quick
            test_normalize_preserves_feasibility;
          Alcotest.test_case "dual direction" `Quick
            test_normalize_dual_direction;
          Alcotest.test_case "factored path matches" `Quick
            test_normalize_factored_matches_dense;
          Alcotest.test_case "rejects singular C" `Quick
            test_normalize_rejects_singular_objective;
          Alcotest.test_case "drops b=0" `Quick test_general_drops_zero_thresholds;
        ] );
      ( "analysis",
        [
          Alcotest.test_case "report" `Quick test_analysis_report;
          Alcotest.test_case "bracket valid" `Quick
            test_analysis_bracket_always_valid;
        ] );
      ( "evaluator",
        [
          Alcotest.test_case "exact vs identity sketch" `Quick
            test_evaluator_exact_vs_identity_sketch;
          Alcotest.test_case "spiked spectrum clamps degree" `Quick
            test_evaluator_spiked_spectrum_clamped_degree;
        ] );
      ( "decision",
        [
          Alcotest.test_case "claim 3.3 initial point" `Quick
            test_initial_point_claim_3_3;
          Alcotest.test_case "feasible side" `Quick test_decision_feasible_side;
          Alcotest.test_case "infeasible side" `Quick
            test_decision_infeasible_side;
          Alcotest.test_case "faithful mode" `Quick test_decision_faithful_mode;
          Alcotest.test_case "claim 3.5 l1 cap" `Quick
            test_decision_spectrum_bound_lemma_3_2;
          Alcotest.test_case "sketched agrees" `Quick
            test_decision_sketched_agrees;
          Alcotest.test_case "primal trace 1" `Quick
            test_decision_primal_trace_one;
          Alcotest.test_case "width independence smoke" `Slow
            test_decision_width_independence_smoke;
        ] );
      ( "solver",
        [
          Alcotest.test_case "projectors" `Quick test_solver_known_opt_projectors;
          Alcotest.test_case "rank one" `Quick test_solver_known_opt_rank_one;
          Alcotest.test_case "weighted projectors" `Quick
            test_solver_known_opt_weighted;
          Alcotest.test_case "simplex corner" `Quick test_solver_simplex_corner;
          Alcotest.test_case "single constraint" `Quick
            test_solver_single_constraint;
          Alcotest.test_case "cycle edge packing" `Quick
            test_solver_cycle_edge_packing;
          Alcotest.test_case "beamforming bracket" `Quick
            test_solver_beamforming_bracket;
          Alcotest.test_case "sketched backend" `Quick
            test_solver_sketched_backend;
          Alcotest.test_case "covering witness" `Quick
            test_solver_covering_witness;
          Alcotest.test_case "solve_covering" `Quick test_solve_covering;
          Alcotest.test_case "general end-to-end" `Quick
            test_solve_general_end_to_end;
          Alcotest.test_case "laplacian covering" `Quick
            test_solver_laplacian_covering_pipeline;
        ] );
      ( "baseline",
        [
          Alcotest.test_case "feasible side" `Quick test_baseline_feasible_side;
          Alcotest.test_case "infeasible side" `Quick
            test_baseline_infeasible_side;
          Alcotest.test_case "maximize" `Quick test_baseline_maximize;
          Alcotest.test_case "width recorded" `Quick
            test_baseline_width_dependence;
        ] );
      ( "lp",
        [
          Alcotest.test_case "decide feasible" `Quick test_lp_decide_feasible;
          Alcotest.test_case "maximize known" `Quick test_lp_maximize_known;
          Alcotest.test_case "matches SDP on diagonal" `Quick
            test_lp_matches_sdp_on_diagonal;
          Alcotest.test_case "rejects non-diagonal" `Quick
            test_lp_rejects_non_diagonal;
          Alcotest.test_case "validation" `Quick test_lp_validation;
        ] );
      ("properties", qcheck_cases);
    ]
