(* Tests for the JL sketch, the Lemma-4.2 polynomial, and the Theorem-4.1
   bigDotExp primitive. *)

open Psdp_prelude
open Psdp_linalg
open Psdp_sparse
open Psdp_sketch
open Psdp_expm

let random_psd rng n scale_ =
  let g = Mat.init n (n + 2) (fun _ _ -> Rng.gaussian rng) in
  Mat.scale scale_ (Mat.mul g (Mat.transpose g))

let random_factored rng dim rank =
  let entries = ref [ (0, 0, 1.0) ] in
  for i = 0 to dim - 1 do
    for j = 0 to rank - 1 do
      if Rng.uniform rng < 0.5 then
        entries := (i, j, Rng.gaussian rng) :: !entries
    done
  done;
  Factored.of_csr (Csr.of_coo ~rows:dim ~cols:rank !entries)

(* ------------------------------------------------------------------ *)
(* Jl *)

let test_jl_dimensions () =
  let rng = Rng.create 2 in
  let s = Jl.create ~rng ~target_dim:5 ~source_dim:20 in
  Alcotest.(check int) "target" 5 (Jl.target_dim s);
  Alcotest.(check int) "source" 20 (Jl.source_dim s);
  Alcotest.(check int) "apply length" 5 (Array.length (Jl.apply s (Array.make 20 1.0)))

let test_jl_identity_exact () =
  let s = Jl.identity 7 in
  let rng = Rng.create 3 in
  let v = Rng.gaussian_array rng 7 in
  Alcotest.(check (float 1e-12)) "identity preserves norm" (Vec.dot v v)
    (Jl.norm_sq_estimate s v)

let test_jl_unbiased () =
  (* Average of many independent sketches converges to the true norm. *)
  let rng = Rng.create 5 in
  let v = Rng.gaussian_array rng 30 in
  let truth = Vec.dot v v in
  let total = ref 0.0 in
  let trials = 400 in
  for _ = 1 to trials do
    let s = Jl.create ~rng ~target_dim:8 ~source_dim:30 in
    total := !total +. Jl.norm_sq_estimate s v
  done;
  let mean = !total /. float_of_int trials in
  if Float.abs (mean -. truth) > 0.12 *. truth then
    Alcotest.failf "JL biased: mean %g vs %g" mean truth

let test_jl_concentration () =
  (* With k = recommended_dim eps, the relative error should be << 3 eps
     for most vectors. *)
  let rng = Rng.create 7 in
  let m = 50 and eps = 0.25 in
  let k = Jl.recommended_dim ~eps m in
  let failures = ref 0 in
  let trials = 100 in
  for _ = 1 to trials do
    let v = Rng.gaussian_array rng m in
    let s = Jl.create ~rng ~target_dim:k ~source_dim:m in
    let est = Jl.norm_sq_estimate s v in
    let truth = Vec.dot v v in
    if Float.abs (est -. truth) > 3.0 *. eps *. truth then incr failures
  done;
  if !failures > 5 then
    Alcotest.failf "JL concentration: %d/%d outside 3eps" !failures trials

let test_jl_rejects_bad_dims () =
  let rng = Rng.create 11 in
  Alcotest.check_raises "zero target"
    (Invalid_argument "Jl.create: dimensions must be positive") (fun () ->
      ignore (Jl.create ~rng ~target_dim:0 ~source_dim:5));
  Alcotest.check_raises "bad eps"
    (Invalid_argument "Jl.recommended_dim: eps must be positive") (fun () ->
      ignore (Jl.recommended_dim ~eps:0.0 5))

(* ------------------------------------------------------------------ *)
(* Poly (Lemma 4.2) *)

let test_poly_degree_formula () =
  (* k = max(e²·max(1,κ), ln(2/ε)) rounded up. *)
  let d = Poly.degree ~kappa:1.0 ~eps:0.5 in
  Alcotest.(check int) "kappa 1" (int_of_float (Float.ceil (exp 2.0))) d;
  let d2 = Poly.degree ~kappa:10.0 ~eps:0.5 in
  Alcotest.(check int) "kappa 10" (int_of_float (Float.ceil (10.0 *. exp 2.0))) d2;
  (* Tiny kappa: the ln(2/eps) branch and the e²·1 floor compete. *)
  let d3 = Poly.degree ~kappa:0.0 ~eps:0.5 in
  Alcotest.(check bool) "floor" true (d3 >= int_of_float (log (2.0 /. 0.5)))

let test_poly_degree_validation () =
  Alcotest.check_raises "negative kappa"
    (Invalid_argument "Poly.degree: kappa must be finite and non-negative")
    (fun () -> ignore (Poly.degree ~kappa:(-1.0) ~eps:0.1));
  Alcotest.check_raises "eps out of range"
    (Invalid_argument "Poly.degree: eps must lie in (0,1)") (fun () ->
      ignore (Poly.degree ~kappa:1.0 ~eps:1.5))

let test_poly_matches_exp_on_psd () =
  let rng = Rng.create 13 in
  List.iter
    (fun scale_ ->
      let a = random_psd rng 8 scale_ in
      let kappa = Eig.lambda_max a in
      let v = Rng.gaussian_array rng 8 in
      let eps = 0.01 in
      let approx = Poly.apply_exp ~matvec:(Mat.gemv a) ~kappa ~eps v in
      let exact = Mat.gemv (Matfun.expm a) v in
      (* Lemma 4.2: (1−ε)exp(B) ≼ p̂ ≼ exp(B); on vectors, compare norms
         of the difference against the norm of the exact result. *)
      let err = Vec.norm2 (Vec.sub approx exact) /. Vec.norm2 exact in
      if err > eps then
        Alcotest.failf "poly error %g > %g at scale %g" err eps scale_)
    [ 0.05; 0.2; 0.5 ]

let test_poly_sandwich () =
  (* The operator inequality (1−ε)exp(B) ≼ p̂(B) ≼ exp(B) checked on the
     spectrum of a commuting pair: evaluate on eigenvectors. *)
  let rng = Rng.create 17 in
  let a = random_psd rng 6 0.3 in
  let { Eig.values; vectors } = Eig.symmetric a in
  let eps = 0.05 in
  let kappa = values.(0) in
  let degree = Poly.degree ~kappa ~eps in
  for i = 0 to 5 do
    let v = Mat.col vectors i in
    let pv = Poly.apply ~matvec:(Mat.gemv a) ~degree v in
    (* p̂(A)v = p̂(λ)v for an eigenvector. *)
    let ratio = Vec.dot pv v /. exp values.(i) in
    if ratio > 1.0 +. 1e-9 then Alcotest.failf "upper violated: %g" ratio;
    if ratio < 1.0 -. eps -. 1e-9 then Alcotest.failf "lower violated: %g" ratio
  done

let test_chebyshev_matches_exp () =
  let rng = Rng.create 211 in
  List.iter
    (fun kappa ->
      let dim = 10 in
      let a = Mat.scale (kappa /. Float.max 1.0 (Eig.lambda_max (random_psd rng dim 1.0)))
                (random_psd rng dim 1.0) in
      (* normalize so λmax(a) <= kappa (we scale a fresh sample by the
         previous one's norm; just bound kappa by the actual λmax) *)
      let kappa_actual = Float.max 1.0 (Eig.lambda_max a) in
      let v = Rng.gaussian_array rng dim in
      let eps = 0.01 in
      let d = Poly.chebyshev_degree ~kappa:kappa_actual ~eps in
      let approx = Poly.chebyshev_apply ~matvec:(Mat.gemv a) ~kappa:kappa_actual ~degree:d v in
      let exact = Mat.gemv (Matfun.expm a) v in
      let err = Vec.norm2 (Vec.sub approx exact) /. Vec.norm2 exact in
      if err > eps then
        Alcotest.failf "chebyshev error %g > %g at kappa %g (degree %d)" err
          eps kappa_actual d)
    [ 1.0; 5.0; 20.0 ]

let test_chebyshev_shorter_than_taylor () =
  List.iter
    (fun kappa ->
      let eps = 0.01 in
      let dt = Poly.degree ~kappa ~eps in
      let dc = Poly.chebyshev_degree ~kappa ~eps in
      if dc >= dt then
        Alcotest.failf "chebyshev degree %d not shorter than taylor %d at kappa %g"
          dc dt kappa)
    [ 4.0; 16.0; 64.0 ]

let test_chebyshev_coefficients_sum () =
  (* p(kappa) = Σ c_k T_k(1) = Σ c_k must approximate e^kappa. *)
  let kappa = 12.0 in
  let d = Poly.chebyshev_degree ~kappa ~eps:1e-6 in
  let c = Poly.chebyshev_coefficients ~kappa ~degree:d in
  let total = Util.sum_array c in
  if not (Util.close ~rtol:1e-6 (exp kappa) total) then
    Alcotest.failf "sum of coefficients %g <> e^kappa %g" total (exp kappa)

let test_chebyshev_validation () =
  Alcotest.check_raises "bad kappa"
    (Invalid_argument "Poly.chebyshev_coefficients: kappa must be positive")
    (fun () -> ignore (Poly.chebyshev_coefficients ~kappa:0.0 ~degree:3));
  Alcotest.check_raises "bad eps"
    (Invalid_argument "Poly.chebyshev_degree: eps must lie in (0,1)")
    (fun () -> ignore (Poly.chebyshev_degree ~kappa:1.0 ~eps:0.0))

(* ------------------------------------------------------------------ *)
(* Certified Chebyshev remainder *)

(* One-sidedness on the scalar spectrum: for certified (d, r) the
   shifted polynomial satisfies e^λ <= p̂(λ)+r <= e^λ+2r on a dense grid
   of the certified interval. The 1-dimensional "matrix" λ makes
   chebyshev_apply_shifted evaluate the scalar polynomial exactly as
   the matrix path would on an eigenvector. *)
let check_certified_scalar ~kappa ~eps =
  match Poly.chebyshev_certified ~kappa ~eps with
  | None -> Alcotest.failf "certification failed at kappa=%g eps=%g" kappa eps
  | Some (degree, r) ->
      let target = (sqrt (1.0 +. eps) -. 1.0) /. 2.0 in
      if r > target then
        Alcotest.failf "shift %g exceeds target %g (kappa=%g eps=%g)" r target
          kappa eps;
      let tol = 1e-13 *. exp kappa in
      for j = 0 to 200 do
        let lambda = kappa *. float_of_int j /. 200.0 in
        let p =
          (Poly.chebyshev_apply_shifted
             ~matvec:(fun v -> [| lambda *. v.(0) |])
             ~kappa ~degree ~remainder:r [| 1.0 |]).(0)
        in
        let e = exp lambda in
        if p < e -. tol then
          Alcotest.failf
            "one-sidedness violated at lambda=%g: p=%.17g < e^l=%.17g \
             (kappa=%g eps=%g d=%d r=%g)"
            lambda p e kappa eps degree r;
        if p > e +. (2.0 *. r) +. tol then
          Alcotest.failf
            "bound violated at lambda=%g: p=%.17g > e^l+2r=%.17g (kappa=%g \
             eps=%g d=%d)"
            lambda p
            (e +. (2.0 *. r))
            kappa eps degree
      done

let test_cheb_certified_one_sided () =
  List.iter
    (fun kappa ->
      List.iter (fun eps -> check_certified_scalar ~kappa ~eps) [ 0.01; 0.1; 0.3 ])
    [ 0.7; 3.0; 9.0; 14.0; 22.0 ]

(* "Worst observed κ" pin: the certification frontier at the solver's
   operating accuracy must not regress. The solver's clamped half-κ at
   eps = 0.3 is ≈ 14; certification must comfortably cover that and
   keep working well past it, and must honestly refuse beyond the
   hard cap. *)
let test_cheb_certified_frontier () =
  let eps = 0.15 in
  (match Poly.chebyshev_certified ~kappa:25.0 ~eps with
  | Some (d, r) ->
      if d > 60 then Alcotest.failf "degree blew up at the frontier: %d" d;
      if r <= 0.0 then Alcotest.failf "non-positive shift %g" r
  | None -> Alcotest.fail "kappa=25 must certify at eps=0.15");
  (match Poly.chebyshev_certified ~kappa:601.0 ~eps with
  | None -> ()
  | Some _ -> Alcotest.fail "kappa beyond the hard cap must not certify");
  (* the remainder bound is monotone in the degree *)
  let r5 = Poly.chebyshev_remainder ~kappa:10.0 ~degree:5 in
  let r15 = Poly.chebyshev_remainder ~kappa:10.0 ~degree:15 in
  if r15 >= r5 then
    Alcotest.failf "remainder not decreasing: r(15)=%g >= r(5)=%g" r15 r5

let test_clamp_kappa () =
  Alcotest.(check (float 0.0)) "below cap" 5.0 (Poly.clamp_kappa ~cap:28.0 5.0);
  Alcotest.(check (float 0.0)) "above cap" 28.0 (Poly.clamp_kappa ~cap:28.0 1e9);
  Alcotest.(check (float 0.0)) "nan falls to cap" 28.0
    (Poly.clamp_kappa ~cap:28.0 Float.nan);
  Alcotest.(check (float 0.0)) "inf falls to cap" 28.0
    (Poly.clamp_kappa ~cap:28.0 Float.infinity);
  Alcotest.(check (float 0.0)) "negative falls to cap" 28.0
    (Poly.clamp_kappa ~cap:28.0 (-3.0));
  Alcotest.check_raises "bad cap"
    (Invalid_argument "Poly.clamp_kappa: cap must be finite and positive")
    (fun () -> ignore (Poly.clamp_kappa ~cap:0.0 1.0))

(* Panel applications must be byte-identical per column to the scalar
   chains, for all three polynomial paths, when matvec_many agrees
   column-wise with matvec (here: Mat.gemv_many vs Mat.gemv). *)
let test_poly_apply_many_byte_identical () =
  let rng = Rng.create 229 in
  let a = random_psd rng 9 0.3 in
  let kappa = Float.max 1.0 (Eig.lambda_max a) in
  let vs = Array.init 5 (fun _ -> Rng.gaussian_array rng 9) in
  let matvec = Mat.gemv a and matvec_many = Mat.gemv_many a in
  let check name singles panel =
    Array.iteri
      (fun r want ->
        if not (Vec.equal ~tol:0.0 want panel.(r)) then
          Alcotest.failf "%s column %d differs from scalar chain" name r)
      singles
  in
  check "apply_many"
    (Array.map (Poly.apply ~matvec ~degree:7) vs)
    (Poly.apply_many ~matvec_many ~degree:7 vs);
  check "chebyshev_apply_many"
    (Array.map (Poly.chebyshev_apply ~matvec ~kappa ~degree:9) vs)
    (Poly.chebyshev_apply_many ~matvec_many ~kappa ~degree:9 vs);
  let remainder = 0.01 in
  check "chebyshev_apply_shifted_many"
    (Array.map (Poly.chebyshev_apply_shifted ~matvec ~kappa ~degree:9 ~remainder) vs)
    (Poly.chebyshev_apply_shifted_many ~matvec_many ~kappa ~degree:9 ~remainder vs)

(* With the identity sketch and the certified Chebyshev default, the
   dots are sandwiched: at least the exact value, at most (1+eps) of
   it (the certified square (1+2r)² <= 1+eps/2 plus truncation). *)
let test_bigdotexp_sketched_vs_exact_chebyshev_default () =
  Alcotest.(check bool) "default is chebyshev" true
    (Big_dot_exp.default_poly () = Big_dot_exp.Chebyshev);
  let rng = Rng.create 233 in
  let phi = random_psd rng 8 0.4 in
  let factors = Array.init 3 (fun _ -> random_factored rng 8 2) in
  let eps = 0.1 in
  let r =
    Big_dot_exp.compute ~matvec:(Mat.gemv phi) ~dim:8
      ~kappa:(Eig.lambda_max phi) ~eps ~sketch:(Jl.identity 8) factors
  in
  Alcotest.(check bool) "poly_used" true
    (r.Big_dot_exp.poly_used = Big_dot_exp.Chebyshev);
  Alcotest.(check bool) "positive shift" true (r.Big_dot_exp.remainder > 0.0);
  Alcotest.(check bool) "matvecs accounted" true (r.Big_dot_exp.matvecs > 0);
  let exact = Big_dot_exp.compute_exact phi factors in
  Array.iteri
    (fun i d ->
      let got = r.Big_dot_exp.dots.(i) in
      if got < d *. (1.0 -. 1e-9) then
        Alcotest.failf "dot %d below exact: %.17g < %.17g" i got d;
      if got > d *. (1.0 +. eps) then
        Alcotest.failf "dot %d above certified band: %.17g > %.17g" i got
          (d *. (1.0 +. eps)))
    exact.Big_dot_exp.dots

(* Kernel counters: panel columns, matvecs and eval counts mirror into
   the psdp_kernel_* metrics. *)
let test_kernel_stats_counters () =
  Kernel_stats.reset ();
  let rng = Rng.create 239 in
  let phi = random_psd rng 6 0.3 in
  let factors = [| random_factored rng 6 2 |] in
  let run poly =
    ignore
      (Big_dot_exp.compute ~poly ~matvec:(Mat.gemv phi)
         ~matvec_many:(Mat.gemv_many phi) ~dim:6 ~kappa:(Eig.lambda_max phi)
         ~eps:0.1 ~sketch:(Jl.identity 6) factors)
  in
  run Big_dot_exp.Chebyshev;
  run Big_dot_exp.Taylor;
  Alcotest.(check int) "cheb evals" 1 (Kernel_stats.cheb_evals ());
  Alcotest.(check int) "taylor evals" 1 (Kernel_stats.taylor_evals ());
  Alcotest.(check int) "panel columns" 12 (Kernel_stats.panel_columns ());
  Alcotest.(check int) "gram passes" 2 (Kernel_stats.gram_passes ());
  Alcotest.(check bool) "matvecs counted" true (Kernel_stats.matvecs () > 0);
  Alcotest.(check int) "no fallback at small kappa" 0
    (Kernel_stats.taylor_fallbacks ());
  Kernel_stats.reset ();
  Alcotest.(check int) "reset" 0 (Kernel_stats.matvecs ())

let test_bigdotexp_chebyshev_backend () =
  let rng = Rng.create 223 in
  let phi = random_psd rng 10 0.3 in
  let factors = Array.init 4 (fun _ -> random_factored rng 10 2) in
  let eps = 0.02 in
  let exact = Big_dot_exp.compute_exact phi factors in
  let cheb =
    Big_dot_exp.compute ~poly:Big_dot_exp.Chebyshev ~matvec:(Mat.gemv phi)
      ~dim:10 ~kappa:(Eig.lambda_max phi) ~eps ~sketch:(Jl.identity 10) factors
  in
  Array.iteri
    (fun i d ->
      let rel = Float.abs (cheb.Big_dot_exp.dots.(i) -. d) /. d in
      if rel > eps then Alcotest.failf "chebyshev dot %d rel err %g" i rel)
    exact.Big_dot_exp.dots

let test_poly_degree_one () =
  (* degree 1 means p̂ = I. *)
  let v = [| 1.0; 2.0 |] in
  let out = Poly.apply ~matvec:(fun _ -> [| 100.0; 100.0 |]) ~degree:1 v in
  Alcotest.(check bool) "identity" true (Vec.equal out v)

(* ------------------------------------------------------------------ *)
(* Trace_est *)

let test_hutchinson_unbiased () =
  let rng = Rng.create 301 in
  let a = random_psd rng 12 0.5 in
  let truth = Mat.trace a in
  let est = Trace_est.hutchinson ~rng ~samples:2000 ~dim:12 (Mat.gemv a) in
  if Float.abs (est -. truth) > 0.1 *. truth then
    Alcotest.failf "hutchinson %g vs %g" est truth

let test_gaussian_trace_unbiased () =
  let rng = Rng.create 307 in
  let a = random_psd rng 10 0.5 in
  let truth = Mat.trace a in
  let est = Trace_est.gaussian ~rng ~samples:4000 ~dim:10 (Mat.gemv a) in
  if Float.abs (est -. truth) > 0.15 *. truth then
    Alcotest.failf "gaussian %g vs %g" est truth

let test_hutchinson_exact_on_diagonal_probes () =
  (* For a diagonal matrix Rademacher probes are exact per sample. *)
  let d = Mat.diag [| 1.0; 2.0; 3.0 |] in
  let rng = Rng.create 311 in
  let est = Trace_est.hutchinson ~rng ~samples:1 ~dim:3 (Mat.gemv d) in
  Alcotest.(check (float 1e-12)) "diagonal exact" 6.0 est

let test_exp_trace_estimator () =
  let rng = Rng.create 313 in
  let a = random_psd rng 8 0.3 in
  let truth = Matfun.exp_trace a in
  let est =
    Trace_est.exp_trace ~rng ~samples:800 ~dim:8 ~kappa:(Eig.lambda_max a)
      ~eps:0.01 (Mat.gemv a)
  in
  if Float.abs (est -. truth) > 0.15 *. truth then
    Alcotest.failf "exp_trace %g vs %g" est truth

let test_trace_est_validation () =
  let rng = Rng.create 317 in
  Alcotest.check_raises "zero samples"
    (Invalid_argument "Trace_est: samples must be >= 1") (fun () ->
      ignore (Trace_est.hutchinson ~rng ~samples:0 ~dim:3 (fun v -> v)))

(* ------------------------------------------------------------------ *)
(* Big_dot_exp (Theorem 4.1) *)

let test_bigdotexp_exact_backend () =
  let rng = Rng.create 19 in
  let phi = random_psd rng 9 0.2 in
  let factors = Array.init 4 (fun _ -> random_factored rng 9 3) in
  let r = Big_dot_exp.compute_exact phi factors in
  let e = Matfun.expm phi in
  Array.iteri
    (fun i f ->
      Alcotest.(check (float 1e-6))
        (Printf.sprintf "dot %d" i)
        (Mat.dot (Factored.to_dense f) e)
        r.Big_dot_exp.dots.(i))
    factors;
  Alcotest.(check (float 1e-6)) "trace" (Mat.trace e) r.trace_estimate

let test_bigdotexp_identity_sketch_matches_exact () =
  (* With the identity sketch the only error left is the polynomial's,
     which is bounded by eps. *)
  let rng = Rng.create 23 in
  let phi = random_psd rng 10 0.15 in
  let factors = Array.init 5 (fun _ -> random_factored rng 10 2) in
  let eps = 0.02 in
  let approx =
    Big_dot_exp.compute ~matvec:(Mat.gemv phi) ~dim:10
      ~kappa:(Eig.lambda_max phi) ~eps ~sketch:(Jl.identity 10) factors
  in
  let exact = Big_dot_exp.compute_exact phi factors in
  Array.iteri
    (fun i d ->
      let rel = Float.abs (approx.Big_dot_exp.dots.(i) -. d) /. d in
      if rel > eps then Alcotest.failf "dot %d rel error %g > %g" i rel eps)
    exact.Big_dot_exp.dots;
  let rel_tr =
    Float.abs (approx.trace_estimate -. exact.trace_estimate)
    /. exact.trace_estimate
  in
  if rel_tr > eps then Alcotest.failf "trace rel error %g" rel_tr

let test_bigdotexp_gaussian_sketch_statistics () =
  (* With a Gaussian sketch the estimates concentrate around the exact
     values; check the median over repetitions. *)
  let rng = Rng.create 29 in
  let phi = random_psd rng 16 0.1 in
  let factors = Array.init 3 (fun _ -> random_factored rng 16 2) in
  let exact = Big_dot_exp.compute_exact phi factors in
  let trials = 31 in
  let rel_errors =
    Array.init trials (fun t ->
        let sketch =
          Jl.create ~rng:(Rng.create (1000 + t)) ~target_dim:12 ~source_dim:16
        in
        let approx =
          Big_dot_exp.compute ~matvec:(Mat.gemv phi) ~dim:16
            ~kappa:(Eig.lambda_max phi) ~eps:0.01 ~sketch factors
        in
        let worst = ref 0.0 in
        Array.iteri
          (fun i d ->
            worst :=
              Float.max !worst
                (Float.abs (approx.Big_dot_exp.dots.(i) -. d) /. d))
          exact.Big_dot_exp.dots;
        !worst)
  in
  let median = Stats.median rel_errors in
  (* k = 12 rows → relative std ≈ sqrt(2/12) ≈ 0.41 per constraint; the
     median of the worst-of-3 should still be well under 1. *)
  if median > 0.8 then Alcotest.failf "sketched dots median error %g" median

let test_bigdotexp_zero_phi () =
  (* exp(0) = I: dots reduce to traces. The Taylor prefix is exact at
     zero; the certified Chebyshev default is one-sided — at least the
     trace, and within the certified eps of it. *)
  let rng = Rng.create 31 in
  let factors = Array.init 3 (fun _ -> random_factored rng 6 2) in
  let phi = Mat.create 6 6 in
  let eps = 0.01 in
  let taylor =
    Big_dot_exp.compute ~poly:Big_dot_exp.Taylor ~matvec:(Mat.gemv phi) ~dim:6
      ~kappa:1.0 ~eps ~sketch:(Jl.identity 6) factors
  in
  Array.iteri
    (fun i f ->
      Alcotest.(check (float 1e-6))
        (Printf.sprintf "trace %d" i)
        (Factored.trace f)
        taylor.Big_dot_exp.dots.(i))
    factors;
  let cheb =
    Big_dot_exp.compute ~poly:Big_dot_exp.Chebyshev ~matvec:(Mat.gemv phi)
      ~dim:6 ~kappa:1.0 ~eps ~sketch:(Jl.identity 6) factors
  in
  Alcotest.(check bool) "chebyshev ran" true (cheb.Big_dot_exp.poly_used = Big_dot_exp.Chebyshev);
  Array.iteri
    (fun i f ->
      let tr = Factored.trace f and d = cheb.Big_dot_exp.dots.(i) in
      if d < tr -. 1e-9 then
        Alcotest.failf "dot %d below trace: %.17g < %.17g" i d tr;
      if d > tr *. (1.0 +. eps) then
        Alcotest.failf "dot %d above certified band: %.17g > %.17g" i d
          (tr *. (1.0 +. eps)))
    factors

let test_bigdotexp_dimension_checks () =
  let rng = Rng.create 37 in
  let factors = [| random_factored rng 6 2 |] in
  Alcotest.check_raises "sketch mismatch"
    (Invalid_argument "Big_dot_exp.compute: sketch dimension mismatch")
    (fun () ->
      ignore
        (Big_dot_exp.compute
           ~matvec:(fun v -> v)
           ~dim:6 ~kappa:1.0 ~eps:0.1 ~sketch:(Jl.identity 5) factors))

(* ------------------------------------------------------------------ *)
(* Properties *)

let prop_poly_monotone_degree =
  (* Higher degree only improves the approximation (all terms PSD). *)
  QCheck.Test.make ~name:"taylor prefix increases toward exp" ~count:40
    (QCheck.int_bound 1_000_000) (fun seed ->
      let rng = Rng.create seed in
      let a = random_psd rng 5 0.2 in
      let v = Vec.normalize (Rng.gaussian_array rng 5) in
      let value d = Vec.dot v (Poly.apply ~matvec:(Mat.gemv a) ~degree:d v) in
      value 3 <= value 6 +. 1e-9 && value 6 <= value 12 +. 1e-9)

let prop_bigdotexp_nonneg =
  QCheck.Test.make ~name:"exp(Φ)•A estimates are positive" ~count:40
    (QCheck.int_bound 1_000_000) (fun seed ->
      let rng = Rng.create seed in
      let phi = random_psd rng 7 0.2 in
      let factors = [| random_factored rng 7 2 |] in
      let r =
        Big_dot_exp.compute ~matvec:(Mat.gemv phi) ~dim:7
          ~kappa:(Eig.lambda_max phi) ~eps:0.1 ~sketch:(Jl.identity 7) factors
      in
      r.Big_dot_exp.dots.(0) >= 0.0 && r.trace_estimate > 0.0)

let prop_cheb_remainder_certified =
  (* Generated spectral intervals and accuracies: the certified (d, r)
     keeps the shifted polynomial one-sided within 2r of e^λ across the
     interval. Integer-encoded κ = k/10 and ε = e/100 shrink toward the
     smallest failing interval; failures replay via the pinned
     PSDP_QA_SEED line printed by the harness. *)
  QCheck.Test.make ~name:"chebyshev remainder certifies one-sidedness"
    ~count:50
    QCheck.(pair (int_range 1 180) (int_range 2 31))
    (fun (k10, e100) ->
      let kappa = float_of_int k10 /. 10.0 in
      let eps = float_of_int e100 /. 100.0 in
      match Poly.chebyshev_certified ~kappa ~eps with
      | None -> false
      | Some (degree, r) ->
          (* κ is floored at 1 inside certification; evaluate on the
             certified interval, not just the requested one. *)
          let kappa = Float.max 1.0 kappa in
          let tol = 1e-13 *. exp kappa in
          let ok = ref (r > 0.0 && r <= (sqrt (1.0 +. eps) -. 1.0) /. 2.0) in
          for j = 0 to 40 do
            let lambda = kappa *. float_of_int j /. 40.0 in
            let p =
              (Poly.chebyshev_apply_shifted
                 ~matvec:(fun v -> [| lambda *. v.(0) |])
                 ~kappa ~degree ~remainder:r [| 1.0 |]).(0)
            in
            let e = exp lambda in
            if p < e -. tol || p > e +. (2.0 *. r) +. tol then ok := false
          done;
          !ok)

let qcheck_cases =
  List.map
    Qa_harness.to_alcotest
    [
      prop_poly_monotone_degree;
      prop_bigdotexp_nonneg;
      prop_cheb_remainder_certified;
    ]

let () =
  Alcotest.run "expm"
    [
      ( "jl",
        [
          Alcotest.test_case "dimensions" `Quick test_jl_dimensions;
          Alcotest.test_case "identity exact" `Quick test_jl_identity_exact;
          Alcotest.test_case "unbiased" `Quick test_jl_unbiased;
          Alcotest.test_case "concentration" `Quick test_jl_concentration;
          Alcotest.test_case "rejects bad dims" `Quick test_jl_rejects_bad_dims;
        ] );
      ( "poly",
        [
          Alcotest.test_case "degree formula" `Quick test_poly_degree_formula;
          Alcotest.test_case "degree validation" `Quick
            test_poly_degree_validation;
          Alcotest.test_case "matches exp" `Quick test_poly_matches_exp_on_psd;
          Alcotest.test_case "sandwich bound" `Quick test_poly_sandwich;
          Alcotest.test_case "degree one" `Quick test_poly_degree_one;
          Alcotest.test_case "chebyshev matches exp" `Quick
            test_chebyshev_matches_exp;
          Alcotest.test_case "chebyshev shorter" `Quick
            test_chebyshev_shorter_than_taylor;
          Alcotest.test_case "chebyshev coefficient sum" `Quick
            test_chebyshev_coefficients_sum;
          Alcotest.test_case "chebyshev validation" `Quick
            test_chebyshev_validation;
          Alcotest.test_case "bigdotexp chebyshev" `Quick
            test_bigdotexp_chebyshev_backend;
          Alcotest.test_case "certified one-sided" `Quick
            test_cheb_certified_one_sided;
          Alcotest.test_case "certified frontier" `Quick
            test_cheb_certified_frontier;
          Alcotest.test_case "clamp kappa" `Quick test_clamp_kappa;
          Alcotest.test_case "apply_many byte-identical" `Quick
            test_poly_apply_many_byte_identical;
        ] );
      ( "trace_est",
        [
          Alcotest.test_case "hutchinson unbiased" `Quick
            test_hutchinson_unbiased;
          Alcotest.test_case "gaussian unbiased" `Quick
            test_gaussian_trace_unbiased;
          Alcotest.test_case "diagonal exact" `Quick
            test_hutchinson_exact_on_diagonal_probes;
          Alcotest.test_case "exp trace" `Quick test_exp_trace_estimator;
          Alcotest.test_case "validation" `Quick test_trace_est_validation;
        ] );
      ( "big_dot_exp",
        [
          Alcotest.test_case "exact backend" `Quick test_bigdotexp_exact_backend;
          Alcotest.test_case "identity sketch" `Quick
            test_bigdotexp_identity_sketch_matches_exact;
          Alcotest.test_case "gaussian sketch stats" `Quick
            test_bigdotexp_gaussian_sketch_statistics;
          Alcotest.test_case "zero phi" `Quick test_bigdotexp_zero_phi;
          Alcotest.test_case "dimension checks" `Quick
            test_bigdotexp_dimension_checks;
          Alcotest.test_case "chebyshev default sandwich" `Quick
            test_bigdotexp_sketched_vs_exact_chebyshev_default;
          Alcotest.test_case "kernel stats" `Quick test_kernel_stats_counters;
        ] );
      ("properties", qcheck_cases);
    ]
