(* lib/qa — the property-based conformance subsystem itself.

   Covers: spec codec/sampling/shrinking, the differential and
   metamorphic oracles on representative instances, the failure corpus,
   bounded fuzz campaigns with metrics export, the malformed-instance
   corpus against every Loader validation path (library level and CLI
   exit code), and the end-to-end self-test from ISSUE acceptance: a
   seeded failpoint corrupting one solver backend must be caught by the
   differential oracle, shrunk, persisted, and reproduced byte-for-byte
   by the printed replay command. *)

open Psdp_prelude
open Psdp_qa
module Metrics = Psdp_obs.Metrics

let cli = "../bin/psdp_cli.exe"

let run_cli ?stdout args =
  let null = "/dev/null" in
  Sys.command
    (Filename.quote_command cli ~stdout:(Option.value stdout ~default:null)
       ~stderr:null args)

let contains ~affix s =
  let n = String.length affix and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = affix || go (i + 1)) in
  n = 0 || go 0

let is_prefix ~affix s =
  String.length s >= String.length affix
  && String.sub s 0 (String.length affix) = affix

let spec_eq : Spec.t Alcotest.testable =
  Alcotest.testable
    (fun ppf s -> Format.pp_print_string ppf (Spec.to_string s))
    ( = )

(* ------------------------------------------------------------------ *)
(* Spec *)

let sample_specs count =
  let rng = Rng.create 0x5eed in
  List.init count (fun _ -> Spec.sample rng)

let test_spec_json_roundtrip () =
  List.iter
    (fun s ->
      match Spec.of_json (Spec.to_json s) with
      | Ok s' -> Alcotest.check spec_eq (Spec.to_string s) s s'
      | Error msg -> Alcotest.failf "%s: %s" (Spec.to_string s) msg)
    (sample_specs 100)

let test_spec_validate_rejects () =
  let bad =
    [
      { Spec.family = Spec.Graph_cycle; dim = 2; n = 2; seed = 1 };
      { Spec.family = Spec.Known_projectors; dim = 2; n = 5; seed = 1 };
      { Spec.family = Spec.Diagonal { density = 0.0 }; dim = 2; n = 1; seed = 1 };
      { Spec.family = Spec.Conditioned { cond = 0.5 }; dim = 2; n = 1; seed = 1 };
      {
        Spec.family = Spec.Random { rank = 0; density = 0.5; spread = 1.0 };
        dim = 2;
        n = 1;
        seed = 1;
      };
      { Spec.family = Spec.Diagonal_identities; dim = 0; n = 1; seed = 1 };
    ]
  in
  List.iter
    (fun s ->
      match Spec.validate s with
      | Ok _ -> Alcotest.failf "accepted %s" (Spec.to_string s)
      | Error _ -> ())
    bad

let test_spec_build_deterministic () =
  List.iter
    (fun s ->
      let i1, o1 = Spec.build s in
      let i2, o2 = Spec.build s in
      Alcotest.(check (option (float 0.0)))
        (Spec.to_string s ^ " opt") o1 o2;
      Alcotest.(check string)
        (Spec.to_string s ^ " digest")
        (Psdp_instances.Loader.digest i1)
        (Psdp_instances.Loader.digest i2))
    (sample_specs 25)

let test_spec_shrink_well_founded () =
  (* Every shrink candidate is valid and strictly smaller, so greedy
     shrinking terminates from any sampled start. *)
  List.iter
    (fun s ->
      let rec descend s steps =
        if steps > 200 then
          Alcotest.failf "shrink of %s did not terminate" (Spec.to_string s);
        List.iter
          (fun c ->
            (match Spec.validate c with
            | Ok c' -> Alcotest.check spec_eq "validate is identity" c c'
            | Error msg ->
                Alcotest.failf "invalid shrink %s: %s" (Spec.to_string c) msg);
            if Spec.size c >= Spec.size s then
              Alcotest.failf "shrink did not shrink: %s -> %s"
                (Spec.to_string s) (Spec.to_string c))
          (Spec.shrink s);
        match Spec.shrink s with
        | [] -> ()
        | c :: _ -> descend c (steps + 1)
      in
      descend s 0)
    (sample_specs 50)

(* ------------------------------------------------------------------ *)
(* Oracles on representative specs *)

let oracle_smoke name spec () =
  let spec =
    match Spec.validate spec with
    | Ok s -> s
    | Error msg -> Alcotest.failf "bad smoke spec: %s" msg
  in
  List.iter
    (fun (p : Property.t) ->
      if p.Property.applies spec then
        match p.Property.check spec with
        | Ok () -> ()
        | Error msg -> Alcotest.failf "%s on %s: %s" p.Property.name name msg)
    Property.all

let smoke_identities =
  oracle_smoke "identities"
    { Spec.family = Spec.Diagonal_identities; dim = 3; n = 3; seed = 5 }

let smoke_cycle =
  oracle_smoke "cycle" { Spec.family = Spec.Graph_cycle; dim = 3; n = 3; seed = 5 }

let smoke_random =
  oracle_smoke "random"
    {
      Spec.family = Spec.Random { rank = 1; density = 1.0; spread = 1.0 };
      dim = 3;
      n = 2;
      seed = 5;
    }

(* ------------------------------------------------------------------ *)
(* Corpus *)

let temp_corpus () =
  let path = Filename.temp_file "psdp-qa-corpus" ".jsonl" in
  Sys.remove path;
  path

let test_corpus_roundtrip () =
  let path = temp_corpus () in
  Fun.protect ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
  @@ fun () ->
  Alcotest.(check (list reject)) "missing file loads empty" []
    (Result.get_ok (Corpus.load path));
  let specs = sample_specs 5 in
  let entries =
    List.mapi
      (fun i spec ->
        Corpus.make ~prop:"backends_agree" ~spec
          ~failpoints:(if i mod 2 = 0 then [ "evaluator.dots.exact=corrupt" ] else [])
          ~message:(Printf.sprintf "message %d\nwith newline" i)
          ~shrink_steps:i)
      specs
  in
  List.iter (Corpus.append path) entries;
  match Corpus.load path with
  | Error msg -> Alcotest.fail msg
  | Ok loaded ->
      Alcotest.(check int) "count" (List.length entries) (List.length loaded);
      List.iter2
        (fun (a : Corpus.entry) (b : Corpus.entry) ->
          Alcotest.(check string) "id" a.Corpus.id b.Corpus.id;
          Alcotest.check spec_eq "spec" a.Corpus.spec b.Corpus.spec;
          Alcotest.(check (list string)) "failpoints" a.Corpus.failpoints
            b.Corpus.failpoints;
          Alcotest.(check string) "message" a.Corpus.message b.Corpus.message)
        entries loaded;
      let first = List.hd entries in
      (match Corpus.find ~entries:loaded (String.sub first.Corpus.id 0 6) with
      | Some e -> Alcotest.(check string) "prefix find" first.Corpus.id e.Corpus.id
      | None -> Alcotest.fail "prefix lookup failed");
      Alcotest.(check bool) "short prefix rejected" true
        (Corpus.find ~entries:loaded (String.sub first.Corpus.id 0 2) = None)

let test_corpus_rejects_malformed () =
  let path = temp_corpus () in
  Fun.protect ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
  @@ fun () ->
  let oc = open_out path in
  output_string oc "{\"id\":\"x\"}\nnot json at all\n";
  close_out oc;
  match Corpus.load path with
  | Ok _ -> Alcotest.fail "loaded a malformed corpus"
  | Error msg ->
      Alcotest.(check bool) "names the file" true
        (String.length msg > 0)

(* ------------------------------------------------------------------ *)
(* Bounded campaign: clean run, no failures, metrics exported *)

let test_fuzz_clean_campaign () =
  let reg = Metrics.create () in
  let config =
    {
      Fuzz.default with
      Fuzz.seed = 11;
      budget = 0.0;
      max_cases = 2;
      registry = Some reg;
    }
  in
  match Fuzz.run config with
  | Error msg -> Alcotest.fail msg
  | Ok o ->
      Alcotest.(check int) "cases" 2 o.Fuzz.cases;
      Alcotest.(check (list reject)) "no failures" [] o.Fuzz.failures;
      Alcotest.(check (list reject)) "no regressions" [] o.Fuzz.regressions;
      Alcotest.(check bool) "checks ran" true (o.Fuzz.checks > 0);
      let rendered = Metrics.render reg in
      List.iter
        (fun series ->
          if not (contains ~affix:series rendered) then
            Alcotest.failf "metric %s missing from exposition" series)
        [
          "psdp_fuzz_cases_total";
          "psdp_fuzz_checks_total";
          "psdp_fuzz_check_seconds";
        ];
      Alcotest.(check bool) "failpoints left disarmed" true
        (Psdp_fault.Failpoint.armed () = [])

let test_fuzz_rejects_bad_failpoint () =
  match
    Fuzz.run { Fuzz.default with Fuzz.failpoint_specs = [ "nonsense spec" ] }
  with
  | Ok _ -> Alcotest.fail "accepted a bad failpoint spec"
  | Error _ -> Alcotest.(check bool) "disarmed" true (Psdp_fault.Failpoint.armed () = [])

(* ------------------------------------------------------------------ *)
(* Malformed-instance corpus: every Loader validation path *)

let malformed_files () =
  Sys.readdir "data/malformed" |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".inst")
  |> List.sort compare
  |> List.map (Filename.concat "data/malformed")

let test_malformed_loader () =
  let files = malformed_files () in
  Alcotest.(check bool) "corpus present" true (List.length files >= 14);
  List.iter
    (fun f ->
      match Psdp_instances.Loader.load_result f with
      | Ok _ -> Alcotest.failf "loader accepted %s" f
      | Error msg ->
          Alcotest.(check bool) (f ^ " has message") true
            (String.length msg > 0))
    files

let test_malformed_cli_exit_2 () =
  List.iter
    (fun f ->
      let code = run_cli [ "info"; f ] in
      if code <> 2 then Alcotest.failf "psdp info %s exited %d, want 2" f code)
    (malformed_files ())

(* ------------------------------------------------------------------ *)
(* Acceptance self-test: corrupt one backend, catch, shrink, replay *)

let chaos_failpoint = "evaluator.dots.sketched=corrupt@prob:0.7:1234"

(* Empirically failing under [chaos_failpoint]; small enough that the
   whole self-test (campaign + library replay + CLI replay) stays in
   single-digit seconds. *)
let chaos_spec = { Spec.family = Spec.Graph_cycle; dim = 3; n = 3; seed = 954685 }

let test_selftest_corrupt_backend_replay () =
  let path = temp_corpus () in
  Fun.protect ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
  @@ fun () ->
  let config =
    {
      Fuzz.default with
      Fuzz.seed = 7;
      budget = 0.0;
      max_cases = 1;
      props = Result.get_ok (Property.select [ "backends_agree" ]);
      focus = [ chaos_spec ];
      corpus_path = Some path;
      failpoint_specs = [ chaos_failpoint ];
    }
  in
  let outcome = Result.get_ok (Fuzz.run config) in
  let failure =
    match outcome.Fuzz.failures with
    | [ f ] -> f
    | l -> Alcotest.failf "want exactly 1 failure, got %d" (List.length l)
  in
  let entry = failure.Fuzz.entry in
  (* The campaign shrank and persisted the failure... *)
  Alcotest.(check bool) "persisted" true (Sys.file_exists path);
  Alcotest.(check (list string)) "failpoints recorded" [ chaos_failpoint ]
    entry.Corpus.failpoints;
  (match failure.Fuzz.replay with
  | Some cmd ->
      Alcotest.(check bool) "replay one-liner" true
        (is_prefix ~affix:"SEED=7 psdp fuzz --replay " cmd)
  | None -> Alcotest.fail "no replay command");
  (* ...library replay reproduces the identical message... *)
  (match Fuzz.replay ~corpus:path ~id:entry.Corpus.id () with
  | Ok (Fuzz.Reproduced msg, replayed) ->
      Alcotest.(check string) "byte-for-byte message" entry.Corpus.message msg;
      Alcotest.(check string) "same id" entry.Corpus.id replayed.Corpus.id
  | Ok (Fuzz.Not_reproduced, _) -> Alcotest.fail "failure did not reproduce"
  | Error msg -> Alcotest.fail msg);
  (* ...and so does the CLI one-liner, exiting 1 with the message. *)
  let out = Filename.temp_file "psdp-qa-replay" ".out" in
  Fun.protect ~finally:(fun () -> Sys.remove out)
  @@ fun () ->
  let code =
    run_cli ~stdout:out [ "fuzz"; "--replay"; entry.Corpus.id; "--corpus"; path ]
  in
  Alcotest.(check int) "CLI replay exits 1" 1 code;
  let ic = open_in out in
  let text =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  Alcotest.(check bool) "CLI prints the persisted message" true
    (contains ~affix:entry.Corpus.message text)

(* Same acceptance story for the certified Chebyshev remainder: corrupt
   the one-sided shift inside the exp kernel and prove the
   remainder-soundness oracle (one-sidedness against dense ground
   truth) catches it, shrinks it, and replays it byte-for-byte. The
   solver-level bracket oracles cannot see this fault — decisions are
   ratio-normalized (dots/trace), which absorbs any scalar shift — so
   this self-test pins the one oracle that can. *)
let remainder_failpoint = "expm.cheb.remainder=corrupt@always"

let remainder_spec =
  { Spec.family = Spec.Graph_cycle; dim = 3; n = 3; seed = 954685 }

let test_selftest_corrupt_remainder_replay () =
  let path = temp_corpus () in
  Fun.protect ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
  @@ fun () ->
  let config =
    {
      Fuzz.default with
      Fuzz.seed = 11;
      budget = 0.0;
      max_cases = 1;
      props = Result.get_ok (Property.select [ "cheb_remainder_sound" ]);
      focus = [ remainder_spec ];
      corpus_path = Some path;
      failpoint_specs = [ remainder_failpoint ];
    }
  in
  let outcome = Result.get_ok (Fuzz.run config) in
  let failure =
    match outcome.Fuzz.failures with
    | [ f ] -> f
    | l -> Alcotest.failf "want exactly 1 failure, got %d" (List.length l)
  in
  let entry = failure.Fuzz.entry in
  Alcotest.(check string) "caught by the soundness oracle"
    "cheb_remainder_sound" entry.Corpus.prop;
  Alcotest.(check (list string)) "failpoints recorded" [ remainder_failpoint ]
    entry.Corpus.failpoints;
  match Fuzz.replay ~corpus:path ~id:entry.Corpus.id () with
  | Ok (Fuzz.Reproduced msg, replayed) ->
      Alcotest.(check string) "byte-for-byte message" entry.Corpus.message msg;
      Alcotest.(check string) "same id" entry.Corpus.id replayed.Corpus.id
  | Ok (Fuzz.Not_reproduced, _) -> Alcotest.fail "failure did not reproduce"
  | Error msg -> Alcotest.fail msg

(* ------------------------------------------------------------------ *)
(* QCheck properties, through the pinned-seed harness *)

let prop_spec_roundtrip =
  QCheck.Test.make ~name:"spec JSON round-trip" ~count:200 Spec.arbitrary
    (fun s -> Spec.of_json (Spec.to_json s) = Ok s)

let prop_spec_id_stable =
  QCheck.Test.make ~name:"corpus ids depend only on content" ~count:100
    Spec.arbitrary (fun s ->
      Corpus.id_of ~prop:"p" ~spec:s ~failpoints:[]
      = Corpus.id_of ~prop:"p" ~spec:s ~failpoints:[]
      && Corpus.id_of ~prop:"p" ~spec:s ~failpoints:[]
         <> Corpus.id_of ~prop:"q" ~spec:s ~failpoints:[])

let qcheck_cases =
  Qa_harness.cases [ prop_spec_roundtrip; prop_spec_id_stable ]

let () =
  Alcotest.run "qa"
    [
      ( "spec",
        [
          Alcotest.test_case "json round-trip (sampled)" `Quick
            test_spec_json_roundtrip;
          Alcotest.test_case "validate rejects" `Quick test_spec_validate_rejects;
          Alcotest.test_case "build is deterministic" `Quick
            test_spec_build_deterministic;
          Alcotest.test_case "shrink is well-founded" `Quick
            test_spec_shrink_well_founded;
        ] );
      ( "oracles",
        [
          Alcotest.test_case "identities family" `Slow smoke_identities;
          Alcotest.test_case "cycle family" `Slow smoke_cycle;
          Alcotest.test_case "random family" `Slow smoke_random;
        ] );
      ( "corpus",
        [
          Alcotest.test_case "round-trip + prefix find" `Quick
            test_corpus_roundtrip;
          Alcotest.test_case "rejects malformed" `Quick
            test_corpus_rejects_malformed;
        ] );
      ( "fuzz",
        [
          Alcotest.test_case "clean bounded campaign" `Slow
            test_fuzz_clean_campaign;
          Alcotest.test_case "rejects bad failpoint" `Quick
            test_fuzz_rejects_bad_failpoint;
        ] );
      ( "loader-corpus",
        [
          Alcotest.test_case "loader rejects all" `Quick test_malformed_loader;
          Alcotest.test_case "CLI exits 2" `Quick test_malformed_cli_exit_2;
        ] );
      ( "selftest",
        [
          Alcotest.test_case "corrupt backend -> shrink -> replay" `Slow
            test_selftest_corrupt_backend_replay;
          Alcotest.test_case "corrupt cheb remainder -> caught -> replay" `Slow
            test_selftest_corrupt_remainder_replay;
        ] );
      ("properties", qcheck_cases);
    ]
