(* Tests for the instance generators, graph utilities and the loader. *)

open Psdp_prelude
open Psdp_linalg
open Psdp_core
open Psdp_instances

(* ------------------------------------------------------------------ *)
(* Random_psd *)

let test_random_psd_shapes () =
  let rng = Rng.create 3 in
  let inst = Random_psd.factored ~rng ~dim:10 ~n:7 ~rank:3 ~density:0.4 () in
  Alcotest.(check int) "dim" 10 (Instance.dim inst);
  Alcotest.(check int) "n" 7 (Instance.num_constraints inst);
  Array.iter
    (fun f ->
      Alcotest.(check bool) "rank bound" true
        (Psdp_sparse.Factored.inner_dim f <= 3))
    (Instance.factors inst)

let test_random_psd_normalized_width () =
  (* Constraints are normalized to λmax ≈ 1 (before spread). *)
  let rng = Rng.create 5 in
  let inst = Random_psd.factored ~rng ~dim:8 ~n:5 () in
  let w = Instance.width inst in
  if w < 0.9 || w > 1.1 then Alcotest.failf "width %g should be ~1" w

let test_random_psd_determinism () =
  let gen seed =
    Random_psd.factored ~rng:(Rng.create seed) ~dim:6 ~n:4 ~rank:2 ()
  in
  let a = gen 42 and b = gen 42 in
  let ma = Instance.dense_mats a and mb = Instance.dense_mats b in
  Array.iteri
    (fun i m ->
      Alcotest.(check bool)
        (Printf.sprintf "constraint %d" i)
        true (Mat.equal m mb.(i)))
    ma

let test_random_psd_width_ramp () =
  let rng = Rng.create 7 in
  let inst = Random_psd.with_width ~rng ~dim:8 ~n:5 ~width:64.0 in
  let w = Instance.width inst in
  if w < 55.0 || w > 70.0 then Alcotest.failf "requested width 64, got %g" w

let test_random_psd_validation () =
  let rng = Rng.create 11 in
  Alcotest.check_raises "bad density"
    (Invalid_argument "Random_psd.factored: density in (0,1]") (fun () ->
      ignore (Random_psd.factored ~rng ~dim:4 ~n:2 ~density:0.0 ()));
  Alcotest.check_raises "bad width"
    (Invalid_argument "Random_psd.with_width: width >= 1") (fun () ->
      ignore (Random_psd.with_width ~rng ~dim:4 ~n:2 ~width:0.5))

(* ------------------------------------------------------------------ *)
(* Diagonal *)

let test_diagonal_is_diagonal () =
  let rng = Rng.create 13 in
  let inst = Diagonal.random ~rng ~dim:6 ~n:4 () in
  Array.iter
    (fun m ->
      for i = 0 to 5 do
        for j = 0 to 5 do
          if i <> j && Float.abs (Mat.get m i j) > 1e-12 then
            Alcotest.fail "off-diagonal entry"
        done
      done)
    (Instance.dense_mats inst)

let test_scaled_identities_opt () =
  let inst, opt = Diagonal.scaled_identities [| 0.25; 1.0; 2.0 |] ~dim:5 in
  Alcotest.(check (float 1e-12)) "opt" 4.0 opt;
  (* x = e_1/0.25 is feasible with value 4. *)
  let cert = Certificate.check_dual inst [| 4.0; 0.0; 0.0 |] in
  Alcotest.(check bool) "witness feasible" true cert.Certificate.feasible

(* ------------------------------------------------------------------ *)
(* Known_opt *)

let test_projectors_opt_witness () =
  let rng = Rng.create 17 in
  let inst, opt = Known_opt.orthogonal_projectors ~rng ~dim:12 ~n:4 in
  Alcotest.(check (float 1e-12)) "opt = n" 4.0 opt;
  (* x = 1 (all ones) achieves the optimum exactly. *)
  let cert = Certificate.check_dual ~tol:1e-6 inst (Array.make 4 1.0) in
  Alcotest.(check bool) "all-ones feasible" true cert.Certificate.feasible;
  Alcotest.(check (float 1e-9)) "value" 4.0 cert.Certificate.value;
  (* And 1.01x is infeasible: the optimum is tight. *)
  let over = Certificate.check_dual ~tol:1e-6 inst (Array.make 4 1.01) in
  Alcotest.(check bool) "1.01 infeasible" false over.Certificate.feasible

let test_projectors_partition_identity () =
  (* The unweighted projectors sum to the identity. *)
  let rng = Rng.create 19 in
  let inst, _ = Known_opt.orthogonal_projectors ~rng ~dim:9 ~n:3 in
  let sum = Mat.create 9 9 in
  Array.iter (fun m -> Mat.add_inplace sum m) (Instance.dense_mats inst);
  Alcotest.(check bool) "sum = I" true
    (Mat.equal ~tol:1e-8 sum (Mat.identity 9))

let test_rank_one_opt () =
  let rng = Rng.create 23 in
  let inst, opt = Known_opt.rank_one_orthonormal ~rng ~dim:7 ~n:5 in
  Alcotest.(check (float 1e-12)) "opt" 5.0 opt;
  let cert = Certificate.check_dual ~tol:1e-6 inst (Array.make 5 1.0) in
  Alcotest.(check bool) "ones feasible" true cert.Certificate.feasible;
  Array.iter
    (fun f ->
      Alcotest.(check int) "rank 1" 1 (Psdp_sparse.Factored.inner_dim f))
    (Instance.factors inst)

let test_weighted_projectors_opt () =
  let rng = Rng.create 29 in
  let inst, opt =
    Known_opt.weighted_projectors ~rng ~dim:8 ~weights:[| 0.5; 2.0 |]
  in
  Alcotest.(check (float 1e-12)) "opt" 2.5 opt;
  let cert = Certificate.check_dual ~tol:1e-6 inst [| 2.0; 0.5 |] in
  Alcotest.(check bool) "witness feasible" true cert.Certificate.feasible;
  Alcotest.(check (float 1e-9)) "witness optimal" 2.5 cert.Certificate.value

let test_simplex_corner_opt () =
  let inst, opt = Known_opt.simplex_corner ~dim:4 in
  Alcotest.(check (float 1e-12)) "opt" 2.0 opt;
  let cert = Certificate.check_dual ~tol:1e-6 inst (Array.make 4 0.5) in
  Alcotest.(check bool) "uniform 1/2 feasible" true cert.Certificate.feasible;
  Alcotest.(check (float 1e-6)) "uniform is tight" 1.0
    cert.Certificate.lambda_max

let test_known_opt_validation () =
  let rng = Rng.create 31 in
  Alcotest.check_raises "n > dim"
    (Invalid_argument "Known_opt: need n <= dim") (fun () ->
      ignore (Known_opt.orthogonal_projectors ~rng ~dim:3 ~n:5))

(* ------------------------------------------------------------------ *)
(* Graph *)

let test_graph_create_merges () =
  let g =
    Graph.create ~vertices:3 ~edges:[ (0, 1, 1.0); (1, 0, 2.0); (1, 2, 1.0) ]
  in
  Alcotest.(check int) "merged edges" 2 (Array.length g.Graph.edges);
  Alcotest.(check (float 1e-12)) "weights summed" 4.0 (Graph.total_weight g)

let test_graph_validation () =
  Alcotest.check_raises "self loop" (Invalid_argument "Graph.create: self-loop")
    (fun () -> ignore (Graph.create ~vertices:2 ~edges:[ (1, 1, 1.0) ]));
  Alcotest.check_raises "bad weight"
    (Invalid_argument "Graph.create: non-positive weight") (fun () ->
      ignore (Graph.create ~vertices:2 ~edges:[ (0, 1, 0.0) ]))

let test_laplacian_properties () =
  let g = Graph.cycle 5 in
  let l = Graph.laplacian g in
  Alcotest.(check bool) "PSD" true (Cholesky.is_psd l);
  (* Row sums of a Laplacian vanish. *)
  for i = 0 to 4 do
    let s = Util.sum_array (Mat.row l i) in
    Alcotest.(check (float 1e-12)) (Printf.sprintf "row %d" i) 0.0 s
  done;
  Alcotest.(check (float 1e-12)) "trace = 2W" (2.0 *. Graph.total_weight g)
    (Mat.trace l)

let test_gnp_always_has_edge () =
  let rng = Rng.create 37 in
  let g = Graph.gnp ~rng ~vertices:5 ~p:0.0 in
  Alcotest.(check bool) "at least one edge" true (Array.length g.Graph.edges >= 1)

let test_complete_edge_count () =
  let g = Graph.complete 6 in
  Alcotest.(check int) "15 edges" 15 (Array.length g.Graph.edges)

(* ------------------------------------------------------------------ *)
(* Graph_packing *)

let test_edge_packing_matches_laplacian () =
  (* With uniform loading x = c·1, Σ xₑAₑ = c·L. *)
  let g = Graph.cycle 6 in
  let inst = Graph_packing.edge_packing g in
  let sum = Mat.create 6 6 in
  Array.iter (fun m -> Mat.add_inplace sum m) (Instance.dense_mats inst);
  Alcotest.(check bool) "sum of edge matrices = L" true
    (Mat.equal ~tol:1e-9 sum (Graph.laplacian g))

let test_edge_packing_cycle_opt () =
  List.iter
    (fun n ->
      let opt = Graph_packing.edge_packing_opt_cycle n in
      let inst = Graph_packing.edge_packing (Graph.cycle n) in
      (* The uniform witness achieves it. *)
      let l = Graph.laplacian (Graph.cycle n) in
      let lmax = Eig.lambda_max l in
      let cert =
        Certificate.check_dual ~tol:1e-6 inst (Array.make n (1.0 /. lmax))
      in
      Alcotest.(check bool) "uniform feasible" true cert.Certificate.feasible;
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "opt C_%d" n)
        opt cert.Certificate.value)
    [ 3; 4; 5; 8 ]

let test_laplacian_covering_valid_general () =
  let g = Graph_packing.laplacian_covering (Graph.cycle 4) in
  Alcotest.(check int) "one constraint per vertex" 4
    (Array.length g.Instance.constraints);
  Alcotest.(check bool) "objective PD" true
    (Cholesky.is_psd g.Instance.objective)

(* ------------------------------------------------------------------ *)
(* Beamforming *)

let test_beamforming_rank_one () =
  let rng = Rng.create 41 in
  let inst = Beamforming.instance ~rng ~antennas:6 ~users:4 () in
  Alcotest.(check int) "dim = antennas" 6 (Instance.dim inst);
  Alcotest.(check int) "n = users" 4 (Instance.num_constraints inst);
  Array.iter
    (fun f ->
      Alcotest.(check int) "rank one" 1 (Psdp_sparse.Factored.inner_dim f))
    (Instance.factors inst)

let test_beamforming_correlated_channels () =
  (* Correlated model: adjacent antenna entries are positively
     correlated on average. *)
  let rng = Rng.create 43 in
  let hs =
    Beamforming.channels ~rng ~antennas:16 ~users:400
      ~model:(Beamforming.Correlated 0.9) ()
  in
  let corr = ref 0.0 in
  Array.iter
    (fun h ->
      for j = 0 to 14 do
        corr := !corr +. (h.(j) *. h.(j + 1))
      done)
    hs;
  Alcotest.(check bool) "positive adjacent correlation" true (!corr > 0.0);
  Alcotest.check_raises "bad correlation"
    (Invalid_argument "Beamforming.channels: correlation in [0,1)") (fun () ->
      ignore (Beamforming.channels ~rng ~antennas:4 ~users:1
                ~model:(Beamforming.Correlated 1.0) ()))

(* ------------------------------------------------------------------ *)
(* Loader *)

let test_loader_roundtrip () =
  let rng = Rng.create 47 in
  let inst = Random_psd.factored ~rng ~dim:7 ~n:4 ~rank:3 ~density:0.4 () in
  let text = Loader.to_string inst in
  let back = Loader.of_string text in
  Alcotest.(check int) "dim" (Instance.dim inst) (Instance.dim back);
  let ma = Instance.dense_mats inst and mb = Instance.dense_mats back in
  Array.iteri
    (fun i m ->
      Alcotest.(check bool)
        (Printf.sprintf "constraint %d" i)
        true
        (Mat.equal ~tol:1e-14 m mb.(i)))
    ma

let test_loader_file_roundtrip () =
  let rng = Rng.create 53 in
  let inst = Diagonal.random ~rng ~dim:5 ~n:3 () in
  let path = Filename.temp_file "psdp" ".inst" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Loader.save path inst;
      let back = Loader.load path in
      Alcotest.(check int) "n" (Instance.num_constraints inst)
        (Instance.num_constraints back))

let test_loader_rejects_garbage () =
  List.iter
    (fun text ->
      match Loader.of_string text with
      | (_ : Instance.t) -> Alcotest.failf "accepted %S" text
      | exception Failure _ -> ())
    [
      "";
      "not a header\n";
      "psdp-instance v1\ndim x\n";
      "psdp-instance v1\ndim 3\nconstraints 1\nfactor 0 3 1 1\n0 0\n";
      "psdp-instance v1\ndim 3\nconstraints 2\nfactor 0 3 1 1\n0 0 1.0\n";
      (* Bounds and finiteness validation. *)
      "psdp-instance v1\ndim 0\n";
      "psdp-instance v1\ndim -4\n";
      "psdp-instance v1\ndim 3\nconstraints 0\n";
      "psdp-instance v1\ndim 3\nconstraints -1\n";
      "psdp-instance v1\ndim 3\nconstraints 1\nfactor 0 3 1 -2\n";
      "psdp-instance v1\ndim 3\nconstraints 1\nfactor 0 3 1 9\n";
      "psdp-instance v1\ndim 3\nconstraints 1\nfactor 0 3 0 0\n";
      "psdp-instance v1\ndim 3\nconstraints 1\nfactor 0 3 1 1\n3 0 1.0\n";
      "psdp-instance v1\ndim 3\nconstraints 1\nfactor 0 3 1 1\n0 1 1.0\n";
      "psdp-instance v1\ndim 3\nconstraints 1\nfactor 0 3 1 1\n0 0 nan\n";
      "psdp-instance v1\ndim 3\nconstraints 1\nfactor 0 3 1 1\n0 0 inf\n";
    ]

let test_loader_comments_and_blanks () =
  let rng = Rng.create 59 in
  let inst = Diagonal.random ~rng ~dim:4 ~n:2 () in
  let text = "# saved instance\n\n" ^ Loader.to_string inst in
  let back = Loader.of_string text in
  Alcotest.(check int) "parsed with comments" 2 (Instance.num_constraints back)

let test_loader_save_is_canonical () =
  (* gen → save → load → save is byte-identical for every family, which
     is what makes [Loader.digest] a stable content key: the digest of an
     instance equals the digest of its loaded copy. *)
  let rng = Rng.create 61 in
  let families =
    [
      ("random", Random_psd.factored ~rng ~dim:7 ~n:4 ~rank:3 ~density:0.4 ());
      ("diagonal", Diagonal.random ~rng ~dim:6 ~n:4 ());
      ("projectors", fst (Known_opt.orthogonal_projectors ~rng ~dim:8 ~n:3));
      ("rank-one", fst (Known_opt.rank_one_orthonormal ~rng ~dim:7 ~n:5));
      ("cycle", Graph_packing.edge_packing (Graph.cycle 6));
      ("beamforming", Beamforming.instance ~rng ~antennas:6 ~users:4 ());
    ]
  in
  List.iter
    (fun (name, inst) ->
      let text1 = Loader.to_string inst in
      let back = Loader.of_string text1 in
      let text2 = Loader.to_string back in
      Alcotest.(check string) (name ^ ": save∘load∘save byte-identical")
        text1 text2;
      Alcotest.(check string) (name ^ ": digest invariant")
        (Loader.digest inst) (Loader.digest back))
    families

let test_loader_digest_separates () =
  let rng = Rng.create 67 in
  let a = Diagonal.random ~rng ~dim:5 ~n:3 () in
  let b = Diagonal.random ~rng ~dim:5 ~n:3 () in
  Alcotest.(check bool) "distinct instances, distinct digests" true
    (Loader.digest a <> Loader.digest b);
  Alcotest.(check int) "hex digest length" 32 (String.length (Loader.digest a))

(* ------------------------------------------------------------------ *)
(* Properties *)

let prop_generators_produce_valid_instances =
  QCheck.Test.make ~name:"generated instances validate and are PSD" ~count:30
    (QCheck.int_bound 1_000_000) (fun seed ->
      let rng = Rng.create seed in
      let inst = Random_psd.factored ~rng ~dim:5 ~n:3 ~rank:2 () in
      Array.for_all Cholesky.is_psd (Instance.dense_mats inst))

let prop_loader_roundtrip =
  QCheck.Test.make ~name:"loader roundtrip preserves instances" ~count:30
    (QCheck.int_bound 1_000_000) (fun seed ->
      let rng = Rng.create seed in
      let inst = Random_psd.factored ~rng ~dim:4 ~n:3 ~rank:2 ~density:0.5 () in
      let back = Loader.of_string (Loader.to_string inst) in
      let ma = Instance.dense_mats inst and mb = Instance.dense_mats back in
      Loader.digest inst = Loader.digest back
      && Array.for_all2 (fun a b -> Mat.equal ~tol:1e-14 a b) ma mb)

let qcheck_cases =
  List.map
    Qa_harness.to_alcotest
    [ prop_generators_produce_valid_instances; prop_loader_roundtrip ]

let () =
  Alcotest.run "instances"
    [
      ( "random_psd",
        [
          Alcotest.test_case "shapes" `Quick test_random_psd_shapes;
          Alcotest.test_case "normalized width" `Quick
            test_random_psd_normalized_width;
          Alcotest.test_case "determinism" `Quick test_random_psd_determinism;
          Alcotest.test_case "width ramp" `Quick test_random_psd_width_ramp;
          Alcotest.test_case "validation" `Quick test_random_psd_validation;
        ] );
      ( "diagonal",
        [
          Alcotest.test_case "is diagonal" `Quick test_diagonal_is_diagonal;
          Alcotest.test_case "scaled identities opt" `Quick
            test_scaled_identities_opt;
        ] );
      ( "known_opt",
        [
          Alcotest.test_case "projectors witness" `Quick
            test_projectors_opt_witness;
          Alcotest.test_case "projectors partition" `Quick
            test_projectors_partition_identity;
          Alcotest.test_case "rank one" `Quick test_rank_one_opt;
          Alcotest.test_case "weighted" `Quick test_weighted_projectors_opt;
          Alcotest.test_case "simplex corner" `Quick test_simplex_corner_opt;
          Alcotest.test_case "validation" `Quick test_known_opt_validation;
        ] );
      ( "graph",
        [
          Alcotest.test_case "create merges" `Quick test_graph_create_merges;
          Alcotest.test_case "validation" `Quick test_graph_validation;
          Alcotest.test_case "laplacian" `Quick test_laplacian_properties;
          Alcotest.test_case "gnp edge" `Quick test_gnp_always_has_edge;
          Alcotest.test_case "complete" `Quick test_complete_edge_count;
        ] );
      ( "graph_packing",
        [
          Alcotest.test_case "edge sum = laplacian" `Quick
            test_edge_packing_matches_laplacian;
          Alcotest.test_case "cycle optimum" `Quick test_edge_packing_cycle_opt;
          Alcotest.test_case "covering general form" `Quick
            test_laplacian_covering_valid_general;
        ] );
      ( "beamforming",
        [
          Alcotest.test_case "rank one" `Quick test_beamforming_rank_one;
          Alcotest.test_case "correlated channels" `Quick
            test_beamforming_correlated_channels;
        ] );
      ( "loader",
        [
          Alcotest.test_case "roundtrip" `Quick test_loader_roundtrip;
          Alcotest.test_case "file roundtrip" `Quick test_loader_file_roundtrip;
          Alcotest.test_case "rejects garbage" `Quick test_loader_rejects_garbage;
          Alcotest.test_case "comments" `Quick test_loader_comments_and_blanks;
          Alcotest.test_case "canonical save" `Quick
            test_loader_save_is_canonical;
          Alcotest.test_case "digest separates" `Quick
            test_loader_digest_separates;
        ] );
      ("properties", qcheck_cases);
    ]
